module hgs

go 1.23
