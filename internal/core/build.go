package core

import (
	"encoding/binary"
	"fmt"
	"sort"
	"time"

	"hgs/internal/delta"
	"hgs/internal/graph"
	"hgs/internal/partition"
	"hgs/internal/temporal"
)

// BuildAll constructs the index from the full history (paper §4.4,
// Construction): events are cut into timespans; each timespan is analyzed
// (partitioning), split into horizontal partitions, and indexed one
// horizontal partition at a time.
func (t *TGI) BuildAll(events []graph.Event) error {
	defer t.observeDur("build", time.Now())
	if err := t.cfg.Validate(); err != nil {
		return err
	}
	if len(events) == 0 {
		return fmt.Errorf("core: cannot build an index over zero events")
	}
	if err := validateEvents(events); err != nil {
		return err
	}
	t.fx.Cache().Purge() // a rebuild invalidates any cached deltas
	carry := graph.New()
	tsid := 0
	for off := 0; off < len(events); off += t.cfg.TimespanEvents {
		end := min(off+t.cfg.TimespanEvents, len(events))
		var err error
		carry, err = t.buildTimespan(tsid, carry, events[off:end])
		if err != nil {
			return err
		}
		tsid++
	}
	return t.storeGraphMeta(&GraphMeta{
		Name:          "tgi",
		Start:         events[0].Time,
		End:           events[len(events)-1].Time,
		Events:        len(events),
		TimespanCount: tsid,
		Config:        t.cfg,
	})
}

// spanPartitioning computes, per horizontal partition, the number of
// micro-partitions and (for locality mode) the node→pid assignment over
// the collapsed span graph (paper §4.5).
type spanPartitioning struct {
	npids  []int
	assign []partition.Assignment // nil for random mode
}

func (sp *spanPartitioning) pidOf(t *TGI, sid int, id graph.NodeID) int {
	if sp.assign != nil {
		if pid, ok := sp.assign[sid][id]; ok {
			return pid
		}
	}
	return partition.HashPID(id, sp.npids[sid])
}

func (t *TGI) computeSpanPartitioning(start *graph.Graph, events []graph.Event, iv temporal.Interval) *spanPartitioning {
	ns := t.cfg.HorizontalPartitions
	collapsed := partition.Collapse(start, events, iv, t.cfg.Omega, t.cfg.NodeWeighting)

	// Split the collapsed graph by horizontal partition.
	perSidNodes := make([]int, ns)
	for id := range collapsed.NodeW {
		perSidNodes[t.sidOf(id)]++
	}
	sp := &spanPartitioning{npids: make([]int, ns)}
	for sid := 0; sid < ns; sid++ {
		sp.npids[sid] = max(1, (perSidNodes[sid]+t.cfg.PartitionSize-1)/t.cfg.PartitionSize)
	}
	if t.cfg.Partitioning != partition.Locality {
		return sp
	}
	// Locality: partition each sid's projection of the collapsed graph.
	sub := make([]*partition.WeightedGraph, ns)
	for sid := range sub {
		sub[sid] = partition.NewWeightedGraph()
	}
	for id, w := range collapsed.NodeW {
		sid := t.sidOf(id)
		sub[sid].AddNode(id, w)
	}
	for p, w := range collapsed.EdgeW {
		su, sv := t.sidOf(p.U), t.sidOf(p.V)
		if su == sv {
			sub[su].AddEdge(p.U, p.V, w)
		}
	}
	sp.assign = make([]partition.Assignment, ns)
	for sid := 0; sid < ns; sid++ {
		sp.assign[sid] = partition.LocalityAssign(sub[sid], sp.npids[sid], 2)
	}
	return sp
}

// buildTimespan indexes one timespan given the graph state at its start;
// it returns the state at its end (the carry for the next span).
func (t *TGI) buildTimespan(tsid int, start *graph.Graph, events []graph.Event) (*graph.Graph, error) {
	l := t.cfg.EventlistSize
	ne := (len(events) + l - 1) / l
	spanStart := events[0].Time
	spanEnd := events[len(events)-1].Time
	iv := temporal.NewInterval(spanStart, spanEnd+1)
	sp := t.computeSpanPartitioning(start, events, iv)
	ns := t.cfg.HorizontalPartitions
	pkeyOf := func(sid int) string { return placementKey(tsid, sid) }

	// Leaf checkpoint times: leaf 0 is the state just before the span's
	// first event; leaf i>0 is the state after eventlist i-1.
	leafTimes := make([]temporal.Time, 0, ne+1)
	leafTimes = append(leafTimes, spanStart-1)
	for el := 0; el < ne; el++ {
		endIdx := min((el+1)*l, len(events)) - 1
		leafTimes = append(leafTimes, events[endIdx].Time)
	}

	// Persist the locality pid maps (Micropartitions table).
	if sp.assign != nil {
		var tmp [binary.MaxVarintLen64]byte
		for sid := 0; sid < ns; sid++ {
			for id, pid := range sp.assign[sid] {
				n := binary.PutVarint(tmp[:], int64(pid))
				t.store.Put(TableMicroPart, pkeyOf(sid), nodeCKey(id), tmp[:n])
			}
		}
	}

	var carryOut *graph.Graph
	var leafPaths [][]int
	deltaCount := 0
	for sid := 0; sid < ns; sid++ {
		// Replay the span on a private clone, cutting leaves and
		// collecting per-pid eventlists, version chains, and (optionally)
		// 1-hop replication frontiers for this horizontal partition.
		w := start.Clone()
		inSid := func(id graph.NodeID) bool { return t.sidOf(id) == sid }
		extractLeaf := func() *delta.Delta {
			d := delta.New()
			w.Range(func(ns *graph.NodeState) bool {
				if inSid(ns.ID) {
					d.Nodes[ns.ID] = ns.Clone()
				}
				return true
			})
			return d
		}

		leaves := make([]*delta.Delta, 0, ne+1)
		leaves = append(leaves, extractLeaf())
		if t.cfg.Replicate1Hop {
			t.storeAuxLeaf(tsid, sid, 0, w, sp)
		}

		vcs := make(map[graph.NodeID][]vcEntry)
		for el := 0; el < ne; el++ {
			chunk := events[el*l : min((el+1)*l, len(events))]
			// Frontier membership at the leaf preceding this eventlist,
			// for aux eventlist replication.
			var frontier map[graph.NodeID]map[int]struct{} // node -> pids it fronts
			if t.cfg.Replicate1Hop {
				frontier = t.frontierMembership(w, sid, sp)
			}
			perPid := make(map[int][]graph.Event)
			perPidAux := make(map[int][]graph.Event)
			appendVC := func(id graph.NodeID, tt temporal.Time) {
				entries := vcs[id]
				if len(entries) == 0 || entries[len(entries)-1].el != el {
					entries = append(entries, vcEntry{el: el})
				}
				last := &entries[len(entries)-1]
				if n := len(last.times); n == 0 || last.times[n-1] != tt {
					last.times = append(last.times, tt)
				}
				vcs[id] = entries
			}
			for _, orig := range chunk {
				// RemoveNode implicitly rewrites every neighbor's state
				// (incident edges vanish); expand it into explicit
				// RemoveEdge events so neighbors' eventlists and version
				// chains record the change. Expansion is deterministic, so
				// every horizontal partition synthesizes identical events.
				for _, e := range expandEvent(w, orig) {
					touched := []graph.NodeID{e.Node}
					if e.Kind.IsEdge() && e.Other != e.Node {
						touched = append(touched, e.Other)
					}
					seenPid := make(map[int]bool, 2)
					for _, id := range touched {
						if !inSid(id) {
							continue
						}
						pid := sp.pidOf(t, sid, id)
						if !seenPid[pid] {
							seenPid[pid] = true
							perPid[pid] = append(perPid[pid], e)
						}
						appendVC(id, e.Time)
					}
					if frontier != nil {
						// Replicate into the aux eventlist of every
						// micro-partition fronted by a touched node — even
						// when the event also lands in that partition's
						// main eventlist, because the two replay onto
						// different graphs (partition vs frontier states).
						seenAux := make(map[int]bool, 2)
						for _, id := range touched {
							for pid := range frontier[id] {
								if !seenAux[pid] {
									seenAux[pid] = true
									perPidAux[pid] = append(perPidAux[pid], e)
								}
							}
						}
					}
					if err := w.Apply(e); err != nil {
						return nil, fmt.Errorf("core: build timespan %d: %w", tsid, err)
					}
				}
			}
			for pid, evs := range perPid {
				blob, err := t.cdc.EncodeEvents(evs)
				if err != nil {
					return nil, err
				}
				t.store.Put(TableEvents, pkeyOf(sid), eventCKey(el, pid), blob)
			}
			for pid, evs := range perPidAux {
				blob, err := t.cdc.EncodeEvents(evs)
				if err != nil {
					return nil, err
				}
				t.store.Put(TableAuxEvents, pkeyOf(sid), eventCKey(el, pid), blob)
			}
			leaves = append(leaves, extractLeaf())
			if t.cfg.Replicate1Hop {
				t.storeAuxLeaf(tsid, sid, el+1, w, sp)
			}
		}

		// Hierarchical temporal compression: build and persist the tree.
		stored, paths := buildDeltaTree(leaves, t.cfg.Arity)
		leafPaths = paths
		deltaCount = len(stored)
		for _, sd := range stored {
			if err := t.storeMicroDeltas(TableDeltas, pkeyOf(sid), sd.did, sd.data, sid, sp); err != nil {
				return nil, err
			}
		}

		// Version chains.
		for id, entries := range vcs {
			t.store.Put(TableVersions, pkeyOf(sid), nodeCKey(id), encodeVC(entries))
		}

		if sid == ns-1 {
			carryOut = w
		}
	}

	if err := t.storeTimespanMeta(&TimespanMeta{
		TSID:           tsid,
		Start:          spanStart,
		End:            spanEnd,
		LeafTimes:      leafTimes,
		EventlistCount: ne,
		EventCount:     len(events),
		LeafPaths:      leafPaths,
		DeltaCount:     deltaCount,
		NPids:          sp.npids,
		Partitioning:   t.cfg.Partitioning.String(),
		Arity:          t.cfg.Arity,
	}); err != nil {
		return nil, err
	}
	return carryOut, nil
}

// expandEvent is graph.ExpandRemoveNode; see there for the contract.
func expandEvent(w *graph.Graph, e graph.Event) []graph.Event {
	return graph.ExpandRemoveNode(w, e)
}

// storeMicroDeltas splits a tree delta by micro-partition and persists
// each non-empty piece under the composite delta key.
func (t *TGI) storeMicroDeltas(table, pkey string, did int, d *delta.Delta, sid int, sp *spanPartitioning) error {
	parts := make(map[int]*delta.Delta)
	for id, ns := range d.Nodes {
		pid := sp.pidOf(t, sid, id)
		p, ok := parts[pid]
		if !ok {
			p = delta.New()
			parts[pid] = p
		}
		p.Nodes[id] = ns
	}
	for id := range d.Tombstones {
		pid := sp.pidOf(t, sid, id)
		p, ok := parts[pid]
		if !ok {
			p = delta.New()
			parts[pid] = p
		}
		p.MarkDeleted(id)
	}
	pids := make([]int, 0, len(parts))
	for pid := range parts {
		pids = append(pids, pid)
	}
	sort.Ints(pids)
	for _, pid := range pids {
		blob, err := t.cdc.EncodeDelta(parts[pid])
		if err != nil {
			return err
		}
		t.store.Put(table, pkey, deltaCKey(did, pid), blob)
	}
	return nil
}

// frontierMembership maps every node to the set of micro-partitions of
// horizontal partition sid whose frontier it belongs to: the node is
// adjacent to a member of (sid,pid) but is not itself in (sid,pid).
func (t *TGI) frontierMembership(w *graph.Graph, sid int, sp *spanPartitioning) map[graph.NodeID]map[int]struct{} {
	out := make(map[graph.NodeID]map[int]struct{})
	w.Range(func(ns *graph.NodeState) bool {
		if t.sidOf(ns.ID) != sid {
			return true
		}
		pid := sp.pidOf(t, sid, ns.ID)
		for k := range ns.Edges {
			nb := k.Other
			if t.sidOf(nb) == sid && sp.pidOf(t, sid, nb) == pid {
				continue // same micro-partition
			}
			set, ok := out[nb]
			if !ok {
				set = make(map[int]struct{})
				out[nb] = set
			}
			set[pid] = struct{}{}
		}
		return true
	})
	return out
}

// storeAuxLeaf persists, for every micro-partition of (tsid, sid), the
// auxiliary micro-delta holding its frontier nodes' states at this leaf
// (paper §4.5, Figure 5d). Frontier states carry only the edges whose
// other endpoint lies inside the partition∪frontier closure: any 1-hop
// query rooted in the partition only needs edges among {root}∪N(root) ⊆
// members∪frontier, and the restriction keeps replication from copying
// high-degree frontier nodes' entire adjacency into every aux row.
func (t *TGI) storeAuxLeaf(tsid, sid, leafIdx int, w *graph.Graph, sp *spanPartitioning) {
	fm := t.frontierMembership(w, sid, sp)
	// closures[pid] = member set ∪ frontier set of that micro-partition.
	closures := make(map[int]map[graph.NodeID]struct{})
	closure := func(pid int) map[graph.NodeID]struct{} {
		set, ok := closures[pid]
		if !ok {
			set = make(map[graph.NodeID]struct{})
			closures[pid] = set
		}
		return set
	}
	w.Range(func(ns *graph.NodeState) bool {
		if t.sidOf(ns.ID) == sid {
			closure(sp.pidOf(t, sid, ns.ID))[ns.ID] = struct{}{}
		}
		return true
	})
	for nb, pids := range fm {
		for pid := range pids {
			closure(pid)[nb] = struct{}{}
		}
	}

	parts := make(map[int]*delta.Delta)
	for nb, pids := range fm {
		ns := w.Node(nb)
		if ns == nil {
			continue
		}
		for pid := range pids {
			p, ok := parts[pid]
			if !ok {
				p = delta.New()
				parts[pid] = p
			}
			set := closures[pid]
			restricted := &graph.NodeState{ID: ns.ID, Attrs: ns.Attrs.Clone()}
			for k, es := range ns.Edges {
				if _, in := set[k.Other]; in {
					if restricted.Edges == nil {
						restricted.Edges = make(map[graph.EdgeKey]*graph.EdgeState)
					}
					restricted.Edges[k] = es.Clone()
				}
			}
			p.Nodes[nb] = restricted
		}
	}
	for pid, d := range parts {
		blob, err := t.cdc.EncodeDelta(d)
		if err != nil {
			continue // encoding cannot fail for in-memory states
		}
		t.store.Put(TableAux, placementKey(tsid, sid), deltaCKey(leafIdx, pid), blob)
	}
}
