package baseline

import (
	"fmt"
	"sort"

	"hgs/internal/codec"
	"hgs/internal/delta"
	"hgs/internal/graph"
	"hgs/internal/kvstore"
	"hgs/internal/temporal"
)

// CopyLogIndex is the Copy+Log hybrid: full snapshots every SnapshotEvery
// events with eventlist chunks between them. Snapshot retrieval reads one
// copy plus the boundary eventlists; version retrieval must still scan
// every eventlist in range (no entity access path).
type CopyLogIndex struct {
	store *kvstore.Cluster
	cdc   codec.Codec
	// SnapshotEvery is the copy spacing in events; ChunkSize is the
	// eventlist granularity.
	snapshotEvery int
	chunkSize     int

	snapTimes   []temporal.Time
	chunkEnd    []temporal.Time
	chunkOfSnap []int // chunk index at which each snapshot sits
}

// NewCopyLogIndex creates a Copy+Log index.
func NewCopyLogIndex(store *kvstore.Cluster, snapshotEvery, chunkSize int) *CopyLogIndex {
	if snapshotEvery < 1 {
		snapshotEvery = 10000
	}
	if chunkSize < 1 || chunkSize > snapshotEvery {
		chunkSize = max(1, snapshotEvery/10)
	}
	return &CopyLogIndex{store: store, snapshotEvery: snapshotEvery, chunkSize: chunkSize}
}

func (ix *CopyLogIndex) Name() string { return "copy+log" }

func (ix *CopyLogIndex) Build(events []graph.Event) error {
	if len(events) == 0 {
		return fmt.Errorf("baseline: empty history")
	}
	w := graph.New()
	expanded := make([]graph.Event, 0, len(events))
	for _, e := range events {
		for _, x := range graph.ExpandRemoveNode(w, e) {
			expanded = append(expanded, x)
			w.Apply(x)
		}
	}

	g := graph.New()
	chunkIdx := 0
	storeSnap := func() error {
		blob, err := ix.cdc.EncodeDelta(delta.FromGraph(g))
		if err != nil {
			return err
		}
		// Called after the snapTimes append: index of the copy just added.
		ix.store.Put("cl_snap", fmt.Sprintf("s%08d", len(ix.snapTimes)-1), "snapshot", blob)
		return nil
	}
	// Initial empty snapshot anchors queries before the first copy point.
	ix.snapTimes = append(ix.snapTimes, expanded[0].Time-1)
	ix.chunkOfSnap = append(ix.chunkOfSnap, 0)
	if err := storeSnap(); err != nil {
		return err
	}
	for off := 0; off < len(expanded); off += ix.chunkSize {
		endOff := min(off+ix.chunkSize, len(expanded))
		chunk := expanded[off:endOff]
		blob, err := ix.cdc.EncodeEvents(chunk)
		if err != nil {
			return err
		}
		ix.store.Put("cl_log", fmt.Sprintf("c%08d", chunkIdx), "events", blob)
		ix.chunkEnd = append(ix.chunkEnd, chunk[len(chunk)-1].Time)
		chunkIdx++
		for _, e := range chunk {
			if err := g.Apply(e); err != nil {
				return err
			}
		}
		if endOff%ix.snapshotEvery == 0 || endOff == len(expanded) {
			ix.snapTimes = append(ix.snapTimes, chunk[len(chunk)-1].Time)
			ix.chunkOfSnap = append(ix.chunkOfSnap, chunkIdx)
			if err := storeSnap(); err != nil {
				return err
			}
		}
	}
	return nil
}

func (ix *CopyLogIndex) Snapshot(tt temporal.Time) (*graph.Graph, error) {
	// Latest copy at or before tt, then replay chunks forward.
	si := sort.Search(len(ix.snapTimes), func(i int) bool { return ix.snapTimes[i] > tt })
	if si == 0 {
		return graph.New(), nil
	}
	si--
	blob, ok := ix.store.Get("cl_snap", fmt.Sprintf("s%08d", si), "snapshot")
	if !ok {
		return nil, fmt.Errorf("baseline: missing copy+log snapshot %d", si)
	}
	d, err := ix.cdc.DecodeDelta(blob)
	if err != nil {
		return nil, err
	}
	g := d.Materialize()
	for ci := ix.chunkOfSnap[si]; ci < len(ix.chunkEnd); ci++ {
		if ci > 0 && ix.chunkEnd[ci-1] > tt {
			break
		}
		evBlob, ok := ix.store.Get("cl_log", fmt.Sprintf("c%08d", ci), "events")
		if !ok {
			return nil, fmt.Errorf("baseline: missing copy+log chunk %d", ci)
		}
		evs, err := ix.cdc.DecodeEvents(evBlob)
		if err != nil {
			return nil, err
		}
		if err := replayPrefix(g, evs, tt); err != nil {
			return nil, err
		}
		if ix.chunkEnd[ci] > tt {
			break
		}
	}
	return g, nil
}

func (ix *CopyLogIndex) StaticNode(id graph.NodeID, tt temporal.Time) (*graph.NodeState, error) {
	// Copy+Log has no entity path either: full snapshot, then filter.
	g, err := ix.Snapshot(tt)
	if err != nil {
		return nil, err
	}
	if ns := g.Node(id); ns != nil {
		return ns.Clone(), nil
	}
	return nil, nil
}

func (ix *CopyLogIndex) NodeVersions(id graph.NodeID, ts, te temporal.Time) (*History, error) {
	initial, err := ix.StaticNode(id, ts)
	if err != nil {
		return nil, err
	}
	h := &History{ID: id, Interval: temporal.Interval{Start: ts, End: te}, Initial: initial}
	// Scan every eventlist overlapping the range (|G|/|E| reads).
	for ci := 0; ci < len(ix.chunkEnd); ci++ {
		if ix.chunkEnd[ci] <= ts {
			continue
		}
		if ci > 0 && ix.chunkEnd[ci-1] >= te {
			break
		}
		blob, ok := ix.store.Get("cl_log", fmt.Sprintf("c%08d", ci), "events")
		if !ok {
			return nil, fmt.Errorf("baseline: missing copy+log chunk %d", ci)
		}
		evs, err := ix.cdc.DecodeEvents(blob)
		if err != nil {
			return nil, err
		}
		for _, e := range evs {
			if e.Time > ts && e.Time < te && e.Touches(id) {
				h.Events = append(h.Events, e)
			}
		}
	}
	return h, nil
}

func (ix *CopyLogIndex) StorageBytes() int64 { return ix.store.LogicalBytes() }
