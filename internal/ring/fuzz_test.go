package ring

// FuzzRingLookup drives New/Lookup with arbitrary node sets, vnode
// counts, replication factors, and key hashes, asserting the placement
// contract the kvstore layer depends on:
//
//   - Lookup is total: every key resolves to min(replicas, |nodes|)
//     owners on a non-empty ring (and none on an empty one);
//   - owners are distinct nodes, all members of the ring;
//   - lookups are deterministic, including through the buf reuse path.

import "testing"

func FuzzRingLookup(f *testing.F) {
	f.Add([]byte{0, 1, 2}, 64, 3, uint64(12345))
	f.Add([]byte{}, 8, 2, uint64(0))
	f.Add([]byte{5, 5, 5}, 1, 4, uint64(1)<<63)
	f.Add([]byte{9, 3, 7, 3, 1, 250}, 0, 1, ^uint64(0))
	f.Fuzz(func(t *testing.T, rawNodes []byte, vnodes, replicas int, h uint64) {
		if len(rawNodes) > 64 {
			rawNodes = rawNodes[:64] // keep ring construction cheap
		}
		nodes := make([]int, len(rawNodes))
		distinct := map[int]bool{}
		for i, b := range rawNodes {
			nodes[i] = int(b)
			distinct[int(b)] = true
		}
		vnodes %= 129
		replicas %= 8
		r := New(nodes, vnodes, replicas)

		want := replicas
		if want < 1 {
			want = 1 // New clamps replicas to at least one owner
		}
		if want > len(distinct) {
			want = len(distinct)
		}
		owners := r.Lookup(h, nil)
		if len(owners) != want {
			t.Fatalf("Lookup returned %d owners, want %d (%d distinct nodes, replicas=%d)",
				len(owners), want, len(distinct), replicas)
		}
		seen := map[int]bool{}
		for _, id := range owners {
			if !distinct[id] {
				t.Fatalf("owner %d is not a ring member", id)
			}
			if seen[id] {
				t.Fatalf("owner %d returned twice for one key", id)
			}
			seen[id] = true
		}
		// Deterministic, and the buf-reuse fast path agrees with the
		// allocating path.
		buf := make([]int, 0, 8)
		again := r.Lookup(h, buf)
		if len(again) != len(owners) {
			t.Fatalf("repeat lookup returned %d owners, first returned %d", len(again), len(owners))
		}
		for i := range owners {
			if owners[i] != again[i] {
				t.Fatalf("lookup not deterministic at owner %d: %d vs %d", i, owners[i], again[i])
			}
		}
	})
}
