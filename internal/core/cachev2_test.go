package core

import (
	"testing"
	"time"

	"hgs/internal/fetch"
	"hgs/internal/graph"
	"hgs/internal/kvstore"
	"hgs/internal/partition"
	"hgs/internal/temporal"
)

// TestNegativeEntriesInvalidatedOnAppend pins the negative-cache
// lifecycle: probing a node in a horizontal partition with no stored
// rows learns absence (the warm re-probe issues zero KV reads), and
// Append — which rebuilds the trailing timespan under the same delta
// keys — must drop those markers, or the newly written rows would stay
// invisible behind stale absence answers.
func TestNegativeEntriesInvalidatedOnAppend(t *testing.T) {
	cfg := smallConfig()
	sidOfID := func(id graph.NodeID) int {
		return partition.HashPID(id^0x5bd1e995, cfg.HorizontalPartitions)
	}
	// Events touch only sid-0 nodes, so every other partition stores no
	// delta rows at all and probes of it are pure absent-row reads.
	var used []graph.NodeID
	var ghost graph.NodeID
	for id := graph.NodeID(0); len(used) < 20 || ghost == 0; id++ {
		if sidOfID(id) == 0 {
			if len(used) < 20 {
				used = append(used, id)
			}
		} else if ghost == 0 {
			ghost = id
		}
	}
	events := make([]graph.Event, 0, len(used))
	for i, u := range used {
		events = append(events, graph.Event{Time: temporal.Time(10 * (i + 1)), Kind: graph.AddNode, Node: u})
	}
	end := events[len(events)-1].Time
	tgi := buildSmall(t, cfg, events)

	// Cold probe: the node (and its partition's rows) do not exist.
	ns, err := tgi.GetNodeAt(ghost, end, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ns != nil {
		t.Fatalf("ghost node unexpectedly exists: %+v", ns)
	}
	// Warm re-probe: absence is served from negative entries, zero KV
	// reads (the probe plans only delta parts — no boundary eventlist at
	// the final checkpoint).
	tgi.Store().ResetMetrics()
	if ns, _ := tgi.GetNodeAt(ghost, end, nil); ns != nil {
		t.Fatal("ghost node appeared on re-probe")
	}
	if reads := tgi.Store().Metrics().Reads; reads != 0 {
		t.Fatalf("warm probe of known-absent rows issued %d KV reads, want 0", reads)
	}
	if st := tgi.CacheStats(); st.NegativeHits == 0 {
		t.Fatalf("no negative hits recorded: %+v", st)
	}

	// Append creates the node; the trailing-span rebuild reuses the same
	// (tsid, sid, did, pid) keys the markers were recorded under.
	if err := tgi.Append([]graph.Event{{Time: end + 10, Kind: graph.AddNode, Node: ghost}}); err != nil {
		t.Fatal(err)
	}
	ns, err = tgi.GetNodeAt(ghost, end+20, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ns == nil {
		t.Fatal("stale negative entry survived Append: the appended node is invisible")
	}
}

// TestTraceAccountingMatchesMetrics pins the per-call attribution: a
// traced retrieval whose metadata is already cached must report exactly
// the KV reads, round-trips, bytes and simulated wait the cluster
// counters accumulated for it.
func TestTraceAccountingMatchesMetrics(t *testing.T) {
	events := genHistory(21, 400, 40)
	tgi := buildSmall(t, smallConfig(), events)
	store := tgi.Store()
	lo, hi := events[0].Time, events[len(events)-1].Time+1

	// Warm the metadata and pid-map caches so the traced query reads
	// only through the fetch layer (meta loads bypass it by design).
	if _, err := tgi.GetNodeHistory(5, lo, hi, nil); err != nil {
		t.Fatal(err)
	}
	store.SetLatency(kvstore.LatencyModel{Enabled: true, BaseOp: 2 * time.Microsecond, PerKB: 5 * time.Microsecond})
	defer store.SetLatency(kvstore.LatencyModel{})

	for _, id := range []graph.NodeID{11, 23} {
		store.ResetMetrics()
		tr := &fetch.Trace{}
		if _, err := tgi.GetNodeHistory(id, lo, hi, &FetchOptions{Trace: tr}); err != nil {
			t.Fatal(err)
		}
		m := store.Metrics()
		rec := tr.Record()
		if rec.Op != "node-history" {
			t.Fatalf("trace op = %q", rec.Op)
		}
		if rec.KVReads != m.Reads {
			t.Fatalf("trace KVReads %d != metrics Reads %d", rec.KVReads, m.Reads)
		}
		if rec.RoundTrips != m.RoundTrips {
			t.Fatalf("trace RoundTrips %d != metrics %d", rec.RoundTrips, m.RoundTrips)
		}
		if rec.BytesRead != m.BytesRead {
			t.Fatalf("trace BytesRead %d != metrics %d", rec.BytesRead, m.BytesRead)
		}
		if rec.SimWait != m.SimWait {
			t.Fatalf("trace SimWait %v != metrics %v", rec.SimWait, m.SimWait)
		}
		var tableReads int64
		for _, tt := range rec.Tables {
			tableReads += tt.KVReads
		}
		if tableReads != rec.KVReads {
			t.Fatalf("per-table reads %d do not sum to the total %d", tableReads, rec.KVReads)
		}
	}
}

// TestTracePlansRing pins the store-side trace collection: with
// TracePlans on, every retrieval leaves one record (fan-out queries
// leave one, not one per inner fetch), surfaced by PlanTraces and
// Stats, and the ring stays bounded.
func TestTracePlansRing(t *testing.T) {
	events := genHistory(22, 300, 30)
	cfg := smallConfig()
	cfg.TracePlans = true
	tgi := buildSmall(t, cfg, events)
	probes := []temporal.Time{500, 1500, 2500}

	if _, err := tgi.GetSnapshotsAt(probes, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := tgi.GetNodeAt(3, probes[1], nil); err != nil {
		t.Fatal(err)
	}
	trs := tgi.PlanTraces()
	if len(trs) != 2 {
		t.Fatalf("PlanTraces = %d records, want 2 (one per retrieval)", len(trs))
	}
	if trs[0].Op != "snapshots" || trs[1].Op != "node-at" {
		t.Fatalf("trace ops = %q, %q", trs[0].Op, trs[1].Op)
	}
	if trs[0].Execs != len(probes) {
		t.Fatalf("fan-out trace aggregated %d execs, want %d", trs[0].Execs, len(probes))
	}
	st, err := tgi.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Traces) != 2 {
		t.Fatalf("Stats.Traces = %d records, want 2", len(st.Traces))
	}

	for i := 0; i < traceKeep+10; i++ {
		if _, err := tgi.GetNodeAt(3, probes[1], nil); err != nil {
			t.Fatal(err)
		}
	}
	if n := len(tgi.PlanTraces()); n != traceKeep {
		t.Fatalf("trace ring holds %d records, want the %d bound", n, traceKeep)
	}

	// A caller-supplied trace is the caller's: filled, not ring-recorded
	// twice.
	before := len(tgi.PlanTraces())
	tr := &fetch.Trace{}
	if _, err := tgi.GetSnapshot(probes[0], &FetchOptions{Trace: tr}); err != nil {
		t.Fatal(err)
	}
	if rec := tr.Record(); rec.Op != "snapshot" || rec.Execs != 1 {
		t.Fatalf("caller trace = %+v", rec)
	}
	if after := len(tgi.PlanTraces()); after != before {
		t.Fatalf("caller-supplied trace was also ring-recorded (%d -> %d)", before, after)
	}
}
