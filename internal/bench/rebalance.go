package bench

import (
	"fmt"
	"hash/fnv"
	"time"

	"hgs/internal/core"
	"hgs/internal/kvstore"
	"hgs/internal/obs"
)

// RebalancePass is one measured phase of the rebalance experiment:
// steady state, the live node-add, and one-replica-down operation.
type RebalancePass struct {
	// Label names the phase ("baseline", "node-add", "degraded").
	Label string
	// Ops and the quantiles come from the per-op latency histograms of
	// the queries the phase ran.
	Ops      uint64
	P50, P99 float64
	// Reads / RoundTrips / BytesRead / SimWait are the phase's
	// store-metrics delta.
	Reads, RoundTrips, BytesRead int64
	SimWait                      time.Duration
	// DegradedReads and Failovers count replica-down detours.
	DegradedReads, Failovers int64
	// Migration volume (node-add phase only).
	PartitionsMoved, RowsMoved, BytesMoved int64
	// RelocatedShare is PartitionsMoved over the partition total;
	// TheoryShare is the consistent-hashing expectation ~r/(m+1).
	RelocatedShare, TheoryShare float64
	// Digest summarizes the phase's query answers; every phase must
	// agree with the baseline (no phase may lose or corrupt a row).
	Digest uint64
}

// rebalanceShape is the experiment's fixed cluster shape: r=2 so a
// single failure leaves every partition readable, m=4 growing to 5.
const (
	rebalanceMachines    = 4
	rebalanceReplication = 2
	rebalanceAddedNode   = rebalanceMachines // the id joined mid-run
)

// RebalancePasses builds a fresh r=2 cluster (topology mutation would
// poison the shared index cache, so nothing here is cached), indexes
// Dataset 1, and measures three phases of the same probe workload:
// healthy steady state, live operation while AddNode streams partitions
// under the rebalance rate limit, and operation with one storage node
// down. The testable core behind RebalanceBench and TestRebalanceSmoke.
func RebalancePasses(sc Scale) []RebalancePass {
	events := Dataset1(sc)
	cluster, err := kvstore.Open(kvstore.Config{
		Machines:      rebalanceMachines,
		Replication:   rebalanceReplication,
		RebalanceRate: 8 << 20,
	})
	if err != nil {
		panic(fmt.Sprintf("bench: rebalance cluster: %v", err))
	}
	defer cluster.Close()
	reg := obs.NewRegistry()
	cfg := benchTGIConfig(len(events))
	cfg.Obs = reg
	tgi, err := core.Build(cluster, cfg, events)
	if err != nil {
		panic(fmt.Sprintf("bench: rebalance build: %v", err))
	}

	// One query round: snapshots spread over the history, digested so
	// phases are comparable byte-for-byte (benchTGIConfig disables the
	// decoded cache — every round hits the KV layer).
	probes := probeTimes(events, 4)
	round := func() uint64 {
		h := fnv.New64a()
		for _, tt := range probes {
			g, err := tgi.GetSnapshot(tt, &core.FetchOptions{Clients: 4})
			if err != nil {
				panic(fmt.Sprintf("bench: rebalance snapshot: %v", err))
			}
			fmt.Fprintf(h, "%016x", snapshotDigest(g))
		}
		return h.Sum64()
	}
	// Warm the query-manager metadata once, untimed.
	round()

	// measure wraps a phase: reset counters, run under the latency
	// model, and fold the metric deltas into a pass.
	measure := func(label string, phase func() uint64) RebalancePass {
		cluster.ResetMetrics()
		before := reg.Snapshot()
		cluster.SetLatency(kvstore.DefaultLatency())
		digest := phase()
		cluster.SetLatency(kvstore.LatencyModel{})
		m := cluster.Metrics()
		p := RebalancePass{
			Label:           label,
			Reads:           m.Reads,
			RoundTrips:      m.RoundTrips,
			BytesRead:       m.BytesRead,
			SimWait:         m.SimWait,
			DegradedReads:   m.DegradedReads,
			Failovers:       m.Failovers,
			PartitionsMoved: m.RebalancedPartitions,
			RowsMoved:       m.RebalancedRows,
			BytesMoved:      m.RebalancedBytes,
			Digest:          digest,
		}
		if d, ok := reg.Snapshot().Diff(before).FamilyHist("hgs_op_duration_seconds"); ok {
			p.Ops = d.Count
			p.P50 = d.Quantile(0.50)
			p.P99 = d.Quantile(0.99)
		}
		return p
	}

	passes := make([]RebalancePass, 0, 3)
	passes = append(passes, measure("baseline", round))
	want := passes[0].Digest

	// Live node-add: a fixed number of query rounds overlap the
	// migration (fixed so the phase's KV counts stay deterministic for
	// the perf ratchet), then one more round on the settled 5-node ring.
	passes = append(passes, measure("node-add", func() uint64 {
		if err := cluster.AddNode(rebalanceAddedNode); err != nil {
			panic(fmt.Sprintf("bench: rebalance add node: %v", err))
		}
		ok := true
		for i := 0; i < 3; i++ {
			ok = round() == want && ok
		}
		if err := cluster.WaitRebalance(); err != nil {
			panic(fmt.Sprintf("bench: rebalance wait: %v", err))
		}
		if round() != want || !ok {
			return 0 // poison the digest: a query saw a gap mid-handoff
		}
		return want
	}))
	topo := cluster.Topology()
	if topo.Partitions > 0 {
		passes[1].RelocatedShare = float64(passes[1].PartitionsMoved) / float64(topo.Partitions)
	}
	passes[1].TheoryShare = float64(rebalanceReplication) / float64(rebalanceMachines+1)

	// Degraded operation: one replica of every partition is gone, yet
	// the same rounds must answer identically via failover reads.
	passes = append(passes, measure("degraded", func() uint64 {
		if err := cluster.FailNode(0); err != nil {
			panic(fmt.Sprintf("bench: rebalance fail node: %v", err))
		}
		d := round()
		if err := cluster.ReviveNode(0); err != nil {
			panic(fmt.Sprintf("bench: rebalance revive node: %v", err))
		}
		return d
	}))
	return passes
}

// RebalanceBench — the node-lifecycle experiment: query latency while a
// node joins and partitions stream under the rate limit, the migration
// volume against the consistent-hashing movement bound, and the
// degraded-read rate with a replica down. Every phase's query answers
// must digest equal to the healthy baseline.
func RebalanceBench(sc Scale) *Result {
	start := time.Now()
	res := &Result{
		ID:     "rebalance",
		Title:  fmt.Sprintf("Live rebalance: node-add + replica-down operation (m=%d→%d, r=%d)", rebalanceMachines, rebalanceMachines+1, rebalanceReplication),
		XLabel: "phase (0=baseline 1=node-add 2=degraded)",
		YLabel: "seconds",
	}
	passes := RebalancePasses(sc)
	base := passes[0]
	p99 := Series{Name: "query p99 (s)"}
	degraded := Series{Name: "degraded-read rate"}
	identical := true
	res.TableHeader = []string{"phase", "ops", "p50", "p99", "kv reads", "degraded", "failovers", "rows moved"}
	for i, p := range passes {
		if p.Digest != base.Digest {
			identical = false
		}
		rate := 0.0
		if p.Reads > 0 {
			rate = float64(p.DegradedReads) / float64(p.Reads)
		}
		p99.Points = append(p99.Points, Point{X: float64(i), Y: p.P99})
		degraded.Points = append(degraded.Points, Point{X: float64(i), Y: rate})
		res.TableRows = append(res.TableRows, []string{
			p.Label,
			fmt.Sprintf("%d", p.Ops),
			fmt.Sprintf("%.4fs", p.P50),
			fmt.Sprintf("%.4fs", p.P99),
			fmt.Sprintf("%d", p.Reads),
			fmt.Sprintf("%d", p.DegradedReads),
			fmt.Sprintf("%d", p.Failovers),
			fmt.Sprintf("%d", p.RowsMoved),
		})
		res.Passes = append(res.Passes, PassMetrics{
			Label:          p.Label,
			KVReads:        p.Reads,
			RoundTrips:     p.RoundTrips,
			BytesRead:      p.BytesRead,
			SimWaitSeconds: p.SimWait.Seconds(),
			Ops:            p.Ops,
			P50Seconds:     p.P50,
			P99Seconds:     p.P99,
			RowsMoved:      p.RowsMoved,
			RelocatedShare: p.RelocatedShare,
			DegradedReads:  p.DegradedReads,
		})
	}
	res.Series = append(res.Series, p99, degraded)
	add := passes[1]
	res.Notes = append(res.Notes, fmt.Sprintf(
		"node-add moved %d partitions (%d rows, %dKB) under the 8MB/s rate limit: %.1f%% of keys relocated vs ~%.1f%% theory (r/(m+1); mod-m placement reshuffles nearly all)",
		add.PartitionsMoved, add.RowsMoved, add.BytesMoved/1024,
		100*add.RelocatedShare, 100*add.TheoryShare))
	res.Notes = append(res.Notes, fmt.Sprintf(
		"query answers byte-identical across baseline/node-add/degraded phases: %v", identical))
	res.Notes = append(res.Notes, fmt.Sprintf(
		"degraded phase: %d degraded reads, %d failovers over %d KV reads with node 0 down",
		passes[2].DegradedReads, passes[2].Failovers, passes[2].Reads))
	res.Elapsed = time.Since(start)
	return res
}
