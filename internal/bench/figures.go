package bench

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"time"

	"hgs/internal/baseline"
	"hgs/internal/core"
	"hgs/internal/graph"
	"hgs/internal/kvstore"
	"hgs/internal/partition"
	"hgs/internal/sparklite"
	"hgs/internal/taf"
	"hgs/internal/temporal"
	"hgs/internal/workload"
)

// spark returns a compute context with w workers.
func spark(w int) *sparklite.Context { return sparklite.NewContext(w) }

// Fig11 — snapshot retrieval time vs snapshot size for parallel fetch
// factors c ∈ {1,2,4,8,16,32}; m=4, r=1, ps=500 (Dataset 1).
func Fig11(sc Scale) *Result {
	start := time.Now()
	events := Dataset1(sc)
	ix := buildIndex("fig11", events, 4, 1, nil)
	probes := probeTimes(events, 4)
	res := &Result{
		ID: "fig11", Title: "Snapshot retrieval vs parallel fetch factor (m=4, r=1, ps=500)",
		XLabel: "snapshot size (node count)", YLabel: "retrieval time (s)",
	}
	ix.withLatencyMetered(res, "c sweep", func() {
		for _, c := range []int{1, 2, 4, 8, 16, 32} {
			s := Series{Name: fmt.Sprintf("c=%d", c)}
			for _, tt := range probes {
				var g *graph.Graph
				sec := timeIt(func() {
					g, _ = ix.TGI.GetSnapshot(tt, &core.FetchOptions{Clients: c})
				})
				s.Points = append(s.Points, Point{X: float64(g.NumNodes()), Y: sec})
			}
			res.Series = append(res.Series, s)
		}
	})
	res.Elapsed = time.Since(start)
	return res
}

// Fig12 — snapshot retrieval across cluster shapes (m=1,r=1), (m=2,r=1),
// (m=2,r=2) for varying c (Dataset 1).
func Fig12(sc Scale) *Result {
	start := time.Now()
	events := Dataset1(sc)
	res := &Result{
		ID: "fig12", Title: "Snapshot retrieval across m and r",
		XLabel: "snapshot size (node count)", YLabel: "retrieval time (s)",
	}
	probesAll := probeTimes(events, 3)
	shapes := []struct {
		m, r int
		cs   []int
	}{
		{1, 1, []int{1, 2, 4, 8}},
		{2, 1, []int{1, 2, 4, 8}},
		{2, 2, []int{1, 4, 8, 16}},
	}
	for _, sh := range shapes {
		ix := buildIndex(fmt.Sprintf("fig12/m%dr%d", sh.m, sh.r), events, sh.m, sh.r, nil)
		ix.withLatencyMetered(res, fmt.Sprintf("m=%d,r=%d", sh.m, sh.r), func() {
			for _, c := range sh.cs {
				s := Series{Name: fmt.Sprintf("m=%d,r=%d,c=%d", sh.m, sh.r, c)}
				for _, tt := range probesAll {
					var g *graph.Graph
					sec := timeIt(func() {
						g, _ = ix.TGI.GetSnapshot(tt, &core.FetchOptions{Clients: c})
					})
					s.Points = append(s.Points, Point{X: float64(g.NumNodes()), Y: sec})
				}
				res.Series = append(res.Series, s)
			}
		})
	}
	res.Elapsed = time.Since(start)
	return res
}

// Fig13a — compressed vs uncompressed delta storage (m=2, c=8).
func Fig13a(sc Scale) *Result {
	start := time.Now()
	events := Dataset1(sc)
	res := &Result{
		ID: "fig13a", Title: "Compressed vs uncompressed delta storage (m=2, c=8)",
		XLabel: "snapshot size (node count)", YLabel: "retrieval time (s)",
	}
	probes := probeTimes(events, 4)
	for _, compress := range []bool{false, true} {
		name := "uncompressed"
		if compress {
			name = "compressed"
		}
		ix := buildIndex("fig13a/"+name, events, 2, 1, func(cfg *core.Config) { cfg.Compress = compress })
		s := Series{Name: name}
		ix.withLatencyMetered(res, name, func() {
			for _, tt := range probes {
				var g *graph.Graph
				sec := timeIt(func() { g, _ = ix.TGI.GetSnapshot(tt, &core.FetchOptions{Clients: 8}) })
				s.Points = append(s.Points, Point{X: float64(g.NumNodes()), Y: sec})
			}
		})
		st, _ := ix.TGI.Stats()
		res.Notes = append(res.Notes, fmt.Sprintf("%s stored bytes: %d", name, st.LogicalBytes))
		res.Series = append(res.Series, s)
	}
	res.Elapsed = time.Since(start)
	return res
}

// Fig13b — effect of micro-delta partition size on snapshots (m=4, c=8).
func Fig13b(sc Scale) *Result {
	start := time.Now()
	events := Dataset1(sc)
	res := &Result{
		ID: "fig13b", Title: "Effect of partition size on snapshot retrieval (m=4, c=8)",
		XLabel: "snapshot size (node count)", YLabel: "retrieval time (s)",
	}
	probes := probeTimes(events, 4)
	for _, ps := range []int{1000, 2000, 4000} {
		ix := buildIndex(fmt.Sprintf("fig13b/ps%d", ps), events, 4, 1, func(cfg *core.Config) { cfg.PartitionSize = ps })
		s := Series{Name: fmt.Sprintf("ps=%d", ps)}
		ix.withLatencyMetered(res, fmt.Sprintf("ps=%d", ps), func() {
			for _, tt := range probes {
				var g *graph.Graph
				sec := timeIt(func() { g, _ = ix.TGI.GetSnapshot(tt, &core.FetchOptions{Clients: 8}) })
				s.Points = append(s.Points, Point{X: float64(g.NumNodes()), Y: sec})
			}
		})
		res.Series = append(res.Series, s)
	}
	res.Elapsed = time.Since(start)
	return res
}

// Fig13c — Friendster snapshot retrieval (m=6, r=1, c=1, ps=500).
func Fig13c(sc Scale) *Result {
	start := time.Now()
	events := Dataset4(sc)
	ix := buildIndex("fig13c", events, 6, 1, nil)
	res := &Result{
		ID: "fig13c", Title: "Snapshot retrieval, Friendster (m=6, r=1, c=1, ps=500)",
		XLabel: "snapshot size (node count)", YLabel: "retrieval time (s)",
	}
	s := Series{Name: "Friendster"}
	ix.withLatencyMetered(res, "friendster", func() {
		for _, tt := range probeTimes(events, 5) {
			var g *graph.Graph
			sec := timeIt(func() { g, _ = ix.TGI.GetSnapshot(tt, &core.FetchOptions{Clients: 1}) })
			s.Points = append(s.Points, Point{X: float64(g.NumNodes()), Y: sec})
		}
	})
	res.Series = append(res.Series, s)
	res.Elapsed = time.Since(start)
	return res
}

// versionProbeNodes picks nodes with version counts spread towards the
// target axis of Figures 14/16 (number of change points).
func versionProbeNodes(events []graph.Event, n int) []graph.NodeID {
	counts := make(map[graph.NodeID]int)
	for _, e := range events {
		counts[e.Node]++
		if e.Kind.IsEdge() {
			counts[e.Other]++
		}
	}
	type nc struct {
		id graph.NodeID
		n  int
	}
	all := make([]nc, 0, len(counts))
	for id, c := range counts {
		all = append(all, nc{id, c})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].n != all[j].n {
			return all[i].n > all[j].n
		}
		return all[i].id < all[j].id
	})
	// Sample the busy tail (the paper's x-axis spans ~0–150 changes):
	// evenly across the 300 most-versioned nodes, most-versioned first.
	region := min(300, len(all))
	out := make([]graph.NodeID, 0, n+1)
	for i := 0; i <= n; i++ {
		idx := region * i / (n + 1)
		out = append(out, all[idx].id)
	}
	return out
}

// versionRetrievalSeries measures GetNodeHistory time against version
// count for the sampled nodes.
func versionRetrievalSeries(ix *builtIndex, name string, clients int, nodes []graph.NodeID) Series {
	lo := ix.Events[0].Time
	hi := ix.Events[len(ix.Events)-1].Time + 1
	s := Series{Name: name}
	for _, id := range nodes {
		var h *core.NodeHistory
		sec := timeIt(func() {
			h, _ = ix.TGI.GetNodeHistory(id, lo, hi, &core.FetchOptions{Clients: clients})
		})
		s.Points = append(s.Points, Point{X: float64(h.VersionCount()), Y: sec})
	}
	sort.Slice(s.Points, func(i, j int) bool { return s.Points[i].X < s.Points[j].X })
	return s
}

// Fig14a — node version retrieval vs eventlist size l.
func Fig14a(sc Scale) *Result {
	start := time.Now()
	events := Dataset1(sc)
	nodes := versionProbeNodes(events, 8)
	res := &Result{
		ID: "fig14a", Title: "Node version retrieval vs eventlist size",
		XLabel: "version changes", YLabel: "retrieval time (s)",
	}
	// Sweep eventlist sizes 4:2:1 (paper: l = 10000, 5000, 2500 — the
	// largest eventlists cost the most per version fetched).
	base := benchTGIConfig(len(events)).EventlistSize
	for _, l := range []int{4 * base, 2 * base, base} {
		ix := buildIndex(fmt.Sprintf("fig14a/l%d", l), events, 4, 1, func(cfg *core.Config) { cfg.EventlistSize = l })
		ix.withLatencyMetered(res, fmt.Sprintf("l=%d", l), func() {
			res.Series = append(res.Series, versionRetrievalSeries(ix, fmt.Sprintf("l=%d", l), 1, nodes))
		})
	}
	res.Elapsed = time.Since(start)
	return res
}

// Fig14b — node version retrieval vs parallel fetch factor c.
func Fig14b(sc Scale) *Result {
	start := time.Now()
	events := Dataset1(sc)
	nodes := versionProbeNodes(events, 8)
	ix := buildIndex("fig11", events, 4, 1, nil) // same shape as Fig 11
	res := &Result{
		ID: "fig14b", Title: "Node version retrieval vs parallel fetch factor",
		XLabel: "version changes", YLabel: "retrieval time (s)",
	}
	ix.withLatencyMetered(res, "c sweep", func() {
		for _, c := range []int{1, 2, 4} {
			res.Series = append(res.Series, versionRetrievalSeries(ix, fmt.Sprintf("c=%d", c), c, nodes))
		}
	})
	res.Elapsed = time.Since(start)
	return res
}

// Fig14c — node version retrieval vs micro-delta partition size.
func Fig14c(sc Scale) *Result {
	start := time.Now()
	events := Dataset1(sc)
	nodes := versionProbeNodes(events, 4)
	res := &Result{
		ID: "fig14c", Title: "Node version retrieval vs partition size",
		XLabel: "partition size (nodes)", YLabel: "retrieval time (s)",
	}
	s := Series{Name: "100-ish version changes"}
	for _, ps := range []int{500, 1000, 2500, 5000, 10000} {
		ix := buildIndex(fmt.Sprintf("fig14c/ps%d", ps), events, 4, 1, func(cfg *core.Config) { cfg.PartitionSize = ps })
		lo := events[0].Time
		hi := events[len(events)-1].Time + 1
		ix.withLatencyMetered(res, fmt.Sprintf("ps=%d", ps), func() {
			total := 0.0
			for _, id := range nodes {
				total += timeIt(func() { ix.TGI.GetNodeHistory(id, lo, hi, &core.FetchOptions{Clients: 1}) })
			}
			s.Points = append(s.Points, Point{X: float64(ps), Y: total / float64(len(nodes))})
		})
	}
	res.Series = append(res.Series, s)
	res.Elapsed = time.Since(start)
	return res
}

// Fig15a — 1-hop retrieval with random vs locality ("Maxflow") vs
// locality + 1-hop replication (Dataset 4).
func Fig15a(sc Scale) *Result {
	start := time.Now()
	events := Dataset4(sc)
	res := &Result{
		ID: "fig15a", Title: "1-hop retrieval by partitioning/replication (avg over 250 random nodes)",
		XLabel: "0=random 1=maxflow 2=maxflow+replication", YLabel: "fetch time (s)",
	}
	configs := []struct {
		name   string
		mutate func(*core.Config)
	}{
		{"random", nil},
		{"maxflow", func(cfg *core.Config) { cfg.Partitioning = partition.Locality }},
		{"maxflow+replication", func(cfg *core.Config) {
			cfg.Partitioning = partition.Locality
			cfg.Replicate1Hop = true
		}},
	}
	g, _ := graph.FromEvents(events)
	ids := g.NodeIDs()
	rng := rand.New(rand.NewSource(99))
	sample := make([]graph.NodeID, 0, 250)
	for i := 0; i < 250 && len(ids) > 0; i++ {
		sample = append(sample, ids[rng.Intn(len(ids))])
	}
	probe := events[len(events)-1].Time
	for i, cf := range configs {
		ix := buildIndex("fig15a/"+cf.name, events, 4, 1, cf.mutate)
		var avg float64
		ix.withLatencyMetered(res, cf.name, func() {
			total := 0.0
			for _, id := range sample {
				total += timeIt(func() { ix.TGI.GetKHopNeighborhood(id, 1, probe, &core.FetchOptions{Clients: 4}) })
			}
			avg = total / float64(len(sample))
		})
		res.Series = append(res.Series, Series{Name: cf.name, Points: []Point{{X: float64(i), Y: avg}}})
	}
	res.Elapsed = time.Since(start)
	return res
}

// Fig15b — snapshot retrieval for growing histories (Datasets 1, 2, 3).
func Fig15b(sc Scale) *Result {
	start := time.Now()
	ds := map[string][]graph.Event{
		"Dataset 1": Dataset1(sc),
		"Dataset 2": Dataset2(sc),
		"Dataset 3": Dataset3(sc),
	}
	res := &Result{
		ID: "fig15b", Title: "Snapshot retrieval with growing index size (m=4, c=8)",
		XLabel: "snapshot size (node count)", YLabel: "retrieval time (s)",
	}
	// Probe the same times (within Dataset 1's range) so all three
	// indexes reconstruct comparable snapshots.
	probes := probeTimes(Dataset1(sc), 4)
	for _, name := range []string{"Dataset 1", "Dataset 2", "Dataset 3"} {
		events := ds[name]
		ix := buildIndex("fig15b/"+name, events, 4, 1, nil)
		s := Series{Name: fmt.Sprintf("%s (%d events)", name, len(events))}
		ix.withLatencyMetered(res, name, func() {
			for _, tt := range probes {
				var g *graph.Graph
				sec := timeIt(func() { g, _ = ix.TGI.GetSnapshot(tt, &core.FetchOptions{Clients: 8}) })
				s.Points = append(s.Points, Point{X: float64(g.NumNodes()), Y: sec})
			}
		})
		res.Series = append(res.Series, s)
	}
	res.Elapsed = time.Since(start)
	return res
}

// Fig15c — TAF local-clustering-coefficient computation vs compute
// workers for three graph sizes.
func Fig15c(sc Scale) *Result {
	start := time.Now()
	events := Dataset1(sc)
	ix := buildIndex("fig11", events, 4, 1, nil)
	res := &Result{
		ID: "fig15c", Title: "TAF: highest-LCC computation vs compute workers",
		XLabel: "workers", YLabel: "compute time (s)",
	}
	// Three snapshot sizes (latency disabled: Fig 15c measures compute).
	// Each point is the median of 3 runs with a GC between them — the
	// per-node task (cut the 1-hop subgraph, compute the root's LCC) is
	// allocation-heavy, and unmanaged GC debt would swamp the worker axis.
	probes := probeTimes(events, 3)
	for _, tt := range probes {
		g, err := ix.TGI.GetSnapshot(tt, nil)
		if err != nil {
			panic(err)
		}
		s := Series{Name: fmt.Sprintf("N=%d", g.NumNodes())}
		for _, w := range []int{1, 2, 3, 4, 5} {
			h := taf.NewHandler(ix.TGI, spark(w))
			sots, err := taf.SOTS(h, 1).TimesliceAt(tt).Fetch()
			if err != nil {
				panic(err)
			}
			samples := make([]float64, 0, 3)
			for rep := 0; rep < 3; rep++ {
				runtime.GC()
				samples = append(samples, timeIt(func() {
					lcc := taf.SubgraphComputeKV(sots, func(st *taf.SubgraphT) float64 {
						return st.StateAt(tt).LocalClusteringCoefficient(st.Root())
					})
					_ = lcc
				}))
			}
			sort.Float64s(samples)
			s.Points = append(s.Points, Point{X: float64(w), Y: samples[1]})
		}
		res.Series = append(res.Series, s)
	}
	res.Notes = append(res.Notes, "host has limited cores; speedup saturates at the physical core count")
	res.Elapsed = time.Since(start)
	return res
}

// Fig16 — node version retrieval on Friendster (m=6, c ∈ {1,2}).
func Fig16(sc Scale) *Result {
	start := time.Now()
	events := Dataset4(sc)
	nodes := versionProbeNodes(events, 8)
	ix := buildIndex("fig13c", events, 6, 1, nil)
	res := &Result{
		ID: "fig16", Title: "Node version retrieval, Friendster (m=6, r=1, ps=500)",
		XLabel: "version changes", YLabel: "retrieval time (s)",
	}
	ix.withLatencyMetered(res, "c sweep", func() {
		for _, c := range []int{1, 2} {
			res.Series = append(res.Series, versionRetrievalSeries(ix, fmt.Sprintf("c=%d", c), c, nodes))
		}
	})
	res.Elapsed = time.Since(start)
	return res
}

// Fig17 — NodeComputeTemporal vs NodeComputeDelta: cumulative label-count
// time over version counts on 2-hop neighborhoods (DBLP-like workload).
func Fig17(sc Scale) *Result {
	start := time.Now()
	events := DatasetDBLP(sc)
	ix := buildIndex("fig17", events, 2, 1, nil)
	res := &Result{
		ID: "fig17", Title: "Incremental vs per-version computation (2-hop label counting)",
		XLabel: "version count", YLabel: "cumulative compute time (s)",
	}
	h := taf.NewHandler(ix.TGI, spark(2))
	lo := events[0].Time
	hi := events[len(events)-1].Time + 1

	// Roots: authors with busy 2-hop neighborhoods.
	roots := versionProbeNodes(events, 6)
	sots, err := taf.SOTS(h, 2).Roots(roots...).Timeslice(temporal.NewInterval(lo+temporal.Time(len(events)/2), hi)).Fetch()
	if err != nil {
		panic(err)
	}
	countLabel := func(g *graph.Graph) int { return g.AttrCount("EntityType", "Author") }
	deltaCount := func(before *graph.Graph, aux any, val int, e graph.Event) (int, any) {
		if e.Kind == graph.SetNodeAttr && e.Key == "EntityType" {
			ns := before.Node(e.Node)
			was := ns != nil && ns.Attrs["EntityType"] == "Author"
			is := e.Value == "Author"
			if was && !is {
				return val - 1, aux
			}
			if !was && is {
				return val + 1, aux
			}
		}
		if e.Kind == graph.RemoveNode {
			if ns := before.Node(e.Node); ns != nil && ns.Attrs["EntityType"] == "Author" {
				return val - 1, aux
			}
		}
		return val, aux
	}

	fresh := Series{Name: "NodeComputeTemporal"}
	incr := Series{Name: "NodeComputeDelta"}
	for _, versions := range []int{2, 5, 10, 15, 20} {
		versions := versions
		// Truncate each subgraph's stream to its first `versions` change
		// points so both operators process exactly that many versions.
		var truncated []*core.SubgraphHistory
		for _, st := range sots.Collect() {
			cps := st.ChangePoints()
			if len(cps) == 0 {
				continue
			}
			n := min(versions, len(cps))
			cut := cps[n-1]
			sh := &core.SubgraphHistory{
				Root: st.Root(), K: 2,
				Interval: temporal.Interval{Start: st.Span().Start, End: cut + 1},
				Initial:  st.StateAt(st.Span().Start),
				Members:  st.Members(),
			}
			for _, e := range st.Events() {
				if e.Time <= cut {
					sh.Events = append(sh.Events, e)
				}
			}
			truncated = append(truncated, sh)
		}
		tr := taf.NewSoTSFromHistories(h, 2, sots.Span(), truncated)
		freshSec := timeIt(func() { taf.SubgraphComputeTemporal(tr, countLabel, nil) })
		incrSec := timeIt(func() {
			taf.SubgraphComputeDelta(tr,
				func(g *graph.Graph) (int, any) { return countLabel(g), nil }, deltaCount)
		})
		fresh.Points = append(fresh.Points, Point{X: float64(versions), Y: freshSec})
		incr.Points = append(incr.Points, Point{X: float64(versions), Y: incrSec})
	}
	res.Series = append(res.Series, fresh, incr)
	res.Elapsed = time.Since(start)
	return res
}

// Table1 — the access-cost comparison: analytical closed forms
// instantiated for Dataset 1, plus measured store reads for every
// implemented index on a downscaled history (Copy is quadratic).
func Table1(sc Scale) *Result {
	start := time.Now()
	res := &Result{ID: "table1", Title: "Access costs across temporal indexes"}

	events := Dataset1(sc)
	g, _ := graph.FromEvents(events)
	params := baseline.DeriveCostParams(len(events), g.NumNodes(), benchTGIConfig(len(events)).EventlistSize, 2, 500)
	res.TableHeader = []string{"index", "size", "snapshot", "static vertex", "vertex versions", "1-hop", "1-hop versions"}
	for _, row := range baseline.CostTable(params) {
		res.TableRows = append(res.TableRows, []string{
			row.Index,
			fmt.Sprintf("%.3g", row.Size),
			row.Snapshot.String(),
			row.StaticVertex.String(),
			row.VertexVersions.String(),
			row.OneHop.String(),
			row.OneHopVersions.String(),
		})
	}
	res.Notes = append(res.Notes, "analytical cells are Σ|∆| / Σ1 per Table 1 of the paper")

	// Measured reads on a small history (Copy stores O(G²)).
	small := workload.Wikipedia(workload.WikiConfig{Nodes: 600, EdgesPerNode: 3, Seed: 11})
	mk := func(name string) *kvstore.Cluster { return newCluster("table1/"+name, 2, 1) }
	tgiCfg := core.DefaultConfig()
	tgiCfg.TimespanEvents = len(small)
	tgiCfg.EventlistSize = max(len(small)/10, 1)
	tgiCfg.PartitionSize = 50
	tgiCfg.HorizontalPartitions = 2
	tgiCfg.CacheBytes = -1 // measured rows count store reads, not cache hits
	type entryT struct {
		name    string
		ix      baseline.Index
		cluster *kvstore.Cluster
	}
	withCluster := func(name string, c *kvstore.Cluster, mkIx func(*kvstore.Cluster) baseline.Index) entryT {
		return entryT{name: name, ix: mkIx(c), cluster: c}
	}
	chunk := max(len(small)/10, 1)
	indexes := []entryT{
		withCluster("Log", mk("log"), func(c *kvstore.Cluster) baseline.Index { return baseline.NewLogIndex(c, chunk) }),
		withCluster("Copy", mk("copy"), func(c *kvstore.Cluster) baseline.Index { return baseline.NewCopyIndex(c) }),
		withCluster("Copy+Log", mk("copylog"), func(c *kvstore.Cluster) baseline.Index {
			return baseline.NewCopyLogIndex(c, max(len(small)/4, 1), chunk)
		}),
		withCluster("Node Centric", mk("nodecentric"), func(c *kvstore.Cluster) baseline.Index { return baseline.NewNodeCentricIndex(c, 50) }),
		withCluster("DeltaGraph", mk("deltagraph"), func(c *kvstore.Cluster) baseline.Index { return baseline.NewDeltaGraph(c, chunk) }),
		withCluster("TGI", mk("tgi"), func(c *kvstore.Cluster) baseline.Index { return baseline.NewTGIAdapter("tgi", c, tgiCfg) }),
	}
	lo, hi := small[0].Time, small[len(small)-1].Time
	probe := (lo + hi) / 2
	res.Notes = append(res.Notes, "measured rows: store reads for snapshot / static vertex / vertex versions on a 600-node history")
	for _, entry := range indexes {
		if err := entry.ix.Build(small); err != nil {
			panic(fmt.Sprintf("bench: table1 build %s: %v", entry.name, err))
		}
	}
	hdr := []string{"index (measured)", "stored bytes", "snapshot reads", "static vertex reads", "vertex version reads"}
	res.TableRows = append(res.TableRows, hdr)
	for _, entry := range indexes {
		cluster := entry.cluster
		cluster.ResetMetrics()
		entry.ix.Snapshot(probe)
		snapReads := cluster.Metrics().Reads
		cluster.ResetMetrics()
		entry.ix.StaticNode(5, probe)
		nodeReads := cluster.Metrics().Reads
		cluster.ResetMetrics()
		entry.ix.NodeVersions(5, lo, hi+1)
		verReads := cluster.Metrics().Reads
		res.TableRows = append(res.TableRows, []string{
			entry.name,
			fmt.Sprintf("%d", entry.ix.StorageBytes()),
			fmt.Sprintf("%d", snapReads),
			fmt.Sprintf("%d", nodeReads),
			fmt.Sprintf("%d", verReads),
		})
	}
	// These clusters are not cached; release their engines (file
	// handles, when the disk backend is active).
	for _, entry := range indexes {
		entry.cluster.Close()
	}
	res.Elapsed = time.Since(start)
	return res
}

// AblationArity — snapshot latency and index size across tree arities.
func AblationArity(sc Scale) *Result {
	start := time.Now()
	events := Dataset1(sc)
	res := &Result{
		ID: "ablation-arity", Title: "Ablation: delta tree arity",
		XLabel: "arity", YLabel: "snapshot retrieval time (s)",
	}
	probe := probeTimes(events, 2)[1]
	s := Series{Name: "snapshot time (c=4)"}
	for _, k := range []int{2, 4, 8} {
		ix := buildIndex(fmt.Sprintf("abl-arity/%d", k), events, 4, 1, func(cfg *core.Config) { cfg.Arity = k })
		var sec float64
		ix.withLatencyMetered(res, fmt.Sprintf("arity=%d", k), func() {
			sec = timeIt(func() { ix.TGI.GetSnapshot(probe, &core.FetchOptions{Clients: 4}) })
		})
		st, _ := ix.TGI.Stats()
		res.Notes = append(res.Notes, fmt.Sprintf("arity=%d stored bytes: %d", k, st.LogicalBytes))
		s.Points = append(s.Points, Point{X: float64(k), Y: sec})
	}
	res.Series = append(res.Series, s)
	res.Elapsed = time.Since(start)
	return res
}

// AblationVersionChains — node history retrieval with and without the
// Versions table.
func AblationVersionChains(sc Scale) *Result {
	start := time.Now()
	events := Dataset1(sc)
	ix := buildIndex("fig11", events, 4, 1, nil)
	nodes := versionProbeNodes(events, 8)
	lo := events[0].Time
	hi := events[len(events)-1].Time + 1
	res := &Result{
		ID: "ablation-vc", Title: "Ablation: version chains on node history retrieval",
		XLabel: "version changes", YLabel: "retrieval time (s)",
	}
	withVC := Series{Name: "version chains"}
	without := Series{Name: "full eventlist scan"}
	ix.withLatencyMetered(res, "fig11 index", func() {
		for _, id := range nodes {
			var h *core.NodeHistory
			sec := timeIt(func() { h, _ = ix.TGI.GetNodeHistory(id, lo, hi, &core.FetchOptions{Clients: 1}) })
			withVC.Points = append(withVC.Points, Point{X: float64(h.VersionCount()), Y: sec})
			sec = timeIt(func() { h, _ = ix.TGI.GetNodeHistoryScan(id, lo, hi, &core.FetchOptions{Clients: 1}) })
			without.Points = append(without.Points, Point{X: float64(h.VersionCount()), Y: sec})
		}
	})
	res.Series = append(res.Series, withVC, without)
	res.Elapsed = time.Since(start)
	return res
}

// Order lists every experiment id in paper order.
var Order = []string{
	"table1",
	"fig11", "fig12",
	"fig13a", "fig13b", "fig13c",
	"fig14a", "fig14b", "fig14c",
	"fig15a", "fig15b", "fig15c",
	"fig16", "fig17",
	"cache", "tiering", "reopen", "parallel", "serve", "rebalance",
	"quorum", "ablation-arity", "ablation-vc",
}

// All runs every experiment in paper order.
func All(sc Scale) []*Result {
	out := make([]*Result, 0, len(Order))
	for _, id := range Order {
		out = append(out, Runners[id](sc))
	}
	return out
}

// Runners maps experiment ids to their runners for CLI selection.
var Runners = map[string]func(Scale) *Result{
	"table1":         Table1,
	"fig11":          Fig11,
	"fig12":          Fig12,
	"fig13a":         Fig13a,
	"fig13b":         Fig13b,
	"fig13c":         Fig13c,
	"fig14a":         Fig14a,
	"fig14b":         Fig14b,
	"fig14c":         Fig14c,
	"fig15a":         Fig15a,
	"fig15b":         Fig15b,
	"fig15c":         Fig15c,
	"fig16":          Fig16,
	"fig17":          Fig17,
	"cache":          CacheBench,
	"tiering":        TieringBench,
	"reopen":         ReopenBench,
	"parallel":       ParallelBench,
	"serve":          ServeBench,
	"rebalance":      RebalanceBench,
	"quorum":         QuorumBench,
	"ablation-arity": AblationArity,
	"ablation-vc":    AblationVersionChains,
}
