// Command hgs-server serves a Historical Graph Store over HTTP/JSON.
//
// Point it at a durable store directory (created by Load/Append or a
// previous -gen run) and it exposes the full query API — snapshots as
// streamed NDJSON, node and neighborhood histories, change times,
// analytics — plus the store's telemetry (/metrics, /debug/pprof/*,
// /traces) on one port:
//
//	hgs-server -data /var/lib/hgs -addr :8080
//	hgs-server -gen 20000 -addr :8080        # in-memory synthetic store
//
// Every request runs under a deadline (?timeout=500ms, capped by
// -max-timeout) and client disconnects cancel the retrieval mid-fetch.
// Overload is shed with 429 once -max-inflight requests are executing.
// SIGINT/SIGTERM drain in-flight requests, then close the store.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hgs"
	"hgs/internal/server"
	"hgs/internal/workload"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address (\":0\" picks a free port)")
		data        = flag.String("data", "", "durable store directory (empty: in-memory)")
		engine      = flag.String("engine", "", "storage engine: memory, disk, tiered (default: auto)")
		machines    = flag.Int("machines", 0, "storage cluster size (new stores)")
		replication = flag.Int("replication", 0, "replicas per partition (new stores; r>=2 keeps queries alive through /admin/node/fail)")
		gen         = flag.Int("gen", 0, "load a synthetic history of this many nodes if the store is empty")
		cacheMB     = flag.Int64("cache-mb", 0, "decoded-delta cache budget in MiB (0: default, <0: off)")
		tracePlans  = flag.Bool("trace", false, "keep recent plan traces (served on /traces)")
		maxInflight = flag.Int("max-inflight", 64, "concurrent request limit; excess sheds 429")
		timeout     = flag.Duration("timeout", 5*time.Second, "default per-request deadline")
		maxTimeout  = flag.Duration("max-timeout", 60*time.Second, "cap on client-requested ?timeout=")
		workers     = flag.Int("analytics-workers", 4, "TAF compute workers behind analytics endpoints")
	)
	flag.Parse()

	var cacheBytes int64
	switch {
	case *cacheMB < 0:
		cacheBytes = -1
	case *cacheMB > 0:
		cacheBytes = *cacheMB << 20
	}
	store, err := hgs.Open(hgs.Options{
		DataDir:     *data,
		Engine:      hgs.StorageEngine(*engine),
		Machines:    *machines,
		Replication: *replication,
		CacheBytes:  cacheBytes,
		TracePlans:  *tracePlans,
	})
	if err != nil {
		log.Fatalf("open store: %v", err)
	}
	defer store.Close()

	if !store.Loaded() {
		if *gen <= 0 {
			log.Fatalf("store at %q holds no index: load one first or pass -gen N", *data)
		}
		log.Printf("generating synthetic history (%d nodes)...", *gen)
		events := workload.Wikipedia(workload.WikiConfig{Nodes: *gen, EdgesPerNode: 4, Seed: 42})
		if err := store.Load(events); err != nil {
			log.Fatalf("load: %v", err)
		}
		log.Printf("indexed %d events", len(events))
	}

	srv := server.New(store, server.Config{
		MaxInFlight:      *maxInflight,
		DefaultTimeout:   *timeout,
		MaxTimeout:       *maxTimeout,
		AnalyticsWorkers: *workers,
	})
	bound, err := srv.Start(*addr)
	if err != nil {
		log.Fatalf("start: %v", err)
	}
	first, last, _ := store.TimeRange()
	log.Printf("serving on %s (history [%d, %d], engine %s)", bound, first, last, store.Engine())
	fmt.Printf("http://%s\n", bound)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	log.Printf("shutting down...")
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("shutdown: %v", err)
	}
}
