package codec

// Native fuzz targets for the framing and delta decoders. Both encode
// two properties beyond "no panic":
//
//   - error results carry no data: a failed unframe/decode must not
//     hand back bytes that alias a pooled scratch buffer;
//   - decoding is deterministic and release() is correctly paired:
//     decoding the same blob twice (with pool churn in between) yields
//     identical results, which fails if a decode path keeps a reference
//     into a released decompression arena.
//
// Seed corpora live in testdata/fuzz/<Target>/; CI runs each target
// briefly (-fuzz=<Target> -fuzztime=10s) on top of the regular
// regression replay that plain `go test` performs.

import (
	"bytes"
	"reflect"
	"testing"
)

func FuzzUnframe(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{flagPlain})
	f.Add(append([]byte{flagPlain}, []byte("hello world")...))
	f.Add([]byte{flagGzip, 0x1f, 0x8b, 0x00}) // torn gzip header
	f.Add([]byte{0x7F, 0x01, 0x02})           // unknown frame flag
	if gz, err := (Codec{Compress: true}).frame([]byte("seed payload")); err == nil {
		f.Add(gz)
	}
	f.Fuzz(func(t *testing.T, blob []byte) {
		data, release, err := unframe(blob)
		if err != nil {
			if data != nil {
				t.Fatalf("unframe error %v but returned %d data bytes", err, len(data))
			}
			return
		}
		snap := append([]byte(nil), data...)
		release()
		// Churn the pool: a gzip round-trip grabs and returns the same
		// arena class the first decode may have leaked a reference into.
		if gz, ferr := (Codec{Compress: true}).frame(bytes.Repeat([]byte{0xAB}, 64)); ferr == nil {
			if d2, r2, e2 := unframe(gz); e2 == nil {
				_ = d2
				r2()
			}
		}
		data2, release2, err2 := unframe(blob)
		if err2 != nil {
			t.Fatalf("unframe flipped to error on identical input: %v", err2)
		}
		if !bytes.Equal(snap, data2) {
			t.Fatalf("unframe not deterministic: first %d bytes, second %d bytes", len(snap), len(data2))
		}
		release2()
	})
}

func FuzzDecodeDelta(f *testing.F) {
	c := Codec{}
	if blob, err := c.EncodeDelta(randDelta(11, 20)); err == nil {
		f.Add(blob)
		f.Add(blob[:len(blob)/2]) // truncation
	}
	if blob, err := (Codec{Compress: true}).EncodeDelta(randDelta(12, 20)); err == nil {
		f.Add(blob)
	}
	// flagPlain + uvarint(2^40): the count-guard seed.
	f.Add([]byte{flagPlain, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01})
	f.Fuzz(func(t *testing.T, blob []byte) {
		d1, err1 := c.DecodeDelta(blob)
		if err1 != nil {
			if d1 != nil {
				t.Fatalf("DecodeDelta error %v but returned a delta", err1)
			}
			return
		}
		// Decode again: equal results prove nothing kept aliases a
		// pooled arena released by the first decode.
		d2, err2 := c.DecodeDelta(blob)
		if err2 != nil {
			t.Fatalf("DecodeDelta flipped to error on identical input: %v", err2)
		}
		if !reflect.DeepEqual(d1, d2) {
			t.Fatal("DecodeDelta not deterministic on identical input")
		}
		// A decoded delta must survive an encode/decode round trip.
		re, err := c.EncodeDelta(d1)
		if err != nil {
			t.Fatalf("re-encode of decoded delta failed: %v", err)
		}
		d3, err := c.DecodeDelta(re)
		if err != nil {
			t.Fatalf("decode of re-encoded delta failed: %v", err)
		}
		if !reflect.DeepEqual(d1, d3) {
			t.Fatal("delta changed across encode/decode round trip")
		}
	})
}
