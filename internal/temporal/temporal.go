// Package temporal defines the time model shared by every layer of the
// Historical Graph Store: a discrete, totally ordered timeline and
// half-open intervals over it.
//
// The paper (Khurana & Deshpande, EDBT 2016, §3.1) uses a discrete notion
// of time; we represent timepoints as int64 (callers may interpret them as
// Unix milliseconds, event sequence numbers, or any monotone clock).
package temporal

import "fmt"

// Time is a discrete timepoint on the history's timeline.
type Time int64

// Sentinel timepoints. MinTime behaves as -infinity and MaxTime as
// +infinity in interval arithmetic.
const (
	MinTime Time = -1 << 62
	MaxTime Time = 1<<62 - 1
)

// Interval is a half-open time range [Start, End). This matches the paper's
// convention for eventlist scopes (ts, te] shifted to the more common
// [ts, te) used uniformly here; a snapshot at t is the state after applying
// all events with time <= t.
type Interval struct {
	Start Time
	End   Time
}

// Always is the interval covering the entire timeline.
var Always = Interval{Start: MinTime, End: MaxTime}

// NewInterval returns [start, end) and panics if end < start, which is
// always a programming error.
func NewInterval(start, end Time) Interval {
	if end < start {
		panic(fmt.Sprintf("temporal: invalid interval [%d, %d)", start, end))
	}
	return Interval{Start: start, End: end}
}

// Contains reports whether t lies within the half-open interval.
func (iv Interval) Contains(t Time) bool {
	return t >= iv.Start && t < iv.End
}

// Overlaps reports whether the two half-open intervals share any timepoint.
func (iv Interval) Overlaps(other Interval) bool {
	return iv.Start < other.End && other.Start < iv.End
}

// Intersect returns the overlap of the two intervals and whether it is
// non-empty.
func (iv Interval) Intersect(other Interval) (Interval, bool) {
	start := max(iv.Start, other.Start)
	end := min(iv.End, other.End)
	if end <= start {
		return Interval{}, false
	}
	return Interval{Start: start, End: end}, true
}

// Union returns the smallest interval covering both inputs.
func (iv Interval) Union(other Interval) Interval {
	return Interval{Start: min(iv.Start, other.Start), End: max(iv.End, other.End)}
}

// Empty reports whether the interval contains no timepoint.
func (iv Interval) Empty() bool { return iv.End <= iv.Start }

// Duration returns End-Start; it saturates rather than overflowing for the
// sentinel interval.
func (iv Interval) Duration() Time {
	if iv.Empty() {
		return 0
	}
	d := iv.End - iv.Start
	if d < 0 || d > MaxTime { // saturate with sentinel endpoints
		return MaxTime
	}
	return d
}

// Midpoint returns the timepoint halfway through the interval, used by the
// Median temporal-collapse function (paper §4.5).
func (iv Interval) Midpoint() Time {
	return iv.Start + (iv.End-iv.Start)/2
}

func (iv Interval) String() string {
	return fmt.Sprintf("[%d, %d)", iv.Start, iv.End)
}
