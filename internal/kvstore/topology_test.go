package kvstore

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"hgs/internal/backend/disklog"
)

// fillCluster writes n partitions of two rows each and returns a checker
// that verifies every row is readable and correct.
func fillCluster(t *testing.T, c *Cluster, n int) func() {
	t.Helper()
	for i := 0; i < n; i++ {
		pk := fmt.Sprintf("p%03d", i)
		c.Put("t", pk, "a", []byte("va-"+pk))
		c.Put("t", pk, "b", []byte("vb-"+pk))
	}
	return func() {
		t.Helper()
		for i := 0; i < n; i++ {
			pk := fmt.Sprintf("p%03d", i)
			v, ok := c.Get("t", pk, "a")
			if !ok || string(v) != "va-"+pk {
				t.Fatalf("partition %s row a: ok=%v v=%q", pk, ok, v)
			}
			rows := c.ScanPartition("t", pk)
			if len(rows) != 2 || rows[1].CKey != "b" || string(rows[1].Value) != "vb-"+pk {
				t.Fatalf("partition %s scan: %v", pk, rows)
			}
		}
	}
}

func TestFailNodeReadsFailOver(t *testing.T) {
	c := newTestCluster(3, 2)
	defer c.Close()
	check := fillCluster(t, c, 40)

	if err := c.FailNode(1); err != nil {
		t.Fatal(err)
	}
	check()
	m := c.Metrics()
	if m.DegradedReads == 0 || m.Failovers == 0 {
		t.Fatalf("expected degraded reads and failovers with a node down, got %+v", m)
	}

	if err := c.ReviveNode(1); err != nil {
		t.Fatal(err)
	}
	c.ResetMetrics()
	check()
	m = c.Metrics()
	if m.DegradedReads != 0 || m.Failovers != 0 {
		t.Fatalf("counters kept growing after revive: %+v", m)
	}
}

func TestFailNodeWritesHintAndReplay(t *testing.T) {
	c := newTestCluster(2, 2)
	defer c.Close()
	if err := c.FailNode(0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		pk := fmt.Sprintf("p%02d", i)
		c.Put("t", pk, "k", []byte("v-"+pk))
	}
	m := c.Metrics()
	if m.HintedWrites == 0 || m.UnderReplicatedWrites == 0 {
		t.Fatalf("expected hinted and under-replicated writes, got %+v", m)
	}
	if err := c.ReviveNode(0); err != nil {
		t.Fatal(err)
	}
	// Fail the OTHER node: reads must now be served entirely by node 0,
	// which only has the data if hint replay worked.
	if err := c.FailNode(1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		pk := fmt.Sprintf("p%02d", i)
		v, ok := c.Get("t", pk, "k")
		if !ok || string(v) != "v-"+pk {
			t.Fatalf("hinted write not replayed for %s: ok=%v v=%q", pk, ok, v)
		}
	}
}

func TestAllReplicasDownReadsMiss(t *testing.T) {
	c := newTestCluster(2, 2)
	defer c.Close()
	c.Put("t", "p", "k", []byte("v"))
	c.FailNode(0)
	c.FailNode(1)
	if _, ok := c.Get("t", "p", "k"); ok {
		t.Fatal("read should miss with every replica down")
	}
	if got := c.MultiGet([]KeyRef{{Table: "t", PKey: "p", CKey: "k"}}); got[0].Found {
		t.Fatal("batched read should miss with every replica down")
	}
}

func TestInjectFaultFailsOver(t *testing.T) {
	c := newTestCluster(2, 2)
	defer c.Close()
	c.Put("t", "p", "k", []byte("v"))
	if err := c.InjectFault(0, &Fault{ErrRate: 1}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if v, ok := c.Get("t", "p", "k"); !ok || string(v) != "v" {
			t.Fatalf("read through injected fault: ok=%v v=%q", ok, v)
		}
	}
	if m := c.Metrics(); m.Failovers == 0 {
		t.Fatalf("injected fault should count failovers, got %+v", m)
	}
	c.InjectFault(0, nil)
	c.ResetMetrics()
	c.Get("t", "p", "k")
	// Rotation may still pick node 1 first, but nothing should fail.
	if m := c.Metrics(); m.Failovers != 0 {
		t.Fatalf("failovers after clearing fault: %+v", m)
	}
}

func TestBatchedReadsFailOver(t *testing.T) {
	c := newTestCluster(3, 2)
	defer c.Close()
	check := fillCluster(t, c, 30)
	_ = check
	c.FailNode(2)
	var refs []KeyRef
	var scans []ScanRef
	for i := 0; i < 30; i++ {
		pk := fmt.Sprintf("p%03d", i)
		refs = append(refs, KeyRef{Table: "t", PKey: pk, CKey: "a"})
		scans = append(scans, ScanRef{Table: "t", PKey: pk})
	}
	got := c.MultiGet(refs)
	for i, g := range got {
		want := "va-" + refs[i].PKey
		if !g.Found || string(g.Value) != want {
			t.Fatalf("MultiGet[%d]: found=%v v=%q want %q", i, g.Found, g.Value, want)
		}
	}
	rows := c.MultiScan(scans)
	for i, rs := range rows {
		if len(rs) != 2 {
			t.Fatalf("MultiScan[%d]: %d rows", i, len(rs))
		}
	}
}

// TestInjectFaultMidBatch exercises the batch retry path: the fault
// fires on some visits, so whole node batches error and every key must
// be re-served from the other replica.
func TestInjectFaultMidBatch(t *testing.T) {
	c := newTestCluster(2, 2)
	defer c.Close()
	fillCluster(t, c, 20)
	c.InjectFault(0, &Fault{ErrRate: 1})
	var refs []KeyRef
	for i := 0; i < 20; i++ {
		refs = append(refs, KeyRef{Table: "t", PKey: fmt.Sprintf("p%03d", i), CKey: "b"})
	}
	got := c.MultiGet(refs)
	for i, g := range got {
		want := "vb-" + refs[i].PKey
		if !g.Found || string(g.Value) != want {
			t.Fatalf("MultiGet[%d] under fault: found=%v v=%q", i, g.Found, g.Value)
		}
	}
}

func TestAddNodeRebalancesAndServes(t *testing.T) {
	c := NewCluster(Config{Machines: 3, Replication: 2, RebalanceRate: -1})
	defer c.Close()
	check := fillCluster(t, c, 60)

	before := c.Topology()
	if err := c.AddNode(3); err != nil {
		t.Fatal(err)
	}
	check() // reads must stay correct while the migration runs
	if err := c.WaitRebalance(); err != nil {
		t.Fatal(err)
	}
	check()
	if got := c.Machines(); got != 4 {
		t.Fatalf("machines after add = %d", got)
	}
	after := c.Topology()
	if len(after.Nodes) != 4 {
		t.Fatalf("topology nodes = %d", len(after.Nodes))
	}
	m := c.Metrics()
	if m.RebalancedPartitions == 0 {
		t.Fatal("expected some partitions to move on node add")
	}
	// Movement bound: a 4-node ring with r=2 should move well under
	// half the partitions (theoretical share ~ r/m = 1/2 of keys get a
	// changed owner SET upper-bounded by 2K/m; allow slack for a small
	// sample).
	if m.RebalancedPartitions > 45 {
		t.Fatalf("moved %d of 60 partitions — more than a consistent ring should", m.RebalancedPartitions)
	}
	_ = before
}

func TestRemoveNodeDrainsAndServes(t *testing.T) {
	c := NewCluster(Config{Machines: 4, Replication: 2, RebalanceRate: -1})
	defer c.Close()
	check := fillCluster(t, c, 60)
	if err := c.RemoveNode(2); err != nil {
		t.Fatal(err)
	}
	check()
	if err := c.WaitRebalance(); err != nil {
		t.Fatal(err)
	}
	check()
	if got := c.Machines(); got != 3 {
		t.Fatalf("machines after remove = %d", got)
	}
	for _, id := range c.NodeIDs() {
		if id == 2 {
			t.Fatal("removed node still listed")
		}
	}
	// Every partition must still have Replication live copies: fail one
	// node and everything must still answer.
	c.FailNode(0)
	check()
	c.ReviveNode(0)
	c.FailNode(1)
	check()
}

func TestAddNodeUnderLiveTraffic(t *testing.T) {
	c := NewCluster(Config{Machines: 2, Replication: 2, RebalanceRate: 64 << 20})
	defer c.Close()
	const parts = 80
	check := fillCluster(t, c, parts)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				pk := fmt.Sprintf("p%03d", (i*7+w)%parts)
				if v, ok := c.Get("t", pk, "a"); !ok || string(v) != "va-"+pk {
					t.Errorf("mid-rebalance read %s: ok=%v v=%q", pk, ok, v)
					return
				}
				if w == 0 {
					c.Put("t", pk, "c", []byte("vc-"+pk))
				}
				i++
			}
		}(w)
	}
	if err := c.AddNode(5); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitRebalance(); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
	if t.Failed() {
		return
	}
	_ = check
	// The original rows must survive the migration (the writer added a
	// third row "c" to some partitions, so assert a and b directly),
	// including after a replica failure.
	c.FailNode(5)
	for i := 0; i < parts; i++ {
		pk := fmt.Sprintf("p%03d", i)
		if v, ok := c.Get("t", pk, "a"); !ok || string(v) != "va-"+pk {
			t.Fatalf("row a lost for %s: ok=%v v=%q", pk, ok, v)
		}
		if v, ok := c.Get("t", pk, "b"); !ok || string(v) != "vb-"+pk {
			t.Fatalf("row b lost for %s: ok=%v v=%q", pk, ok, v)
		}
		if v, ok := c.Get("t", pk, "c"); ok && string(v) != "vc-"+pk {
			t.Fatalf("mid-rebalance write corrupted for %s: %q", pk, v)
		}
	}
}

// TestConcurrentTopologyCallsSerialized races several AddNode calls:
// the rebActive check-and-arm is one critical section under topoMu, so
// the losers must see ErrRebalancing and two migrations can never
// overlap (the double-begin corrupted handoff state and double-closed
// rebDone before the check moved under the lock).
func TestConcurrentTopologyCallsSerialized(t *testing.T) {
	c := NewCluster(Config{Machines: 3, Replication: 2, RebalanceRate: -1})
	defer c.Close()
	check := fillCluster(t, c, 30)
	id := 3
	for round := 0; round < 10; round++ {
		var wg sync.WaitGroup
		var errs [3]error
		for i := range errs {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				errs[i] = c.AddNode(id + i)
			}(i)
		}
		wg.Wait()
		added := 0
		for _, err := range errs {
			switch {
			case err == nil:
				added++
			case errors.Is(err, ErrRebalancing):
			default:
				t.Fatal(err)
			}
		}
		if added == 0 {
			t.Fatal("no AddNode won the race")
		}
		if err := c.WaitRebalance(); err != nil {
			t.Fatal(err)
		}
		// Shrink back to the base set so rounds don't accumulate nodes.
		for i, err := range errs {
			if err != nil {
				continue
			}
			for {
				rmErr := c.RemoveNode(id + i)
				if rmErr == nil {
					break
				}
				if !errors.Is(rmErr, ErrRebalancing) {
					t.Fatal(rmErr)
				}
				c.WaitRebalance()
			}
			if err := c.WaitRebalance(); err != nil {
				t.Fatal(err)
			}
		}
		id += 3
	}
	check()
}

// TestReviveConcurrentWritesNotLost hammers writes against a replica
// that flaps down/up: the hint append re-checks down under the same
// lock as revive's final drain, so no mutation may strand in the hint
// queue while the node serves reads.
func TestReviveConcurrentWritesNotLost(t *testing.T) {
	c := newTestCluster(2, 2)
	defer c.Close()
	const n = 300
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			c.FailNode(0)
			c.ReviveNode(0)
		}
	}()
	for i := 0; i < n; i++ {
		pk := fmt.Sprintf("p%04d", i)
		c.Put("t", pk, "k", []byte("v-"+pk))
	}
	close(stop)
	wg.Wait()
	if err := c.ReviveNode(0); err != nil {
		t.Fatal(err)
	}
	// Force every read onto node 0: each write must have been applied or
	// replayed there, never left queued.
	c.FailNode(1)
	for i := 0; i < n; i++ {
		pk := fmt.Sprintf("p%04d", i)
		if v, ok := c.Get("t", pk, "k"); !ok || string(v) != "v-"+pk {
			t.Fatalf("write lost on flapping replica: %s ok=%v v=%q", pk, ok, v)
		}
	}
}

// TestPersistentFaultWritesReplayOnClear drives writes into a replica
// whose every visit errors: the mutations hint, and clearing the fault
// profile replays them (a faulting node never passes through
// ReviveNode, which used to leave such hints stranded forever).
func TestPersistentFaultWritesReplayOnClear(t *testing.T) {
	c := newTestCluster(2, 2)
	defer c.Close()
	if err := c.InjectFault(0, &Fault{ErrRate: 1}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		pk := fmt.Sprintf("p%02d", i)
		c.Put("t", pk, "k", []byte("v-"+pk))
	}
	if m := c.Metrics(); m.HintedWrites == 0 || m.UnderReplicatedWrites == 0 {
		t.Fatalf("writes against a persistent fault should hint, got %+v", m)
	}
	if err := c.InjectFault(0, nil); err != nil {
		t.Fatal(err)
	}
	c.FailNode(1) // force every read onto the previously faulty node
	for i := 0; i < 20; i++ {
		pk := fmt.Sprintf("p%02d", i)
		if v, ok := c.Get("t", pk, "k"); !ok || string(v) != "v-"+pk {
			t.Fatalf("hint not replayed on fault clear for %s: ok=%v v=%q", pk, ok, v)
		}
	}
}

// TestTransientFaultWritesRetry: a fault profile below the retry budget
// must not hint at all — the write lands on every replica by retrying.
func TestTransientFaultWritesRetry(t *testing.T) {
	c := newTestCluster(2, 2)
	defer c.Close()
	if err := c.InjectFault(0, &Fault{ErrRate: 0.5}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		pk := fmt.Sprintf("p%02d", i)
		c.Put("t", pk, "k", []byte("v-"+pk))
	}
	if m := c.Metrics(); m.HintedWrites != 0 {
		t.Fatalf("transient faults should be retried, not hinted: %+v", m)
	}
	c.InjectFault(0, nil)
	c.FailNode(1)
	for i := 0; i < 20; i++ {
		pk := fmt.Sprintf("p%02d", i)
		if v, ok := c.Get("t", pk, "k"); !ok || string(v) != "v-"+pk {
			t.Fatalf("retried write missing on %s: ok=%v v=%q", pk, ok, v)
		}
	}
}

// TestDeleteReportsExistedAcrossReplicas: Delete must OR "existed" over
// the replicas, since during a handoff the first-listed (new-ring)
// owner may not hold the row yet while an old owner does.
func TestDeleteReportsExistedAcrossReplicas(t *testing.T) {
	c := newTestCluster(2, 2)
	defer c.Close()
	c.Put("t", "p", "k", []byte("v"))
	// Model a replica that has not received the partition yet by erasing
	// the row from the first write-route owner's engine directly.
	var rt route
	c.writeRoute("t", "p", &rt)
	rt.nodes[0].be.Delete("t", "p", "k")
	if !c.Delete("t", "p", "k") {
		t.Fatal("Delete should report existed while any replica held the row")
	}
	if c.Delete("t", "p", "k") {
		t.Fatal("second Delete should report not-existed")
	}
}

func TestTopologyGuards(t *testing.T) {
	c := newTestCluster(2, 2)
	defer c.Close()
	if err := c.FailNode(9); err == nil {
		t.Fatal("FailNode(9) should fail")
	}
	if err := c.AddNode(0); err == nil {
		t.Fatal("AddNode(0) should report duplicate")
	}
	if err := c.AddNode(-1); err == nil {
		t.Fatal("AddNode(-1) should fail")
	}
	if err := c.RemoveNode(1); err == nil {
		t.Fatal("RemoveNode below replication factor should fail")
	}
	if err := c.RemoveNode(7); err == nil {
		t.Fatal("RemoveNode(7) should fail")
	}
}

func TestRebalanceSerialized(t *testing.T) {
	c := NewCluster(Config{Machines: 2, Replication: 1, RebalanceRate: 1 << 10})
	defer c.Close()
	fillCluster(t, c, 30)
	if err := c.AddNode(2); err != nil {
		t.Fatal(err)
	}
	if err := c.AddNode(3); err != ErrRebalancing {
		t.Fatalf("second AddNode during migration: %v", err)
	}
	if err := c.WaitRebalance(); err != nil {
		t.Fatal(err)
	}
	if err := c.AddNode(3); err != nil {
		t.Fatalf("AddNode after migration: %v", err)
	}
	c.WaitRebalance()
}

func TestTopologyCommitHook(t *testing.T) {
	var mu sync.Mutex
	var committed [][]int
	c := NewCluster(Config{
		Machines: 2, Replication: 1, RebalanceRate: -1,
		OnTopologyCommit: func(nodes []int) error {
			mu.Lock()
			committed = append(committed, append([]int(nil), nodes...))
			mu.Unlock()
			return nil
		},
	})
	defer c.Close()
	fillCluster(t, c, 10)
	if err := c.AddNode(2); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitRebalance(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(committed) != 1 || len(committed[0]) != 3 {
		t.Fatalf("commit hook calls: %v", committed)
	}
}

func TestTopologyCommitFailureKeepsCopies(t *testing.T) {
	c := NewCluster(Config{
		Machines: 2, Replication: 1, RebalanceRate: -1,
		OnTopologyCommit: func([]int) error { return fmt.Errorf("disk full") },
	})
	defer c.Close()
	check := fillCluster(t, c, 20)
	if err := c.AddNode(2); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitRebalance(); err == nil {
		t.Fatal("WaitRebalance should surface the commit error")
	}
	check() // data still served, duplicates retained
}

func TestRebalanceDurableEngine(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(Config{Machines: 2, Replication: 2, RebalanceRate: -1,
		Backend: disklog.Factory(dir, disklog.Options{})})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	check := fillCluster(t, c, 30)
	if err := c.AddNode(2); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitRebalance(); err != nil {
		t.Fatal(err)
	}
	check()
	c.FailNode(0)
	check()
}

func TestTopologyInfo(t *testing.T) {
	c := newTestCluster(3, 2)
	defer c.Close()
	fillCluster(t, c, 30)
	info := c.Topology()
	if info.Replication != 2 || len(info.Nodes) != 3 || info.Partitions != 30 {
		t.Fatalf("topology: %+v", info)
	}
	var share float64
	for _, n := range info.Nodes {
		share += n.KeyShare
	}
	if share < 0.99 || share > 1.01 {
		t.Fatalf("key shares should sum to ~1, got %v", share)
	}
	if info.UnderReplicated != 0 {
		t.Fatalf("healthy cluster reports %d under-replicated partitions", info.UnderReplicated)
	}
	c.FailNode(1)
	info = c.Topology()
	if info.UnderReplicated == 0 {
		t.Fatal("down node should leave some partitions under-replicated")
	}
	if !info.Nodes[1].Down {
		t.Fatal("node 1 should report down")
	}
}

func TestRebalanceRateLimits(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	c := NewCluster(Config{Machines: 2, Replication: 1, RebalanceRate: 32 << 10})
	defer c.Close()
	// ~40 partitions × ~2 rows × ~10 bytes ≈ 1.5 KiB; at 32 KiB/s this
	// is well under a second but must take measurably longer than the
	// unthrottled case (which finishes in microseconds).
	fillCluster(t, c, 40)
	start := time.Now()
	if err := c.AddNode(2); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitRebalance(); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el < 5*time.Millisecond {
		t.Fatalf("rate-limited rebalance finished suspiciously fast: %v", el)
	}
}
