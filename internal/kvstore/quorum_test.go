package kvstore

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"hgs/internal/backend/disklog"
)

// engineOf reaches into a node's engine directly — tests create
// divergence and inspect per-replica state without the routing layer.
func engineOf(t *testing.T, c *Cluster, id int) *storageNode {
	t.Helper()
	n := c.nodeAt(id)
	if n == nil {
		t.Fatalf("node %d not in cluster", id)
	}
	return n
}

// drainRepairs waits until the background read-repair queue is empty.
func drainRepairs(t *testing.T, c *Cluster) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for c.PendingRepairs() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("read-repair queue did not drain: %d pending", c.PendingRepairs())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestQuorumConfigClamping(t *testing.T) {
	c := NewCluster(Config{Machines: 3, Replication: 3, ReadQuorum: 9, WriteQuorum: -5})
	defer c.Close()
	if r, w := c.Quorum(); r != 3 || w != 1 {
		t.Fatalf("Quorum() = %d,%d, want clamped 3,1", r, w)
	}
	c.SetQuorum(0, 0)
	if r, w := c.Quorum(); r != 1 || w != 3 {
		t.Fatalf("after SetQuorum(0,0): %d,%d, want defaults 1,3", r, w)
	}
	c.SetQuorum(2, 2)
	if r, w := c.Quorum(); r != 2 || w != 2 {
		t.Fatalf("after SetQuorum(2,2): %d,%d", r, w)
	}
}

func TestQuorumReadReturnsNewestAndRepairs(t *testing.T) {
	c := NewCluster(Config{Machines: 3, Replication: 3, ReadQuorum: 3})
	defer c.Close()
	c.Put("t", "p", "k", []byte("new"))

	// Roll one replica back to a stale version (stamp 1 orders before
	// any live write) and delete the row from another.
	ids := c.ReplicasOf("t", "p")
	stale := engineOf(t, c, ids[1])
	stale.mu.Lock()
	stale.be.Put("t", "p", "k", wrapStamp(1, []byte("old")))
	stale.mu.Unlock()
	missing := engineOf(t, c, ids[2])
	missing.mu.Lock()
	missing.be.Delete("t", "p", "k")
	missing.mu.Unlock()

	for i := 0; i < 3; i++ { // every rotation start must agree
		got, ok := c.Get("t", "p", "k")
		if !ok || string(got) != "new" {
			t.Fatalf("quorum Get #%d = %q,%v, want \"new\"", i, got, ok)
		}
	}
	drainRepairs(t, c)
	if c.Metrics().ReadRepairs == 0 {
		t.Fatal("divergent replicas observed but no read-repair counted")
	}
	for _, id := range ids {
		n := engineOf(t, c, id)
		n.mu.Lock()
		v, ok := n.be.Get("t", "p", "k")
		n.mu.Unlock()
		if !ok {
			t.Fatalf("node %d still missing the row after repair", id)
		}
		if _, payload := splitStamp(v); string(payload) != "new" {
			t.Fatalf("node %d = %q after repair, want \"new\"", id, payload)
		}
	}
}

func TestQuorumScanMergesNewestAcrossReplicas(t *testing.T) {
	c := NewCluster(Config{Machines: 3, Replication: 3, ReadQuorum: 3})
	defer c.Close()
	c.Put("t", "p", "a", []byte("a1"))
	c.Put("t", "p", "b", []byte("b1"))

	ids := c.ReplicasOf("t", "p")
	// One replica misses row b entirely, another holds a stale a.
	n1 := engineOf(t, c, ids[0])
	n1.mu.Lock()
	n1.be.Delete("t", "p", "b")
	n1.mu.Unlock()
	n2 := engineOf(t, c, ids[1])
	n2.mu.Lock()
	n2.be.Put("t", "p", "a", wrapStamp(1, []byte("a0")))
	n2.mu.Unlock()

	for i := 0; i < 3; i++ {
		rows := c.ScanPartition("t", "p")
		if len(rows) != 2 || string(rows[0].Value) != "a1" || string(rows[1].Value) != "b1" {
			t.Fatalf("quorum scan #%d = %+v, want merged newest [a1 b1]", i, rows)
		}
	}
	drainRepairs(t, c)
	for _, id := range ids {
		n := engineOf(t, c, id)
		n.mu.Lock()
		rows := n.be.ScanPrefix("t", "p", "")
		n.mu.Unlock()
		if len(rows) != 2 {
			t.Fatalf("node %d has %d rows after repair, want 2", id, len(rows))
		}
	}
}

func TestQuorumMultiGetMergesAndRepairs(t *testing.T) {
	c := NewCluster(Config{Machines: 3, Replication: 3, ReadQuorum: 2})
	defer c.Close()
	refs := make([]KeyRef, 8)
	for i := range refs {
		refs[i] = KeyRef{Table: "t", PKey: fmt.Sprintf("p%d", i%3), CKey: fmt.Sprintf("k%d", i)}
		c.Put(refs[i].Table, refs[i].PKey, refs[i].CKey, []byte(fmt.Sprintf("v%d", i)))
	}
	// Knock one replica of every key back to a stale version.
	for i, ref := range refs {
		ids := c.ReplicasOf(ref.Table, ref.PKey)
		n := engineOf(t, c, ids[i%len(ids)])
		n.mu.Lock()
		n.be.Put(ref.Table, ref.PKey, ref.CKey, wrapStamp(1, []byte("stale")))
		n.mu.Unlock()
	}
	// R=2 of 3: a single batch may consult the one stale replica pair —
	// but the newest version must win whenever the read sees it, and
	// repeated reads repair toward convergence.
	for round := 0; round < 6; round++ {
		out := c.MultiGet(refs)
		for i, res := range out {
			if !res.Found {
				t.Fatalf("round %d: ref %d not found", round, i)
			}
		}
		drainRepairs(t, c)
	}
	out := c.MultiGet(refs)
	for i, res := range out {
		want := fmt.Sprintf("v%d", i)
		if !res.Found || string(res.Value) != want {
			t.Fatalf("after repair rounds: ref %d = %q,%v want %q", i, res.Value, res.Found, want)
		}
	}
}

func TestQuorumWriteCompletesAllReplicasInBackground(t *testing.T) {
	c := NewCluster(Config{Machines: 3, Replication: 3, WriteQuorum: 1})
	for i := 0; i < 50; i++ {
		c.Put("t", fmt.Sprintf("p%d", i), "k", []byte("v"))
	}
	// Close barriers on the write gate, so every background replica
	// apply has landed by the time it returns.
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		pkey := fmt.Sprintf("p%d", i)
		for _, id := range c.ReplicasOf("t", pkey) {
			n := c.nodeAt(id)
			v, ok := n.be.Get("t", pkey, "k")
			if !ok {
				t.Fatalf("replica %d of %s missing the row after quorum write", id, pkey)
			}
			if _, payload := splitStamp(v); string(payload) != "v" {
				t.Fatalf("replica %d of %s = %q", id, pkey, payload)
			}
		}
	}
}

func TestQuorumWriteDownReplicaStillHints(t *testing.T) {
	c := NewCluster(Config{Machines: 3, Replication: 3, WriteQuorum: 2})
	defer c.Close()
	ids := c.ReplicasOf("t", "p")
	if err := c.FailNode(ids[2]); err != nil {
		t.Fatal(err)
	}
	c.Put("t", "p", "k", []byte("v"))
	// Put returns after W=2 acks; barrier on the write gate so the
	// background tail has queued the hint before we revive.
	c.writeGate.Lock()
	c.writeGate.Unlock() //nolint:staticcheck // empty critical section is the barrier
	if err := c.ReviveNode(ids[2]); err != nil {
		t.Fatal(err)
	}
	n := engineOf(t, c, ids[2])
	n.mu.Lock()
	v, ok := n.be.Get("t", "p", "k")
	n.mu.Unlock()
	if !ok {
		t.Fatal("revived replica missing hinted quorum write")
	}
	if _, payload := splitStamp(v); string(payload) != "v" {
		t.Fatalf("revived replica = %q", payload)
	}
	m := c.Metrics()
	if m.HintedWrites == 0 || m.UnderReplicatedWrites == 0 {
		t.Fatalf("hinted/under-replicated not counted: %+v", m)
	}
}

func TestReplayHintDoesNotRollBackNewerRow(t *testing.T) {
	c := newTestCluster(1, 1)
	defer c.Close()
	n := c.nodeList()[0]
	n.be.Put("t", "p", "k", wrapStamp(10, []byte("new")))
	replayHint(n.be, hint{op: hintPut, table: "t", pkey: "p", ckey: "k", value: wrapStamp(5, []byte("old"))})
	v, _ := n.be.Get("t", "p", "k")
	if _, payload := splitStamp(v); string(payload) != "new" {
		t.Fatalf("stale hint replay rolled the row back to %q", payload)
	}
	replayHint(n.be, hint{op: hintPut, table: "t", pkey: "p", ckey: "k", value: wrapStamp(11, []byte("newer"))})
	v, _ = n.be.Get("t", "p", "k")
	if _, payload := splitStamp(v); string(payload) != "newer" {
		t.Fatalf("newer hint replay skipped: %q", payload)
	}
}

func TestAntiEntropyConvergesDivergedReplicas(t *testing.T) {
	c := NewCluster(Config{Machines: 3, Replication: 3})
	defer c.Close()
	for i := 0; i < 10; i++ {
		c.Put("t", fmt.Sprintf("p%d", i%3), fmt.Sprintf("k%d", i), []byte(fmt.Sprintf("v%d", i)))
	}
	// Healthy cluster: a sweep finds nothing and streams nothing.
	stats, err := c.RepairPartitions()
	if err != nil {
		t.Fatal(err)
	}
	if stats != (RepairStats{}) {
		t.Fatalf("healthy sweep repaired %+v, want zero", stats)
	}

	// Diverge one replica of p1: stale row + missing row.
	ids := c.ReplicasOf("t", "p1")
	n := engineOf(t, c, ids[0])
	n.mu.Lock()
	n.be.Put("t", "p1", "k1", wrapStamp(1, []byte("stale")))
	n.be.Delete("t", "p1", "k4")
	n.mu.Unlock()

	stats, err = c.RepairPartitions()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Partitions != 1 {
		t.Fatalf("sweep repaired %d partitions, want exactly the diverged one", stats.Partitions)
	}
	if stats.Rows == 0 || stats.Bytes == 0 {
		t.Fatalf("sweep streamed nothing: %+v", stats)
	}
	// All replicas byte-identical now; a second sweep is a no-op.
	var want []Row
	for i, id := range ids {
		node := engineOf(t, c, id)
		node.mu.Lock()
		rows := node.be.ScanPrefix("t", "p1", "")
		node.mu.Unlock()
		if i == 0 {
			want = rows
			continue
		}
		if len(rows) != len(want) {
			t.Fatalf("node %d has %d rows, first replica %d", id, len(rows), len(want))
		}
		for j := range rows {
			if rows[j].CKey != want[j].CKey || !bytes.Equal(rows[j].Value, want[j].Value) {
				t.Fatalf("replicas differ at row %d: %q vs %q", j, rows[j], want[j])
			}
		}
	}
	stats, err = c.RepairPartitions()
	if err != nil {
		t.Fatal(err)
	}
	if stats != (RepairStats{}) {
		t.Fatalf("second sweep repaired %+v, want zero", stats)
	}
	m := c.Metrics()
	if m.AntiEntropyRuns != 3 || m.AntiEntropyPartitions != 1 {
		t.Fatalf("anti-entropy metrics %+v", m)
	}
}

func TestAntiEntropySkipsDownReplica(t *testing.T) {
	c := NewCluster(Config{Machines: 3, Replication: 3})
	defer c.Close()
	c.Put("t", "p", "k", []byte("v"))
	ids := c.ReplicasOf("t", "p")
	if err := c.FailNode(ids[0]); err != nil {
		t.Fatal(err)
	}
	// The down replica cannot be compared or repaired; the live pair is
	// consistent, so the sweep does nothing — and must not touch the
	// down node's engine.
	stats, err := c.RepairPartitions()
	if err != nil {
		t.Fatal(err)
	}
	if stats != (RepairStats{}) {
		t.Fatalf("sweep with a down replica repaired %+v", stats)
	}
}

func TestRepairPartitionsGuards(t *testing.T) {
	c := newTestCluster(3, 2)
	defer c.Close()
	c.aeActive.Store(true)
	if _, err := c.RepairPartitions(); !errors.Is(err, ErrRepairRunning) {
		t.Fatalf("overlapping sweep: err = %v, want ErrRepairRunning", err)
	}
	c.aeActive.Store(false)
	c.rebActive.Store(true)
	if _, err := c.RepairPartitions(); !errors.Is(err, ErrRebalancing) {
		t.Fatalf("sweep during rebalance: err = %v, want ErrRebalancing", err)
	}
	c.rebActive.Store(false)
}

func TestAntiEntropyBackgroundLoop(t *testing.T) {
	c := NewCluster(Config{Machines: 3, Replication: 3, AntiEntropyInterval: 2 * time.Millisecond})
	defer c.Close()
	c.Put("t", "p", "k", []byte("v"))
	ids := c.ReplicasOf("t", "p")
	n := engineOf(t, c, ids[0])
	n.mu.Lock()
	n.be.Delete("t", "p", "k")
	n.mu.Unlock()
	deadline := time.Now().Add(5 * time.Second)
	for {
		n.mu.Lock()
		_, ok := n.be.Get("t", "p", "k")
		n.mu.Unlock()
		if ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("background anti-entropy loop never converged the diverged replica")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestInMemoryHintsDieWithProcess documents the pre-durable-hints
// failure mode this PR closes: without a HintDir, a hint queued for a
// down replica lives only in memory, so a restart silently loses the
// write on that replica (divergence until anti-entropy finds it).
func TestInMemoryHintsDieWithProcess(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Machines: 3, Replication: 2, Backend: disklog.Factory(dir, disklog.Options{})}
	c, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ids := c.ReplicasOf("t", "p")
	if err := c.FailNode(ids[1]); err != nil {
		t.Fatal(err)
	}
	c.Put("t", "p", "k", []byte("v"))
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	c2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	n := engineOf(t, c2, ids[1])
	n.mu.Lock()
	_, ok := n.be.Get("t", "p", "k")
	n.mu.Unlock()
	if ok {
		t.Fatal("in-memory hint unexpectedly survived the restart — divergence window closed?")
	}
}

// TestDurableHintsSurviveReopen is the acceptance test for the durable
// hint log: the same scenario as TestInMemoryHintsDieWithProcess, but
// with a HintDir the queued hint is replayed at reopen and the replica
// converges. On pre-PR code (no hint log) this fails.
func TestDurableHintsSurviveReopen(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		Machines:    3,
		Replication: 2,
		Backend:     disklog.Factory(dir, disklog.Options{}),
		HintDir:     filepath.Join(dir, "hints"),
	}
	c, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ids := c.ReplicasOf("t", "p")
	if err := c.FailNode(ids[1]); err != nil {
		t.Fatal(err)
	}
	c.Put("t", "p", "k", []byte("v"))
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	c2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	// The hint was replayed straight into the engine at open; the node
	// starts live and every read path sees the row.
	n := engineOf(t, c2, ids[1])
	n.mu.Lock()
	v, ok := n.be.Get("t", "p", "k")
	n.mu.Unlock()
	if !ok {
		t.Fatal("durable hint was not replayed on reopen")
	}
	if _, payload := splitStamp(v); string(payload) != "v" {
		t.Fatalf("replayed row = %q, want \"v\"", payload)
	}
	if got, ok := c2.Get("t", "p", "k"); !ok || string(got) != "v" {
		t.Fatalf("Get after reopen = %q,%v", got, ok)
	}
	// The replayed log restarts empty: a second reopen has nothing to do.
	if err := c2.Flush(); err != nil {
		t.Fatal(err)
	}
	log := filepath.Join(dir, "hints", hintFileName(ids[1]))
	if fi, err := os.Stat(log); err != nil || fi.Size() != 0 {
		t.Fatalf("hint log not truncated after replay: size=%v err=%v", fi, err)
	}
}

func TestDurableHintReplayIsStampGuarded(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		Machines:    3,
		Replication: 2,
		Backend:     disklog.Factory(dir, disklog.Options{}),
		HintDir:     filepath.Join(dir, "hints"),
	}
	c, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ids := c.ReplicasOf("t", "p")
	if err := c.FailNode(ids[1]); err != nil {
		t.Fatal(err)
	}
	c.Put("t", "p", "k", []byte("old")) // hinted to the down replica
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	// A newer version landed on the replica out of band (e.g. repair in
	// a previous life): replay must not roll it back.
	c1, err := Open(Config{Machines: 3, Replication: 2, Backend: disklog.Factory(dir, disklog.Options{})})
	if err != nil {
		t.Fatal(err)
	}
	n := engineOf(t, c1, ids[1])
	n.mu.Lock()
	n.be.Put("t", "p", "k", wrapStamp(^uint64(0), []byte("newer")))
	n.mu.Unlock()
	if err := c1.Close(); err != nil {
		t.Fatal(err)
	}

	c2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	n = engineOf(t, c2, ids[1])
	n.mu.Lock()
	v, _ := n.be.Get("t", "p", "k")
	n.mu.Unlock()
	if _, payload := splitStamp(v); string(payload) != "newer" {
		t.Fatalf("stale hint replay rolled the replica back to %q", payload)
	}
}

func TestHintLogTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "node-000.hints")
	hl, pending, err := openHintLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) != 0 {
		t.Fatalf("fresh log has %d pending hints", len(pending))
	}
	hl.append(hint{op: hintPut, table: "t", pkey: "p", ckey: "a", value: []byte("one")})
	hl.append(hint{op: hintDelete, table: "t", pkey: "p", ckey: "b"})
	hl.append(hint{op: hintDrop, table: "t", pkey: "q"})
	if err := hl.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the tail mid-record.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	hl2, pending, err := openHintLog(path)
	if err != nil {
		t.Fatal(err)
	}
	defer hl2.Close()
	if len(pending) != 2 {
		t.Fatalf("recovered %d hints past a torn tail, want the 2 intact ones", len(pending))
	}
	if pending[0].op != hintPut || pending[0].ckey != "a" || string(pending[0].value) != "one" {
		t.Fatalf("record 0 decoded wrong: %+v", pending[0])
	}
	if pending[1].op != hintDelete || pending[1].ckey != "b" {
		t.Fatalf("record 1 decoded wrong: %+v", pending[1])
	}
	if fi, _ := os.Stat(path); fi.Size() == int64(len(data)-3) {
		t.Fatal("torn tail was not truncated")
	}
}

func TestHintLogCorruptRecordStopsReplay(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "node-000.hints")
	hl, _, err := openHintLog(path)
	if err != nil {
		t.Fatal(err)
	}
	hl.append(hint{op: hintPut, table: "t", pkey: "p", ckey: "a", value: []byte("one")})
	hl.append(hint{op: hintPut, table: "t", pkey: "p", ckey: "b", value: []byte("two")})
	if err := hl.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF // flip a payload byte of the second record
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, pending, err := openHintLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) != 1 || pending[0].ckey != "a" {
		t.Fatalf("CRC-failed record not dropped: %+v", pending)
	}
}

func TestRemovedNodeHintLogDeleted(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(Config{Machines: 4, Replication: 2, HintDir: filepath.Join(dir, "hints")})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Put("t", "p", "k", []byte("v"))
	log := filepath.Join(dir, "hints", hintFileName(3))
	if _, err := os.Stat(log); err != nil {
		t.Fatalf("hint log missing before removal: %v", err)
	}
	if err := c.RemoveNode(3); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitRebalance(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(log); !os.IsNotExist(err) {
		t.Fatalf("retired node's hint log still on disk: %v", err)
	}
}
