package bench

import (
	"fmt"
	"os"
	"time"

	"hgs/internal/backend/tiered"
	"hgs/internal/core"
	"hgs/internal/graph"
	"hgs/internal/kvstore"
	"hgs/internal/temporal"
)

// ReopenBench measures what a process restart costs the tiered backend
// with and without hot-tier warm-up. The paper's premise is that
// queries over recent timespans dominate; pre-warm-up, a restart
// emptied the hot tier, so exactly those queries paid the cold-read
// surcharge until the working set trickled back. The experiment builds
// a tiered index, flushes it cold, closes the store, then reopens it
// twice — warm-up off (the old cold start) and warm-up on — and runs
// the same recent-timespan probe workload after each reopen, reporting
// the per-tier read split and the simulated service time.
func ReopenBench(sc Scale) *Result {
	start := time.Now()
	res := &Result{
		ID:    "reopen",
		Title: "Tiered backend restart: recent-timespan probes after reopen, warm-up off vs on (m=4)",
	}
	coldM, warmM := ReopenPasses(sc)
	res.TableHeader = []string{"reopen", "hot reads", "cold reads", "hit ratio", "warmed rows", "warmed KB", "sim wait"}
	row := func(name string, m kvstore.Metrics) []string {
		return []string{
			name,
			fmt.Sprintf("%d", m.TierHotReads),
			fmt.Sprintf("%d", m.TierColdReads),
			fmt.Sprintf("%.3f", hitRatio(m)),
			fmt.Sprintf("%d", m.WarmedRows),
			fmt.Sprintf("%d", m.WarmedBytes/1024),
			m.SimWait.Round(time.Millisecond).String(),
		}
	}
	res.TableRows = append(res.TableRows, row("cold (warm-up off)", coldM), row("warm (warm-up on)", warmM))
	res.Notes = append(res.Notes,
		fmt.Sprintf("warm-up cuts the post-restart simulated wait from %s to %s (%.1fx)",
			coldM.SimWait.Round(time.Millisecond), warmM.SimWait.Round(time.Millisecond),
			float64(coldM.SimWait)/float64(max(int64(warmM.SimWait), 1))),
		"warm-up repopulates memory from the newest cold rows before the probes run (TierWarming==0); the cold pass serves the same probes from disklog segments")
	res.Elapsed = time.Since(start)
	return res
}

// hitRatio is the fraction of tier-counted row lookups served from
// memory.
func hitRatio(m kvstore.Metrics) float64 {
	total := m.TierHotReads + m.TierColdReads
	if total == 0 {
		return 0
	}
	return float64(m.TierHotReads) / float64(total)
}

// ReopenPasses is the testable core of the reopen experiment: it
// returns the probe-workload metrics of the cold reopen (warm-up off)
// and the warm reopen (warm-up on). The index is built with a tiny hot
// budget so the build's flushing leaves essentially everything in cold
// segments with the WAL retired — the on-disk state a long-running
// store restarts from.
func ReopenPasses(sc Scale) (coldM, warmM kvstore.Metrics) {
	events := Dataset1(sc)
	dir, err := os.MkdirTemp("", "hgs-reopen-")
	if err != nil {
		panic(fmt.Sprintf("bench: reopen tempdir: %v", err))
	}
	defer os.RemoveAll(dir)

	// Build phase: a 1-byte hot budget keeps the drain latch engaged, so
	// by the time the gauge reads zero every row is in cold segments and
	// the WAL is retired — the on-disk state of a store that has been
	// running (and flushing) for a long time.
	// Small WAL segments matter: only fully-superseded non-active
	// segments retire, and whatever the WAL still holds replays straight
	// back into the hot tier on reopen — with the default 16 MiB
	// segments a small index would never restart cold at all.
	buildOpts := tiered.Options{
		HotBytes:        1,
		CompactRate:     -1,
		FlushInterval:   time.Millisecond,
		WALSegmentBytes: 4 << 10,
		DisableWarm:     true,
	}
	cluster, err := kvstore.Open(kvstore.Config{Machines: 4, Backend: tiered.Factory(dir, buildOpts)})
	if err != nil {
		panic(fmt.Sprintf("bench: reopen cluster: %v", err))
	}
	cfg := benchTGIConfig(len(events))
	if _, err := core.Build(cluster, cfg, events); err != nil {
		panic(fmt.Sprintf("bench: reopen build: %v", err))
	}
	deadline := time.Now().Add(30 * time.Second)
	for cluster.Metrics().TierHotBytes > 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if cluster.Metrics().TierHotBytes > 0 {
		panic("bench: reopen build never drained cold")
	}
	if err := cluster.Close(); err != nil {
		panic(fmt.Sprintf("bench: reopen close: %v", err))
	}

	probes := probeTimes(events, 6)
	recent := probes[len(probes)-3:] // the hot assumption: query the newest times
	coldM = reopenPass(dir, cfg, recent, true)
	warmM = reopenPass(dir, cfg, recent, false)
	return coldM, warmM
}

// reopenPass reopens the tiered store at dir (a generous hot budget,
// warm-up per disableWarm), waits for any warm-up to finish, runs the
// recent-timespan probe workload under the latency model, and returns
// the workload's metrics delta.
func reopenPass(dir string, cfg core.Config, recent []temporal.Time, disableWarm bool) kvstore.Metrics {
	opts := tiered.Options{
		HotBytes:         64 << 20,
		CompactRate:      32 << 20,
		FlushInterval:    time.Millisecond,
		DisableWarm:      disableWarm,
		IdleCompactAfter: -1, // measure warm-up alone, not idle re-warming
	}
	cluster, err := kvstore.Open(kvstore.Config{Machines: 4, Backend: tiered.Factory(dir, opts)})
	if err != nil {
		panic(fmt.Sprintf("bench: reopen pass: %v", err))
	}
	defer cluster.Close()
	tgi, attached, err := core.Attach(cluster, cfg)
	if err != nil || !attached {
		panic(fmt.Sprintf("bench: reopen attach: %v (attached=%v)", err, attached))
	}
	deadline := time.Now().Add(30 * time.Second)
	for cluster.Metrics().TierWarming > 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if cluster.Metrics().TierWarming > 0 {
		panic("bench: reopen warm-up never finished")
	}

	// The probe nodes must be picked identically in both passes; derive
	// them from the newest snapshot before metrics are reset.
	full, err := tgi.GetSnapshot(recent[len(recent)-1], nil)
	if err != nil {
		panic(fmt.Sprintf("bench: reopen probe: %v", err))
	}
	ids := full.NodeIDs()
	nodes := make([]graph.NodeID, 0, 24)
	for i := 0; i < 24 && i < len(ids); i++ {
		nodes = append(nodes, ids[len(ids)*i/24])
	}

	// ResetMetrics baselines the cumulative tier counters, so snapshot
	// the warm-up's work first; the returned metrics carry this reopen's
	// warmed totals next to the probe-only read split.
	warmedRows, warmedBytes := cluster.Metrics().WarmedRows, cluster.Metrics().WarmedBytes
	cluster.ResetMetrics()
	cluster.SetLatency(kvstore.DefaultLatency())
	for _, tt := range recent {
		if _, err := tgi.GetSnapshot(tt, &core.FetchOptions{Clients: 4}); err != nil {
			panic(fmt.Sprintf("bench: reopen snapshot: %v", err))
		}
	}
	for _, id := range nodes {
		if _, err := tgi.GetNodeAt(id, recent[len(recent)-1], nil); err != nil {
			panic(fmt.Sprintf("bench: reopen node fetch: %v", err))
		}
	}
	cluster.SetLatency(kvstore.LatencyModel{})
	m := cluster.Metrics()
	m.WarmedRows, m.WarmedBytes = warmedRows, warmedBytes
	return m
}
