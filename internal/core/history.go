package core

import (
	"context"
	"sort"

	"hgs/internal/fetch"
	"hgs/internal/graph"
	"hgs/internal/temporal"
)

// NodeHistory is the evolution of one node over an interval: its state at
// the interval start plus every event touching it afterwards (the result
// of Algorithm 2).
type NodeHistory struct {
	ID       graph.NodeID
	Interval temporal.Interval
	// Initial is the node state at Interval.Start, nil if the node did
	// not exist then.
	Initial *graph.NodeState
	// Events are the changes touching the node with Start < Time < End,
	// chronological.
	Events []graph.Event
}

// VersionCount returns the number of recorded changes.
func (h *NodeHistory) VersionCount() int { return len(h.Events) }

// StateAt replays the history to the node's state at time tt (which must
// lie in the history's interval); nil if the node does not exist at tt.
func (h *NodeHistory) StateAt(tt temporal.Time) *graph.NodeState {
	g := graph.New()
	if h.Initial != nil {
		g.PutNode(h.Initial.Clone())
	}
	for _, e := range h.Events {
		if e.Time > tt {
			break
		}
		g.Apply(e)
	}
	ns := g.Node(h.ID)
	if ns == nil {
		return nil
	}
	return ns.Clone()
}

// Versions materializes the distinct states of the node with their
// validity intervals (paper Definition 6's decomposition).
func (h *NodeHistory) Versions() []graph.Version {
	var out []graph.Version
	g := graph.New()
	if h.Initial != nil {
		g.PutNode(h.Initial.Clone())
	}
	cur := h.Interval.Start
	snapshot := func() *graph.NodeState {
		if ns := g.Node(h.ID); ns != nil {
			return ns.Clone()
		}
		return nil
	}
	prev := snapshot()
	for i := 0; i < len(h.Events); {
		tt := h.Events[i].Time
		for i < len(h.Events) && h.Events[i].Time == tt {
			g.Apply(h.Events[i])
			i++
		}
		next := snapshot()
		if !nodeStatesEqual(prev, next) {
			if prev != nil {
				out = append(out, graph.Version{State: prev, Valid: temporal.Interval{Start: cur, End: tt}})
			}
			prev = next
			cur = tt
		}
	}
	if prev != nil {
		out = append(out, graph.Version{State: prev, Valid: temporal.Interval{Start: cur, End: h.Interval.End}})
	}
	return out
}

func nodeStatesEqual(a, b *graph.NodeState) bool {
	if a == nil || b == nil {
		return a == b
	}
	return a.Equal(b)
}

// overlappingSpans returns the metadata of every timespan intersecting
// [ts, te).
func (t *TGI) overlappingSpans(gm *GraphMeta, ts, te temporal.Time) ([]*TimespanMeta, error) {
	var out []*TimespanMeta
	for tsid := 0; tsid < gm.TimespanCount; tsid++ {
		tm, err := t.loadTimespanMeta(tsid)
		if err != nil {
			return nil, err
		}
		if tm.End <= ts || tm.Start >= te {
			continue
		}
		out = append(out, tm)
	}
	return out, nil
}

// versionChains fetches the version-chain rows of one node across the
// given spans in a single batched read, returning the decoded entries
// per span (nil where the node has no chain in that span).
func (t *TGI) versionChains(ctx context.Context, spans []*TimespanMeta, sid int, id graph.NodeID, clients int, tr *fetch.Trace) ([][]vcEntry, error) {
	plan := fetch.NewPlan()
	for _, tm := range spans {
		plan.Get(TableVersions, placementKey(tm.TSID, sid), nodeCKey(id))
	}
	res, err := t.fx.ExecCtx(ctx, plan, clients, tr)
	if err != nil {
		return nil, err
	}
	out := make([][]vcEntry, len(spans))
	for i, tm := range spans {
		blob, ok := res.Get(TableVersions, placementKey(tm.TSID, sid), nodeCKey(id))
		if !ok {
			continue
		}
		entries, err := decodeVC(blob)
		if err != nil {
			return nil, err
		}
		out[i] = entries
	}
	return out, nil
}

// elRef names one micro-eventlist a history retrieval must read.
type elRef struct {
	tm  *TimespanMeta
	el  int
	pid int
}

// fetchHistoryEvents fetches the referenced micro-eventlists as one
// batched, cache-accounted read, filters them on the materialize-worker
// pool, and returns the chronological, deduplicated events touching id
// within (ts, te). Decoded event slices may be shared with the cache;
// filtering copies the kept events into fresh slices.
func (t *TGI) fetchHistoryEvents(ctx context.Context, refs []elRef, sid int, id graph.NodeID, ts, te temporal.Time, clients int, tr *fetch.Trace) ([]graph.Event, error) {
	plan := fetch.NewPlan()
	for _, ref := range refs {
		plan.EventPart(ref.tm.TSID, sid, ref.el, ref.pid)
	}
	res, err := t.fx.ExecCtx(ctx, plan, clients, tr)
	if err != nil {
		return nil, err
	}
	lists := make([][]graph.Event, len(refs))
	tasks := make([]func() error, 0, len(refs))
	for i, ref := range refs {
		i, ref := i, ref
		tasks = append(tasks, func() error {
			evs, found := res.EventPart(ref.tm.TSID, sid, ref.el, ref.pid)
			if !found {
				return nil
			}
			var mine []graph.Event
			for _, e := range evs {
				if e.Touches(id) && e.Time > ts && e.Time < te {
					mine = append(mine, e)
				}
			}
			lists[i] = mine
			return nil
		})
	}
	if err := runParallel(ctx, t.cfg.materializeWorkers(), tasks); err != nil {
		return nil, err
	}
	return mergeSortEvents(lists), nil
}

// GetNodeHistory retrieves a node's history over [ts, te) following
// Algorithm 2: reconstruct the state at ts through the node's
// micro-partition, then use the version chains to plan exactly the
// micro-eventlists containing its changes, fetched as one batched read.
func (t *TGI) GetNodeHistory(id graph.NodeID, ts, te temporal.Time, opts *FetchOptions) (*NodeHistory, error) {
	tr, done := t.startTrace("node-history", opts)
	defer done()
	ctx := opts.ctx()
	gm, err := t.loadGraphMeta()
	if err != nil {
		return nil, err
	}
	initial, err := t.getNodeAt(ctx, id, ts, tr)
	if err != nil {
		return nil, err
	}
	h := &NodeHistory{ID: id, Interval: temporal.Interval{Start: ts, End: te}, Initial: initial}
	sid := t.sidOf(id)
	clients := t.cfg.clients(opts)

	spans, err := t.overlappingSpans(gm, ts, te)
	if err != nil {
		return nil, err
	}
	chains, err := t.versionChains(ctx, spans, sid, id, clients, tr)
	if err != nil {
		return nil, err
	}

	// Collect (timespan, eventlist) references whose chains record a
	// change inside (ts, te).
	var refs []elRef
	for i, tm := range spans {
		pid := -1
		for _, e := range chains[i] {
			hasInRange := false
			for _, tt := range e.times {
				if tt > ts && tt < te {
					hasInRange = true
					break
				}
			}
			if !hasInRange {
				continue
			}
			if pid < 0 {
				if pid, err = t.pidOf(tm, sid, id); err != nil {
					return nil, err
				}
			}
			refs = append(refs, elRef{tm: tm, el: e.el, pid: pid})
		}
	}
	h.Events, err = t.fetchHistoryEvents(ctx, refs, sid, id, ts, te, clients, tr)
	if err != nil {
		return nil, err
	}
	return h, nil
}

// GetNodeHistoryScan retrieves a node's history without consulting
// version chains: it plans every micro-eventlist of the node's partition
// across the overlapping timespans and filters. This is the ablation
// baseline quantifying what the Versions table buys (DESIGN.md §6).
func (t *TGI) GetNodeHistoryScan(id graph.NodeID, ts, te temporal.Time, opts *FetchOptions) (*NodeHistory, error) {
	tr, done := t.startTrace("node-history-scan", opts)
	defer done()
	ctx := opts.ctx()
	gm, err := t.loadGraphMeta()
	if err != nil {
		return nil, err
	}
	initial, err := t.getNodeAt(ctx, id, ts, tr)
	if err != nil {
		return nil, err
	}
	h := &NodeHistory{ID: id, Interval: temporal.Interval{Start: ts, End: te}, Initial: initial}
	sid := t.sidOf(id)
	clients := t.cfg.clients(opts)

	spans, err := t.overlappingSpans(gm, ts, te)
	if err != nil {
		return nil, err
	}
	var refs []elRef
	for _, tm := range spans {
		pid, err := t.pidOf(tm, sid, id)
		if err != nil {
			return nil, err
		}
		for el := 0; el < tm.EventlistCount; el++ {
			if tm.LeafTimes[el+1] <= ts || tm.LeafTimes[el] >= te {
				continue
			}
			refs = append(refs, elRef{tm: tm, el: el, pid: pid})
		}
	}
	h.Events, err = t.fetchHistoryEvents(ctx, refs, sid, id, ts, te, clients, tr)
	if err != nil {
		return nil, err
	}
	return h, nil
}

// ChangeTimes returns the timepoints at which the node changed within
// [ts, te), read from version chains only (one batched read, no
// eventlist fetches).
func (t *TGI) ChangeTimes(id graph.NodeID, ts, te temporal.Time, opts *FetchOptions) ([]temporal.Time, error) {
	tr, done := t.startTrace("change-times", opts)
	defer done()
	gm, err := t.loadGraphMeta()
	if err != nil {
		return nil, err
	}
	sid := t.sidOf(id)
	// Historical quirk kept intact: a span ending exactly at ts still
	// counts as overlapping here (tm.End < ts, not <=).
	var spans []*TimespanMeta
	for tsid := 0; tsid < gm.TimespanCount; tsid++ {
		tm, err := t.loadTimespanMeta(tsid)
		if err != nil {
			return nil, err
		}
		if tm.End < ts || tm.Start >= te {
			continue
		}
		spans = append(spans, tm)
	}
	chains, err := t.versionChains(opts.ctx(), spans, sid, id, t.cfg.clients(opts), tr)
	if err != nil {
		return nil, err
	}
	var out []temporal.Time
	for _, entries := range chains {
		for _, e := range entries {
			for _, tt := range e.times {
				if tt >= ts && tt < te {
					out = append(out, tt)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}
