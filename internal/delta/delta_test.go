package delta

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hgs/internal/graph"
	"hgs/internal/temporal"
)

// randGraph replays a random event stream into a graph.
func randGraph(seed int64, n int) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New()
	for i := 0; i < n; i++ {
		u := graph.NodeID(rng.Intn(15))
		v := graph.NodeID(rng.Intn(15))
		switch rng.Intn(6) {
		case 0:
			g.AddNode(u)
		case 1:
			g.RemoveNode(u)
		case 2, 3:
			g.AddEdge(u, v)
		case 4:
			g.RemoveEdge(u, v)
		case 5:
			g.Apply(graph.Event{Kind: graph.SetNodeAttr, Node: u, Key: "k", Value: string(rune('a' + rng.Intn(3)))})
		}
	}
	return g
}

func TestSumIdentity(t *testing.T) {
	d := FromGraph(randGraph(1, 50))
	got := d.Clone().Sum(New())
	if !got.Equal(d) {
		t.Fatal("∆ + φ != ∆")
	}
}

func TestDiffSelfIsEmpty(t *testing.T) {
	d := FromGraph(randGraph(2, 50))
	if !Diff(d, d).Empty() {
		t.Fatal("∆ − ∆ != φ")
	}
	if !Diff(New(), d).Empty() {
		t.Fatal("φ − ∆ != φ")
	}
	if !Diff(d, New()).Equal(d) {
		t.Fatal("∆ − φ != ∆")
	}
}

func TestIntersectWithEmpty(t *testing.T) {
	d := FromGraph(randGraph(3, 50))
	if !Intersect(d, New()).Empty() {
		t.Fatal("∆ ∩ φ != φ")
	}
	if !Intersect(d, d).Equal(d) {
		t.Fatal("∆ ∩ ∆ != ∆")
	}
}

func TestUnionWithEmpty(t *testing.T) {
	d := FromGraph(randGraph(4, 50))
	if !Union(d, New()).Equal(d) || !Union(New(), d).Equal(d) {
		t.Fatal("∆ ∪ φ != ∆")
	}
}

func TestSumAssociative(t *testing.T) {
	f := func(s1, s2, s3 int64) bool {
		a := FromGraph(randGraph(s1, 40))
		b := FromGraph(randGraph(s2, 40))
		c := FromGraph(randGraph(s3, 40))
		left := a.Clone().Sum(b).Sum(c)
		right := a.Clone().Sum(b.Clone().Sum(c))
		return left.Equal(right)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestIntersectionCommutative(t *testing.T) {
	f := func(s1, s2 int64) bool {
		a := FromGraph(randGraph(s1, 40))
		b := FromGraph(randGraph(s2, 40))
		return Intersect(a, b).Equal(Intersect(b, a))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestHierarchicalReconstruction(t *testing.T) {
	// The DeltaGraph invariant (paper §4.2): with parent = ∩ children and
	// stored derived deltas child − parent, each child is reconstructed as
	// parent + (child − parent).
	f := func(s1, s2, s3 int64) bool {
		children := []*Delta{
			FromGraph(randGraph(s1, 60)),
			FromGraph(randGraph(s2, 60)),
			FromGraph(randGraph(s3, 60)),
		}
		parent := IntersectAll(children)
		for _, child := range children {
			derived := Diff(child, parent)
			if !parent.Clone().Sum(derived).Equal(child) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestTransformRewritesSnapshots(t *testing.T) {
	f := func(s1, s2 int64) bool {
		from := FromGraph(randGraph(s1, 60))
		to := FromGraph(randGraph(s2, 60))
		tr := Transform(from, to)
		// The summed delta retains tombstones (so further sums compose),
		// so compare the materialized states.
		return from.Clone().Sum(tr).Materialize().Equal(to.Materialize())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestRestrict(t *testing.T) {
	d := FromGraph(randGraph(7, 80))
	even := d.Restrict(func(id graph.NodeID) bool { return id%2 == 0 })
	odd := d.Restrict(func(id graph.NodeID) bool { return id%2 == 1 })
	if even.Cardinality()+odd.Cardinality() != d.Cardinality() {
		t.Fatal("restriction does not partition the delta")
	}
	if !Union(even, odd).Equal(d) {
		t.Fatal("union of restrictions != original")
	}
}

func TestMarkDeletedAndSum(t *testing.T) {
	g := graph.New()
	g.AddEdge(1, 2)
	base := FromGraph(g)
	del := New()
	del.MarkDeleted(1)
	got := base.Clone().Sum(del).Materialize()
	if got.Has(1) {
		t.Fatal("tombstone did not delete node")
	}
	// Materialize applies tombstones only via ApplyTo; check ApplyTo too.
	g2 := g.Clone()
	del.ApplyTo(g2)
	if g2.Has(1) || len(g2.Node(2).Edges) != 0 {
		t.Fatal("ApplyTo tombstone did not cascade edge removal")
	}
}

func TestCardinalityAndSize(t *testing.T) {
	g := graph.New()
	g.AddEdge(1, 2)
	g.AddNode(3)
	d := FromGraph(g)
	if d.Cardinality() != 3 {
		t.Fatalf("Cardinality = %d, want 3", d.Cardinality())
	}
	// sizes: node1 (1+1 edge) + node2 (1+1 mirror) + node3 (1) = 5
	if d.Size() != 5 {
		t.Fatalf("Size = %d, want 5", d.Size())
	}
}

func TestMaterializeMatchesSource(t *testing.T) {
	g := randGraph(11, 100)
	if !FromGraph(g).Materialize().Equal(g) {
		t.Fatal("FromGraph → Materialize is not identity")
	}
}

func TestEventListFilters(t *testing.T) {
	evs := []graph.Event{
		{Time: 1, Kind: graph.AddNode, Node: 1},
		{Time: 2, Kind: graph.AddEdge, Node: 1, Other: 2},
		{Time: 3, Kind: graph.AddNode, Node: 3},
		{Time: 3, Kind: graph.SetNodeAttr, Node: 1, Key: "k", Value: "v"},
		{Time: 5, Kind: graph.RemoveEdge, Node: 1, Other: 2},
	}
	el := NewEventList(temporal.NewInterval(0, 10), evs)
	if el.FilterByTime(temporal.NewInterval(2, 4)).Len() != 3 {
		t.Fatal("FilterByTime wrong count")
	}
	if el.FilterByNode(2).Len() != 2 {
		t.Fatal("FilterByNode(2) should see both edge events")
	}
	part := el.Restrict(func(id graph.NodeID) bool { return id == 3 })
	if part.Len() != 1 || part.Events[0].Kind != graph.AddNode {
		t.Fatalf("Restrict wrong: %v", part.Events)
	}
}

func TestEventListApplyUpTo(t *testing.T) {
	evs := []graph.Event{
		{Time: 1, Kind: graph.AddNode, Node: 1},
		{Time: 2, Kind: graph.AddNode, Node: 2},
		{Time: 3, Kind: graph.AddNode, Node: 3},
	}
	el := NewEventList(temporal.NewInterval(0, 10), evs)
	g := graph.New()
	if err := el.ApplyUpTo(g, 2); err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 2 || g.Has(3) {
		t.Fatal("ApplyUpTo applied wrong prefix")
	}
}

func TestChangePoints(t *testing.T) {
	evs := []graph.Event{
		{Time: 1, Kind: graph.AddNode, Node: 1},
		{Time: 1, Kind: graph.AddNode, Node: 2},
		{Time: 4, Kind: graph.AddEdge, Node: 1, Other: 2},
		{Time: 9, Kind: graph.RemoveNode, Node: 2},
	}
	el := NewEventList(temporal.NewInterval(0, 10), evs)
	all := el.ChangePoints(-1)
	if len(all) != 3 || all[0] != 1 || all[2] != 9 {
		t.Fatalf("all change points wrong: %v", all)
	}
	n2 := el.ChangePoints(2)
	if len(n2) != 3 {
		t.Fatalf("node 2 change points wrong: %v", n2)
	}
}

func TestEventlistEquivalentToStateDelta(t *testing.T) {
	// Replaying an eventlist over a snapshot equals materializing the later
	// snapshot — the Log vs Copy equivalence that all indexes rely on.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var evs []graph.Event
		for i := 0; i < 120; i++ {
			u := graph.NodeID(rng.Intn(12))
			v := graph.NodeID(rng.Intn(12))
			kind := []graph.EventKind{graph.AddNode, graph.AddEdge, graph.RemoveEdge, graph.RemoveNode, graph.SetNodeAttr}[rng.Intn(5)]
			evs = append(evs, graph.Event{Time: temporal.Time(i), Kind: kind, Node: u, Other: v, Key: "k", Value: "v"})
		}
		mid := 60
		gMid, err := graph.FromEvents(evs[:mid])
		if err != nil {
			return false
		}
		gFull, err := graph.FromEvents(evs)
		if err != nil {
			return false
		}
		// snapshot(mid) + tail events == snapshot(end)
		reconstructed := FromGraph(gMid).Materialize()
		el := NewEventList(temporal.NewInterval(temporal.Time(mid), temporal.Time(len(evs))), evs[mid:])
		if err := el.ApplyTo(reconstructed); err != nil {
			return false
		}
		return reconstructed.Equal(gFull)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestMoveToTransfersOwnership(t *testing.T) {
	src := randGraph(31, 60)
	d := FromGraph(src)
	d.MarkDeleted(9999) // no-op tombstone must not break the move
	g := graph.New()
	d.MoveTo(g)
	if !g.Equal(src.Clone().FilterNodes(func(*graph.NodeState) bool { return true })) && !g.Equal(src) {
		t.Fatal("MoveTo did not reproduce the source graph")
	}
	if len(d.Nodes) != 0 || len(d.Tombstones) != 0 {
		t.Fatal("MoveTo must drain the delta")
	}
}

func TestRestrictToIDs(t *testing.T) {
	d := FromGraph(randGraph(32, 60))
	ids := map[graph.NodeID]struct{}{1: {}, 2: {}, 3: {}}
	r := d.RestrictToIDs(ids)
	for id := range r.Nodes {
		if _, ok := ids[id]; !ok {
			t.Fatalf("leaked id %d", id)
		}
	}
}

func TestUnionLeftBias(t *testing.T) {
	a := New()
	sa := graph.NewNodeState(1)
	sa.Attrs = graph.Attrs{"k": "left"}
	a.Put(sa)
	b := New()
	sb := graph.NewNodeState(1)
	sb.Attrs = graph.Attrs{"k": "right"}
	b.Put(sb)
	u := Union(a, b)
	if u.Nodes[1].Attrs["k"] != "left" {
		t.Fatal("Union must keep the left operand on conflict")
	}
}
