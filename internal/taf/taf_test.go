package taf

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"hgs/internal/core"
	"hgs/internal/graph"
	"hgs/internal/kvstore"
	"hgs/internal/sparklite"
	"hgs/internal/temporal"
)

// genHistory mirrors the core test generator (strictly increasing times).
func genHistory(seed int64, n, idSpace int) []graph.Event {
	rng := rand.New(rand.NewSource(seed))
	evs := make([]graph.Event, 0, n)
	for i := 0; i < n; i++ {
		e := graph.Event{Time: temporal.Time(10 * (i + 1))}
		u := graph.NodeID(rng.Intn(idSpace))
		v := graph.NodeID(rng.Intn(idSpace))
		switch r := rng.Intn(20); {
		case r < 6:
			e.Kind, e.Node = graph.AddNode, u
		case r < 12:
			e.Kind, e.Node, e.Other = graph.AddEdge, u, v
		case r < 14:
			e.Kind, e.Node, e.Other = graph.RemoveEdge, u, v
		case r < 15:
			e.Kind, e.Node = graph.RemoveNode, u
		case r < 18:
			e.Kind, e.Node, e.Key, e.Value = graph.SetNodeAttr, u, "community", []string{"A", "B"}[rng.Intn(2)]
		default:
			e.Kind, e.Node, e.Key, e.Value = graph.SetNodeAttr, u, "other", "x"
		}
		evs = append(evs, e)
	}
	return evs
}

func oracle(events []graph.Event, tt temporal.Time) *graph.Graph {
	g := graph.New()
	for _, e := range events {
		if e.Time > tt {
			break
		}
		g.Apply(e)
	}
	return g
}

var testEvents = genHistory(100, 400, 30)

func newHandler(t *testing.T, workers int) *Handler {
	t.Helper()
	store := kvstore.NewCluster(kvstore.Config{Machines: 2, Replication: 1})
	cfg := core.DefaultConfig()
	cfg.TimespanEvents = 150
	cfg.EventlistSize = 30
	cfg.HorizontalPartitions = 3
	cfg.PartitionSize = 8
	tgi, err := core.Build(store, cfg, testEvents)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return NewHandler(tgi, sparklite.NewContext(workers))
}

func TestSONFetchMatchesOracle(t *testing.T) {
	h := newHandler(t, 4)
	iv := temporal.NewInterval(500, 3000)
	son, err := SON(h).Timeslice(iv).Fetch()
	if err != nil {
		t.Fatal(err)
	}
	for _, nt := range son.Collect() {
		for _, tt := range []temporal.Time{700, 1800, 2900} {
			got := nt.StateAt(tt)
			want := oracle(testEvents, tt).Node(nt.ID())
			if (got == nil) != (want == nil) {
				t.Fatalf("node %d at %d: presence mismatch", nt.ID(), tt)
			}
			if got != nil && !got.Equal(want) {
				t.Fatalf("node %d at %d: state mismatch", nt.ID(), tt)
			}
		}
	}
	// Every node alive at the start must be present.
	alive := oracle(testEvents, iv.Start).NumNodes()
	if son.Count() < alive {
		t.Fatalf("SoN has %d nodes, fewer than %d alive at start", son.Count(), alive)
	}
}

func TestSONSelectAndTimeslice(t *testing.T) {
	h := newHandler(t, 2)
	son, err := SON(h).Select(func(id graph.NodeID) bool { return id < 10 }).
		Timeslice(temporal.NewInterval(500, 3000)).Fetch()
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range son.IDs() {
		if id >= 10 {
			t.Fatalf("Select leaked id %d", id)
		}
	}
	sliced := son.Timeslice(temporal.NewInterval(1000, 2000))
	for _, nt := range sliced.Collect() {
		if nt.StartTime() != 1000 || nt.EndTime() != 2000 {
			t.Fatalf("timeslice bounds wrong: %v", nt.Span())
		}
		want := oracle(testEvents, 1500).Node(nt.ID())
		got := nt.StateAt(1500)
		if (got == nil) != (want == nil) || (got != nil && !got.Equal(want)) {
			t.Fatalf("timesliced node %d state mismatch", nt.ID())
		}
	}
}

func TestSONGraphMatchesSnapshot(t *testing.T) {
	h := newHandler(t, 2)
	son, err := SON(h).Timeslice(temporal.NewInterval(500, 3000)).Fetch()
	if err != nil {
		t.Fatal(err)
	}
	got := son.Graph(2000)
	want := oracle(testEvents, 2000)
	if !got.Equal(want.Subgraph(want.NodeIDs())) {
		t.Fatalf("SoN.Graph(2000) mismatch: %v vs %v", got, want)
	}
}

func TestProjectTrimsAttributes(t *testing.T) {
	h := newHandler(t, 2)
	son, err := SON(h).Timeslice(temporal.NewInterval(0, 4100)).Fetch()
	if err != nil {
		t.Fatal(err)
	}
	proj := son.Project("community")
	for _, nt := range proj.Collect() {
		for _, v := range nt.Versions() {
			for k := range v.State.Attrs {
				if k != "community" {
					t.Fatalf("projection leaked attr %q", k)
				}
			}
		}
	}
}

func TestNodeComputeAndKV(t *testing.T) {
	h := newHandler(t, 3)
	son, err := SON(h).TimesliceAt(2000).Fetch()
	if err != nil {
		t.Fatal(err)
	}
	degs := NodeComputeKV(son, func(nt *NodeT) int {
		ns := nt.StateAt(2000)
		if ns == nil {
			return -1
		}
		return ns.Degree()
	})
	want := oracle(testEvents, 2000)
	for id, d := range degs {
		wantNS := want.Node(id)
		if wantNS == nil {
			continue
		}
		if d != wantNS.Degree() {
			t.Fatalf("degree of %d = %d, want %d", id, d, wantNS.Degree())
		}
	}
}

func TestNodeComputeTemporalMatchesVersions(t *testing.T) {
	h := newHandler(t, 2)
	son, err := SON(h).Timeslice(temporal.NewInterval(500, 2500)).Fetch()
	if err != nil {
		t.Fatal(err)
	}
	series := NodeComputeTemporal(son, func(ns *graph.NodeState) int {
		if ns == nil {
			return -1
		}
		return ns.Degree()
	}, nil)
	for id, samples := range series {
		for _, s := range samples {
			want := oracle(testEvents, s.Time).Node(id)
			wantD := -1
			if want != nil {
				wantD = want.Degree()
			}
			if s.Value != wantD {
				t.Fatalf("node %d degree at %d = %d, want %d", id, s.Time, s.Value, wantD)
			}
		}
	}
}

func TestSOTSPointFetchLCC(t *testing.T) {
	h := newHandler(t, 3)
	sots, err := SOTS(h, 1).TimesliceAt(2000).Fetch()
	if err != nil {
		t.Fatal(err)
	}
	want := oracle(testEvents, 2000)
	if sots.Count() != want.NumNodes() {
		t.Fatalf("SoTS count %d != snapshot nodes %d", sots.Count(), want.NumNodes())
	}
	lccs := SubgraphComputeKV(sots, func(st *SubgraphT) float64 {
		return st.StateAt(2000).LocalClusteringCoefficient(st.Root())
	})
	for id, got := range lccs {
		if wantLCC := want.LocalClusteringCoefficient(id); math.Abs(got-wantLCC) > 1e-12 {
			t.Fatalf("LCC of %d = %v, want %v", id, got, wantLCC)
		}
	}
}

func TestSOTSIntervalFetch(t *testing.T) {
	h := newHandler(t, 3)
	roots := []graph.NodeID{1, 5, 9}
	sots, err := SOTS(h, 1).Roots(roots...).Timeslice(temporal.NewInterval(800, 2600)).Fetch()
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range sots.Collect() {
		for _, tt := range []temporal.Time{1000, 2000} {
			got := st.StateAt(tt)
			want := oracle(testEvents, tt).Subgraph(st.Members())
			if !got.Equal(want) {
				t.Fatalf("subgraph %d at %d mismatch", st.Root(), tt)
			}
		}
	}
}

func TestTemporalVsDeltaAgree(t *testing.T) {
	// The paper's Figure 8 example: count members with a given label —
	// fresh per-version evaluation and incremental evaluation must agree.
	h := newHandler(t, 3)
	sots, err := SOTS(h, 1).Roots(2, 7, 11).Timeslice(temporal.NewInterval(500, 3500)).Fetch()
	if err != nil {
		t.Fatal(err)
	}
	countLabel := func(g *graph.Graph) int { return g.AttrCount("community", "A") }
	fresh := SubgraphComputeTemporal(sots, countLabel, nil)
	incr := SubgraphComputeDelta(sots,
		func(g *graph.Graph) (int, any) { return countLabel(g), nil },
		func(before *graph.Graph, aux any, val int, e graph.Event) (int, any) {
			switch e.Kind {
			case graph.SetNodeAttr:
				if e.Key != "community" {
					return val, aux
				}
				ns := before.Node(e.Node)
				was := ns != nil && ns.Attrs["community"] == "A"
				is := e.Value == "A"
				// A SetNodeAttr can create the node; count transitions.
				if was && !is {
					return val - 1, aux
				}
				if !was && is {
					return val + 1, aux
				}
			case graph.DelNodeAttr:
				if e.Key == "community" {
					if ns := before.Node(e.Node); ns != nil && ns.Attrs["community"] == "A" {
						return val - 1, aux
					}
				}
			case graph.RemoveNode:
				if ns := before.Node(e.Node); ns != nil && ns.Attrs["community"] == "A" {
					return val - 1, aux
				}
			}
			return val, aux
		})
	for id, fs := range fresh {
		is := incr[id]
		if len(fs) != len(is) {
			t.Fatalf("root %d: %d fresh samples vs %d incremental", id, len(fs), len(is))
		}
		for i := range fs {
			if fs[i].Time != is[i].Time || fs[i].Value != is[i].Value {
				t.Fatalf("root %d sample %d: fresh (%d,%d) vs incr (%d,%d)",
					id, i, fs[i].Time, fs[i].Value, is[i].Time, is[i].Value)
			}
		}
	}
}

func TestCompareOperator(t *testing.T) {
	h := newHandler(t, 2)
	iv := temporal.NewInterval(500, 3000)
	base, err := SON(h).Timeslice(iv).Fetch()
	if err != nil {
		t.Fatal(err)
	}
	sonA := base.SelectAttrAt("community", "A", 2500)
	sonB := base.SelectAttrAt("community", "B", 2500)
	deg := func(nt *NodeT) float64 {
		ns := nt.StateAt(2500)
		if ns == nil {
			return 0
		}
		return float64(ns.Degree())
	}
	rows := Compare(sonA, sonB, deg)
	want := oracle(testEvents, 2500)
	for _, r := range rows {
		if r.Diff != r.A-r.B {
			t.Fatalf("diff arithmetic wrong: %+v", r)
		}
		ns := want.Node(r.ID)
		if ns == nil {
			continue
		}
		community := ns.Attrs["community"]
		switch community {
		case "A":
			if r.A != float64(ns.Degree()) {
				t.Fatalf("node %d in A: value %v, want %d", r.ID, r.A, ns.Degree())
			}
		case "B":
			if r.B != float64(ns.Degree()) {
				t.Fatalf("node %d in B: value %v, want %d", r.ID, r.B, ns.Degree())
			}
		}
	}
}

func TestCompareAt(t *testing.T) {
	h := newHandler(t, 2)
	son, err := SON(h).Timeslice(temporal.NewInterval(500, 4000)).Fetch()
	if err != nil {
		t.Fatal(err)
	}
	rows := CompareAt(son, func(ns *graph.NodeState) float64 { return float64(ns.Degree()) }, 1000, 3500)
	g1 := oracle(testEvents, 1000)
	g2 := oracle(testEvents, 3500)
	for _, r := range rows {
		var want float64
		if ns := g1.Node(r.ID); ns != nil {
			want = float64(ns.Degree())
		}
		if r.A != want {
			t.Fatalf("node %d A-side = %v, want %v", r.ID, r.A, want)
		}
		var wantB float64
		if ns := g2.Node(r.ID); ns != nil {
			wantB = float64(ns.Degree())
		}
		if r.B != wantB {
			t.Fatalf("node %d B-side = %v, want %v", r.ID, r.B, wantB)
		}
	}
}

func TestEvolutionDensity(t *testing.T) {
	h := newHandler(t, 2)
	iv := temporal.NewInterval(100, 4000)
	son, err := SON(h).Timeslice(iv).Fetch()
	if err != nil {
		t.Fatal(err)
	}
	series := Evolution(son, (*graph.Graph).Density, 5, nil)
	if len(series) != 5 {
		t.Fatalf("evolution returned %d points", len(series))
	}
	for _, s := range series {
		want := oracle(testEvents, s.Time)
		if math.Abs(s.Value-want.Density()) > 1e-12 {
			t.Fatalf("density at %d = %v, want %v", s.Time, s.Value, want.Density())
		}
	}
}

func TestAliveCountSeries(t *testing.T) {
	h := newHandler(t, 2)
	iv := temporal.NewInterval(100, 4000)
	son, err := SON(h).Timeslice(iv).Fetch()
	if err != nil {
		t.Fatal(err)
	}
	pts := EvenTimepoints(iv, 4)
	series := AliveCountSeries(son, pts)
	for _, s := range series {
		if int(s.Value) != oracle(testEvents, s.Time).NumNodes() {
			t.Fatalf("alive count at %d = %v, want %d", s.Time, s.Value, oracle(testEvents, s.Time).NumNodes())
		}
	}
}

func TestSeriesAggregations(t *testing.T) {
	s := Series{
		{Time: 1, Value: 1}, {Time: 2, Value: 5}, {Time: 3, Value: 2},
		{Time: 4, Value: 7}, {Time: 5, Value: 7}, {Time: 6, Value: 3}, {Time: 7, Value: 3},
	}
	if m, _ := s.Max(); m.Time != 4 || m.Value != 7 {
		t.Fatalf("Max = %+v", m)
	}
	if m, _ := s.Min(); m.Time != 1 || m.Value != 1 {
		t.Fatalf("Min = %+v", m)
	}
	if mean := s.Mean(); math.Abs(mean-(1+5+2+7+7+3+3)/7.0) > 1e-12 {
		t.Fatalf("Mean = %v", mean)
	}
	peaks := s.Peaks()
	if len(peaks) != 2 || peaks[0].Time != 2 || peaks[1].Time != 4 {
		t.Fatalf("Peaks = %+v", peaks)
	}
	if sat, ok := s.Saturate(0); !ok || sat != 6 {
		t.Fatalf("Saturate = %v, %v", sat, ok)
	}
	var empty Series
	if _, ok := empty.Max(); ok {
		t.Fatal("empty Max should be !ok")
	}
	if _, ok := empty.Saturate(1); ok {
		t.Fatal("empty Saturate should be !ok")
	}
}

func TestEvenTimepoints(t *testing.T) {
	pts := EvenTimepoints(temporal.NewInterval(0, 101), 5)
	if len(pts) != 5 || pts[0] != 0 || pts[4] != 100 {
		t.Fatalf("EvenTimepoints = %v", pts)
	}
	if got := EvenTimepoints(temporal.NewInterval(5, 50), 1); len(got) != 1 || got[0] != 5 {
		t.Fatalf("single point = %v", got)
	}
}

func TestIteratorWalksVersions(t *testing.T) {
	h := newHandler(t, 2)
	son, err := SON(h).Timeslice(temporal.NewInterval(0, 4100)).Fetch()
	if err != nil {
		t.Fatal(err)
	}
	for _, nt := range son.Collect() {
		it := nt.Iterator()
		n := 0
		var prevEnd temporal.Time = -1 << 60
		for {
			v, ok := it.Next()
			if !ok {
				break
			}
			if v.Valid.Start < prevEnd {
				t.Fatalf("node %d: versions overlap", nt.ID())
			}
			prevEnd = v.Valid.End
			n++
		}
		if n != len(nt.Versions()) {
			t.Fatalf("iterator count mismatch")
		}
		if n > 0 {
			break // one non-trivial node is enough
		}
	}
}

func TestWorkerScalingProducesSameResults(t *testing.T) {
	results := make([]map[graph.NodeID]float64, 0, 3)
	for _, w := range []int{1, 2, 4} {
		h := newHandler(t, w)
		sots, err := SOTS(h, 1).TimesliceAt(2000).Fetch()
		if err != nil {
			t.Fatal(err)
		}
		lcc := SubgraphComputeKV(sots, func(st *SubgraphT) float64 {
			return st.StateAt(2000).LocalClusteringCoefficient(st.Root())
		})
		results = append(results, lcc)
	}
	for i := 1; i < len(results); i++ {
		if len(results[i]) != len(results[0]) {
			t.Fatalf("worker count changed result size")
		}
		for id, v := range results[0] {
			if results[i][id] != v {
				t.Fatalf("worker count changed LCC of node %d", id)
			}
		}
	}
}

func TestHandlerAccessors(t *testing.T) {
	h := newHandler(t, 2)
	if h.TGI() == nil || h.Context() == nil {
		t.Fatal("accessors returned nil")
	}
	h2 := h.WithFetchClients(7)
	if h2.fetchClients != 7 || h.fetchClients == 7 {
		t.Fatal("WithFetchClients should copy")
	}
	_ = fmt.Sprintf("%v", h2)
}

func TestTimepointSelectorMinimal(t *testing.T) {
	// Paper Figure 9a: evaluate at the start, middle and end of the span
	// instead of every change point.
	h := newHandler(t, 2)
	son, err := SON(h).Timeslice(temporal.NewInterval(500, 2500)).Fetch()
	if err != nil {
		t.Fatal(err)
	}
	minimal := func(nt *NodeT) []temporal.Time {
		st, et := nt.StartTime(), nt.EndTime()
		return []temporal.Time{st, (st + et) / 2, et - 1}
	}
	series := NodeComputeTemporal(son, func(ns *graph.NodeState) int {
		if ns == nil {
			return -1
		}
		return ns.Degree()
	}, minimal)
	for id, samples := range series {
		if len(samples) != 3 {
			t.Fatalf("node %d evaluated at %d points, want 3", id, len(samples))
		}
		if samples[0].Time != 500 || samples[2].Time != 2499 {
			t.Fatalf("node %d sampled at wrong times: %+v", id, samples)
		}
	}
}

func TestTimepointSelectorAllChangePoints(t *testing.T) {
	// Paper Figure 9b: compare two SoNs at the union of their change
	// points.
	h := newHandler(t, 2)
	iv := temporal.NewInterval(500, 2500)
	son, err := SON(h).Timeslice(iv).Fetch()
	if err != nil {
		t.Fatal(err)
	}
	sonA := son.Select(func(nt *NodeT) bool { return nt.ID()%2 == 0 })
	sonB := son.Select(func(nt *NodeT) bool { return nt.ID()%2 == 1 })
	pts := append(sonA.ChangePoints(), sonB.ChangePoints()...)
	countsA := AliveCountSeries(sonA, pts)
	countsB := AliveCountSeries(sonB, pts)
	if len(countsA) != len(pts) || len(countsB) != len(pts) {
		t.Fatal("sampling did not cover all requested points")
	}
	for i := range countsA {
		wantA, wantB := 0, 0
		g := oracle(testEvents, countsA[i].Time)
		for _, id := range g.NodeIDs() {
			if id%2 == 0 {
				wantA++
			} else {
				wantB++
			}
		}
		if int(countsA[i].Value) != wantA || int(countsB[i].Value) != wantB {
			t.Fatalf("at %d: counts (%v,%v) want (%d,%d)",
				countsA[i].Time, countsA[i].Value, countsB[i].Value, wantA, wantB)
		}
	}
}

func TestSOTSSelectPredicate(t *testing.T) {
	h := newHandler(t, 2)
	sots, err := SOTS(h, 1).Select(func(id graph.NodeID) bool { return id < 8 }).TimesliceAt(2000).Fetch()
	if err != nil {
		t.Fatal(err)
	}
	for _, root := range sots.Roots() {
		if root >= 8 {
			t.Fatalf("predicate leaked root %d", root)
		}
	}
	filtered := sots.Select(func(st *SubgraphT) bool { return st.StateAt(2000).NumNodes() > 1 })
	for _, st := range filtered.Collect() {
		if st.StateAt(2000).NumNodes() <= 1 {
			t.Fatal("SoTS.Select did not filter")
		}
	}
}

func TestNewSoTSFromHistories(t *testing.T) {
	h := newHandler(t, 2)
	span := temporal.NewInterval(100, 200)
	g := graph.New()
	g.AddEdge(1, 2)
	hs := []*core.SubgraphHistory{{
		Root: 1, K: 1, Interval: span, Initial: g, Members: []graph.NodeID{1, 2},
		Events: []graph.Event{{Time: 150, Kind: graph.AddEdge, Node: 2, Other: 1}},
	}}
	sots := NewSoTSFromHistories(h, 1, span, hs)
	if sots.Count() != 1 {
		t.Fatal("wrapped SoTS lost members")
	}
	if got := sots.Collect()[0].ChangePoints(); len(got) != 1 || got[0] != 150 {
		t.Fatalf("change points wrong: %v", got)
	}
}

func TestTemporalVsDeltaAgreeOnEdgeQuantity(t *testing.T) {
	// Edge-sensitive quantity (edge count of the induced subgraph): the
	// incremental path must track the member-induced view exactly, even
	// when events reference nodes outside the member set.
	h := newHandler(t, 2)
	sots, err := SOTS(h, 1).Roots(1, 4, 8, 13).Timeslice(temporal.NewInterval(500, 3500)).Fetch()
	if err != nil {
		t.Fatal(err)
	}
	edges := func(g *graph.Graph) int { return g.NumEdges() }
	fresh := SubgraphComputeTemporal(sots, edges, nil)
	incr := SubgraphComputeDelta(sots,
		func(g *graph.Graph) (int, any) { return edges(g), nil },
		func(before *graph.Graph, aux any, val int, e graph.Event) (int, any) {
			switch e.Kind {
			case graph.AddEdge:
				if !before.HasEdge(e.Node, e.Other) {
					return val + 1, aux
				}
			case graph.RemoveEdge:
				if before.HasEdge(e.Node, e.Other) {
					return val - 1, aux
				}
			case graph.RemoveNode:
				if ns := before.Node(e.Node); ns != nil {
					return val - ns.OutDegree() - ns.InDegree(), aux
				}
			}
			return val, aux
		})
	for id, fs := range fresh {
		is := incr[id]
		if len(fs) != len(is) {
			t.Fatalf("root %d: %d vs %d samples", id, len(fs), len(is))
		}
		for i := range fs {
			if fs[i] != is[i] {
				t.Fatalf("root %d sample %d: fresh (%d,%d) vs incr (%d,%d)",
					id, i, fs[i].Time, fs[i].Value, is[i].Time, is[i].Value)
			}
		}
	}
}

// TestSONFetchSharesDeltaCache asserts the analytics fetch path rides
// the unified fetch layer: a repeated SoN fetch over the same timeslice
// serves its root-path deltas from the decoded-delta cache, issuing
// fewer KV reads than the cold fetch and recording cache hits.
func TestSONFetchSharesDeltaCache(t *testing.T) {
	h := newHandler(t, 3)
	cluster := h.TGI().Store()
	iv := temporal.NewInterval(500, 3000)
	fetchOnce := func() (*SoN, int64) {
		cluster.ResetMetrics()
		son, err := SON(h).Timeslice(iv).Fetch()
		if err != nil {
			t.Fatal(err)
		}
		return son, cluster.Metrics().Reads
	}
	cold, coldReads := fetchOnce()
	warm, warmReads := fetchOnce()
	if warmReads >= coldReads {
		t.Fatalf("warm SoN fetch reads (%d) not below cold (%d)", warmReads, coldReads)
	}
	if hits := h.TGI().CacheStats().Hits; hits == 0 {
		t.Fatal("SoN refetch recorded no delta-cache hits")
	}
	a, b := cold.Collect(), warm.Collect()
	if len(a) != len(b) {
		t.Fatalf("warm SoN has %d nodes, cold %d", len(b), len(a))
	}
	for i := range a {
		if a[i].ID() != b[i].ID() {
			t.Fatalf("node order differs at %d", i)
		}
		for _, tt := range []temporal.Time{700, 1800, 2900} {
			x, y := a[i].StateAt(tt), b[i].StateAt(tt)
			if (x == nil) != (y == nil) || (x != nil && !x.Equal(y)) {
				t.Fatalf("node %d at %d: warm fetch state differs", a[i].ID(), tt)
			}
		}
	}
}
