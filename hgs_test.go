package hgs

import (
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"hgs/internal/graph"
	"hgs/internal/workload"
)

func smallOptions() Options {
	return Options{
		Machines:             2,
		TimespanEvents:       2000,
		EventlistSize:        400,
		HorizontalPartitions: 2,
		PartitionSize:        100,
	}
}

func loadWiki(t *testing.T, opts Options, nodes int) (*Store, []Event) {
	t.Helper()
	events := workload.Wikipedia(workload.WikiConfig{Nodes: nodes, EdgesPerNode: 3, Seed: 42})
	store, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Load(events); err != nil {
		t.Fatal(err)
	}
	return store, events
}

// mustGraph replays the raw history up to and including tt (the oracle).
func mustGraph(events []Event, tt Time) *Graph {
	g := graph.New()
	for _, e := range events {
		if e.Time > tt {
			break
		}
		g.Apply(e)
	}
	return g
}

func TestStoreEndToEnd(t *testing.T) {
	store, events := loadWiki(t, smallOptions(), 800)
	lo, hi, err := store.TimeRange()
	if err != nil {
		t.Fatal(err)
	}
	if lo != events[0].Time || hi != events[len(events)-1].Time {
		t.Fatalf("time range [%d,%d]", lo, hi)
	}
	mid := (lo + hi) / 2
	g, err := store.Snapshot(mid)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(mustGraph(events, mid)) {
		t.Fatal("snapshot mismatch")
	}
	ns, err := store.Node(5, hi)
	if err != nil {
		t.Fatal(err)
	}
	want := mustGraph(events, hi).Node(5)
	if (ns == nil) != (want == nil) || (ns != nil && !ns.Equal(want)) {
		t.Fatal("node state mismatch")
	}
	h, err := store.NodeHistory(5, lo, hi+1)
	if err != nil {
		t.Fatal(err)
	}
	if got := h.StateAt(mid); (got == nil) != (mustGraph(events, mid).Node(5) == nil) {
		t.Fatal("history state mismatch")
	}
	sub, err := store.KHop(5, 1, mid)
	if err != nil {
		t.Fatal(err)
	}
	if !sub.Equal(mustGraph(events, mid).KHopSubgraph(5, 1)) {
		t.Fatal("k-hop mismatch")
	}
	st, err := store.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Events != len(events) {
		t.Fatalf("stats events = %d", st.Events)
	}
}

func TestStoreAppend(t *testing.T) {
	events := workload.Wikipedia(workload.WikiConfig{Nodes: 600, EdgesPerNode: 3, Seed: 7})
	cut := len(events) * 2 / 3
	store, err := Open(smallOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Load(events[:cut]); err != nil {
		t.Fatal(err)
	}
	if err := store.Append(events[cut:]); err != nil {
		t.Fatal(err)
	}
	hi := events[len(events)-1].Time
	g, err := store.Snapshot(hi)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(mustGraph(events, hi)) {
		t.Fatal("post-append snapshot mismatch")
	}
	if err := store.Load(events); err == nil {
		t.Fatal("double Load must fail")
	}
}

func TestAnalyticsSurface(t *testing.T) {
	store, events := loadWiki(t, smallOptions(), 600)
	_, hi, _ := store.TimeRange()
	a := store.Analytics(2)

	son, err := a.SON().Timeslice(NewInterval(hi/2, hi+1)).Fetch()
	if err != nil {
		t.Fatal(err)
	}
	// Evolution of density matches direct measurement.
	series := Evolution(son, GraphDensity, 3, nil)
	for _, s := range series {
		want := mustGraph(events, s.Time).Density()
		if math.Abs(s.Value-want) > 1e-12 {
			t.Fatalf("density at %d: %v != %v", s.Time, s.Value, want)
		}
	}
	// Highest-LCC node via SoTS (the paper's Figure 7a query).
	sots, err := a.SOTS(1).TimesliceAt(hi).Fetch()
	if err != nil {
		t.Fatal(err)
	}
	lcc := SubgraphComputeKV(sots, func(st *SubgraphT) float64 {
		return st.StateAt(hi).LocalClusteringCoefficient(st.Root())
	})
	bestID, best := NodeID(-1), -1.0
	for id, v := range lcc {
		if v > best || (v == best && id < bestID) {
			bestID, best = id, v
		}
	}
	wantG := mustGraph(events, hi)
	for _, id := range wantG.NodeIDs() {
		if v := wantG.LocalClusteringCoefficient(id); v > best+1e-12 {
			t.Fatalf("missed higher LCC at node %d: %v > %v", id, v, best)
		}
	}
}

// TestDurableRoundTrip is the acceptance test for the disk backend: a
// store built with DataDir is closed and reopened (as a new process
// would) without calling Load, and every query must match both the raw
// history and a fresh in-memory store.
func TestDurableRoundTrip(t *testing.T) {
	dir := t.TempDir()
	events := workload.Wikipedia(workload.WikiConfig{Nodes: 500, EdgesPerNode: 3, Seed: 11})

	opts := smallOptions()
	opts.DataDir = dir
	durable, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	if durable.Loaded() {
		t.Fatal("fresh data dir must not report loaded")
	}
	if !durable.Durable() {
		t.Fatal("DataDir store must report durable")
	}
	if err := durable.Load(events); err != nil {
		t.Fatal(err)
	}
	lo, hi, err := durable.TimeRange()
	if err != nil {
		t.Fatal(err)
	}
	if err := durable.Close(); err != nil {
		t.Fatal(err)
	}

	// Reattach with zero options: shape and TGI config come from disk.
	reopened, err := Open(Options{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	if !reopened.Loaded() {
		t.Fatal("reopened store must reattach without Load")
	}
	if err := reopened.Load(events); err == nil {
		t.Fatal("Load on a reattached store must fail")
	}

	mem, err := Open(smallOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := mem.Load(events); err != nil {
		t.Fatal(err)
	}
	if l, h, err := reopened.TimeRange(); err != nil || l != lo || h != hi {
		t.Fatalf("time range after reopen: [%d,%d] err=%v", l, h, err)
	}
	for _, tt := range []Time{lo, (lo + hi) / 2, hi} {
		want := mustGraph(events, tt)
		got, err := reopened.Snapshot(tt)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Fatalf("snapshot@%d mismatch after reopen", tt)
		}
		fromMem, err := mem.Snapshot(tt)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(fromMem) {
			t.Fatalf("snapshot@%d: disk and memory backends diverge", tt)
		}
	}
	for _, id := range []NodeID{1, 5, 42} {
		h1, err := reopened.NodeHistory(id, lo, hi+1)
		if err != nil {
			t.Fatal(err)
		}
		h2, err := mem.NodeHistory(id, lo, hi+1)
		if err != nil {
			t.Fatal(err)
		}
		if len(h1.Events) != len(h2.Events) {
			t.Fatalf("node %d history: %d vs %d events", id, len(h1.Events), len(h2.Events))
		}
		k1, err := reopened.KHop(id, 2, hi)
		if err != nil {
			t.Fatal(err)
		}
		if !k1.Equal(mustGraph(events, hi).KHopSubgraph(id, 2)) {
			t.Fatalf("k-hop of %d mismatch after reopen", id)
		}
	}

	// The reattached store accepts appends, and they persist too.
	extra := []Event{
		{Time: hi + 10, Kind: AddNode, Node: 990_001},
		{Time: hi + 20, Kind: AddNode, Node: 990_002},
		{Time: hi + 30, Kind: AddEdge, Node: 990_001, Other: 990_002},
	}
	if err := reopened.Append(extra); err != nil {
		t.Fatal(err)
	}
	if err := reopened.Close(); err != nil {
		t.Fatal(err)
	}
	third, err := Open(Options{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer third.Close()
	g, err := third.Snapshot(hi + 30)
	if err != nil {
		t.Fatal(err)
	}
	if !g.HasEdge(990_001, 990_002) {
		t.Fatal("appended edge lost across second reopen")
	}
}

func TestDataDirShapeConflictRejected(t *testing.T) {
	dir := t.TempDir()
	// A failed Open must not stamp a shape into an empty directory.
	if _, err := Open(Options{DataDir: dir, TimespanEvents: 10, EventlistSize: 100}); err == nil {
		t.Fatal("invalid options must fail")
	}
	if _, err := os.Stat(filepath.Join(dir, "cluster.json")); err == nil {
		t.Fatal("failed Open left cluster.json behind")
	}
	opts := smallOptions()
	opts.DataDir = dir
	store, err := Open(opts) // Machines: 2
	if err != nil {
		t.Fatal(err)
	}
	store.Close()
	bad := smallOptions()
	bad.DataDir = dir
	bad.Machines = 5
	if _, err := Open(bad); err == nil {
		t.Fatal("conflicting machine count must be rejected")
	}
	// Zero options adopt the stored shape.
	ok, err := Open(Options{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer ok.Close()
	if got := ok.Cluster().Machines(); got != 2 {
		t.Fatalf("adopted machines = %d, want 2", got)
	}
}

func TestOptionsValidation(t *testing.T) {
	_, err := Open(Options{TimespanEvents: 10, EventlistSize: 100})
	if err == nil {
		t.Fatal("invalid options must fail")
	}
}

func TestFullOptionMatrix(t *testing.T) {
	// Locality partitioning + 1-hop replication + compression, end to
	// end through the public API.
	events := workload.Friendster(workload.FriendsterConfig{
		Communities: 6, CommunitySize: 80, IntraDegree: 5, InterFraction: 0.05, Seed: 9,
	})
	store, err := Open(Options{
		Machines:             3,
		Replication:          2,
		TimespanEvents:       len(events)/2 + 1,
		EventlistSize:        len(events) / 10,
		PartitionSize:        60,
		HorizontalPartitions: 2,
		LocalityPartitioning: true,
		Replicate1Hop:        true,
		Compress:             true,
		FetchClients:         2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Load(events); err != nil {
		t.Fatal(err)
	}
	lo, hi, _ := store.TimeRange()
	mid := (lo + hi) / 2
	want := mustGraph(events, mid)
	got, err := store.Snapshot(mid)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatal("snapshot mismatch under locality+replication+compression")
	}
	for _, id := range []NodeID{0, 81, 200} {
		hood, err := store.KHop(id, 1, mid)
		if err != nil {
			t.Fatal(err)
		}
		if !hood.Equal(want.KHopSubgraph(id, 1)) {
			t.Fatalf("1-hop of %d mismatch", id)
		}
	}
	// Multi-point retrieval APIs.
	gs, err := store.Snapshots([]Time{lo + 10, mid, hi})
	if err != nil {
		t.Fatal(err)
	}
	if len(gs) != 3 || !gs[1].Equal(want) {
		t.Fatal("multipoint snapshots wrong")
	}
}

func TestCacheBytesOptionAndStats(t *testing.T) {
	opts := smallOptions()
	store, events := loadWiki(t, opts, 600)
	lo, hi, _ := store.TimeRange()
	mid := (lo + hi) / 2

	// Two identical snapshots: the second must be served mostly from the
	// decoded-delta cache, with fewer KV reads.
	store.Cluster().ResetMetrics()
	g1, err := store.Snapshot(mid)
	if err != nil {
		t.Fatal(err)
	}
	cold := store.Cluster().Metrics().Reads
	if stCold, err := store.Stats(); err != nil {
		t.Fatal(err)
	} else if stCold.StoreMetrics.RoundTrips == 0 {
		t.Fatal("round-trip counter not surfaced through Stats")
	}
	store.Cluster().ResetMetrics()
	g2, err := store.Snapshot(mid)
	if err != nil {
		t.Fatal(err)
	}
	warm := store.Cluster().Metrics().Reads
	if !g1.Equal(g2) {
		t.Fatal("warm snapshot differs from cold")
	}
	if warm >= cold {
		t.Fatalf("warm snapshot reads (%d) not below cold (%d)", warm, cold)
	}
	st, err := store.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Cache.Hits == 0 || st.Cache.MaxBytes != 64<<20 {
		t.Fatalf("cache stats = %+v; want hits > 0 and the 64MiB default budget", st.Cache)
	}

	// CacheBytes < 0 disables caching entirely.
	off, err := Open(Options{Machines: 2, CacheBytes: -1,
		TimespanEvents: 2000, EventlistSize: 400, HorizontalPartitions: 2, PartitionSize: 100})
	if err != nil {
		t.Fatal(err)
	}
	if err := off.Load(events); err != nil {
		t.Fatal(err)
	}
	if _, err := off.Snapshot(mid); err != nil {
		t.Fatal(err)
	}
	if _, err := off.Snapshot(mid); err != nil {
		t.Fatal(err)
	}
	stOff, err := off.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stOff.Cache.Hits != 0 || stOff.Cache.Misses != 0 || stOff.Cache.MaxBytes != 0 {
		t.Fatalf("disabled cache recorded traffic: %+v", stOff.Cache)
	}
}

func TestCacheBytesSurvivesReattach(t *testing.T) {
	dir := t.TempDir()
	opts := smallOptions()
	opts.DataDir = filepath.Join(dir, "store")
	store, _ := loadWiki(t, opts, 400)
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	// Reattach with an explicit budget: the persisted construction config
	// is adopted, but CacheBytes stays a property of this process.
	re, err := Open(Options{DataDir: opts.DataDir, CacheBytes: 4 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if !re.Loaded() {
		t.Fatal("reattach lost the index")
	}
	lo, hi, _ := re.TimeRange()
	if _, err := re.Snapshot((lo + hi) / 2); err != nil {
		t.Fatal(err)
	}
	st, err := re.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Cache.MaxBytes != 4<<20 {
		t.Fatalf("reattached cache budget = %d, want the requested 4MiB", st.Cache.MaxBytes)
	}
}

// TestTieredDurableRoundTrip is the acceptance test for the tiered
// engine: queries over a tiered store match the in-memory oracle, hot
// hits are visible in the per-tier counters, and a close/reopen cycle
// (which drops the hot tier into the WAL) loses nothing.
func TestTieredDurableRoundTrip(t *testing.T) {
	dir := t.TempDir()
	events := workload.Wikipedia(workload.WikiConfig{Nodes: 400, EdgesPerNode: 3, Seed: 13})

	opts := smallOptions()
	opts.DataDir = dir
	opts.Engine = EngineTiered
	opts.HotBytes = 64 << 10 // small: most of the index migrates cold
	opts.CompactRate = -1
	store, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	if store.Engine() != EngineTiered {
		t.Fatalf("engine = %q, want tiered", store.Engine())
	}
	if err := store.Load(events); err != nil {
		t.Fatal(err)
	}
	lo, hi, err := store.TimeRange()
	if err != nil {
		t.Fatal(err)
	}
	for _, tt := range []Time{lo, (lo + hi) / 2, hi} {
		g, err := store.Snapshot(tt)
		if err != nil {
			t.Fatal(err)
		}
		if !g.Equal(mustGraph(events, tt)) {
			t.Fatalf("tiered snapshot@%d mismatch", tt)
		}
	}
	st, err := store.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.StoreMetrics.TierHotReads == 0 && st.StoreMetrics.TierColdReads == 0 {
		t.Fatal("tiered store reported no per-tier reads")
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	// Reattach with zero options: the tiered engine is adopted from
	// cluster.json.
	reopened, err := Open(Options{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	if reopened.Engine() != EngineTiered {
		t.Fatalf("reopened engine = %q, want tiered", reopened.Engine())
	}
	if !reopened.Loaded() {
		t.Fatal("reopened tiered store must reattach without Load")
	}
	g, err := reopened.Snapshot(hi)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(mustGraph(events, hi)) {
		t.Fatal("tiered snapshot mismatch after reopen")
	}
	// A conflicting explicit engine is rejected.
	bad := Options{DataDir: dir, Engine: EngineDisk}
	if _, err := Open(bad); err == nil {
		t.Fatal("conflicting engine must be rejected")
	}
}

func TestEngineOptionValidation(t *testing.T) {
	if _, err := Open(Options{Engine: "bogus"}); err == nil {
		t.Fatal("unknown engine must fail")
	}
	if _, err := Open(Options{Engine: EngineTiered}); err == nil {
		t.Fatal("tiered without DataDir must fail")
	}
	if _, err := Open(Options{Engine: EngineDisk}); err == nil {
		t.Fatal("disk without DataDir must fail")
	}
	if _, err := Open(Options{Engine: EngineMemory, DataDir: t.TempDir()}); err == nil {
		t.Fatal("memory engine with DataDir must fail")
	}
}

// TestBackupRoundTrip: a backup of a quiesced store opens as a store of
// its own, answers identically, and is isolated from later writes to
// the original. Exercised for both disk engines.
func TestBackupRoundTrip(t *testing.T) {
	for _, engine := range []StorageEngine{EngineDisk, EngineTiered} {
		t.Run(string(engine), func(t *testing.T) {
			dir := t.TempDir()
			events := workload.Wikipedia(workload.WikiConfig{Nodes: 300, EdgesPerNode: 3, Seed: 17})
			opts := smallOptions()
			opts.DataDir = dir
			opts.Engine = engine
			if engine == EngineTiered {
				opts.HotBytes = 32 << 10
				opts.CompactRate = -1
			}
			store, err := Open(opts)
			if err != nil {
				t.Fatal(err)
			}
			defer store.Close()
			if err := store.Load(events); err != nil {
				t.Fatal(err)
			}
			lo, hi, err := store.TimeRange()
			if err != nil {
				t.Fatal(err)
			}

			backupDir := filepath.Join(t.TempDir(), "backup")
			if err := store.Backup(backupDir); err != nil {
				t.Fatal(err)
			}
			if err := store.Backup(backupDir); err == nil {
				t.Fatal("backup into an existing store must fail")
			}
			// Mutate the original after the backup.
			extra := []Event{{Time: hi + 10, Kind: AddNode, Node: 777_001}}
			if err := store.Append(extra); err != nil {
				t.Fatal(err)
			}

			copyStore, err := Open(Options{DataDir: backupDir})
			if err != nil {
				t.Fatal(err)
			}
			defer copyStore.Close()
			if copyStore.Engine() != engine {
				t.Fatalf("backup engine = %q, want %q", copyStore.Engine(), engine)
			}
			if !copyStore.Loaded() {
				t.Fatal("backup must reattach to the copied index")
			}
			for _, tt := range []Time{lo, (lo + hi) / 2, hi} {
				g, err := copyStore.Snapshot(tt)
				if err != nil {
					t.Fatal(err)
				}
				if !g.Equal(mustGraph(events, tt)) {
					t.Fatalf("backup snapshot@%d mismatch", tt)
				}
			}
			if n, err := copyStore.Node(777_001, hi+10); err != nil || n != nil {
				t.Fatalf("post-backup append leaked into the backup (n=%v err=%v)", n, err)
			}
		})
	}
}

func TestBackupRequiresDurableStore(t *testing.T) {
	store, err := Open(smallOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	if err := store.Backup(t.TempDir()); err == nil {
		t.Fatal("backup of an in-memory store must fail")
	}
}

// TestSharedCacheAcrossHandles: two handles attached to the same
// DataDir share one decoded-delta cache, so the second reader's cold
// misses were already paid by the first.
func TestSharedCacheAcrossHandles(t *testing.T) {
	dir := t.TempDir()
	events := workload.Wikipedia(workload.WikiConfig{Nodes: 400, EdgesPerNode: 3, Seed: 21})
	opts := smallOptions()
	opts.DataDir = dir
	builder, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := builder.Load(events); err != nil {
		t.Fatal(err)
	}
	lo, hi, err := builder.TimeRange()
	if err != nil {
		t.Fatal(err)
	}
	if err := builder.Close(); err != nil {
		t.Fatal(err)
	}

	a, err := Open(Options{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := Open(Options{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	probe := (lo + hi) / 2
	a.Cluster().ResetMetrics()
	if _, err := a.Snapshot(probe); err != nil {
		t.Fatal(err)
	}
	coldReads := a.Cluster().Metrics().Reads

	// B is a different handle over a different cluster object; only the
	// shared cache can spare it A's delta reads.
	b.Cluster().ResetMetrics()
	if _, err := b.Snapshot(probe); err != nil {
		t.Fatal(err)
	}
	warmReads := b.Cluster().Metrics().Reads
	if warmReads >= coldReads {
		t.Fatalf("second handle read %d >= first handle's %d: cache not shared", warmReads, coldReads)
	}
	st, err := b.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Cache.Hits == 0 {
		t.Fatal("second handle saw no cache hits")
	}

	// A cache-disabled handle does not join (and does not disturb the
	// shared cache).
	off, err := Open(Options{DataDir: dir, CacheBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer off.Close()
	if _, err := off.Snapshot(probe); err != nil {
		t.Fatal(err)
	}
	stOff, err := off.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stOff.Cache.MaxBytes != 0 {
		t.Fatal("cache-disabled handle reports an active cache")
	}
}

func TestTieredDataDirSingleHandle(t *testing.T) {
	dir := t.TempDir()
	opts := smallOptions()
	opts.DataDir = dir
	opts.Engine = EngineTiered
	store, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	if _, err := Open(Options{DataDir: dir}); err == nil {
		t.Fatal("second handle on a live tiered DataDir must fail (its flusher owns the files)")
	}
}

// TestWarmOnOpenOption exercises the warm-up options end to end: a
// tiered store whose index went cold is reopened twice — WarmOff (the
// old cold start) and the WarmAuto default — and only the warmed handle
// serves the post-restart snapshot without cold-tier reads.
func TestWarmOnOpenOption(t *testing.T) {
	dir := t.TempDir()
	events := workload.Wikipedia(workload.WikiConfig{Nodes: 400, EdgesPerNode: 3, Seed: 17})

	opts := smallOptions()
	opts.DataDir = dir
	opts.Engine = EngineTiered
	opts.HotBytes = 1 // force the whole index cold
	opts.CompactRate = -1
	opts.WarmOnOpen = WarmOff
	store, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Load(events); err != nil {
		t.Fatal(err)
	}
	_, hi, err := store.TimeRange()
	if err != nil {
		t.Fatal(err)
	}
	waitDrained := func(s *Store) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			st, err := s.Stats()
			if err != nil {
				t.Fatal(err)
			}
			if st.StoreMetrics.TierHotBytes == 0 {
				return
			}
			time.Sleep(time.Millisecond)
		}
		t.Fatal("tiered store never drained cold")
	}
	waitDrained(store)
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	snapshotStats := func(opts Options) (cold int64, warmed int64) {
		t.Helper()
		s, err := Open(opts)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			st, err := s.Stats()
			if err != nil {
				t.Fatal(err)
			}
			if st.StoreMetrics.TierWarming == 0 {
				break
			}
			time.Sleep(time.Millisecond)
		}
		before, err := s.Stats()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Snapshot(hi); err != nil {
			t.Fatal(err)
		}
		after, err := s.Stats()
		if err != nil {
			t.Fatal(err)
		}
		return after.StoreMetrics.TierColdReads - before.StoreMetrics.TierColdReads, after.StoreMetrics.WarmedRows
	}

	reopen := smallOptions()
	reopen.DataDir = dir
	reopen.HotBytes = 256 << 20
	reopen.CacheBytes = -1 // measure the tiers, not the decoded-delta cache
	reopen.WarmOnOpen = WarmOff
	reopen.IdleCompactAfter = -1
	coldReads, warmed := snapshotStats(reopen)
	if coldReads == 0 {
		t.Fatal("WarmOff reopen served the snapshot without cold reads; the index never went cold")
	}
	if warmed != 0 {
		t.Fatalf("WarmOff reopen warmed %d rows", warmed)
	}

	reopen.WarmOnOpen = WarmAuto // the default: warm-up on for tiered
	coldReads, warmed = snapshotStats(reopen)
	if warmed == 0 {
		t.Fatal("default reopen of a tiered DataDir did not warm the hot tier")
	}
	if coldReads != 0 {
		t.Fatalf("warmed reopen still paid %d cold reads on the recent snapshot", coldReads)
	}

	if _, err := Open(Options{DataDir: dir, WarmOnOpen: "sideways"}); err == nil {
		t.Fatal("invalid WarmOnOpen must be rejected")
	}
}

// TestPlanTraceSurface pins the public tracing surface: TracePlans
// collects one record per retrieval into Store.PlanTraces/Stats, and a
// per-call FetchOptions.Trace fills the caller's Trace with the
// plan/cache/read breakdown.
func TestPlanTraceSurface(t *testing.T) {
	opts := smallOptions()
	opts.TracePlans = true
	store, _ := loadWiki(t, opts, 400)
	lo, hi, _ := store.TimeRange()
	mid := (lo + hi) / 2

	if _, err := store.Snapshot(mid); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Snapshot(mid); err != nil {
		t.Fatal(err)
	}
	trs := store.PlanTraces()
	if len(trs) != 2 {
		t.Fatalf("PlanTraces = %d records, want 2", len(trs))
	}
	cold, warm := trs[0], trs[1]
	if cold.Op != "snapshot" || cold.KVReads == 0 {
		t.Fatalf("cold trace = %+v", cold)
	}
	if warm.KVReads >= cold.KVReads || warm.CacheHits+warm.NegativeHits == 0 {
		t.Fatalf("warm trace did not show the cache at work: %+v", warm)
	}
	st, err := store.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Traces) != len(trs) {
		t.Fatalf("Stats.Traces = %d records, want %d", len(st.Traces), len(trs))
	}

	// Per-call tracing works without the store-side ring.
	plain, _ := loadWiki(t, smallOptions(), 400)
	tr := &Trace{}
	if _, err := plain.SnapshotWith(mid, &FetchOptions{Trace: tr}); err != nil {
		t.Fatal(err)
	}
	rec := tr.Record()
	if rec.Op != "snapshot" || rec.Execs != 1 || rec.Groups == 0 {
		t.Fatalf("per-call trace = %+v", rec)
	}
	if len(plain.PlanTraces()) != 0 {
		t.Fatal("per-call tracing leaked into the store-side ring")
	}
	if rec.String() == "" {
		t.Fatal("TraceRecord.String returned nothing")
	}
}
