package ring

import (
	"fmt"
	"hash/fnv"
	"testing"
)

func keyHash(i int) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "key-%d", i)
	return h.Sum64()
}

func sampleHashes(n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = keyHash(i)
	}
	return out
}

// Replicas must always be distinct nodes, for every key and every
// replication factor up to the node count.
func TestLookupDistinct(t *testing.T) {
	for _, rf := range []int{1, 2, 3, 5} {
		r := New([]int{0, 1, 2, 3, 4}, 32, rf)
		var buf [8]int
		for _, h := range sampleHashes(2000) {
			owners := r.Lookup(h, buf[:0])
			if len(owners) != rf {
				t.Fatalf("r=%d: got %d owners %v", rf, len(owners), owners)
			}
			seen := map[int]bool{}
			for _, n := range owners {
				if seen[n] {
					t.Fatalf("r=%d: duplicate owner in %v", rf, owners)
				}
				seen[n] = true
				if n < 0 || n > 4 {
					t.Fatalf("owner %d outside node set", n)
				}
			}
		}
	}
}

// A replication factor above the node count clamps to the node count.
func TestLookupClampsToNodeCount(t *testing.T) {
	r := New([]int{7, 9}, 16, 3)
	owners := r.Lookup(keyHash(1), nil)
	if len(owners) != 2 {
		t.Fatalf("want 2 owners, got %v", owners)
	}
}

// Placement depends only on the node set — not on construction order,
// not on the process. Two independently built rings (a "restart") agree
// on every key.
func TestDeterministicAcrossConstruction(t *testing.T) {
	a := New([]int{0, 1, 2, 3}, 64, 2)
	b := New([]int{3, 1, 0, 2, 2}, 64, 2) // shuffled, with a duplicate
	var ab, bb [4]int
	for _, h := range sampleHashes(5000) {
		ao := a.Lookup(h, ab[:0])
		bo := b.Lookup(h, bb[:0])
		if len(ao) != len(bo) {
			t.Fatalf("owner count differs: %v vs %v", ao, bo)
		}
		for i := range ao {
			if ao[i] != bo[i] {
				t.Fatalf("placement differs at %x: %v vs %v", h, ao, bo)
			}
		}
	}
}

// The consistent-hashing movement bound: adding one node to m moves
// about K·R/(m+1) of K keys' owner sets — well under 2·K·R/m — while
// modulo placement reshuffles nearly everything. This is the property
// the whole refactor exists for, and the old scheme's failure of it.
func TestMovementBoundOnNodeAdd(t *testing.T) {
	const K = 10000
	hashes := sampleHashes(K)
	for _, m := range []int{3, 4, 6} {
		nodes := make([]int, m)
		for i := range nodes {
			nodes[i] = i
		}
		const rf = 2
		from := New(nodes, 64, rf)
		to := from.With(m)
		moved := Moved(from, to, hashes)
		bound := 2 * K * rf / m
		if moved > bound {
			t.Errorf("m=%d: ring moved %d/%d keys, above the 2KR/m bound %d", m, moved, K, bound)
		}
		if moved == 0 {
			t.Errorf("m=%d: node add moved nothing — new node owns no keys", m)
		}

		// The old mod-m scheme: primary = h % m, replicas the next
		// (primary+i) % m. Count keys whose owner set survives m -> m+1.
		modMoved := 0
		for _, h := range hashes {
			var a, b [rf]int
			for i := 0; i < rf; i++ {
				a[i] = int((h%uint64(m) + uint64(i)) % uint64(m))
				b[i] = int((h%uint64(m+1) + uint64(i)) % uint64(m+1))
			}
			if !sameSet(a[:], b[:]) {
				modMoved++
			}
		}
		if modMoved <= K/2 {
			t.Errorf("m=%d: mod-m moved only %d/%d — expected a majority reshuffle", m, modMoved, K)
		}
		if moved >= modMoved {
			t.Errorf("m=%d: ring movement %d not below mod-m movement %d", m, moved, modMoved)
		}
	}
}

// Removing a node relocates only that node's keys: every key it did not
// own keeps its exact owner set.
func TestRemovalOnlyMovesOwnedKeys(t *testing.T) {
	from := New([]int{0, 1, 2, 3}, 64, 2)
	to := from.Without(2)
	var fb, tb [4]int
	for _, h := range sampleHashes(5000) {
		f := from.Lookup(h, fb[:0])
		if contains(f, 2) {
			continue
		}
		tt := to.Lookup(h, tb[:0])
		if !sameSet(f, tt) {
			t.Fatalf("key %x moved (%v -> %v) though node 2 never owned it", h, f, tt)
		}
	}
}

// Primary shares stay within a reasonable band of 1/m at the default
// vnode count, and sum to 1.
func TestSharesBalanced(t *testing.T) {
	r := New([]int{0, 1, 2, 3}, DefaultVirtualNodes, 2)
	shares := r.Shares()
	total := 0.0
	for n, s := range shares {
		total += s
		if s < 0.10 || s > 0.45 {
			t.Errorf("node %d primary share %.3f outside [0.10, 0.45]", n, s)
		}
	}
	if total < 0.999 || total > 1.001 {
		t.Errorf("shares sum to %.4f, want 1", total)
	}
}

// Lookup into a caller-provided buffer must not allocate — it is the
// per-operation routing step of every cluster read and write.
func TestLookupNoAlloc(t *testing.T) {
	r := New([]int{0, 1, 2, 3}, 64, 2)
	hashes := sampleHashes(64)
	var buf [8]int
	allocs := testing.AllocsPerRun(100, func() {
		for _, h := range hashes {
			if got := r.Lookup(h, buf[:0]); len(got) != 2 {
				t.Fatal("bad lookup")
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("Lookup allocated %.1f times per run, want 0", allocs)
	}
}

func TestEmptyRing(t *testing.T) {
	r := New(nil, 8, 2)
	if got := r.Lookup(42, nil); len(got) != 0 {
		t.Fatalf("empty ring returned owners %v", got)
	}
	if len(r.Shares()) != 0 {
		t.Fatal("empty ring has shares")
	}
}
