// Package ring implements the consistent-hash placement ring of the
// storage cluster: each node projects VirtualNodes points onto a 64-bit
// hash circle, and a partition key hashing to h is owned by the first R
// distinct nodes found walking clockwise from h.
//
// The ring is deterministic: a point's position depends only on the
// node id and the virtual-node index (no process-dependent seed), so
// two processes building a ring over the same node set place every key
// identically — the property that lets a DataDir store reattach to its
// persisted partitions. Rings are immutable; With/Without derive the
// ring after a membership change, and Moved measures how many of a key
// sample would relocate between two ring states (consistent hashing
// bounds this near K·R/m, versus the near-total reshuffle of modulo
// placement).
package ring

import (
	"encoding/binary"
	"hash/fnv"
	"sort"
)

// DefaultVirtualNodes is the per-node point count used when a caller
// passes vnodes <= 0. 64 points per node keeps the largest/smallest
// key-share ratio within a few tens of percent for small clusters while
// the points slice stays cache-resident.
const DefaultVirtualNodes = 64

// point is one virtual node on the circle.
type point struct {
	hash uint64
	node int
}

// Ring is an immutable placement state: a node set plus its projected
// points. Safe for concurrent use.
type Ring struct {
	vnodes   int
	replicas int
	nodes    []int // sorted, distinct
	points   []point
}

// mix64 is a 64-bit avalanche finalizer (the MurmurHash3 fmix64
// constants): every input bit affects every output bit. FNV-64a alone
// is not enough for ring positions — inputs differing only in their
// trailing bytes (consecutive vnode indexes, lexically similar
// partition keys) come out of FNV numerically adjacent, which would
// collapse each node's points into one tight cluster and with them any
// similarity structure of the key population onto one arc.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec86
	x ^= x >> 33
	return x
}

// vnodeHash positions virtual node idx of a node on the circle. The 'v'
// domain prefix decorrelates point positions from key hashes (both are
// FNV-64a outputs); mix64 spreads the consecutive indexes over the
// whole circle.
func vnodeHash(node, idx int) uint64 {
	var b [17]byte
	b[0] = 'v'
	binary.BigEndian.PutUint64(b[1:9], uint64(node))
	binary.BigEndian.PutUint64(b[9:17], uint64(idx))
	h := fnv.New64a()
	h.Write(b[:])
	return mix64(h.Sum64())
}

// New builds the ring over the given nodes (copied, deduplicated) with
// vnodes points per node and the target replication factor. A lookup
// returns min(replicas, len(nodes)) distinct owners. An empty node set
// yields a ring whose lookups return nothing.
func New(nodes []int, vnodes, replicas int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	if replicas < 1 {
		replicas = 1
	}
	ns := append([]int(nil), nodes...)
	sort.Ints(ns)
	ns = dedupSorted(ns)
	r := &Ring{
		vnodes:   vnodes,
		replicas: replicas,
		nodes:    ns,
		points:   make([]point, 0, len(ns)*vnodes),
	}
	for _, n := range ns {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, point{hash: vnodeHash(n, i), node: n})
		}
	}
	// Ties broken by node id so point order — and therefore placement —
	// is identical however the node list was presented.
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].node < r.points[j].node
	})
	return r
}

func dedupSorted(ns []int) []int {
	out := ns[:0]
	for i, n := range ns {
		if i == 0 || n != ns[i-1] {
			out = append(out, n)
		}
	}
	return out
}

// Nodes returns the node set, sorted (a copy).
func (r *Ring) Nodes() []int { return append([]int(nil), r.nodes...) }

// NumNodes returns the number of nodes on the ring.
func (r *Ring) NumNodes() int { return len(r.nodes) }

// VirtualNodes returns the per-node point count.
func (r *Ring) VirtualNodes() int { return r.vnodes }

// Replicas returns the target replication factor.
func (r *Ring) Replicas() int { return r.replicas }

// Has reports whether node is on the ring.
func (r *Ring) Has(node int) bool {
	i := sort.SearchInts(r.nodes, node)
	return i < len(r.nodes) && r.nodes[i] == node
}

// Lookup appends the distinct owner nodes of key hash h — primary
// first, then the clockwise successors — into buf and returns it. It
// allocates only if buf lacks capacity, so hot paths can reuse a
// stack-backed buffer across calls. The hash is passed through mix64
// before positioning, so callers may supply any deterministic 64-bit
// hash — even one whose diffusion is poor over similar keys.
func (r *Ring) Lookup(h uint64, buf []int) []int {
	out := buf[:0]
	if len(r.points) == 0 {
		return out
	}
	h = mix64(h)
	want := r.replicas
	if want > len(r.nodes) {
		want = len(r.nodes)
	}
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	for i := 0; len(out) < want && i < len(r.points); i++ {
		n := r.points[(start+i)%len(r.points)].node
		if !contains(out, n) {
			out = append(out, n)
		}
	}
	return out
}

// contains is a linear scan — owner lists are replication-factor sized
// (single digits), where this beats any map.
func contains(xs []int, n int) bool {
	for _, x := range xs {
		if x == n {
			return true
		}
	}
	return false
}

// With returns the ring after adding node (same vnodes/replicas).
func (r *Ring) With(node int) *Ring {
	return New(append(append([]int(nil), r.nodes...), node), r.vnodes, r.replicas)
}

// Without returns the ring after removing node.
func (r *Ring) Without(node int) *Ring {
	ns := make([]int, 0, len(r.nodes))
	for _, n := range r.nodes {
		if n != node {
			ns = append(ns, n)
		}
	}
	return New(ns, r.vnodes, r.replicas)
}

// Shares returns each node's share of the hash circle as primary owner
// (arc length fraction). Shares sum to 1 on a non-empty ring; with
// replication r a node holds roughly r× its share of all keys.
func (r *Ring) Shares() map[int]float64 {
	shares := make(map[int]float64, len(r.nodes))
	if len(r.points) == 0 {
		return shares
	}
	const whole = float64(1<<63) * 2 // 2^64 as float
	// The arc ending at point i (exclusive of the previous point's hash,
	// inclusive of its own) is owned by point i's node; the wrap-around
	// arc belongs to the first point.
	prev := r.points[len(r.points)-1].hash
	for _, p := range r.points {
		arc := p.hash - prev // uint64 arithmetic wraps correctly
		shares[p.node] += float64(arc) / whole
		prev = p.hash
	}
	return shares
}

// PointsOf returns how many virtual nodes node projects (vnodes if on
// the ring, else 0).
func (r *Ring) PointsOf(node int) int {
	if r.Has(node) {
		return r.vnodes
	}
	return 0
}

// Moved counts how many of the sampled key hashes have a different
// owner SET on to than on from (ownership order changes alone are not
// movement — no data is copied for them).
func Moved(from, to *Ring, hashes []uint64) int {
	moved := 0
	var fb, tb [16]int
	for _, h := range hashes {
		f := from.Lookup(h, fb[:0])
		t := to.Lookup(h, tb[:0])
		if !sameSet(f, t) {
			moved++
		}
	}
	return moved
}

func sameSet(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for _, x := range a {
		if !contains(b, x) {
			return false
		}
	}
	return true
}
