// Command hgs-bench regenerates the paper's evaluation tables and
// figures (Khurana & Deshpande, EDBT 2016, §6) on the scaled synthetic
// datasets and prints the plotted series.
//
// Usage:
//
//	hgs-bench                 # run everything
//	hgs-bench -list           # list experiment ids
//	hgs-bench -run fig11      # run one experiment
//	hgs-bench -run cache      # cache v2: cold / warm / legacy-v1 / off
//	                          # passes with the negative-hit ratio
//	hgs-bench -run tiering    # hot-tier budget sweep on the tiered backend
//	hgs-bench -run reopen     # post-restart probes, warm-up off vs on
//	HGS_SCALE=4 hgs-bench     # scale all datasets 4x
//	hgs-bench -run fig11 -data /tmp/bench-disk   # same workload on the
//	                          # durable disk backend (memory vs disk)
//	hgs-bench -json out.json  # also write machine-readable results
//	                          # (per-pass KV reads, round-trips, sim-wait,
//	                          # cache ratios, latency quantiles) — the
//	                          # format scripts/perfdiff ratchets against
//
// Every figure run reports its store metrics (logical KV operations,
// machine round-trips, simulated service time) and the decoded-delta
// cache counters as notes, so performance claims are checkable from the
// CLI output alone.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"hgs/internal/bench"
)

func main() {
	list := flag.Bool("list", false, "list experiment ids and exit")
	run := flag.String("run", "", "comma-free experiment id to run (default: all)")
	dataDir := flag.String("data", "", "run storage clusters on the durable disk backend under this (fresh) directory, to compare memory vs disk")
	jsonPath := flag.String("json", "", "also write the results as a machine-readable JSON report to this path")
	flag.Parse()

	if *dataDir != "" {
		if entries, err := os.ReadDir(*dataDir); err == nil && len(entries) > 0 {
			fmt.Fprintf(os.Stderr, "hgs-bench: -data %s is not empty; benchmarks need a fresh directory\n", *dataDir)
			os.Exit(1)
		}
		bench.SetDataDir(*dataDir)
		defer bench.ResetCache() // close disk engines before exit
	}

	if *list {
		ids := make([]string, 0, len(bench.Runners))
		for id := range bench.Runners {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			fmt.Println(id)
		}
		return
	}

	sc := bench.DefaultScale()
	fmt.Printf("# HGS evaluation harness — scale: %d wiki nodes, %d friendster nodes, %d dblp entities\n",
		sc.WikiNodes, sc.FriendsterCommunities*sc.FriendsterSize, sc.DBLPAuthors+sc.DBLPPapers)
	fmt.Printf("# started %s\n\n", time.Now().Format(time.RFC3339))

	var results []*bench.Result
	if *run != "" {
		runner, ok := bench.Runners[*run]
		if !ok {
			fmt.Fprintf(os.Stderr, "hgs-bench: unknown experiment %q (try -list)\n", *run)
			os.Exit(1)
		}
		res := runner(sc)
		res.Print(os.Stdout)
		results = append(results, res)
	} else {
		// Stream results as each experiment completes.
		for _, id := range bench.Order {
			res := bench.Runners[id](sc)
			res.Print(os.Stdout)
			results = append(results, res)
		}
	}
	if *jsonPath != "" {
		if err := writeReport(*jsonPath, sc, results); err != nil {
			fmt.Fprintf(os.Stderr, "hgs-bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("# wrote JSON report: %s\n", *jsonPath)
	}
}

// writeReport writes the machine-readable run to path (stdout with "-").
func writeReport(path string, sc bench.Scale, results []*bench.Result) error {
	rep := &bench.Report{Scale: sc, Results: results}
	if path == "-" {
		return rep.WriteJSON(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rep.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
