package codec

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hgs/internal/delta"
	"hgs/internal/graph"
	"hgs/internal/temporal"
)

func randDelta(seed int64, n int) *delta.Delta {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New()
	for i := 0; i < n; i++ {
		u := graph.NodeID(rng.Intn(30))
		v := graph.NodeID(rng.Intn(30))
		switch rng.Intn(5) {
		case 0:
			g.AddNode(u)
		case 1, 2:
			g.AddEdge(u, v)
		case 3:
			g.Apply(graph.Event{Kind: graph.SetNodeAttr, Node: u, Key: "label", Value: string(rune('a' + rng.Intn(5)))})
		case 4:
			g.Apply(graph.Event{Kind: graph.SetEdgeAttr, Node: u, Other: v, Key: "w", Value: "1.5"})
		}
	}
	d := delta.FromGraph(g)
	if rng.Intn(2) == 0 {
		d.MarkDeleted(graph.NodeID(1000 + rng.Intn(5)))
	}
	return d
}

func randEvents(seed int64, n int) []graph.Event {
	rng := rand.New(rand.NewSource(seed))
	evs := make([]graph.Event, n)
	t := temporal.Time(0)
	for i := range evs {
		t += temporal.Time(rng.Intn(5))
		evs[i] = graph.Event{
			Time:  t,
			Kind:  graph.EventKind(1 + rng.Intn(8)),
			Node:  graph.NodeID(rng.Intn(1000)),
			Other: graph.NodeID(rng.Intn(1000)),
			Key:   []string{"", "k1", "weight"}[rng.Intn(3)],
			Value: []string{"", "x", "3.14"}[rng.Intn(3)],
		}
	}
	return evs
}

func TestDeltaRoundtrip(t *testing.T) {
	for _, c := range []Codec{{}, {Compress: true}} {
		d := randDelta(42, 200)
		blob, err := c.EncodeDelta(d)
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.DecodeDelta(blob)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(d) {
			t.Fatalf("roundtrip mismatch (compress=%v)", c.Compress)
		}
	}
}

func TestDeltaRoundtripProperty(t *testing.T) {
	f := func(seed int64, compress bool) bool {
		c := Codec{Compress: compress}
		d := randDelta(seed, 80)
		blob, err := c.EncodeDelta(d)
		if err != nil {
			return false
		}
		got, err := c.DecodeDelta(blob)
		return err == nil && got.Equal(d)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestEventsRoundtrip(t *testing.T) {
	f := func(seed int64, compress bool) bool {
		c := Codec{Compress: compress}
		evs := randEvents(seed, 150)
		blob, err := c.EncodeEvents(evs)
		if err != nil {
			return false
		}
		got, err := c.DecodeEvents(blob)
		if err != nil || len(got) != len(evs) {
			return false
		}
		for i := range evs {
			if got[i] != evs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestNodeStateRoundtrip(t *testing.T) {
	ns := graph.NewNodeState(77)
	ns.Attrs = graph.Attrs{"name": "n77", "community": "A"}
	ns.Edges = map[graph.EdgeKey]*graph.EdgeState{
		{Other: 1, Out: true}:  {Attrs: graph.Attrs{"w": "2"}},
		{Other: 2, Out: false}: {},
	}
	c := Codec{}
	blob, err := c.EncodeNodeState(ns)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.DecodeNodeState(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(ns) {
		t.Fatal("node state roundtrip mismatch")
	}
}

func TestCompressionShrinksRepetitiveData(t *testing.T) {
	// A large delta with repetitive attributes should compress well.
	g := graph.New()
	for i := graph.NodeID(0); i < 500; i++ {
		g.AddNode(i)
		g.Apply(graph.Event{Kind: graph.SetNodeAttr, Node: i, Key: "EntityType", Value: "AuthorAuthorAuthor"})
	}
	d := delta.FromGraph(g)
	plain, err := Codec{}.EncodeDelta(d)
	if err != nil {
		t.Fatal(err)
	}
	packed, err := Codec{Compress: true}.EncodeDelta(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(packed) >= len(plain) {
		t.Fatalf("compression did not shrink blob: %d >= %d", len(packed), len(plain))
	}
	// Cross-decoding: a plain codec can decode a compressed blob.
	got, err := Codec{}.DecodeDelta(packed)
	if err != nil || !got.Equal(d) {
		t.Fatal("cross-decode of compressed blob failed")
	}
}

func TestCorruptBlobs(t *testing.T) {
	c := Codec{}
	if _, err := c.DecodeDelta(nil); err == nil {
		t.Fatal("nil blob should fail")
	}
	if _, err := c.DecodeDelta([]byte{0xFF, 1, 2}); err == nil {
		t.Fatal("unknown header should fail")
	}
	blob, _ := c.EncodeDelta(randDelta(7, 50))
	if _, err := c.DecodeDelta(blob[:len(blob)/2]); err == nil {
		t.Fatal("truncated blob should fail")
	}
	if _, err := c.DecodeEvents([]byte{flagGzip, 0x00}); err == nil {
		t.Fatal("bogus gzip payload should fail")
	}
}

func TestDeterministicEncoding(t *testing.T) {
	d := randDelta(99, 120)
	a, _ := Codec{}.EncodeDelta(d)
	b, _ := Codec{}.EncodeDelta(d.Clone())
	if string(a) != string(b) {
		t.Fatal("encoding is not deterministic")
	}
}
