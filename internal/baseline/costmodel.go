package baseline

import "fmt"

// CostParams are the symbolic quantities of the paper's Table 1.
type CostParams struct {
	Changes       float64 // |G|: number of changes in the graph
	Nodes         float64 // |N|: number of nodes
	SnapshotSize  float64 // |S|: size of a snapshot
	EventlistSize float64 // |E|: eventlist size
	TreeHeight    float64 // h: height of the DeltaGraph/TGI tree
	NodeChanges   float64 // |V|: number of changes to one node
	Neighbors     float64 // |R|: neighbors of a node
	Partitions    float64 // p: number of micro-partitions in TGI
	NodeChunks    float64 // |C|: per-node chunk count (vertex-centric)
}

// DeriveCostParams fills the dependent quantities from dataset-level
// figures, mirroring how the evaluation instantiates Table 1.
func DeriveCostParams(changes, nodes, eventlistSize, arity, partitionSize int) CostParams {
	h := 1.0
	leaves := float64(changes)/float64(eventlistSize) + 1
	for n := leaves; n > 1; n /= float64(arity) {
		h++
	}
	snapshot := float64(nodes)
	return CostParams{
		Changes:       float64(changes),
		Nodes:         float64(nodes),
		SnapshotSize:  snapshot,
		EventlistSize: float64(eventlistSize),
		TreeHeight:    h,
		NodeChanges:   float64(changes) / float64(max(nodes, 1)),
		Neighbors:     float64(changes) / float64(max(nodes, 1)), // avg degree proxy
		Partitions:    max(snapshot/float64(max(partitionSize, 1)), 1),
		NodeChunks:    max(float64(changes)/float64(max(nodes, 1))/float64(max(eventlistSize, 1)), 1),
	}
}

// QueryCost is one Table 1 cell pair: the cumulative delta size fetched
// (Σ|∆|) and the number of deltas fetched (Σ1).
type QueryCost struct {
	Work    float64 // Σ|∆|
	Fetches float64 // Σ1
}

func (q QueryCost) String() string { return fmt.Sprintf("%.3g / %.3g", q.Work, q.Fetches) }

// CostRow is one index's row of Table 1.
type CostRow struct {
	Index          string
	Size           float64
	Snapshot       QueryCost
	StaticVertex   QueryCost
	VertexVersions QueryCost
	OneHop         QueryCost
	OneHopVersions QueryCost
}

// CostTable evaluates the closed forms of Table 1 for the given
// parameters, in the paper's row order.
func CostTable(p CostParams) []CostRow {
	G, N, S, E := p.Changes, p.Nodes, p.SnapshotSize, p.EventlistSize
	h, V, R, pp, C := p.TreeHeight, p.NodeChanges, p.Neighbors, p.Partitions, p.NodeChunks
	logAll := QueryCost{Work: G, Fetches: G / E}
	return []CostRow{
		{
			Index: "Log", Size: G,
			Snapshot: logAll, StaticVertex: logAll, VertexVersions: logAll,
			OneHop: logAll, OneHopVersions: logAll,
		},
		{
			Index: "Copy", Size: G * G,
			Snapshot:       QueryCost{S, 1},
			StaticVertex:   QueryCost{S, 1},
			VertexVersions: QueryCost{S * G, G},
			OneHop:         QueryCost{S, 1},
			OneHopVersions: QueryCost{S * G, G},
		},
		{
			Index: "Copy+Log", Size: G * G / E,
			Snapshot:       QueryCost{S + E, 2},
			StaticVertex:   QueryCost{S + E, 2},
			VertexVersions: QueryCost{G, G / E},
			OneHop:         QueryCost{S + E, 2},
			OneHopVersions: QueryCost{G, G / E},
		},
		{
			Index: "Node Centric", Size: 2 * G,
			Snapshot:       QueryCost{2 * G, N},
			StaticVertex:   QueryCost{C, 1},
			VertexVersions: QueryCost{C, 1},
			OneHop:         QueryCost{R * V, R},
			OneHopVersions: QueryCost{R * V, R},
		},
		{
			Index: "DeltaGraph", Size: G * (h + 1),
			Snapshot:       QueryCost{h*S + E, 2 * h},
			StaticVertex:   QueryCost{h*S + E, 2 * h},
			VertexVersions: QueryCost{G, G / E},
			OneHop:         QueryCost{h * (S + E), 2 * h},
			OneHopVersions: QueryCost{G, G / E},
		},
		{
			Index: "TGI", Size: G * (2*h + 3),
			Snapshot:       QueryCost{h*S + E, 2 * h},
			StaticVertex:   QueryCost{(h*S + E) / pp, 2 * h},
			VertexVersions: QueryCost{V * (1 + S/pp), V + 1},
			OneHop:         QueryCost{h * (S + E) / pp, 2 * h},
			OneHopVersions: QueryCost{V * (1 + S/pp), V + 1},
		},
	}
}
