// Package memtable is the in-memory storage engine: table-scoped
// partitions of rows kept sorted by clustering key in contiguous
// slices. It is the extraction of the storage half of the original
// kvstore node and remains the default engine — nothing survives the
// process, exactly like the paper's simulated Cassandra cluster.
package memtable

import (
	"sort"
	"strings"

	"hgs/internal/backend"
)

// Store is one node's in-memory engine. It is not internally
// synchronized; the cluster serializes access per node.
type Store struct {
	tables map[string]map[string]*partition
	stored int64
}

// partition holds rows sorted by clustering key.
type partition struct {
	rows []backend.Row
}

func (p *partition) find(ckey string) (int, bool) {
	i := sort.Search(len(p.rows), func(i int) bool { return p.rows[i].CKey >= ckey })
	return i, i < len(p.rows) && p.rows[i].CKey == ckey
}

// New returns an empty in-memory engine.
func New() *Store {
	return &Store{tables: make(map[string]map[string]*partition)}
}

// Factory builds memtable engines for every cluster node.
func Factory() backend.Factory {
	return func(int) (backend.Backend, error) { return New(), nil }
}

func (s *Store) partitionFor(table, pkey string, create bool) *partition {
	t, ok := s.tables[table]
	if !ok {
		if !create {
			return nil
		}
		t = make(map[string]*partition)
		s.tables[table] = t
	}
	p, ok := t[pkey]
	if !ok {
		if !create {
			return nil
		}
		p = &partition{}
		t[pkey] = p
	}
	return p
}

// Put stores value under (table, pkey, ckey), overwriting any existing
// row. The slice is retained as-is (the cluster passes a private copy).
func (s *Store) Put(table, pkey, ckey string, value []byte) {
	p := s.partitionFor(table, pkey, true)
	i, ok := p.find(ckey)
	if ok {
		s.stored += int64(len(value) - len(p.rows[i].Value))
		p.rows[i].Value = value
		return
	}
	p.rows = append(p.rows, backend.Row{})
	copy(p.rows[i+1:], p.rows[i:])
	p.rows[i] = backend.Row{CKey: ckey, Value: value}
	s.stored += int64(len(value) + len(ckey))
}

// Get returns a copy of the value at (table, pkey, ckey).
func (s *Store) Get(table, pkey, ckey string) ([]byte, bool) {
	p := s.partitionFor(table, pkey, false)
	if p == nil {
		return nil, false
	}
	i, ok := p.find(ckey)
	if !ok {
		return nil, false
	}
	return append([]byte(nil), p.rows[i].Value...), true
}

// MultiGet is the batch-read fast path: one partition lookup per
// consecutive (table, pkey) run instead of one per key. result[i] is nil
// exactly when reqs[i] is absent.
func (s *Store) MultiGet(reqs []backend.KeyRead) [][]byte {
	out := make([][]byte, len(reqs))
	var (
		p         *partition
		havePart  bool
		pt, ppkey string
	)
	for i, r := range reqs {
		if !havePart || r.Table != pt || r.PKey != ppkey {
			p = s.partitionFor(r.Table, r.PKey, false)
			pt, ppkey, havePart = r.Table, r.PKey, true
		}
		if p == nil {
			continue
		}
		if j, ok := p.find(r.CKey); ok {
			out[i] = append(make([]byte, 0, len(p.rows[j].Value)), p.rows[j].Value...)
		}
	}
	return out
}

// ScanPrefix returns the partition's rows with clustering keys starting
// with prefix, in clustering order, with copied values.
func (s *Store) ScanPrefix(table, pkey, prefix string) []backend.Row {
	p := s.partitionFor(table, pkey, false)
	if p == nil {
		return nil
	}
	var out []backend.Row
	i := sort.Search(len(p.rows), func(i int) bool { return p.rows[i].CKey >= prefix })
	for ; i < len(p.rows) && strings.HasPrefix(p.rows[i].CKey, prefix); i++ {
		out = append(out, backend.Row{
			CKey:  p.rows[i].CKey,
			Value: append([]byte(nil), p.rows[i].Value...),
		})
	}
	return out
}

// Delete removes a row, reporting whether it existed.
func (s *Store) Delete(table, pkey, ckey string) bool {
	p := s.partitionFor(table, pkey, false)
	if p == nil {
		return false
	}
	i, ok := p.find(ckey)
	if !ok {
		return false
	}
	s.stored -= int64(len(p.rows[i].Value) + len(ckey))
	p.rows = append(p.rows[:i], p.rows[i+1:]...)
	return true
}

// DropPartition removes an entire partition.
func (s *Store) DropPartition(table, pkey string) {
	t, ok := s.tables[table]
	if !ok {
		return
	}
	p, ok := t[pkey]
	if !ok {
		return
	}
	for _, r := range p.rows {
		s.stored -= int64(len(r.Value) + len(r.CKey))
	}
	delete(t, pkey)
}

// HasPartition reports whether the table holds the partition object
// (an emptied partition still counts until dropped).
func (s *Store) HasPartition(table, pkey string) bool {
	_, ok := s.tables[table][pkey]
	return ok
}

// Tables returns the sorted table names holding at least one partition
// (backend.TableLister).
func (s *Store) Tables() []string {
	out := make([]string, 0, len(s.tables))
	for t := range s.tables {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// PartitionKeys returns the sorted partition keys of a table.
func (s *Store) PartitionKeys(table string) []string {
	t, ok := s.tables[table]
	if !ok {
		return nil
	}
	out := make([]string, 0, len(t))
	for pk := range t {
		out = append(out, pk)
	}
	sort.Strings(out)
	return out
}

// DigestPartition digests one partition for anti-entropy comparison
// straight off the sorted row slice — no per-row value copies the way
// a ScanPrefix-then-DigestRows round trip would allocate.
func (s *Store) DigestPartition(table, pkey string) uint64 {
	p := s.partitionFor(table, pkey, false)
	if p == nil {
		return backend.DigestRows(nil)
	}
	return backend.DigestRows(p.rows)
}

// StoredBytes returns the logical live bytes held by this engine.
func (s *Store) StoredBytes() int64 { return s.stored }

// Flush is a no-op: memory has nothing to sync.
func (s *Store) Flush() error { return nil }

// Close is a no-op.
func (s *Store) Close() error { return nil }
