// Package fetch is the unified retrieval layer of the Temporal Graph
// Index: the query-manager half that turns a logical retrieval into a
// deduplicated read plan, and the executor half that runs the plan with
// batched key-value reads and a decoded-delta cache (paper Figure 3c).
//
// A retrieval site builds a Plan naming what it needs in logical
// coordinates — whole micro-delta groups (every micro-partition of one
// tree delta), single micro-deltas, raw point reads and prefix scans —
// with duplicates collapsed as they are added. The Executor then serves
// delta requests out of a bytes-bounded LRU of decoded deltas and issues
// the rest as kvstore.MultiGet/MultiScan batches, paying one simulated
// network round-trip per storage node instead of one per key. Hot
// root-path deltas, which every snapshot and micro-partition fetch of a
// timespan shares ("Efficient Snapshot Retrieval over Historical Graph
// Data", Khurana & Deshpande), are therefore decoded once and shared
// across queries and analytics workers.
package fetch

import (
	"fmt"
	"strconv"

	"hgs/internal/graph"
)

// Table names in the backing store: the paper's five Cassandra tables
// (Deltas, Versions, Timespans, Graph, Micropartitions), with eventlists
// split out of Deltas into their own table for clearer key spaces, plus
// two auxiliary tables for 1-hop replication. The fetch layer owns the
// key schema; internal/core re-exports these names.
const (
	TableDeltas    = "deltas"    // micro-deltas of snapshots/derived snapshots
	TableEvents    = "events"    // micro-eventlists
	TableVersions  = "versions"  // per-node version chains
	TableTimespans = "timespans" // per-timespan metadata
	TableGraph     = "graph"     // global graph metadata
	TableMicroPart = "micropart" // node→pid maps (locality partitioning)
	TableAux       = "aux"       // 1-hop replication: frontier micro-deltas
	TableAuxEvents = "auxevents" // 1-hop replication: frontier micro-eventlists
)

// Key helpers — composite delta keys {tsid, sid, did, pid} with placement
// key {tsid, sid} (paper §4.4 items 3–5). Fixed-width decimal components
// keep clustering order equal to numeric order.

// PlacementKey is the partition key of every row of one (timespan,
// horizontal partition) pair.
func PlacementKey(tsid, sid int) string { return fmt.Sprintf("t%05d/s%03d", tsid, sid) }

// DeltaCKey is the clustering key of one micro-delta.
func DeltaCKey(did, pid int) string { return fmt.Sprintf("d%05d/p%05d", did, pid) }

// DeltaPrefix covers every micro-delta of one tree delta.
func DeltaPrefix(did int) string { return fmt.Sprintf("d%05d/", did) }

// EventCKey is the clustering key of one micro-eventlist.
func EventCKey(el, pid int) string { return fmt.Sprintf("e%05d/p%05d", el, pid) }

// EventPrefix covers every micro-eventlist of one eventlist.
func EventPrefix(el int) string { return fmt.Sprintf("e%05d/", el) }

// NodeCKey is the clustering key of per-node rows (version chains,
// micro-partition maps).
func NodeCKey(id graph.NodeID) string { return fmt.Sprintf("n%020d", uint64(id)) }

// TimespanPKey is the partition key of a timespan's metadata row.
func TimespanPKey(tsid int) string { return fmt.Sprintf("t%05d", tsid) }

// ParsePID extracts the micro-partition id from a delta or eventlist
// clustering key ("d00003/p00017" → 17).
func ParsePID(ckey string) (int, error) {
	i := len(ckey) - 1
	for i >= 0 && ckey[i] != 'p' {
		i--
	}
	if i < 0 {
		return 0, fmt.Errorf("fetch: malformed micro-partition clustering key %q", ckey)
	}
	pid, err := strconv.Atoi(ckey[i+1:])
	if err != nil {
		return 0, fmt.Errorf("fetch: malformed micro-partition clustering key %q: %w", ckey, err)
	}
	return pid, nil
}
