// Package bench regenerates every table and figure of the paper's
// evaluation (§6) on the scaled synthetic datasets: one runner per
// experiment, each returning a Result with the same series/rows the
// paper plots. The runners are shared by cmd/hgs-bench and the root
// testing.B benchmarks.
//
// Scale note: the paper's datasets are 266M–1B events on an EC2 cluster;
// these runners default to ~10^5-event datasets sized for a laptop and a
// simulated storage cluster. Absolute numbers therefore differ from the
// paper by construction; EXPERIMENTS.md records the shape comparison.
package bench

import (
	"encoding/gob"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hgs/internal/backend/disklog"
	"hgs/internal/core"
	"hgs/internal/graph"
	"hgs/internal/kvstore"
	"hgs/internal/obs"
	"hgs/internal/temporal"
	"hgs/internal/workload"
)

// Scale controls dataset sizes. Multiply reproduces the paper at larger
// fractions of its original size (set HGS_SCALE to scale all datasets).
type Scale struct {
	// WikiNodes is Dataset 1's node count.
	WikiNodes int
	// WikiEdgesPerNode is Dataset 1's mean out-degree.
	WikiEdgesPerNode int
	// Augment2 and Augment3 are the extra churn events of Datasets 2, 3.
	Augment2 int
	Augment3 int
	// FriendsterCommunities × FriendsterSize nodes form Dataset 4.
	FriendsterCommunities int
	FriendsterSize        int
	// DBLP sizes for the Figure 17 workload.
	DBLPAuthors int
	DBLPPapers  int
	DBLPChurn   int
}

// DefaultScale returns the laptop-scale defaults, multiplied by the
// HGS_SCALE environment variable when set (e.g. HGS_SCALE=4).
func DefaultScale() Scale {
	mul := 1.0
	if s := os.Getenv("HGS_SCALE"); s != "" {
		if v, err := strconv.ParseFloat(s, 64); err == nil && v > 0 {
			mul = v
		}
	}
	scale := func(n int) int { return max(int(float64(n)*mul), 8) }
	return Scale{
		WikiNodes:             scale(20_000),
		WikiEdgesPerNode:      4,
		Augment2:              scale(40_000),
		Augment3:              scale(90_000),
		FriendsterCommunities: scale(60),
		FriendsterSize:        200,
		DBLPAuthors:           scale(1_500),
		DBLPPapers:            scale(3_000),
		DBLPChurn:             scale(4_000),
	}
}

// Point is one sample of a plotted series.
type Point struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// Series is one labeled line of a figure.
type Series struct {
	Name   string  `json:"name"`
	Points []Point `json:"points"`
}

// PassMetrics is the machine-readable measurement of one metered pass:
// the store-metrics delta, the cache delta and its ratios, and the
// latency quantiles of the operations the pass ran — what hgs-bench
// -json emits and scripts/perfdiff ratchets against.
type PassMetrics struct {
	Label            string  `json:"label"`
	KVReads          int64   `json:"kv_reads"`
	RoundTrips       int64   `json:"round_trips"`
	BytesRead        int64   `json:"bytes_read"`
	SimWaitSeconds   float64 `json:"simwait_seconds"`
	CacheHits        int64   `json:"cache_hits"`
	CacheMisses      int64   `json:"cache_misses"`
	NegativeHits     int64   `json:"negative_hits"`
	CacheHitRatio    float64 `json:"cache_hit_ratio"`
	NegativeHitRatio float64 `json:"negative_hit_ratio"`
	// Ops and the quantiles summarize the wall-time distribution of the
	// TGI operations observed during the pass (merged across op kinds).
	Ops        uint64  `json:"ops"`
	P50Seconds float64 `json:"p50_seconds"`
	P90Seconds float64 `json:"p90_seconds"`
	P99Seconds float64 `json:"p99_seconds"`
	// AllocsPerOp is the mean heap allocations per retrieval of the
	// pass (recorded by the parallel experiment; 0 elsewhere). Ratcheted
	// by scripts/perfdiff like the other deterministic counts.
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// EventlistHits is the pass's cache-hit delta served from cached
	// boundary micro-eventlists (subset of CacheHits).
	EventlistHits int64 `json:"eventlist_hits,omitempty"`
	// QPS, ShedRate and DeadlineMissRate are reported by the serve
	// experiment's closed-loop HTTP load driver: achieved successful
	// requests per second, and the fractions of issued requests shed
	// with 429 or expired with 504. Wall-clock-dependent (perfdiff
	// treats QPS as informational, like the latency quantiles).
	QPS              float64 `json:"qps,omitempty"`
	ShedRate         float64 `json:"shed_rate,omitempty"`
	DeadlineMissRate float64 `json:"deadline_miss_rate,omitempty"`
	// RowsMoved and RelocatedShare are reported by the rebalance
	// experiment's node-add phase: rows streamed to their new owners and
	// the fraction of partitions whose owner set changed. Deterministic
	// for a fixed scale, so perfdiff ratchets RowsMoved like the KV
	// counts. DegradedReads counts reads answered off the preferred
	// replica (informational: a function of failure timing, not cost).
	RowsMoved      int64   `json:"rows_moved,omitempty"`
	RelocatedShare float64 `json:"relocated_share,omitempty"`
	DegradedReads  int64   `json:"degraded_reads,omitempty"`
	// KVWrites, ReadRepairs and AntiEntropyBytes are reported by the
	// quorum experiment. ReadRepairs is ratcheted with a zero baseline:
	// a healthy serving path that starts repairing divergence is a
	// regression however small the count. AntiEntropyBytes depends on
	// sweep/serve interleaving, so perfdiff treats it as informational.
	KVWrites         int64 `json:"kv_writes,omitempty"`
	ReadRepairs      int64 `json:"read_repairs,omitempty"`
	AntiEntropyBytes int64 `json:"anti_entropy_bytes,omitempty"`
}

// Result is one regenerated table or figure.
type Result struct {
	ID     string   `json:"id"` // e.g. "fig11", "table1"
	Title  string   `json:"title"`
	XLabel string   `json:"x_label,omitempty"`
	YLabel string   `json:"y_label,omitempty"`
	Series []Series `json:"series,omitempty"`
	// Table carries row-oriented results (Table 1).
	TableHeader []string   `json:"table_header,omitempty"`
	TableRows   [][]string `json:"table_rows,omitempty"`
	// Passes carries the structured per-pass measurements behind the
	// human-readable Notes.
	Passes  []PassMetrics `json:"passes,omitempty"`
	Notes   []string      `json:"notes,omitempty"`
	Elapsed time.Duration `json:"elapsed_ns"`
}

// Print renders the result as aligned text.
func (r *Result) Print(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", r.ID, r.Title)
	if r.XLabel != "" || r.YLabel != "" {
		fmt.Fprintf(w, "   x: %s   y: %s\n", r.XLabel, r.YLabel)
	}
	for _, s := range r.Series {
		fmt.Fprintf(w, "  series %s\n", s.Name)
		for _, p := range s.Points {
			fmt.Fprintf(w, "    %14.4f  %14.6f\n", p.X, p.Y)
		}
	}
	if len(r.TableRows) > 0 {
		widths := make([]int, len(r.TableHeader))
		rows := append([][]string{r.TableHeader}, r.TableRows...)
		for _, row := range rows {
			for i, cell := range row {
				if i < len(widths) && len(cell) > widths[i] {
					widths[i] = len(cell)
				}
			}
		}
		for ri, row := range rows {
			var b strings.Builder
			for i, cell := range row {
				fmt.Fprintf(&b, "  %-*s", widths[i], cell)
			}
			fmt.Fprintln(w, b.String())
			if ri == 0 {
				fmt.Fprintln(w, "  "+strings.Repeat("-", sum(widths)+2*len(widths)-2))
			}
		}
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintf(w, "  elapsed: %s\n\n", r.Elapsed.Round(time.Millisecond))
}

// Report is the machine-readable run hgs-bench -json writes: the scale
// the datasets were synthesized at plus every experiment's Result,
// including the structured per-pass measurements. scripts/perfdiff
// compares two of these.
type Report struct {
	Scale   Scale     `json:"scale"`
	Results []*Result `json:"results"`
}

// WriteJSON writes the report, indented for diffability.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadJSON parses a report written by WriteJSON (scripts/perfdiff reads
// baseline and current runs with it).
func ReadJSON(r io.Reader) (*Report, error) {
	rep := &Report{}
	if err := json.NewDecoder(r).Decode(rep); err != nil {
		return nil, fmt.Errorf("bench: decode report: %w", err)
	}
	return rep, nil
}

func sum(xs []int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	return t
}

// --- storage backend selection -----------------------------------------

// dataDir, when set, runs every benchmark cluster on the durable disklog
// backend under this directory (one subdirectory per cluster) so memory
// and disk engines can be compared on identical workloads.
var dataDir atomic.Pointer[string]

// SetDataDir switches benchmark clusters to the disk backend rooted at
// dir (empty string returns to the in-memory engine). Call before
// running experiments; cmd/hgs-bench wires this to its -data flag.
func SetDataDir(dir string) { dataDir.Store(&dir) }

// newCluster builds a store cluster for the experiment identified by
// key, on disk when SetDataDir is active.
func newCluster(key string, machines, replication int) *kvstore.Cluster {
	cfg := kvstore.Config{Machines: machines, Replication: replication}
	if d := dataDir.Load(); d != nil && *d != "" {
		sub := filepath.Join(*d, strings.NewReplacer("/", "_", " ", "_").Replace(key))
		cfg.Backend = disklog.Factory(sub, disklog.Options{})
	}
	c, err := kvstore.Open(cfg)
	if err != nil {
		panic(fmt.Sprintf("bench: open cluster %s: %v", key, err))
	}
	return c
}

// --- dataset & index caching -------------------------------------------

// Building a TGI over 10^5 events takes seconds; experiments share
// datasets and indexes through this process-level cache. Entries carry a
// per-key Once so builds run outside the map lock — a build may itself
// resolve other cache keys (Dataset2 depends on Dataset1).
type cacheEntry struct {
	once sync.Once
	val  any
}

var cache = struct {
	sync.Mutex
	data map[string]*cacheEntry
}{data: make(map[string]*cacheEntry)}

func cached[T any](key string, build func() T) T {
	cache.Lock()
	e, ok := cache.data[key]
	if !ok {
		e = &cacheEntry{}
		cache.data[key] = e
	}
	cache.Unlock()
	e.once.Do(func() { e.val = build() })
	return e.val.(T)
}

// ResetCache drops all cached datasets and indexes (used by tests),
// closing the storage engines of cached clusters.
func ResetCache() {
	cache.Lock()
	defer cache.Unlock()
	for _, e := range cache.data {
		if bi, ok := e.val.(*builtIndex); ok && bi != nil {
			bi.Cluster.Close()
		}
	}
	cache.data = make(map[string]*cacheEntry)
}

// cachedEvents is cached() with an optional on-disk layer: when
// HGS_DATASET_DIR is set, synthesized datasets are gob-encoded there
// under the cache key (which embeds every size parameter), so repeated
// runs — and CI jobs restoring the directory from a build cache — pay
// the multi-second generation cost once. A corrupt or unreadable file
// falls back to regeneration and is rewritten.
func cachedEvents(key string, build func() []graph.Event) []graph.Event {
	return cached(key, func() []graph.Event {
		dir := os.Getenv("HGS_DATASET_DIR")
		if dir == "" {
			return build()
		}
		path := filepath.Join(dir, strings.NewReplacer("/", "_").Replace(key)+".gob")
		if f, err := os.Open(path); err == nil {
			var events []graph.Event
			err := gob.NewDecoder(f).Decode(&events)
			f.Close()
			if err == nil && len(events) > 0 {
				return events
			}
		}
		events := build()
		if err := os.MkdirAll(dir, 0o755); err == nil {
			tmp := path + ".tmp"
			if f, err := os.Create(tmp); err == nil {
				err := gob.NewEncoder(f).Encode(events)
				if cerr := f.Close(); err == nil && cerr == nil {
					os.Rename(tmp, path)
				} else {
					os.Remove(tmp)
				}
			}
		}
		return events
	})
}

// Dataset1 is the Wikipedia-like growth history.
func Dataset1(sc Scale) []graph.Event {
	return cachedEvents(fmt.Sprintf("ds1/%d/%d", sc.WikiNodes, sc.WikiEdgesPerNode), func() []graph.Event {
		return workload.Wikipedia(workload.WikiConfig{Nodes: sc.WikiNodes, EdgesPerNode: sc.WikiEdgesPerNode, Seed: 1})
	})
}

// Dataset2 augments Dataset 1 with churn (paper: +333M events).
func Dataset2(sc Scale) []graph.Event {
	return cachedEvents(fmt.Sprintf("ds2/%d/%d/%d", sc.WikiNodes, sc.WikiEdgesPerNode, sc.Augment2), func() []graph.Event {
		return workload.Augment(Dataset1(sc), workload.AugmentConfig{Extra: sc.Augment2, DeleteFraction: 0.25, Seed: 2})
	})
}

// Dataset3 augments Dataset 1 with more churn (paper: +733M events).
func Dataset3(sc Scale) []graph.Event {
	return cachedEvents(fmt.Sprintf("ds3/%d/%d/%d", sc.WikiNodes, sc.WikiEdgesPerNode, sc.Augment3), func() []graph.Event {
		return workload.Augment(Dataset1(sc), workload.AugmentConfig{Extra: sc.Augment3, DeleteFraction: 0.25, Seed: 3})
	})
}

// Dataset4 is the Friendster-like community graph.
func Dataset4(sc Scale) []graph.Event {
	return cachedEvents(fmt.Sprintf("ds4/%d/%d", sc.FriendsterCommunities, sc.FriendsterSize), func() []graph.Event {
		return workload.Friendster(workload.FriendsterConfig{
			Communities:   sc.FriendsterCommunities,
			CommunitySize: sc.FriendsterSize,
			IntraDegree:   8,
			InterFraction: 0.05,
			Seed:          4,
		})
	})
}

// DatasetDBLP is the bipartite author/paper history for Figure 17.
func DatasetDBLP(sc Scale) []graph.Event {
	return cachedEvents(fmt.Sprintf("dblp/%d/%d/%d", sc.DBLPAuthors, sc.DBLPPapers, sc.DBLPChurn), func() []graph.Event {
		return workload.DBLP(workload.DBLPConfig{
			Authors:         sc.DBLPAuthors,
			Papers:          sc.DBLPPapers,
			AuthorsPerPaper: 3,
			AttrChurn:       sc.DBLPChurn,
			Seed:            5,
		})
	})
}

// benchTGIConfig is the evaluation's default index parameterization,
// scaled to the dataset sizes (ps=500 as in the paper). The decoded
// delta cache is disabled: the paper's figures sweep one variable
// (c, m, r, ps, l) over repeated probes of the same index, and a warm
// cache would serve the later series from memory and flatten exactly
// the effect under study. The cache experiment (CacheBench) opts in
// explicitly.
func benchTGIConfig(events int) core.Config {
	cfg := core.DefaultConfig()
	cfg.TimespanEvents = max(events/2, 1)
	cfg.EventlistSize = max(cfg.TimespanEvents/8, 1)
	cfg.HorizontalPartitions = 4
	cfg.PartitionSize = 500
	cfg.Arity = 2
	cfg.FetchClients = 1
	cfg.CacheBytes = -1
	return cfg
}

// builtIndex is a constructed index plus its backing cluster and the
// metrics registry its per-op latency histograms report into.
type builtIndex struct {
	TGI     *core.TGI
	Cluster *kvstore.Cluster
	Events  []graph.Event
	Obs     *obs.Registry
}

// buildIndex constructs (and caches) a TGI over the events with the
// given store shape and config mutator. Latency is disabled during the
// build and enabled for measurements by the callers.
func buildIndex(key string, events []graph.Event, machines, replication int, mutate func(*core.Config)) *builtIndex {
	return cached("idx/"+key, func() *builtIndex {
		cluster := newCluster("idx/"+key, machines, replication)
		cfg := benchTGIConfig(len(events))
		if mutate != nil {
			mutate(&cfg)
		}
		reg := obs.NewRegistry()
		cfg.Obs = reg
		tgi, err := core.Build(cluster, cfg, events)
		if err != nil {
			panic(fmt.Sprintf("bench: build %s: %v", key, err))
		}
		return &builtIndex{TGI: tgi, Cluster: cluster, Events: events, Obs: reg}
	})
}

// withLatency runs f with the simulated latency model enabled. The query
// manager's metadata caches are warmed first (one un-timed probe) so
// single-fetch measurements are not dominated by cold metadata reads.
func (b *builtIndex) withLatency(f func()) {
	lo, _, err := b.TGI.TimeRange()
	if err == nil {
		b.TGI.GetSnapshot(lo, &core.FetchOptions{Clients: 4})
	}
	b.Cluster.SetLatency(kvstore.DefaultLatency())
	defer b.Cluster.SetLatency(kvstore.LatencyModel{})
	f()
}

// withLatencyMetered is withLatency plus measurement: it appends the
// store-metrics delta of the run (logical KV ops, machine round-trips,
// bytes, simulated service time) and the index's cache counters to the
// result's Notes, and the same numbers — plus the cache-delta ratios
// and the pass's latency quantiles from the per-op histograms — as a
// structured PassMetrics for -json and the perf ratchet.
func (b *builtIndex) withLatencyMetered(res *Result, label string, f func()) {
	before := b.Cluster.Metrics()
	cacheBefore := b.TGI.CacheStats()
	obsBefore := b.Obs.Snapshot()
	b.withLatency(f)
	after := b.Cluster.Metrics()
	cacheAfter := b.TGI.CacheStats()
	obsDiff := b.Obs.Snapshot().Diff(obsBefore)
	res.Notes = append(res.Notes, fmt.Sprintf(
		"%s: kv reads=%d round-trips=%d read=%dKB simulated-wait=%s; %s",
		label, after.Reads-before.Reads, after.RoundTrips-before.RoundTrips,
		(after.BytesRead-before.BytesRead)/1024,
		(after.SimWait-before.SimWait).Round(time.Millisecond),
		cacheAfter))

	pm := PassMetrics{
		Label:          label,
		KVReads:        after.Reads - before.Reads,
		RoundTrips:     after.RoundTrips - before.RoundTrips,
		BytesRead:      after.BytesRead - before.BytesRead,
		SimWaitSeconds: (after.SimWait - before.SimWait).Seconds(),
		CacheHits:      cacheAfter.Hits - cacheBefore.Hits,
		CacheMisses:    cacheAfter.Misses - cacheBefore.Misses,
		NegativeHits:   cacheAfter.NegativeHits - cacheBefore.NegativeHits,
	}
	if lookups := pm.CacheHits + pm.CacheMisses + pm.NegativeHits; lookups > 0 {
		pm.CacheHitRatio = float64(pm.CacheHits) / float64(lookups)
		pm.NegativeHitRatio = float64(pm.NegativeHits) / float64(lookups)
	}
	if h, ok := obsDiff.FamilyHist("hgs_op_duration_seconds"); ok {
		pm.Ops = h.Count
		pm.P50Seconds = h.Quantile(0.50)
		pm.P90Seconds = h.Quantile(0.90)
		pm.P99Seconds = h.Quantile(0.99)
	}
	res.Passes = append(res.Passes, pm)
}

// timeIt measures f's wall time in seconds.
func timeIt(f func()) float64 {
	start := time.Now()
	f()
	return time.Since(start).Seconds()
}

// probeTimes picks n timepoints spread over the history so snapshot
// queries retrieve increasing sizes (the growth datasets' x-axis).
func probeTimes(events []graph.Event, n int) []temporal.Time {
	out := make([]temporal.Time, n)
	for i := 1; i <= n; i++ {
		idx := len(events)*i/n - 1
		out[i-1] = events[idx].Time
	}
	return out
}
