// Package taf implements the Temporal Graph Analysis Framework (paper
// §5): temporal nodes (NodeT) and subgraphs (SubgraphT), sets thereof
// (SoN, SoTS) as RDDs on the sparklite engine, and the temporal operator
// library — Selection, Timeslice, Graph, NodeCompute,
// NodeComputeTemporal, NodeComputeDelta, Compare, Evolution and the
// temporal aggregations.
package taf

import (
	"hgs/internal/core"
	"hgs/internal/sparklite"
)

// Handler connects the analytics engine to a Temporal Graph Index (the
// paper's TGIHandler): it carries the index connection and the cluster
// compute context.
type Handler struct {
	tgi *core.TGI
	ctx *sparklite.Context
	// fetchClients is the parallel fetch factor used for TGI retrieval.
	fetchClients int
}

// NewHandler builds a handler over an index and a compute context.
func NewHandler(tgi *core.TGI, ctx *sparklite.Context) *Handler {
	return &Handler{tgi: tgi, ctx: ctx, fetchClients: tgi.Config().FetchClients}
}

// WithFetchClients overrides the parallel fetch factor.
func (h *Handler) WithFetchClients(c int) *Handler {
	out := *h
	out.fetchClients = c
	return &out
}

// TGI returns the underlying index.
func (h *Handler) TGI() *core.TGI { return h.tgi }

// Context returns the compute context.
func (h *Handler) Context() *sparklite.Context { return h.ctx }

func (h *Handler) fetchOpts() *core.FetchOptions {
	return &core.FetchOptions{Clients: h.fetchClients}
}
