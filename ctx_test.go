package hgs

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"
)

// goroutineSettled polls until the goroutine count returns to within
// slack of base (workers and timers need a beat to unwind).
func goroutineSettled(base, slack int) bool {
	for i := 0; i < 100; i++ {
		if runtime.NumGoroutine() <= base+slack {
			return true
		}
		time.Sleep(10 * time.Millisecond)
	}
	return false
}

// TestSnapshotCancellation cancels a retrieval mid-flight under a wide
// materialize pool and the storage latency model: the call must return
// the context error promptly and leak no goroutines.
func TestSnapshotCancellation(t *testing.T) {
	opts := smallOptions()
	opts.SimulateLatency = true
	opts.MaterializeWorkers = 8
	opts.CacheBytes = -1 // every round hits the (slow) store
	store, events := loadWiki(t, opts, 1200)
	defer store.Close()
	last := events[len(events)-1].Time

	base := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := store.SnapshotCtx(ctx, last)
		done <- err
	}()
	time.Sleep(5 * time.Millisecond) // let the fetch rounds start
	cancel()
	start := time.Now()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled snapshot returned %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled snapshot did not return")
	}
	if d := time.Since(start); d > 150*time.Millisecond {
		t.Errorf("cancellation took %v, want <~100ms", d)
	}
	if !goroutineSettled(base, 2) {
		t.Errorf("goroutines leaked: base %d, now %d", base, runtime.NumGoroutine())
	}
	// The store stays fully usable after a cancelled call, and the
	// aborted round must not have poisoned the cache with partial or
	// phantom-absence entries.
	g, err := store.Snapshot(last)
	if err != nil {
		t.Fatalf("snapshot after cancellation: %v", err)
	}
	want := mustGraph(events, last)
	if g.NumNodes() != want.NumNodes() || g.NumEdges() != want.NumEdges() {
		t.Fatalf("post-cancel snapshot mismatch: %d/%d nodes, %d/%d edges",
			g.NumNodes(), want.NumNodes(), g.NumEdges(), want.NumEdges())
	}
}

// TestDeadlineExceeded runs a cold read under an expired deadline.
func TestDeadlineExceeded(t *testing.T) {
	opts := smallOptions()
	opts.SimulateLatency = true
	opts.CacheBytes = -1
	store, events := loadWiki(t, opts, 800)
	defer store.Close()
	last := events[len(events)-1].Time

	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	time.Sleep(time.Millisecond)
	if _, err := store.SnapshotCtx(ctx, last); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired deadline returned %v, want context.DeadlineExceeded", err)
	}
	if _, err := store.NodeCtx(ctx, 1, last); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("NodeCtx under expired deadline returned %v", err)
	}
	if _, err := store.NodeHistoryCtx(ctx, 1, events[0].Time, last); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("NodeHistoryCtx under expired deadline returned %v", err)
	}
}

// TestCtxVariantsMatchPlain checks the ...Ctx methods with a background
// context return byte-identical results to the context-free methods.
func TestCtxVariantsMatchPlain(t *testing.T) {
	store, events := loadWiki(t, smallOptions(), 600)
	defer store.Close()
	lo := events[0].Time
	last := events[len(events)-1].Time
	mid := (lo + last) / 2
	ctx := context.Background()

	g1, err := store.Snapshot(mid)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := store.SnapshotCtx(ctx, mid)
	if err != nil {
		t.Fatal(err)
	}
	if g1.NumNodes() != g2.NumNodes() || g1.NumEdges() != g2.NumEdges() {
		t.Fatalf("SnapshotCtx mismatch: %d/%d nodes", g2.NumNodes(), g1.NumNodes())
	}
	h1, err := store.NodeHistory(1, lo, last)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := store.NodeHistoryCtx(ctx, 1, lo, last)
	if err != nil {
		t.Fatal(err)
	}
	if len(h1.Events) != len(h2.Events) {
		t.Fatalf("NodeHistoryCtx mismatch: %d/%d events", len(h2.Events), len(h1.Events))
	}
	c1, err := store.ChangeTimes(1, lo, last)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := store.ChangeTimesCtx(ctx, 1, lo, last)
	if err != nil {
		t.Fatal(err)
	}
	if len(c1) != len(c2) {
		t.Fatalf("ChangeTimesCtx mismatch: %d/%d times", len(c2), len(c1))
	}
}

// TestCloseDrainsInFlight hammers the store from query goroutines while
// Close runs: Close must wait for in-flight retrievals (no use-after-
// close of the cluster; the race detector guards the regression) and
// every call after it must fail with ErrClosed.
func TestCloseDrainsInFlight(t *testing.T) {
	store, events := loadWiki(t, smallOptions(), 800)
	last := events[len(events)-1].Time

	const workers = 8
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for {
				_, err := store.Snapshot(last)
				if err != nil {
					if !errors.Is(err, ErrClosed) {
						t.Errorf("query during close: %v", err)
					}
					return
				}
			}
		}()
	}
	close(start)
	time.Sleep(20 * time.Millisecond) // queries in flight
	if err := store.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	wg.Wait()

	if _, err := store.Snapshot(last); !errors.Is(err, ErrClosed) {
		t.Fatalf("Snapshot after Close returned %v, want ErrClosed", err)
	}
	if _, err := store.Stats(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Stats after Close returned %v, want ErrClosed", err)
	}
	if err := store.Append([]Event{{Time: last + 1, Kind: AddNode, Node: 9}}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Append after Close returned %v, want ErrClosed", err)
	}
	if err := store.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestErrNotLoaded checks the sentinel surfaces from queries against an
// empty store.
func TestErrNotLoaded(t *testing.T) {
	store, err := Open(smallOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	if _, err := store.Snapshot(10); !errors.Is(err, ErrNotLoaded) {
		t.Fatalf("empty-store snapshot returned %v, want ErrNotLoaded", err)
	}
	if _, _, err := store.TimeRange(); !errors.Is(err, ErrNotLoaded) {
		t.Fatalf("empty-store TimeRange returned %v, want ErrNotLoaded", err)
	}
}

// TestStreamSnapshotMatches checks the streaming surface emits exactly
// the snapshot's nodes.
func TestStreamSnapshotMatches(t *testing.T) {
	store, events := loadWiki(t, smallOptions(), 600)
	defer store.Close()
	last := events[len(events)-1].Time
	g, err := store.Snapshot(last)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	seen := make(map[NodeID]bool)
	err = store.StreamSnapshot(last, nil, func(sid int, states []*NodeState) error {
		mu.Lock()
		defer mu.Unlock()
		for _, ns := range states {
			if seen[ns.ID] {
				t.Errorf("node %d emitted twice", ns.ID)
			}
			seen[ns.ID] = true
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != g.NumNodes() {
		t.Fatalf("streamed %d nodes, snapshot has %d", len(seen), g.NumNodes())
	}
	for _, id := range g.NodeIDs() {
		if !seen[id] {
			t.Fatalf("node %d missing from stream", id)
		}
	}
}

// TestCancelledAppendNotStarted: an already-cancelled context stops an
// Append before any write happens.
func TestCancelledAppendNotStarted(t *testing.T) {
	store, events := loadWiki(t, smallOptions(), 400)
	defer store.Close()
	last := events[len(events)-1].Time
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := store.AppendCtx(ctx, []Event{{Time: last + 1, Kind: AddNode, Node: 123456}})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled append returned %v", err)
	}
	if ns, err := store.Node(123456, last); err != nil || ns != nil {
		t.Fatalf("cancelled append wrote: %v %v", ns, err)
	}
}
