// Quickstart: build a Historical Graph Store over a small evolving
// graph, then exercise the retrieval primitives the paper's Figure 1
// enumerates — snapshots, static nodes, node histories, neighborhoods,
// and neighborhood versions.
package main

import (
	"fmt"
	"log"

	"hgs"
)

func main() {
	// A tiny social network's history: people join, befriend, change
	// jobs, and one account is deleted.
	events := []hgs.Event{
		{Time: 1, Kind: hgs.AddNode, Node: 1},
		{Time: 2, Kind: hgs.SetNodeAttr, Node: 1, Key: "name", Value: "ada"},
		{Time: 3, Kind: hgs.AddNode, Node: 2},
		{Time: 4, Kind: hgs.SetNodeAttr, Node: 2, Key: "name", Value: "bob"},
		{Time: 5, Kind: hgs.AddEdge, Node: 1, Other: 2},
		{Time: 6, Kind: hgs.AddNode, Node: 3},
		{Time: 7, Kind: hgs.SetNodeAttr, Node: 3, Key: "name", Value: "cyd"},
		{Time: 8, Kind: hgs.AddEdge, Node: 2, Other: 3},
		{Time: 9, Kind: hgs.SetNodeAttr, Node: 1, Key: "job", Value: "analyst"},
		{Time: 10, Kind: hgs.AddEdge, Node: 1, Other: 3},
		{Time: 11, Kind: hgs.SetNodeAttr, Node: 1, Key: "job", Value: "manager"},
		{Time: 12, Kind: hgs.RemoveEdge, Node: 1, Other: 2},
		{Time: 13, Kind: hgs.RemoveNode, Node: 2},
		{Time: 14, Kind: hgs.AddNode, Node: 4},
		{Time: 15, Kind: hgs.AddEdge, Node: 4, Other: 3},
	}

	store, err := hgs.Open(hgs.Options{Machines: 2})
	if err != nil {
		log.Fatal(err)
	}
	if err := store.Load(events); err != nil {
		log.Fatal(err)
	}

	// Snapshot retrieval: the whole graph as of a past timepoint.
	for _, t := range []hgs.Time{5, 10, 15} {
		g, err := store.Snapshot(t)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("t=%-2d  %d nodes, %d edges, density %.3f\n",
			t, g.NumNodes(), g.NumEdges(), g.Density())
	}

	// Static node retrieval: one person's state in the past.
	ns, err := store.Node(1, 9)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nada at t=9: job=%s, %d friends\n", ns.Attrs["job"], ns.Degree())

	// Node history: every change to ada, with version intervals.
	h, err := store.NodeHistory(1, 0, 16)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nada's history (%d changes):\n", len(h.Events))
	for _, v := range h.Versions() {
		fmt.Printf("  %v  job=%-8s friends=%d\n", v.Valid, v.State.Attrs["job"], v.State.Degree())
	}

	// Neighborhood retrieval and its evolution.
	hood, err := store.KHop(3, 1, 15)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncyd's 1-hop at t=15: %d nodes, %d edges\n", hood.NumNodes(), hood.NumEdges())

	sh, err := store.KHopHistory(3, 1, 6, 16)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cyd's neighborhood changed at times %v\n", sh.ChangePoints())
}
