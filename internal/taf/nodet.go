package taf

import (
	"hgs/internal/core"
	"hgs/internal/graph"
	"hgs/internal/temporal"
)

// NodeT is a temporal node (paper Definition 6): the sequence of all and
// only the states of one node over a time range, stored as the initial
// state plus chronologically sorted events — exactly the physical layout
// §5.2 argues for (chronological access is the common pattern).
type NodeT struct {
	h *core.NodeHistory
}

// newNodeT wraps a fetched history.
func newNodeT(h *core.NodeHistory) *NodeT { return &NodeT{h: h} }

// ID returns the node id.
func (nt *NodeT) ID() graph.NodeID { return nt.h.ID }

// Span returns the time range covered by this temporal node.
func (nt *NodeT) Span() temporal.Interval { return nt.h.Interval }

// StartTime and EndTime expose the span bounds (paper: GetStartTime /
// GetEndTime).
func (nt *NodeT) StartTime() temporal.Time { return nt.h.Interval.Start }

// EndTime returns the exclusive end of the span.
func (nt *NodeT) EndTime() temporal.Time { return nt.h.Interval.End }

// StateAt returns the node state as of tt (paper: GetVersionAt), nil if
// the node does not exist then.
func (nt *NodeT) StateAt(tt temporal.Time) *graph.NodeState { return nt.h.StateAt(tt) }

// Versions returns the distinct states with validity intervals (paper:
// getVersions).
func (nt *NodeT) Versions() []graph.Version { return nt.h.Versions() }

// NeighborIDsAt returns neighbor ids at tt (paper: getNeighborIDsAt).
func (nt *NodeT) NeighborIDsAt(tt temporal.Time) []graph.NodeID {
	ns := nt.StateAt(tt)
	if ns == nil {
		return nil
	}
	return ns.Neighbors()
}

// ChangePoints returns the distinct times at which the node changed
// within its span (the default evaluation points of the temporal map
// operators).
func (nt *NodeT) ChangePoints() []temporal.Time {
	var out []temporal.Time
	for _, e := range nt.h.Events {
		if n := len(out); n == 0 || out[n-1] != e.Time {
			out = append(out, e.Time)
		}
	}
	return out
}

// Events returns the raw change stream.
func (nt *NodeT) Events() []graph.Event { return nt.h.Events }

// Timeslice narrows the temporal node to the overlap of its span and iv,
// re-deriving the initial state at the new start.
func (nt *NodeT) Timeslice(iv temporal.Interval) *NodeT {
	sub, ok := nt.h.Interval.Intersect(iv)
	if !ok {
		sub = temporal.Interval{Start: iv.Start, End: iv.Start}
	}
	h := &core.NodeHistory{ID: nt.h.ID, Interval: sub, Initial: nt.h.StateAt(sub.Start)}
	for _, e := range nt.h.Events {
		if e.Time > sub.Start && e.Time < sub.End {
			h.Events = append(h.Events, e)
		}
	}
	return &NodeT{h: h}
}

// Project returns a copy whose states only carry the given attribute
// keys (the paper's Filter operator trims the attribute dimension).
func (nt *NodeT) Project(keys ...string) *NodeT {
	keep := make(map[string]bool, len(keys))
	for _, k := range keys {
		keep[k] = true
	}
	trim := func(ns *graph.NodeState) *graph.NodeState {
		if ns == nil {
			return nil
		}
		c := ns.Clone()
		for k := range c.Attrs {
			if !keep[k] {
				delete(c.Attrs, k)
			}
		}
		return c
	}
	h := &core.NodeHistory{ID: nt.h.ID, Interval: nt.h.Interval, Initial: trim(nt.h.Initial)}
	for _, e := range nt.h.Events {
		if (e.Kind == graph.SetNodeAttr || e.Kind == graph.DelNodeAttr) && !keep[e.Key] {
			continue
		}
		h.Events = append(h.Events, e)
	}
	return &NodeT{h: h}
}

// Iterator walks the node's states in chronological order (paper:
// GetIterator / Iterator.GetNextVersion).
type Iterator struct {
	versions []graph.Version
	pos      int
}

// Iterator returns a version iterator over the node's span.
func (nt *NodeT) Iterator() *Iterator {
	return &Iterator{versions: nt.Versions()}
}

// Next returns the next version and false when exhausted.
func (it *Iterator) Next() (graph.Version, bool) {
	if it.pos >= len(it.versions) {
		return graph.Version{}, false
	}
	v := it.versions[it.pos]
	it.pos++
	return v, true
}
