// Package disklog is a durable storage engine: an append-only log of
// length-prefixed, CRC32-checksummed records split across numbered
// segment files, with an in-memory index (table → partition → sorted
// clustering keys → value location) rebuilt on open by replaying the
// log. Writes append a record and go to the OS immediately; fsync is
// batched — automatic every Options.SyncBytes of appended data and
// unconditional on Flush/Close (WAL group-commit semantics). A torn
// final record, the signature of a crash mid-write, is detected by the
// checksum and truncated away on open. Overwritten and deleted rows
// leave dead bytes behind; a triggered compaction rewrites the live
// rows into fresh segments and deletes the old files once the dead
// volume passes a threshold.
//
// The engine follows the same interface as the in-memory memtable, so a
// kvstore cluster can run each node on disk and a store can be closed
// and reopened by a new process without rebuilding the index.
package disklog

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"hgs/internal/backend"
)

// Record operations.
const (
	opPut  byte = 1
	opDel  byte = 2
	opDrop byte = 3
)

// recHeaderLen is the fixed record prelude: uint32 payload length +
// uint32 IEEE CRC32 of the payload, both little-endian.
const recHeaderLen = 8

// maxRecordBytes bounds a decoded payload length so that a corrupt
// length prefix cannot drive a giant allocation during replay.
const maxRecordBytes = 1 << 30

// ErrCorrupt reports a record that failed validation during replay in a
// position where recovery-by-truncation is not safe (a non-final
// segment: bytes after it are acknowledged data, not a torn tail).
var ErrCorrupt = errors.New("disklog: corrupt record in non-final segment")

// Options tune the engine. Zero values take the defaults.
type Options struct {
	// SegmentBytes rotates the active segment once it exceeds this size
	// (default 64 MiB).
	SegmentBytes int64
	// SyncBytes fsyncs the active segment after this many appended
	// bytes (default 4 MiB). Flush and Close always fsync.
	SyncBytes int64
	// CompactMinDead is the dead-byte floor below which triggered
	// compaction never runs (default DefaultCompactMinDead). Compaction
	// triggers after a write once dead bytes exceed both this floor and
	// the live bytes.
	CompactMinDead int64
	// DisableAutoCompact turns triggered compaction off; Compact can
	// still be called explicitly.
	DisableAutoCompact bool
}

func (o *Options) normalize() {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 64 << 20
	}
	if o.SyncBytes <= 0 {
		o.SyncBytes = 4 << 20
	}
	if o.CompactMinDead <= 0 {
		o.CompactMinDead = DefaultCompactMinDead
	}
}

// DefaultCompactMinDead is the CompactMinDead applied when the option
// is unset. Exported so engines composing a disklog (the tiered store
// drives cold compaction itself) share the same trigger floor.
const DefaultCompactMinDead = 1 << 20

// segment is one log file.
type segment struct {
	id   int
	path string
	f    *os.File
	size int64
}

// idxRow locates one live row's value inside a segment.
type idxRow struct {
	ckey string
	seg  *segment
	off  int64 // offset of the value bytes within seg
	vlen int
	rec  int64 // full record length (header + payload), for dead-byte accounting
}

// partition holds index rows sorted by clustering key.
type partition struct {
	rows []idxRow
}

func (p *partition) find(ckey string) (int, bool) {
	i := sort.Search(len(p.rows), func(i int) bool { return p.rows[i].ckey >= ckey })
	return i, i < len(p.rows) && p.rows[i].ckey == ckey
}

// Store is one node's disk engine. All methods are safe for concurrent
// use (a single mutex serializes them, matching the single-disk node
// the cluster models).
type Store struct {
	mu   sync.Mutex
	dir  string
	opts Options

	segs []*segment // ascending id; the last one is active for appends

	tables map[string]map[string]*partition
	stored int64 // logical live bytes: sum of len(ckey)+len(value)
	live   int64 // on-disk bytes of records that are still the latest version
	dead   int64 // on-disk bytes superseded by later records (compaction reclaims)

	unsynced int64 // bytes appended since the last fsync
	werr     error // sticky write error, surfaced by Flush/Close
	closed   bool
	// backingUp defers compaction (which closes and deletes segment
	// files) while Backup copies them outside the engine lock.
	backingUp bool

	enc []byte // scratch record-encode buffer
}

// Open opens (or creates) the engine rooted at dir, replaying the log
// to rebuild the index. A torn record at the tail of the final segment
// is truncated away; corruption anywhere else fails the open.
func Open(dir string, opts Options) (*Store, error) {
	opts.normalize()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("disklog: %w", err)
	}
	s := &Store{
		dir:    dir,
		opts:   opts,
		tables: make(map[string]map[string]*partition),
	}
	ids, err := listSegmentIDs(dir)
	if err != nil {
		return nil, err
	}
	for _, id := range ids {
		seg, err := s.openSegment(id)
		if err != nil {
			s.closeFiles()
			return nil, err
		}
		s.segs = append(s.segs, seg)
	}
	for i, seg := range s.segs {
		if err := s.replay(seg, i == len(s.segs)-1); err != nil {
			s.closeFiles()
			return nil, err
		}
	}
	if len(s.segs) == 0 {
		if err := s.addSegment(1); err != nil {
			s.closeFiles() // addSegment may have opened the file before failing
			return nil, err
		}
	}
	return s, nil
}

// Factory builds disklog engines, one directory per cluster node,
// under root.
func Factory(root string, opts Options) backend.Factory {
	return func(node int) (backend.Backend, error) {
		return Open(filepath.Join(root, backend.NodeDir(node)), opts)
	}
}

func segmentName(id int) string { return fmt.Sprintf("seg-%08d.log", id) }

func listSegmentIDs(dir string) ([]int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("disklog: %w", err)
	}
	var ids []int
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "seg-") || !strings.HasSuffix(name, ".log") {
			continue
		}
		var id int
		if _, err := fmt.Sscanf(name, "seg-%08d.log", &id); err != nil {
			continue
		}
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids, nil
}

func (s *Store) openSegment(id int) (*segment, error) {
	path := filepath.Join(s.dir, segmentName(id))
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("disklog: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("disklog: %w", err)
	}
	return &segment{id: id, path: path, f: f, size: st.Size()}, nil
}

// addSegment creates an empty segment and makes it the active one.
func (s *Store) addSegment(id int) error {
	seg, err := s.openSegment(id)
	if err != nil {
		return err
	}
	s.segs = append(s.segs, seg)
	return s.syncDir()
}

// syncDir fsyncs the engine directory so segment creation/removal
// survives a crash.
func (s *Store) syncDir() error {
	d, err := os.Open(s.dir)
	if err != nil {
		return fmt.Errorf("disklog: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("disklog: sync dir: %w", err)
	}
	return nil
}

func (s *Store) closeFiles() {
	for _, seg := range s.segs {
		seg.f.Close()
	}
}

// --- record encoding -------------------------------------------------
//
// record  := len:u32le crc:u32le payload
// payload := op:byte str(table) str(pkey) [str(ckey)] [str(value)]
// str     := uvarint(len) bytes
//
// ckey is present for put and delete; value only for put. The uvarint
// string framing reuses internal/codec's wire idiom.

func appendStr(buf []byte, v string) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], uint64(len(v)))
	buf = append(buf, tmp[:n]...)
	return append(buf, v...)
}

// encodeRecord builds a full record in s.enc and returns it along with
// the offset of the value bytes within the record (put only).
func (s *Store) encodeRecord(op byte, table, pkey, ckey string, value []byte) (rec []byte, valOff int) {
	payload := s.enc[:0]
	payload = append(payload, op)
	payload = appendStr(payload, table)
	payload = appendStr(payload, pkey)
	if op != opDrop {
		payload = appendStr(payload, ckey)
	}
	if op == opPut {
		var tmp [binary.MaxVarintLen64]byte
		n := binary.PutUvarint(tmp[:], uint64(len(value)))
		payload = append(payload, tmp[:n]...)
		valOff = recHeaderLen + len(payload)
		payload = append(payload, value...)
	}
	// Prepend the header by building into a fresh prefix of the scratch
	// buffer; payload already lives there, so shift via copy into rec.
	rec = make([]byte, recHeaderLen+len(payload))
	binary.LittleEndian.PutUint32(rec[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(rec[4:8], crc32.ChecksumIEEE(payload))
	copy(rec[recHeaderLen:], payload)
	s.enc = payload // keep the grown buffer for reuse
	return rec, valOff
}

// appendRecord writes rec to the active segment (rotating first if it
// is full) and returns the segment and the record's start offset.
// Write failures poison the engine; they surface on Flush/Close.
func (s *Store) appendRecord(rec []byte) (*segment, int64) {
	active := s.segs[len(s.segs)-1]
	if active.size > 0 && active.size+int64(len(rec)) > s.opts.SegmentBytes {
		if err := s.rotateLocked(); err != nil {
			s.werr = errors.Join(s.werr, err)
			return active, active.size
		}
		active = s.segs[len(s.segs)-1]
	}
	off := active.size
	if _, err := active.f.WriteAt(rec, off); err != nil {
		s.werr = errors.Join(s.werr, fmt.Errorf("disklog: append: %w", err))
		return active, off
	}
	active.size += int64(len(rec))
	s.unsynced += int64(len(rec))
	if s.unsynced >= s.opts.SyncBytes {
		if err := active.f.Sync(); err != nil {
			s.werr = errors.Join(s.werr, fmt.Errorf("disklog: sync: %w", err))
		}
		s.unsynced = 0
	}
	return active, off
}

// rotateLocked fsyncs the active segment and starts the next one.
func (s *Store) rotateLocked() error {
	active := s.segs[len(s.segs)-1]
	if err := active.f.Sync(); err != nil {
		return fmt.Errorf("disklog: sync before rotate: %w", err)
	}
	s.unsynced = 0
	return s.addSegment(active.id + 1)
}

// --- replay ----------------------------------------------------------

type payloadReader struct {
	data []byte
	pos  int
}

func (r *payloadReader) str() (string, error) {
	v, n := binary.Uvarint(r.data[r.pos:])
	if n <= 0 {
		return "", fmt.Errorf("bad string length")
	}
	r.pos += n
	if uint64(len(r.data)-r.pos) < v {
		return "", fmt.Errorf("string exceeds payload")
	}
	out := string(r.data[r.pos : r.pos+int(v)])
	r.pos += int(v)
	return out, nil
}

// replay scans one segment and applies its records to the index. final
// marks the last segment: trailing corruption there is a torn write
// from a crash and is truncated away; anywhere else it is fatal.
func (s *Store) replay(seg *segment, final bool) error {
	var (
		off    int64
		header [recHeaderLen]byte
	)
	corruptAt := int64(-1)
	for off < seg.size {
		if seg.size-off < recHeaderLen {
			corruptAt = off
			break
		}
		if _, err := seg.f.ReadAt(header[:], off); err != nil {
			return fmt.Errorf("disklog: replay %s: %w", seg.path, err)
		}
		plen := int64(binary.LittleEndian.Uint32(header[0:4]))
		wantCRC := binary.LittleEndian.Uint32(header[4:8])
		if plen > maxRecordBytes || off+recHeaderLen+plen > seg.size {
			corruptAt = off
			break
		}
		payload := make([]byte, plen)
		if _, err := seg.f.ReadAt(payload, off+recHeaderLen); err != nil {
			return fmt.Errorf("disklog: replay %s: %w", seg.path, err)
		}
		if crc32.ChecksumIEEE(payload) != wantCRC {
			corruptAt = off
			break
		}
		if err := s.applyPayload(seg, off, payload); err != nil {
			// A CRC-valid record that fails to decode is not a torn
			// write (those cannot pass the checksum) — it is version
			// skew or a writer bug, and truncating would silently
			// delete acknowledged data. Fail the open instead.
			return fmt.Errorf("disklog: undecodable record in %s at offset %d: %w", seg.path, off, err)
		}
		off += recHeaderLen + plen
	}
	if corruptAt < 0 {
		return nil
	}
	if !final {
		return fmt.Errorf("%w: %s at offset %d", ErrCorrupt, seg.path, corruptAt)
	}
	if err := seg.f.Truncate(corruptAt); err != nil {
		return fmt.Errorf("disklog: truncate torn tail of %s: %w", seg.path, err)
	}
	if err := seg.f.Sync(); err != nil {
		return fmt.Errorf("disklog: %w", err)
	}
	seg.size = corruptAt
	return nil
}

// applyPayload decodes one record payload and applies it to the index.
func (s *Store) applyPayload(seg *segment, recOff int64, payload []byte) error {
	if len(payload) < 1 {
		return fmt.Errorf("empty payload")
	}
	r := &payloadReader{data: payload, pos: 1}
	op := payload[0]
	table, err := r.str()
	if err != nil {
		return err
	}
	pkey, err := r.str()
	if err != nil {
		return err
	}
	recLen := int64(recHeaderLen + len(payload))
	switch op {
	case opPut:
		ckey, err := r.str()
		if err != nil {
			return err
		}
		vlen, n := binary.Uvarint(r.data[r.pos:])
		if n <= 0 || uint64(len(r.data)-r.pos-n) < vlen {
			return fmt.Errorf("bad value length")
		}
		valOff := recOff + recHeaderLen + int64(r.pos+n)
		s.applyPut(table, pkey, idxRow{
			ckey: ckey, seg: seg, off: valOff, vlen: int(vlen), rec: recLen,
		})
	case opDel:
		ckey, err := r.str()
		if err != nil {
			return err
		}
		s.applyDelete(table, pkey, ckey)
		s.dead += recLen // the tombstone itself is reclaimable
	case opDrop:
		s.applyDrop(table, pkey)
		s.dead += recLen
	default:
		return fmt.Errorf("unknown op 0x%02x", op)
	}
	return nil
}

func (s *Store) partitionFor(table, pkey string, create bool) *partition {
	t, ok := s.tables[table]
	if !ok {
		if !create {
			return nil
		}
		t = make(map[string]*partition)
		s.tables[table] = t
	}
	p, ok := t[pkey]
	if !ok {
		if !create {
			return nil
		}
		p = &partition{}
		t[pkey] = p
	}
	return p
}

func (s *Store) applyPut(table, pkey string, row idxRow) {
	p := s.partitionFor(table, pkey, true)
	i, ok := p.find(row.ckey)
	if ok {
		old := p.rows[i]
		s.stored += int64(row.vlen - old.vlen)
		s.live += row.rec - old.rec
		s.dead += old.rec
		p.rows[i] = row
		return
	}
	p.rows = append(p.rows, idxRow{})
	copy(p.rows[i+1:], p.rows[i:])
	p.rows[i] = row
	s.stored += int64(row.vlen + len(row.ckey))
	s.live += row.rec
}

func (s *Store) applyDelete(table, pkey, ckey string) bool {
	p := s.partitionFor(table, pkey, false)
	if p == nil {
		return false
	}
	i, ok := p.find(ckey)
	if !ok {
		return false
	}
	s.stored -= int64(p.rows[i].vlen + len(ckey))
	s.live -= p.rows[i].rec
	s.dead += p.rows[i].rec
	p.rows = append(p.rows[:i], p.rows[i+1:]...)
	return true
}

func (s *Store) applyDrop(table, pkey string) bool {
	t, ok := s.tables[table]
	if !ok {
		return false
	}
	p, ok := t[pkey]
	if !ok {
		return false
	}
	for _, r := range p.rows {
		s.stored -= int64(r.vlen + len(r.ckey))
		s.live -= r.rec
		s.dead += r.rec
	}
	delete(t, pkey)
	return true
}

// --- Backend interface ----------------------------------------------

// mustOpenLocked panics on use after Close: the files are gone, so
// continuing would silently serve empty results — indistinguishable
// from data loss.
func (s *Store) mustOpenLocked() {
	if s.closed {
		panic("disklog: use after Close")
	}
}

// Put appends a put record and updates the index. Triggered compaction
// may run before returning.
func (s *Store) Put(table, pkey, ckey string, value []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mustOpenLocked()
	rec, valOff := s.encodeRecord(opPut, table, pkey, ckey, value)
	seg, off := s.appendRecord(rec)
	s.applyPut(table, pkey, idxRow{
		ckey: ckey, seg: seg, off: off + int64(valOff), vlen: len(value), rec: int64(len(rec)),
	})
	s.maybeCompactLocked()
}

// Get reads the row's value back from its segment.
func (s *Store) Get(table, pkey, ckey string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mustOpenLocked()
	p := s.partitionFor(table, pkey, false)
	if p == nil {
		return nil, false
	}
	i, ok := p.find(ckey)
	if !ok {
		return nil, false
	}
	v, err := s.readValue(p.rows[i])
	if err != nil {
		s.werr = errors.Join(s.werr, err)
		return nil, false
	}
	return v, true
}

func (s *Store) readValue(row idxRow) ([]byte, error) {
	out := make([]byte, row.vlen)
	if row.vlen == 0 {
		return out, nil
	}
	if _, err := row.seg.f.ReadAt(out, row.off); err != nil {
		return nil, fmt.Errorf("disklog: read %s@%d: %w", row.seg.path, row.off, err)
	}
	return out, nil
}

// Stat reports whether the row exists and its value length from the
// in-memory index alone — no disk read. Tiered engines use it for byte
// accounting of rows shadowed by a hotter tier.
func (s *Store) Stat(table, pkey, ckey string) (vlen int, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mustOpenLocked()
	p := s.partitionFor(table, pkey, false)
	if p == nil {
		return 0, false
	}
	i, ok := p.find(ckey)
	if !ok {
		return 0, false
	}
	return p.rows[i].vlen, true
}

// MultiGet is the batch-read fast path: the whole batch resolves under
// one lock acquisition. result[i] is nil exactly when reqs[i] is absent
// (or its segment read failed; the error surfaces at the next Flush).
func (s *Store) MultiGet(reqs []backend.KeyRead) [][]byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mustOpenLocked()
	out := make([][]byte, len(reqs))
	for i, r := range reqs {
		p := s.partitionFor(r.Table, r.PKey, false)
		if p == nil {
			continue
		}
		j, ok := p.find(r.CKey)
		if !ok {
			continue
		}
		v, err := s.readValue(p.rows[j])
		if err != nil {
			s.werr = errors.Join(s.werr, err)
			continue
		}
		out[i] = v
	}
	return out
}

// ScanPrefix returns the partition's rows with clustering keys starting
// with prefix, in clustering order.
func (s *Store) ScanPrefix(table, pkey, prefix string) []backend.Row {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mustOpenLocked()
	p := s.partitionFor(table, pkey, false)
	if p == nil {
		return nil
	}
	var out []backend.Row
	i := sort.Search(len(p.rows), func(i int) bool { return p.rows[i].ckey >= prefix })
	for ; i < len(p.rows) && strings.HasPrefix(p.rows[i].ckey, prefix); i++ {
		v, err := s.readValue(p.rows[i])
		if err != nil {
			s.werr = errors.Join(s.werr, err)
			continue
		}
		out = append(out, backend.Row{CKey: p.rows[i].ckey, Value: v})
	}
	return out
}

// IterNewest streams the live rows in reverse append order — the row
// whose latest record was written last comes first — calling fn for
// each until fn returns false. This is the warm-up path of engines
// layered over a disklog cold tier: the newest rows are exactly the
// recent timespans a restart should repopulate into memory, and the
// reverse walk touches only as many segments (back to front) as the
// caller's budget consumes. Tombstones need no special handling — the
// index holds live rows only, so deleted rows never surface.
//
// The engine lock is released between calls: fn must not re-enter the
// store, and rows are re-validated against the index per visit, so
// concurrent deletes (skipped) and compactions (served from the row's
// new location) are safe.
func (s *Store) IterNewest(fn func(table, pkey, ckey string, value []byte) bool) error {
	type ref struct {
		table, pkey, ckey string
		off               int64
	}
	// One pass over the in-memory index buckets the refs per segment —
	// O(live rows) snapshot work per call (the strings share the index's
	// backing, so the transient cost is slice/struct headers, a fraction
	// of the resident index itself). The per-segment offset sort happens
	// lazily as the back-to-front walk reaches each segment, so an
	// early-stopping caller never pays for ordering the old segments it
	// will not visit — nor their disk reads.
	s.mu.Lock()
	s.mustOpenLocked()
	buckets := make(map[int][]ref)
	for table, parts := range s.tables {
		for pkey, p := range parts {
			for _, row := range p.rows {
				buckets[row.seg.id] = append(buckets[row.seg.id], ref{table: table, pkey: pkey, ckey: row.ckey, off: row.off})
			}
		}
	}
	s.mu.Unlock()
	segIDs := make([]int, 0, len(buckets))
	for id := range buckets {
		segIDs = append(segIDs, id)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(segIDs)))
	for _, id := range segIDs {
		refs := buckets[id]
		sort.Slice(refs, func(i, j int) bool { return refs[i].off > refs[j].off })
		for _, r := range refs {
			s.mu.Lock()
			if s.closed {
				s.mu.Unlock()
				return errors.New("disklog: iter on closed store")
			}
			p := s.partitionFor(r.table, r.pkey, false)
			if p == nil {
				s.mu.Unlock()
				continue
			}
			i, ok := p.find(r.ckey)
			if !ok {
				s.mu.Unlock()
				continue
			}
			v, err := s.readValue(p.rows[i])
			s.mu.Unlock()
			if err != nil {
				return err
			}
			if !fn(r.table, r.pkey, r.ckey, v) {
				return nil
			}
		}
	}
	return nil
}

// Delete appends a tombstone record and removes the row from the index.
func (s *Store) Delete(table, pkey, ckey string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mustOpenLocked()
	p := s.partitionFor(table, pkey, false)
	if p == nil {
		return false
	}
	if _, ok := p.find(ckey); !ok {
		return false
	}
	rec, _ := s.encodeRecord(opDel, table, pkey, ckey, nil)
	s.appendRecord(rec)
	s.applyDelete(table, pkey, ckey)
	s.dead += int64(len(rec))
	s.maybeCompactLocked()
	return true
}

// DropPartition appends a drop record and removes the partition.
func (s *Store) DropPartition(table, pkey string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mustOpenLocked()
	if t, ok := s.tables[table]; !ok {
		return
	} else if _, ok := t[pkey]; !ok {
		return
	}
	rec, _ := s.encodeRecord(opDrop, table, pkey, "", nil)
	s.appendRecord(rec)
	s.applyDrop(table, pkey)
	s.dead += int64(len(rec))
	s.maybeCompactLocked()
}

// HasPartition reports whether the table holds the partition object
// (an emptied partition still counts until dropped) — an index-only
// lookup, no disk access.
func (s *Store) HasPartition(table, pkey string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mustOpenLocked()
	_, ok := s.tables[table][pkey]
	return ok
}

// PartitionKeys returns the sorted partition keys of a table.
func (s *Store) PartitionKeys(table string) []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mustOpenLocked()
	t, ok := s.tables[table]
	if !ok {
		return nil
	}
	out := make([]string, 0, len(t))
	for pk := range t {
		out = append(out, pk)
	}
	sort.Strings(out)
	return out
}

// Tables returns the sorted table names holding at least one partition
// (backend.TableLister).
func (s *Store) Tables() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mustOpenLocked()
	out := make([]string, 0, len(s.tables))
	for t := range s.tables {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// StoredBytes returns the logical live bytes held by this engine.
func (s *Store) StoredBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stored
}

// DeadBytes returns the on-disk bytes reclaimable by compaction.
func (s *Store) DeadBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dead
}

// Segments returns the number of log files (inspection/testing).
func (s *Store) Segments() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.segs)
}

// Flush fsyncs the active segment and reports any sticky write error.
func (s *Store) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.flushLocked()
}

func (s *Store) flushLocked() error {
	if s.closed {
		return errors.Join(s.werr, errors.New("disklog: store closed"))
	}
	if s.unsynced > 0 {
		if err := s.segs[len(s.segs)-1].f.Sync(); err != nil {
			s.werr = errors.Join(s.werr, fmt.Errorf("disklog: sync: %w", err))
		}
		s.unsynced = 0
	}
	return s.werr
}

// Close flushes and closes every segment file.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return s.werr
	}
	err := s.flushLocked()
	s.closeFiles()
	s.closed = true
	return err
}

// --- compaction ------------------------------------------------------

// maybeCompactLocked runs a compaction when the reclaimable volume
// exceeds both the configured floor and the live volume (i.e. the log
// is more than half garbage).
func (s *Store) maybeCompactLocked() {
	if s.opts.DisableAutoCompact || s.werr != nil || s.backingUp {
		return
	}
	if s.dead < s.opts.CompactMinDead || s.dead <= s.live {
		return
	}
	if err := s.compactLocked(); err != nil {
		s.werr = errors.Join(s.werr, err)
	}
}

// Compact rewrites all live rows into fresh segments and deletes the
// old files. Crash-safe: the compacted segments carry higher ids than
// the ones they replace, so a crash between writing them and removing
// the old files replays both — old records first, then the compacted
// live rows — converging on the same state.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("disklog: store closed")
	}
	return s.compactLocked()
}

func (s *Store) compactLocked() error {
	if s.backingUp {
		return errors.New("disklog: compaction deferred during backup")
	}
	old := s.segs
	nextID := old[len(old)-1].id + 1

	// abort removes any partially-written compacted segments and
	// restores the pre-compaction state. Leaving a partial higher-id
	// segment behind would be corruption: it replays after the old
	// segments and its stale rows would shadow post-failure writes.
	abort := func() {
		s.removeSegments(s.segs)
		s.segs = old
	}

	// Write every live row, in deterministic order, into fresh segments.
	s.segs = nil
	if err := s.addSegment(nextID); err != nil {
		abort()
		return err
	}
	var (
		newLive   int64
		newStored int64
		relocated = make(map[string]map[string]*partition)
	)
	tables := make([]string, 0, len(s.tables))
	for tbl := range s.tables {
		tables = append(tables, tbl)
	}
	sort.Strings(tables)
	for _, tbl := range tables {
		pkeys := make([]string, 0, len(s.tables[tbl]))
		for pk := range s.tables[tbl] {
			pkeys = append(pkeys, pk)
		}
		sort.Strings(pkeys)
		nt := make(map[string]*partition, len(pkeys))
		relocated[tbl] = nt
		for _, pk := range pkeys {
			oldPart := s.tables[tbl][pk]
			np := &partition{rows: make([]idxRow, 0, len(oldPart.rows))}
			nt[pk] = np
			for _, row := range oldPart.rows {
				v, err := s.readValue(row)
				if err != nil {
					abort()
					return fmt.Errorf("disklog: compact: %w", err)
				}
				rec, valOff := s.encodeRecord(opPut, tbl, pk, row.ckey, v)
				seg, off := s.appendRecord(rec)
				if s.werr != nil {
					abort()
					return s.werr
				}
				np.rows = append(np.rows, idxRow{
					ckey: row.ckey, seg: seg, off: off + int64(valOff),
					vlen: row.vlen, rec: int64(len(rec)),
				})
				newLive += int64(len(rec))
				newStored += int64(row.vlen + len(row.ckey))
			}
		}
	}
	if err := s.segs[len(s.segs)-1].f.Sync(); err != nil {
		abort()
		return fmt.Errorf("disklog: compact sync: %w", err)
	}
	s.unsynced = 0

	// Point of no return: adopt the new index, then delete old files.
	s.tables = relocated
	s.stored = newStored
	s.live = newLive
	s.dead = 0
	s.removeSegments(old)
	return s.syncDir()
}

// MergeSmall merges the maximal run of small segments at the tail of
// the log — the "newest level", where rotation and trickle flushes
// leave many small files — into fresh segments, dropping superseded
// put records along the way. Tombstone records are carried over
// verbatim (a delete in the tail may kill a row recorded in an older,
// untouched segment; dropping it would resurrect that row on replay),
// so the merge never has to read the large old segments: exactly the
// leveled behavior that keeps steady-state compaction cost proportional
// to the new data, not the whole log. Segments of at most maxBytes
// (SegmentBytes/4 when <= 0) qualify; fewer than minSegs (floor 2)
// qualifying segments is a no-op. Returns the number of segments
// merged. Crash-safe like Compact: merged records land in higher-id
// segments, so a crash between writing them and removing the originals
// replays both and converges.
func (s *Store) MergeSmall(maxBytes int64, minSegs int) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, errors.New("disklog: store closed")
	}
	if s.werr != nil || s.backingUp {
		return 0, nil
	}
	if maxBytes <= 0 {
		maxBytes = s.opts.SegmentBytes / 4
	}
	if minSegs < 2 {
		minSegs = 2
	}
	from := len(s.segs)
	for from > 0 && s.segs[from-1].size <= maxBytes {
		from--
	}
	n := len(s.segs) - from
	if n < minSegs {
		return 0, nil
	}
	if err := s.mergeTailLocked(from); err != nil {
		return 0, err
	}
	return n, nil
}

// mergeTailLocked rewrites segments [from:] into fresh higher-id
// segments: live put records and all tombstones are copied verbatim
// (in order), dead puts are dropped. The index is repointed only after
// the new segments are synced.
func (s *Store) mergeTailLocked(from int) error {
	old := append([]*segment(nil), s.segs[from:]...)
	keep := s.segs[:from:from]
	nextID := s.segs[len(s.segs)-1].id + 1

	type repoint struct {
		table, pkey, ckey string
		row               idxRow
	}
	var (
		repoints  []repoint
		deadFreed int64
	)
	abort := func() {
		s.removeSegments(s.segs[from:])
		s.segs = append(keep, old...)
	}
	s.segs = keep
	if err := s.addSegment(nextID); err != nil {
		abort()
		return err
	}
	var header [recHeaderLen]byte
	for _, seg := range old {
		for off := int64(0); off < seg.size; {
			if _, err := seg.f.ReadAt(header[:], off); err != nil {
				abort()
				return fmt.Errorf("disklog: merge read %s: %w", seg.path, err)
			}
			plen := int64(binary.LittleEndian.Uint32(header[0:4]))
			if plen > maxRecordBytes || off+recHeaderLen+plen > seg.size {
				abort()
				return fmt.Errorf("%w: %s at offset %d", ErrCorrupt, seg.path, off)
			}
			raw := make([]byte, recHeaderLen+plen)
			if _, err := seg.f.ReadAt(raw, off); err != nil {
				abort()
				return fmt.Errorf("disklog: merge read %s: %w", seg.path, err)
			}
			op, table, pkey, ckey, valOff, err := decodeRecordKeys(raw[recHeaderLen:])
			if err != nil {
				abort()
				return fmt.Errorf("disklog: merge: undecodable record in %s at offset %d: %w", seg.path, off, err)
			}
			live := false
			if op == opPut {
				if p := s.partitionFor(table, pkey, false); p != nil {
					if i, ok := p.find(ckey); ok {
						r := p.rows[i]
						live = r.seg == seg && r.off == off+int64(valOff)
					}
				}
			}
			switch {
			case op != opPut: // tombstone: preserve its effect on older segments
				s.appendRecord(raw)
				if s.werr != nil {
					abort()
					return s.werr
				}
			case live:
				newSeg, newOff := s.appendRecord(raw)
				if s.werr != nil {
					abort()
					return s.werr
				}
				repoints = append(repoints, repoint{table: table, pkey: pkey, ckey: ckey, row: idxRow{
					ckey: ckey, seg: newSeg, off: newOff + int64(valOff),
					vlen: len(raw) - valOff, rec: int64(len(raw)),
				}})
			default: // superseded put: reclaimed
				deadFreed += int64(len(raw))
			}
			off += recHeaderLen + plen
		}
	}
	if err := s.segs[len(s.segs)-1].f.Sync(); err != nil {
		abort()
		return fmt.Errorf("disklog: merge sync: %w", err)
	}
	s.unsynced = 0

	// Point of no return: adopt the relocations, then delete old files.
	for _, rp := range repoints {
		p := s.partitionFor(rp.table, rp.pkey, false)
		if p == nil {
			continue
		}
		if i, ok := p.find(rp.ckey); ok {
			p.rows[i] = rp.row
		}
	}
	s.dead -= deadFreed
	s.removeSegments(old)
	return s.syncDir()
}

// decodeRecordKeys decodes a record payload's op and keys without
// copying the value; valOff is the value's offset within the full
// record, header included (puts only).
func decodeRecordKeys(payload []byte) (op byte, table, pkey, ckey string, valOff int, err error) {
	if len(payload) < 1 {
		return 0, "", "", "", 0, fmt.Errorf("empty payload")
	}
	r := &payloadReader{data: payload, pos: 1}
	op = payload[0]
	if table, err = r.str(); err != nil {
		return
	}
	if pkey, err = r.str(); err != nil {
		return
	}
	switch op {
	case opPut:
		if ckey, err = r.str(); err != nil {
			return
		}
		vlen, n := binary.Uvarint(r.data[r.pos:])
		if n <= 0 || uint64(len(r.data)-r.pos-n) < vlen {
			err = fmt.Errorf("bad value length")
			return
		}
		valOff = recHeaderLen + r.pos + n
	case opDel:
		if ckey, err = r.str(); err != nil {
			return
		}
	case opDrop:
	default:
		err = fmt.Errorf("unknown op 0x%02x", op)
	}
	return
}

// Backup writes a consistent copy of the engine's segment files into
// dir (created if needed, must be empty of segments). The segment set
// and sizes are snapshotted under the engine lock after an fsync (so
// the copy carries every acknowledged write), but the bulk copy runs
// outside it: reads and writes proceed while the files are copied —
// appends past the snapshotted sizes are simply not part of the backup,
// and compaction (which would delete the files mid-copy) is deferred
// until the backup finishes. The copy opens as a normal disklog
// directory.
func (s *Store) Backup(dir string) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("disklog: backup of closed store")
	}
	if s.backingUp {
		s.mu.Unlock()
		return errors.New("disklog: backup already in progress")
	}
	if err := s.flushLocked(); err != nil {
		s.mu.Unlock()
		return fmt.Errorf("disklog: backup: %w", err)
	}
	type segSnap struct {
		f    *os.File
		size int64
		name string
	}
	snap := make([]segSnap, len(s.segs))
	for i, seg := range s.segs {
		snap[i] = segSnap{f: seg.f, size: seg.size, name: segmentName(seg.id)}
	}
	s.backingUp = true
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		s.backingUp = false
		s.mu.Unlock()
	}()

	// Validate the whole target before writing anything, so a failure
	// cannot leave a half-written backup directory behind.
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("disklog: backup: %w", err)
	}
	if ids, err := listSegmentIDs(dir); err != nil {
		return err
	} else if len(ids) > 0 {
		return fmt.Errorf("disklog: backup target %s already holds segments", dir)
	}
	for _, seg := range snap {
		if err := backend.CopyFile(seg.f, seg.size, filepath.Join(dir, seg.name)); err != nil {
			return err
		}
	}
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("disklog: backup: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("disklog: backup sync %s: %w", dir, err)
	}
	return nil
}

// removeSegments closes and deletes log files.
func (s *Store) removeSegments(segs []*segment) {
	for _, seg := range segs {
		seg.f.Close()
		os.Remove(seg.path)
	}
}

// String describes the engine state (fmt.Stringer, for inspection).
func (s *Store) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return fmt.Sprintf("disklog(%s: %d segments, %dB live, %dB dead)",
		s.dir, len(s.segs), s.live, s.dead)
}

var _ backend.Backend = (*Store)(nil)
var _ io.Closer = (*Store)(nil)
