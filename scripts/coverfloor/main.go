// Command coverfloor is the coverage gate of `make cover`: it parses a
// Go coverage profile and fails when total statement coverage drops
// below the repo floor, or when a named package drops below its own
// floor. Per-package floors pin the subsystems whose tests are the
// acceptance surface (the replicated kvstore, the placement ring) so a
// regression there cannot hide inside an unchanged total.
//
// Usage (from the repository root):
//
//	go run ./scripts/coverfloor -profile coverage.out -total 65 \
//	    -pkg hgs/internal/kvstore=78 -pkg hgs/internal/ring=82
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path"
	"sort"
	"strconv"
	"strings"
)

// block is one profile entry's statement weight and execution flag.
type block struct {
	stmts int
	hit   bool
}

// pkgFloors collects repeated -pkg import/path=floor flags.
type pkgFloors map[string]float64

func (p pkgFloors) String() string { return fmt.Sprintf("%v", map[string]float64(p)) }

func (p pkgFloors) Set(s string) error {
	name, val, ok := strings.Cut(s, "=")
	if !ok {
		return fmt.Errorf("want package=floor, got %q", s)
	}
	f, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return fmt.Errorf("floor for %s: %w", name, err)
	}
	p[name] = f
	return nil
}

func main() {
	profile := flag.String("profile", "coverage.out", "coverage profile to check")
	total := flag.Float64("total", 0, "minimum total statement coverage in percent")
	floors := pkgFloors{}
	flag.Var(floors, "pkg", "per-package floor as importpath=percent (repeatable)")
	flag.Parse()

	blocks, err := readProfile(*profile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "coverfloor: %v\n", err)
		os.Exit(1)
	}

	perPkg := map[string][2]int{} // package -> {covered, total} statements
	var covered, stmts int
	for key, b := range blocks {
		pkg := path.Dir(strings.SplitN(key, ":", 2)[0])
		agg := perPkg[pkg]
		agg[1] += b.stmts
		stmts += b.stmts
		if b.hit {
			agg[0] += b.stmts
			covered += b.stmts
		}
		perPkg[pkg] = agg
	}
	if stmts == 0 {
		fmt.Fprintln(os.Stderr, "coverfloor: profile holds no statements")
		os.Exit(1)
	}

	failed := false
	pct := 100 * float64(covered) / float64(stmts)
	fmt.Printf("total coverage: %.1f%% (floor: %.1f%%)\n", pct, *total)
	if pct < *total {
		fmt.Printf("FAIL: total coverage %.1f%% is below the %.1f%% floor\n", pct, *total)
		failed = true
	}
	names := make([]string, 0, len(floors))
	for name := range floors {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		agg, ok := perPkg[name]
		if !ok || agg[1] == 0 {
			fmt.Printf("FAIL: package %s not present in the profile\n", name)
			failed = true
			continue
		}
		pct := 100 * float64(agg[0]) / float64(agg[1])
		fmt.Printf("%s coverage: %.1f%% (floor: %.1f%%)\n", name, pct, floors[name])
		if pct < floors[name] {
			fmt.Printf("FAIL: %s coverage %.1f%% is below its %.1f%% floor\n", name, pct, floors[name])
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

// readProfile parses a coverage profile, deduplicating blocks by
// position (a merged ./... profile can restate a block; any hit wins,
// matching `go tool cover -func` semantics for mode: set).
func readProfile(name string) (map[string]block, error) {
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	blocks := map[string]block{}
	sc := bufio.NewScanner(f)
	buf := make([]byte, 1<<20)
	sc.Buffer(buf, len(buf))
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "mode:") || line == "" {
			continue
		}
		// file.go:startLine.startCol,endLine.endCol numStmts count
		pos, rest, ok := strings.Cut(line, " ")
		if !ok {
			return nil, fmt.Errorf("%s: malformed line %q", name, line)
		}
		fields := strings.Fields(rest)
		if len(fields) != 2 {
			return nil, fmt.Errorf("%s: malformed line %q", name, line)
		}
		stmts, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("%s: statement count in %q: %w", name, line, err)
		}
		count, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("%s: hit count in %q: %w", name, line, err)
		}
		b := blocks[pos]
		b.stmts = stmts
		b.hit = b.hit || count > 0
		blocks[pos] = b
	}
	return blocks, sc.Err()
}
