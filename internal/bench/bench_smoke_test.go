package bench

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// tinyScale keeps the smoke tests fast; the real benches run at
// DefaultScale through cmd/hgs-bench and the root testing.B harness.
func tinyScale() Scale {
	return Scale{
		WikiNodes:        1500,
		WikiEdgesPerNode: 3,
		Augment2:         2500,
		Augment3:         5000,
		// Friendster must exceed ps × sids so micro-partitioning (and
		// therefore the Fig 15a layout comparison) is non-degenerate.
		FriendsterCommunities: 24,
		FriendsterSize:        200,
		DBLPAuthors:           200,
		DBLPPapers:            400,
		DBLPChurn:             600,
	}
}

func checkResult(t *testing.T, r *Result, wantSeries int) {
	t.Helper()
	if r.ID == "" || r.Title == "" {
		t.Fatalf("result missing identity: %+v", r)
	}
	if len(r.Series) < wantSeries {
		t.Fatalf("%s: got %d series, want >= %d", r.ID, len(r.Series), wantSeries)
	}
	for _, s := range r.Series {
		if len(s.Points) == 0 {
			t.Fatalf("%s: series %q has no points", r.ID, s.Name)
		}
		for _, p := range s.Points {
			if p.Y < 0 {
				t.Fatalf("%s: negative measurement in %q", r.ID, s.Name)
			}
		}
	}
	var buf bytes.Buffer
	r.Print(&buf)
	if buf.Len() == 0 {
		t.Fatalf("%s: Print produced nothing", r.ID)
	}
}

// skipIfShort keeps `go test -short ./...` (the tier-1 gate) to
// seconds: each smoke test builds multi-index TGIs and runs the full
// latency model, ~30s combined at tiny scale.
func skipIfShort(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("bench smoke test skipped in -short mode")
	}
}

func TestMain(m *testing.M) {
	code := m.Run()
	ResetCache()
	os.Exit(code)
}

func TestFig11Smoke(t *testing.T) {
	skipIfShort(t)
	r := Fig11(tinyScale())
	checkResult(t, r, 6)
	// Parallel fetch must not be slower than serial by a large factor on
	// the largest snapshot (shape check: c helps or at least not hurts).
	serial := r.Series[0].Points[len(r.Series[0].Points)-1].Y
	parallel := r.Series[2].Points[len(r.Series[2].Points)-1].Y // c=4
	if parallel > serial*1.5 {
		t.Errorf("c=4 slower than c=1: %.4fs vs %.4fs", parallel, serial)
	}
}

func TestFig12Smoke(t *testing.T) {
	skipIfShort(t)
	checkResult(t, Fig12(tinyScale()), 12)
}

func TestFig13Smoke(t *testing.T) {
	skipIfShort(t)
	checkResult(t, Fig13a(tinyScale()), 2)
	checkResult(t, Fig13b(tinyScale()), 3)
	checkResult(t, Fig13c(tinyScale()), 1)
}

func TestFig14Smoke(t *testing.T) {
	skipIfShort(t)
	checkResult(t, Fig14a(tinyScale()), 3)
	checkResult(t, Fig14b(tinyScale()), 3)
	checkResult(t, Fig14c(tinyScale()), 1)
}

func TestFig15Smoke(t *testing.T) {
	skipIfShort(t)
	a := Fig15a(tinyScale())
	checkResult(t, a, 3)
	// Shape: locality ("maxflow") partitioning must beat random for
	// 1-hop retrieval; replication must stay in locality's band (its
	// strict win over plain locality only emerges at larger scales —
	// see EXPERIMENTS.md Figure 15a).
	random := a.Series[0].Points[0].Y
	maxflow := a.Series[1].Points[0].Y
	replicated := a.Series[2].Points[0].Y
	if maxflow > random {
		t.Errorf("locality (%.5fs) not better than random (%.5fs)", maxflow, random)
	}
	if replicated > 1.5*maxflow {
		t.Errorf("replication (%.5fs) far off locality (%.5fs)", replicated, maxflow)
	}
	checkResult(t, Fig15b(tinyScale()), 3)
	checkResult(t, Fig15c(tinyScale()), 3)
}

func TestFig16Smoke(t *testing.T) {
	skipIfShort(t)
	checkResult(t, Fig16(tinyScale()), 2)
}

func TestFig17Smoke(t *testing.T) {
	skipIfShort(t)
	r := Fig17(tinyScale())
	checkResult(t, r, 2)
	// Shape: incremental computation must beat per-version recomputation
	// at the largest version count.
	fresh := r.Series[0].Points[len(r.Series[0].Points)-1].Y
	incr := r.Series[1].Points[len(r.Series[1].Points)-1].Y
	if incr > fresh {
		t.Errorf("incremental (%.5fs) not faster than fresh (%.5fs)", incr, fresh)
	}
}

func TestTable1Smoke(t *testing.T) {
	skipIfShort(t)
	r := Table1(tinyScale())
	if len(r.TableRows) < 12 { // 6 analytical + header + 6 measured
		t.Fatalf("table rows = %d", len(r.TableRows))
	}
	var buf bytes.Buffer
	r.Print(&buf)
	if !bytes.Contains(buf.Bytes(), []byte("DeltaGraph")) {
		t.Fatal("table missing DeltaGraph row")
	}
}

func TestAblationsSmoke(t *testing.T) {
	skipIfShort(t)
	checkResult(t, AblationArity(tinyScale()), 1)
	r := AblationVersionChains(tinyScale())
	checkResult(t, r, 2)
}

func TestCacheBenchSmoke(t *testing.T) {
	skipIfShort(t)
	r := CacheBench(tinyScale())
	if len(r.TableRows) != 4 {
		t.Fatalf("cache table rows = %d, want 4 passes", len(r.TableRows))
	}
	var buf bytes.Buffer
	r.Print(&buf)
	if !bytes.Contains(buf.Bytes(), []byte("warm (v2)")) {
		t.Fatal("cache result missing warm v2 pass")
	}
	if !bytes.Contains(buf.Bytes(), []byte("negative-hit ratio")) {
		t.Fatal("cache result missing the negative-hit ratio note")
	}
}

// TestCacheV2NegativeCaching is the acceptance bar of cache v2: on the
// sparse-history workload the warm pass must answer a nonzero share of
// its probes from negative entries, and must therefore issue strictly
// fewer KV reads than the same warm pass over the legacy v1 (PR 2)
// cache, which re-reads every absent row.
func TestCacheV2NegativeCaching(t *testing.T) {
	skipIfShort(t)
	warmV2, warmV1, warmDelta := CacheV2Passes(tinyScale())
	if warmDelta.NegativeHits == 0 {
		t.Fatal("warm v2 pass recorded no negative hits on the sparse-history workload")
	}
	if warmV2.Reads >= warmV1.Reads {
		t.Fatalf("warm v2 pass issued %d KV reads, not fewer than the v1 cache's %d", warmV2.Reads, warmV1.Reads)
	}
}

// TestCacheBenchSpeedup is the CLI-visible form of the fetch-layer
// acceptance bar: the warm pass of the cache workload must issue at
// least 2× fewer KV operations than the cold pass. Since boundary
// eventlists became cacheable, zero warm reads is the expected best
// case (the whole probe set is cache-resident), not a broken pass.
func TestCacheBenchSpeedup(t *testing.T) {
	skipIfShort(t)
	cold, warm := CachePasses(tinyScale())
	if cold.Reads == 0 || cold.Reads < 2*warm.Reads {
		t.Fatalf("cold pass %d KV reads, warm pass %d: want >= 2x reduction", cold.Reads, warm.Reads)
	}
	if warm.RoundTrips >= cold.RoundTrips {
		t.Fatalf("warm round-trips %d not below cold %d", warm.RoundTrips, cold.RoundTrips)
	}
}

// TestReopenSmoke is the acceptance bar of the warm-up subsystem: after
// a restart, the recent-timespan probe workload must be served almost
// entirely from memory when warm-up is on (hit ratio >= 0.9) and must
// simulate strictly less wait than the cold reopen.
func TestReopenSmoke(t *testing.T) {
	skipIfShort(t)
	coldM, warmM := ReopenPasses(tinyScale())
	if coldM.TierColdReads == 0 {
		t.Fatal("cold reopen issued no disk-tier reads; the build did not go cold")
	}
	if warmM.WarmedRows == 0 {
		t.Fatal("warm reopen recorded no warmed rows")
	}
	if ratio := hitRatio(warmM); ratio < 0.9 {
		t.Fatalf("warm reopen hot-hit ratio = %.3f, want >= 0.9 (hot=%d cold=%d)",
			ratio, warmM.TierHotReads, warmM.TierColdReads)
	}
	if warmM.SimWait >= coldM.SimWait {
		t.Fatalf("warm reopen sim wait %v not below cold reopen %v", warmM.SimWait, coldM.SimWait)
	}
	if hitRatio(warmM) <= hitRatio(coldM) {
		t.Fatalf("warm-up did not improve the hit ratio: %.3f vs %.3f", hitRatio(warmM), hitRatio(coldM))
	}
	r := ReopenBench(tinyScale())
	if len(r.TableRows) != 2 {
		t.Fatalf("reopen table rows = %d, want 2 passes", len(r.TableRows))
	}
	var buf bytes.Buffer
	r.Print(&buf)
	if !bytes.Contains(buf.Bytes(), []byte("warm-up")) {
		t.Fatal("reopen result missing warm-up note")
	}
}

// TestParallelSmoke is the acceptance bar of parallel materialization:
// every worker count must produce byte-identical snapshots, the warm
// sweep must be served from cached eventlists (hits > 0), and parallel
// passes must not be meaningfully slower than the sequential one. The
// speedup direction is only asserted where it is physically possible
// (more than one core); the wall-clock tolerance stays generous because
// shared runners are noisy.
func TestParallelSmoke(t *testing.T) {
	skipIfShort(t)
	passes := ParallelPasses(tinyScale())
	if len(passes) != len(parallelWorkerCounts) {
		t.Fatalf("got %d passes, want %d", len(passes), len(parallelWorkerCounts))
	}
	base := passes[0]
	if base.Workers != 1 {
		t.Fatalf("first pass workers = %d, want 1", base.Workers)
	}
	for _, p := range passes {
		if p.Digest != base.Digest {
			t.Fatalf("workers=%d digest %016x differs from workers=1 digest %016x",
				p.Workers, p.Digest, base.Digest)
		}
		if p.EventlistHits == 0 {
			t.Fatalf("workers=%d warm pass recorded no eventlist cache hits", p.Workers)
		}
		if p.AllocsPerOp <= 0 {
			t.Fatalf("workers=%d pass recorded no allocations: %+v", p.Workers, p)
		}
		if p.Workers > 1 && p.Seconds > 2*base.Seconds {
			t.Errorf("workers=%d (%.4fs) much slower than workers=1 (%.4fs)",
				p.Workers, p.Seconds, base.Seconds)
		}
	}
	r := ParallelBench(tinyScale())
	checkResult(t, r, 2)
	if len(r.Passes) != len(parallelWorkerCounts) {
		t.Fatalf("parallel result carries %d passes, want %d", len(r.Passes), len(parallelWorkerCounts))
	}
	var buf bytes.Buffer
	r.Print(&buf)
	if !bytes.Contains(buf.Bytes(), []byte("byte-identical across worker counts: true")) {
		t.Fatal("parallel result missing the byte-identity note")
	}
}

// TestServeSmoke runs the closed-loop HTTP driver at tiny scale: the
// spawned server must complete requests from all concurrent clients,
// stream back rows, and report coherent rates.
func TestServeSmoke(t *testing.T) {
	skipIfShort(t)
	r := ServeBench(tinyScale())
	if r.ID != "serve" || len(r.Passes) != 1 {
		t.Fatalf("serve result shape: %+v", r)
	}
	p := r.Passes[0]
	if p.Ops == 0 {
		t.Fatalf("no successful requests")
	}
	if p.QPS <= 0 {
		t.Fatalf("QPS not reported: %+v", p)
	}
	if p.P50Seconds <= 0 || p.P99Seconds < p.P50Seconds {
		t.Fatalf("quantiles incoherent: p50=%v p99=%v", p.P50Seconds, p.P99Seconds)
	}
	if p.ShedRate < 0 || p.ShedRate > 1 || p.DeadlineMissRate < 0 || p.DeadlineMissRate > 1 {
		t.Fatalf("rates out of range: %+v", p)
	}
	if len(r.TableRows) != 1 {
		t.Fatalf("serve table rows: %d", len(r.TableRows))
	}
	found := false
	for _, n := range r.Notes {
		if strings.Contains(n, "streamed") && !strings.Contains(n, "streamed 0 ") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no streamed rows reported: %v", r.Notes)
	}
}

// TestRebalanceSmoke is the acceptance bar of the node-lifecycle
// subsystem, run by `make test-full`: a node joins under live traffic
// and every phase's query answers digest equal to the healthy baseline
// (no query observes a missing partition mid-handoff), the migration
// stays within ~2x the consistent-hashing movement bound, and a
// replica-down phase answers via degraded reads.
func TestRebalanceSmoke(t *testing.T) {
	skipIfShort(t)
	passes := RebalancePasses(tinyScale())
	if len(passes) != 3 {
		t.Fatalf("got %d passes, want 3", len(passes))
	}
	base, add, degraded := passes[0], passes[1], passes[2]
	if base.Label != "baseline" || add.Label != "node-add" || degraded.Label != "degraded" {
		t.Fatalf("pass labels: %q %q %q", base.Label, add.Label, degraded.Label)
	}
	for _, p := range passes {
		if p.Digest != base.Digest {
			t.Fatalf("%s phase digest %016x differs from baseline %016x (query saw wrong or missing rows)",
				p.Label, p.Digest, base.Digest)
		}
		if p.Ops == 0 || p.P99 <= 0 || p.P99 < p.P50 {
			t.Fatalf("%s phase latency incoherent: %+v", p.Label, p)
		}
	}
	if add.RowsMoved == 0 || add.PartitionsMoved == 0 {
		t.Fatalf("node-add moved nothing: %+v", add)
	}
	if add.RelocatedShare > 2*add.TheoryShare {
		t.Fatalf("node-add relocated %.1f%% of keys, above 2x the ~%.1f%% consistent-hashing bound",
			100*add.RelocatedShare, 100*add.TheoryShare)
	}
	if degraded.DegradedReads == 0 {
		t.Fatalf("degraded phase recorded no degraded reads: %+v", degraded)
	}
	if base.DegradedReads != 0 || base.Failovers != 0 || base.RowsMoved != 0 {
		t.Fatalf("baseline phase not clean: %+v", base)
	}

	r := RebalanceBench(tinyScale())
	checkResult(t, r, 2)
	if len(r.Passes) != 3 {
		t.Fatalf("rebalance result carries %d passes, want 3", len(r.Passes))
	}
	var buf bytes.Buffer
	r.Print(&buf)
	if !bytes.Contains(buf.Bytes(), []byte("byte-identical across baseline/node-add/degraded phases: true")) {
		t.Fatal("rebalance result missing the byte-identity note")
	}
}

// TestQuorumSmoke is the acceptance bar of the consistency subsystem,
// run by `make test-full`: quorum reads answer bit-identically to the
// R=1 baseline (healthy, degraded, and concurrent with an anti-entropy
// sweep), a healthy cluster repairs nothing, R=2 roughly doubles
// replica visits, and W=1 shields callers from a slow replica that
// write-all has to wait for.
func TestQuorumSmoke(t *testing.T) {
	skipIfShort(t)
	passes := QuorumPasses(tinyScale())
	if len(passes) != 6 {
		t.Fatalf("got %d passes, want 6", len(passes))
	}
	labels := []string{"read-r1", "read-r2", "read-r2-degraded", "read-r2-antientropy",
		"write-w3-slow-replica", "write-w1-slow-replica"}
	for i, p := range passes {
		if p.Label != labels[i] {
			t.Fatalf("pass %d labelled %q, want %q", i, p.Label, labels[i])
		}
	}
	base := passes[0]
	for _, p := range passes[:4] {
		if p.Digest != base.Digest {
			t.Fatalf("%s phase digest %016x differs from baseline %016x (quorum read lost or corrupted rows)",
				p.Label, p.Digest, base.Digest)
		}
		if p.Ops == 0 || p.P99 <= 0 || p.P99 < p.P50 {
			t.Fatalf("%s phase latency incoherent: %+v", p.Label, p)
		}
		if p.ReadRepairs != 0 {
			t.Fatalf("%s phase repaired %d rows on a healthy workload — replicas diverged during serving",
				p.Label, p.ReadRepairs)
		}
	}
	r1, r2 := passes[0], passes[1]
	if r2.RoundTrips <= r1.RoundTrips {
		t.Fatalf("R=2 did not amplify replica visits: %d vs %d", r2.RoundTrips, r1.RoundTrips)
	}
	if passes[2].Failovers == 0 {
		t.Fatalf("degraded phase saw no failovers: %+v", passes[2])
	}
	if passes[3].AEBytes != 0 || passes[3].AERows != 0 {
		t.Fatalf("anti-entropy streamed %d rows/%d bytes on a consistent cluster", passes[3].AERows, passes[3].AEBytes)
	}
	wAll, w1 := passes[4], passes[5]
	if wAll.Writes != quorumWriteOps || w1.Writes != quorumWriteOps {
		t.Fatalf("write passes lost writes: %d and %d, want %d", wAll.Writes, w1.Writes, int64(quorumWriteOps))
	}
	// Every write reaches all 3 replicas eventually (Quiesce before the
	// metrics read), whatever the ack quorum.
	for _, p := range passes[4:] {
		if p.RoundTrips < int64(quorumWriteOps*quorumReplication) {
			t.Fatalf("%s: %d round-trips, want >= %d (3 replicas per write)",
				p.Label, p.RoundTrips, quorumWriteOps*quorumReplication)
		}
	}
	if w1.P99 >= wAll.P99 {
		t.Fatalf("W=1 p99 (%.0fµs) not below write-all p99 (%.0fµs) with a +300µs replica",
			w1.P99*1e6, wAll.P99*1e6)
	}

	r := QuorumBench(tinyScale())
	checkResult(t, r, 2)
	if len(r.Passes) != 6 {
		t.Fatalf("quorum result carries %d passes, want 6", len(r.Passes))
	}
	var buf bytes.Buffer
	r.Print(&buf)
	if !bytes.Contains(buf.Bytes(), []byte("answers bit-identical: true")) {
		t.Fatal("quorum result missing the bit-identity note")
	}
}

func TestRunnersComplete(t *testing.T) {
	want := []string{
		"table1", "fig11", "fig12", "fig13a", "fig13b", "fig13c",
		"fig14a", "fig14b", "fig14c", "fig15a", "fig15b", "fig15c",
		"fig16", "fig17", "cache", "tiering", "reopen", "parallel",
		"serve", "rebalance", "quorum", "ablation-arity", "ablation-vc",
	}
	for _, id := range want {
		if _, ok := Runners[id]; !ok {
			t.Errorf("missing runner %q", id)
		}
	}
}

func TestDefaultScaleEnv(t *testing.T) {
	t.Setenv("HGS_SCALE", "0.5")
	sc := DefaultScale()
	if sc.WikiNodes != 10_000 {
		t.Fatalf("HGS_SCALE not applied: %d", sc.WikiNodes)
	}
	t.Setenv("HGS_SCALE", "bogus")
	if DefaultScale().WikiNodes != 20_000 {
		t.Fatal("bogus HGS_SCALE should fall back to defaults")
	}
}

func TestTieringSmoke(t *testing.T) {
	skipIfShort(t)
	r := TieringBench(tinyScale())
	checkResult(t, r, 2)
	// The acceptance bar of the tiered backend: with an unbounded hot
	// tier the whole probe workload is served without a single
	// disk-tier read, and hot hits dominate (the last table row is the
	// unbounded pass).
	last := r.TableRows[len(r.TableRows)-1]
	if last[0] != "unbounded" {
		t.Fatalf("last row %v is not the unbounded pass", last)
	}
	if last[2] != "0" {
		t.Fatalf("unbounded hot tier still issued %s cold reads", last[2])
	}
	if last[1] == "0" {
		t.Fatal("unbounded pass recorded no hot reads")
	}
	// The hit-ratio series must not decrease as the hot tier grows.
	pts := r.Series[0].Points
	if pts[len(pts)-1].Y < pts[0].Y {
		t.Fatalf("hot-hit ratio fell as the hot tier grew: %v", pts)
	}
	if pts[len(pts)-1].Y != 1.0 {
		t.Fatalf("unbounded hot tier hit ratio = %v, want 1.0", pts[len(pts)-1].Y)
	}
}

// TestDatasetDiskCache covers the HGS_DATASET_DIR layer the scheduled
// perf workflow relies on: the first build writes a gob file, a fresh
// process (simulated by dropping the in-memory cache) loads the same
// events from disk instead of regenerating.
func TestDatasetDiskCache(t *testing.T) {
	dir := t.TempDir()
	t.Setenv("HGS_DATASET_DIR", dir)
	ResetCache()
	defer ResetCache()
	sc := Scale{WikiNodes: 64, WikiEdgesPerNode: 2}
	first := Dataset1(sc)
	entries, err := os.ReadDir(dir)
	if err != nil || len(entries) != 1 {
		t.Fatalf("dataset cache dir holds %d files (err %v), want 1", len(entries), err)
	}
	ResetCache() // a new job: in-memory cache gone, disk cache warm
	second := Dataset1(sc)
	if len(first) != len(second) {
		t.Fatalf("disk-cached dataset has %d events, want %d", len(second), len(first))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("disk-cached event %d differs: %+v vs %+v", i, second[i], first[i])
		}
	}
	// A corrupt cache file regenerates instead of failing.
	ResetCache()
	if err := os.WriteFile(filepath.Join(dir, entries[0].Name()), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	third := Dataset1(sc)
	if len(third) != len(first) {
		t.Fatalf("corrupt cache file not regenerated: %d events", len(third))
	}
}

// TestReportJSONRoundTrip — the -json contract: metered passes carry
// structured measurements (KV delta, latency quantiles), and a report
// survives the write/read cycle scripts/perfdiff depends on.
func TestReportJSONRoundTrip(t *testing.T) {
	skipIfShort(t)
	sc := tinyScale()
	r := Fig11(sc)
	if len(r.Passes) == 0 {
		t.Fatal("metered figure produced no PassMetrics")
	}
	p := r.Passes[0]
	if p.Label == "" || p.KVReads <= 0 || p.RoundTrips <= 0 {
		t.Fatalf("pass not populated: %+v", p)
	}
	if p.Ops == 0 || p.P99Seconds < p.P50Seconds || p.P50Seconds <= 0 {
		t.Fatalf("pass quantiles not populated or inconsistent: %+v", p)
	}
	rep := &Report{Scale: sc, Results: []*Result{r}}
	var buf strings.Builder
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Scale != sc {
		t.Fatalf("scale round-trip: %+v != %+v", back.Scale, sc)
	}
	if len(back.Results) != 1 || len(back.Results[0].Passes) != len(r.Passes) {
		t.Fatal("results or passes lost in round-trip")
	}
	if back.Results[0].Passes[0] != p {
		t.Fatalf("pass round-trip mismatch:\n got %+v\nwant %+v", back.Results[0].Passes[0], p)
	}
}
