package main

import (
	"strings"
	"testing"

	"hgs/internal/bench"
)

func report(passes ...bench.PassMetrics) *bench.Report {
	return &bench.Report{
		Scale:   bench.Scale{WikiNodes: 1000},
		Results: []*bench.Result{{ID: "fig11", Passes: passes}},
	}
}

func pass(label string, kvReads int64) bench.PassMetrics {
	return bench.PassMetrics{
		Label:            label,
		KVReads:          kvReads,
		RoundTrips:       100,
		BytesRead:        1 << 20,
		SimWaitSeconds:   0.5,
		CacheHitRatio:    0.60,
		NegativeHitRatio: 0.20,
		P99Seconds:       0.01,
	}
}

var defaults = Thresholds{MaxRatio: 1.25, MaxRatioDrop: 0.10, NoiseFloor: 16}

func TestCompareClean(t *testing.T) {
	base := report(pass("c sweep", 1000))
	cur := report(pass("c sweep", 1100)) // 1.1x, inside 1.25x
	out := Compare(base, cur, defaults)
	if out.Compared != 1 || len(out.Regressions) != 0 {
		t.Fatalf("compared=%d regressions=%v, want 1 and none", out.Compared, out.Regressions)
	}
}

func TestCompareCountRegression(t *testing.T) {
	base := report(pass("c sweep", 1000))
	cur := report(pass("c sweep", 1300)) // 1.3x > 1.25x
	out := Compare(base, cur, defaults)
	if len(out.Regressions) != 1 || !strings.Contains(out.Regressions[0], "kv_reads") {
		t.Fatalf("regressions = %v, want one kv_reads violation", out.Regressions)
	}
}

func TestCompareSimWaitRegression(t *testing.T) {
	base := report(pass("c sweep", 1000))
	p := pass("c sweep", 1000)
	p.SimWaitSeconds = 0.7 // 1.4x
	out := Compare(base, report(p), defaults)
	if len(out.Regressions) != 1 || !strings.Contains(out.Regressions[0], "simwait") {
		t.Fatalf("regressions = %v, want one simwait violation", out.Regressions)
	}
}

func TestCompareReadRepairsZeroBaseline(t *testing.T) {
	base := report(pass("read-r2", 1000))
	p := pass("read-r2", 1000)
	p.ReadRepairs = 1 // far below the noise floor, still a regression
	out := Compare(base, report(p), defaults)
	if len(out.Regressions) != 1 || !strings.Contains(out.Regressions[0], "read_repairs 0 -> 1") {
		t.Fatalf("regressions = %v, want the zero-baseline read_repairs violation", out.Regressions)
	}
}

func TestCompareReadRepairsRatio(t *testing.T) {
	b := pass("read-r2", 1000)
	b.ReadRepairs = 100
	p := pass("read-r2", 1000)
	p.ReadRepairs = 110 // inside 1.25x of a nonzero baseline
	out := Compare(report(b), report(p), defaults)
	if len(out.Regressions) != 0 {
		t.Fatalf("regressions = %v, want none inside the ratio", out.Regressions)
	}
	p.ReadRepairs = 200 // 2x
	out = Compare(report(b), report(p), defaults)
	if len(out.Regressions) != 1 || !strings.Contains(out.Regressions[0], "read_repairs") {
		t.Fatalf("regressions = %v, want one read_repairs violation", out.Regressions)
	}
}

func TestCompareAntiEntropyBytesNeverGate(t *testing.T) {
	b := pass("read-r2-antientropy", 1000)
	p := pass("read-r2-antientropy", 1000)
	p.AntiEntropyBytes = 1 << 30 // huge, but informational only
	out := Compare(report(b), report(p), defaults)
	if len(out.Regressions) != 0 {
		t.Fatalf("regressions = %v, want none for anti-entropy bytes", out.Regressions)
	}
	found := false
	for _, line := range out.Info {
		if strings.Contains(line, "anti-entropy bytes") {
			found = true
		}
	}
	if !found {
		t.Fatalf("info = %v, want the anti-entropy bytes line", out.Info)
	}
}

func TestCompareRatioDrop(t *testing.T) {
	base := report(pass("c sweep", 1000))
	p := pass("c sweep", 1000)
	p.CacheHitRatio = 0.45 // drop 0.15 > 0.10
	out := Compare(base, report(p), defaults)
	if len(out.Regressions) != 1 || !strings.Contains(out.Regressions[0], "cache_hit_ratio") {
		t.Fatalf("regressions = %v, want one cache_hit_ratio violation", out.Regressions)
	}
}

func TestCompareAllocsRegression(t *testing.T) {
	b := pass("w=4", 1000)
	b.AllocsPerOp = 10_000
	p := pass("w=4", 1000)
	p.AllocsPerOp = 15_000 // 1.5x > 1.25x
	out := Compare(report(b), report(p), defaults)
	if len(out.Regressions) != 1 || !strings.Contains(out.Regressions[0], "allocs_per_op") {
		t.Fatalf("regressions = %v, want one allocs_per_op violation", out.Regressions)
	}
	// A baseline without the field (older report) must not gate.
	out = Compare(report(pass("w=4", 1000)), report(p), defaults)
	for _, r := range out.Regressions {
		if strings.Contains(r, "allocs_per_op") {
			t.Fatalf("zero-baseline allocs_per_op gated the run: %v", out.Regressions)
		}
	}
}

func TestCompareNoiseFloorExempts(t *testing.T) {
	base := report(pass("c sweep", 4))
	p := pass("c sweep", 12) // 3x, but baseline below the floor
	p.RoundTrips = 100       // keep the other counts clean
	out := Compare(base, report(p), defaults)
	for _, r := range out.Regressions {
		if strings.Contains(r, "kv_reads") {
			t.Fatalf("kv_reads under the noise floor still regressed: %v", out.Regressions)
		}
	}
}

func TestCompareStructuralChangesAreInfo(t *testing.T) {
	base := report(pass("old pass", 1000))
	cur := report(pass("new pass", 5000))
	out := Compare(base, cur, defaults)
	if len(out.Regressions) != 0 {
		t.Fatalf("structural change produced regressions: %v", out.Regressions)
	}
	joined := strings.Join(out.Info, "\n")
	if !strings.Contains(joined, "new pass, no baseline") || !strings.Contains(joined, "vanished") {
		t.Fatalf("info = %v, want new-pass and vanished notes", out.Info)
	}
}

func TestCompareQuantilesNeverGate(t *testing.T) {
	base := report(pass("c sweep", 1000))
	p := pass("c sweep", 1000)
	p.P99Seconds = 1.0 // 100x wall-clock blowup
	out := Compare(base, report(p), defaults)
	if len(out.Regressions) != 0 {
		t.Fatalf("wall-clock quantile gated the run: %v", out.Regressions)
	}
	if !strings.Contains(strings.Join(out.Info, "\n"), "p99") {
		t.Fatalf("info = %v, want a p99 trend note", out.Info)
	}
}
