package codec

import (
	"reflect"
	"testing"
)

// TestPooledDecodeDoesNotAlias pins the pooling safety contract: every
// decode primitive copies bytes out of the (pooled, recycled) scratch
// arena, so values decoded earlier must survive any number of later
// encode/decode cycles that reuse the same buffers. Exercised for both
// the plain and the gzip frame, whose decompression arena is the
// riskiest recycled buffer.
func TestPooledDecodeDoesNotAlias(t *testing.T) {
	for _, c := range []Codec{{}, {Compress: true}} {
		name := "plain"
		if c.Compress {
			name = "gzip"
		}
		t.Run(name, func(t *testing.T) {
			d := randDelta(3, 60)
			evs := randEvents(4, 80)
			dBlob, err := c.EncodeDelta(d)
			if err != nil {
				t.Fatal(err)
			}
			eBlob, err := c.EncodeEvents(evs)
			if err != nil {
				t.Fatal(err)
			}
			gotD, err := c.DecodeDelta(dBlob)
			if err != nil {
				t.Fatal(err)
			}
			gotE, err := c.DecodeEvents(eBlob)
			if err != nil {
				t.Fatal(err)
			}
			// Hammer the pools with unrelated work so every pooled arena
			// the decodes above might alias is recycled and overwritten.
			for i := int64(0); i < 50; i++ {
				junk, err := c.EncodeDelta(randDelta(100+i, 80))
				if err != nil {
					t.Fatal(err)
				}
				if _, err := c.DecodeDelta(junk); err != nil {
					t.Fatal(err)
				}
				jevs, err := c.EncodeEvents(randEvents(200+i, 100))
				if err != nil {
					t.Fatal(err)
				}
				if _, err := c.DecodeEvents(jevs); err != nil {
					t.Fatal(err)
				}
			}
			if !gotD.Equal(d) {
				t.Fatal("earlier decoded delta changed after pool reuse: decode aliased a recycled buffer")
			}
			if !reflect.DeepEqual(gotE, evs) {
				t.Fatal("earlier decoded events changed after pool reuse: decode aliased a recycled buffer")
			}
		})
	}
}

// TestPoolStatsCount pins the pool accounting surfaced as
// hgs_codec_pool_{hits,misses}_total: sustained encode/decode traffic
// must record activity, and — since each loop iteration returns its
// buffers before the next takes them — mostly as hits.
func TestPoolStatsCount(t *testing.T) {
	h0, m0 := PoolStats()
	c := Codec{Compress: true}
	for i := int64(0); i < 20; i++ {
		blob, err := c.EncodeEvents(randEvents(i, 50))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.DecodeEvents(blob); err != nil {
			t.Fatal(err)
		}
	}
	h1, m1 := PoolStats()
	if h1-h0+m1-m0 == 0 {
		t.Fatal("pool counters did not move under encode/decode traffic")
	}
	if h1 == h0 {
		t.Fatalf("no pool hits across 20 sequential cycles (hits %d->%d, misses %d->%d)", h0, h1, m0, m1)
	}
}
