package baseline

import (
	"hgs/internal/core"
	"hgs/internal/graph"
	"hgs/internal/kvstore"
	"hgs/internal/temporal"
)

// TGIAdapter exposes a core.TGI through the baseline Index interface so
// the comparison harness can run every design through one code path. With
// core.DeltaGraphConfig it degenerates into the DeltaGraph baseline
// (monolithic deltas, single horizontal partition — §4.2).
type TGIAdapter struct {
	name string
	cfg  core.Config
	tgi  *core.TGI
	st   *kvstore.Cluster
}

// NewTGIAdapter wraps a TGI configuration as a baseline index.
func NewTGIAdapter(name string, store *kvstore.Cluster, cfg core.Config) *TGIAdapter {
	return &TGIAdapter{name: name, cfg: cfg, st: store}
}

// NewDeltaGraph returns the DeltaGraph baseline over the given store,
// with the paper-equivalent parameterization of TGI.
func NewDeltaGraph(store *kvstore.Cluster, eventlistSize int) *TGIAdapter {
	cfg := core.DeltaGraphConfig()
	if eventlistSize > 0 {
		cfg.EventlistSize = eventlistSize
	}
	return NewTGIAdapter("deltagraph", store, cfg)
}

func (a *TGIAdapter) Name() string { return a.name }

// TGI returns the wrapped index (nil before Build).
func (a *TGIAdapter) TGI() *core.TGI { return a.tgi }

func (a *TGIAdapter) Build(events []graph.Event) error {
	tgi, err := core.Build(a.st, a.cfg, events)
	if err != nil {
		return err
	}
	a.tgi = tgi
	return nil
}

func (a *TGIAdapter) Snapshot(tt temporal.Time) (*graph.Graph, error) {
	return a.tgi.GetSnapshot(tt, nil)
}

func (a *TGIAdapter) StaticNode(id graph.NodeID, tt temporal.Time) (*graph.NodeState, error) {
	return a.tgi.GetNodeAt(id, tt, nil)
}

func (a *TGIAdapter) NodeVersions(id graph.NodeID, ts, te temporal.Time) (*History, error) {
	h, err := a.tgi.GetNodeHistory(id, ts, te, nil)
	if err != nil {
		return nil, err
	}
	return &History{ID: h.ID, Interval: h.Interval, Initial: h.Initial, Events: h.Events}, nil
}

func (a *TGIAdapter) StorageBytes() int64 { return a.st.LogicalBytes() }
