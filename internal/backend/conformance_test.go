package backend_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"hgs/internal/backend"
	"hgs/internal/backend/disklog"
	"hgs/internal/backend/memtable"
	"hgs/internal/backend/tiered"
)

// TestEngineConformance drives every engine through the same random
// operation stream and requires identical observable behavior: the
// memtable is the executable spec; disklog and tiered must match it bit
// for bit. The tiered engine runs with a tiny hot budget and its
// background flusher live, so rows migrate between tiers mid-stream —
// tier placement must be invisible to every read. Batched reads
// (the BatchReader fast path) are compared against the same spec.
func TestEngineConformance(t *testing.T) {
	mem := memtable.New()
	disk, err := disklog.Open(t.TempDir(), disklog.Options{SegmentBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	defer disk.Close()
	tier, err := tiered.Open(t.TempDir(), tiered.Options{
		HotBytes:        2 << 10, // constant migration during the stream
		CompactRate:     -1,
		FlushInterval:   time.Millisecond,
		WALSegmentBytes: 4096,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tier.Close()
	engines := map[string]backend.Backend{"disklog": disk, "tiered": tier}

	rng := rand.New(rand.NewSource(7))
	tables := []string{"deltas", "events", "versions"}
	for op := 0; op < 4000; op++ {
		table := tables[rng.Intn(len(tables))]
		pkey := fmt.Sprintf("p%02d", rng.Intn(8))
		ckey := fmt.Sprintf("c%03d", rng.Intn(40))
		switch rng.Intn(11) {
		case 0, 1, 2, 3, 4: // put
			v := make([]byte, rng.Intn(64))
			rng.Read(v)
			mem.Put(table, pkey, ckey, append([]byte(nil), v...))
			for _, e := range engines {
				e.Put(table, pkey, ckey, append([]byte(nil), v...))
			}
		case 5: // delete
			want := mem.Delete(table, pkey, ckey)
			for name, e := range engines {
				if got := e.Delete(table, pkey, ckey); got != want {
					t.Fatalf("op %d: %s Delete(%s,%s,%s) = %v, want %v", op, name, table, pkey, ckey, got, want)
				}
			}
		case 6: // drop (rare)
			if rng.Intn(10) == 0 {
				mem.DropPartition(table, pkey)
				for _, e := range engines {
					e.DropPartition(table, pkey)
				}
			}
		case 7: // get
			want, wantOK := mem.Get(table, pkey, ckey)
			for name, e := range engines {
				got, ok := e.Get(table, pkey, ckey)
				if ok != wantOK || !bytes.Equal(got, want) {
					t.Fatalf("op %d: %s Get(%s,%s,%s) diverged", op, name, table, pkey, ckey)
				}
			}
		case 8: // scan
			prefix := fmt.Sprintf("c%d", rng.Intn(10))
			want := mem.ScanPrefix(table, pkey, prefix)
			for name, e := range engines {
				got := e.ScanPrefix(table, pkey, prefix)
				if len(got) != len(want) {
					t.Fatalf("op %d: %s scan length %d vs %d", op, name, len(got), len(want))
				}
				for i := range want {
					if want[i].CKey != got[i].CKey || !bytes.Equal(want[i].Value, got[i].Value) {
						t.Fatalf("op %d: %s scan row %d diverged", op, name, i)
					}
				}
			}
		case 9: // invariants
			want := mem.StoredBytes()
			for name, e := range engines {
				if got := e.StoredBytes(); got != want {
					t.Fatalf("op %d: %s stored bytes %d, want %d", op, name, got, want)
				}
			}
		case 10: // batched point reads (BatchReader fast path)
			reqs := make([]backend.KeyRead, 8)
			for i := range reqs {
				reqs[i] = backend.KeyRead{
					Table: tables[rng.Intn(len(tables))],
					PKey:  fmt.Sprintf("p%02d", rng.Intn(8)),
					CKey:  fmt.Sprintf("c%03d", rng.Intn(40)),
				}
			}
			want := backend.MultiGet(mem, reqs)
			for name, e := range engines {
				if _, ok := e.(backend.BatchReader); !ok {
					t.Fatalf("%s must implement the BatchReader fast path", name)
				}
				got := backend.MultiGet(e, reqs)
				for i := range reqs {
					if (got[i] == nil) != (want[i] == nil) || !bytes.Equal(got[i], want[i]) {
						t.Fatalf("op %d: %s MultiGet[%d] (%v) diverged", op, name, i, reqs[i])
					}
				}
			}
		}
	}
	for _, table := range tables {
		want := mem.PartitionKeys(table)
		for name, e := range engines {
			got := e.PartitionKeys(table)
			if len(got) != len(want) {
				t.Fatalf("%s partition keys of %s: %v vs %v", name, table, got, want)
			}
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("%s partition keys of %s: %v vs %v", name, table, got, want)
				}
			}
		}
	}
	for name, e := range engines {
		if err := e.Flush(); err != nil {
			t.Fatalf("%s flush: %v", name, err)
		}
	}
}

// TestTieredReopenWarmUpConformance drives the restart path of the
// tiered engine against the memtable spec: a store whose rows were all
// flushed cold is closed and reopened with warm-up on; once warmed it
// must answer the recent-timespan probe bit-for-bit AND without a
// single cold-tier read, and a Kill() landing in the middle of the
// warm-up must leave a store that reopens to the same state.
func TestTieredReopenWarmUpConformance(t *testing.T) {
	mem := memtable.New()
	dir := t.TempDir()
	seedOpts := tiered.Options{
		HotBytes:        1, // everything drains cold
		CompactRate:     -1,
		FlushInterval:   time.Millisecond,
		WALSegmentBytes: 1 << 10,
		DisableWarm:     true,
	}
	seed, err := tiered.Open(dir, seedOpts)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	const rows = 500
	type key struct{ pkey, ckey string }
	keys := make([]key, 0, rows)
	for i := 0; i < rows; i++ {
		k := key{fmt.Sprintf("p%02d", rng.Intn(8)), fmt.Sprintf("c%04d", i)}
		v := make([]byte, 16+rng.Intn(48))
		rng.Read(v)
		mem.Put("deltas", k.pkey, k.ckey, append([]byte(nil), v...))
		seed.Put("deltas", k.pkey, k.ckey, append([]byte(nil), v...))
		keys = append(keys, k)
	}
	deadline := time.Now().Add(5 * time.Second)
	for seed.TierCounters().HotBytes > 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if seed.TierCounters().HotBytes > 0 {
		t.Fatal("seed store never drained cold")
	}
	if err := seed.Close(); err != nil {
		t.Fatal(err)
	}

	// Kill in the middle of the warm-up: the half-warmed memory state
	// dies with the process, the durable state must not care.
	victim, err := tiered.Open(dir, tiered.Options{HotBytes: 1 << 30, FlushInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	victim.Kill()

	warm, err := tiered.Open(dir, tiered.Options{HotBytes: 1 << 30, FlushInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer warm.Close()
	for warm.TierCounters().Warming != 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if warm.TierCounters().Warming != 0 {
		t.Fatal("warm-up never finished")
	}

	// The recent-timespan probe: newest half of the keys, point reads,
	// batched reads and scans — identical to the spec, zero cold reads.
	coldBase := warm.TierCounters().ColdReads
	recent := keys[rows/2:]
	reqs := make([]backend.KeyRead, 0, len(recent))
	for _, k := range recent {
		want, wantOK := mem.Get("deltas", k.pkey, k.ckey)
		got, ok := warm.Get("deltas", k.pkey, k.ckey)
		if ok != wantOK || !bytes.Equal(got, want) {
			t.Fatalf("warmed Get(%s,%s) diverged from spec", k.pkey, k.ckey)
		}
		reqs = append(reqs, backend.KeyRead{Table: "deltas", PKey: k.pkey, CKey: k.ckey})
	}
	gotBatch := backend.MultiGet(warm, reqs)
	wantBatch := backend.MultiGet(mem, reqs)
	for i := range reqs {
		if !bytes.Equal(gotBatch[i], wantBatch[i]) {
			t.Fatalf("warmed MultiGet[%d] diverged from spec", i)
		}
	}
	if got := warm.TierCounters().ColdReads - coldBase; got != 0 {
		t.Fatalf("warmed store paid %d cold-tier reads on the recent probe, want 0", got)
	}
	// Full scans (old rows included) still match the spec exactly.
	for p := 0; p < 8; p++ {
		pkey := fmt.Sprintf("p%02d", p)
		want := mem.ScanPrefix("deltas", pkey, "")
		got := warm.ScanPrefix("deltas", pkey, "")
		if len(got) != len(want) {
			t.Fatalf("scan of %s: %d rows vs spec %d", pkey, len(got), len(want))
		}
		for i := range want {
			if want[i].CKey != got[i].CKey || !bytes.Equal(want[i].Value, got[i].Value) {
				t.Fatalf("scan of %s row %d diverged", pkey, i)
			}
		}
	}
	if got, want := warm.StoredBytes(), mem.StoredBytes(); got != want {
		t.Fatalf("stored bytes after warm reopen: %d, want %d", got, want)
	}
}
