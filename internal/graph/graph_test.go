package graph

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hgs/internal/temporal"
)

func TestAddRemoveNode(t *testing.T) {
	g := New()
	g.AddNode(1)
	g.AddNode(2)
	if g.NumNodes() != 2 {
		t.Fatalf("NumNodes = %d, want 2", g.NumNodes())
	}
	g.AddNode(1) // idempotent
	if g.NumNodes() != 2 {
		t.Fatalf("AddNode not idempotent")
	}
	if !g.RemoveNode(1) {
		t.Fatal("RemoveNode(1) should report true")
	}
	if g.RemoveNode(1) {
		t.Fatal("RemoveNode(1) twice should report false")
	}
	if g.Has(1) || !g.Has(2) {
		t.Fatal("wrong membership after removal")
	}
}

func TestAddRemoveEdgeMirrors(t *testing.T) {
	g := New()
	g.AddEdge(1, 2)
	if !g.HasEdge(1, 2) || g.HasEdge(2, 1) {
		t.Fatal("directed edge membership wrong")
	}
	n2 := g.Node(2)
	if _, ok := n2.Edges[EdgeKey{Other: 1, Out: false}]; !ok {
		t.Fatal("mirror entry missing on target")
	}
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1", g.NumEdges())
	}
	if !g.RemoveEdge(1, 2) {
		t.Fatal("RemoveEdge should succeed")
	}
	if len(g.Node(1).Edges) != 0 || len(g.Node(2).Edges) != 0 {
		t.Fatal("edges not removed from both endpoints")
	}
}

func TestRemoveNodeCleansIncidentEdges(t *testing.T) {
	g := New()
	g.AddEdge(1, 2)
	g.AddEdge(3, 1)
	g.RemoveNode(1)
	if len(g.Node(2).Edges) != 0 || len(g.Node(3).Edges) != 0 {
		t.Fatal("incident edges not cleaned from neighbors")
	}
	if g.NumEdges() != 0 {
		t.Fatal("NumEdges should be 0")
	}
}

func TestApplyEventsRoundtrip(t *testing.T) {
	events := []Event{
		{Time: 1, Kind: AddNode, Node: 1},
		{Time: 2, Kind: AddNode, Node: 2},
		{Time: 3, Kind: AddEdge, Node: 1, Other: 2},
		{Time: 4, Kind: SetNodeAttr, Node: 1, Key: "name", Value: "a"},
		{Time: 5, Kind: SetEdgeAttr, Node: 1, Other: 2, Key: "w", Value: "3"},
		{Time: 6, Kind: AddEdge, Node: 2, Other: 3},
		{Time: 7, Kind: RemoveEdge, Node: 1, Other: 2},
		{Time: 8, Kind: DelNodeAttr, Node: 1, Key: "name"},
	}
	g, err := FromEvents(events)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 { // node 3 auto-created by AddEdge
		t.Fatalf("NumNodes = %d, want 3", g.NumNodes())
	}
	if g.HasEdge(1, 2) || !g.HasEdge(2, 3) {
		t.Fatal("edge set wrong after replay")
	}
	if _, ok := g.Node(1).Attr("name"); ok {
		t.Fatal("attribute should have been deleted")
	}
}

func TestEdgeAttrSharedAcrossMirrors(t *testing.T) {
	g := New()
	if err := g.Apply(Event{Kind: AddEdge, Node: 1, Other: 2}); err != nil {
		t.Fatal(err)
	}
	if err := g.Apply(Event{Kind: SetEdgeAttr, Node: 1, Other: 2, Key: "w", Value: "9"}); err != nil {
		t.Fatal(err)
	}
	mirror := g.Node(2).Edges[EdgeKey{Other: 1, Out: false}]
	if mirror == nil || mirror.Attrs["w"] != "9" {
		t.Fatal("edge attribute not visible from mirror side")
	}
	if err := g.Apply(Event{Kind: DelEdgeAttr, Node: 1, Other: 2, Key: "w"}); err != nil {
		t.Fatal(err)
	}
	if _, ok := mirror.Attrs["w"]; ok {
		t.Fatal("edge attribute not deleted from mirror side")
	}
}

func TestCloneIndependence(t *testing.T) {
	g := New()
	g.AddEdge(1, 2)
	g.Apply(Event{Kind: SetNodeAttr, Node: 1, Key: "x", Value: "1"})
	c := g.Clone()
	if !g.Equal(c) {
		t.Fatal("clone should equal original")
	}
	c.Apply(Event{Kind: SetNodeAttr, Node: 1, Key: "x", Value: "2"})
	c.AddEdge(2, 3)
	if g.Node(1).Attrs["x"] != "1" {
		t.Fatal("mutating clone affected original attrs")
	}
	if g.Has(3) {
		t.Fatal("mutating clone affected original nodes")
	}
	// Mirror sharing must be restored inside the clone.
	c.Apply(Event{Kind: SetEdgeAttr, Node: 1, Other: 2, Key: "w", Value: "5"})
	if c.Node(2).Edges[EdgeKey{Other: 1, Out: false}].Attrs["w"] != "5" {
		t.Fatal("clone lost mirror sharing")
	}
}

func TestSubgraphInduced(t *testing.T) {
	g := New()
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(3, 4)
	sub := g.Subgraph([]NodeID{1, 2, 3})
	if sub.NumNodes() != 3 || sub.NumEdges() != 2 {
		t.Fatalf("subgraph = %v, want 3 nodes 2 edges", sub)
	}
	if sub.HasEdge(3, 4) {
		t.Fatal("subgraph contains edge leaving the node set")
	}
}

func TestKHop(t *testing.T) {
	// Path 1-2-3-4-5 plus spur 2-10.
	g := New()
	for _, e := range [][2]NodeID{{1, 2}, {2, 3}, {3, 4}, {4, 5}, {2, 10}} {
		g.AddEdge(e[0], e[1])
	}
	got := g.KHopIDs(1, 2)
	want := []NodeID{1, 2, 3, 10}
	if len(got) != len(want) {
		t.Fatalf("KHopIDs(1,2) = %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("KHopIDs(1,2) = %v, want %v", got, want)
		}
	}
	sg := g.KHopSubgraph(1, 1)
	if sg.NumNodes() != 2 || !sg.HasEdge(1, 2) {
		t.Fatalf("KHopSubgraph(1,1) wrong: %v", sg)
	}
}

func TestNodeStateEqual(t *testing.T) {
	a := NewNodeState(1)
	b := NewNodeState(1)
	if !a.Equal(b) {
		t.Fatal("empty states should be equal")
	}
	a.Attrs = Attrs{"k": "v"}
	if a.Equal(b) {
		t.Fatal("attr difference not detected")
	}
	b.Attrs = Attrs{"k": "v"}
	a.Edges = map[EdgeKey]*EdgeState{{Other: 2, Out: true}: {}}
	if a.Equal(b) {
		t.Fatal("edge difference not detected")
	}
	b.Edges = map[EdgeKey]*EdgeState{{Other: 2, Out: true}: {}}
	if !a.Equal(b) {
		t.Fatal("equal states reported unequal")
	}
}

func TestEventFilters(t *testing.T) {
	evs := []Event{
		{Time: 1, Kind: AddNode, Node: 1},
		{Time: 5, Kind: AddEdge, Node: 1, Other: 2},
		{Time: 9, Kind: RemoveNode, Node: 2},
	}
	byTime := FilterEventsByTime(evs, temporal.NewInterval(2, 9))
	if len(byTime) != 1 || byTime[0].Kind != AddEdge {
		t.Fatalf("FilterEventsByTime wrong: %v", byTime)
	}
	byNode := FilterEventsByNode(evs, 2)
	if len(byNode) != 2 {
		t.Fatalf("FilterEventsByNode(2) = %v, want AddEdge+RemoveNode", byNode)
	}
}

func TestSortEventsStable(t *testing.T) {
	evs := []Event{
		{Time: 5, Kind: AddNode, Node: 1},
		{Time: 5, Kind: AddEdge, Node: 1, Other: 2},
		{Time: 1, Kind: AddNode, Node: 9},
	}
	SortEvents(evs)
	if !EventsSorted(evs) {
		t.Fatal("not sorted")
	}
	if evs[1].Kind != AddNode || evs[2].Kind != AddEdge {
		t.Fatal("equal timestamps must preserve original order (AddNode before AddEdge)")
	}
}

// randomEvents builds a plausible chronological event stream for property
// tests: structural and attribute events over a small id space.
func randomEvents(rng *rand.Rand, n int) []Event {
	evs := make([]Event, 0, n)
	for i := 0; i < n; i++ {
		e := Event{Time: temporal.Time(i)}
		u := NodeID(rng.Intn(20))
		v := NodeID(rng.Intn(20))
		switch rng.Intn(8) {
		case 0:
			e.Kind, e.Node = AddNode, u
		case 1:
			e.Kind, e.Node = RemoveNode, u
		case 2, 3:
			e.Kind, e.Node, e.Other = AddEdge, u, v
		case 4:
			e.Kind, e.Node, e.Other = RemoveEdge, u, v
		case 5:
			e.Kind, e.Node, e.Key, e.Value = SetNodeAttr, u, "k", string(rune('a'+rng.Intn(4)))
		case 6:
			e.Kind, e.Node, e.Other, e.Key, e.Value = SetEdgeAttr, u, v, "w", string(rune('0'+rng.Intn(4)))
		case 7:
			e.Kind, e.Node, e.Key = DelNodeAttr, u, "k"
		}
		evs = append(evs, e)
	}
	return evs
}

func TestPropertyMirrorConsistency(t *testing.T) {
	// Invariant: after any event sequence every Out edge has a matching
	// mirror entry on the other endpoint and vice versa.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, err := FromEvents(randomEvents(rng, 300))
		if err != nil {
			return false
		}
		consistent := true
		g.Range(func(ns *NodeState) bool {
			for k := range ns.Edges {
				other := g.Node(k.Other)
				if other == nil {
					consistent = false
					return false
				}
				if _, ok := other.Edges[EdgeKey{Other: ns.ID, Out: !k.Out}]; !ok {
					consistent = false
					return false
				}
			}
			return true
		})
		return consistent
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPropertyCloneEqual(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, err := FromEvents(randomEvents(rng, 200))
		if err != nil {
			return false
		}
		return g.Equal(g.Clone())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
