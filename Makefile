# Tier-1 CI gate for the Historical Graph Store. `make ci` is the
# documented pre-merge check (ROADMAP.md): vet, build, fast tests (with
# and without the race detector), and formatting. `make test-full`
# additionally runs the ~30s bench smoke tests that -short skips.

GO ?= go

# Fail `make cover` when total -short statement coverage drops below
# this floor (the tree sits around 69%; the floor leaves headroom for
# incidental drift, not for untested subsystems). The replicated
# kvstore and the placement ring carry their own floors — their tests
# are the consistency acceptance surface, so a regression there must
# not hide inside an unchanged total.
COVER_FLOOR ?= 65.0
KVSTORE_FLOOR ?= 78.0
RING_FLOOR ?= 82.0

.PHONY: ci vet build test test-race test-full cover fuzz fmt-check fmt docs-check bench bench-cache bench-tiering bench-reopen bench-parallel bench-serve bench-rebalance bench-quorum profile

ci: vet build test test-race fmt-check

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test -short ./...

test-race:
	$(GO) test -race -short ./...

test-full:
	$(GO) test ./...

# Total -short statement coverage with hard floors (total plus the
# kvstore/ring per-package floors, scripts/coverfloor); prints the
# per-function summary so CI logs show what regressed.
cover:
	$(GO) test -short -coverprofile=coverage.out ./...
	@$(GO) tool cover -func=coverage.out | tail -20
	$(GO) run ./scripts/coverfloor -profile coverage.out -total $(COVER_FLOOR) \
		-pkg hgs/internal/kvstore=$(KVSTORE_FLOOR) -pkg hgs/internal/ring=$(RING_FLOOR)

# Brief native fuzzing of the decode and placement invariants (the same
# targets `make test` replays against the committed corpora). CI runs
# this on every push; the nightly chaos job fuzzes longer.
FUZZTIME ?= 10s
fuzz:
	$(GO) test ./internal/codec/ -fuzz FuzzUnframe -fuzztime $(FUZZTIME) -run '^$$'
	$(GO) test ./internal/codec/ -fuzz FuzzDecodeDelta -fuzztime $(FUZZTIME) -run '^$$'
	$(GO) test ./internal/ring/ -fuzz FuzzRingLookup -fuzztime $(FUZZTIME) -run '^$$'

fmt-check:
	@files="$$(gofmt -l .)"; \
	if [ -n "$$files" ]; then \
		echo "gofmt needed on:"; echo "$$files"; exit 1; \
	fi

fmt:
	gofmt -w .

# Docs gate: intra-repo markdown links must resolve and every package
# must carry a package doc comment (scripts/checkdocs).
docs-check:
	$(GO) vet ./scripts/...
	$(GO) run ./scripts/checkdocs

bench:
	$(GO) run ./cmd/hgs-bench

# Cache v2 passes: cold / warm / legacy-v1 / disabled, with the
# negative-hit ratio on sparse probes and the eviction-quality notes
# (KV ops, round-trips, simulated wait per pass).
bench-cache:
	$(GO) run ./cmd/hgs-bench -run cache

# Tiered backend: sweep the hot-tier budget, report the per-tier read
# split and simulated wait (Store.Stats proves hot hits skip the disk).
bench-tiering:
	$(GO) run ./cmd/hgs-bench -run tiering

# Tiered backend restart: post-reopen recent-timespan probes with hot
# tier warm-up off vs on (hit ratio and simulated wait per pass).
bench-reopen:
	$(GO) run ./cmd/hgs-bench -run reopen

# Parallel materialization: warm-cache snapshot retrieval swept over
# MaterializeWorkers, with speedup, allocs/op and the byte-identity
# check (set HGS_SCALE>=2 for a meaningful speedup axis on multi-core).
bench-parallel:
	$(GO) run ./cmd/hgs-bench -run parallel

# HTTP serve path: an in-process hgs-server driven closed-loop by 12
# concurrent clients over a weighted query mix; reports achieved QPS,
# latency quantiles, 429 shed rate and 504 deadline-miss rate (JSON via
# -json feeds scripts/perfdiff like every other experiment).
bench-serve:
	$(GO) run ./cmd/hgs-bench -run serve

# Node lifecycle: query latency during a live node-add (partitions
# streamed under the rebalance rate limit), rows moved vs the
# consistent-hashing movement bound, and the degraded-read rate with a
# replica down — every phase byte-identical to the healthy baseline.
bench-rebalance:
	$(GO) run ./cmd/hgs-bench -run rebalance

# Consistency: quorum-read amplification and latency vs the R=1
# baseline (healthy, one replica down, concurrent anti-entropy sweep),
# and write-all vs W=1 latency with a slow replica — read phases must
# answer bit-identically and repair nothing while healthy.
bench-quorum:
	$(GO) run ./cmd/hgs-bench -run quorum

# CPU and allocation profiles over the Figure 11 bench workload
# (snapshot retrieval with parallel fetch — the read hot path). Inspect
# with `go tool pprof cpu.prof` / `go tool pprof -sample_index=alloc_space alloc.prof`;
# a live store serves the same profiles on /debug/pprof/ (Options.DebugAddr).
profile:
	$(GO) test -run '^$$' -bench BenchmarkFig11SnapshotParallelFetch -benchtime 1x \
		-cpuprofile cpu.prof -memprofile alloc.prof .
	@echo "wrote cpu.prof and alloc.prof — e.g.: go tool pprof -top cpu.prof"
