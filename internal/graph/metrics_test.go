package graph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// triangle returns the 3-cycle on {1,2,3}.
func triangle() *Graph {
	g := New()
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(1, 3)
	return g
}

func TestDensity(t *testing.T) {
	g := triangle()
	if d := g.Density(); math.Abs(d-1.0) > 1e-12 {
		t.Fatalf("triangle density = %v, want 1", d)
	}
	g.AddNode(4)
	// 3 edges, 4 nodes: 2*3/(4*3) = 0.5
	if d := g.Density(); math.Abs(d-0.5) > 1e-12 {
		t.Fatalf("density = %v, want 0.5", d)
	}
	if New().Density() != 0 {
		t.Fatal("empty graph density should be 0")
	}
}

func TestLocalClusteringCoefficient(t *testing.T) {
	g := triangle()
	if c := g.LocalClusteringCoefficient(1); math.Abs(c-1.0) > 1e-12 {
		t.Fatalf("LCC in triangle = %v, want 1", c)
	}
	// Star: center 0 with leaves 1..4, no leaf-leaf edges -> LCC(0)=0.
	s := New()
	for i := NodeID(1); i <= 4; i++ {
		s.AddEdge(0, i)
	}
	if c := s.LocalClusteringCoefficient(0); c != 0 {
		t.Fatalf("star center LCC = %v, want 0", c)
	}
	s.AddEdge(1, 2)
	// One of C(4,2)=6 pairs connected.
	if c := s.LocalClusteringCoefficient(0); math.Abs(c-1.0/6.0) > 1e-12 {
		t.Fatalf("LCC = %v, want 1/6", c)
	}
	if s.LocalClusteringCoefficient(99) != 0 {
		t.Fatal("missing node LCC should be 0")
	}
}

func TestTriangleCount(t *testing.T) {
	g := triangle()
	if n := g.TriangleCount(); n != 1 {
		t.Fatalf("TriangleCount = %d, want 1", n)
	}
	g.AddEdge(2, 4)
	g.AddEdge(3, 4)
	if n := g.TriangleCount(); n != 2 {
		t.Fatalf("TriangleCount = %d, want 2", n)
	}
}

func TestPageRankUniformOnCycle(t *testing.T) {
	g := New()
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(3, 1)
	pr := g.PageRank(0.85, 30)
	for id, r := range pr {
		if math.Abs(r-1.0/3.0) > 1e-6 {
			t.Fatalf("cycle PageRank[%d] = %v, want 1/3", id, r)
		}
	}
	// Sum must be ~1 even with dangling nodes.
	g.AddEdge(4, 1) // 4 has out-degree 1; add dangling node 5
	g.AddNode(5)
	sum := 0.0
	for _, r := range g.PageRank(0.85, 30) {
		sum += r
	}
	if math.Abs(sum-1.0) > 1e-6 {
		t.Fatalf("PageRank sum = %v, want 1", sum)
	}
}

func TestBFSAndShortestPath(t *testing.T) {
	g := New()
	for _, e := range [][2]NodeID{{1, 2}, {2, 3}, {3, 4}, {1, 5}} {
		g.AddEdge(e[0], e[1])
	}
	d := g.BFSDistances(1)
	if d[4] != 3 || d[5] != 1 || d[1] != 0 {
		t.Fatalf("BFS distances wrong: %v", d)
	}
	if l, ok := g.ShortestPathLength(1, 4); !ok || l != 3 {
		t.Fatalf("ShortestPathLength(1,4) = %d,%v want 3,true", l, ok)
	}
	g.AddNode(100)
	if _, ok := g.ShortestPathLength(1, 100); ok {
		t.Fatal("unreachable node should report no path")
	}
}

func TestConnectedComponents(t *testing.T) {
	g := New()
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(10, 11)
	g.AddNode(20)
	comps := g.ConnectedComponents()
	if len(comps) != 3 {
		t.Fatalf("got %d components, want 3", len(comps))
	}
	if len(comps[0]) != 3 || comps[0][0] != 1 {
		t.Fatalf("largest component wrong: %v", comps[0])
	}
	if len(comps[2]) != 1 || comps[2][0] != 20 {
		t.Fatalf("singleton component wrong: %v", comps[2])
	}
}

func TestApproxDiameterOnPath(t *testing.T) {
	g := New()
	for i := NodeID(0); i < 9; i++ {
		g.AddEdge(i, i+1)
	}
	if d := g.ApproxDiameter(); d != 9 {
		t.Fatalf("path diameter = %d, want 9", d)
	}
}

func TestAttrMetrics(t *testing.T) {
	g := New()
	for i := NodeID(0); i < 10; i++ {
		g.AddNode(i)
		if i < 4 {
			g.Apply(Event{Kind: SetNodeAttr, Node: i, Key: "EntityType", Value: "Author"})
		}
	}
	if n := g.AttrCount("EntityType", "Author"); n != 4 {
		t.Fatalf("AttrCount = %d, want 4", n)
	}
	if f := g.AttrFraction("EntityType", "Author"); math.Abs(f-0.4) > 1e-12 {
		t.Fatalf("AttrFraction = %v, want 0.4", f)
	}
}

func TestDegreeMetrics(t *testing.T) {
	g := New()
	g.AddEdge(1, 2)
	g.AddEdge(1, 3)
	g.AddEdge(1, 4)
	g.AddEdge(2, 3)
	top := g.DegreeCentralityTop(2)
	if top[0] != 1 {
		t.Fatalf("top degree node = %d, want 1", top[0])
	}
	h := g.DegreeHistogram()
	if h[3] != 1 || h[2] != 2 || h[1] != 1 {
		t.Fatalf("histogram wrong: %v", h)
	}
	if a := g.AvgDegree(); math.Abs(a-2.0) > 1e-12 {
		t.Fatalf("AvgDegree = %v, want 2", a)
	}
}

func TestConductance(t *testing.T) {
	// Two triangles joined by a single edge: cut {1,2,3} has conductance
	// 1/min(7,7)=1/7.
	g := triangle()
	g.AddEdge(4, 5)
	g.AddEdge(5, 6)
	g.AddEdge(4, 6)
	g.AddEdge(3, 4)
	c := g.Conductance([]NodeID{1, 2, 3})
	if math.Abs(c-1.0/7.0) > 1e-12 {
		t.Fatalf("conductance = %v, want 1/7", c)
	}
}

func TestPropertyMetricBounds(t *testing.T) {
	// Invariants over random graphs: density and LCC in [0,1], components
	// partition the node set, triangle count consistent with average LCC
	// being positive iff triangles exist.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := New()
		for i := 0; i < 200; i++ {
			u := NodeID(rng.Intn(25))
			v := NodeID(rng.Intn(25))
			switch rng.Intn(4) {
			case 0:
				g.AddNode(u)
			case 1, 2:
				g.AddEdge(u, v)
			case 3:
				g.RemoveEdge(u, v)
			}
		}
		d := g.Density()
		if d < 0 || d > 1.0000001 {
			return false
		}
		total := 0
		for _, comp := range g.ConnectedComponents() {
			total += len(comp)
		}
		if total != g.NumNodes() {
			return false
		}
		for _, id := range g.NodeIDs() {
			c := g.LocalClusteringCoefficient(id)
			if c < 0 || c > 1.0000001 {
				return false
			}
		}
		hasTriangles := g.TriangleCount() > 0
		hasCC := g.AverageClusteringCoefficient() > 0
		return hasTriangles == hasCC
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestPropertyBFSDistanceMonotone(t *testing.T) {
	// Neighbors' BFS distances differ by at most 1.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := New()
		for i := 0; i < 150; i++ {
			g.AddEdge(NodeID(rng.Intn(20)), NodeID(rng.Intn(20)))
		}
		ids := g.NodeIDs()
		if len(ids) == 0 {
			return true
		}
		root := ids[rng.Intn(len(ids))]
		dist := g.BFSDistances(root)
		for id, d := range dist {
			for _, nb := range g.Neighbors(id) {
				nd, ok := dist[nb]
				if !ok {
					return false // neighbor of reachable node must be reachable
				}
				if nd > d+1 || d > nd+1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestSymmetrize(t *testing.T) {
	g := New()
	// Hand-assemble a one-sided edge: node 1 knows about (1->2), node 2
	// does not.
	n1 := NewNodeState(1)
	n1.Edges = map[EdgeKey]*EdgeState{{Other: 2, Out: true}: {Attrs: Attrs{"w": "5"}}}
	g.PutNode(n1)
	g.PutNode(NewNodeState(2))
	g.Symmetrize()
	mirror := g.Node(2).Edges[EdgeKey{Other: 1, Out: false}]
	if mirror == nil || mirror.Attrs["w"] != "5" {
		t.Fatal("symmetrize did not create the mirror entry")
	}
	// Edges to absent endpoints stay one-sided.
	n3 := NewNodeState(3)
	n3.Edges = map[EdgeKey]*EdgeState{{Other: 99, Out: true}: {}}
	g.PutNode(n3)
	g.Symmetrize()
	if g.Has(99) {
		t.Fatal("symmetrize must not create nodes")
	}
}
