package disklog

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"hgs/internal/backend"
)

func open(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestBasicOps(t *testing.T) {
	s := open(t, t.TempDir(), Options{})
	defer s.Close()

	s.Put("deltas", "p1", "b", []byte("two"))
	s.Put("deltas", "p1", "a", []byte("one"))
	s.Put("deltas", "p2", "a", []byte("other"))

	if v, ok := s.Get("deltas", "p1", "a"); !ok || string(v) != "one" {
		t.Fatalf("Get = %q,%v", v, ok)
	}
	if _, ok := s.Get("deltas", "p1", "zz"); ok {
		t.Fatal("missing ckey found")
	}
	if _, ok := s.Get("deltas", "nope", "a"); ok {
		t.Fatal("missing partition found")
	}

	// Overwrite.
	s.Put("deltas", "p1", "a", []byte("ONE!"))
	if v, _ := s.Get("deltas", "p1", "a"); string(v) != "ONE!" {
		t.Fatalf("overwrite: %q", v)
	}

	rows := s.ScanPrefix("deltas", "p1", "")
	if len(rows) != 2 || rows[0].CKey != "a" || rows[1].CKey != "b" {
		t.Fatalf("scan: %+v", rows)
	}

	if !s.Delete("deltas", "p1", "a") {
		t.Fatal("delete existing = false")
	}
	if s.Delete("deltas", "p1", "a") {
		t.Fatal("delete missing = true")
	}
	if got := s.PartitionKeys("deltas"); len(got) != 2 || got[0] != "p1" || got[1] != "p2" {
		t.Fatalf("partition keys: %v", got)
	}
	s.DropPartition("deltas", "p1")
	if got := s.PartitionKeys("deltas"); len(got) != 1 || got[0] != "p2" {
		t.Fatalf("partition keys after drop: %v", got)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
}

func TestGetReturnsCopy(t *testing.T) {
	s := open(t, t.TempDir(), Options{})
	defer s.Close()
	s.Put("t", "p", "k", []byte("abc"))
	v, _ := s.Get("t", "p", "k")
	v[0] = 'X'
	again, _ := s.Get("t", "p", "k")
	if string(again) != "abc" {
		t.Fatal("stored value mutated through returned slice")
	}
}

func TestStoredBytesMatchesMemtableSemantics(t *testing.T) {
	s := open(t, t.TempDir(), Options{})
	defer s.Close()
	s.Put("t", "p", "k1", []byte("aaaa"))
	s.Put("t", "p", "k2", []byte("bbbb"))
	want := int64(2 * (2 + 4)) // len(ckey)+len(value) per row
	if got := s.StoredBytes(); got != want {
		t.Fatalf("stored = %d, want %d", got, want)
	}
	s.DropPartition("t", "p")
	if got := s.StoredBytes(); got != 0 {
		t.Fatalf("stored after drop = %d", got)
	}
}

func TestReopenRecoversState(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{})
	for i := 0; i < 100; i++ {
		s.Put("t", fmt.Sprintf("p%d", i%4), fmt.Sprintf("k%03d", i), []byte(fmt.Sprintf("val-%d", i)))
	}
	s.Delete("t", "p0", "k000")
	s.DropPartition("t", "p3")
	wantStored := s.StoredBytes()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r := open(t, dir, Options{})
	defer r.Close()
	if got := r.StoredBytes(); got != wantStored {
		t.Fatalf("stored after reopen = %d, want %d", got, wantStored)
	}
	if _, ok := r.Get("t", "p0", "k000"); ok {
		t.Fatal("deleted row resurrected")
	}
	if rows := r.ScanPrefix("t", "p3", ""); len(rows) != 0 {
		t.Fatal("dropped partition resurrected")
	}
	if v, ok := r.Get("t", "p1", "k001"); !ok || string(v) != "val-1" {
		t.Fatalf("row lost across reopen: %q,%v", v, ok)
	}
	// Reopened store accepts writes.
	r.Put("t", "p0", "new", []byte("post-reopen"))
	if v, _ := r.Get("t", "p0", "new"); string(v) != "post-reopen" {
		t.Fatal("write after reopen failed")
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{SegmentBytes: 256, DisableAutoCompact: true})
	for i := 0; i < 50; i++ {
		s.Put("t", "p", fmt.Sprintf("k%03d", i), bytes.Repeat([]byte{'x'}, 32))
	}
	if s.Segments() < 2 {
		t.Fatalf("expected rotation, got %d segments", s.Segments())
	}
	s.Close()

	r := open(t, dir, Options{SegmentBytes: 256, DisableAutoCompact: true})
	defer r.Close()
	for i := 0; i < 50; i++ {
		if v, ok := r.Get("t", "p", fmt.Sprintf("k%03d", i)); !ok || len(v) != 32 {
			t.Fatalf("row k%03d lost after multi-segment reopen", i)
		}
	}
}

// TestTornFinalRecordRecovered is the crash test: a write cut off
// mid-record (as a power loss would) must be detected by the CRC and
// truncated away, keeping every earlier record.
func TestTornFinalRecordRecovered(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{})
	for i := 0; i < 10; i++ {
		s.Put("t", "p", fmt.Sprintf("k%d", i), []byte(fmt.Sprintf("value-%d", i)))
	}
	s.Close()

	// Tear the final record: chop a few bytes off the segment tail.
	segs, err := filepath.Glob(filepath.Join(dir, "seg-*.log"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments: %v", err)
	}
	last := segs[len(segs)-1]
	st, _ := os.Stat(last)
	if err := os.Truncate(last, st.Size()-3); err != nil {
		t.Fatal(err)
	}

	r := open(t, dir, Options{})
	defer r.Close()
	for i := 0; i < 9; i++ {
		if v, ok := r.Get("t", "p", fmt.Sprintf("k%d", i)); !ok || string(v) != fmt.Sprintf("value-%d", i) {
			t.Fatalf("record %d lost by torn-tail recovery: %q,%v", i, v, ok)
		}
	}
	if _, ok := r.Get("t", "p", "k9"); ok {
		t.Fatal("torn record should be gone")
	}
	// The engine keeps working after recovery and the repair sticks.
	r.Put("t", "p", "k9", []byte("rewritten"))
	r.Close()
	rr := open(t, dir, Options{})
	defer rr.Close()
	if v, ok := rr.Get("t", "p", "k9"); !ok || string(v) != "rewritten" {
		t.Fatalf("post-recovery write lost: %q,%v", v, ok)
	}
}

// TestGarbageTailRecovered covers corruption rather than truncation:
// flipped bits in the final record fail the checksum.
func TestGarbageTailRecovered(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{})
	s.Put("t", "p", "good", []byte("kept"))
	s.Put("t", "p", "bad", []byte("mangled"))
	s.Close()

	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.log"))
	last := segs[len(segs)-1]
	f, err := os.OpenFile(last, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	st, _ := f.Stat()
	if _, err := f.WriteAt([]byte{0xff, 0xff, 0xff}, st.Size()-5); err != nil {
		t.Fatal(err)
	}
	f.Close()

	r := open(t, dir, Options{})
	defer r.Close()
	if v, ok := r.Get("t", "p", "good"); !ok || string(v) != "kept" {
		t.Fatalf("good record lost: %q,%v", v, ok)
	}
	if _, ok := r.Get("t", "p", "bad"); ok {
		t.Fatal("corrupt record survived")
	}
}

// TestUndecodableRecordFailsOpen: a CRC-valid record that does not
// decode (unknown op — version skew or a writer bug, never a torn
// write) must fail the open rather than be truncated away with every
// acknowledged record after it.
func TestUndecodableRecordFailsOpen(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{})
	s.Put("t", "p", "k", []byte("v"))
	s.Close()

	payload := []byte{0x7f, 0x01, 't', 0x01, 'p'} // op 0x7f is unknown
	rec := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(rec[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(rec[4:8], crc32.ChecksumIEEE(payload))
	copy(rec[8:], payload)
	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.log"))
	f, err := os.OpenFile(segs[len(segs)-1], os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(rec); err != nil {
		t.Fatal(err)
	}
	f.Close()

	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("CRC-valid undecodable record must fail open, not truncate")
	}
}

func TestCorruptMiddleSegmentFailsOpen(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{SegmentBytes: 128, DisableAutoCompact: true})
	for i := 0; i < 30; i++ {
		s.Put("t", "p", fmt.Sprintf("k%02d", i), bytes.Repeat([]byte{'y'}, 24))
	}
	if s.Segments() < 3 {
		t.Fatalf("need >=3 segments, got %d", s.Segments())
	}
	s.Close()

	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.log"))
	if err := os.Truncate(segs[0], 5); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("corruption in a non-final segment must fail open")
	}
}

func TestCompactionDropsOverwrites(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{DisableAutoCompact: true})
	payload := bytes.Repeat([]byte{'z'}, 100)
	for round := 0; round < 20; round++ {
		for i := 0; i < 10; i++ {
			s.Put("t", "p", fmt.Sprintf("k%d", i), payload)
		}
	}
	s.Delete("t", "p", "k9")
	if s.DeadBytes() == 0 {
		t.Fatal("overwrites should leave dead bytes")
	}
	sizeBefore := diskUsage(t, dir)
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if s.DeadBytes() != 0 {
		t.Fatalf("dead bytes after compact = %d", s.DeadBytes())
	}
	if after := diskUsage(t, dir); after >= sizeBefore {
		t.Fatalf("compaction did not shrink disk: %d -> %d", sizeBefore, after)
	}
	for i := 0; i < 9; i++ {
		if v, ok := s.Get("t", "p", fmt.Sprintf("k%d", i)); !ok || !bytes.Equal(v, payload) {
			t.Fatalf("row k%d damaged by compaction", i)
		}
	}
	if _, ok := s.Get("t", "p", "k9"); ok {
		t.Fatal("deleted row resurrected by compaction")
	}
	s.Close()

	// Compacted state must survive reopen.
	r := open(t, dir, Options{})
	defer r.Close()
	for i := 0; i < 9; i++ {
		if v, ok := r.Get("t", "p", fmt.Sprintf("k%d", i)); !ok || !bytes.Equal(v, payload) {
			t.Fatalf("row k%d lost after compact+reopen", i)
		}
	}
}

func TestAutoCompactionTriggers(t *testing.T) {
	s := open(t, t.TempDir(), Options{CompactMinDead: 512})
	defer s.Close()
	payload := bytes.Repeat([]byte{'w'}, 64)
	for round := 0; round < 100; round++ {
		s.Put("t", "p", "hot", payload)
	}
	// One hot key overwritten 100x: dead ≫ live, so the trigger must
	// have fired at least once and kept the log near its live size.
	if dead := s.DeadBytes(); dead > 2*s.StoredBytes()+1024 {
		t.Fatalf("auto-compaction never ran: dead=%d", dead)
	}
	if v, ok := s.Get("t", "p", "hot"); !ok || !bytes.Equal(v, payload) {
		t.Fatal("row damaged by auto-compaction")
	}
}

func TestFactory(t *testing.T) {
	dir := t.TempDir()
	f := Factory(dir, Options{})
	var engines []backend.Backend
	for i := 0; i < 3; i++ {
		be, err := f(i)
		if err != nil {
			t.Fatal(err)
		}
		engines = append(engines, be)
		be.Put("t", "p", "k", []byte{byte(i)})
	}
	for i, be := range engines {
		if v, ok := be.Get("t", "p", "k"); !ok || v[0] != byte(i) {
			t.Fatalf("node %d isolation broken", i)
		}
		be.Close()
	}
	for i := 0; i < 3; i++ {
		if _, err := os.Stat(filepath.Join(dir, fmt.Sprintf("node-%03d", i))); err != nil {
			t.Fatalf("node dir missing: %v", err)
		}
	}
}

func diskUsage(t *testing.T, dir string) int64 {
	t.Helper()
	var total int64
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		info, err := e.Info()
		if err != nil {
			t.Fatal(err)
		}
		total += info.Size()
	}
	return total
}

func TestIterNewestOrderAndStop(t *testing.T) {
	s := open(t, t.TempDir(), Options{SegmentBytes: 256})
	defer s.Close()
	for i := 0; i < 30; i++ {
		s.Put("deltas", fmt.Sprintf("p%d", i%3), fmt.Sprintf("c%03d", i), []byte(fmt.Sprintf("v%03d", i)))
	}
	s.Put("deltas", "p0", "c003", []byte("rewritten")) // c003's latest record is now the newest
	s.Delete("deltas", "p1", "c028")                   // tombstoned rows must never surface

	var got []string
	err := s.IterNewest(func(table, pkey, ckey string, value []byte) bool {
		got = append(got, ckey+"="+string(value))
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 29 {
		t.Fatalf("iterated %d rows, want 29 (30 puts, 1 deleted)", len(got))
	}
	if got[0] != "c003=rewritten" {
		t.Fatalf("newest row first, got %q", got[0])
	}
	if got[1] != "c029=v029" || got[2] != "c027=v027" {
		t.Fatalf("reverse append order broken: %v", got[1:3])
	}
	for _, g := range got {
		if g == "c028=v028" {
			t.Fatal("deleted row surfaced in IterNewest")
		}
	}

	// Early stop: the callback's budget bounds the walk.
	var first []string
	err = s.IterNewest(func(table, pkey, ckey string, value []byte) bool {
		first = append(first, ckey)
		return len(first) < 5
	})
	if err != nil || len(first) != 5 {
		t.Fatalf("early stop walked %d rows (err %v), want 5", len(first), err)
	}
}

func TestMergeSmallCoalescesTailSegments(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{SegmentBytes: 128, DisableAutoCompact: true})
	defer s.Close()
	for i := 0; i < 40; i++ {
		s.Put("deltas", "p0", fmt.Sprintf("c%03d", i), []byte(fmt.Sprintf("value-%03d", i)))
	}
	// Overwrites strand dead records inside the small segments.
	for i := 0; i < 10; i++ {
		s.Put("deltas", "p0", fmt.Sprintf("c%03d", i), []byte(fmt.Sprintf("fresh-%03d", i)))
	}
	before := s.Segments()
	if before < 6 {
		t.Fatalf("precondition: want many small segments, got %d", before)
	}
	deadBefore := s.DeadBytes()
	n, err := s.MergeSmall(1<<20, 2)
	if err != nil {
		t.Fatal(err)
	}
	if n < before-1 {
		t.Fatalf("merged %d of %d segments", n, before)
	}
	if s.Segments() >= before {
		t.Fatalf("segment count did not shrink: %d -> %d", before, s.Segments())
	}
	if s.DeadBytes() >= deadBefore {
		t.Fatalf("merge reclaimed nothing: dead %d -> %d", deadBefore, s.DeadBytes())
	}
	for i := 0; i < 40; i++ {
		want := fmt.Sprintf("value-%03d", i)
		if i < 10 {
			want = fmt.Sprintf("fresh-%03d", i)
		}
		if v, ok := s.Get("deltas", "p0", fmt.Sprintf("c%03d", i)); !ok || string(v) != want {
			t.Fatalf("row %d wrong after merge: %q,%v", i, v, ok)
		}
	}
	// The merged log must replay to the same state.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r := open(t, dir, Options{SegmentBytes: 128, DisableAutoCompact: true})
	defer r.Close()
	for i := 0; i < 40; i++ {
		want := fmt.Sprintf("value-%03d", i)
		if i < 10 {
			want = fmt.Sprintf("fresh-%03d", i)
		}
		if v, ok := r.Get("deltas", "p0", fmt.Sprintf("c%03d", i)); !ok || string(v) != want {
			t.Fatalf("row %d wrong after merge+reopen: %q,%v", i, v, ok)
		}
	}
}

func TestMergeSmallPreservesTombstones(t *testing.T) {
	// A delete whose tombstone sits in a merged tail segment may kill a
	// row recorded in an older, untouched segment. Dropping the
	// tombstone during the merge would resurrect that row on replay.
	dir := t.TempDir()
	s := open(t, dir, Options{SegmentBytes: 128, DisableAutoCompact: true})
	// An oversized first segment stays out of the mergeable tail.
	s.Put("deltas", "p0", "victim", bytes.Repeat([]byte("x"), 300))
	s.Put("deltas", "dropme", "a", bytes.Repeat([]byte("y"), 300))
	for i := 0; i < 30; i++ {
		s.Put("deltas", "p1", fmt.Sprintf("c%03d", i), []byte(fmt.Sprintf("filler-%03d", i)))
	}
	firstID := s.segs[0].id
	s.Delete("deltas", "p0", "victim")
	s.DropPartition("deltas", "dropme")
	if _, err := s.MergeSmall(256, 2); err != nil {
		t.Fatal(err)
	}
	if got := s.segs[0].id; got != firstID {
		t.Fatalf("merge touched the old segment (first id %d -> %d)", firstID, got)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r := open(t, dir, Options{SegmentBytes: 128, DisableAutoCompact: true})
	defer r.Close()
	if _, ok := r.Get("deltas", "p0", "victim"); ok {
		t.Fatal("merge dropped a tombstone: deleted row resurrected on replay")
	}
	if r.HasPartition("deltas", "dropme") {
		t.Fatal("merge dropped a drop record: partition resurrected on replay")
	}
	for i := 0; i < 30; i++ {
		if _, ok := r.Get("deltas", "p1", fmt.Sprintf("c%03d", i)); !ok {
			t.Fatalf("filler row %d lost in merge", i)
		}
	}
}
