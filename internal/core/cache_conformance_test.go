package core

import (
	"reflect"
	"testing"

	"hgs/internal/graph"
	"hgs/internal/temporal"
)

// TestCacheConformance asserts the decoded-delta cache is invisible to
// query semantics: the same retrievals over the same stored index return
// identical results with the cache enabled (cold and warm passes), with
// a tiny budget that forces constant eviction, and with caching
// disabled — which also pits the batched read path against the same
// plans re-run over fresh handles.
func TestCacheConformance(t *testing.T) {
	events := genHistory(7, 400, 40)
	base := smallConfig()
	built := buildSmall(t, base, events)
	cluster := built.Store()

	cfgOn := base
	cfgOff := base
	cfgOff.CacheBytes = -1
	cfgTiny := base
	cfgTiny.CacheBytes = 2048 // a handful of entries: eviction on every query
	handles := map[string]*TGI{
		"cache-on":   New(cluster, cfgOn),
		"cache-off":  New(cluster, cfgOff),
		"cache-tiny": New(cluster, cfgTiny),
	}

	probes := []temporal.Time{0, 255, 1200, 2405, 4000}
	ids := []graph.NodeID{0, 5, 11, 23, 39}
	lo, hi := events[0].Time, events[len(events)-1].Time+1

	type answers struct {
		snaps     []*graph.Graph
		nodes     []*graph.NodeState
		histories []*NodeHistory
		khops     []*graph.Graph
	}
	collect := func(tgi *TGI) answers {
		var a answers
		for _, tt := range probes {
			g, err := tgi.GetSnapshot(tt, nil)
			if err != nil {
				t.Fatalf("GetSnapshot(%d): %v", tt, err)
			}
			a.snaps = append(a.snaps, g)
		}
		for _, id := range ids {
			ns, err := tgi.GetNodeAt(id, probes[2], nil)
			if err != nil {
				t.Fatalf("GetNodeAt(%d): %v", id, err)
			}
			a.nodes = append(a.nodes, ns)
			h, err := tgi.GetNodeHistory(id, lo, hi, nil)
			if err != nil {
				t.Fatalf("GetNodeHistory(%d): %v", id, err)
			}
			a.histories = append(a.histories, h)
			kg, err := tgi.GetKHopNeighborhood(id, 2, probes[3], nil)
			if err != nil {
				t.Fatalf("GetKHopNeighborhood(%d): %v", id, err)
			}
			a.khops = append(a.khops, kg)
		}
		return a
	}
	same := func(name string, want, got answers) {
		t.Helper()
		for i := range want.snaps {
			if !want.snaps[i].Equal(got.snaps[i]) {
				t.Fatalf("%s: snapshot %d differs", name, i)
			}
		}
		for i := range want.nodes {
			if !nodeStatesEqual(want.nodes[i], got.nodes[i]) {
				t.Fatalf("%s: node state %d differs", name, i)
			}
		}
		for i := range want.histories {
			if !nodeStatesEqual(want.histories[i].Initial, got.histories[i].Initial) ||
				!reflect.DeepEqual(want.histories[i].Events, got.histories[i].Events) {
				t.Fatalf("%s: node history %d differs", name, i)
			}
		}
		for i := range want.khops {
			if !want.khops[i].Equal(got.khops[i]) {
				t.Fatalf("%s: k-hop %d differs", name, i)
			}
		}
	}

	// Reference answers come from the cache-disabled handle.
	want := collect(handles["cache-off"])
	for name, tgi := range handles {
		same(name+"/cold", want, collect(tgi))
		same(name+"/warm", want, collect(tgi)) // cache (where present) now hot
	}

	if hits := handles["cache-on"].CacheStats().Hits; hits == 0 {
		t.Fatal("warm cache-on pass recorded no cache hits")
	}
	if ev := handles["cache-tiny"].CacheStats().Evictions; ev == 0 {
		t.Fatal("tiny cache recorded no evictions")
	}
	if st := handles["cache-off"].CacheStats(); st.Hits != 0 || st.Misses != 0 || st.Entries != 0 {
		t.Fatalf("cache-off handle recorded cache traffic: %+v", st)
	}
}

// TestWarmCacheReducesKVOps is the acceptance bar of the fetch-layer
// refactor: with a warm cache, repeated Snapshot and GetNodeAt queries
// issue at least 2× fewer KV operations than the cold pass.
func TestWarmCacheReducesKVOps(t *testing.T) {
	events := genHistory(8, 400, 40)
	built := buildSmall(t, smallConfig(), events)
	cluster := built.Store()
	tgi := New(cluster, smallConfig())

	probes := []temporal.Time{255, 1200, 2405, 4000}
	ids := []graph.NodeID{0, 5, 11, 23, 39}
	pass := func() int64 {
		cluster.ResetMetrics()
		for _, tt := range probes {
			if _, err := tgi.GetSnapshot(tt, nil); err != nil {
				t.Fatal(err)
			}
		}
		for _, id := range ids {
			if _, err := tgi.GetNodeAt(id, probes[1], nil); err != nil {
				t.Fatal(err)
			}
		}
		return cluster.Metrics().Reads
	}
	cold := pass()
	warm := pass()
	if cold == 0 {
		t.Fatal("cold pass issued no KV reads")
	}
	// Since eventlist caching, a small fully-resident working set warms
	// to zero KV reads — the strongest possible reduction.
	if cold < 2*warm {
		t.Fatalf("cold pass %d KV reads, warm pass %d: want >= 2x reduction", cold, warm)
	}
	if hits := tgi.CacheStats().EventlistHits; hits == 0 {
		t.Fatalf("warm pass recorded no eventlist cache hits: %+v", tgi.CacheStats())
	}
}
