package core

import (
	"fmt"
	"math/rand"
	"testing"

	"hgs/internal/delta"
	"hgs/internal/graph"
	"hgs/internal/kvstore"
	"hgs/internal/partition"
	"hgs/internal/temporal"
)

// genHistory produces a chronological event stream with strictly
// increasing timestamps over a small node-id space: node/edge structure
// and attribute churn, including deletions.
func genHistory(seed int64, n, idSpace int) []graph.Event {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New() // shadow state so deletions target real entities
	evs := make([]graph.Event, 0, n)
	for i := 0; i < n; i++ {
		e := graph.Event{Time: temporal.Time(10 * (i + 1))} // strictly increasing
		u := graph.NodeID(rng.Intn(idSpace))
		v := graph.NodeID(rng.Intn(idSpace))
		switch r := rng.Intn(20); {
		case r < 6:
			e.Kind, e.Node = graph.AddNode, u
		case r < 12:
			e.Kind, e.Node, e.Other = graph.AddEdge, u, v
		case r < 14:
			e.Kind, e.Node, e.Other = graph.RemoveEdge, u, v
		case r < 15:
			e.Kind, e.Node = graph.RemoveNode, u
		case r < 18:
			e.Kind, e.Node, e.Key, e.Value = graph.SetNodeAttr, u, "label", fmt.Sprintf("L%d", rng.Intn(4))
		case r < 19:
			e.Kind, e.Node, e.Other, e.Key, e.Value = graph.SetEdgeAttr, u, v, "w", fmt.Sprintf("%d", rng.Intn(9))
		default:
			e.Kind, e.Node, e.Key = graph.DelNodeAttr, u, "label"
		}
		g.Apply(e)
		evs = append(evs, e)
	}
	return evs
}

// oracle replays the raw history up to and including time tt.
func oracle(events []graph.Event, tt temporal.Time) *graph.Graph {
	g := graph.New()
	for _, e := range events {
		if e.Time > tt {
			break
		}
		g.Apply(e)
	}
	return g
}

func smallConfig() Config {
	c := DefaultConfig()
	c.TimespanEvents = 120
	c.EventlistSize = 25
	c.Arity = 2
	c.HorizontalPartitions = 3
	c.PartitionSize = 8
	c.FetchClients = 3
	return c
}

func buildSmall(t *testing.T, cfg Config, events []graph.Event) *TGI {
	t.Helper()
	store := kvstore.NewCluster(kvstore.Config{Machines: 3, Replication: 1})
	tgi, err := Build(store, cfg, events)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return tgi
}

// configsUnderTest exercises the parameter space: partitioning strategy,
// replication, arity, compression.
func configsUnderTest() map[string]Config {
	base := smallConfig()
	random := base
	locality := base
	locality.Partitioning = partition.Locality
	replicated := locality
	replicated.Replicate1Hop = true
	compressed := base
	compressed.Compress = true
	arity3 := base
	arity3.Arity = 3
	bigLists := base
	bigLists.EventlistSize = 60
	monolithic := DeltaGraphConfig()
	monolithic.TimespanEvents = 120
	monolithic.EventlistSize = 25
	return map[string]Config{
		"random":     random,
		"locality":   locality,
		"replicated": replicated,
		"compressed": compressed,
		"arity3":     arity3,
		"bigLists":   bigLists,
		"deltagraph": monolithic,
	}
}

func TestSnapshotMatchesOracle(t *testing.T) {
	events := genHistory(1, 400, 40)
	for name, cfg := range configsUnderTest() {
		t.Run(name, func(t *testing.T) {
			tgi := buildSmall(t, cfg, events)
			// Probe: before history, at eventlist boundaries, mid-list,
			// at timespan boundaries, after history.
			probes := []temporal.Time{0, 5, 10, 250, 255, 1200, 1201, 1205, 2400, 2405, 3999, 4000, 9999}
			for _, tt := range probes {
				want := oracle(events, tt)
				got, err := tgi.GetSnapshot(tt, nil)
				if err != nil {
					t.Fatalf("GetSnapshot(%d): %v", tt, err)
				}
				if !got.Equal(want) {
					t.Fatalf("snapshot at %d differs: got %v want %v", tt, got, want)
				}
			}
		})
	}
}

func TestSnapshotEveryEventTime(t *testing.T) {
	// Exhaustive sweep on one config: snapshot at every event time and
	// between events.
	events := genHistory(2, 300, 25)
	tgi := buildSmall(t, smallConfig(), events)
	for i, e := range events {
		if i%7 != 0 { // sample to keep runtime sane
			continue
		}
		for _, tt := range []temporal.Time{e.Time, e.Time + 5} {
			want := oracle(events, tt)
			got, err := tgi.GetSnapshot(tt, nil)
			if err != nil {
				t.Fatalf("GetSnapshot(%d): %v", tt, err)
			}
			if !got.Equal(want) {
				t.Fatalf("snapshot at %d (event %d) differs", tt, i)
			}
		}
	}
}

func TestGetNodeAtMatchesOracle(t *testing.T) {
	events := genHistory(3, 400, 30)
	for name, cfg := range configsUnderTest() {
		t.Run(name, func(t *testing.T) {
			tgi := buildSmall(t, cfg, events)
			for _, tt := range []temporal.Time{0, 700, 1201, 2000, 3500, 4000} {
				want := oracle(events, tt)
				for id := graph.NodeID(0); id < 30; id += 3 {
					got, err := tgi.GetNodeAt(id, tt, nil)
					if err != nil {
						t.Fatalf("GetNodeAt(%d,%d): %v", id, tt, err)
					}
					wantNS := want.Node(id)
					if (got == nil) != (wantNS == nil) {
						t.Fatalf("node %d at %d: presence mismatch (got %v, want %v)", id, tt, got, wantNS)
					}
					if got != nil && !got.Equal(wantNS) {
						t.Fatalf("node %d at %d: state mismatch\n got %+v\nwant %+v", id, tt, got, wantNS)
					}
				}
			}
		})
	}
}

func TestNodeHistoryMatchesOracle(t *testing.T) {
	events := genHistory(4, 400, 30)
	for name, cfg := range configsUnderTest() {
		t.Run(name, func(t *testing.T) {
			tgi := buildSmall(t, cfg, events)
			ts, te := temporal.Time(500), temporal.Time(3200)
			for id := graph.NodeID(0); id < 30; id += 4 {
				h, err := tgi.GetNodeHistory(id, ts, te, nil)
				if err != nil {
					t.Fatalf("GetNodeHistory(%d): %v", id, err)
				}
				// Initial state matches oracle at ts.
				wantInit := oracle(events, ts).Node(id)
				if (h.Initial == nil) != (wantInit == nil) || (h.Initial != nil && !h.Initial.Equal(wantInit)) {
					t.Fatalf("node %d initial state mismatch", id)
				}
				// Replayed state matches oracle at probe times.
				for _, tt := range []temporal.Time{700, 1500, 2799, 3100} {
					got := h.StateAt(tt)
					want := oracle(events, tt).Node(id)
					if (got == nil) != (want == nil) {
						t.Fatalf("node %d StateAt(%d): presence mismatch", id, tt)
					}
					if got != nil && !got.Equal(want) {
						t.Fatalf("node %d StateAt(%d): state mismatch\n got %+v\nwant %+v", id, tt, got, want)
					}
				}
			}
		})
	}
}

func TestNodeHistoryVersions(t *testing.T) {
	events := []graph.Event{
		{Time: 10, Kind: graph.AddNode, Node: 1},
		{Time: 20, Kind: graph.SetNodeAttr, Node: 1, Key: "k", Value: "a"},
		{Time: 30, Kind: graph.AddNode, Node: 2},
		{Time: 40, Kind: graph.SetNodeAttr, Node: 1, Key: "k", Value: "b"},
		{Time: 50, Kind: graph.AddEdge, Node: 1, Other: 2},
	}
	tgi := buildSmall(t, smallConfig(), events)
	h, err := tgi.GetNodeHistory(1, 0, 100, nil)
	if err != nil {
		t.Fatal(err)
	}
	vs := h.Versions()
	// States: created(10..20), k=a(20..40), k=b(40..50), +edge(50..100).
	if len(vs) != 4 {
		t.Fatalf("got %d versions, want 4: %+v", len(vs), vs)
	}
	if vs[1].State.Attrs["k"] != "a" || vs[2].State.Attrs["k"] != "b" {
		t.Fatalf("version states wrong")
	}
	if vs[3].Valid.Start != 50 || vs[3].Valid.End != 100 {
		t.Fatalf("last version interval wrong: %v", vs[3].Valid)
	}
	if h.VersionCount() != 4 {
		t.Fatalf("VersionCount = %d, want 4 events", h.VersionCount())
	}
}

func TestChangeTimes(t *testing.T) {
	events := genHistory(5, 300, 20)
	tgi := buildSmall(t, smallConfig(), events)
	for id := graph.NodeID(0); id < 20; id += 5 {
		got, err := tgi.ChangeTimes(id, 0, 10000, nil)
		if err != nil {
			t.Fatal(err)
		}
		// Oracle: times of events that touch id, after expansion of
		// RemoveNode into edge removals.
		want := map[temporal.Time]bool{}
		g := graph.New()
		for _, e := range events {
			for _, x := range expandEvent(g, e) {
				if x.Touches(id) {
					want[x.Time] = true
				}
				g.Apply(x)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("node %d: %d change times, want %d", id, len(got), len(want))
		}
		for _, tt := range got {
			if !want[tt] {
				t.Fatalf("node %d: unexpected change time %d", id, tt)
			}
		}
	}
}

func TestKHopBothAlgorithmsAgree(t *testing.T) {
	events := genHistory(6, 400, 30)
	for name, cfg := range configsUnderTest() {
		t.Run(name, func(t *testing.T) {
			tgi := buildSmall(t, cfg, events)
			for _, tt := range []temporal.Time{800, 2000, 4000} {
				for id := graph.NodeID(0); id < 30; id += 6 {
					for k := 1; k <= 2; k++ {
						viaSnap, err := tgi.GetKHopViaSnapshot(id, k, tt, nil)
						if err != nil {
							t.Fatal(err)
						}
						viaExp, err := tgi.GetKHopNeighborhood(id, k, tt, nil)
						if err != nil {
							t.Fatal(err)
						}
						if !viaExp.Equal(viaSnap) {
							t.Fatalf("k-hop(%d,k=%d,t=%d) mismatch: expansion %v vs snapshot %v",
								id, k, tt, viaExp, viaSnap)
						}
					}
				}
			}
		})
	}
}

func TestKHopHistoryMatchesOracle(t *testing.T) {
	events := genHistory(7, 350, 25)
	for _, name := range []string{"random", "replicated"} {
		cfg := configsUnderTest()[name]
		t.Run(name, func(t *testing.T) {
			tgi := buildSmall(t, cfg, events)
			ts, te := temporal.Time(600), temporal.Time(3000)
			for id := graph.NodeID(0); id < 25; id += 5 {
				sh, err := tgi.GetKHopHistory(id, 1, ts, te, nil)
				if err != nil {
					t.Fatal(err)
				}
				members := sh.Members
				for _, tt := range []temporal.Time{900, 1700, 2500} {
					got := sh.StateAt(tt)
					want := oracle(events, tt).Subgraph(members)
					if !got.Equal(want) {
						t.Fatalf("1-hop history of %d at %d mismatch:\n got %v\nwant %v", id, tt, got, want)
					}
				}
			}
		})
	}
}

func TestAppendEquivalentToFullBuild(t *testing.T) {
	events := genHistory(8, 400, 30)
	cfg := smallConfig()

	full := buildSmall(t, cfg, events)

	// Build on a prefix, then append the rest in two batches — the second
	// lands mid-timespan to exercise the partial-span rebuild.
	store := kvstore.NewCluster(kvstore.Config{Machines: 3, Replication: 1})
	inc, err := Build(store, cfg, events[:150])
	if err != nil {
		t.Fatal(err)
	}
	if err := inc.Append(events[150:290]); err != nil {
		t.Fatalf("Append 1: %v", err)
	}
	if err := inc.Append(events[290:]); err != nil {
		t.Fatalf("Append 2: %v", err)
	}

	for _, tt := range []temporal.Time{500, 1500, 2500, 3500, 4000} {
		a, err := full.GetSnapshot(tt, nil)
		if err != nil {
			t.Fatal(err)
		}
		b, err := inc.GetSnapshot(tt, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !a.Equal(b) {
			t.Fatalf("append-built index disagrees with full build at t=%d", tt)
		}
	}
	// Node histories must agree as well (version chains rebuilt).
	ha, _ := full.GetNodeHistory(3, 0, 4100, nil)
	hb, _ := inc.GetNodeHistory(3, 0, 4100, nil)
	if len(ha.Events) != len(hb.Events) {
		t.Fatalf("history lengths differ: %d vs %d", len(ha.Events), len(hb.Events))
	}
}

func TestAppendValidation(t *testing.T) {
	events := genHistory(9, 100, 20)
	tgi := buildSmall(t, smallConfig(), events)
	if err := tgi.Append(nil); err != nil {
		t.Fatalf("empty append should be a no-op: %v", err)
	}
	// Batch starting before the end of history must be rejected.
	bad := []graph.Event{{Time: events[len(events)-1].Time, Kind: graph.AddNode, Node: 1}}
	if err := tgi.Append(bad); err == nil {
		t.Fatal("append overlapping history must fail")
	}
}

func TestBuildValidation(t *testing.T) {
	store := kvstore.NewCluster(kvstore.Config{Machines: 1, Replication: 1})
	if _, err := Build(store, smallConfig(), nil); err == nil {
		t.Fatal("empty build must fail")
	}
	dup := []graph.Event{
		{Time: 5, Kind: graph.AddNode, Node: 1},
		{Time: 5, Kind: graph.AddNode, Node: 2},
	}
	if _, err := Build(store, smallConfig(), dup); err == nil {
		t.Fatal("non-increasing times must fail")
	}
	cfg := smallConfig()
	cfg.TimespanEvents = 10
	cfg.EventlistSize = 20
	cfg.EventlistSize = 20
	if err := (Config{TimespanEvents: 10, EventlistSize: 20}).Validate(); err == nil {
		t.Fatal("eventlist larger than timespan must fail validation")
	}
}

func TestEmptyIndexErrors(t *testing.T) {
	store := kvstore.NewCluster(kvstore.Config{Machines: 1, Replication: 1})
	tgi := New(store, smallConfig())
	if _, err := tgi.GetSnapshot(100, nil); err == nil {
		t.Fatal("snapshot on empty index must fail")
	}
	if _, err := tgi.Stats(); err == nil {
		t.Fatal("stats on empty index must fail")
	}
}

func TestStatsAndTimeRange(t *testing.T) {
	events := genHistory(10, 300, 25)
	tgi := buildSmall(t, smallConfig(), events)
	st, err := tgi.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Events != 300 || st.Timespans != 3 {
		t.Fatalf("stats wrong: %+v", st)
	}
	if st.StoredBytes <= 0 {
		t.Fatal("stored bytes should be positive")
	}
	lo, hi, err := tgi.TimeRange()
	if err != nil {
		t.Fatal(err)
	}
	if lo != events[0].Time || hi != events[len(events)-1].Time {
		t.Fatalf("time range = [%d,%d]", lo, hi)
	}
}

func TestParallelFetchClientsProduceSameResult(t *testing.T) {
	events := genHistory(11, 400, 40)
	tgi := buildSmall(t, smallConfig(), events)
	want, err := tgi.GetSnapshot(2000, &FetchOptions{Clients: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []int{2, 4, 8} {
		got, err := tgi.GetSnapshot(2000, &FetchOptions{Clients: c})
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Fatalf("c=%d produced a different snapshot", c)
		}
	}
}

func TestGetSnapshotsAt(t *testing.T) {
	events := genHistory(12, 200, 20)
	tgi := buildSmall(t, smallConfig(), events)
	times := []temporal.Time{100, 900, 1700}
	gs, err := tgi.GetSnapshotsAt(times, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, tt := range times {
		if !gs[i].Equal(oracle(events, tt)) {
			t.Fatalf("multipoint snapshot %d wrong", tt)
		}
	}
}

func TestDeltaTreeShapes(t *testing.T) {
	// Tree invariants across leaf counts and arities: every leaf path
	// starts at the root, dids are in range, and summing the stored
	// deltas along a leaf's path reconstructs the leaf exactly.
	for nLeaves := 1; nLeaves <= 9; nLeaves++ {
		for arity := 2; arity <= 4; arity++ {
			// Leaf i: growing graph with i+2 nodes and a chain of edges.
			leaves := make([]*delta.Delta, nLeaves)
			var gs []*graph.Graph
			g := graph.New()
			for i := 0; i < nLeaves; i++ {
				g.AddEdge(graph.NodeID(i), graph.NodeID(i+1))
				gs = append(gs, g.Clone())
				leaves[i] = delta.FromGraph(g)
			}
			stored, paths := buildDeltaTree(leaves, arity)
			if len(paths) != nLeaves {
				t.Fatalf("leaves=%d arity=%d: %d paths", nLeaves, arity, len(paths))
			}
			byDid := make(map[int]*delta.Delta, len(stored))
			for _, sd := range stored {
				byDid[sd.did] = sd.data
			}
			for i, p := range paths {
				if len(p) == 0 || p[0] != stored[0].did {
					t.Fatalf("leaf %d path does not start at root: %v", i, p)
				}
				rec := delta.New()
				for _, did := range p {
					d, ok := byDid[did]
					if !ok {
						t.Fatalf("leaf %d path references unknown did %d", i, did)
					}
					rec.Sum(d)
				}
				if !rec.Materialize().Equal(gs[i]) {
					t.Fatalf("leaves=%d arity=%d: leaf %d reconstruction wrong", nLeaves, arity, i)
				}
			}
		}
	}
}

func TestFetchNodeHistoriesMatchesOracle(t *testing.T) {
	events := genHistory(13, 400, 30)
	tgi := buildSmall(t, smallConfig(), events)
	iv := temporal.NewInterval(600, 3200)
	perSid, err := tgi.FetchNodeHistories(iv, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(perSid) != tgi.Config().HorizontalPartitions {
		t.Fatalf("got %d partitions", len(perSid))
	}
	seen := map[graph.NodeID]*NodeHistory{}
	for sid, hs := range perSid {
		for _, h := range hs {
			if tgi.sidOf(h.ID) != sid {
				t.Fatalf("node %d delivered by wrong partition %d", h.ID, sid)
			}
			if _, dup := seen[h.ID]; dup {
				t.Fatalf("node %d delivered twice", h.ID)
			}
			seen[h.ID] = h
		}
	}
	// Every node alive at start or touched during the window appears, and
	// replaying each history matches the oracle.
	startOracle := oracle(events, iv.Start)
	for id, h := range seen {
		wantInit := startOracle.Node(id)
		if (h.Initial == nil) != (wantInit == nil) || (h.Initial != nil && !h.Initial.Equal(wantInit)) {
			t.Fatalf("node %d: initial mismatch", id)
		}
		for _, tt := range []temporal.Time{900, 2000, 3100} {
			got := h.StateAt(tt)
			want := oracle(events, tt).Node(id)
			if (got == nil) != (want == nil) {
				t.Fatalf("node %d at %d: presence mismatch", id, tt)
			}
			if got != nil && !got.Equal(want) {
				t.Fatalf("node %d at %d: state mismatch", id, tt)
			}
		}
	}
	for _, ns := range startOracle.NodeIDs() {
		if _, ok := seen[ns]; !ok {
			t.Fatalf("node %d alive at start missing from SoN", ns)
		}
	}
	// Selection predicate narrows the result.
	perSid, err = tgi.FetchNodeHistories(iv, func(id graph.NodeID) bool { return id < 5 }, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, hs := range perSid {
		for _, h := range hs {
			if h.ID >= 5 {
				t.Fatalf("predicate violated: node %d", h.ID)
			}
		}
	}
}

func TestNodeHistoryScanEquivalence(t *testing.T) {
	// The ablation path (no version chains) must return exactly the same
	// history as the VC path.
	events := genHistory(14, 400, 30)
	tgi := buildSmall(t, smallConfig(), events)
	for id := graph.NodeID(0); id < 30; id += 3 {
		a, err := tgi.GetNodeHistory(id, 300, 3700, nil)
		if err != nil {
			t.Fatal(err)
		}
		b, err := tgi.GetNodeHistoryScan(id, 300, 3700, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Events) != len(b.Events) {
			t.Fatalf("node %d: %d events via VC, %d via scan", id, len(a.Events), len(b.Events))
		}
		for i := range a.Events {
			if a.Events[i] != b.Events[i] {
				t.Fatalf("node %d event %d differs: %v vs %v", id, i, a.Events[i], b.Events[i])
			}
		}
	}
	// And the scan path must cost more store reads (what VCs buy).
	// Each measured pass runs cold: the negative cache would otherwise
	// let whichever pass runs second ride the first one's learned
	// absences, skewing the comparison.
	tgi.fx.Cache().Purge()
	tgi.Store().ResetMetrics()
	tgi.GetNodeHistory(1, 0, 4100, nil)
	vcReads := tgi.Store().Metrics().Reads
	tgi.fx.Cache().Purge()
	tgi.Store().ResetMetrics()
	tgi.GetNodeHistoryScan(1, 0, 4100, nil)
	scanReads := tgi.Store().Metrics().Reads
	if scanReads < vcReads {
		t.Fatalf("scan (%d reads) unexpectedly cheaper than VC (%d reads)", scanReads, vcReads)
	}
}

func TestMultipleAppendsAcrossTimespans(t *testing.T) {
	events := genHistory(15, 600, 30)
	cfg := smallConfig()
	full := buildSmall(t, cfg, events)
	store := kvstore.NewCluster(kvstore.Config{Machines: 2, Replication: 1})
	inc, err := Build(store, cfg, events[:100])
	if err != nil {
		t.Fatal(err)
	}
	for off := 100; off < len(events); off += 130 {
		end := min(off+130, len(events))
		if err := inc.Append(events[off:end]); err != nil {
			t.Fatalf("append at %d: %v", off, err)
		}
	}
	for _, tt := range []temporal.Time{500, 2000, 4500, 6000} {
		a, err := full.GetSnapshot(tt, nil)
		if err != nil {
			t.Fatal(err)
		}
		b, err := inc.GetSnapshot(tt, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !a.Equal(b) {
			t.Fatalf("snapshot at %d differs after incremental appends", tt)
		}
	}
	gmA, _ := full.Stats()
	gmB, _ := inc.Stats()
	if gmA.Events != gmB.Events {
		t.Fatalf("event counts differ: %d vs %d", gmA.Events, gmB.Events)
	}
}

func TestLocalityMicroPartitionLookups(t *testing.T) {
	// In locality mode pidOf consults the Micropartitions table; verify
	// lookups resolve and memoize for nodes across timespans.
	events := genHistory(16, 300, 25)
	cfg := smallConfig()
	cfg.Partitioning = partition.Locality
	tgi := buildSmall(t, cfg, events)
	tm, err := tgi.loadTimespanMeta(0)
	if err != nil {
		t.Fatal(err)
	}
	for id := graph.NodeID(0); id < 25; id++ {
		sid := tgi.sidOf(id)
		p1, err := tgi.pidOf(tm, sid, id)
		if err != nil {
			t.Fatal(err)
		}
		before := tgi.Store().Metrics().Reads
		p2, err := tgi.pidOf(tm, sid, id)
		if err != nil {
			t.Fatal(err)
		}
		if p1 != p2 {
			t.Fatalf("pid not stable for node %d", id)
		}
		if tgi.Store().Metrics().Reads != before {
			t.Fatalf("second pid lookup for node %d hit the store (not memoized)", id)
		}
	}
}

func TestSnapshotBeforeAndAfterHistory(t *testing.T) {
	events := genHistory(17, 150, 15)
	tgi := buildSmall(t, smallConfig(), events)
	g, err := tgi.GetSnapshot(events[0].Time-1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 0 {
		t.Fatalf("pre-history snapshot has %d nodes", g.NumNodes())
	}
	g, err = tgi.GetSnapshot(temporal.MaxTime-1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(oracle(events, temporal.MaxTime-1)) {
		t.Fatal("post-history snapshot wrong")
	}
}

func TestVersionChainCodecRoundtrip(t *testing.T) {
	entries := []vcEntry{
		{el: 0, times: []temporal.Time{10, 20, 30}},
		{el: 3, times: []temporal.Time{1500}},
		{el: 7, times: []temporal.Time{9000, 9001, 12000, 50000}},
	}
	got, err := decodeVC(encodeVC(entries))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(entries) {
		t.Fatalf("entry count %d != %d", len(got), len(entries))
	}
	for i := range entries {
		if got[i].el != entries[i].el || len(got[i].times) != len(entries[i].times) {
			t.Fatalf("entry %d mismatch: %+v vs %+v", i, got[i], entries[i])
		}
		for j := range entries[i].times {
			if got[i].times[j] != entries[i].times[j] {
				t.Fatalf("entry %d time %d mismatch", i, j)
			}
		}
	}
	if _, err := decodeVC([]byte{0xFF}); err == nil {
		t.Fatal("corrupt VC must error")
	}
	if got, err := decodeVC(encodeVC(nil)); err != nil || len(got) != 0 {
		t.Fatal("empty VC roundtrip failed")
	}
}

func TestLeafForBoundaries(t *testing.T) {
	tm := &TimespanMeta{LeafTimes: []temporal.Time{0, 100, 200, 300}}
	cases := []struct {
		t    temporal.Time
		leaf int
	}{
		{-5, 0}, {0, 0}, {50, 0}, {100, 1}, {150, 1}, {299, 2}, {300, 3}, {1000, 3},
	}
	for _, c := range cases {
		if got := tm.leafFor(c.t); got != c.leaf {
			t.Errorf("leafFor(%d) = %d, want %d", c.t, got, c.leaf)
		}
	}
}

func TestReplicatedStoreServesTGI(t *testing.T) {
	// Full retrieval correctness on a replicated cluster (r=3).
	events := genHistory(18, 300, 25)
	store := kvstore.NewCluster(kvstore.Config{Machines: 3, Replication: 3})
	tgi, err := Build(store, smallConfig(), events)
	if err != nil {
		t.Fatal(err)
	}
	for _, tt := range []temporal.Time{500, 1500, 3000} {
		got, err := tgi.GetSnapshot(tt, &FetchOptions{Clients: 4})
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(oracle(events, tt)) {
			t.Fatalf("replicated snapshot at %d wrong", tt)
		}
	}
}

func TestGetKHopAtMultipleTimes(t *testing.T) {
	events := genHistory(19, 300, 25)
	tgi := buildSmall(t, smallConfig(), events)
	times := []temporal.Time{600, 1500, 2700}
	gs, err := tgi.GetKHopAt(3, 1, times, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, tt := range times {
		want := oracle(events, tt).KHopSubgraph(3, 1)
		if !gs[i].Equal(want) {
			t.Fatalf("k-hop at %d mismatch", tt)
		}
	}
}
