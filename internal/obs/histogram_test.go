package obs

import (
	"math"
	"testing"
)

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	if len(b) != len(want) {
		t.Fatalf("bounds = %v", b)
	}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("bounds = %v, want %v", b, want)
		}
	}
	if ExpBuckets(0, 2, 4) != nil || ExpBuckets(1, 1, 4) != nil || ExpBuckets(1, 2, 0) != nil {
		t.Fatal("invalid parameters did not return nil")
	}
}

// TestHistogramBucketAssignment pins the boundary semantics: a sample
// equal to a bound lands in that bound's bucket (le = less-or-equal,
// matching the Prometheus convention), and overflow lands in +Inf.
func TestHistogramBucketAssignment(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 4, 5, 100} {
		h.Observe(v)
	}
	s := h.snapshot()
	want := []uint64{2, 2, 2, 2} // (..1], (1..2], (2..4], (4..+Inf)
	for i, c := range s.Counts {
		if c != want[i] {
			t.Fatalf("bucket counts = %v, want %v", s.Counts, want)
		}
	}
	if s.Count != 8 {
		t.Fatalf("count = %d, want 8", s.Count)
	}
	if s.Sum != 0.5+1+1.5+2+3+4+5+100 {
		t.Fatalf("sum = %v", s.Sum)
	}
}

// TestHistogramQuantileAccuracy feeds a known uniform distribution and
// checks the estimated quantiles stay within one bucket of the truth —
// the estimator's documented resolution.
func TestHistogramQuantileAccuracy(t *testing.T) {
	// 1000 samples uniform over (0, 10] against bounds every 0.5: the
	// interpolated quantile should be accurate to well under a bucket.
	h := newHistogram(ExpBuckets(0.5, 1.2589, 20)) // ~0.5 .. ~50 log-spaced
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i) / 100.0)
	}
	s := h.snapshot()
	for _, tc := range []struct{ q, want float64 }{
		{0.5, 5.0}, {0.9, 9.0}, {0.95, 9.5}, {0.99, 9.9},
	} {
		got := s.Quantile(tc.q)
		// Bucket growth is ~26%, so the estimate must be within ~26%.
		if got < tc.want*0.75 || got > tc.want*1.3 {
			t.Fatalf("q%.2f = %v, want ~%v", tc.q, got, tc.want)
		}
	}
	if m := s.Mean(); math.Abs(m-5.005) > 1e-9 {
		t.Fatalf("mean = %v, want 5.005", m)
	}
}

func TestHistogramQuantileEdgeCases(t *testing.T) {
	var empty HistSnapshot
	if empty.Quantile(0.5) != 0 || empty.Mean() != 0 {
		t.Fatal("empty snapshot quantile/mean not zero")
	}
	h := newHistogram([]float64{1, 2})
	h.Observe(100) // +Inf bucket only
	s := h.snapshot()
	if got := s.Quantile(0.5); got != 2 {
		t.Fatalf("overflow-only q50 = %v, want largest finite bound 2", got)
	}
	// Clamped q.
	if s.Quantile(-1) != s.Quantile(0) || s.Quantile(2) != s.Quantile(1) {
		t.Fatal("out-of-range q not clamped")
	}
}

func TestHistogramSubDiff(t *testing.T) {
	h := newHistogram([]float64{1, 10})
	h.Observe(0.5)
	before := h.snapshot()
	h.Observe(5)
	h.Observe(0.5)
	d := h.snapshot().Sub(before)
	if d.Count != 2 {
		t.Fatalf("diff count = %d, want 2", d.Count)
	}
	if d.Counts[0] != 1 || d.Counts[1] != 1 || d.Counts[2] != 0 {
		t.Fatalf("diff buckets = %v", d.Counts)
	}
	if d.Sum != 5.5 {
		t.Fatalf("diff sum = %v, want 5.5", d.Sum)
	}
	// Mismatched bounds (zero prev) return the snapshot unchanged.
	full := h.snapshot()
	if got := full.Sub(HistSnapshot{}); got.Count != full.Count {
		t.Fatal("Sub against zero snapshot did not return the full state")
	}
}

func TestNilHistogramObserve(t *testing.T) {
	var h *Histogram
	h.Observe(1) // must not panic
	if s := h.snapshot(); s.Count != 0 {
		t.Fatal("nil histogram snapshot not empty")
	}
}

func TestHistogramMerge(t *testing.T) {
	a := newHistogram([]float64{1, 10})
	a.Observe(0.5)
	a.Observe(5)
	b := newHistogram([]float64{1, 10})
	b.Observe(5)
	b.Observe(50)
	m := a.snapshot().Merge(b.snapshot())
	if m.Count != 4 || m.Sum != 60.5 {
		t.Fatalf("merge count=%d sum=%v, want 4 and 60.5", m.Count, m.Sum)
	}
	if m.Counts[0] != 1 || m.Counts[1] != 2 || m.Counts[2] != 1 {
		t.Fatalf("merge buckets = %v", m.Counts)
	}
	// Zero-value operands pass the other side through.
	if got := a.snapshot().Merge(HistSnapshot{}); got.Count != 2 {
		t.Fatal("merge with zero snapshot lost samples")
	}
	if got := (HistSnapshot{}).Merge(b.snapshot()); got.Count != 2 {
		t.Fatal("zero snapshot merge lost samples")
	}
}

func TestFamilyHist(t *testing.T) {
	r := NewRegistry()
	r.Histogram("op_seconds", "", []float64{1, 10}, L("op", "a")).Observe(0.5)
	r.Histogram("op_seconds", "", []float64{1, 10}, L("op", "b")).Observe(5)
	r.Histogram("other_seconds", "", []float64{1, 10}).Observe(5)
	s := r.Snapshot()
	h, ok := s.FamilyHist("op_seconds")
	if !ok || h.Count != 2 {
		t.Fatalf("FamilyHist(op_seconds) count=%d ok=%v, want 2 across ops", h.Count, ok)
	}
	// A family name that is a prefix of another must not absorb it.
	if h, ok := s.FamilyHist("op"); ok || h.Count != 0 {
		t.Fatal("prefix family name matched foreign series")
	}
	if _, ok := s.FamilyHist("missing"); ok {
		t.Fatal("missing family reported ok")
	}
}
