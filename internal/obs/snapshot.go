package obs

import "sort"

// seriesKey is the flat identity of one series inside a Snapshot:
// the family name, plus the sorted label signature in braces when
// labeled — exactly the series part of its exposition line.
func seriesKey(name, sig string) string {
	if sig == "" {
		return name
	}
	return name + "{" + sig + "}"
}

// Snapshot is a point-in-time copy of every registered metric:
// scalars (counters and gauges, func-backed ones sampled) and
// histogram states. Snapshots are plain values — safe to keep, diff
// and read concurrently — and are how the bench harness and the perf
// ratchet turn the live registry into per-pass deltas.
type Snapshot struct {
	// Values maps series keys (see Value) to counter/gauge readings.
	Values map[string]float64
	// Hists maps series keys to histogram states.
	Hists map[string]HistSnapshot
}

// Snapshot captures the current state of every metric. A nil registry
// yields an empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	out := Snapshot{Values: make(map[string]float64), Hists: make(map[string]HistSnapshot)}
	r.visit(func(f *family, s *series) {
		key := seriesKey(f.name, s.sig)
		if f.kind == KindHistogram {
			out.Hists[key] = s.hist.snapshot()
			return
		}
		out.Values[key] = s.value()
	})
	return out
}

// Diff returns s - prev: every scalar subtracted (series missing from
// prev diff against zero) and every histogram reduced to the samples
// observed between the snapshots. Gauges subtract like counters; read
// level gauges from s directly instead.
func (s Snapshot) Diff(prev Snapshot) Snapshot {
	out := Snapshot{
		Values: make(map[string]float64, len(s.Values)),
		Hists:  make(map[string]HistSnapshot, len(s.Hists)),
	}
	for k, v := range s.Values {
		out.Values[k] = v - prev.Values[k]
	}
	for k, h := range s.Hists {
		out.Hists[k] = h.Sub(prev.Hists[k])
	}
	return out
}

// Value returns the scalar reading of name+labels (0 when absent).
func (s Snapshot) Value(name string, labels ...Label) float64 {
	return s.Values[seriesKey(name, signature(labels))]
}

// Hist returns the histogram state of name+labels and whether the
// series exists.
func (s Snapshot) Hist(name string, labels ...Label) (HistSnapshot, bool) {
	h, ok := s.Hists[seriesKey(name, signature(labels))]
	return h, ok
}

// FamilyHist returns the merged distribution of every histogram series
// in the named family — all ops of hgs_op_duration_seconds as one
// distribution, say — and whether any series exists.
func (s Snapshot) FamilyHist(name string) (HistSnapshot, bool) {
	var out HistSnapshot
	found := false
	for k, h := range s.Hists {
		if k == name || (len(k) > len(name) && k[:len(name)+1] == name+"{") {
			out = out.Merge(h)
			found = true
		}
	}
	return out, found
}

// Keys returns every series key of the snapshot, sorted — scalars
// first, then histograms.
func (s Snapshot) Keys() []string {
	out := make([]string, 0, len(s.Values)+len(s.Hists))
	for k := range s.Values {
		out = append(out, k)
	}
	sort.Strings(out)
	hs := make([]string, 0, len(s.Hists))
	for k := range s.Hists {
		hs = append(hs, k)
	}
	sort.Strings(hs)
	return append(out, hs...)
}
