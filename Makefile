# Tier-1 CI gate for the Historical Graph Store. `make ci` is the
# documented pre-merge check (ROADMAP.md): vet, build, fast tests (with
# and without the race detector), and formatting. `make test-full`
# additionally runs the ~30s bench smoke tests that -short skips.

GO ?= go

# Fail `make cover` when total -short statement coverage drops below
# this floor (the tree sits around 71%; the floor leaves headroom for
# incidental drift, not for untested subsystems).
COVER_FLOOR ?= 60.0

.PHONY: ci vet build test test-race test-full cover fmt-check fmt docs-check bench bench-cache bench-tiering bench-reopen bench-parallel bench-serve bench-rebalance profile

ci: vet build test test-race fmt-check

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test -short ./...

test-race:
	$(GO) test -race -short ./...

test-full:
	$(GO) test ./...

# Total -short statement coverage with a hard floor; prints the
# per-function summary so CI logs show what regressed.
cover:
	$(GO) test -short -coverprofile=coverage.out ./...
	@$(GO) tool cover -func=coverage.out | tail -20
	@total=$$($(GO) tool cover -func=coverage.out | awk '/^total:/ {gsub(/%/, "", $$3); print $$3}'); \
	echo "total coverage: $$total% (floor: $(COVER_FLOOR)%)"; \
	awk -v t="$$total" -v f="$(COVER_FLOOR)" 'BEGIN { exit !(t+0 < f+0) }' && \
		{ echo "coverage $$total% is below the $(COVER_FLOOR)% floor"; exit 1; } || true

fmt-check:
	@files="$$(gofmt -l .)"; \
	if [ -n "$$files" ]; then \
		echo "gofmt needed on:"; echo "$$files"; exit 1; \
	fi

fmt:
	gofmt -w .

# Docs gate: intra-repo markdown links must resolve and every package
# must carry a package doc comment (scripts/checkdocs).
docs-check:
	$(GO) vet ./scripts/...
	$(GO) run ./scripts/checkdocs

bench:
	$(GO) run ./cmd/hgs-bench

# Cache v2 passes: cold / warm / legacy-v1 / disabled, with the
# negative-hit ratio on sparse probes and the eviction-quality notes
# (KV ops, round-trips, simulated wait per pass).
bench-cache:
	$(GO) run ./cmd/hgs-bench -run cache

# Tiered backend: sweep the hot-tier budget, report the per-tier read
# split and simulated wait (Store.Stats proves hot hits skip the disk).
bench-tiering:
	$(GO) run ./cmd/hgs-bench -run tiering

# Tiered backend restart: post-reopen recent-timespan probes with hot
# tier warm-up off vs on (hit ratio and simulated wait per pass).
bench-reopen:
	$(GO) run ./cmd/hgs-bench -run reopen

# Parallel materialization: warm-cache snapshot retrieval swept over
# MaterializeWorkers, with speedup, allocs/op and the byte-identity
# check (set HGS_SCALE>=2 for a meaningful speedup axis on multi-core).
bench-parallel:
	$(GO) run ./cmd/hgs-bench -run parallel

# HTTP serve path: an in-process hgs-server driven closed-loop by 12
# concurrent clients over a weighted query mix; reports achieved QPS,
# latency quantiles, 429 shed rate and 504 deadline-miss rate (JSON via
# -json feeds scripts/perfdiff like every other experiment).
bench-serve:
	$(GO) run ./cmd/hgs-bench -run serve

# Node lifecycle: query latency during a live node-add (partitions
# streamed under the rebalance rate limit), rows moved vs the
# consistent-hashing movement bound, and the degraded-read rate with a
# replica down — every phase byte-identical to the healthy baseline.
bench-rebalance:
	$(GO) run ./cmd/hgs-bench -run rebalance

# CPU and allocation profiles over the Figure 11 bench workload
# (snapshot retrieval with parallel fetch — the read hot path). Inspect
# with `go tool pprof cpu.prof` / `go tool pprof -sample_index=alloc_space alloc.prof`;
# a live store serves the same profiles on /debug/pprof/ (Options.DebugAddr).
profile:
	$(GO) test -run '^$$' -bench BenchmarkFig11SnapshotParallelFetch -benchtime 1x \
		-cpuprofile cpu.prof -memprofile alloc.prof .
	@echo "wrote cpu.prof and alloc.prof — e.g.: go tool pprof -top cpu.prof"
