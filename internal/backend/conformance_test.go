package backend_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"hgs/internal/backend"
	"hgs/internal/backend/disklog"
	"hgs/internal/backend/memtable"
)

// TestEngineConformance drives both engines through the same random
// operation stream and requires identical observable behavior: the
// memtable is the executable spec, disklog must match it bit for bit.
func TestEngineConformance(t *testing.T) {
	mem := memtable.New()
	disk, err := disklog.Open(t.TempDir(), disklog.Options{SegmentBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	defer disk.Close()
	engines := []backend.Backend{mem, disk}

	rng := rand.New(rand.NewSource(7))
	tables := []string{"deltas", "events", "versions"}
	for op := 0; op < 4000; op++ {
		table := tables[rng.Intn(len(tables))]
		pkey := fmt.Sprintf("p%02d", rng.Intn(8))
		ckey := fmt.Sprintf("c%03d", rng.Intn(40))
		switch rng.Intn(10) {
		case 0, 1, 2, 3, 4: // put
			v := make([]byte, rng.Intn(64))
			rng.Read(v)
			for _, e := range engines {
				e.Put(table, pkey, ckey, append([]byte(nil), v...))
			}
		case 5: // delete
			a := mem.Delete(table, pkey, ckey)
			b := disk.Delete(table, pkey, ckey)
			if a != b {
				t.Fatalf("op %d: Delete(%s,%s,%s) = %v vs %v", op, table, pkey, ckey, a, b)
			}
		case 6: // drop (rare)
			if rng.Intn(10) == 0 {
				for _, e := range engines {
					e.DropPartition(table, pkey)
				}
			}
		case 7: // get
			av, aok := mem.Get(table, pkey, ckey)
			bv, bok := disk.Get(table, pkey, ckey)
			if aok != bok || !bytes.Equal(av, bv) {
				t.Fatalf("op %d: Get(%s,%s,%s) diverged", op, table, pkey, ckey)
			}
		case 8: // scan
			prefix := fmt.Sprintf("c%d", rng.Intn(10))
			ar := mem.ScanPrefix(table, pkey, prefix)
			br := disk.ScanPrefix(table, pkey, prefix)
			if len(ar) != len(br) {
				t.Fatalf("op %d: scan length %d vs %d", op, len(ar), len(br))
			}
			for i := range ar {
				if ar[i].CKey != br[i].CKey || !bytes.Equal(ar[i].Value, br[i].Value) {
					t.Fatalf("op %d: scan row %d diverged", op, i)
				}
			}
		case 9: // invariants
			if a, b := mem.StoredBytes(), disk.StoredBytes(); a != b {
				t.Fatalf("op %d: stored bytes %d vs %d", op, a, b)
			}
		}
	}
	for _, table := range tables {
		a := mem.PartitionKeys(table)
		b := disk.PartitionKeys(table)
		if len(a) != len(b) {
			t.Fatalf("partition keys of %s: %v vs %v", table, a, b)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("partition keys of %s: %v vs %v", table, a, b)
			}
		}
	}
	if err := disk.Flush(); err != nil {
		t.Fatal(err)
	}
}
