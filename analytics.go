package hgs

import (
	"hgs/internal/taf"
)

// Analytics is a Temporal Graph Analysis Framework session bound to a
// store (paper §5). It exposes the SoN/SoTS query builders and the
// temporal operator library; the generic operators (NodeCompute,
// Compare, Evolution, ...) live in this package as functions because
// they are parameterized by result type.
type Analytics struct {
	h *taf.Handler
}

// Re-exported analytics types.
type (
	// NodeT is a temporal node: one node's states over a time range.
	NodeT = taf.NodeT
	// SubgraphT is a temporal subgraph (k-hop neighborhood over time).
	SubgraphT = taf.SubgraphT
	// SoN is a set of temporal nodes (an RDD<NodeT>).
	SoN = taf.SoN
	// SoTS is a set of temporal subgraphs (an RDD<SubgraphT>).
	SoTS = taf.SoTS
	// Series is a scalar timeseries with the temporal aggregations
	// (Max, Min, Mean, Peaks, Saturate).
	Series = taf.Series
	// CompareRow is one (node-id, difference) result of Compare.
	CompareRow = taf.CompareRow
)

// Timed is one sampled value at a timepoint.
type Timed[V any] = taf.Timed[V]

// Handler exposes the underlying TAF handler.
func (a *Analytics) Handler() *taf.Handler { return a.h }

// SON starts a set-of-temporal-nodes query.
func (a *Analytics) SON() *taf.SONQuery { return taf.SON(a.h) }

// SOTS starts a set-of-temporal-subgraphs query with radius k.
func (a *Analytics) SOTS(k int) *taf.SOTSQuery { return taf.SOTS(a.h, k) }

// NodeCompute applies f to every temporal node of the SoN.
func NodeCompute[V any](s *SoN, f func(*NodeT) V) []V { return taf.NodeCompute(s, f) }

// NodeComputeKV applies f to every temporal node, keyed by node id.
func NodeComputeKV[V any](s *SoN, f func(*NodeT) V) map[NodeID]V {
	return taf.NodeComputeKV(s, f)
}

// SubgraphCompute applies f to every temporal subgraph of the SoTS.
func SubgraphCompute[V any](s *SoTS, f func(*SubgraphT) V) []V {
	return taf.SubgraphCompute(s, f)
}

// SubgraphComputeKV applies f to every temporal subgraph, keyed by root.
func SubgraphComputeKV[V any](s *SoTS, f func(*SubgraphT) V) map[NodeID]V {
	return taf.SubgraphComputeKV(s, f)
}

// NodeComputeTemporal evaluates f afresh on every version of every node.
func NodeComputeTemporal[V any](s *SoN, f func(*NodeState) V, at taf.TimepointsFunc) map[NodeID][]Timed[V] {
	return taf.NodeComputeTemporal(s, f, at)
}

// SubgraphComputeTemporal evaluates f afresh on every version of every
// subgraph (the O(N·T) baseline of Figure 17).
func SubgraphComputeTemporal[V any](s *SoTS, f func(*Graph) V, at taf.SubgraphTimepointsFunc) map[NodeID][]Timed[V] {
	return taf.SubgraphComputeTemporal(s, f, at)
}

// SubgraphComputeDelta evaluates a quantity incrementally: f on the
// initial state, fd folding each event into the value (paper operator 6).
func SubgraphComputeDelta[V any](s *SoTS, f func(*Graph) (V, any), fd taf.DeltaFunc[V]) map[NodeID][]Timed[V] {
	return taf.SubgraphComputeDelta(s, f, fd)
}

// Compare evaluates f over two SoNs and returns per-node differences.
func Compare(a, b *SoN, f func(*NodeT) float64) []CompareRow { return taf.Compare(a, b, f) }

// CompareAt diffs f over one SoN's timeslices at two timepoints.
func CompareAt(s *SoN, f func(*NodeState) float64, t1, t2 Time) []CompareRow {
	return taf.CompareAt(s, f, t1, t2)
}

// Evolution samples a graph-level quantity over the SoN's span at n
// evenly spaced timepoints (or the explicit points).
func Evolution(s *SoN, quantity func(*Graph) float64, n int, points []Time) Series {
	return taf.Evolution(s, quantity, n, points)
}

// AliveCountSeries samples SoN membership over time.
func AliveCountSeries(s *SoN, points []Time) Series { return taf.AliveCountSeries(s, points) }

// EvenTimepoints returns n evenly spaced timepoints over iv.
func EvenTimepoints(iv Interval, n int) []Time { return taf.EvenTimepoints(iv, n) }

// Density, AvgDegree and friends are methods on *Graph (see the graph
// metrics library); GraphDensity is re-exported as a convenience for use
// with Evolution.
func GraphDensity(g *Graph) float64 { return g.Density() }

// GraphAvgDegree samples the mean degree, for Evolution.
func GraphAvgDegree(g *Graph) float64 { return g.AvgDegree() }

// GraphTriangles counts triangles, for Evolution.
func GraphTriangles(g *Graph) float64 { return float64(g.TriangleCount()) }

// NodeDegreeAt returns a NodeCompute function sampling degree at tt.
func NodeDegreeAt(tt Time) func(*NodeT) float64 {
	return func(nt *NodeT) float64 {
		ns := nt.StateAt(tt)
		if ns == nil {
			return 0
		}
		return float64(ns.Degree())
	}
}
