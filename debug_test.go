package hgs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"hgs/internal/obs"
)

// metricFamilies every store must expose regardless of workload — the
// contract CI's debug-endpoint smoke test asserts.
var requiredFamilies = []string{
	"hgs_kv_reads_total",
	"hgs_kv_writes_total",
	"hgs_kv_round_trips_total",
	"hgs_kv_simwait_seconds_total",
	"hgs_kv_stored_bytes",
	"hgs_kv_machines",
	"hgs_cache_hits_total",
	"hgs_cache_misses_total",
	"hgs_cache_negative_hits_total",
	"hgs_cache_bytes",
	"hgs_op_duration_seconds",
	"hgs_op_simwait_seconds",
}

func httpGet(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read body: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

// TestDebugServerEndpoints boots a store with an ephemeral debug
// server, runs a small workload, and asserts /metrics serves every
// required family with the per-op histograms populated, /traces serves
// the plan-trace ring as JSON, and /debug/pprof/ answers.
func TestDebugServerEndpoints(t *testing.T) {
	opts := smallOptions()
	opts.DebugAddr = "127.0.0.1:0"
	opts.TracePlans = true
	store, _ := loadWiki(t, opts, 120)
	defer store.Close()

	addr := store.DebugAddr()
	if addr == "" {
		t.Fatal("DebugAddr empty with Options.DebugAddr set")
	}
	if _, err := store.Snapshot(1_000); err != nil {
		t.Fatal(err)
	}

	code, body := httpGet(t, "http://"+addr+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status = %d", code)
	}
	for _, fam := range requiredFamilies {
		if !strings.Contains(body, "# TYPE "+fam+" ") {
			t.Errorf("/metrics missing family %s", fam)
		}
	}
	if !strings.Contains(body, `hgs_op_duration_seconds_count{op="snapshot"}`) {
		t.Error("/metrics missing populated snapshot duration histogram")
	}
	if !strings.Contains(body, `hgs_op_duration_seconds_count{op="build"}`) {
		t.Error("/metrics missing populated build duration histogram")
	}

	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("/metrics Content-Type = %q, want Prometheus text format 0.0.4", ct)
	}

	code, body = httpGet(t, "http://"+addr+"/traces")
	if code != http.StatusOK {
		t.Fatalf("/traces status = %d", code)
	}
	var recs []TraceRecord
	if err := json.Unmarshal([]byte(body), &recs); err != nil {
		t.Fatalf("/traces not JSON trace records: %v", err)
	}
	if len(recs) == 0 || recs[len(recs)-1].Op != "snapshot" {
		t.Fatalf("/traces = %d records, want trailing snapshot trace", len(recs))
	}

	code, _ = httpGet(t, "http://"+addr+"/debug/pprof/")
	if code != http.StatusOK {
		t.Fatalf("/debug/pprof/ status = %d", code)
	}
}

// TestServeDebugLifecycle exercises the on-demand path: ServeDebug
// after Open, double-start rejection, and shutdown on Close.
func TestServeDebugLifecycle(t *testing.T) {
	store, _ := loadWiki(t, smallOptions(), 60)
	if store.DebugAddr() != "" {
		t.Fatal("debug server running without DebugAddr")
	}
	addr, err := store.ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if got := store.DebugAddr(); got != addr {
		t.Fatalf("DebugAddr = %q, want %q", got, addr)
	}
	if _, err := store.ServeDebug("127.0.0.1:0"); err == nil {
		t.Fatal("second ServeDebug succeeded, want error")
	}
	if code, _ := httpGet(t, "http://"+addr+"/metrics"); code != http.StatusOK {
		t.Fatalf("/metrics status = %d", code)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + addr + "/metrics"); err == nil {
		t.Fatal("debug server still serving after Close")
	}
}

// TestProfileEndpointSmoke — skipped with -short — captures a 1-second
// CPU profile from the live debug server while a query workload runs:
// the serving-side counterpart of `make profile` (which writes
// cpu.prof/alloc.prof offline over the same bench workload).
func TestProfileEndpointSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("profiling smoke test skipped in -short runs")
	}
	opts := smallOptions()
	opts.DebugAddr = "127.0.0.1:0"
	store, events := loadWiki(t, opts, 120)
	defer store.Close()

	stop := make(chan struct{})
	go func() {
		last := events[len(events)-1].Time
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := store.Snapshot(Time(int64(i%10)+1) * last / 10); err != nil {
				return
			}
		}
	}()
	defer close(stop)

	code, body := httpGet(t, "http://"+store.DebugAddr()+"/debug/pprof/profile?seconds=1")
	if code != http.StatusOK {
		t.Fatalf("/debug/pprof/profile status = %d", code)
	}
	if len(body) == 0 {
		t.Fatal("empty CPU profile")
	}
}

// TestWriteMetricsOffline asserts the programmatic exposition path —
// what hgs-inspect -metrics uses — matches the served families and that
// registry snapshots diff per-op work.
func TestWriteMetricsOffline(t *testing.T) {
	store, _ := loadWiki(t, smallOptions(), 60)
	defer store.Close()

	before := store.Registry().Snapshot()
	if _, err := store.Snapshot(500); err != nil {
		t.Fatal(err)
	}
	diff := store.Registry().Snapshot().Diff(before)
	if h, ok := diff.Hist("hgs_op_duration_seconds", obs.L("op", "snapshot")); !ok || h.Count != 1 {
		t.Fatalf("snapshot op histogram diff = %+v ok=%v, want exactly 1 observation", h, ok)
	}

	var b strings.Builder
	if err := store.WriteMetrics(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, fam := range requiredFamilies {
		if !strings.Contains(out, "# TYPE "+fam+" ") {
			t.Errorf("WriteMetrics missing family %s", fam)
		}
	}
	if reads := store.Cluster().Metrics().Reads; reads > 0 {
		want := fmt.Sprintf("hgs_kv_reads_total %d", reads)
		if !strings.Contains(out, want) {
			t.Errorf("WriteMetrics missing %q", want)
		}
	}
}
