// Package kvstore models the distributed key-value store that backs the
// Temporal Graph Index. The paper uses an Apache Cassandra cluster; this
// package reproduces the properties its evaluation depends on:
//
//   - data placement by partition key across m storage machines,
//   - replication factor r with reads served by any replica,
//   - rows sorted by clustering key within a partition, so that all
//     micro-partitions of one delta scan contiguously (paper §4.4 item 5),
//   - per-machine serialized service with a tunable cost model (base cost
//     per operation plus per-KB transfer cost), which yields the parallel
//     fetch speedups and saturation of Figures 11–12,
//   - read/write/byte counters for the cost accounting of Table 1.
//
// Each node's actual row storage is a pluggable backend.Backend: the
// default in-memory memtable keeps the store a pure simulation, while a
// durable engine (backend/disklog) makes the cluster survive process
// restarts. The cluster is in-process and safe for concurrent use.
package kvstore

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hgs/internal/backend"
	"hgs/internal/backend/memtable"
)

// LatencyModel charges simulated service time per storage operation.
// With Enabled=false operations only update counters, which keeps unit
// tests fast while benchmarks exercise the full model.
type LatencyModel struct {
	Enabled bool
	// BaseOp is charged once per request (seek + request overhead).
	BaseOp time.Duration
	// PerKB is charged per kilobyte moved.
	PerKB time.Duration
	// ColdRead is charged per row lookup that a tiered engine served
	// from its cold (disk) tier — the seek the hot tier would have
	// absorbed. Engines without tier counters charge nothing extra.
	ColdRead time.Duration
}

// DefaultLatency approximates a commodity networked disk-backed store at
// the scale of our benchmark datasets.
func DefaultLatency() LatencyModel {
	return LatencyModel{
		Enabled:  true,
		BaseOp:   60 * time.Microsecond,
		PerKB:    250 * time.Microsecond,
		ColdRead: 200 * time.Microsecond,
	}
}

// Cost returns the simulated service time for an operation moving n bytes.
func (lm LatencyModel) Cost(n int) time.Duration {
	if !lm.Enabled {
		return 0
	}
	return lm.BaseOp + time.Duration(n)*lm.PerKB/1024
}

// Config describes a cluster.
type Config struct {
	// Machines is the number of storage nodes (paper parameter m).
	Machines int
	// Replication is the number of replicas per partition (paper r).
	Replication int
	// Latency is the per-node service cost model.
	Latency LatencyModel
	// Backend creates the storage engine of each node. Nil uses the
	// in-memory memtable engine.
	Backend backend.Factory
}

// Validate normalizes the configuration.
func (c *Config) normalize() {
	if c.Machines < 1 {
		c.Machines = 1
	}
	if c.Replication < 1 {
		c.Replication = 1
	}
	if c.Replication > c.Machines {
		c.Replication = c.Machines
	}
}

// Metrics is a snapshot of cluster-wide counters. Reads and Writes count
// logical operations (one per key or prefix scan, even inside a batch);
// RoundTrips counts physical node visits — a MultiGet touching two
// machines is many Reads but two RoundTrips. SimWait is the total
// simulated service time charged by the latency model.
//
// The Tier* fields aggregate the per-tier counters of engines that
// implement backend.TierCounting (the tiered hot/cold backend); they
// stay zero on single-tier engines. TierHotReads row lookups were
// served from memory without disk I/O, TierColdReads fell through to
// the disk tier; Compactions and FlushedBytes count the background
// maintenance that migrated data between tiers, IdleCompactions the
// units of full-speed work done inside idle windows (drains, merges
// and full compactions each count once). WarmedRows and
// WarmedBytes count rows the engines repopulated into memory from
// their newest cold data (restart warm-up). TierHotBytes is a gauge of
// the bytes currently memory-resident (not affected by ResetMetrics);
// TierWarming is a gauge counting nodes whose open-time warm-up is
// still running — zero means every node finished warming.
type Metrics struct {
	Reads        int64
	Writes       int64
	BytesRead    int64
	BytesWritten int64
	RoundTrips   int64
	SimWait      time.Duration

	TierHotReads    int64
	TierColdReads   int64
	FlushedBytes    int64
	Compactions     int64
	IdleCompactions int64
	WarmedRows      int64
	WarmedBytes     int64
	TierHotBytes    int64
	TierWarming     int64
}

// Row is one clustered row inside a partition.
type Row = backend.Row

// storageNode is one machine. A mutex serializes service, modelling a
// single-disk server; the simulated service time is charged while the
// lock is held so concurrent clients queue exactly as they would on a
// busy node.
type storageNode struct {
	mu sync.Mutex
	be backend.Backend
	// tc and tr are the engine's optional tier interfaces, asserted once
	// at open so the serve hot path avoids a type switch per operation:
	// tc aggregates cumulative counters into Metrics, tr reports each
	// read's exact cold-row count for the latency surcharge.
	tc backend.TierCounting
	tr backend.TierReader
}

// Cluster is the distributed store.
type Cluster struct {
	cfg     Config
	nodes   []*storageNode
	latency atomic.Pointer[LatencyModel]

	rr uint64 // round-robin replica selector

	reads        atomic.Int64
	writes       atomic.Int64
	bytesRead    atomic.Int64
	bytesWritten atomic.Int64
	roundTrips   atomic.Int64
	simWait      atomic.Int64 // nanoseconds

	// tierBase is the engines' cumulative tier-counter totals at the
	// last ResetMetrics, so Metrics reports deltas like the atomic
	// counters do (the HotBytes gauge is exempt).
	tierBaseMu sync.Mutex
	tierBase   backend.TierCounters
}

// Open builds a cluster per the configuration, creating each node's
// storage engine through cfg.Backend (memtable when nil). On factory
// failure, already-created engines are closed.
func Open(cfg Config) (*Cluster, error) {
	cfg.normalize()
	factory := cfg.Backend
	if factory == nil {
		factory = memtable.Factory()
	}
	c := &Cluster{cfg: cfg, nodes: make([]*storageNode, cfg.Machines)}
	for i := range c.nodes {
		be, err := factory(i)
		if err != nil {
			for _, n := range c.nodes[:i] {
				n.be.Close()
			}
			return nil, fmt.Errorf("kvstore: open node %d: %w", i, err)
		}
		node := &storageNode{be: be}
		node.tc, _ = be.(backend.TierCounting)
		node.tr, _ = be.(backend.TierReader)
		c.nodes[i] = node
	}
	lm := cfg.Latency
	c.latency.Store(&lm)
	return c, nil
}

// NewCluster builds a cluster per the configuration, panicking if a
// node's storage engine cannot be created. Use Open for fallible
// (durable) backends; with the default in-memory engine NewCluster
// never panics.
func NewCluster(cfg Config) *Cluster {
	c, err := Open(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// SetLatency swaps the latency model at runtime. Benchmarks build indexes
// with the model disabled, then enable it for the measured fetch phase.
func (c *Cluster) SetLatency(lm LatencyModel) {
	c.latency.Store(&lm)
}

// Latency returns the current latency model.
func (c *Cluster) Latency() LatencyModel { return *c.latency.Load() }

// Config returns the cluster configuration.
func (c *Cluster) Config() Config { return c.cfg }

// Machines returns the number of storage nodes.
func (c *Cluster) Machines() int { return c.cfg.Machines }

func hashKey(table, pkey string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(table))
	h.Write([]byte{0})
	h.Write([]byte(pkey))
	return h.Sum64()
}

// replicas returns the node indexes holding the partition, primary first.
func (c *Cluster) replicas(table, pkey string) []int {
	primary := int(hashKey(table, pkey) % uint64(c.cfg.Machines))
	out := make([]int, c.cfg.Replication)
	for i := range out {
		out[i] = (primary + i) % c.cfg.Machines
	}
	return out
}

// readReplica picks the replica to serve a read, rotating to spread load
// across replicas (this is where r>1 increases read capacity, Fig 12c).
func (c *Cluster) readReplica(table, pkey string) int {
	reps := c.replicas(table, pkey)
	if len(reps) == 1 {
		return reps[0]
	}
	n := atomic.AddUint64(&c.rr, 1)
	return reps[n%uint64(len(reps))]
}

// simulateWork charges d of service time. Sub-scheduler-granularity
// waits busy-spin for accuracy; anything longer sleeps so that many
// simulated clients can wait concurrently without burning cores.
func simulateWork(d time.Duration) { simulateWorkCtx(context.Background(), d) }

// simulateWorkCtx is simulateWork with an abandonment signal: a sleep
// is cut short when ctx is cancelled, so a caller holding a deadline is
// not stuck behind a long simulated disk wait. The service time was
// already charged to the counters by then — cancellation abandons the
// wait, it does not refund the work the node performed.
func simulateWorkCtx(ctx context.Context, d time.Duration) {
	if d <= 0 {
		return
	}
	if d < 20*time.Microsecond {
		end := time.Now().Add(d)
		for time.Now().Before(end) {
		}
		return
	}
	if ctx.Done() == nil {
		time.Sleep(d)
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

// serve runs f on node idx's engine while holding its service lock and
// charges the operation cost for the byte count f reports, plus the
// cold-read surcharge for each row f reports as served from a disk
// tier. The cold count comes from the engine's own per-call accounting
// (backend.TierReader) — never from diffing the engine's cumulative
// counters around the call, which would bill this operation for cold
// rows concurrent operations or the engine's background maintenance
// touched in the meantime. Charging inside the lock models a disk-bound
// server: a node moving many bytes is busy for proportionally long, so
// cluster size m and replication r bound the achievable parallel-fetch
// speedup (paper Figures 11–12).
// serve returns the simulated service time it charged, so batched reads
// can attribute their exact cost to the calling query (CallStats).
func (c *Cluster) serve(idx int, f func(be backend.Backend) (n, coldRows int)) time.Duration {
	return c.serveCtx(context.Background(), idx, f)
}

// serveCtx is serve with cancellable simulated waiting: the service
// cost is computed and charged to the counters as usual, but the
// in-process sleep modelling it is abandoned once ctx is cancelled (the
// node lock releases early — a real server would keep spinning its
// disk, but nobody is left to wait for it).
func (c *Cluster) serveCtx(ctx context.Context, idx int, f func(be backend.Backend) (n, coldRows int)) time.Duration {
	c.roundTrips.Add(1)
	node := c.nodes[idx]
	node.mu.Lock()
	defer node.mu.Unlock()
	lm := c.Latency()
	n, cold := f(node.be)
	d := lm.Cost(n)
	if lm.Enabled && cold > 0 {
		// Each row the operation pulled from the cold tier pays the
		// disk-seek surcharge the hot tier would have absorbed.
		d += time.Duration(cold) * lm.ColdRead
	}
	c.simWait.Add(int64(d))
	simulateWorkCtx(ctx, d)
	return d
}

// Put writes value under (table, pkey, ckey) on every replica,
// overwriting an existing row.
func (c *Cluster) Put(table, pkey, ckey string, value []byte) {
	v := make([]byte, len(value))
	copy(v, value)
	for _, idx := range c.replicas(table, pkey) {
		c.serve(idx, func(be backend.Backend) (int, int) {
			be.Put(table, pkey, ckey, v)
			return len(v), 0
		})
	}
	c.writes.Add(1)
	c.bytesWritten.Add(int64(len(v)))
}

// Get reads the row at (table, pkey, ckey) from one replica. The returned
// slice is the caller's to keep.
func (c *Cluster) Get(table, pkey, ckey string) ([]byte, bool) {
	var out []byte
	found := false
	idx := c.readReplica(table, pkey)
	tr := c.nodes[idx].tr
	c.serve(idx, func(be backend.Backend) (int, int) {
		cold := 0
		if tr != nil {
			out, found, cold = tr.GetTier(table, pkey, ckey)
		} else {
			out, found = be.Get(table, pkey, ckey)
		}
		return len(out), cold
	})
	c.reads.Add(1)
	if found {
		c.bytesRead.Add(int64(len(out)))
	}
	return out, found
}

// ScanPrefix returns all rows in the partition whose clustering key starts
// with prefix, in clustering order, as one contiguous scan (single
// operation cost plus bytes).
func (c *Cluster) ScanPrefix(table, pkey, prefix string) []Row {
	var out []Row
	total := 0
	idx := c.readReplica(table, pkey)
	tr := c.nodes[idx].tr
	c.serve(idx, func(be backend.Backend) (int, int) {
		cold := 0
		if tr != nil {
			out, cold = tr.ScanPrefixTier(table, pkey, prefix)
		} else {
			out = be.ScanPrefix(table, pkey, prefix)
		}
		for _, r := range out {
			total += len(r.Value)
		}
		return total, cold
	})
	c.reads.Add(1)
	c.bytesRead.Add(int64(total))
	return out
}

// ScanPartition returns every row of the partition in clustering order.
func (c *Cluster) ScanPartition(table, pkey string) []Row {
	return c.ScanPrefix(table, pkey, "")
}

// KeyRef names one row for a batched cluster read. It is the same
// triple the backend layer consumes (backend.KeyRead), so a node's
// batch passes straight through to its engine without conversion.
type KeyRef = backend.KeyRead

// ScanRef names one prefix scan for a batched cluster read.
type ScanRef struct {
	Table, PKey, Prefix string
}

// GetResult is the outcome of one KeyRef of a MultiGet.
type GetResult struct {
	Value []byte
	Found bool
}

// CallStats is the exact accounting of one batched read call: the same
// quantities the cluster-wide Metrics counters accumulate, attributed
// to the call that incurred them (the per-call pattern TierReader
// established for cold-read billing — never diff the shared cumulative
// counters around a call, which would misattribute concurrent work).
// The query layer folds these into per-query plan traces.
type CallStats struct {
	// Reads counts logical operations (one per key or prefix scan).
	Reads int64
	// RoundTrips counts physical storage-node visits.
	RoundTrips int64
	// BytesRead counts the value bytes moved.
	BytesRead int64
	// SimWait is the simulated service time charged to this call.
	SimWait time.Duration
}

// add folds one node visit into the stats under the mutex-free
// assumption that the caller serializes (each batched read accumulates
// its goroutines' visits under its own lock).
func (cs *CallStats) add(reads, bytes int64, wait time.Duration) {
	cs.Reads += reads
	cs.RoundTrips++
	cs.BytesRead += bytes
	cs.SimWait += wait
}

// groupByNode picks a read replica once per partition (so all keys of a
// partition travel in the same request) and groups request indexes by
// the chosen storage node.
func (c *Cluster) groupByNode(n int, at func(i int) (table, pkey string)) map[int][]int {
	type part struct{ table, pkey string }
	nodeOf := make(map[part]int)
	batches := make(map[int][]int)
	for i := 0; i < n; i++ {
		table, pkey := at(i)
		k := part{table, pkey}
		node, ok := nodeOf[k]
		if !ok {
			node = c.readReplica(table, pkey)
			nodeOf[k] = node
		}
		batches[node] = append(batches[node], i)
	}
	return batches
}

// MultiGet reads a batch of rows, grouping the keys per storage node and
// serving each node's share in one request: one base-latency charge per
// machine round-trip instead of per key (the executor half of the
// query-manager plan, paper Figure 3c). Nodes are visited concurrently,
// so the wall-clock cost is the busiest node's service time. Results are
// positional: out[i] answers refs[i].
func (c *Cluster) MultiGet(refs []KeyRef) []GetResult {
	out, _ := c.MultiGetStats(refs)
	return out
}

// MultiGetStats is MultiGet with exact per-call attribution: the second
// return value reports the logical reads, node round-trips, bytes and
// simulated wait this call (and only this call) charged to the cluster
// counters.
func (c *Cluster) MultiGetStats(refs []KeyRef) ([]GetResult, CallStats) {
	return c.MultiGetStatsCtx(context.Background(), refs)
}

// MultiGetStatsCtx is MultiGetStats with cancellation: node visits not
// yet started when ctx is cancelled are skipped entirely (their results
// stay zero-valued and nothing is charged for them), and a visit
// sleeping out its simulated service time wakes early. The caller must
// check ctx.Err() after the call — results are incomplete once it is
// non-nil, and a Found=false under cancellation means "unknown", not
// "absent".
func (c *Cluster) MultiGetStatsCtx(ctx context.Context, refs []KeyRef) ([]GetResult, CallStats) {
	out := make([]GetResult, len(refs))
	var cs CallStats
	if len(refs) == 0 {
		return out, cs
	}
	batches := c.groupByNode(len(refs), func(i int) (string, string) { return refs[i].Table, refs[i].PKey })
	var (
		wg   sync.WaitGroup
		csMu sync.Mutex
	)
	for node, idxs := range batches {
		wg.Add(1)
		go func(node int, idxs []int) {
			defer wg.Done()
			if ctx.Err() != nil {
				return
			}
			reqs := make([]backend.KeyRead, len(idxs))
			for j, i := range idxs {
				reqs[j] = refs[i]
			}
			tr := c.nodes[node].tr
			var vals [][]byte
			d := c.serveCtx(ctx, node, func(be backend.Backend) (int, int) {
				cold := 0
				if tr != nil {
					vals, cold = tr.MultiGetTier(reqs)
				} else {
					vals = backend.MultiGet(be, reqs)
				}
				n := 0
				for _, v := range vals {
					n += len(v)
				}
				return n, cold
			})
			total := 0
			for j, i := range idxs {
				if v := vals[j]; v != nil {
					out[i] = GetResult{Value: v, Found: true}
					total += len(v)
				}
			}
			c.reads.Add(int64(len(idxs)))
			c.bytesRead.Add(int64(total))
			csMu.Lock()
			cs.add(int64(len(idxs)), int64(total), d)
			csMu.Unlock()
		}(node, idxs)
	}
	wg.Wait()
	return out, cs
}

// MultiScan runs a batch of prefix scans, grouped per storage node like
// MultiGet: each node serves its share of scans under one base-latency
// charge. out[i] holds the rows of refs[i], in clustering order.
func (c *Cluster) MultiScan(refs []ScanRef) [][]Row {
	out, _ := c.MultiScanStats(refs)
	return out
}

// MultiScanStats is MultiScan with exact per-call attribution (see
// MultiGetStats).
func (c *Cluster) MultiScanStats(refs []ScanRef) ([][]Row, CallStats) {
	return c.MultiScanStatsCtx(context.Background(), refs)
}

// MultiScanStatsCtx is MultiScanStats with cancellation (see
// MultiGetStatsCtx): skipped node visits leave nil row slices, so the
// caller must treat results as incomplete once ctx.Err() is non-nil.
func (c *Cluster) MultiScanStatsCtx(ctx context.Context, refs []ScanRef) ([][]Row, CallStats) {
	out := make([][]Row, len(refs))
	var cs CallStats
	if len(refs) == 0 {
		return out, cs
	}
	batches := c.groupByNode(len(refs), func(i int) (string, string) { return refs[i].Table, refs[i].PKey })
	var (
		wg   sync.WaitGroup
		csMu sync.Mutex
	)
	for node, idxs := range batches {
		wg.Add(1)
		go func(node int, idxs []int) {
			defer wg.Done()
			if ctx.Err() != nil {
				return
			}
			tr := c.nodes[node].tr
			total := 0
			d := c.serveCtx(ctx, node, func(be backend.Backend) (int, int) {
				cold := 0
				for _, i := range idxs {
					var rows []Row
					if tr != nil {
						var scanCold int
						rows, scanCold = tr.ScanPrefixTier(refs[i].Table, refs[i].PKey, refs[i].Prefix)
						cold += scanCold
					} else {
						rows = be.ScanPrefix(refs[i].Table, refs[i].PKey, refs[i].Prefix)
					}
					for _, r := range rows {
						total += len(r.Value)
					}
					out[i] = rows
				}
				return total, cold
			})
			c.reads.Add(int64(len(idxs)))
			c.bytesRead.Add(int64(total))
			csMu.Lock()
			cs.add(int64(len(idxs)), int64(total), d)
			csMu.Unlock()
		}(node, idxs)
	}
	wg.Wait()
	return out, cs
}

// Delete removes a row from all replicas; it reports whether the row
// existed on the primary.
func (c *Cluster) Delete(table, pkey, ckey string) bool {
	existed := false
	for ri, idx := range c.replicas(table, pkey) {
		c.serve(idx, func(be backend.Backend) (int, int) {
			if be.Delete(table, pkey, ckey) && ri == 0 {
				existed = true
			}
			return 0, 0
		})
	}
	c.writes.Add(1)
	return existed
}

// DropPartition removes an entire partition from all replicas.
func (c *Cluster) DropPartition(table, pkey string) {
	for _, idx := range c.replicas(table, pkey) {
		c.serve(idx, func(be backend.Backend) (int, int) {
			be.DropPartition(table, pkey)
			return 0, 0
		})
	}
	c.writes.Add(1)
}

// PartitionKeys returns all partition keys of a table (union over nodes),
// sorted. Intended for inspection and maintenance, not the data path.
func (c *Cluster) PartitionKeys(table string) []string {
	seen := make(map[string]struct{})
	for _, node := range c.nodes {
		node.mu.Lock()
		for _, pk := range node.be.PartitionKeys(table) {
			seen[pk] = struct{}{}
		}
		node.mu.Unlock()
	}
	out := make([]string, 0, len(seen))
	for pk := range seen {
		out = append(out, pk)
	}
	sort.Strings(out)
	return out
}

// Flush makes every node's accepted writes durable (fsync for disk
// engines) and returns the first error encountered.
func (c *Cluster) Flush() error {
	var firstErr error
	for i, node := range c.nodes {
		node.mu.Lock()
		err := node.be.Flush()
		node.mu.Unlock()
		if err != nil && firstErr == nil {
			firstErr = fmt.Errorf("kvstore: flush node %d: %w", i, err)
		}
	}
	return firstErr
}

// Close flushes and closes every node's engine. The cluster must not be
// used afterwards.
func (c *Cluster) Close() error {
	var errs []error
	for i, node := range c.nodes {
		node.mu.Lock()
		err := node.be.Close()
		node.mu.Unlock()
		if err != nil {
			errs = append(errs, fmt.Errorf("kvstore: close node %d: %w", i, err))
		}
	}
	return errors.Join(errs...)
}

// tierTotals sums the cumulative tier counters of every node engine
// that tracks them.
func (c *Cluster) tierTotals() backend.TierCounters {
	var t backend.TierCounters
	for _, node := range c.nodes {
		if node.tc == nil {
			continue
		}
		tc := node.tc.TierCounters()
		t.HotHits += tc.HotHits
		t.ColdReads += tc.ColdReads
		t.FlushedRows += tc.FlushedRows
		t.FlushedBytes += tc.FlushedBytes
		t.Compactions += tc.Compactions
		t.IdleCompactions += tc.IdleCompactions
		t.WarmedRows += tc.WarmedRows
		t.WarmedBytes += tc.WarmedBytes
		t.HotBytes += tc.HotBytes
		t.Warming += tc.Warming
	}
	return t
}

// Metrics returns a snapshot of the counters.
func (c *Cluster) Metrics() Metrics {
	tiers := c.tierTotals()
	c.tierBaseMu.Lock()
	base := c.tierBase
	c.tierBaseMu.Unlock()
	return Metrics{
		Reads:        c.reads.Load(),
		Writes:       c.writes.Load(),
		BytesRead:    c.bytesRead.Load(),
		BytesWritten: c.bytesWritten.Load(),
		RoundTrips:   c.roundTrips.Load(),
		SimWait:      time.Duration(c.simWait.Load()),

		TierHotReads:    tiers.HotHits - base.HotHits,
		TierColdReads:   tiers.ColdReads - base.ColdReads,
		FlushedBytes:    tiers.FlushedBytes - base.FlushedBytes,
		Compactions:     tiers.Compactions - base.Compactions,
		IdleCompactions: tiers.IdleCompactions - base.IdleCompactions,
		WarmedRows:      tiers.WarmedRows - base.WarmedRows,
		WarmedBytes:     tiers.WarmedBytes - base.WarmedBytes,
		TierHotBytes:    tiers.HotBytes,
		TierWarming:     tiers.Warming,
	}
}

// ResetMetrics zeroes the read/write counters (stored bytes are kept).
// Tier counters are cumulative inside the engines, so the reset records
// a baseline that Metrics subtracts.
func (c *Cluster) ResetMetrics() {
	c.reads.Store(0)
	c.writes.Store(0)
	c.bytesRead.Store(0)
	c.bytesWritten.Store(0)
	c.roundTrips.Store(0)
	c.simWait.Store(0)
	totals := c.tierTotals()
	c.tierBaseMu.Lock()
	c.tierBase = totals
	c.tierBaseMu.Unlock()
}

// Backup writes a consistent copy of every node engine's durable state
// into dir (one node-NNN subdirectory each, mirroring the Factory
// layouts of the disk engines). The engines snapshot themselves under
// their own locks and copy outside them (backend.Backuper), so reads —
// including reads served by the node being copied — proceed while a
// large backup streams; the caller must not issue writes concurrently
// if the backup is to be cluster-consistent. Engines that are not
// durable (no Backuper) fail the backup.
func (c *Cluster) Backup(dir string) error {
	for i, node := range c.nodes {
		b, ok := node.be.(backend.Backuper)
		if !ok {
			return fmt.Errorf("kvstore: backup: node %d engine (%T) is not durable", i, node.be)
		}
		if err := b.Backup(filepath.Join(dir, backend.NodeDir(i))); err != nil {
			return fmt.Errorf("kvstore: backup node %d: %w", i, err)
		}
	}
	return nil
}

// StoredBytes returns the physical bytes currently stored across all
// replicas (sum of every node engine's live bytes).
func (c *Cluster) StoredBytes() int64 {
	var total int64
	for _, node := range c.nodes {
		node.mu.Lock()
		total += node.be.StoredBytes()
		node.mu.Unlock()
	}
	return total
}

// LogicalBytes returns stored bytes divided by the replication factor —
// the index size figure used in Table 1 comparisons.
func (c *Cluster) LogicalBytes() int64 {
	return c.StoredBytes() / int64(c.cfg.Replication)
}

func (c *Cluster) String() string {
	return fmt.Sprintf("kvstore(m=%d, r=%d)", c.cfg.Machines, c.cfg.Replication)
}
