// Benchmarks regenerating every table and figure of the paper's
// evaluation (§6). Each benchmark runs the corresponding experiment from
// internal/bench once per iteration and reports the headline series
// point as a custom metric, so `go test -bench=. -benchmem` reproduces
// the whole evaluation.
//
// Dataset sizes come from bench.DefaultScale (HGS_SCALE multiplies them).
//
// This file lives in the external test package: internal/bench drives
// the HTTP serve experiment through the public hgs API, so an
// in-package test importing it would be an import cycle.
package hgs_test

import (
	"testing"

	"hgs/internal/bench"
)

// run executes an experiment once per benchmark iteration and reports
// the last series' last point (the largest configuration measured) as a
// metric, plus prints the full result under -v.
func run(b *testing.B, f func(bench.Scale) *bench.Result) {
	b.Helper()
	sc := bench.DefaultScale()
	for i := 0; i < b.N; i++ {
		r := f(sc)
		if len(r.Series) > 0 {
			s := r.Series[len(r.Series)-1]
			if len(s.Points) > 0 {
				b.ReportMetric(s.Points[len(s.Points)-1].Y, "probe-seconds")
			}
		}
		if testing.Verbose() && i == 0 {
			r.Print(benchWriter{b})
		}
	}
}

type benchWriter struct{ b *testing.B }

func (w benchWriter) Write(p []byte) (int, error) {
	w.b.Log(string(p))
	return len(p), nil
}

// BenchmarkTable1 regenerates Table 1: analytical access costs plus
// measured store reads for Log, Copy, Copy+Log, Node-centric,
// DeltaGraph, and TGI.
func BenchmarkTable1(b *testing.B) { run(b, bench.Table1) }

// BenchmarkFig11SnapshotParallelFetch regenerates Figure 11: snapshot
// retrieval times for parallel fetch factors c ∈ {1..32}.
func BenchmarkFig11SnapshotParallelFetch(b *testing.B) { run(b, bench.Fig11) }

// BenchmarkFig12ClusterConfigs regenerates Figure 12: snapshot retrieval
// across (m=1,r=1), (m=2,r=1), (m=2,r=2).
func BenchmarkFig12ClusterConfigs(b *testing.B) { run(b, bench.Fig12) }

// BenchmarkFig13aCompression regenerates Figure 13a: compressed vs
// uncompressed delta storage.
func BenchmarkFig13aCompression(b *testing.B) { run(b, bench.Fig13a) }

// BenchmarkFig13bPartitionSize regenerates Figure 13b: the effect of
// micro-delta partition sizes on snapshot retrieval.
func BenchmarkFig13bPartitionSize(b *testing.B) { run(b, bench.Fig13b) }

// BenchmarkFig13cFriendsterSnapshots regenerates Figure 13c: snapshot
// retrieval on the Friendster dataset.
func BenchmarkFig13cFriendsterSnapshots(b *testing.B) { run(b, bench.Fig13c) }

// BenchmarkFig14aEventlistSize regenerates Figure 14a: node version
// retrieval across eventlist sizes.
func BenchmarkFig14aEventlistSize(b *testing.B) { run(b, bench.Fig14a) }

// BenchmarkFig14bVersionParallelFetch regenerates Figure 14b: node
// version retrieval speedups with parallel fetch.
func BenchmarkFig14bVersionParallelFetch(b *testing.B) { run(b, bench.Fig14b) }

// BenchmarkFig14cVersionPartitionSize regenerates Figure 14c: node
// version retrieval across micro-delta partition sizes.
func BenchmarkFig14cVersionPartitionSize(b *testing.B) { run(b, bench.Fig14c) }

// BenchmarkFig15aPartitioningReplication regenerates Figure 15a: 1-hop
// retrieval under random vs locality vs locality+replication layouts.
func BenchmarkFig15aPartitioningReplication(b *testing.B) { run(b, bench.Fig15a) }

// BenchmarkFig15bGrowingData regenerates Figure 15b: snapshot retrieval
// as the indexed history grows (Datasets 1–3).
func BenchmarkFig15bGrowingData(b *testing.B) { run(b, bench.Fig15b) }

// BenchmarkFig15cTAFScaling regenerates Figure 15c: TAF local clustering
// coefficient computation across compute-worker counts.
func BenchmarkFig15cTAFScaling(b *testing.B) { run(b, bench.Fig15c) }

// BenchmarkFig16FriendsterVersions regenerates Figure 16: node version
// retrieval on Friendster.
func BenchmarkFig16FriendsterVersions(b *testing.B) { run(b, bench.Fig16) }

// BenchmarkFig17IncrementalCompute regenerates Figure 17:
// NodeComputeTemporal vs NodeComputeDelta cumulative compute times.
func BenchmarkFig17IncrementalCompute(b *testing.B) { run(b, bench.Fig17) }

// BenchmarkAblationArity measures snapshot retrieval and index size
// across delta-tree arities (DESIGN.md §6).
func BenchmarkAblationArity(b *testing.B) { run(b, bench.AblationArity) }

// BenchmarkAblationVersionChains measures node history retrieval with
// and without the Versions table (DESIGN.md §6).
func BenchmarkAblationVersionChains(b *testing.B) { run(b, bench.AblationVersionChains) }
