package hgs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"hgs/internal/obs"
)

// Registry returns the store's metrics registry: every cluster, tier,
// cache and per-op latency counter of this store reports into it.
// Useful for registering application-level metrics next to the store's
// own, or for programmatic reads via Registry().Snapshot().
func (s *Store) Registry() *obs.Registry { return s.obs }

// WriteMetrics writes the store's complete metric state to w in the
// Prometheus text exposition format — the same bytes the debug server's
// /metrics endpoint serves.
func (s *Store) WriteMetrics(w io.Writer) error { return s.obs.WritePrometheus(w) }

// debugServer is one store's running observability endpoint.
type debugServer struct {
	ln  net.Listener
	srv *http.Server
}

// debugMux builds the handler the debug server exposes: Prometheus
// metrics, the Go profiler, and the plan-trace ring. The pprof handlers
// are registered explicitly on a private mux so an embedding process
// never has profiling forced onto http.DefaultServeMux.
func (s *Store) debugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = s.obs.WritePrometheus(w)
	})
	mux.HandleFunc("/traces", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(s.PlanTraces())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// DebugHandler returns the store's observability endpoints as a
// mountable http.Handler: /metrics (Prometheus text format),
// /debug/pprof/* (the Go profiler) and /traces (recent plan traces as
// JSON). ServeDebug serves the same handler on its own listener;
// DebugHandler exists so an embedding server — cmd/hgs-server mounts it
// under /debug — exposes one port for queries and telemetry alike.
func (s *Store) DebugHandler() http.Handler { return s.debugMux() }

// ServeDebug starts the store's debug HTTP server on addr, serving
// /metrics (Prometheus text format), /debug/pprof/* (the Go profiler)
// and /traces (recent plan traces as JSON; populated when
// Options.TracePlans is on). It returns the bound address — pass ":0"
// to let the kernel pick a free port. The server runs until Close (or
// until the process exits); starting a second one on the same store is
// an error. Options.DebugAddr starts it from Open instead.
func (s *Store) ServeDebug(addr string) (string, error) {
	s.debugMu.Lock()
	defer s.debugMu.Unlock()
	if s.debug != nil {
		return "", fmt.Errorf("hgs: debug server already running on %s", s.debug.ln.Addr())
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("hgs: debug listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: s.debugMux(), ReadHeaderTimeout: 5 * time.Second}
	s.debug = &debugServer{ln: ln, srv: srv}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), nil
}

// DebugAddr reports the bound address of the running debug server, or
// "" when none is running.
func (s *Store) DebugAddr() string {
	s.debugMu.Lock()
	defer s.debugMu.Unlock()
	if s.debug == nil {
		return ""
	}
	return s.debug.ln.Addr().String()
}

// stopDebug shuts the debug server down, waiting briefly for in-flight
// scrapes to drain.
func (s *Store) stopDebug() error {
	s.debugMu.Lock()
	d := s.debug
	s.debug = nil
	s.debugMu.Unlock()
	if d == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	return d.srv.Shutdown(ctx)
}
