// Package workload generates the synthetic datasets standing in for the
// paper's evaluation data (§6, "Datasets and Notation"; see DESIGN.md
// §3.4 for the substitution rationale):
//
//   - Dataset 1 — Wikipedia citation network: a preferential-attachment
//     growth graph emitting node-arrival and edge-addition events.
//   - Datasets 2, 3 — Dataset 1 augmented with synthetic random edge
//     additions/deletions over time.
//   - Dataset 4 — Friendster gaming network: a community-structured
//     (planted partition) graph with uniformly spaced timestamps.
//   - DBLP-like — bipartite author/paper graph with EntityType node
//     attributes and attribute churn (the Figure 8/17 workload).
//
// All generators are deterministic for a given seed and emit strictly
// increasing integer timestamps starting at 1, satisfying the index
// build contract.
package workload

import (
	"fmt"
	"math/rand"

	"hgs/internal/graph"
	"hgs/internal/temporal"
)

// WikiConfig parameterizes the Wikipedia-like growth network.
type WikiConfig struct {
	// Nodes is the number of articles created.
	Nodes int
	// EdgesPerNode is the mean number of citations a new article makes.
	EdgesPerNode int
	// Seed drives all randomness.
	Seed int64
}

// Wikipedia generates Dataset 1: each new node arrives with citation
// edges to existing nodes chosen by preferential attachment, producing
// the heavy-tailed degree distribution of citation networks.
func Wikipedia(cfg WikiConfig) []graph.Event {
	if cfg.Nodes < 2 {
		cfg.Nodes = 2
	}
	if cfg.EdgesPerNode < 1 {
		cfg.EdgesPerNode = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var events []graph.Event
	clock := temporal.Time(0)
	tick := func() temporal.Time { clock++; return clock }

	// Preferential attachment endpoint pool: every edge endpoint appears
	// once, so sampling uniformly from the pool is degree-proportional.
	pool := make([]graph.NodeID, 0, cfg.Nodes*cfg.EdgesPerNode*2)
	events = append(events, graph.Event{Time: tick(), Kind: graph.AddNode, Node: 0})
	events = append(events, graph.Event{Time: tick(), Kind: graph.AddNode, Node: 1})
	events = append(events, graph.Event{Time: tick(), Kind: graph.AddEdge, Node: 1, Other: 0})
	pool = append(pool, 0, 1)

	for i := 2; i < cfg.Nodes; i++ {
		id := graph.NodeID(i)
		events = append(events, graph.Event{Time: tick(), Kind: graph.AddNode, Node: id})
		cites := 1 + rng.Intn(2*cfg.EdgesPerNode-1) // mean ≈ EdgesPerNode
		seen := map[graph.NodeID]bool{id: true}
		for c := 0; c < cites; c++ {
			var target graph.NodeID
			if rng.Float64() < 0.15 { // uniform exploration component
				target = graph.NodeID(rng.Intn(i))
			} else {
				target = pool[rng.Intn(len(pool))]
			}
			if seen[target] {
				continue
			}
			seen[target] = true
			events = append(events, graph.Event{Time: tick(), Kind: graph.AddEdge, Node: id, Other: target})
			pool = append(pool, id, target)
		}
	}
	return events
}

// AugmentConfig parameterizes the synthetic churn of Datasets 2 and 3.
type AugmentConfig struct {
	// Extra is the number of churn events to append.
	Extra int
	// DeleteFraction is the probability an event deletes an existing
	// edge rather than adding a new one.
	DeleteFraction float64
	// Seed drives all randomness.
	Seed int64
}

// Augment appends Extra random edge add/delete events after the end of
// the base history (the paper adds 333M/733M such events to Dataset 1 to
// form Datasets 2 and 3; we add the same kind of churn at our scale).
func Augment(base []graph.Event, cfg AugmentConfig) []graph.Event {
	rng := rand.New(rand.NewSource(cfg.Seed))
	// Reconstruct the final state to target real nodes and edges.
	g, err := graph.FromEvents(base)
	if err != nil {
		panic(fmt.Sprintf("workload: base history invalid: %v", err))
	}
	ids := g.NodeIDs()
	type pair struct{ u, v graph.NodeID }
	var edges []pair
	edgeSet := make(map[pair]bool)
	g.Range(func(ns *graph.NodeState) bool {
		for k := range ns.Edges {
			if k.Out {
				p := pair{ns.ID, k.Other}
				edges = append(edges, p)
				edgeSet[p] = true
			}
		}
		return true
	})

	clock := base[len(base)-1].Time
	out := append([]graph.Event(nil), base...)
	for i := 0; i < cfg.Extra; i++ {
		clock++
		if rng.Float64() < cfg.DeleteFraction && len(edges) > 0 {
			j := rng.Intn(len(edges))
			p := edges[j]
			edges[j] = edges[len(edges)-1]
			edges = edges[:len(edges)-1]
			delete(edgeSet, p)
			out = append(out, graph.Event{Time: clock, Kind: graph.RemoveEdge, Node: p.u, Other: p.v})
			continue
		}
		u := ids[rng.Intn(len(ids))]
		v := ids[rng.Intn(len(ids))]
		p := pair{u, v}
		if u == v || edgeSet[p] {
			clock-- // retry without consuming a timestamp
			i--
			continue
		}
		edgeSet[p] = true
		edges = append(edges, p)
		out = append(out, graph.Event{Time: clock, Kind: graph.AddEdge, Node: u, Other: v})
	}
	return out
}

// FriendsterConfig parameterizes the community-structured Dataset 4.
type FriendsterConfig struct {
	// Communities is the number of planted communities.
	Communities int
	// CommunitySize is the node count per community.
	CommunitySize int
	// IntraDegree is the mean within-community degree.
	IntraDegree int
	// InterFraction is the fraction of edges that cross communities.
	InterFraction float64
	// Seed drives all randomness.
	Seed int64
}

// Friendster generates Dataset 4: a static social graph with planted
// community structure whose events carry uniformly spaced synthetic
// timestamps (the paper adds synthetic dates to a Friendster snapshot).
// Every node gets a "community" attribute, which the analytics examples
// use.
func Friendster(cfg FriendsterConfig) []graph.Event {
	if cfg.Communities < 1 {
		cfg.Communities = 1
	}
	if cfg.CommunitySize < 2 {
		cfg.CommunitySize = 2
	}
	if cfg.IntraDegree < 1 {
		cfg.IntraDegree = 4
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := cfg.Communities * cfg.CommunitySize
	clock := temporal.Time(0)
	tick := func() temporal.Time { clock++; return clock }

	var events []graph.Event
	for i := 0; i < n; i++ {
		id := graph.NodeID(i)
		events = append(events, graph.Event{Time: tick(), Kind: graph.AddNode, Node: id})
		events = append(events, graph.Event{
			Time: tick(), Kind: graph.SetNodeAttr, Node: id,
			Key: "community", Value: fmt.Sprintf("C%03d", i/cfg.CommunitySize),
		})
	}
	type pair struct{ u, v graph.NodeID }
	seen := make(map[pair]bool)
	addEdge := func(u, v graph.NodeID) {
		if u == v {
			return
		}
		if u > v {
			u, v = v, u
		}
		p := pair{u, v}
		if seen[p] {
			return
		}
		seen[p] = true
		events = append(events, graph.Event{Time: tick(), Kind: graph.AddEdge, Node: u, Other: v})
	}
	targetEdges := n * cfg.IntraDegree / 2
	for e := 0; e < targetEdges; e++ {
		if rng.Float64() < cfg.InterFraction {
			addEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)))
			continue
		}
		c := rng.Intn(cfg.Communities)
		base := c * cfg.CommunitySize
		u := graph.NodeID(base + rng.Intn(cfg.CommunitySize))
		v := graph.NodeID(base + rng.Intn(cfg.CommunitySize))
		addEdge(u, v)
	}
	return events
}

// DBLPConfig parameterizes the bipartite author/paper workload.
type DBLPConfig struct {
	// Authors and Papers are the entity counts.
	Authors int
	Papers  int
	// AuthorsPerPaper is the mean number of authors per paper.
	AuthorsPerPaper int
	// AttrChurn is the number of EntityType attribute-change events
	// appended after the structure (the Figure 8/17 update stream).
	AttrChurn int
	// Seed drives all randomness.
	Seed int64
}

// DBLP generates the bipartite author/paper network with EntityType
// attributes used by the incremental-computation evaluation.
func DBLP(cfg DBLPConfig) []graph.Event {
	if cfg.Authors < 1 {
		cfg.Authors = 1
	}
	if cfg.Papers < 1 {
		cfg.Papers = 1
	}
	if cfg.AuthorsPerPaper < 1 {
		cfg.AuthorsPerPaper = 2
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	clock := temporal.Time(0)
	tick := func() temporal.Time { clock++; return clock }
	var events []graph.Event

	authorID := func(i int) graph.NodeID { return graph.NodeID(i) }
	paperID := func(i int) graph.NodeID { return graph.NodeID(cfg.Authors + i) }
	for i := 0; i < cfg.Authors; i++ {
		events = append(events, graph.Event{Time: tick(), Kind: graph.AddNode, Node: authorID(i)})
		events = append(events, graph.Event{Time: tick(), Kind: graph.SetNodeAttr, Node: authorID(i), Key: "EntityType", Value: "Author"})
	}
	for p := 0; p < cfg.Papers; p++ {
		events = append(events, graph.Event{Time: tick(), Kind: graph.AddNode, Node: paperID(p)})
		events = append(events, graph.Event{Time: tick(), Kind: graph.SetNodeAttr, Node: paperID(p), Key: "EntityType", Value: "Paper"})
		k := 1 + rng.Intn(2*cfg.AuthorsPerPaper-1)
		seen := map[int]bool{}
		for j := 0; j < k; j++ {
			a := rng.Intn(cfg.Authors)
			if seen[a] {
				continue
			}
			seen[a] = true
			events = append(events, graph.Event{Time: tick(), Kind: graph.AddEdge, Node: authorID(a), Other: paperID(p)})
		}
	}
	// Attribute churn: entity types flip (e.g. disambiguation fixes) —
	// exactly the event class the incremental operator folds in O(1).
	n := cfg.Authors + cfg.Papers
	for i := 0; i < cfg.AttrChurn; i++ {
		id := graph.NodeID(rng.Intn(n))
		val := "Author"
		if rng.Intn(2) == 0 {
			val = "Paper"
		}
		events = append(events, graph.Event{Time: tick(), Kind: graph.SetNodeAttr, Node: id, Key: "EntityType", Value: val})
	}
	return events
}
