// Package tiered is a hot/cold storage engine: recent writes live in an
// in-memory memtable (the hot tier) and are made durable by a
// write-ahead log, while a background goroutine flushes them into a
// disklog segment store (the cold tier) under a configurable byte-rate
// limit. Reads check memory then cold, so the working set the paper
// calls hot — the newest timespans and deltas, which most queries touch
// — is served from memory without disk I/O, while historical partitions
// stay durable and cheap on disk.
//
// Alongside the hot rows, memory holds a warm tier: read-only copies of
// the newest cold rows, carrying no WAL or flush obligations. On open,
// warm-up repopulates it from the cold tier's newest rows (up to the
// HotBytes budget, newest-first, in the background), so a process
// restart does not demote the recency-skewed working set to cold-read
// latency; idle-time drains re-home flushed hot rows there, keeping
// them memory-served after their durability moved to the cold log.
// Hot rows and warmed copies share the HotBytes budget; under memory
// pressure warmed copies are evicted first — dropping one costs no I/O.
//
// Write path: every mutation appends one WAL record and applies to the
// memtable; nothing waits on the cold tier. The flusher moves the
// oldest hot rows into the cold disklog in small chunks (at most
// Options.CompactRate bytes per second), fsyncs the cold tier, and only
// then drops the rows from the memtable and retires WAL segments whose
// records are all either superseded or durably cold — so a crash at any
// instant recovers by opening the cold tier and replaying the remaining
// WAL into the hot tier. Foreground reads never wait on a flush: memory
// hits touch only the memtables, and the flusher holds no lock while it
// sleeps off the rate limit.
//
// Scheduling is idle-aware: while foreground traffic is active,
// flushing throttles to CompactRate and the cold tier only gets the
// cheap leveled merge of small newest segments; once the store has been
// quiet for Options.IdleCompactAfter, maintenance runs at full speed —
// the hot tier drains completely into cold segments (with the rows kept
// warm in memory) and whole-log cold compaction runs while nobody is
// waiting on the disk.
//
// Error model: a cold-tier or WAL I/O failure is recorded in a sticky
// error that halts background migration (the safe state — nothing is
// dropped from the hot tier or retired from the WAL on faith) and is
// returned by every subsequent Flush and by Close. Callers must stop
// ingesting once Flush fails; the hgs write path does this naturally
// because every Load/Append batch ends in a cluster Flush.
//
// The engine implements backend.Backend, backend.BatchReader,
// backend.TierCounting (per-tier read counters surfaced through
// kvstore.Metrics) and backend.Backuper.
package tiered

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hgs/internal/backend"
	"hgs/internal/backend/disklog"
	"hgs/internal/backend/memtable"
)

// Options tune the engine. Zero values take the defaults.
type Options struct {
	// HotBytes is the hot-tier budget: once the memtable's live bytes
	// exceed it, the background flusher drains the oldest rows to the
	// cold tier until the memtable is at half the budget (default 32 MiB).
	HotBytes int64
	// CompactRate caps background flushing at this many bytes per
	// second, so a flush storm cannot monopolize the disk foreground
	// reads are using. Zero selects the 8 MiB/s default; negative
	// disables the limit.
	CompactRate int64
	// FlushInterval is the background maintenance period (default 25ms).
	FlushInterval time.Duration
	// WALSegmentBytes rotates the write-ahead log after this many bytes
	// (default 16 MiB). Smaller segments retire sooner after flushes.
	WALSegmentBytes int64
	// WALSyncBytes fsyncs the WAL after this many appended bytes
	// (default 1 MiB). Flush and Close always fsync.
	WALSyncBytes int64
	// DisableWarm turns off hot-tier warm-up: by default, opening a
	// directory that already holds cold data repopulates memory with the
	// newest cold rows (up to HotBytes) in the background, so the first
	// queries after a restart are served like the process never died.
	DisableWarm bool
	// IdleCompactAfter is the foreground-quiet window after which
	// background maintenance stops throttling to CompactRate and runs at
	// full speed, draining the hot tier into durable cold segments while
	// keeping the drained rows memory-resident as warmed copies (default
	// 1s; negative disables idle-mode maintenance entirely).
	IdleCompactAfter time.Duration
	// Cold tunes the cold-tier disklog. Its triggered auto-compaction is
	// always disabled: the background goroutine owns cold compaction.
	Cold disklog.Options
}

func (o *Options) normalize() {
	if o.HotBytes <= 0 {
		o.HotBytes = 32 << 20
	}
	if o.CompactRate == 0 {
		o.CompactRate = 8 << 20
	}
	if o.FlushInterval <= 0 {
		o.FlushInterval = 25 * time.Millisecond
	}
	if o.WALSegmentBytes <= 0 {
		o.WALSegmentBytes = 16 << 20
	}
	if o.WALSyncBytes <= 0 {
		o.WALSyncBytes = 1 << 20
	}
	if o.IdleCompactAfter == 0 {
		o.IdleCompactAfter = time.Second
	}
	o.Cold.DisableAutoCompact = true
}

// flushChunkBytes bounds one flusher chunk: the unit of work between
// rate-limit sleeps, and the longest a foreground Delete can be held at
// the flush gate.
const flushChunkBytes = 256 << 10

// rowMeta tracks one hot row's flush obligations.
type rowMeta struct {
	seg  int    // WAL segment holding the row's latest record
	ver  uint64 // bumped on every overwrite; flushes of stale versions abort
	vlen int
	// inFlight marks a row whose live queue entry was popped into a
	// flush batch that has not committed. An overwrite then supersedes
	// that batch entry, not a queue entry, so it must not count toward
	// staleQueued (the first overwrite clears the mark).
	inFlight bool
}

// flushItem is one FIFO flush candidate. Stale entries (the row was
// overwritten or deleted since) are skipped by the version check.
type flushItem struct {
	table, pkey, ckey string
	ver               uint64
}

// warmEntry is the sidecar record of one warmed row: a memory-resident
// copy of a row whose authoritative version lives in the cold tier.
// Warmed rows carry no WAL or flush obligations — they are dropped the
// instant the row is overwritten (the hot tier takes over) or deleted,
// and evicting one costs no I/O.
type warmEntry struct {
	vlen int
	ver  uint64
}

// warmRef is one eviction-queue entry; like flushItems, refs whose
// version no longer matches the sidecar are stale and skipped.
type warmRef struct {
	table, pkey, ckey string
	ver               uint64
}

// Store is one node's tiered engine. All methods are safe for
// concurrent use; the background flusher runs until Close.
type Store struct {
	dir  string
	opts Options

	// ioMu serializes cold-tier mutation and WAL retirement: flush
	// chunks, foreground deletes/drops, cold compaction, backup, and
	// consistent StoredBytes reads. Lock order: ioMu, then mu, then the
	// tiers' internal locks. It is never held while sleeping off the
	// rate limit.
	ioMu sync.Mutex

	mu   sync.Mutex
	hot  *memtable.Store
	warm *memtable.Store // read-only copies of the newest cold rows
	wal  *wal
	cold *disklog.Store

	hotMeta map[string]map[string]*rowMeta // table\0pkey → ckey → meta
	// warmMeta mirrors the warm memtable's rows (same key scheme as
	// hotMeta); warmBytes is their resident total. warmQueue is the
	// eviction order, oldest data at the front; warmStale counts queue
	// entries whose row left the warm tier since enqueue (compacted
	// wholesale like the flush queue).
	warmMeta  map[string]map[string]warmEntry
	warmBytes int64
	warmQueue []warmRef
	warmStale int
	// shadow holds, for hot rows that also exist in the cold tier, the
	// cold bytes they hide — so StoredBytes counts each logical row once.
	shadow      map[string]map[string]int64
	shadowBytes int64
	// pending counts, per WAL segment, records whose effect is not yet
	// durable in the cold tier. A prefix of segments with zero pending
	// can be deleted.
	pending map[int]int
	// tombs lists WAL segments whose delete/drop records have been
	// applied to the cold tier but not yet fsynced there.
	tombs []int
	queue []flushItem
	// staleQueued counts queue entries whose row was overwritten or
	// deleted since enqueue. The flusher only trims the stale prefix, so
	// once stale entries dominate the queue it is compacted wholesale —
	// otherwise churn behind one long-lived under-budget row (which pins
	// the head) would grow the queue without bound.
	staleQueued int
	// draining is the flusher's hysteresis latch: set when hot bytes
	// exceed HotBytes, cleared once they fall to the HotBytes/2 low
	// water. Without it the flusher would drain any working set above
	// the low-water mark, halving the effective hot tier.
	draining bool
	ver      uint64

	werr   error
	closed bool
	lock   *dirLock // exclusive LOCK on dir: one live handle per directory
	stop   chan struct{}
	done   chan struct{}
	stopFn sync.Once

	flushNow chan struct{}

	// lastOp is the UnixNano of the last foreground operation — the
	// idle-detection clock of the maintenance scheduler.
	lastOp atomic.Int64

	hotHits         atomic.Int64
	coldReads       atomic.Int64
	flushedRows     atomic.Int64
	flushedBytes    atomic.Int64
	compactions     atomic.Int64
	idleCompactions atomic.Int64
	warmedRows      atomic.Int64
	warmedBytes     atomic.Int64
	warming         atomic.Int64 // gauge: 1 while open-time warm-up runs
	hotBytes        atomic.Int64 // gauge mirror of hot+warm resident bytes
}

// Open opens (or creates) the engine rooted at dir: the cold tier under
// dir/cold, the WAL under dir/wal. The WAL is replayed into the hot
// tier (torn tail truncated), so a store killed mid-flush reopens with
// every acknowledged write intact; unless Options.DisableWarm is set,
// the background goroutine then warms memory with the newest cold rows
// up to the HotBytes budget (TierCounters.Warming reads 1 until that
// finishes). The background flusher starts
// immediately — which is why the directory is locked exclusively: a
// second live handle would run a second flusher over the same files
// and corrupt them. On platforms with flock(2) the lock dies with the
// process, so a crash never leaves the directory unopenable; elsewhere
// a PID-stamped LOCK file is used and a stale one left by a crash must
// be removed by hand (the error says which). Open fails fast when the
// directory is already held.
func Open(dir string, opts Options) (*Store, error) {
	opts.normalize()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("tiered: %w", err)
	}
	lock, err := lockDir(dir)
	if err != nil {
		return nil, err
	}
	cold, err := disklog.Open(filepath.Join(dir, "cold"), opts.Cold)
	if err != nil {
		lock.release()
		return nil, err
	}
	w, err := openWAL(filepath.Join(dir, "wal"), opts.WALSegmentBytes)
	if err != nil {
		cold.Close()
		lock.release()
		return nil, err
	}
	s := &Store{
		dir:      dir,
		opts:     opts,
		hot:      memtable.New(),
		warm:     memtable.New(),
		wal:      w,
		cold:     cold,
		lock:     lock,
		hotMeta:  make(map[string]map[string]*rowMeta),
		warmMeta: make(map[string]map[string]warmEntry),
		shadow:   make(map[string]map[string]int64),
		pending:  make(map[int]int),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
		flushNow: make(chan struct{}, 1),
	}
	s.lastOp.Store(time.Now().UnixNano())
	// Rebuild the hot tier. Replayed deletes and drops are re-applied to
	// the cold tier too: a crash may have cut in after the WAL append
	// but before the cold tombstone.
	err = w.replay(func(segID int, op byte, table, pkey, ckey string, value []byte) error {
		switch op {
		case walPut:
			s.applyHotPut(segID, table, pkey, ckey, value)
		case walDel:
			s.applyDelete(segID, table, pkey, ckey)
		case walDrop:
			s.applyDrop(segID, table, pkey)
		}
		return nil
	})
	if err == nil {
		// Make the re-applied tombstones durable now, clearing their
		// truncation obligations.
		if err = cold.Flush(); err == nil {
			for _, seg := range s.tombs {
				s.pending[seg]--
			}
			s.tombs = nil
		}
	}
	if err != nil {
		w.closeFiles()
		cold.Close()
		lock.release()
		return nil, err
	}
	s.hotBytes.Store(s.hot.StoredBytes())
	if !opts.DisableWarm {
		s.warming.Store(1)
	}
	go s.flushLoop()
	return s, nil
}

// dirLock is the exclusive per-directory lock handed out by lockDir
// (see lock_flock.go and lock_fallback.go for the per-platform
// implementations).
type dirLock struct {
	f *os.File
	// path is set only by the portable fallback, which must unlink the
	// LOCK file on release; the flock path leaves the file in place and
	// lets the OS drop the lock when f closes.
	path string
}

func (l *dirLock) release() {
	l.f.Close()
	if l.path != "" {
		os.Remove(l.path)
	}
}

// Factory builds tiered engines, one directory per cluster node, under
// root.
func Factory(root string, opts Options) backend.Factory {
	return func(node int) (backend.Backend, error) {
		return Open(filepath.Join(root, backend.NodeDir(node)), opts)
	}
}

func partKey(table, pkey string) string { return table + "\x00" + pkey }

func (s *Store) mustOpenLocked() {
	if s.closed {
		panic("tiered: use after Close")
	}
}

// gauge refreshes the lock-free memory-resident-size mirror (hot rows
// plus warmed cold copies); callers hold mu.
func (s *Store) gauge() { s.hotBytes.Store(s.hot.StoredBytes() + s.warmBytes) }

// touch stamps the idle-detection clock; every foreground operation
// calls it so background maintenance knows when the store is quiet.
func (s *Store) touch() { s.lastOp.Store(time.Now().UnixNano()) }

// idleNow reports whether no foreground operation has arrived for the
// idle window.
func (s *Store) idleNow() bool {
	if s.opts.IdleCompactAfter < 0 {
		return false
	}
	return time.Since(time.Unix(0, s.lastOp.Load())) >= s.opts.IdleCompactAfter
}

// --- warm tier (memory-resident copies of cold rows) ------------------

// dropWarmLocked removes a row's warmed copy, if any; callers hold mu.
func (s *Store) dropWarmLocked(key, table, pkey, ckey string) {
	part := s.warmMeta[key]
	if part == nil {
		return
	}
	e, ok := part[ckey]
	if !ok {
		return
	}
	delete(part, ckey)
	if len(part) == 0 {
		delete(s.warmMeta, key)
	}
	s.warm.Delete(table, pkey, ckey)
	s.warmBytes -= int64(e.vlen + len(ckey))
	s.warmStale++
	if len(s.warmQueue) >= 64 && s.warmStale*2 >= len(s.warmQueue) {
		s.compactWarmQueue()
	}
	// Refresh the gauge here, not in the callers: deleting a row that
	// exists only as a warmed copy takes no hot-tier branch, and the
	// freed bytes must not linger in TierHotBytes.
	s.gauge()
}

// compactWarmQueue rewrites the eviction queue keeping live refs only;
// amortized O(1) per warm mutation, same policy as compactQueue.
func (s *Store) compactWarmQueue() {
	live := s.warmQueue[:0]
	for _, ref := range s.warmQueue {
		if part := s.warmMeta[partKey(ref.table, ref.pkey)]; part != nil {
			if e, ok := part[ref.ckey]; ok && e.ver == ref.ver {
				live = append(live, ref)
			}
		}
	}
	for i := len(live); i < len(s.warmQueue); i++ {
		s.warmQueue[i] = warmRef{}
	}
	s.warmQueue = live
	s.warmStale = 0
}

// warmInsertLocked installs a memory-resident copy of a row that is
// live in the cold tier, charged against the HotBytes budget. The row
// must not currently be owned by the hot tier; callers hold mu.
func (s *Store) warmInsertLocked(table, pkey, ckey string, val []byte) bool {
	key := partKey(table, pkey)
	if part := s.hotMeta[key]; part != nil {
		if _, owned := part[ckey]; owned {
			return false
		}
	}
	if part := s.warmMeta[key]; part != nil {
		if _, resident := part[ckey]; resident {
			return false
		}
	}
	n := int64(len(ckey) + len(val))
	if s.hot.StoredBytes()+s.warmBytes+n > s.opts.HotBytes {
		return false
	}
	s.ver++
	part := s.warmMeta[key]
	if part == nil {
		part = make(map[string]warmEntry)
		s.warmMeta[key] = part
	}
	part[ckey] = warmEntry{vlen: len(val), ver: s.ver}
	s.warm.Put(table, pkey, ckey, val)
	s.warmBytes += n
	s.warmQueue = append(s.warmQueue, warmRef{table: table, pkey: pkey, ckey: ckey, ver: s.ver})
	s.gauge()
	return true
}

// evictWarmLocked frees warmed copies (front of the queue first — the
// oldest data) until freed bytes reach want or the warm tier is empty;
// callers hold mu. Eviction is pure memory release: the rows stay
// durable in the cold tier.
func (s *Store) evictWarmLocked(want int64) int64 {
	var freed int64
	for freed < want && len(s.warmQueue) > 0 {
		ref := s.warmQueue[0]
		s.warmQueue[0] = warmRef{}
		s.warmQueue = s.warmQueue[1:]
		part := s.warmMeta[partKey(ref.table, ref.pkey)]
		if part == nil {
			s.warmStale--
			continue
		}
		e, ok := part[ref.ckey]
		if !ok || e.ver != ref.ver {
			s.warmStale--
			continue
		}
		delete(part, ref.ckey)
		if len(part) == 0 {
			delete(s.warmMeta, partKey(ref.table, ref.pkey))
		}
		s.warm.Delete(ref.table, ref.pkey, ref.ckey)
		n := int64(e.vlen + len(ref.ckey))
		s.warmBytes -= n
		freed += n
	}
	s.gauge()
	return freed
}

// --- mutation application (shared by foreground ops and WAL replay) ---

func (s *Store) applyHotPut(seg int, table, pkey, ckey string, value []byte) {
	key := partKey(table, pkey)
	// The hot tier takes ownership: a warmed copy of the old version
	// must not outlive this write (it would shadow the cold tier with
	// stale data once the row flushes).
	s.dropWarmLocked(key, table, pkey, ckey)
	part := s.hotMeta[key]
	if part == nil {
		part = make(map[string]*rowMeta)
		s.hotMeta[key] = part
	}
	s.ver++
	if meta := part[ckey]; meta != nil {
		s.pending[meta.seg]--
		if meta.inFlight {
			meta.inFlight = false
		} else {
			s.staleQueued++
		}
		meta.seg, meta.ver, meta.vlen = seg, s.ver, len(value)
	} else {
		part[ckey] = &rowMeta{seg: seg, ver: s.ver, vlen: len(value)}
		if cvlen, ok := s.cold.Stat(table, pkey, ckey); ok {
			s.addShadow(key, ckey, int64(cvlen+len(ckey)))
		}
	}
	s.pending[seg]++
	s.hot.Put(table, pkey, ckey, value)
	s.queue = append(s.queue, flushItem{table: table, pkey: pkey, ckey: ckey, ver: s.ver})
	if len(s.queue) >= 64 && s.staleQueued*2 >= len(s.queue) {
		s.compactQueue()
	}
	s.gauge()
}

// compactQueue rewrites the queue keeping only live entries (enqueue
// order preserved). Amortized O(1) per mutation: it runs only when at
// least half the queue is stale, and every stale entry was minted by
// one mutation.
func (s *Store) compactQueue() {
	live := s.queue[:0]
	for _, item := range s.queue {
		if part := s.hotMeta[partKey(item.table, item.pkey)]; part != nil {
			if meta := part[item.ckey]; meta != nil && meta.ver == item.ver {
				live = append(live, item)
			}
		}
	}
	for i := len(live); i < len(s.queue); i++ {
		s.queue[i] = flushItem{} // release the strings
	}
	s.queue = live
	s.staleQueued = 0
}

// applyDelete removes the row from both tiers. The caller holds mu (and
// ioMu on the foreground path; replay runs before the flusher starts).
func (s *Store) applyDelete(seg int, table, pkey, ckey string) bool {
	key := partKey(table, pkey)
	s.dropWarmLocked(key, table, pkey, ckey)
	existed := false
	if part := s.hotMeta[key]; part != nil {
		if meta := part[ckey]; meta != nil {
			s.pending[meta.seg]--
			s.staleQueued++
			delete(part, ckey)
			if len(part) == 0 {
				delete(s.hotMeta, key)
			}
			s.hot.Delete(table, pkey, ckey)
			s.dropShadow(key, ckey)
			s.gauge()
			existed = true
		}
	}
	if s.cold.Delete(table, pkey, ckey) {
		// The cold tombstone is not yet fsynced; the WAL record must
		// survive until it is.
		s.pending[seg]++
		s.tombs = append(s.tombs, seg)
		existed = true
	}
	return existed
}

func (s *Store) applyDrop(seg int, table, pkey string) {
	key := partKey(table, pkey)
	if wp := s.warmMeta[key]; wp != nil {
		for ckey, e := range wp {
			s.warmBytes -= int64(e.vlen + len(ckey))
		}
		s.warmStale += len(wp)
		delete(s.warmMeta, key)
		s.warm.DropPartition(table, pkey)
		if len(s.warmQueue) >= 64 && s.warmStale*2 >= len(s.warmQueue) {
			s.compactWarmQueue()
		}
	}
	if part := s.hotMeta[key]; part != nil {
		for _, meta := range part {
			s.pending[meta.seg]--
		}
		s.staleQueued += len(part)
		delete(s.hotMeta, key)
	}
	// Unconditional: the memtable may hold an empty partition object
	// whose rows were all flushed to cold (it would still surface in
	// PartitionKeys).
	s.hot.DropPartition(table, pkey)
	s.gauge()
	if shadows := s.shadow[key]; shadows != nil {
		for _, amt := range shadows {
			s.shadowBytes -= amt
		}
		delete(s.shadow, key)
	}
	if s.cold.HasPartition(table, pkey) {
		s.cold.DropPartition(table, pkey)
		s.pending[seg]++
		s.tombs = append(s.tombs, seg)
	}
}

func (s *Store) addShadow(key, ckey string, amt int64) {
	part := s.shadow[key]
	if part == nil {
		part = make(map[string]int64)
		s.shadow[key] = part
	}
	if old, ok := part[ckey]; ok {
		s.shadowBytes += amt - old
	} else {
		s.shadowBytes += amt
	}
	part[ckey] = amt
}

func (s *Store) dropShadow(key, ckey string) {
	part := s.shadow[key]
	if part == nil {
		return
	}
	if amt, ok := part[ckey]; ok {
		s.shadowBytes -= amt
		delete(part, ckey)
		if len(part) == 0 {
			delete(s.shadow, key)
		}
	}
}

// walAppend writes one record, batching fsyncs, and records any write
// error in the sticky werr (surfaced by Flush/Close, WAL semantics).
func (s *Store) walAppend(op byte, table, pkey, ckey string, value []byte) int {
	seg, err := s.wal.append(op, table, pkey, ckey, value)
	if err != nil {
		s.werr = errors.Join(s.werr, err)
		return seg
	}
	if s.wal.unsynced >= s.opts.WALSyncBytes {
		if err := s.wal.fsync(); err != nil {
			s.werr = errors.Join(s.werr, err)
		}
	}
	return seg
}

// --- Backend interface ----------------------------------------------

// Put appends a WAL record and lands the row in the hot tier. The cold
// tier is not touched; the background flusher migrates the row later.
func (s *Store) Put(table, pkey, ckey string, value []byte) {
	s.touch()
	s.mu.Lock()
	s.mustOpenLocked()
	seg := s.walAppend(walPut, table, pkey, ckey, value)
	s.applyHotPut(seg, table, pkey, ckey, value)
	over := s.hot.StoredBytes()+s.warmBytes > s.opts.HotBytes
	s.mu.Unlock()
	if over {
		select {
		case s.flushNow <- struct{}{}:
		default:
		}
	}
}

// Get reads memory-then-cold: hot rows and warmed copies are served
// without any disk access.
func (s *Store) Get(table, pkey, ckey string) ([]byte, bool) {
	v, ok, _ := s.GetTier(table, pkey, ckey)
	return v, ok
}

// GetTier is Get plus the per-call cold-row count the cluster's latency
// model charges (backend.TierReader).
func (s *Store) GetTier(table, pkey, ckey string) ([]byte, bool, int) {
	s.touch()
	s.mu.Lock()
	s.mustOpenLocked()
	if v, ok := s.hot.Get(table, pkey, ckey); ok {
		s.mu.Unlock()
		s.hotHits.Add(1)
		return v, true, 0
	}
	if v, ok := s.warm.Get(table, pkey, ckey); ok {
		s.mu.Unlock()
		s.hotHits.Add(1)
		return v, true, 0
	}
	s.mu.Unlock()
	v, ok := s.cold.Get(table, pkey, ckey)
	if ok {
		s.coldReads.Add(1)
		return v, true, 1
	}
	return v, false, 0
}

// MultiGet is the batch-read fast path: hot rows resolve under one lock
// acquisition, the misses go to the cold tier as one disklog batch.
func (s *Store) MultiGet(reqs []backend.KeyRead) [][]byte {
	out, _ := s.MultiGetTier(reqs)
	return out
}

// MultiGetTier is MultiGet plus the per-call cold-row count
// (backend.TierReader).
func (s *Store) MultiGetTier(reqs []backend.KeyRead) ([][]byte, int) {
	s.touch()
	out := make([][]byte, len(reqs))
	var missIdx []int
	s.mu.Lock()
	s.mustOpenLocked()
	hot := 0
	for i, r := range reqs {
		v, ok := s.hot.Get(r.Table, r.PKey, r.CKey)
		if !ok {
			v, ok = s.warm.Get(r.Table, r.PKey, r.CKey)
		}
		if ok {
			if v == nil {
				v = []byte{}
			}
			out[i] = v
			hot++
		} else {
			missIdx = append(missIdx, i)
		}
	}
	s.mu.Unlock()
	s.hotHits.Add(int64(hot))
	if len(missIdx) == 0 {
		return out, 0
	}
	miss := make([]backend.KeyRead, len(missIdx))
	for j, i := range missIdx {
		miss[j] = reqs[i]
	}
	vals := s.cold.MultiGet(miss)
	cold := 0
	for j, i := range missIdx {
		if vals[j] != nil {
			out[i] = vals[j]
			cold++
		}
	}
	s.coldReads.Add(int64(cold))
	return out, cold
}

// mergeRows merges two row slices sorted by clustering key, preferring
// a's row on equal keys.
func mergeRows(a, b []backend.Row) []backend.Row {
	if len(b) == 0 {
		return a
	}
	if len(a) == 0 {
		return b
	}
	out := make([]backend.Row, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].CKey < b[j].CKey:
			out = append(out, a[i])
			i++
		case a[i].CKey > b[j].CKey:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i, j = i+1, j+1
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// ScanPrefix merges the tiers' scans in clustering order; a row present
// in more than one place is served from the hottest copy.
func (s *Store) ScanPrefix(table, pkey, prefix string) []backend.Row {
	rows, _ := s.ScanPrefixTier(table, pkey, prefix)
	return rows
}

// ScanPrefixTier is ScanPrefix plus the per-call cold-row count
// (backend.TierReader). Rows the memory tiers shadow may be read from
// the cold log but are not served from it; only the rows the cold tier
// actually contributes count as cold, so hit ratios and the cold-read
// latency surcharge reflect the serving tier.
func (s *Store) ScanPrefixTier(table, pkey, prefix string) ([]backend.Row, int) {
	s.touch()
	s.mu.Lock()
	s.mustOpenLocked()
	memRows := mergeRows(s.hot.ScanPrefix(table, pkey, prefix), s.warm.ScanPrefix(table, pkey, prefix))
	s.mu.Unlock()
	coldRows := s.cold.ScanPrefix(table, pkey, prefix)
	s.hotHits.Add(int64(len(memRows)))
	out := mergeRows(memRows, coldRows)
	cold := len(out) - len(memRows)
	s.coldReads.Add(int64(cold))
	return out, cold
}

// Delete removes the row from both tiers. It holds the flush gate so a
// chunk mid-migration cannot resurrect the row in the cold tier.
func (s *Store) Delete(table, pkey, ckey string) bool {
	s.touch()
	s.ioMu.Lock()
	defer s.ioMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mustOpenLocked()
	hotHas := false
	if part := s.hotMeta[partKey(table, pkey)]; part != nil {
		_, hotHas = part[ckey]
	}
	if !hotHas {
		if _, coldHas := s.cold.Stat(table, pkey, ckey); !coldHas {
			return false
		}
	}
	seg := s.walAppend(walDel, table, pkey, ckey, nil)
	return s.applyDelete(seg, table, pkey, ckey)
}

// DropPartition removes an entire partition from both tiers.
func (s *Store) DropPartition(table, pkey string) {
	s.touch()
	s.ioMu.Lock()
	defer s.ioMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mustOpenLocked()
	// Partition presence is object-level (an emptied partition still
	// lists in PartitionKeys, matching the memtable spec), so consult
	// the tiers, not the row sidecar.
	if !s.hot.HasPartition(table, pkey) && !s.cold.HasPartition(table, pkey) {
		return
	}
	seg := s.walAppend(walDrop, table, pkey, "", nil)
	s.applyDrop(seg, table, pkey)
}

// PartitionKeys returns the union of both tiers' partition keys, sorted.
func (s *Store) PartitionKeys(table string) []string {
	s.mu.Lock()
	s.mustOpenLocked()
	hot := s.hot.PartitionKeys(table)
	s.mu.Unlock()
	cold := s.cold.PartitionKeys(table)
	if len(hot) == 0 {
		return cold
	}
	seen := make(map[string]struct{}, len(hot)+len(cold))
	out := make([]string, 0, len(hot)+len(cold))
	for _, pk := range hot {
		seen[pk] = struct{}{}
		out = append(out, pk)
	}
	for _, pk := range cold {
		if _, dup := seen[pk]; !dup {
			out = append(out, pk)
		}
	}
	sort.Strings(out)
	return out
}

// Tables returns the union of both tiers' table names, sorted
// (backend.TableLister).
func (s *Store) Tables() []string {
	s.mu.Lock()
	s.mustOpenLocked()
	hot := s.hot.Tables()
	s.mu.Unlock()
	cold := s.cold.Tables()
	seen := make(map[string]struct{}, len(hot)+len(cold))
	out := make([]string, 0, len(hot)+len(cold))
	for _, t := range hot {
		seen[t] = struct{}{}
		out = append(out, t)
	}
	for _, t := range cold {
		if _, dup := seen[t]; !dup {
			out = append(out, t)
		}
	}
	sort.Strings(out)
	return out
}

// StoredBytes returns the logical live bytes across both tiers,
// counting rows resident in both exactly once. It waits out an
// in-flight flush chunk so the accounting is never torn.
func (s *Store) StoredBytes() int64 {
	s.ioMu.Lock()
	defer s.ioMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cold.StoredBytes() + s.hot.StoredBytes() - s.shadowBytes
}

// Flush makes every accepted write durable: the WAL is fsynced (hot
// rows survive a crash via replay) and the cold tier syncs its log.
// Any sticky write error surfaces here.
func (s *Store) Flush() error {
	s.ioMu.Lock()
	defer s.ioMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.Join(s.werr, errors.New("tiered: store closed"))
	}
	return s.flushDurableLocked()
}

// flushDurableLocked fsyncs both logs and clears satisfied tombstone
// obligations; callers hold ioMu and mu.
func (s *Store) flushDurableLocked() error {
	if err := s.wal.fsync(); err != nil {
		s.werr = errors.Join(s.werr, err)
	}
	if err := s.cold.Flush(); err != nil {
		s.werr = errors.Join(s.werr, err)
	} else {
		for _, seg := range s.tombs {
			s.pending[seg]--
		}
		s.tombs = nil
	}
	return s.werr
}

// Close stops the background flusher, fsyncs both logs, and releases
// every file. Hot rows are NOT drained to the cold tier: the WAL
// carries them to the next Open.
func (s *Store) Close() error {
	s.stopFlusher()
	s.ioMu.Lock()
	defer s.ioMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return s.werr
	}
	err := s.flushDurableLocked()
	// A fully-drained store (every WAL record superseded or durably
	// cold) empties its log on a clean close: replaying those records
	// would only re-promote cold rows into the hot tier at the next
	// open, overriding the warm-up policy's newest-first choice.
	if err == nil && len(s.tombs) == 0 {
		clean := true
		for _, n := range s.pending {
			if n != 0 {
				clean = false
				break
			}
		}
		if clean {
			s.retireWAL()
			if terr := s.wal.truncateActive(); terr != nil {
				err = errors.Join(err, terr)
				s.werr = err
			}
		}
	}
	s.wal.closeFiles()
	if cerr := s.cold.Close(); cerr != nil {
		err = errors.Join(err, cerr)
		s.werr = err
	}
	s.lock.release()
	s.closed = true
	return err
}

// Kill simulates a crash (testing aid): background work stops where it
// is, files close without a final WAL fsync, and the store becomes
// unusable. The on-disk state is what a new process would find after
// this one died mid-flight; Open recovers from it.
func (s *Store) Kill() {
	s.stopFlusher()
	s.ioMu.Lock()
	defer s.ioMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	s.wal.closeFiles()
	s.cold.Close()
	s.lock.release()
}

func (s *Store) stopFlusher() {
	s.stopFn.Do(func() { close(s.stop) })
	<-s.done
}

// TierCounters reports the per-tier activity counters (lock-free).
func (s *Store) TierCounters() backend.TierCounters {
	return backend.TierCounters{
		HotHits:         s.hotHits.Load(),
		ColdReads:       s.coldReads.Load(),
		FlushedRows:     s.flushedRows.Load(),
		FlushedBytes:    s.flushedBytes.Load(),
		Compactions:     s.compactions.Load(),
		IdleCompactions: s.idleCompactions.Load(),
		WarmedRows:      s.warmedRows.Load(),
		WarmedBytes:     s.warmedBytes.Load(),
		HotBytes:        s.hotBytes.Load(),
		Warming:         s.warming.Load(),
	}
}

// backupCopyHook, when set, runs after the backup has snapshotted its
// state and released the store lock, before any file is copied — a
// testing seam proving that foreground reads proceed while a large
// backup streams.
var backupCopyHook func()

// hasWALSegments reports whether dir exists and already holds WAL
// segment files (a missing directory is simply empty).
func hasWALSegments(dir string) (bool, error) {
	ids, err := listWALSegmentIDs(dir)
	if errors.Is(err, os.ErrNotExist) {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	return len(ids) > 0, nil
}

// Backup writes a consistent copy of the engine's durable state (cold
// segments and WAL) into dir, mirroring the on-disk layout so the copy
// opens as a normal tiered directory. The whole target is validated
// before anything is written, so a refused backup leaves the directory
// unchanged. Only the snapshot (fsync both logs, capture the WAL
// segment list) happens under the store lock; the bulk copy holds just
// the flush gate (ioMu), which freezes the cold tier and WAL retirement
// for the duration — foreground reads and puts keep flowing, deletes
// and background flushing wait. Writes accepted after the snapshot
// point are not part of the copy (they are a pure suffix of the WAL),
// so the backup is a consistent point-in-time state.
func (s *Store) Backup(dir string) error {
	s.ioMu.Lock()
	defer s.ioMu.Unlock()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("tiered: backup of closed store")
	}
	if err := s.flushDurableLocked(); err != nil {
		s.mu.Unlock()
		return fmt.Errorf("tiered: backup: %w", err)
	}
	type walSnap struct {
		f    *os.File
		size int64
		name string
	}
	snap := make([]walSnap, len(s.wal.segs))
	for i, seg := range s.wal.segs {
		snap[i] = walSnap{f: seg.f, size: seg.size, name: walSegmentName(seg.id)}
	}
	s.mu.Unlock()

	// Validate the whole target before writing anything.
	walDir := filepath.Join(dir, "wal")
	if dirty, err := hasWALSegments(walDir); err != nil {
		return err
	} else if dirty {
		return fmt.Errorf("tiered: backup target %s already holds WAL segments", walDir)
	}
	if hook := backupCopyHook; hook != nil {
		hook()
	}
	// cold.Backup re-validates its own target before copying.
	if err := s.cold.Backup(filepath.Join(dir, "cold")); err != nil {
		return err
	}
	if err := os.MkdirAll(walDir, 0o755); err != nil {
		return fmt.Errorf("tiered: backup: %w", err)
	}
	for _, seg := range snap {
		if err := backend.CopyFile(seg.f, seg.size, filepath.Join(walDir, seg.name)); err != nil {
			return err
		}
	}
	d, err := os.Open(walDir)
	if err != nil {
		return fmt.Errorf("tiered: backup: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("tiered: backup sync %s: %w", walDir, err)
	}
	return nil
}

// --- background maintenance ------------------------------------------

func (s *Store) flushLoop() {
	defer close(s.done)
	if !s.opts.DisableWarm {
		s.warmFromCold()
	}
	s.warming.Store(0)
	ticker := time.NewTicker(s.opts.FlushInterval)
	defer ticker.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-ticker.C:
		case <-s.flushNow:
		}
		s.maintain()
	}
}

// warmFromCold repopulates memory with the newest cold rows up to the
// HotBytes budget: the recency-skewed workloads the hot tier exists for
// hit the same rows right after a restart that they hit right before
// it, so the first post-reopen queries should not pay the cold tier's
// seek for each of them. The newest-first walk stops at the budget —
// old history is never replayed — and every insert re-validates the row
// under the store lock, so foreground writes, deletes and a concurrent
// Kill stay correct. Purely additive in-memory work: a crash at any
// point leaves the durable state untouched.
func (s *Store) warmFromCold() {
	type wrow struct {
		table, pkey, ckey string
		val               []byte
	}
	var rows []wrow
	s.mu.Lock()
	total := s.hot.StoredBytes() + s.warmBytes
	s.mu.Unlock()
	budget := s.opts.HotBytes
	err := s.cold.IterNewest(func(table, pkey, ckey string, value []byte) bool {
		select {
		case <-s.stop:
			return false
		default:
		}
		n := int64(len(ckey) + len(value))
		if total+n > budget {
			return false
		}
		total += n
		rows = append(rows, wrow{table: table, pkey: pkey, ckey: ckey, val: value})
		return true
	})
	if err != nil {
		return // cold read trouble: skip warm-up, the sticky error path owns it
	}
	// Insert oldest-first so the eviction queue's front holds the oldest
	// warmed data.
	for i := len(rows) - 1; i >= 0; i-- {
		select {
		case <-s.stop:
			return
		default:
		}
		r := rows[i]
		s.mu.Lock()
		if s.closed || s.werr != nil {
			s.mu.Unlock()
			return
		}
		// Skip rows the foreground rewrote or deleted since the walk; a
		// cold-tier check under mu orders the insert against deletes.
		if _, stillCold := s.cold.Stat(r.table, r.pkey, r.ckey); stillCold {
			if s.warmInsertLocked(r.table, r.pkey, r.ckey, r.val) {
				s.warmedRows.Add(1)
				s.warmedBytes.Add(int64(len(r.ckey) + len(r.val)))
			}
		}
		s.mu.Unlock()
	}
}

// maintain is the idle-aware scheduler. While foreground traffic is
// active it drains the hot tier down to half the budget in chunks
// throttled to CompactRate, exactly aggressive enough to keep the
// budget without starving foreground I/O. Once the store has been quiet
// for IdleCompactAfter it switches to full speed with a bigger goal:
// drain the hot tier completely (retiring the WAL) while re-homing the
// drained rows as warmed in-memory copies, and run the cold-tier
// compactions (small-segment merge, then full rewrite if worthwhile) —
// so write-heavy phases never pay compaction on the read path, and the
// disk work happens when nobody is waiting on the disk. The rate-limit
// sleep holds no locks.
func (s *Store) maintain() {
	idleWork := false
	for {
		select {
		case <-s.stop:
			return
		default:
		}
		idle := s.idleNow()
		n := s.flushChunk(idle)
		if n == 0 {
			break
		}
		if idle {
			idleWork = true
			continue // full speed: no throttle between chunks
		}
		if s.opts.CompactRate > 0 {
			sleep := time.Duration(float64(n) / float64(s.opts.CompactRate) * float64(time.Second))
			select {
			case <-s.stop:
				return
			case <-time.After(sleep):
			}
		}
	}
	if idleWork {
		s.idleCompactions.Add(1)
	}
	s.maybeCompactCold(s.idleNow())
}

// flushChunk migrates up to flushChunkBytes of the oldest hot rows into
// the cold tier and returns the byte count moved (0 when nothing needs
// to move). In the normal (busy) mode it works only while the drain
// latch is engaged, relieving memory pressure cheapest-first: warmed
// copies are evicted before any hot row pays cold-tier I/O. In idle
// mode it ignores the latch and drains the hot tier completely, and the
// commit phase re-homes each migrated row as a warmed copy (budget
// permitting) so the data stays memory-served. The whole chunk —
// select, cold write, fsync, commit, WAL retirement — runs under the
// flush gate (ioMu), so deletes cannot interleave with a migration;
// foreground puts and reads only contend for mu during the brief select
// and commit phases.
func (s *Store) flushChunk(idle bool) int64 {
	s.ioMu.Lock()
	defer s.ioMu.Unlock()

	type flushRow struct {
		flushItem
		seg int
		val []byte
	}
	var (
		batch []flushRow
		moved int64
	)
	s.mu.Lock()
	if s.closed || s.werr != nil {
		s.mu.Unlock()
		return 0
	}
	// Drop the stale queue prefix (rows overwritten or deleted since
	// they were enqueued) so churn below the budget cannot grow the
	// queue without bound.
	for len(s.queue) > 0 {
		item := s.queue[0]
		part := s.hotMeta[partKey(item.table, item.pkey)]
		if part != nil {
			if meta := part[item.ckey]; meta != nil && meta.ver == item.ver {
				break
			}
		}
		s.queue = s.queue[1:]
		s.staleQueued--
	}
	total := s.hot.StoredBytes() + s.warmBytes
	// Memory pressure is relieved cheapest-first: warmed copies are
	// dropped (no I/O) down to the budget itself — eviction needs no
	// hysteresis, so warmth above the low-water mark is never wasted.
	// Only if the hot rows alone still exceed the budget does the drain
	// latch engage and flushing pay cold-tier I/O.
	if total > s.opts.HotBytes && s.warmBytes > 0 {
		total -= s.evictWarmLocked(total - s.opts.HotBytes)
	}
	if total > s.opts.HotBytes {
		s.draining = true
	}
	lowWater := s.opts.HotBytes / 2
	excess := total - lowWater
	if excess <= 0 {
		s.draining = false
	}
	drain := s.draining
	if idle {
		// Full drain: every hot row becomes durable in the cold tier (the
		// WAL can then retire); the commit below keeps it memory-resident.
		excess = s.hot.StoredBytes()
		drain = excess > 0
	}
	for drain && excess > 0 && moved < flushChunkBytes && len(s.queue) > 0 {
		item := s.queue[0]
		s.queue = s.queue[1:]
		part := s.hotMeta[partKey(item.table, item.pkey)]
		if part == nil {
			s.staleQueued--
			continue
		}
		meta := part[item.ckey]
		if meta == nil || meta.ver != item.ver {
			s.staleQueued--
			continue // superseded or deleted; a fresher queue entry exists if needed
		}
		v, ok := s.hot.Get(item.table, item.pkey, item.ckey)
		if !ok {
			continue
		}
		n := int64(len(item.ckey) + len(v))
		meta.inFlight = true
		batch = append(batch, flushRow{flushItem: item, seg: meta.seg, val: v})
		moved += n
		excess -= n
	}
	tombsOnly := len(batch) == 0 && len(s.tombs) > 0
	s.mu.Unlock()

	if len(batch) == 0 && !tombsOnly {
		s.retireWALLocked()
		return 0
	}

	// Write + fsync the cold tier outside mu: foreground reads and puts
	// proceed while the disk works.
	for _, row := range batch {
		s.cold.Put(row.table, row.pkey, row.ckey, row.val)
	}
	if err := s.cold.Flush(); err != nil {
		s.mu.Lock()
		s.werr = errors.Join(s.werr, err)
		s.mu.Unlock()
		return 0
	}

	// Commit: drop migrated rows from the hot tier and retire satisfied
	// WAL obligations.
	s.mu.Lock()
	for _, row := range batch {
		key := partKey(row.table, row.pkey)
		part := s.hotMeta[key]
		var meta *rowMeta
		if part != nil {
			meta = part[row.ckey]
		}
		if meta == nil {
			// Unreachable while the flush gate excludes deletes; kept as
			// a safety net — the cold copy is stale but harmless only if
			// removed.
			s.cold.Delete(row.table, row.pkey, row.ckey)
			continue
		}
		if meta.ver != row.ver {
			// Overwritten mid-write: the hot tier still owns the row and
			// now shadows the cold copy we just created.
			s.addShadow(key, row.ckey, int64(len(row.ckey)+len(row.val)))
			continue
		}
		s.pending[meta.seg]--
		delete(part, row.ckey)
		if len(part) == 0 {
			delete(s.hotMeta, key)
		}
		s.hot.Delete(row.table, row.pkey, row.ckey)
		s.dropShadow(key, row.ckey)
		s.flushedRows.Add(1)
		s.flushedBytes.Add(int64(len(row.val)))
		if idle {
			// Idle drain keeps the data memory-served: the row is durable
			// cold now, its in-memory copy just changed tier.
			if s.warmInsertLocked(row.table, row.pkey, row.ckey, row.val) {
				s.warmedRows.Add(1)
				s.warmedBytes.Add(int64(len(row.ckey) + len(row.val)))
			}
		}
	}
	// The cold fsync above covered every tombstone applied before it.
	for _, seg := range s.tombs {
		s.pending[seg]--
	}
	s.tombs = nil
	s.gauge()
	s.retireWAL()
	s.mu.Unlock()
	return moved
}

// retireWAL deletes the longest prefix of WAL segments with no
// outstanding obligations; the caller holds ioMu and mu.
func (s *Store) retireWAL() {
	for seg, n := range s.pending {
		if n == 0 {
			delete(s.pending, seg)
		}
	}
	dropUpTo := s.wal.activeID() - 1
	for seg := range s.pending {
		if seg-1 < dropUpTo {
			dropUpTo = seg - 1
		}
	}
	if dropUpTo < 1 || len(s.wal.segs) <= 1 || s.wal.segs[0].id > dropUpTo {
		return // nothing would actually drop
	}
	// A segment's pending count can reach zero because its records were
	// superseded by records in a newer segment whose bytes are not yet
	// fsynced. Deleting the old segment then would leave the row's only
	// surviving record in the page cache — a power cut loses it entirely,
	// even if an earlier Flush had made the old version durable. Sync the
	// WAL first; retirement is infrequent and the sync is a no-op when
	// the batch fsync already ran.
	if err := s.wal.fsync(); err != nil {
		s.werr = errors.Join(s.werr, err)
		return
	}
	if err := s.wal.dropThrough(dropUpTo); err != nil {
		s.werr = errors.Join(s.werr, err)
	}
}

// retireWALLocked is retireWAL for callers holding only ioMu.
func (s *Store) retireWALLocked() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.retireWAL()
}

// maybeCompactCold runs the cold tier's compactions, leveled by cost.
// The cheap newest-level merge (coalescing the small segments that
// rotation and trickle flushes leave at the tail) runs in any mode —
// its work is proportional to the new data. The full-log rewrite is
// gated on an idle window: while foreground traffic is active it runs
// only as an emergency (the log is at least three quarters garbage), so
// write-heavy scenarios stop paying whole-log compaction on the read
// path. Both hold the flush gate (deletes and flushes wait); hot-tier
// reads are untouched.
func (s *Store) maybeCompactCold(idle bool) {
	s.mu.Lock()
	if s.closed || s.werr != nil {
		s.mu.Unlock()
		return
	}
	s.mu.Unlock()
	record := func(err error) {
		if err != nil {
			s.mu.Lock()
			s.werr = errors.Join(s.werr, err)
			s.mu.Unlock()
			return
		}
		s.compactions.Add(1)
		if idle {
			s.idleCompactions.Add(1)
		}
	}
	s.ioMu.Lock()
	n, err := s.cold.MergeSmall(0, 4)
	s.ioMu.Unlock()
	if err != nil || n > 0 {
		record(err)
		if err != nil {
			return
		}
	}
	dead := s.cold.DeadBytes()
	floor := s.opts.Cold.CompactMinDead
	if floor <= 0 {
		floor = disklog.DefaultCompactMinDead
	}
	live := s.cold.StoredBytes()
	if dead < floor || dead <= live {
		return
	}
	if !idle && dead <= 3*live {
		return // defer the full rewrite to an idle window
	}
	s.ioMu.Lock()
	err = s.cold.Compact()
	s.ioMu.Unlock()
	record(err)
}

// String describes the engine state (fmt.Stringer, for inspection).
func (s *Store) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return fmt.Sprintf("tiered(%s: %dB hot, %d wal segments, cold %s)",
		s.dir, s.hot.StoredBytes(), len(s.wal.segs), s.cold)
}

var _ backend.Backend = (*Store)(nil)
var _ backend.BatchReader = (*Store)(nil)
var _ backend.TierCounting = (*Store)(nil)
var _ backend.TierReader = (*Store)(nil)
var _ backend.Backuper = (*Store)(nil)
