//go:build !(darwin || dragonfly || freebsd || linux || netbsd || openbsd)

package tiered

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// lockDir emulates an exclusive directory lock on platforms without
// flock(2): dir/LOCK is created with O_EXCL and stamped with the
// owner's PID. Unlike the flock path, the OS does not reclaim the lock
// when the owner dies, so a crash leaves a stale file behind — the
// error names the recorded PID so the operator can verify the process
// is gone and remove the file by hand.
func lockDir(dir string) (*dirLock, error) {
	path := filepath.Join(dir, "LOCK")
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		if os.IsExist(err) {
			pid, _ := os.ReadFile(path)
			return nil, fmt.Errorf("tiered: %s is already open (LOCK held by pid %s; its background flusher owns the files); one handle per directory — remove %s only if that process is gone", dir, strings.TrimSpace(string(pid)), path)
		}
		return nil, fmt.Errorf("tiered: %w", err)
	}
	if _, err := f.WriteString(strconv.Itoa(os.Getpid())); err != nil {
		f.Close()
		os.Remove(path)
		return nil, fmt.Errorf("tiered: %w", err)
	}
	return &dirLock{f: f, path: path}, nil
}
