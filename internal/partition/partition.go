// Package partition implements the graph partitioning strategies of the
// paper (§4.5): random node-id hashing, locality-aware partitioning (the
// paper's min-cut/"Maxflow" style; we substitute a Linear Deterministic
// Greedy streaming placement with boundary refinement — see DESIGN.md §3.2),
// and the temporal-collapse functions Ω (Median, Union-Max, Union-Mean)
// with the three node-weighting options that project a time-evolving graph
// onto a single weighted static graph before partitioning.
package partition

import (
	"hash/fnv"
	"math"
	"sort"

	"hgs/internal/graph"
)

// Assignment maps each node to its partition id in [0, k).
type Assignment map[graph.NodeID]int

// Kind selects the partitioning strategy.
type Kind int

const (
	// Random assigns nodes by id hash — minimal bookkeeping, poor locality.
	Random Kind = iota
	// Locality clusters topologically close nodes — fewer edge cuts, needs
	// a stored node→partition map (the Micropartitions table).
	Locality
)

func (k Kind) String() string {
	if k == Locality {
		return "locality"
	}
	return "random"
}

// HashPID returns the random-strategy partition id for a node: a stateless
// hash, so no Micropartitions bookkeeping is needed.
func HashPID(id graph.NodeID, k int) int {
	if k <= 1 {
		return 0
	}
	h := fnv.New64a()
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(uint64(id) >> (8 * i))
	}
	h.Write(b[:])
	return int(h.Sum64() % uint64(k))
}

// RandomAssign materializes the hash assignment for an explicit node set.
func RandomAssign(ids []graph.NodeID, k int) Assignment {
	a := make(Assignment, len(ids))
	for _, id := range ids {
		a[id] = HashPID(id, k)
	}
	return a
}

// WeightedGraph is the static projection a temporal graph collapses to
// before locality partitioning: node weights and undirected edge weights.
type WeightedGraph struct {
	NodeW map[graph.NodeID]float64
	EdgeW map[EdgePair]float64
}

// EdgePair is an unordered node pair with U < V.
type EdgePair struct {
	U, V graph.NodeID
}

// MakePair normalizes an unordered pair.
func MakePair(a, b graph.NodeID) EdgePair {
	if a > b {
		a, b = b, a
	}
	return EdgePair{U: a, V: b}
}

// NewWeightedGraph returns an empty weighted graph.
func NewWeightedGraph() *WeightedGraph {
	return &WeightedGraph{
		NodeW: make(map[graph.NodeID]float64),
		EdgeW: make(map[EdgePair]float64),
	}
}

// AddNode ensures the node exists with at least weight w.
func (wg *WeightedGraph) AddNode(id graph.NodeID, w float64) {
	if old, ok := wg.NodeW[id]; !ok || w > old {
		wg.NodeW[id] = w
	}
}

// AddEdge sets the weight of the undirected edge (max with existing).
func (wg *WeightedGraph) AddEdge(u, v graph.NodeID, w float64) {
	if u == v {
		return
	}
	p := MakePair(u, v)
	if old, ok := wg.EdgeW[p]; !ok || w > old {
		wg.EdgeW[p] = w
	}
	wg.AddNode(u, 1)
	wg.AddNode(v, 1)
}

// adjacency returns neighbor→weight maps.
func (wg *WeightedGraph) adjacency() map[graph.NodeID]map[graph.NodeID]float64 {
	adj := make(map[graph.NodeID]map[graph.NodeID]float64, len(wg.NodeW))
	for id := range wg.NodeW {
		adj[id] = nil
	}
	for p, w := range wg.EdgeW {
		if adj[p.U] == nil {
			adj[p.U] = make(map[graph.NodeID]float64)
		}
		if adj[p.V] == nil {
			adj[p.V] = make(map[graph.NodeID]float64)
		}
		adj[p.U][p.V] = w
		adj[p.V][p.U] = w
	}
	return adj
}

// EdgeCut returns the total weight of edges whose endpoints fall in
// different partitions (the quantity locality partitioning minimizes).
func (wg *WeightedGraph) EdgeCut(a Assignment) float64 {
	cut := 0.0
	for p, w := range wg.EdgeW {
		if a[p.U] != a[p.V] {
			cut += w
		}
	}
	return cut
}

// LocalityAssign partitions the weighted graph into k balanced parts using
// Linear Deterministic Greedy streaming placement followed by `refinePasses`
// boundary-refinement sweeps. Balance constraint: every partition's node
// count stays within ceil(n/k * slack).
func LocalityAssign(wg *WeightedGraph, k int, refinePasses int) Assignment {
	n := len(wg.NodeW)
	a := make(Assignment, n)
	if n == 0 {
		return a
	}
	if k <= 1 {
		for id := range wg.NodeW {
			a[id] = 0
		}
		return a
	}
	capacity := int(math.Ceil(float64(n)/float64(k)*1.05)) + 1
	adj := wg.adjacency()

	// Stream nodes in BFS order from the smallest id of each component so
	// that neighbors tend to arrive near each other (improves LDG
	// placement markedly over id order).
	order := bfsOrder(wg, adj)

	sizes := make([]int, k)
	for _, id := range order {
		best, bestScore := -1, math.Inf(-1)
		// Edge weight into each partition.
		into := make(map[int]float64)
		for nb, w := range adj[id] {
			if pid, ok := a[nb]; ok {
				into[pid] += w
			}
		}
		for pid := 0; pid < k; pid++ {
			if sizes[pid] >= capacity {
				continue
			}
			score := into[pid] * (1 - float64(sizes[pid])/float64(capacity))
			if into[pid] == 0 {
				// Tie-break empty-affinity nodes toward the emptiest
				// partition to keep balance.
				score = -float64(sizes[pid]) / float64(capacity) * 1e-9
			}
			if score > bestScore {
				best, bestScore = pid, score
			}
		}
		if best < 0 { // all full (can happen with tiny slack); spill to min
			for pid := 0; pid < k; pid++ {
				if best < 0 || sizes[pid] < sizes[best] {
					best = pid
				}
			}
		}
		a[id] = best
		sizes[best]++
	}

	// Boundary refinement: move a node to the partition holding the
	// majority weight of its neighbors when that strictly reduces the cut
	// and respects capacity.
	ids := make([]graph.NodeID, 0, n)
	for id := range wg.NodeW {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for pass := 0; pass < refinePasses; pass++ {
		moved := 0
		for _, id := range ids {
			cur := a[id]
			into := make(map[int]float64)
			for nb, w := range adj[id] {
				into[a[nb]] += w
			}
			best, bestGain := cur, 0.0
			for pid, w := range into {
				if pid == cur || sizes[pid] >= capacity {
					continue
				}
				gain := w - into[cur]
				if gain > bestGain || (gain == bestGain && gain > 0 && pid < best) {
					best, bestGain = pid, gain
				}
			}
			if best != cur && bestGain > 0 {
				sizes[cur]--
				sizes[best]++
				a[id] = best
				moved++
			}
		}
		if moved == 0 {
			break
		}
	}
	return a
}

// bfsOrder returns all node ids in per-component BFS order, components
// visited by ascending smallest id, neighbors by descending edge weight.
func bfsOrder(wg *WeightedGraph, adj map[graph.NodeID]map[graph.NodeID]float64) []graph.NodeID {
	all := make([]graph.NodeID, 0, len(wg.NodeW))
	for id := range wg.NodeW {
		all = append(all, id)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	visited := make(map[graph.NodeID]bool, len(all))
	order := make([]graph.NodeID, 0, len(all))
	for _, root := range all {
		if visited[root] {
			continue
		}
		visited[root] = true
		queue := []graph.NodeID{root}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			order = append(order, cur)
			nbs := make([]graph.NodeID, 0, len(adj[cur]))
			for nb := range adj[cur] {
				if !visited[nb] {
					nbs = append(nbs, nb)
				}
			}
			sort.Slice(nbs, func(i, j int) bool {
				wi, wj := adj[cur][nbs[i]], adj[cur][nbs[j]]
				if wi != wj {
					return wi > wj
				}
				return nbs[i] < nbs[j]
			})
			for _, nb := range nbs {
				visited[nb] = true
				queue = append(queue, nb)
			}
		}
	}
	return order
}

// Sizes returns per-partition node counts.
func (a Assignment) Sizes(k int) []int {
	out := make([]int, k)
	for _, pid := range a {
		if pid >= 0 && pid < k {
			out[pid]++
		}
	}
	return out
}
