// Package tiered is a hot/cold storage engine: recent writes live in an
// in-memory memtable (the hot tier) and are made durable by a
// write-ahead log, while a background goroutine flushes them into a
// disklog segment store (the cold tier) under a configurable byte-rate
// limit. Reads check hot then cold, so the working set the paper calls
// hot — the newest timespans and deltas, which most queries touch —
// is served from memory without disk I/O, while historical partitions
// stay durable and cheap on disk.
//
// Write path: every mutation appends one WAL record and applies to the
// memtable; nothing waits on the cold tier. The flusher moves the
// oldest hot rows into the cold disklog in small chunks (at most
// Options.CompactRate bytes per second), fsyncs the cold tier, and only
// then drops the rows from the memtable and retires WAL segments whose
// records are all either superseded or durably cold — so a crash at any
// instant recovers by opening the cold tier and replaying the remaining
// WAL into the hot tier. Foreground reads never wait on a flush: hot
// hits touch only the memtable, and the flusher holds no lock while it
// sleeps off the rate limit.
//
// Error model: a cold-tier or WAL I/O failure is recorded in a sticky
// error that halts background migration (the safe state — nothing is
// dropped from the hot tier or retired from the WAL on faith) and is
// returned by every subsequent Flush and by Close. Callers must stop
// ingesting once Flush fails; the hgs write path does this naturally
// because every Load/Append batch ends in a cluster Flush.
//
// The engine implements backend.Backend, backend.BatchReader,
// backend.TierCounting (per-tier read counters surfaced through
// kvstore.Metrics) and backend.Backuper.
package tiered

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hgs/internal/backend"
	"hgs/internal/backend/disklog"
	"hgs/internal/backend/memtable"
)

// Options tune the engine. Zero values take the defaults.
type Options struct {
	// HotBytes is the hot-tier budget: once the memtable's live bytes
	// exceed it, the background flusher drains the oldest rows to the
	// cold tier until the memtable is at half the budget (default 32 MiB).
	HotBytes int64
	// CompactRate caps background flushing at this many bytes per
	// second, so a flush storm cannot monopolize the disk foreground
	// reads are using. Zero selects the 8 MiB/s default; negative
	// disables the limit.
	CompactRate int64
	// FlushInterval is the background maintenance period (default 25ms).
	FlushInterval time.Duration
	// WALSegmentBytes rotates the write-ahead log after this many bytes
	// (default 16 MiB). Smaller segments retire sooner after flushes.
	WALSegmentBytes int64
	// WALSyncBytes fsyncs the WAL after this many appended bytes
	// (default 1 MiB). Flush and Close always fsync.
	WALSyncBytes int64
	// Cold tunes the cold-tier disklog. Its triggered auto-compaction is
	// always disabled: the background goroutine owns cold compaction.
	Cold disklog.Options
}

func (o *Options) normalize() {
	if o.HotBytes <= 0 {
		o.HotBytes = 32 << 20
	}
	if o.CompactRate == 0 {
		o.CompactRate = 8 << 20
	}
	if o.FlushInterval <= 0 {
		o.FlushInterval = 25 * time.Millisecond
	}
	if o.WALSegmentBytes <= 0 {
		o.WALSegmentBytes = 16 << 20
	}
	if o.WALSyncBytes <= 0 {
		o.WALSyncBytes = 1 << 20
	}
	o.Cold.DisableAutoCompact = true
}

// flushChunkBytes bounds one flusher chunk: the unit of work between
// rate-limit sleeps, and the longest a foreground Delete can be held at
// the flush gate.
const flushChunkBytes = 256 << 10

// rowMeta tracks one hot row's flush obligations.
type rowMeta struct {
	seg  int    // WAL segment holding the row's latest record
	ver  uint64 // bumped on every overwrite; flushes of stale versions abort
	vlen int
	// inFlight marks a row whose live queue entry was popped into a
	// flush batch that has not committed. An overwrite then supersedes
	// that batch entry, not a queue entry, so it must not count toward
	// staleQueued (the first overwrite clears the mark).
	inFlight bool
}

// flushItem is one FIFO flush candidate. Stale entries (the row was
// overwritten or deleted since) are skipped by the version check.
type flushItem struct {
	table, pkey, ckey string
	ver               uint64
}

// Store is one node's tiered engine. All methods are safe for
// concurrent use; the background flusher runs until Close.
type Store struct {
	dir  string
	opts Options

	// ioMu serializes cold-tier mutation and WAL retirement: flush
	// chunks, foreground deletes/drops, cold compaction, backup, and
	// consistent StoredBytes reads. Lock order: ioMu, then mu, then the
	// tiers' internal locks. It is never held while sleeping off the
	// rate limit.
	ioMu sync.Mutex

	mu   sync.Mutex
	hot  *memtable.Store
	wal  *wal
	cold *disklog.Store

	hotMeta map[string]map[string]*rowMeta // table\0pkey → ckey → meta
	// shadow holds, for hot rows that also exist in the cold tier, the
	// cold bytes they hide — so StoredBytes counts each logical row once.
	shadow      map[string]map[string]int64
	shadowBytes int64
	// pending counts, per WAL segment, records whose effect is not yet
	// durable in the cold tier. A prefix of segments with zero pending
	// can be deleted.
	pending map[int]int
	// tombs lists WAL segments whose delete/drop records have been
	// applied to the cold tier but not yet fsynced there.
	tombs []int
	queue []flushItem
	// staleQueued counts queue entries whose row was overwritten or
	// deleted since enqueue. The flusher only trims the stale prefix, so
	// once stale entries dominate the queue it is compacted wholesale —
	// otherwise churn behind one long-lived under-budget row (which pins
	// the head) would grow the queue without bound.
	staleQueued int
	// draining is the flusher's hysteresis latch: set when hot bytes
	// exceed HotBytes, cleared once they fall to the HotBytes/2 low
	// water. Without it the flusher would drain any working set above
	// the low-water mark, halving the effective hot tier.
	draining bool
	ver      uint64

	werr   error
	closed bool
	lock   *dirLock // exclusive LOCK on dir: one live handle per directory
	stop   chan struct{}
	done   chan struct{}
	stopFn sync.Once

	flushNow chan struct{}

	hotHits      atomic.Int64
	coldReads    atomic.Int64
	flushedRows  atomic.Int64
	flushedBytes atomic.Int64
	compactions  atomic.Int64
	hotBytes     atomic.Int64 // gauge mirror of hot.StoredBytes()
}

// Open opens (or creates) the engine rooted at dir: the cold tier under
// dir/cold, the WAL under dir/wal. The WAL is replayed into the hot
// tier (torn tail truncated), so a store killed mid-flush reopens with
// every acknowledged write intact. The background flusher starts
// immediately — which is why the directory is locked exclusively: a
// second live handle would run a second flusher over the same files
// and corrupt them. On platforms with flock(2) the lock dies with the
// process, so a crash never leaves the directory unopenable; elsewhere
// a PID-stamped LOCK file is used and a stale one left by a crash must
// be removed by hand (the error says which). Open fails fast when the
// directory is already held.
func Open(dir string, opts Options) (*Store, error) {
	opts.normalize()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("tiered: %w", err)
	}
	lock, err := lockDir(dir)
	if err != nil {
		return nil, err
	}
	cold, err := disklog.Open(filepath.Join(dir, "cold"), opts.Cold)
	if err != nil {
		lock.release()
		return nil, err
	}
	w, err := openWAL(filepath.Join(dir, "wal"), opts.WALSegmentBytes)
	if err != nil {
		cold.Close()
		lock.release()
		return nil, err
	}
	s := &Store{
		dir:      dir,
		opts:     opts,
		hot:      memtable.New(),
		wal:      w,
		cold:     cold,
		lock:     lock,
		hotMeta:  make(map[string]map[string]*rowMeta),
		shadow:   make(map[string]map[string]int64),
		pending:  make(map[int]int),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
		flushNow: make(chan struct{}, 1),
	}
	// Rebuild the hot tier. Replayed deletes and drops are re-applied to
	// the cold tier too: a crash may have cut in after the WAL append
	// but before the cold tombstone.
	err = w.replay(func(segID int, op byte, table, pkey, ckey string, value []byte) error {
		switch op {
		case walPut:
			s.applyHotPut(segID, table, pkey, ckey, value)
		case walDel:
			s.applyDelete(segID, table, pkey, ckey)
		case walDrop:
			s.applyDrop(segID, table, pkey)
		}
		return nil
	})
	if err == nil {
		// Make the re-applied tombstones durable now, clearing their
		// truncation obligations.
		if err = cold.Flush(); err == nil {
			for _, seg := range s.tombs {
				s.pending[seg]--
			}
			s.tombs = nil
		}
	}
	if err != nil {
		w.closeFiles()
		cold.Close()
		lock.release()
		return nil, err
	}
	s.hotBytes.Store(s.hot.StoredBytes())
	go s.flushLoop()
	return s, nil
}

// dirLock is the exclusive per-directory lock handed out by lockDir
// (see lock_flock.go and lock_fallback.go for the per-platform
// implementations).
type dirLock struct {
	f *os.File
	// path is set only by the portable fallback, which must unlink the
	// LOCK file on release; the flock path leaves the file in place and
	// lets the OS drop the lock when f closes.
	path string
}

func (l *dirLock) release() {
	l.f.Close()
	if l.path != "" {
		os.Remove(l.path)
	}
}

// Factory builds tiered engines, one directory per cluster node, under
// root.
func Factory(root string, opts Options) backend.Factory {
	return func(node int) (backend.Backend, error) {
		return Open(filepath.Join(root, backend.NodeDir(node)), opts)
	}
}

func partKey(table, pkey string) string { return table + "\x00" + pkey }

func (s *Store) mustOpenLocked() {
	if s.closed {
		panic("tiered: use after Close")
	}
}

// gauge refreshes the lock-free hot-size mirror; callers hold mu.
func (s *Store) gauge() { s.hotBytes.Store(s.hot.StoredBytes()) }

// --- mutation application (shared by foreground ops and WAL replay) ---

func (s *Store) applyHotPut(seg int, table, pkey, ckey string, value []byte) {
	key := partKey(table, pkey)
	part := s.hotMeta[key]
	if part == nil {
		part = make(map[string]*rowMeta)
		s.hotMeta[key] = part
	}
	s.ver++
	if meta := part[ckey]; meta != nil {
		s.pending[meta.seg]--
		if meta.inFlight {
			meta.inFlight = false
		} else {
			s.staleQueued++
		}
		meta.seg, meta.ver, meta.vlen = seg, s.ver, len(value)
	} else {
		part[ckey] = &rowMeta{seg: seg, ver: s.ver, vlen: len(value)}
		if cvlen, ok := s.cold.Stat(table, pkey, ckey); ok {
			s.addShadow(key, ckey, int64(cvlen+len(ckey)))
		}
	}
	s.pending[seg]++
	s.hot.Put(table, pkey, ckey, value)
	s.queue = append(s.queue, flushItem{table: table, pkey: pkey, ckey: ckey, ver: s.ver})
	if len(s.queue) >= 64 && s.staleQueued*2 >= len(s.queue) {
		s.compactQueue()
	}
	s.gauge()
}

// compactQueue rewrites the queue keeping only live entries (enqueue
// order preserved). Amortized O(1) per mutation: it runs only when at
// least half the queue is stale, and every stale entry was minted by
// one mutation.
func (s *Store) compactQueue() {
	live := s.queue[:0]
	for _, item := range s.queue {
		if part := s.hotMeta[partKey(item.table, item.pkey)]; part != nil {
			if meta := part[item.ckey]; meta != nil && meta.ver == item.ver {
				live = append(live, item)
			}
		}
	}
	for i := len(live); i < len(s.queue); i++ {
		s.queue[i] = flushItem{} // release the strings
	}
	s.queue = live
	s.staleQueued = 0
}

// applyDelete removes the row from both tiers. The caller holds mu (and
// ioMu on the foreground path; replay runs before the flusher starts).
func (s *Store) applyDelete(seg int, table, pkey, ckey string) bool {
	key := partKey(table, pkey)
	existed := false
	if part := s.hotMeta[key]; part != nil {
		if meta := part[ckey]; meta != nil {
			s.pending[meta.seg]--
			s.staleQueued++
			delete(part, ckey)
			if len(part) == 0 {
				delete(s.hotMeta, key)
			}
			s.hot.Delete(table, pkey, ckey)
			s.dropShadow(key, ckey)
			s.gauge()
			existed = true
		}
	}
	if s.cold.Delete(table, pkey, ckey) {
		// The cold tombstone is not yet fsynced; the WAL record must
		// survive until it is.
		s.pending[seg]++
		s.tombs = append(s.tombs, seg)
		existed = true
	}
	return existed
}

func (s *Store) applyDrop(seg int, table, pkey string) {
	key := partKey(table, pkey)
	if part := s.hotMeta[key]; part != nil {
		for _, meta := range part {
			s.pending[meta.seg]--
		}
		s.staleQueued += len(part)
		delete(s.hotMeta, key)
	}
	// Unconditional: the memtable may hold an empty partition object
	// whose rows were all flushed to cold (it would still surface in
	// PartitionKeys).
	s.hot.DropPartition(table, pkey)
	s.gauge()
	if shadows := s.shadow[key]; shadows != nil {
		for _, amt := range shadows {
			s.shadowBytes -= amt
		}
		delete(s.shadow, key)
	}
	if s.cold.HasPartition(table, pkey) {
		s.cold.DropPartition(table, pkey)
		s.pending[seg]++
		s.tombs = append(s.tombs, seg)
	}
}

func (s *Store) addShadow(key, ckey string, amt int64) {
	part := s.shadow[key]
	if part == nil {
		part = make(map[string]int64)
		s.shadow[key] = part
	}
	if old, ok := part[ckey]; ok {
		s.shadowBytes += amt - old
	} else {
		s.shadowBytes += amt
	}
	part[ckey] = amt
}

func (s *Store) dropShadow(key, ckey string) {
	part := s.shadow[key]
	if part == nil {
		return
	}
	if amt, ok := part[ckey]; ok {
		s.shadowBytes -= amt
		delete(part, ckey)
		if len(part) == 0 {
			delete(s.shadow, key)
		}
	}
}

// walAppend writes one record, batching fsyncs, and records any write
// error in the sticky werr (surfaced by Flush/Close, WAL semantics).
func (s *Store) walAppend(op byte, table, pkey, ckey string, value []byte) int {
	seg, err := s.wal.append(op, table, pkey, ckey, value)
	if err != nil {
		s.werr = errors.Join(s.werr, err)
		return seg
	}
	if s.wal.unsynced >= s.opts.WALSyncBytes {
		if err := s.wal.fsync(); err != nil {
			s.werr = errors.Join(s.werr, err)
		}
	}
	return seg
}

// --- Backend interface ----------------------------------------------

// Put appends a WAL record and lands the row in the hot tier. The cold
// tier is not touched; the background flusher migrates the row later.
func (s *Store) Put(table, pkey, ckey string, value []byte) {
	s.mu.Lock()
	s.mustOpenLocked()
	seg := s.walAppend(walPut, table, pkey, ckey, value)
	s.applyHotPut(seg, table, pkey, ckey, value)
	over := s.hot.StoredBytes() > s.opts.HotBytes
	s.mu.Unlock()
	if over {
		select {
		case s.flushNow <- struct{}{}:
		default:
		}
	}
}

// Get reads hot-then-cold: a hot hit is served from memory without any
// disk access.
func (s *Store) Get(table, pkey, ckey string) ([]byte, bool) {
	s.mu.Lock()
	s.mustOpenLocked()
	if v, ok := s.hot.Get(table, pkey, ckey); ok {
		s.mu.Unlock()
		s.hotHits.Add(1)
		return v, true
	}
	s.mu.Unlock()
	v, ok := s.cold.Get(table, pkey, ckey)
	if ok {
		s.coldReads.Add(1)
	}
	return v, ok
}

// MultiGet is the batch-read fast path: hot rows resolve under one lock
// acquisition, the misses go to the cold tier as one disklog batch.
func (s *Store) MultiGet(reqs []backend.KeyRead) [][]byte {
	out := make([][]byte, len(reqs))
	var missIdx []int
	s.mu.Lock()
	s.mustOpenLocked()
	hot := 0
	for i, r := range reqs {
		if v, ok := s.hot.Get(r.Table, r.PKey, r.CKey); ok {
			if v == nil {
				v = []byte{}
			}
			out[i] = v
			hot++
		} else {
			missIdx = append(missIdx, i)
		}
	}
	s.mu.Unlock()
	s.hotHits.Add(int64(hot))
	if len(missIdx) == 0 {
		return out
	}
	miss := make([]backend.KeyRead, len(missIdx))
	for j, i := range missIdx {
		miss[j] = reqs[i]
	}
	vals := s.cold.MultiGet(miss)
	cold := 0
	for j, i := range missIdx {
		if vals[j] != nil {
			out[i] = vals[j]
			cold++
		}
	}
	s.coldReads.Add(int64(cold))
	return out
}

// ScanPrefix merges the two tiers' scans in clustering order; a row
// present in both (mid-flush, or rewritten while its old version is
// still cold) is served from the hot tier.
func (s *Store) ScanPrefix(table, pkey, prefix string) []backend.Row {
	s.mu.Lock()
	s.mustOpenLocked()
	hotRows := s.hot.ScanPrefix(table, pkey, prefix)
	s.mu.Unlock()
	coldRows := s.cold.ScanPrefix(table, pkey, prefix)
	s.hotHits.Add(int64(len(hotRows)))
	if len(coldRows) == 0 {
		return hotRows
	}
	if len(hotRows) == 0 {
		s.coldReads.Add(int64(len(coldRows)))
		return coldRows
	}
	out := make([]backend.Row, 0, len(hotRows)+len(coldRows))
	i, j := 0, 0
	for i < len(hotRows) && j < len(coldRows) {
		switch {
		case hotRows[i].CKey < coldRows[j].CKey:
			out = append(out, hotRows[i])
			i++
		case hotRows[i].CKey > coldRows[j].CKey:
			out = append(out, coldRows[j])
			j++
		default: // hot shadows cold
			out = append(out, hotRows[i])
			i, j = i+1, j+1
		}
	}
	out = append(out, hotRows[i:]...)
	out = append(out, coldRows[j:]...)
	// Rows the hot tier shadows were read from the cold log but not
	// served from it; count only the rows the cold tier contributed so
	// hit ratios and the cold-read latency surcharge reflect serving.
	s.coldReads.Add(int64(len(out) - len(hotRows)))
	return out
}

// Delete removes the row from both tiers. It holds the flush gate so a
// chunk mid-migration cannot resurrect the row in the cold tier.
func (s *Store) Delete(table, pkey, ckey string) bool {
	s.ioMu.Lock()
	defer s.ioMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mustOpenLocked()
	hotHas := false
	if part := s.hotMeta[partKey(table, pkey)]; part != nil {
		_, hotHas = part[ckey]
	}
	if !hotHas {
		if _, coldHas := s.cold.Stat(table, pkey, ckey); !coldHas {
			return false
		}
	}
	seg := s.walAppend(walDel, table, pkey, ckey, nil)
	return s.applyDelete(seg, table, pkey, ckey)
}

// DropPartition removes an entire partition from both tiers.
func (s *Store) DropPartition(table, pkey string) {
	s.ioMu.Lock()
	defer s.ioMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mustOpenLocked()
	// Partition presence is object-level (an emptied partition still
	// lists in PartitionKeys, matching the memtable spec), so consult
	// the tiers, not the row sidecar.
	if !s.hot.HasPartition(table, pkey) && !s.cold.HasPartition(table, pkey) {
		return
	}
	seg := s.walAppend(walDrop, table, pkey, "", nil)
	s.applyDrop(seg, table, pkey)
}

// PartitionKeys returns the union of both tiers' partition keys, sorted.
func (s *Store) PartitionKeys(table string) []string {
	s.mu.Lock()
	s.mustOpenLocked()
	hot := s.hot.PartitionKeys(table)
	s.mu.Unlock()
	cold := s.cold.PartitionKeys(table)
	if len(hot) == 0 {
		return cold
	}
	seen := make(map[string]struct{}, len(hot)+len(cold))
	out := make([]string, 0, len(hot)+len(cold))
	for _, pk := range hot {
		seen[pk] = struct{}{}
		out = append(out, pk)
	}
	for _, pk := range cold {
		if _, dup := seen[pk]; !dup {
			out = append(out, pk)
		}
	}
	sort.Strings(out)
	return out
}

// StoredBytes returns the logical live bytes across both tiers,
// counting rows resident in both exactly once. It waits out an
// in-flight flush chunk so the accounting is never torn.
func (s *Store) StoredBytes() int64 {
	s.ioMu.Lock()
	defer s.ioMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cold.StoredBytes() + s.hot.StoredBytes() - s.shadowBytes
}

// Flush makes every accepted write durable: the WAL is fsynced (hot
// rows survive a crash via replay) and the cold tier syncs its log.
// Any sticky write error surfaces here.
func (s *Store) Flush() error {
	s.ioMu.Lock()
	defer s.ioMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.Join(s.werr, errors.New("tiered: store closed"))
	}
	return s.flushDurableLocked()
}

// flushDurableLocked fsyncs both logs and clears satisfied tombstone
// obligations; callers hold ioMu and mu.
func (s *Store) flushDurableLocked() error {
	if err := s.wal.fsync(); err != nil {
		s.werr = errors.Join(s.werr, err)
	}
	if err := s.cold.Flush(); err != nil {
		s.werr = errors.Join(s.werr, err)
	} else {
		for _, seg := range s.tombs {
			s.pending[seg]--
		}
		s.tombs = nil
	}
	return s.werr
}

// Close stops the background flusher, fsyncs both logs, and releases
// every file. Hot rows are NOT drained to the cold tier: the WAL
// carries them to the next Open.
func (s *Store) Close() error {
	s.stopFlusher()
	s.ioMu.Lock()
	defer s.ioMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return s.werr
	}
	err := s.flushDurableLocked()
	s.wal.closeFiles()
	if cerr := s.cold.Close(); cerr != nil {
		err = errors.Join(err, cerr)
		s.werr = err
	}
	s.lock.release()
	s.closed = true
	return err
}

// Kill simulates a crash (testing aid): background work stops where it
// is, files close without a final WAL fsync, and the store becomes
// unusable. The on-disk state is what a new process would find after
// this one died mid-flight; Open recovers from it.
func (s *Store) Kill() {
	s.stopFlusher()
	s.ioMu.Lock()
	defer s.ioMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	s.wal.closeFiles()
	s.cold.Close()
	s.lock.release()
}

func (s *Store) stopFlusher() {
	s.stopFn.Do(func() { close(s.stop) })
	<-s.done
}

// TierCounters reports the per-tier activity counters (lock-free).
func (s *Store) TierCounters() backend.TierCounters {
	return backend.TierCounters{
		HotHits:      s.hotHits.Load(),
		ColdReads:    s.coldReads.Load(),
		FlushedRows:  s.flushedRows.Load(),
		FlushedBytes: s.flushedBytes.Load(),
		Compactions:  s.compactions.Load(),
		HotBytes:     s.hotBytes.Load(),
	}
}

// Backup writes a consistent copy of the engine's durable state (cold
// segments and WAL) into dir, mirroring the on-disk layout so the copy
// opens as a normal tiered directory. Background flushing is held off
// for the duration; the caller (the cluster) holds off foreground
// writes.
func (s *Store) Backup(dir string) error {
	s.ioMu.Lock()
	defer s.ioMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("tiered: backup of closed store")
	}
	if err := s.flushDurableLocked(); err != nil {
		return fmt.Errorf("tiered: backup: %w", err)
	}
	if err := s.cold.Backup(filepath.Join(dir, "cold")); err != nil {
		return err
	}
	walDir := filepath.Join(dir, "wal")
	if err := os.MkdirAll(walDir, 0o755); err != nil {
		return fmt.Errorf("tiered: backup: %w", err)
	}
	if ids, err := listWALSegmentIDs(walDir); err != nil {
		return err
	} else if len(ids) > 0 {
		return fmt.Errorf("tiered: backup target %s already holds WAL segments", walDir)
	}
	for _, seg := range s.wal.segs {
		if err := backend.CopyFile(seg.f, seg.size, filepath.Join(walDir, walSegmentName(seg.id))); err != nil {
			return err
		}
	}
	d, err := os.Open(walDir)
	if err != nil {
		return fmt.Errorf("tiered: backup: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("tiered: backup sync %s: %w", walDir, err)
	}
	return nil
}

// --- background flusher ----------------------------------------------

func (s *Store) flushLoop() {
	defer close(s.done)
	ticker := time.NewTicker(s.opts.FlushInterval)
	defer ticker.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-ticker.C:
		case <-s.flushNow:
		}
		s.maintain()
	}
}

// maintain drains the hot tier down to half the budget in rate-limited
// chunks, then considers cold compaction. The rate-limit sleep holds no
// locks, so foreground traffic proceeds at full speed between chunks.
func (s *Store) maintain() {
	for {
		select {
		case <-s.stop:
			return
		default:
		}
		n := s.flushChunk()
		if n == 0 {
			break
		}
		if s.opts.CompactRate > 0 {
			sleep := time.Duration(float64(n) / float64(s.opts.CompactRate) * float64(time.Second))
			select {
			case <-s.stop:
				return
			case <-time.After(sleep):
			}
		}
	}
	s.maybeCompactCold()
}

// flushChunk migrates up to flushChunkBytes of the oldest hot rows into
// the cold tier and returns the byte count moved (0 when the hot tier
// is within its low-water mark). The whole chunk — select, cold write,
// fsync, commit, WAL retirement — runs under the flush gate (ioMu), so
// deletes cannot interleave with a migration; foreground puts and reads
// only contend for mu during the brief select and commit phases.
func (s *Store) flushChunk() int64 {
	s.ioMu.Lock()
	defer s.ioMu.Unlock()

	type flushRow struct {
		flushItem
		seg int
		val []byte
	}
	var (
		batch []flushRow
		moved int64
	)
	s.mu.Lock()
	if s.closed || s.werr != nil {
		s.mu.Unlock()
		return 0
	}
	// Drop the stale queue prefix (rows overwritten or deleted since
	// they were enqueued) so churn below the budget cannot grow the
	// queue without bound.
	for len(s.queue) > 0 {
		item := s.queue[0]
		part := s.hotMeta[partKey(item.table, item.pkey)]
		if part != nil {
			if meta := part[item.ckey]; meta != nil && meta.ver == item.ver {
				break
			}
		}
		s.queue = s.queue[1:]
		s.staleQueued--
	}
	stored := s.hot.StoredBytes()
	if stored > s.opts.HotBytes {
		s.draining = true
	}
	lowWater := s.opts.HotBytes / 2
	excess := stored - lowWater
	if excess <= 0 {
		s.draining = false
	}
	for s.draining && excess > 0 && moved < flushChunkBytes && len(s.queue) > 0 {
		item := s.queue[0]
		s.queue = s.queue[1:]
		part := s.hotMeta[partKey(item.table, item.pkey)]
		if part == nil {
			s.staleQueued--
			continue
		}
		meta := part[item.ckey]
		if meta == nil || meta.ver != item.ver {
			s.staleQueued--
			continue // superseded or deleted; a fresher queue entry exists if needed
		}
		v, ok := s.hot.Get(item.table, item.pkey, item.ckey)
		if !ok {
			continue
		}
		n := int64(len(item.ckey) + len(v))
		meta.inFlight = true
		batch = append(batch, flushRow{flushItem: item, seg: meta.seg, val: v})
		moved += n
		excess -= n
	}
	tombsOnly := len(batch) == 0 && len(s.tombs) > 0
	s.mu.Unlock()

	if len(batch) == 0 && !tombsOnly {
		s.retireWALLocked()
		return 0
	}

	// Write + fsync the cold tier outside mu: foreground reads and puts
	// proceed while the disk works.
	for _, row := range batch {
		s.cold.Put(row.table, row.pkey, row.ckey, row.val)
	}
	if err := s.cold.Flush(); err != nil {
		s.mu.Lock()
		s.werr = errors.Join(s.werr, err)
		s.mu.Unlock()
		return 0
	}

	// Commit: drop migrated rows from the hot tier and retire satisfied
	// WAL obligations.
	s.mu.Lock()
	for _, row := range batch {
		key := partKey(row.table, row.pkey)
		part := s.hotMeta[key]
		var meta *rowMeta
		if part != nil {
			meta = part[row.ckey]
		}
		if meta == nil {
			// Unreachable while the flush gate excludes deletes; kept as
			// a safety net — the cold copy is stale but harmless only if
			// removed.
			s.cold.Delete(row.table, row.pkey, row.ckey)
			continue
		}
		if meta.ver != row.ver {
			// Overwritten mid-write: the hot tier still owns the row and
			// now shadows the cold copy we just created.
			s.addShadow(key, row.ckey, int64(len(row.ckey)+len(row.val)))
			continue
		}
		s.pending[meta.seg]--
		delete(part, row.ckey)
		if len(part) == 0 {
			delete(s.hotMeta, key)
		}
		s.hot.Delete(row.table, row.pkey, row.ckey)
		s.dropShadow(key, row.ckey)
		s.flushedRows.Add(1)
		s.flushedBytes.Add(int64(len(row.val)))
	}
	// The cold fsync above covered every tombstone applied before it.
	for _, seg := range s.tombs {
		s.pending[seg]--
	}
	s.tombs = nil
	s.gauge()
	s.retireWAL()
	s.mu.Unlock()
	return moved
}

// retireWAL deletes the longest prefix of WAL segments with no
// outstanding obligations; the caller holds ioMu and mu.
func (s *Store) retireWAL() {
	for seg, n := range s.pending {
		if n == 0 {
			delete(s.pending, seg)
		}
	}
	dropUpTo := s.wal.activeID() - 1
	for seg := range s.pending {
		if seg-1 < dropUpTo {
			dropUpTo = seg - 1
		}
	}
	if dropUpTo < 1 || len(s.wal.segs) <= 1 || s.wal.segs[0].id > dropUpTo {
		return // nothing would actually drop
	}
	// A segment's pending count can reach zero because its records were
	// superseded by records in a newer segment whose bytes are not yet
	// fsynced. Deleting the old segment then would leave the row's only
	// surviving record in the page cache — a power cut loses it entirely,
	// even if an earlier Flush had made the old version durable. Sync the
	// WAL first; retirement is infrequent and the sync is a no-op when
	// the batch fsync already ran.
	if err := s.wal.fsync(); err != nil {
		s.werr = errors.Join(s.werr, err)
		return
	}
	if err := s.wal.dropThrough(dropUpTo); err != nil {
		s.werr = errors.Join(s.werr, err)
	}
}

// retireWALLocked is retireWAL for callers holding only ioMu.
func (s *Store) retireWALLocked() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.retireWAL()
}

// maybeCompactCold rewrites the cold tier when it is more than half
// dead bytes. The compaction holds the flush gate (deletes and flushes
// wait) but hot-tier reads are untouched.
func (s *Store) maybeCompactCold() {
	s.mu.Lock()
	if s.closed || s.werr != nil {
		s.mu.Unlock()
		return
	}
	s.mu.Unlock()
	dead := s.cold.DeadBytes()
	floor := s.opts.Cold.CompactMinDead
	if floor <= 0 {
		floor = disklog.DefaultCompactMinDead
	}
	if dead < floor || dead <= s.cold.StoredBytes() {
		return
	}
	s.ioMu.Lock()
	err := s.cold.Compact()
	s.ioMu.Unlock()
	if err != nil {
		s.mu.Lock()
		s.werr = errors.Join(s.werr, err)
		s.mu.Unlock()
		return
	}
	s.compactions.Add(1)
}

// String describes the engine state (fmt.Stringer, for inspection).
func (s *Store) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return fmt.Sprintf("tiered(%s: %dB hot, %d wal segments, cold %s)",
		s.dir, s.hot.StoredBytes(), len(s.wal.segs), s.cold)
}

var _ backend.Backend = (*Store)(nil)
var _ backend.BatchReader = (*Store)(nil)
var _ backend.TierCounting = (*Store)(nil)
var _ backend.Backuper = (*Store)(nil)
