// Package backend defines the pluggable storage engine behind each node
// of the kvstore cluster. The cluster keeps the distribution concerns —
// placement by partition key, replication, the latency cost model and
// per-node service serialization — while a Backend owns the actual rows
// of one node: table-scoped partitions of rows sorted by clustering key.
//
// Three engines ship with the repository:
//
//   - memtable: the original in-process sorted-slice store (no
//     durability; what the paper's evaluation simulates),
//   - disklog: a durable append-only WAL/segment engine with
//     CRC-checked records, log-replay recovery and compaction, and
//   - tiered: a hot in-memory tier (memtable + write-ahead log) over a
//     cold disklog tier, with rate-limited background flushing — recent
//     timespans are served from memory, history stays on disk.
//
// Future adapters (a real Cassandra client, an object-storage cold
// tier, ...) plug in behind the same interface.
package backend

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"os"
)

// Row is one clustered row inside a partition.
type Row struct {
	CKey  string
	Value []byte
}

// Backend is the storage engine of a single cluster node. The cluster
// serializes access per node (one operation at a time under the node's
// service lock), so implementations do not need to be internally
// synchronized for cluster use — though disklog is, to keep standalone
// use safe.
//
// Ownership: Put may retain the value slice (the cluster hands each
// backend an immutable copy); Get and ScanPrefix must return values the
// caller may freely modify.
//
// Error model: the read/write methods mirror the cluster's surface and
// return no errors. Durable engines record I/O failures internally and
// surface them at the next Flush or Close; a read hitting a failed
// device reports not-found. Using an engine after Close is a
// programming error and may panic.
type Backend interface {
	// Get returns the value at (table, pkey, ckey).
	Get(table, pkey, ckey string) ([]byte, bool)
	// Put stores value under (table, pkey, ckey), overwriting any
	// existing row. Write errors of durable engines surface at the next
	// Flush or Close (WAL semantics).
	Put(table, pkey, ckey string, value []byte)
	// ScanPrefix returns the partition's rows whose clustering key
	// starts with prefix, in clustering order.
	ScanPrefix(table, pkey, prefix string) []Row
	// Delete removes a row, reporting whether it existed.
	Delete(table, pkey, ckey string) bool
	// DropPartition removes an entire partition.
	DropPartition(table, pkey string)
	// PartitionKeys returns the sorted partition keys of a table.
	PartitionKeys(table string) []string
	// StoredBytes returns the logical live bytes held by this node
	// (sum over rows of clustering-key and value lengths).
	StoredBytes() int64
	// Flush makes all writes accepted so far durable (fsync for disk
	// engines; no-op for memory) and reports any pending write error.
	Flush() error
	// Close flushes and releases the engine. The backend must not be
	// used afterwards.
	Close() error
}

// KeyRead names one row of a batched point read.
type KeyRead struct {
	Table, PKey, CKey string
}

// BatchReader is an optional fast path for serving many point reads in
// one engine call. The cluster probes for it when executing a batched
// read plan: an engine that implements it resolves the whole batch under
// a single service charge (and can amortize its own per-call overhead —
// lock acquisition, partition lookup); engines that do not are served by
// a Get loop. result[i] is nil exactly when reqs[i] is absent (a present
// row with an empty value yields a non-nil empty slice), and every
// returned value is the caller's to keep.
type BatchReader interface {
	MultiGet(reqs []KeyRead) [][]byte
}

// MultiGet serves a batch of point reads through be's BatchReader fast
// path when available, falling back to one Get per key.
func MultiGet(be Backend, reqs []KeyRead) [][]byte {
	if br, ok := be.(BatchReader); ok {
		return br.MultiGet(reqs)
	}
	out := make([][]byte, len(reqs))
	for i, r := range reqs {
		if v, ok := be.Get(r.Table, r.PKey, r.CKey); ok {
			if v == nil {
				v = []byte{}
			}
			out[i] = v
		}
	}
	return out
}

// TierCounters reports per-tier activity of an engine that places data
// across a hot (memory) and a cold (disk) tier. HotHits and ColdReads
// are cumulative row-lookup counters attributed to the tier that
// SERVED the row: a hot-served lookup counts once in HotHits and pays
// no cold penalty (even when a scan also read a stale, shadowed copy
// of the row from the cold log); one served from the cold tier counts
// in ColdReads. Flushed* and Compactions count background-maintenance
// work; IdleCompactions counts units of full-speed work done inside
// idle windows — an idle hot-tier drain, an idle segment merge and an
// idle full compaction each count once, so one idle window can add
// several (it is not a subset of passes or of Compactions).
// WarmedRows/WarmedBytes count rows
// repopulated into memory from the newest cold data (warm-up on open
// and idle re-warming). HotBytes is a gauge: the live bytes currently
// resident in memory (hot rows plus warmed cold copies); Warming is a
// gauge that is 1 while the engine's open-time warm-up is still
// running.
type TierCounters struct {
	HotHits         int64
	ColdReads       int64
	FlushedRows     int64
	FlushedBytes    int64
	Compactions     int64
	IdleCompactions int64
	WarmedRows      int64
	WarmedBytes     int64
	HotBytes        int64
	Warming         int64
}

// TierCounting is an optional interface of engines that track per-tier
// activity. The cluster aggregates these into its Metrics.
// Implementations must be cheap and safe to call concurrently with
// operations (atomic counters); the cumulative counters may move from
// the engine's own background work (flushing, warm-up, compaction) at
// any time, which is why the latency model does NOT charge from deltas
// of these gauges — per-operation attribution comes from TierReader.
type TierCounting interface {
	TierCounters() TierCounters
}

// TierReader is an optional interface of tiered engines whose read
// operations report, per call, how many of the returned rows were
// served from the cold (disk) tier. The cluster charges the latency
// model's cold-read surcharge from these exact counts, so concurrent
// operations and background maintenance can never misbill each other
// the way diffing a shared cumulative counter around a call would.
// The value/row semantics match Get, MultiGet and ScanPrefix.
type TierReader interface {
	GetTier(table, pkey, ckey string) (value []byte, ok bool, coldRows int)
	MultiGetTier(reqs []KeyRead) (vals [][]byte, coldRows int)
	ScanPrefixTier(table, pkey, prefix string) (rows []Row, coldRows int)
}

// TableLister is an optional interface of engines that can enumerate
// the tables they hold rows for. The cluster's rebalancer walks
// Tables + PartitionKeys to build its move plan when the ring changes;
// engines without it are skipped (their data stays put and keeps being
// served through the pre-change routing, so correctness is preserved —
// only movement is).
type TableLister interface {
	Tables() []string
}

// DigestRows computes the canonical digest of a partition's rows for
// anti-entropy comparison: FNV-1a over length-prefixed clustering keys
// and values, in clustering order. Every engine must digest identical
// rows identically, so replicas on different engine types can still be
// compared — which is why this helper, not the engines, defines the
// byte layout.
func DigestRows(rows []Row) uint64 {
	h := fnv.New64a()
	var n [4]byte
	for _, r := range rows {
		binary.LittleEndian.PutUint32(n[:], uint32(len(r.CKey)))
		h.Write(n[:])
		h.Write([]byte(r.CKey))
		binary.LittleEndian.PutUint32(n[:], uint32(len(r.Value)))
		h.Write(n[:])
		h.Write(r.Value)
	}
	return h.Sum64()
}

// Digester is an optional interface of engines that can digest one
// partition without materializing caller-owned row copies the way
// ScanPrefix must. The result must equal DigestRows over the
// partition's rows. Engines without it are digested through a scan.
type Digester interface {
	DigestPartition(table, pkey string) uint64
}

// Backuper is an optional interface of durable engines that can write a
// consistent copy of their on-disk state into a fresh directory. Backup
// must tolerate concurrent foreground operations: the engine snapshots
// its file set under its own locks (after making accepted writes
// durable) and copies outside them, deferring any background work that
// would delete or rewrite the snapshotted files — so reads keep being
// served while a large backup streams. Writes accepted after the
// snapshot point are not part of the copy. The target must be validated
// in full before anything is written: a failing backup leaves the
// target directory unchanged. The copy must be openable by the same
// engine as if it were the original directory.
type Backuper interface {
	Backup(dir string) error
}

// CopyFile copies the first size bytes of src into a fresh file at dst
// and fsyncs the copy — the backup primitive shared by the durable
// engines. Reading through the open handle (not the path) keeps the
// copy consistent with the caller's in-memory index even if the file
// was since renamed or grown. A partial copy is removed on error; dst
// must not already exist.
func CopyFile(src *os.File, size int64, dst string) error {
	f, err := os.OpenFile(dst, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("backend: backup: %w", err)
	}
	if _, err := io.Copy(f, io.NewSectionReader(src, 0, size)); err == nil {
		err = f.Sync()
	}
	if err != nil {
		f.Close()
		os.Remove(dst)
		return fmt.Errorf("backend: backup copy %s: %w", dst, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(dst)
		return fmt.Errorf("backend: backup: %w", err)
	}
	return nil
}

// Factory creates the backend for cluster node idx. Factories are how a
// cluster is parameterized over engines: the node index lets durable
// engines derive a per-node directory.
type Factory func(node int) (Backend, error)

// NodeDir names node idx's directory under a store root. Every durable
// factory and the cluster's Backup must agree on this layout: a drift
// would make a restored backup open as an empty store.
func NodeDir(idx int) string { return fmt.Sprintf("node-%03d", idx) }
