package workload

import (
	"testing"

	"hgs/internal/graph"
)

func validStream(t *testing.T, events []graph.Event) *graph.Graph {
	t.Helper()
	if len(events) == 0 {
		t.Fatal("empty event stream")
	}
	for i := 1; i < len(events); i++ {
		if events[i].Time <= events[i-1].Time {
			t.Fatalf("times not strictly increasing at %d", i)
		}
	}
	g, err := graph.FromEvents(events)
	if err != nil {
		t.Fatalf("replay failed: %v", err)
	}
	return g
}

func TestWikipediaShape(t *testing.T) {
	evs := Wikipedia(WikiConfig{Nodes: 2000, EdgesPerNode: 4, Seed: 1})
	g := validStream(t, evs)
	if g.NumNodes() != 2000 {
		t.Fatalf("nodes = %d, want 2000", g.NumNodes())
	}
	if e := g.NumEdges(); e < 4000 || e > 10000 {
		t.Fatalf("edges = %d, outside plausible band", e)
	}
	// Preferential attachment: the max degree must far exceed the mean.
	maxDeg := 0
	g.Range(func(ns *graph.NodeState) bool {
		if d := ns.Degree(); d > maxDeg {
			maxDeg = d
		}
		return true
	})
	if float64(maxDeg) < 5*g.AvgDegree() {
		t.Fatalf("max degree %d not heavy-tailed (avg %.1f)", maxDeg, g.AvgDegree())
	}
}

func TestWikipediaDeterminism(t *testing.T) {
	a := Wikipedia(WikiConfig{Nodes: 500, EdgesPerNode: 3, Seed: 7})
	b := Wikipedia(WikiConfig{Nodes: 500, EdgesPerNode: 3, Seed: 7})
	if len(a) != len(b) {
		t.Fatal("nondeterministic length")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic at %d", i)
		}
	}
	c := Wikipedia(WikiConfig{Nodes: 500, EdgesPerNode: 3, Seed: 8})
	same := len(a) == len(c)
	if same {
		same = false
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
			same = true
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestAugmentChurn(t *testing.T) {
	base := Wikipedia(WikiConfig{Nodes: 500, EdgesPerNode: 3, Seed: 2})
	out := Augment(base, AugmentConfig{Extra: 2000, DeleteFraction: 0.3, Seed: 3})
	validStream(t, out)
	if len(out) != len(base)+2000 {
		t.Fatalf("augmented length %d, want %d", len(out), len(base)+2000)
	}
	adds, dels := 0, 0
	for _, e := range out[len(base):] {
		switch e.Kind {
		case graph.AddEdge:
			adds++
		case graph.RemoveEdge:
			dels++
		default:
			t.Fatalf("unexpected churn kind %v", e.Kind)
		}
	}
	frac := float64(dels) / float64(adds+dels)
	if frac < 0.2 || frac > 0.4 {
		t.Fatalf("delete fraction %.2f outside [0.2, 0.4]", frac)
	}
	// Churn must start after the base history.
	if out[len(base)].Time <= base[len(base)-1].Time {
		t.Fatal("churn does not extend the timeline")
	}
}

func TestFriendsterCommunities(t *testing.T) {
	evs := Friendster(FriendsterConfig{Communities: 8, CommunitySize: 100, IntraDegree: 6, InterFraction: 0.05, Seed: 4})
	g := validStream(t, evs)
	if g.NumNodes() != 800 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	// Every node has a community attribute; most edges stay inside.
	intra, inter := 0, 0
	g.Range(func(ns *graph.NodeState) bool {
		c, ok := ns.Attr("community")
		if !ok || c == "" {
			t.Fatalf("node %d missing community", ns.ID)
		}
		for k := range ns.Edges {
			if !k.Out {
				continue
			}
			other := g.Node(k.Other)
			if oc, _ := other.Attr("community"); oc == c {
				intra++
			} else {
				inter++
			}
		}
		return true
	})
	if float64(inter)/float64(intra+inter) > 0.15 {
		t.Fatalf("too many cross-community edges: %d/%d", inter, intra+inter)
	}
}

func TestDBLPBipartite(t *testing.T) {
	evs := DBLP(DBLPConfig{Authors: 100, Papers: 200, AuthorsPerPaper: 3, AttrChurn: 50, Seed: 5})
	g := validStream(t, evs)
	if g.NumNodes() != 300 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	authors := g.AttrCount("EntityType", "Author")
	papers := g.AttrCount("EntityType", "Paper")
	if authors+papers != 300 {
		t.Fatalf("entity types missing: %d+%d", authors, papers)
	}
	// Structural edges only connect authors to papers (before churn the
	// partition is exact; churn flips labels, not edges).
	churnless := DBLP(DBLPConfig{Authors: 100, Papers: 200, AuthorsPerPaper: 3, AttrChurn: 0, Seed: 5})
	g2, _ := graph.FromEvents(churnless)
	g2.Range(func(ns *graph.NodeState) bool {
		mine, _ := ns.Attr("EntityType")
		for k := range ns.Edges {
			theirs, _ := g2.Node(k.Other).Attr("EntityType")
			if mine == theirs {
				t.Fatalf("same-type edge %d-%d (%s)", ns.ID, k.Other, mine)
			}
		}
		return true
	})
}

func TestConfigDefaults(t *testing.T) {
	// Degenerate configs must not panic and still produce valid streams.
	validStream(t, Wikipedia(WikiConfig{}))
	validStream(t, Friendster(FriendsterConfig{}))
	validStream(t, DBLP(DBLPConfig{}))
}
