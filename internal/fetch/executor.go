package fetch

import (
	"fmt"
	"sync"

	"hgs/internal/codec"
	"hgs/internal/delta"
	"hgs/internal/kvstore"
)

// Store is the batched read surface the executor runs plans against;
// *kvstore.Cluster implements it. Both calls answer positionally.
type Store interface {
	MultiGet(refs []kvstore.KeyRef) []kvstore.GetResult
	MultiScan(refs []kvstore.ScanRef) [][]kvstore.Row
}

// Executor runs read plans: delta requests are served from the decoded
// cache when resident, everything else goes to the store as one batched
// round (a MultiScan and a MultiGet issued concurrently, each charging
// one simulated round-trip per storage node touched). Freshly decoded
// deltas are installed in the cache on the way out.
type Executor struct {
	store Store
	cdc   codec.Codec
	cache *Cache
}

// NewExecutor builds an executor over a store; cache may be nil
// (caching disabled).
func NewExecutor(store Store, cdc codec.Codec, cache *Cache) *Executor {
	return &Executor{store: store, cdc: cdc, cache: cache}
}

// Cache returns the executor's delta cache (nil when disabled).
func (e *Executor) Cache() *Cache { return e.cache }

// Parallel runs f(0..n-1) with up to clients concurrent workers (the
// paper's query processors), returning the first error. It is the one
// bounded worker pool of the fetch path; core's retrieval sites drive
// their decode/merge tasks through it too.
func Parallel(clients, n int, f func(i int) error) error {
	if clients > n {
		clients = n
	}
	if clients <= 1 {
		for i := 0; i < n; i++ {
			if err := f(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
		next     = make(chan int)
	)
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if err := f(i); err != nil {
					errOnce.Do(func() { firstErr = err })
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	return firstErr
}

// Exec runs the plan. clients bounds the decode parallelism (the paper's
// query-processor count c); the store round is internally parallel per
// node regardless. The returned deltas are shared with the cache — see
// Result.
func (e *Executor) Exec(p *Plan, clients int) (*Result, error) {
	if clients < 1 {
		clients = 1
	}
	res := &Result{
		groups: make(map[GroupKey][]Part, len(p.groups)),
		parts:  make(map[PartKey]*delta.Delta, len(p.parts)),
		gets:   make(map[kvstore.KeyRef][]byte, len(p.gets)),
		scans:  make(map[kvstore.ScanRef][]kvstore.Row, len(p.scans)),
		shared: e.cache != nil,
	}

	// 1. Serve delta requests out of the cache.
	var missGroups []GroupKey
	for _, k := range p.groups {
		if parts, ok := e.cache.Group(k); ok {
			res.groups[k] = parts
		} else {
			missGroups = append(missGroups, k)
		}
	}
	var missParts []PartKey
	for _, k := range p.parts {
		if d, known := e.cache.Part(k); known {
			if d != nil {
				res.parts[k] = d
			}
		} else {
			missParts = append(missParts, k)
		}
	}

	// 2. One batched store round for everything that missed: the group
	// prefixes ride the raw scans' MultiScan, the single micro-deltas
	// ride the raw gets' MultiGet, issued concurrently.
	scanRefs := make([]kvstore.ScanRef, 0, len(missGroups)+len(p.scans))
	for _, k := range missGroups {
		scanRefs = append(scanRefs, kvstore.ScanRef{
			Table: k.Table, PKey: PlacementKey(k.TSID, k.SID), Prefix: DeltaPrefix(k.DID),
		})
	}
	scanRefs = append(scanRefs, p.scans...)
	getRefs := make([]kvstore.KeyRef, 0, len(missParts)+len(p.gets))
	for _, k := range missParts {
		getRefs = append(getRefs, kvstore.KeyRef{
			Table: k.Table, PKey: PlacementKey(k.TSID, k.SID), CKey: DeltaCKey(k.DID, k.PID),
		})
	}
	getRefs = append(getRefs, p.gets...)

	var (
		scanRows [][]kvstore.Row
		getVals  []kvstore.GetResult
		wg       sync.WaitGroup
	)
	if len(scanRefs) > 0 {
		wg.Add(1)
		go func() { defer wg.Done(); scanRows = e.store.MultiScan(scanRefs) }()
	}
	if len(getRefs) > 0 {
		wg.Add(1)
		go func() { defer wg.Done(); getVals = e.store.MultiGet(getRefs) }()
	}
	wg.Wait()

	// 3. Decode the missed deltas in parallel, installing them in the
	// cache as they complete.
	var mu sync.Mutex
	if err := Parallel(clients, len(missGroups), func(i int) error {
		k := missGroups[i]
		rows := scanRows[i]
		parts := make([]Part, 0, len(rows))
		sizes := make([]int64, 0, len(rows))
		for _, row := range rows {
			pid, err := ParsePID(row.CKey)
			if err != nil {
				return err
			}
			d, err := e.cdc.DecodeDelta(row.Value)
			if err != nil {
				return fmt.Errorf("fetch: decode delta %s/%s: %w", PlacementKey(k.TSID, k.SID), row.CKey, err)
			}
			parts = append(parts, Part{PID: pid, Delta: d})
			sizes = append(sizes, int64(len(row.Value)))
		}
		e.cache.AddGroup(k, parts, sizes)
		mu.Lock()
		res.groups[k] = parts
		mu.Unlock()
		return nil
	}); err != nil {
		return nil, err
	}
	if err := Parallel(clients, len(missParts), func(i int) error {
		k := missParts[i]
		gv := getVals[i]
		if !gv.Found {
			return nil
		}
		d, err := e.cdc.DecodeDelta(gv.Value)
		if err != nil {
			return fmt.Errorf("fetch: decode delta %s/%s: %w",
				PlacementKey(k.TSID, k.SID), DeltaCKey(k.DID, k.PID), err)
		}
		e.cache.AddPart(k, d, int64(len(gv.Value)))
		mu.Lock()
		res.parts[k] = d
		mu.Unlock()
		return nil
	}); err != nil {
		return nil, err
	}

	// 4. Raw results, positionally after the delta requests.
	for i, ref := range p.scans {
		res.scans[ref] = scanRows[len(missGroups)+i]
	}
	for i, ref := range p.gets {
		if gv := getVals[len(missParts)+i]; gv.Found {
			res.gets[ref] = gv.Value
		}
	}
	return res, nil
}
