package graph

import (
	"math"
	"sort"
)

// This file implements the static network metrics exercised by the paper's
// analytics examples (Figure 1's red entries and Figure 7's tasks):
// density, clustering coefficients, PageRank, shortest paths, connected
// components, triangle counting and degree statistics.

// Density returns the undirected graph density 2E / (N(N-1)), where E is
// the number of distinct unordered neighbor pairs.
func (g *Graph) Density() float64 {
	n := g.NumNodes()
	if n < 2 {
		return 0
	}
	e := g.undirectedEdgeCount()
	return 2 * float64(e) / (float64(n) * float64(n-1))
}

// undirectedEdgeCount counts distinct unordered adjacent pairs.
func (g *Graph) undirectedEdgeCount() int {
	e := 0
	for id, ns := range g.nodes {
		seen := make(map[NodeID]struct{}, len(ns.Edges))
		for k := range ns.Edges {
			if k.Other == id { // self loop: count once via Out side
				if k.Out {
					e += 2 // will be halved below
				}
				continue
			}
			if _, dup := seen[k.Other]; !dup {
				seen[k.Other] = struct{}{}
				e++
			}
		}
	}
	return e / 2
}

// AvgDegree returns the mean undirected degree.
func (g *Graph) AvgDegree() float64 {
	if g.NumNodes() == 0 {
		return 0
	}
	total := 0
	for _, ns := range g.nodes {
		total += ns.Degree()
	}
	return float64(total) / float64(g.NumNodes())
}

// LocalClusteringCoefficient returns the fraction of a node's distinct
// neighbor pairs that are themselves connected (in either direction;
// reciprocal edges count once). Returns 0 for degree < 2 and for missing
// nodes.
func (g *Graph) LocalClusteringCoefficient(id NodeID) float64 {
	nbs := g.Neighbors(id)
	d := len(nbs)
	if d < 2 {
		return 0
	}
	links := 0
	for i, u := range nbs {
		un := g.nodes[u]
		if un == nil {
			continue
		}
		for _, w := range nbs[i+1:] {
			if un.HasEdgeTo(w) {
				links++
			}
		}
	}
	return 2 * float64(links) / (float64(d) * float64(d-1))
}

// AverageClusteringCoefficient returns the mean LCC over all nodes.
func (g *Graph) AverageClusteringCoefficient() float64 {
	if g.NumNodes() == 0 {
		return 0
	}
	sum := 0.0
	for id := range g.nodes {
		sum += g.LocalClusteringCoefficient(id)
	}
	return sum / float64(g.NumNodes())
}

// TriangleCount returns the number of undirected triangles.
func (g *Graph) TriangleCount() int {
	// Neighbor sets on the undirected view, counting each triangle 3 times.
	adj := make(map[NodeID]map[NodeID]struct{}, len(g.nodes))
	for id, ns := range g.nodes {
		set := make(map[NodeID]struct{}, len(ns.Edges))
		for k := range ns.Edges {
			if k.Other != id {
				set[k.Other] = struct{}{}
			}
		}
		adj[id] = set
	}
	count := 0
	for u, us := range adj {
		for v := range us {
			if v <= u {
				continue
			}
			for w := range adj[v] {
				if w <= v {
					continue
				}
				if _, ok := us[w]; ok {
					count++
				}
			}
		}
	}
	return count
}

// PageRank computes PageRank over outgoing edges with the given damping
// factor and iteration count, distributing dangling mass uniformly.
// Standard parameters are damping=0.85, iters=20.
func (g *Graph) PageRank(damping float64, iters int) map[NodeID]float64 {
	n := g.NumNodes()
	if n == 0 {
		return nil
	}
	rank := make(map[NodeID]float64, n)
	outDeg := make(map[NodeID]int, n)
	for id, ns := range g.nodes {
		rank[id] = 1.0 / float64(n)
		outDeg[id] = ns.OutDegree()
	}
	for it := 0; it < iters; it++ {
		next := make(map[NodeID]float64, n)
		dangling := 0.0
		for id := range g.nodes {
			if outDeg[id] == 0 {
				dangling += rank[id]
			}
		}
		base := (1-damping)/float64(n) + damping*dangling/float64(n)
		for id := range g.nodes {
			next[id] = base
		}
		for id, ns := range g.nodes {
			if outDeg[id] == 0 {
				continue
			}
			share := damping * rank[id] / float64(outDeg[id])
			for k := range ns.Edges {
				if k.Out {
					next[k.Other] += share
				}
			}
		}
		rank = next
	}
	return rank
}

// BFSDistances returns the undirected hop distance from root to every
// reachable node (root included with distance 0).
func (g *Graph) BFSDistances(root NodeID) map[NodeID]int {
	if !g.Has(root) {
		return nil
	}
	dist := map[NodeID]int{root: 0}
	frontier := []NodeID{root}
	for d := 1; len(frontier) > 0; d++ {
		var next []NodeID
		for _, id := range frontier {
			for _, nb := range g.Neighbors(id) {
				if _, seen := dist[nb]; !seen {
					dist[nb] = d
					next = append(next, nb)
				}
			}
		}
		frontier = next
	}
	return dist
}

// ShortestPathLength returns the undirected hop distance between two nodes
// and whether a path exists, via bidirectional-ish plain BFS.
func (g *Graph) ShortestPathLength(from, to NodeID) (int, bool) {
	if from == to {
		if g.Has(from) {
			return 0, true
		}
		return 0, false
	}
	d, ok := g.BFSDistances(from)[to]
	if ok {
		return d, true
	}
	// Distinguish "unreachable" from "missing root".
	return 0, false
}

// ConnectedComponents returns the undirected components as sorted id
// slices, largest first.
func (g *Graph) ConnectedComponents() [][]NodeID {
	visited := make(map[NodeID]bool, len(g.nodes))
	var comps [][]NodeID
	for id := range g.nodes {
		if visited[id] {
			continue
		}
		var comp []NodeID
		stack := []NodeID{id}
		visited[id] = true
		for len(stack) > 0 {
			cur := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, cur)
			for _, nb := range g.Neighbors(cur) {
				if !visited[nb] {
					visited[nb] = true
					stack = append(stack, nb)
				}
			}
		}
		sort.Slice(comp, func(i, j int) bool { return comp[i] < comp[j] })
		comps = append(comps, comp)
	}
	sort.Slice(comps, func(i, j int) bool {
		if len(comps[i]) != len(comps[j]) {
			return len(comps[i]) > len(comps[j])
		}
		return comps[i][0] < comps[j][0]
	})
	return comps
}

// ApproxDiameter estimates the diameter with a double BFS sweep from an
// arbitrary node of the largest component. Exact on trees, a lower bound
// in general — sufficient for the evolution-of-diameter analytics the
// paper motivates.
func (g *Graph) ApproxDiameter() int {
	comps := g.ConnectedComponents()
	if len(comps) == 0 {
		return 0
	}
	start := comps[0][0]
	far, _ := farthest(g, start)
	_, d := farthest(g, far)
	return d
}

func farthest(g *Graph, root NodeID) (NodeID, int) {
	dist := g.BFSDistances(root)
	best, bestD := root, 0
	for id, d := range dist {
		if d > bestD || (d == bestD && id < best) {
			best, bestD = id, d
		}
	}
	return best, bestD
}

// DegreeHistogram returns counts of undirected degrees.
func (g *Graph) DegreeHistogram() map[int]int {
	h := make(map[int]int)
	for _, ns := range g.nodes {
		h[ns.Degree()]++
	}
	return h
}

// DegreeCentralityTop returns the k nodes with the highest undirected
// degree, ties broken by smaller id.
func (g *Graph) DegreeCentralityTop(k int) []NodeID {
	type nd struct {
		id NodeID
		d  int
	}
	all := make([]nd, 0, len(g.nodes))
	for id, ns := range g.nodes {
		all = append(all, nd{id, ns.Degree()})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].d != all[j].d {
			return all[i].d > all[j].d
		}
		return all[i].id < all[j].id
	})
	if k > len(all) {
		k = len(all)
	}
	out := make([]NodeID, k)
	for i := 0; i < k; i++ {
		out[i] = all[i].id
	}
	return out
}

// AttrFraction returns the fraction of nodes whose attribute key equals
// value — the label-counting quantity of the paper's Figure 8 example.
func (g *Graph) AttrFraction(key, value string) float64 {
	if g.NumNodes() == 0 {
		return 0
	}
	n := 0
	for _, ns := range g.nodes {
		if v, ok := ns.Attrs[key]; ok && v == value {
			n++
		}
	}
	return float64(n) / float64(g.NumNodes())
}

// AttrCount returns the number of nodes whose attribute key equals value.
func (g *Graph) AttrCount(key, value string) int {
	n := 0
	for _, ns := range g.nodes {
		if v, ok := ns.Attrs[key]; ok && v == value {
			n++
		}
	}
	return n
}

// Conductance returns the conductance of the cut defined by the node set s
// (ids not in the graph are ignored): cut edges / min(vol(S), vol(V\S)).
func (g *Graph) Conductance(s []NodeID) float64 {
	in := make(map[NodeID]struct{}, len(s))
	for _, id := range s {
		if g.Has(id) {
			in[id] = struct{}{}
		}
	}
	if len(in) == 0 || len(in) == g.NumNodes() {
		return 0
	}
	cut, volS, volRest := 0, 0, 0
	for id, ns := range g.nodes {
		_, inS := in[id]
		deg := 0
		for k := range ns.Edges {
			if k.Other == id {
				continue
			}
			deg++
			if !k.Out {
				continue // count each undirected edge once from the Out side
			}
			_, otherIn := in[k.Other]
			if inS != otherIn {
				cut++
			}
		}
		if inS {
			volS += deg
		} else {
			volRest += deg
		}
	}
	denom := math.Min(float64(volS), float64(volRest))
	if denom == 0 {
		return 1
	}
	return float64(cut) / denom
}
