package fetch

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"hgs/internal/kvstore"
)

// TableTrace is the per-table slice of a plan trace: how many requests
// against one store table the cache answered (positively or with an
// authoritative absence) and how many logical reads went to the store.
type TableTrace struct {
	CacheHits    int64
	NegativeHits int64
	KVReads      int64
}

// TraceRecord is the immutable snapshot of one retrieval's plan trace:
// what was planned, how much of it the decoded-delta cache absorbed,
// and what the store round actually cost. Execs counts the plan
// executions the retrieval issued (a snapshot runs one; a k-hop
// expansion runs one per hop). KVReads/RoundTrips/BytesRead/SimWait are
// attributed per call by the store (kvstore.CallStats) and therefore
// match the cluster's Metrics deltas exactly for retrievals whose
// metadata is already cached; against a store without per-call
// attribution, KVReads and BytesRead are counted from the issued
// request set and RoundTrips/SimWait stay zero.
type TraceRecord struct {
	// Op names the retrieval that owns the trace ("snapshot",
	// "node-history", ...).
	Op string
	// Execs is the number of executed plans aggregated into the record.
	Execs int
	// Groups, Parts, Gets and Scans are the planned request counts,
	// after plan-level deduplication.
	Groups, Parts, Gets, Scans int
	// CacheHits and NegativeHits are the planned delta requests answered
	// by the cache (positively / with known absence); KVReads is the
	// logical reads issued to the store for the rest.
	CacheHits    int64
	NegativeHits int64
	KVReads      int64
	// RoundTrips counts physical storage-node visits, BytesRead the
	// bytes moved, SimWait the simulated service time charged.
	RoundTrips int64
	BytesRead  int64
	SimWait    time.Duration
	// Tables breaks hits and reads down by store table.
	Tables map[string]TableTrace
}

// String renders the record as one line plus an indented per-table
// breakdown, the format hgs-inspect -trace prints.
func (r TraceRecord) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s execs=%d planned[groups=%d parts=%d gets=%d scans=%d] cache[hits=%d neg=%d] kv[reads=%d round-trips=%d bytes=%d wait=%s]",
		r.Op, r.Execs, r.Groups, r.Parts, r.Gets, r.Scans,
		r.CacheHits, r.NegativeHits, r.KVReads, r.RoundTrips, r.BytesRead, r.SimWait.Round(time.Microsecond))
	tables := make([]string, 0, len(r.Tables))
	for t := range r.Tables {
		tables = append(tables, t)
	}
	sort.Strings(tables)
	for _, t := range tables {
		tt := r.Tables[t]
		fmt.Fprintf(&b, "\n  %-12s hits=%d neg=%d reads=%d", t, tt.CacheHits, tt.NegativeHits, tt.KVReads)
	}
	return b.String()
}

// Trace accumulates one retrieval's plan/cache/read breakdown across
// its plan executions. The zero value is ready to use; pass it to a
// retrieval through core.FetchOptions.Trace (or let Options.TracePlans
// collect traces store-side) and read it back with Record once the call
// returns. A Trace is safe for the concurrent plan executions of one
// retrieval; a nil *Trace is valid and records nothing.
type Trace struct {
	mu  sync.Mutex
	rec TraceRecord
}

// SetOp names the retrieval owning the trace; the first non-empty name
// wins, so an outer multi-snapshot query is not relabeled by the
// snapshots it fans out into.
func (t *Trace) SetOp(op string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.rec.Op == "" {
		t.rec.Op = op
	}
}

// Record returns a snapshot of the accumulated trace (with its own copy
// of the per-table map).
func (t *Trace) Record() TraceRecord {
	if t == nil {
		return TraceRecord{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := t.rec
	out.Tables = make(map[string]TableTrace, len(t.rec.Tables))
	for k, v := range t.rec.Tables {
		out.Tables[k] = v
	}
	return out
}

// tableLocked returns the mutable per-table slot.
func (t *Trace) tableLocked(table string) TableTrace {
	if t.rec.Tables == nil {
		t.rec.Tables = make(map[string]TableTrace)
	}
	return t.rec.Tables[table]
}

// addPlanned records one executed plan's deduplicated request counts.
func (t *Trace) addPlanned(groups, parts, gets, scans int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.rec.Execs++
	t.rec.Groups += groups
	t.rec.Parts += parts
	t.rec.Gets += gets
	t.rec.Scans += scans
}

// addHit records a cache answer for one planned delta request.
func (t *Trace) addHit(table string, negative bool) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	tt := t.tableLocked(table)
	if negative {
		t.rec.NegativeHits++
		tt.NegativeHits++
	} else {
		t.rec.CacheHits++
		tt.CacheHits++
	}
	t.rec.Tables[table] = tt
}

// addReads attributes n logical store reads to a table.
func (t *Trace) addReads(table string, n int) {
	if t == nil || n == 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	tt := t.tableLocked(table)
	tt.KVReads += int64(n)
	t.rec.Tables[table] = tt
	t.rec.KVReads += int64(n)
}

// addCall folds one store call's exact attribution into the trace. The
// logical read count is attributed per table by addReads; the call adds
// only the physical round-trips, bytes and simulated wait.
func (t *Trace) addCall(cs kvstore.CallStats) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.rec.RoundTrips += cs.RoundTrips
	t.rec.BytesRead += cs.BytesRead
	t.rec.SimWait += cs.SimWait
}
