package core

import (
	"fmt"
	"time"

	"hgs/internal/graph"
)

// Append ingests a new batch of events at the end of the history (paper
// §4.4, Update: "the update process involves creating an independent TGI
// with the new events, and merging it with the original TGI"). Full
// timespans are immutable; a trailing partial timespan is rebuilt from
// its stored eventlists merged with the new batch.
func (t *TGI) Append(events []graph.Event) error {
	defer t.observeDur("append", time.Now())
	if len(events) == 0 {
		return nil
	}
	if err := validateEvents(events); err != nil {
		return err
	}
	gm, err := t.loadGraphMeta()
	if err != nil {
		return err
	}
	if events[0].Time <= gm.End {
		return fmt.Errorf("core: append batch starts at %d, not after indexed history end %d", events[0].Time, gm.End)
	}

	// Decide whether the last timespan must be rebuilt.
	lastTSID := gm.TimespanCount - 1
	lastMeta, err := t.loadTimespanMeta(lastTSID)
	if err != nil {
		return err
	}
	combined := events
	rebuildFrom := lastTSID + 1
	var carry *graph.Graph
	if lastMeta.EventCount < t.cfg.TimespanEvents {
		// Recover the partial span's events from its stored eventlists and
		// merge the new batch behind them.
		recovered, err := t.spanEvents(lastMeta)
		if err != nil {
			return err
		}
		combined = append(recovered, events...)
		rebuildFrom = lastTSID
		// State just before the partial span started.
		if lastTSID == 0 {
			carry = graph.New()
		} else {
			carry, err = t.GetSnapshot(lastMeta.Start-1, nil)
			if err != nil {
				return err
			}
		}
		t.dropTimespan(lastTSID)
	} else {
		carry, err = t.GetSnapshot(gm.End, nil)
		if err != nil {
			return err
		}
	}

	tsid := rebuildFrom
	for off := 0; off < len(combined); off += t.cfg.TimespanEvents {
		end := min(off+t.cfg.TimespanEvents, len(combined))
		carry, err = t.buildTimespan(tsid, carry, combined[off:end])
		if err != nil {
			return err
		}
		tsid++
	}

	gm.Events += len(events)
	gm.End = events[len(events)-1].Time
	gm.TimespanCount = tsid
	t.meta.invalidate()
	// The rebuilt trailing timespan reuses delta ids; drop any decoded
	// deltas cached for the old rows.
	t.fx.Cache().Purge()
	return t.storeGraphMeta(gm)
}

// spanEvents recovers the full (expanded) event stream of a timespan from
// its stored micro-eventlists.
func (t *TGI) spanEvents(tm *TimespanMeta) ([]graph.Event, error) {
	var lists [][]graph.Event
	for sid := 0; sid < t.cfg.HorizontalPartitions; sid++ {
		rows := t.store.ScanPartition(TableEvents, placementKey(tm.TSID, sid))
		for _, row := range rows {
			evs, err := t.cdc.DecodeEvents(row.Value)
			if err != nil {
				return nil, fmt.Errorf("core: recover span %d events: %w", tm.TSID, err)
			}
			lists = append(lists, evs)
		}
	}
	return mergeSortEvents(lists), nil
}

// dropTimespan removes every stored row of a timespan across all tables.
func (t *TGI) dropTimespan(tsid int) {
	for sid := 0; sid < t.cfg.HorizontalPartitions; sid++ {
		pkey := placementKey(tsid, sid)
		for _, table := range []string{TableDeltas, TableEvents, TableVersions, TableMicroPart, TableAux, TableAuxEvents} {
			t.store.DropPartition(table, pkey)
		}
	}
	t.store.Delete(TableTimespans, fmt.Sprintf("t%05d", tsid), "meta")
}
