// Package baseline implements the prior temporal-index designs the paper
// compares TGI against (§4.2, Table 1): the Log and Copy extremes of
// Salzberg & Tsotras, their Copy+Log hybrid, a vertex-centric index, and
// the authors' earlier DeltaGraph (as a degenerate TGI configuration).
// All baselines store through the same simulated key-value cluster so
// that read/byte counters and latencies are directly comparable.
package baseline

import (
	"fmt"
	"sort"

	"hgs/internal/codec"
	"hgs/internal/delta"
	"hgs/internal/graph"
	"hgs/internal/kvstore"
	"hgs/internal/temporal"
)

// History is a node's evolution over an interval: state at the start plus
// subsequent touching events (the baseline-comparable subset of TGI's
// NodeHistory).
type History struct {
	ID       graph.NodeID
	Interval temporal.Interval
	Initial  *graph.NodeState
	Events   []graph.Event
}

// Index is the retrieval contract every baseline implements.
type Index interface {
	// Name identifies the index design.
	Name() string
	// Build constructs the index from a chronological event stream with
	// strictly increasing timestamps.
	Build(events []graph.Event) error
	// Snapshot returns the graph state at time tt.
	Snapshot(tt temporal.Time) (*graph.Graph, error)
	// StaticNode returns one node's state at time tt (nil if absent).
	StaticNode(id graph.NodeID, tt temporal.Time) (*graph.NodeState, error)
	// NodeVersions returns one node's history over [ts, te).
	NodeVersions(id graph.NodeID, ts, te temporal.Time) (*History, error)
	// StorageBytes reports the logical size of the stored index.
	StorageBytes() int64
}

// replayPrefix applies events with Time <= tt onto g.
func replayPrefix(g *graph.Graph, events []graph.Event, tt temporal.Time) error {
	for _, e := range events {
		if e.Time > tt {
			break
		}
		if err := g.Apply(e); err != nil {
			return err
		}
	}
	return nil
}

// --- Log ---

// LogIndex is the pure Log approach: the history is a single sequence of
// eventlist chunks; every query replays from the beginning (minimal
// storage, maximal reconstruction cost).
type LogIndex struct {
	store     *kvstore.Cluster
	cdc       codec.Codec
	chunkSize int
	chunks    int
	start     temporal.Time
	end       temporal.Time
	chunkEnd  []temporal.Time // last event time per chunk
}

// NewLogIndex creates a Log index storing eventlists of chunkSize events.
func NewLogIndex(store *kvstore.Cluster, chunkSize int) *LogIndex {
	if chunkSize < 1 {
		chunkSize = 1000
	}
	return &LogIndex{store: store, chunkSize: chunkSize}
}

func (ix *LogIndex) Name() string { return "log" }

func (ix *LogIndex) Build(events []graph.Event) error {
	if len(events) == 0 {
		return fmt.Errorf("baseline: empty history")
	}
	// Expand RemoveNode so node-filtered replays stay exact.
	w := graph.New()
	expanded := make([]graph.Event, 0, len(events))
	for _, e := range events {
		for _, x := range graph.ExpandRemoveNode(w, e) {
			expanded = append(expanded, x)
			w.Apply(x)
		}
	}
	ix.start, ix.end = events[0].Time, events[len(events)-1].Time
	ix.chunks = 0
	for off := 0; off < len(expanded); off += ix.chunkSize {
		endOff := min(off+ix.chunkSize, len(expanded))
		blob, err := ix.cdc.EncodeEvents(expanded[off:endOff])
		if err != nil {
			return err
		}
		ix.store.Put("log", fmt.Sprintf("c%08d", ix.chunks), "events", blob)
		ix.chunkEnd = append(ix.chunkEnd, expanded[endOff-1].Time)
		ix.chunks++
	}
	return nil
}

// readChunksThrough fetches chunks until the one containing tt.
func (ix *LogIndex) readChunksThrough(tt temporal.Time) ([][]graph.Event, error) {
	var lists [][]graph.Event
	for i := 0; i < ix.chunks; i++ {
		blob, ok := ix.store.Get("log", fmt.Sprintf("c%08d", i), "events")
		if !ok {
			return nil, fmt.Errorf("baseline: missing log chunk %d", i)
		}
		evs, err := ix.cdc.DecodeEvents(blob)
		if err != nil {
			return nil, err
		}
		lists = append(lists, evs)
		if ix.chunkEnd[i] > tt {
			break
		}
	}
	return lists, nil
}

func (ix *LogIndex) Snapshot(tt temporal.Time) (*graph.Graph, error) {
	lists, err := ix.readChunksThrough(tt)
	if err != nil {
		return nil, err
	}
	g := graph.New()
	for _, evs := range lists {
		if err := replayPrefix(g, evs, tt); err != nil {
			return nil, err
		}
	}
	return g, nil
}

func (ix *LogIndex) StaticNode(id graph.NodeID, tt temporal.Time) (*graph.NodeState, error) {
	// The log has no entity access path: replay everything, keep one node.
	g, err := ix.Snapshot(tt)
	if err != nil {
		return nil, err
	}
	if ns := g.Node(id); ns != nil {
		return ns.Clone(), nil
	}
	return nil, nil
}

func (ix *LogIndex) NodeVersions(id graph.NodeID, ts, te temporal.Time) (*History, error) {
	initial, err := ix.StaticNode(id, ts)
	if err != nil {
		return nil, err
	}
	lists, err := ix.readChunksThrough(te)
	if err != nil {
		return nil, err
	}
	h := &History{ID: id, Interval: temporal.Interval{Start: ts, End: te}, Initial: initial}
	for _, evs := range lists {
		for _, e := range evs {
			if e.Time > ts && e.Time < te && e.Touches(id) {
				h.Events = append(h.Events, e)
			}
		}
	}
	return h, nil
}

func (ix *LogIndex) StorageBytes() int64 { return ix.store.LogicalBytes() }

// --- Copy ---

// CopyIndex is the pure Copy approach: a full materialized snapshot at
// every point of change (direct access, quadratic storage).
type CopyIndex struct {
	store *kvstore.Cluster
	cdc   codec.Codec
	times []temporal.Time // time of each stored copy, ascending
}

// NewCopyIndex creates a Copy index.
func NewCopyIndex(store *kvstore.Cluster) *CopyIndex {
	return &CopyIndex{store: store}
}

func (ix *CopyIndex) Name() string { return "copy" }

func (ix *CopyIndex) Build(events []graph.Event) error {
	if len(events) == 0 {
		return fmt.Errorf("baseline: empty history")
	}
	g := graph.New()
	ix.times = ix.times[:0]
	for i := 0; i < len(events); {
		tt := events[i].Time
		for i < len(events) && events[i].Time == tt {
			if err := g.Apply(events[i]); err != nil {
				return err
			}
			i++
		}
		blob, err := ix.cdc.EncodeDelta(delta.FromGraph(g))
		if err != nil {
			return err
		}
		ix.store.Put("copy", fmt.Sprintf("t%020d", tt), "snapshot", blob)
		ix.times = append(ix.times, tt)
	}
	return nil
}

// copyAt returns the latest stored copy at or before tt (empty graph when
// tt precedes the history).
func (ix *CopyIndex) copyAt(tt temporal.Time) (*graph.Graph, error) {
	i := sort.Search(len(ix.times), func(i int) bool { return ix.times[i] > tt })
	if i == 0 {
		return graph.New(), nil
	}
	blob, ok := ix.store.Get("copy", fmt.Sprintf("t%020d", ix.times[i-1]), "snapshot")
	if !ok {
		return nil, fmt.Errorf("baseline: missing copy at %d", ix.times[i-1])
	}
	d, err := ix.cdc.DecodeDelta(blob)
	if err != nil {
		return nil, err
	}
	return d.Materialize(), nil
}

func (ix *CopyIndex) Snapshot(tt temporal.Time) (*graph.Graph, error) { return ix.copyAt(tt) }

func (ix *CopyIndex) StaticNode(id graph.NodeID, tt temporal.Time) (*graph.NodeState, error) {
	g, err := ix.copyAt(tt)
	if err != nil {
		return nil, err
	}
	if ns := g.Node(id); ns != nil {
		return ns.Clone(), nil
	}
	return nil, nil
}

func (ix *CopyIndex) NodeVersions(id graph.NodeID, ts, te temporal.Time) (*History, error) {
	// Version retrieval under Copy reads every snapshot in the range and
	// diffs consecutive node states (the |S|·|G| row of Table 1).
	initial, err := ix.StaticNode(id, ts)
	if err != nil {
		return nil, err
	}
	h := &History{ID: id, Interval: temporal.Interval{Start: ts, End: te}, Initial: initial}
	prev := initial
	for _, tt := range ix.times {
		if tt <= ts || tt >= te {
			continue
		}
		cur, err := ix.StaticNode(id, tt)
		if err != nil {
			return nil, err
		}
		if !statesEqual(prev, cur) {
			h.Events = append(h.Events, synthesizeChange(id, tt, prev, cur)...)
			prev = cur
		}
	}
	return h, nil
}

func (ix *CopyIndex) StorageBytes() int64 { return ix.store.LogicalBytes() }

func statesEqual(a, b *graph.NodeState) bool {
	if a == nil || b == nil {
		return a == b
	}
	return a.Equal(b)
}

// synthesizeChange converts a state transition into a minimal event
// sequence (Copy has no event log, so versions are reconstructed as
// diffs between consecutive copies).
func synthesizeChange(id graph.NodeID, tt temporal.Time, prev, cur *graph.NodeState) []graph.Event {
	var out []graph.Event
	if cur == nil {
		return append(out, graph.Event{Time: tt, Kind: graph.RemoveNode, Node: id})
	}
	if prev == nil {
		out = append(out, graph.Event{Time: tt, Kind: graph.AddNode, Node: id})
		prev = graph.NewNodeState(id)
	}
	for k, v := range cur.Attrs {
		if pv, ok := prev.Attrs[k]; !ok || pv != v {
			out = append(out, graph.Event{Time: tt, Kind: graph.SetNodeAttr, Node: id, Key: k, Value: v})
		}
	}
	for k := range prev.Attrs {
		if _, ok := cur.Attrs[k]; !ok {
			out = append(out, graph.Event{Time: tt, Kind: graph.DelNodeAttr, Node: id, Key: k})
		}
	}
	for k, es := range cur.Edges {
		u, v := id, k.Other
		if !k.Out {
			u, v = k.Other, id
		}
		pes, existed := prev.Edges[k]
		if !existed {
			out = append(out, graph.Event{Time: tt, Kind: graph.AddEdge, Node: u, Other: v})
		}
		// Edge attribute diffs (both for new and surviving edges).
		for ak, av := range es.Attrs {
			if !existed || pes.Attrs[ak] != av {
				out = append(out, graph.Event{Time: tt, Kind: graph.SetEdgeAttr, Node: u, Other: v, Key: ak, Value: av})
			}
		}
		if existed {
			for ak := range pes.Attrs {
				if _, ok := es.Attrs[ak]; !ok {
					out = append(out, graph.Event{Time: tt, Kind: graph.DelEdgeAttr, Node: u, Other: v, Key: ak})
				}
			}
		}
	}
	for k := range prev.Edges {
		if _, ok := cur.Edges[k]; !ok {
			e := graph.Event{Time: tt, Kind: graph.RemoveEdge}
			if k.Out {
				e.Node, e.Other = id, k.Other
			} else {
				e.Node, e.Other = k.Other, id
			}
			out = append(out, e)
		}
	}
	return out
}
