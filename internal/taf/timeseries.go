package taf

import (
	"sort"

	"hgs/internal/temporal"
)

// Timed is one sampled value of a quantity at a timepoint.
type Timed[V any] struct {
	Time  temporal.Time
	Value V
}

// Series is a chronological scalar timeseries — the operand of the
// paper's TempAggregation operators (Peak, Saturate, Max, Min, Mean).
type Series []Timed[float64]

// Sort orders the series chronologically in place and returns it.
func (s Series) Sort() Series {
	sort.Slice(s, func(i, j int) bool { return s[i].Time < s[j].Time })
	return s
}

// Max returns the sample with the largest value (earliest on ties).
func (s Series) Max() (Timed[float64], bool) {
	if len(s) == 0 {
		return Timed[float64]{}, false
	}
	best := s[0]
	for _, v := range s[1:] {
		if v.Value > best.Value {
			best = v
		}
	}
	return best, true
}

// Min returns the sample with the smallest value (earliest on ties).
func (s Series) Min() (Timed[float64], bool) {
	if len(s) == 0 {
		return Timed[float64]{}, false
	}
	best := s[0]
	for _, v := range s[1:] {
		if v.Value < best.Value {
			best = v
		}
	}
	return best, true
}

// Mean returns the arithmetic mean of the sampled values.
func (s Series) Mean() float64 {
	if len(s) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s {
		sum += v.Value
	}
	return sum / float64(len(s))
}

// Peaks returns the local maxima — "times at which there was a peak in
// the quantity" (paper §5.1, TempAggregation). Plateau peaks report
// their first sample.
func (s Series) Peaks() []Timed[float64] {
	var out []Timed[float64]
	for i := range s {
		leftOK := i == 0 || s[i].Value > s[i-1].Value
		rightOK := true
		for j := i + 1; j < len(s); j++ {
			if s[j].Value == s[i].Value {
				continue // plateau extends right
			}
			rightOK = s[j].Value < s[i].Value
			break
		}
		if i > 0 && s[i].Value == s[i-1].Value {
			leftOK = false // not the first sample of the plateau
		}
		if leftOK && rightOK {
			out = append(out, s[i])
		}
	}
	return out
}

// Saturate returns the earliest time from which the value stays within
// eps of the final value — when the quantity stops changing materially.
func (s Series) Saturate(eps float64) (temporal.Time, bool) {
	if len(s) == 0 {
		return 0, false
	}
	final := s[len(s)-1].Value
	sat := s[len(s)-1].Time
	for i := len(s) - 1; i >= 0; i-- {
		d := s[i].Value - final
		if d < 0 {
			d = -d
		}
		if d > eps {
			break
		}
		sat = s[i].Time
	}
	return sat, true
}

// EvenTimepoints returns n timepoints evenly spaced over iv (inclusive
// of both ends), the default sampler of the Evolution operator.
func EvenTimepoints(iv temporal.Interval, n int) []temporal.Time {
	if n <= 1 {
		return []temporal.Time{iv.Start}
	}
	out := make([]temporal.Time, n)
	span := iv.End - 1 - iv.Start
	for i := 0; i < n; i++ {
		out[i] = iv.Start + temporal.Time(int64(span)*int64(i)/int64(n-1))
	}
	return out
}
