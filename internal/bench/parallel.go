package bench

import (
	"fmt"
	"hash/fnv"
	"runtime"
	"time"

	"hgs/internal/codec"
	"hgs/internal/core"
	"hgs/internal/fetch"
	"hgs/internal/temporal"

	"hgs/internal/graph"
)

// snapshotDigest hashes a snapshot's content deterministically: every
// node state is encoded with the canonical codec (sorted attributes and
// edges) in node-id order. Two snapshots digest equal iff they are
// byte-identical under the wire format — the check behind the parallel
// experiment's "same result for any worker count" guarantee.
func snapshotDigest(g *graph.Graph) uint64 {
	cdc := codec.Codec{}
	h := fnv.New64a()
	for _, id := range g.NodeIDs() {
		blob, err := cdc.EncodeNodeState(g.Node(id))
		if err != nil {
			panic(fmt.Sprintf("bench: digest encode: %v", err))
		}
		h.Write(blob)
	}
	return h.Sum64()
}

// WorkerPass is one worker-count measurement of the parallel
// materialization sweep.
type WorkerPass struct {
	// Workers is the MaterializeWorkers setting of the pass.
	Workers int
	// Seconds is the wall time of the timed repetitions.
	Seconds float64
	// AllocsPerOp is the mean heap allocations per snapshot retrieval.
	AllocsPerOp float64
	// EventlistHits is the pass's cached-eventlist hit delta.
	EventlistHits int64
	// Digest summarizes the retrieved snapshots' content; all passes
	// must agree.
	Digest uint64
}

// parallelWorkerCounts is the swept MaterializeWorkers axis.
var parallelWorkerCounts = []int{1, 2, 4, 8}

// ParallelPasses runs the parallel-materialization sweep without the
// latency model and returns one pass per worker count — the testable
// core of the parallel experiment (used by TestParallelSmoke). The
// shared decoded cache is warmed first, so the sweep measures
// materialization CPU (delta application + eventlist replay), not
// fetches; each pass also digests its snapshots so byte-identity across
// worker counts is checkable.
func ParallelPasses(sc Scale) []WorkerPass {
	events := Dataset1(sc)
	// More horizontal partitions than the default four: sids are the
	// snapshot materialization's parallel shards, so the sweep needs
	// enough of them to occupy the larger worker counts.
	ix := buildIndex("parallel", events, 4, 1, func(cfg *core.Config) {
		cfg.HorizontalPartitions = 8
	})
	probes := probeTimes(events, 3)
	shared := fetch.NewCache(core.DefaultCacheBytes)
	mk := func(w int) *core.TGI {
		cfg := ix.TGI.Config()
		cfg.Cache = shared
		cfg.MaterializeWorkers = w
		return core.New(ix.Cluster, cfg)
	}
	snap := func(t *core.TGI, tt temporal.Time) *graph.Graph {
		g, err := t.GetSnapshot(tt, nil)
		if err != nil {
			panic(fmt.Sprintf("bench: parallel snapshot: %v", err))
		}
		return g
	}
	// Warm pass: fill the shared cache (deltas, boundary eventlists,
	// negative markers) so every sweep pass runs KV-free.
	warmT := mk(0)
	for _, tt := range probes {
		snap(warmT, tt)
	}

	const reps = 3
	passes := make([]WorkerPass, 0, len(parallelWorkerCounts))
	for _, w := range parallelWorkerCounts {
		t := mk(w)
		before := t.CacheStats()
		// Digest pass, untimed: hashing is not part of materialization.
		h := fnv.New64a()
		for _, tt := range probes {
			fmt.Fprintf(h, "%016x", snapshotDigest(snap(t, tt)))
		}
		runtime.GC()
		var ms0, ms1 runtime.MemStats
		runtime.ReadMemStats(&ms0)
		start := time.Now()
		ops := 0
		for rep := 0; rep < reps; rep++ {
			for _, tt := range probes {
				snap(t, tt)
				ops++
			}
		}
		sec := time.Since(start).Seconds()
		runtime.ReadMemStats(&ms1)
		after := t.CacheStats()
		passes = append(passes, WorkerPass{
			Workers:       w,
			Seconds:       sec,
			AllocsPerOp:   float64(ms1.Mallocs-ms0.Mallocs) / float64(ops),
			EventlistHits: after.EventlistHits - before.EventlistHits,
			Digest:        h.Sum64(),
		})
	}
	return passes
}

// ParallelBench — the parallel materialization experiment: warm-cache
// snapshot retrieval swept over MaterializeWorkers ∈ {1,2,4,8},
// reporting wall-time speedup over the sequential pass, allocations per
// retrieval (the codec-pooling axis), cached-eventlist hits, and
// whether every worker count produced byte-identical snapshots.
// Speedup saturates at min(workers, sids, physical cores); on a
// single-core host the sweep degenerates to an overhead check.
func ParallelBench(sc Scale) *Result {
	start := time.Now()
	res := &Result{
		ID:     "parallel",
		Title:  "Parallel snapshot materialization vs MaterializeWorkers (warm cache, m=4, sids=8)",
		XLabel: "materialize workers", YLabel: "speedup vs workers=1",
	}
	passes := ParallelPasses(sc)
	base := passes[0]
	speedup := Series{Name: "speedup"}
	allocs := Series{Name: "allocs/op"}
	identical := true
	res.TableHeader = []string{"workers", "elapsed", "speedup", "allocs/op", "eventlist hits"}
	for _, p := range passes {
		su := base.Seconds / p.Seconds
		speedup.Points = append(speedup.Points, Point{X: float64(p.Workers), Y: su})
		allocs.Points = append(allocs.Points, Point{X: float64(p.Workers), Y: p.AllocsPerOp})
		if p.Digest != base.Digest {
			identical = false
		}
		res.TableRows = append(res.TableRows, []string{
			fmt.Sprintf("%d", p.Workers),
			fmt.Sprintf("%.3fs", p.Seconds),
			fmt.Sprintf("%.2fx", su),
			fmt.Sprintf("%.0f", p.AllocsPerOp),
			fmt.Sprintf("%d", p.EventlistHits),
		})
		res.Passes = append(res.Passes, PassMetrics{
			Label:         fmt.Sprintf("w=%d", p.Workers),
			AllocsPerOp:   p.AllocsPerOp,
			EventlistHits: p.EventlistHits,
		})
	}
	res.Series = append(res.Series, speedup, allocs)
	res.Notes = append(res.Notes, fmt.Sprintf("snapshots byte-identical across worker counts: %v", identical))
	res.Notes = append(res.Notes, fmt.Sprintf("host cores: %d (speedup saturates at min(workers, sids, cores))", runtime.NumCPU()))
	hits, misses := codec.PoolStats()
	res.Notes = append(res.Notes, fmt.Sprintf("codec pool: %d hits, %d misses since process start", hits, misses))
	res.Elapsed = time.Since(start)
	return res
}
