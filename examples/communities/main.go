// Communities: reproduce the paper's Figure 7(b) analysis — comparing
// two communities in a network over a year of history — using Select,
// Timeslice, AliveCountSeries and Compare, plus a conductance check of
// the planted structure.
package main

import (
	"fmt"
	"log"

	"hgs"
	"hgs/internal/workload"
)

func main() {
	// Friendster-style community graph (Dataset 4).
	events := workload.Friendster(workload.FriendsterConfig{
		Communities:   6,
		CommunitySize: 300,
		IntraDegree:   8,
		InterFraction: 0.04,
		Seed:          3,
	})
	store, err := hgs.Open(hgs.Options{
		Machines:       2,
		TimespanEvents: len(events)/2 + 1,
		EventlistSize:  len(events) / 12,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := store.Load(events); err != nil {
		log.Fatal(err)
	}
	lo, hi, _ := store.TimeRange()

	a := store.Analytics(2)
	span := hgs.NewInterval(lo, hi+1)
	son, err := a.SON().Timeslice(span).Fetch()
	if err != nil {
		log.Fatal(err)
	}

	// Select the two communities (paper: Select("community = A/B")).
	sonA := son.SelectAttrAt("community", "C000", hi)
	sonB := son.SelectAttrAt("community", "C001", hi)

	// Average membership over the span (paper Figure 7b prints means of
	// the two membership series).
	pts := hgs.EvenTimepoints(span, 8)
	countA := hgs.AliveCountSeries(sonA, pts)
	countB := hgs.AliveCountSeries(sonB, pts)
	fmt.Printf("average membership: A=%.1f  B=%.1f\n", countA.Mean(), countB.Mean())
	fmt.Println("membership growth over time:")
	for i := range countA {
		fmt.Printf("  t=%-8d A=%4.0f  B=%4.0f\n", countA[i].Time, countA[i].Value, countB[i].Value)
	}

	// Who is better connected? Compare mean degree of the two
	// communities at the end of the history (paper operator 7).
	rows := hgs.Compare(sonA, sonB, hgs.NodeDegreeAt(hi))
	var sumA, sumB, nA, nB float64
	for _, r := range rows {
		if r.A > 0 {
			sumA += r.A
			nA++
		}
		if r.B > 0 {
			sumB += r.B
			nB++
		}
	}
	fmt.Printf("\nmean degree: A=%.2f  B=%.2f\n", sumA/nA, sumB/nB)

	// Structural check: community A is a well-knit cluster (low
	// conductance) in the final snapshot.
	g, err := store.Snapshot(hi)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("conductance of community A's cut: %.3f\n", g.Conductance(sonA.IDs()))
	fmt.Printf("graph-wide density: %.5f\n", g.Density())
}
