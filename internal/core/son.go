package core

import (
	"context"
	"sort"

	"hgs/internal/fetch"
	"hgs/internal/graph"
	"hgs/internal/temporal"
)

// FetchNodeHistories is the bulk retrieval behind the analytics
// framework's SoN fetch (paper §5.2, Figure 10): for every node selected
// by keep (nil = all), its state at iv.Start plus its events over
// (iv.Start, iv.End), returned grouped by horizontal partition so each
// TGI query processor's stream lands directly in one analytics-engine
// partition without funnelling through a coordinator.
func (t *TGI) FetchNodeHistories(iv temporal.Interval, keep func(graph.NodeID) bool, opts *FetchOptions) ([][]*NodeHistory, error) {
	tr, done := t.startTrace("son-fetch", opts)
	defer done()
	gm, err := t.loadGraphMeta()
	if err != nil {
		return nil, err
	}
	ctx := opts.ctx()
	ns := t.cfg.HorizontalPartitions
	out := make([][]*NodeHistory, ns)
	tasks := make([]func() error, 0, ns)
	for sid := 0; sid < ns; sid++ {
		sid := sid
		tasks = append(tasks, func() error {
			histories, err := t.fetchSidHistories(ctx, gm, sid, iv, keep, tr)
			if err != nil {
				return err
			}
			out[sid] = histories
			return nil
		})
	}
	if err := runParallel(ctx, t.cfg.clients(opts), tasks); err != nil {
		return nil, err
	}
	return out, nil
}

// fetchSidHistories runs one query processor's share of a SoN fetch.
func (t *TGI) fetchSidHistories(ctx context.Context, gm *GraphMeta, sid int, iv temporal.Interval, keep func(graph.NodeID) bool, tr *fetch.Trace) ([]*NodeHistory, error) {
	owned := func(id graph.NodeID) bool {
		return t.sidOf(id) == sid && (keep == nil || keep(id))
	}

	// 1. Initial states: the sid's partitioned snapshot at iv.Start.
	init, err := t.fetchSidSnapshot(ctx, sid, iv.Start, tr)
	if err != nil {
		return nil, err
	}

	// 2. Events over the window: plan every in-window eventlist of the
	// sid as one batched, cache-accounted eventlist-group read, then
	// window, deduplicate and group per node. Cached event slices are
	// shared read-only; windowing filters into fresh slices.
	type elKey struct {
		tsid int
		el   int
	}
	var refs []elKey
	plan := fetch.NewPlan()
	for tsid := 0; tsid < gm.TimespanCount; tsid++ {
		tm, err := t.loadTimespanMeta(tsid)
		if err != nil {
			return nil, err
		}
		if tm.End <= iv.Start || tm.Start >= iv.End {
			continue
		}
		for el := 0; el < tm.EventlistCount; el++ {
			// Eventlist el covers (LeafTimes[el], LeafTimes[el+1]].
			if tm.LeafTimes[el+1] <= iv.Start || tm.LeafTimes[el] >= iv.End {
				continue
			}
			refs = append(refs, elKey{tsid: tsid, el: el})
			plan.EventGroup(tsid, sid, el)
		}
	}
	res, err := t.fx.ExecCtx(ctx, plan, 1, tr)
	if err != nil {
		return nil, err
	}
	var lists [][]graph.Event
	for _, ref := range refs {
		for _, part := range res.EventGroup(ref.tsid, sid, ref.el) {
			var win []graph.Event
			for _, e := range part.Events {
				if e.Time > iv.Start && e.Time < iv.End {
					win = append(win, e)
				}
			}
			lists = append(lists, win)
		}
	}
	merged := mergeSortEvents(lists)
	perNode := make(map[graph.NodeID][]graph.Event)
	for _, e := range merged {
		if owned(e.Node) {
			perNode[e.Node] = append(perNode[e.Node], e)
		}
		if e.Kind.IsEdge() && e.Other != e.Node && owned(e.Other) {
			perNode[e.Other] = append(perNode[e.Other], e)
		}
	}

	// 3. Assemble temporal nodes: anything alive at the start or touched
	// during the window.
	ids := make(map[graph.NodeID]struct{})
	init.Range(func(nsn *graph.NodeState) bool {
		if owned(nsn.ID) {
			ids[nsn.ID] = struct{}{}
		}
		return true
	})
	for id := range perNode {
		ids[id] = struct{}{}
	}
	ordered := make([]graph.NodeID, 0, len(ids))
	for id := range ids {
		ordered = append(ordered, id)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i] < ordered[j] })
	histories := make([]*NodeHistory, 0, len(ordered))
	for _, id := range ordered {
		h := &NodeHistory{ID: id, Interval: iv, Events: perNode[id]}
		if nsn := init.Node(id); nsn != nil {
			h.Initial = nsn.Clone()
		}
		histories = append(histories, h)
	}
	return histories, nil
}

// fetchSidSnapshot reconstructs one horizontal partition's state at tt
// (the per-sid slice of Algorithm 1): one batched plan for the path
// delta groups and the boundary eventlist, cache-served where hot.
func (t *TGI) fetchSidSnapshot(ctx context.Context, sid int, tt temporal.Time, tr *fetch.Trace) (*graph.Graph, error) {
	tm, err := t.timespanFor(tt)
	if err != nil {
		return nil, err
	}
	leaf := tm.leafFor(tt)
	plan := fetch.NewPlan()
	for _, did := range tm.LeafPaths[leaf] {
		plan.DeltaGroup(tm.TSID, sid, did)
	}
	if leaf < tm.EventlistCount {
		plan.EventGroup(tm.TSID, sid, leaf)
	}
	res, err := t.fx.ExecCtx(ctx, plan, 1, tr)
	if err != nil {
		return nil, err
	}
	g := graph.New()
	for _, did := range tm.LeafPaths[leaf] {
		for _, part := range res.Group(tm.TSID, sid, did) {
			res.Merge(part.Delta, g)
		}
	}
	if leaf < tm.EventlistCount {
		parts := res.EventGroup(tm.TSID, sid, leaf)
		lists := make([][]graph.Event, 0, len(parts))
		for _, p := range parts {
			lists = append(lists, p.Events)
		}
		for _, e := range mergeSortEvents(lists) {
			if e.Time > tt {
				break
			}
			if err := g.Apply(e); err != nil {
				return nil, err
			}
		}
	}
	return g, nil
}
