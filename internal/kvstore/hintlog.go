package kvstore

// Durable hinted handoff. Every hint queued for a node is mirrored to a
// per-node append-only log under Config.HintDir, so the queue survives
// a process restart: hints pending at Open are replayed (stamp-guarded)
// straight into the node's engine before the cluster serves traffic,
// and the log is truncated whenever the in-memory queue fully drains
// (revive, fault-clear). The record framing follows the disklog WAL:
//
//	[u32 payload length][u32 IEEE CRC32 of payload][payload]
//
// both little-endian, payload =
//
//	[op byte][u32 len][table][u32 len][pkey][u32 len][ckey][u32 len][value]
//
// A torn tail (partial record, bad CRC) is truncated at the last good
// record on open — the tail hint was not acknowledged as hinted
// durably, and the write that queued it was already counted
// under-replicated, so dropping it is the crash semantics hints always
// had, just with a far smaller window. Appends fsync before returning:
// hints are rare (a replica was down), so the write path only pays the
// sync when already degraded.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// hintRecHeader is the per-record framing overhead: payload length and
// CRC32, both little-endian u32.
const hintRecHeader = 8

// maxHintRecord guards decode against a corrupt length prefix.
const maxHintRecord = 1 << 30

// hintFileName names node id's hint log inside Config.HintDir.
func hintFileName(id int) string { return fmt.Sprintf("node-%03d.hints", id) }

// hintLog is one node's durable hint queue. All methods are called with
// the owning node's hintMu held (append/reset) or during single-threaded
// open/teardown, so the type needs no lock of its own.
type hintLog struct {
	f    *os.File
	path string
	// size is the current valid length; appends extend it, reset zeroes
	// it. Kept in memory so reset can skip the syscall when already
	// empty (the common case: every drain after the first).
	size int64
}

// openHintLog opens (creating if needed) the hint log at path and
// decodes its pending records, truncating a torn tail. The returned
// hints are in append order.
func openHintLog(path string) (*hintLog, []hint, error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, nil, err
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, err
	}
	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	var pending []hint
	off := 0
	for off+hintRecHeader <= len(data) {
		n := int(binary.LittleEndian.Uint32(data[off:]))
		crc := binary.LittleEndian.Uint32(data[off+4:])
		if n > maxHintRecord || off+hintRecHeader+n > len(data) {
			break
		}
		payload := data[off+hintRecHeader : off+hintRecHeader+n]
		if crc32.ChecksumIEEE(payload) != crc {
			break
		}
		h, ok := decodeHint(payload)
		if !ok {
			break
		}
		pending = append(pending, h)
		off += hintRecHeader + n
	}
	if int64(off) != int64(len(data)) {
		// Torn tail: drop everything past the last good record.
		if err := f.Truncate(int64(off)); err != nil {
			f.Close()
			return nil, nil, err
		}
	}
	if _, err := f.Seek(int64(off), io.SeekStart); err != nil {
		f.Close()
		return nil, nil, err
	}
	return &hintLog{f: f, path: path, size: int64(off)}, pending, nil
}

// encodeHint serializes one hint payload.
func encodeHint(h hint) []byte {
	n := 1 + 4*4 + len(h.table) + len(h.pkey) + len(h.ckey) + len(h.value)
	out := make([]byte, 0, n)
	out = append(out, byte(h.op))
	for _, s := range []string{h.table, h.pkey, h.ckey} {
		out = binary.LittleEndian.AppendUint32(out, uint32(len(s)))
		out = append(out, s...)
	}
	out = binary.LittleEndian.AppendUint32(out, uint32(len(h.value)))
	out = append(out, h.value...)
	return out
}

// decodeHint parses one hint payload, reporting malformed input.
func decodeHint(p []byte) (hint, bool) {
	var h hint
	if len(p) < 1 {
		return h, false
	}
	op := hintOp(p[0])
	if op > hintDrop {
		return h, false
	}
	h.op = op
	p = p[1:]
	next := func() ([]byte, bool) {
		if len(p) < 4 {
			return nil, false
		}
		n := int(binary.LittleEndian.Uint32(p))
		p = p[4:]
		if n > maxHintRecord || n > len(p) {
			return nil, false
		}
		b := p[:n]
		p = p[n:]
		return b, true
	}
	fields := make([][]byte, 4)
	for i := range fields {
		b, ok := next()
		if !ok {
			return h, false
		}
		fields[i] = b
	}
	if len(p) != 0 {
		return h, false
	}
	h.table = string(fields[0])
	h.pkey = string(fields[1])
	h.ckey = string(fields[2])
	if len(fields[3]) > 0 {
		h.value = append([]byte(nil), fields[3]...)
	}
	return h, true
}

// append durably records one queued hint. Errors are swallowed after
// marking the log broken by closing it — in-memory hints still replay
// on revive; only restart durability degrades, matching the pre-log
// behavior rather than failing the write.
func (l *hintLog) append(h hint) {
	if l.f == nil {
		return
	}
	payload := encodeHint(h)
	rec := make([]byte, hintRecHeader+len(payload))
	binary.LittleEndian.PutUint32(rec, uint32(len(payload)))
	binary.LittleEndian.PutUint32(rec[4:], crc32.ChecksumIEEE(payload))
	copy(rec[hintRecHeader:], payload)
	if _, err := l.f.Write(rec); err != nil {
		l.f.Close()
		l.f = nil
		return
	}
	if err := l.f.Sync(); err != nil {
		l.f.Close()
		l.f = nil
		return
	}
	l.size += int64(len(rec))
}

// reset marks every record replayed: the in-memory queue drained, so
// the log restarts empty.
func (l *hintLog) reset() {
	if l.f == nil || l.size == 0 {
		return
	}
	if err := l.f.Truncate(0); err != nil {
		l.f.Close()
		l.f = nil
		return
	}
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		l.f.Close()
		l.f = nil
		return
	}
	l.f.Sync()
	l.size = 0
}

// Close releases the file handle.
func (l *hintLog) Close() error {
	if l.f == nil {
		return nil
	}
	err := l.f.Close()
	l.f = nil
	return err
}

// removeFile closes the log and deletes it from disk (node retired).
func (l *hintLog) removeFile() {
	l.Close()
	os.Remove(l.path)
}

// attachHintLog opens node's durable hint log under cfg.HintDir. With
// replay set (cluster open), records pending from the previous process
// are applied stamp-guarded to the node's engine — the node starts
// live, so its missed mutations must land before traffic does. AddNode
// attaches without replay: a brand-new node has no legitimate pending
// hints, and a stale file left by an earlier incarnation of the id must
// not resurrect rows. Either way the log restarts empty.
func (c *Cluster) attachHintLog(node *storageNode, replay bool) error {
	hl, pending, err := openHintLog(filepath.Join(c.cfg.HintDir, hintFileName(node.id)))
	if err != nil {
		return fmt.Errorf("kvstore: hint log node %d: %w", node.id, err)
	}
	if replay {
		for _, h := range pending {
			replayHint(node.be, h)
		}
	}
	hl.reset()
	node.hlog = hl
	return nil
}
