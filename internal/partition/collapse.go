package partition

import (
	"hgs/internal/graph"
	"hgs/internal/temporal"
)

// Omega selects the time-collapsing function Ω that projects a temporal
// graph over a time span onto one static weighted graph (paper §4.5).
type Omega int

const (
	// OmegaUnionMax includes every edge that existed at any time in the
	// span with its maximum weight — the paper's default for TGI.
	OmegaUnionMax Omega = iota
	// OmegaUnionMean weighs each edge by the fraction of the span it
	// existed (time-weighted average; non-existence contributes 0).
	OmegaUnionMean
	// OmegaMedian takes the edges existing at the span's midpoint.
	OmegaMedian
)

func (o Omega) String() string {
	switch o {
	case OmegaUnionMean:
		return "union-mean"
	case OmegaMedian:
		return "median"
	default:
		return "union-max"
	}
}

// NodeWeighting selects the node-weight option for the collapsed graph.
type NodeWeighting int

const (
	// NodeWeightUniform gives every node weight 1 — the paper's default.
	NodeWeightUniform NodeWeighting = iota
	// NodeWeightDegree uses the node's degree in the collapsed graph.
	NodeWeightDegree
	// NodeWeightAvgDegree uses the time-averaged degree over the span.
	NodeWeightAvgDegree
)

func (w NodeWeighting) String() string {
	switch w {
	case NodeWeightDegree:
		return "degree"
	case NodeWeightAvgDegree:
		return "avg-degree"
	default:
		return "uniform"
	}
}

// Collapse projects the temporal graph defined by `initial` (the state at
// iv.Start) plus the chronological `events` within iv onto a static
// weighted graph Gτ = Ω(GT). The constraint of §4.5 holds: every vertex
// that existed at any point during iv appears in the result.
func Collapse(initial *graph.Graph, events []graph.Event, iv temporal.Interval, om Omega, nw NodeWeighting) *WeightedGraph {
	wg := NewWeightedGraph()
	span := float64(iv.Duration())
	if span <= 0 {
		span = 1
	}

	// Track per-edge existence intervals to compute durations, and ensure
	// every node that ever existed is present.
	type edgeOpen struct {
		since temporal.Time
	}
	open := make(map[EdgePair]edgeOpen)
	durations := make(map[EdgePair]float64)

	addNode := func(id graph.NodeID) { wg.AddNode(id, 1) }
	openEdge := func(u, v graph.NodeID, t temporal.Time) {
		p := MakePair(u, v)
		if _, ok := open[p]; !ok {
			open[p] = edgeOpen{since: t}
		}
		addNode(u)
		addNode(v)
	}
	closeEdge := func(u, v graph.NodeID, t temporal.Time) {
		p := MakePair(u, v)
		if o, ok := open[p]; ok {
			durations[p] += float64(t - o.since)
			delete(open, p)
		}
	}

	initial.Range(func(ns *graph.NodeState) bool {
		addNode(ns.ID)
		for k := range ns.Edges {
			if k.Out {
				openEdge(ns.ID, k.Other, iv.Start)
			}
		}
		return true
	})

	// Median bookkeeping: edge set at the midpoint.
	mid := iv.Midpoint()
	medianEdges := make(map[EdgePair]bool)
	snapMedian := func() {
		for p := range open {
			medianEdges[p] = true
		}
	}
	snapped := false

	for _, e := range events {
		if e.Time >= mid && !snapped {
			snapMedian()
			snapped = true
		}
		switch e.Kind {
		case graph.AddNode, graph.SetNodeAttr:
			addNode(e.Node)
		case graph.AddEdge, graph.SetEdgeAttr:
			openEdge(e.Node, e.Other, e.Time)
		case graph.RemoveEdge:
			closeEdge(e.Node, e.Other, e.Time)
		case graph.RemoveNode:
			addNode(e.Node) // existed at least until now
			// Close all its open edges.
			for p := range open {
				if p.U == e.Node || p.V == e.Node {
					durations[p] += float64(e.Time - open[p].since)
					delete(open, p)
				}
			}
		}
	}
	if !snapped {
		snapMedian()
	}
	// Close edges still open at span end.
	for p, o := range open {
		durations[p] += float64(iv.End - o.since)
	}

	switch om {
	case OmegaMedian:
		for p := range medianEdges {
			wg.AddEdge(p.U, p.V, 1)
		}
	case OmegaUnionMean:
		for p, d := range durations {
			if d > 0 {
				wg.AddEdge(p.U, p.V, d/span)
			}
		}
	default: // OmegaUnionMax: existence at any time, weight 1 (unweighted
		// input edges; with weighted inputs this would be the max weight)
		for p, d := range durations {
			if d > 0 {
				wg.AddEdge(p.U, p.V, 1)
			}
		}
	}

	switch nw {
	case NodeWeightDegree:
		deg := make(map[graph.NodeID]float64)
		for p := range wg.EdgeW {
			deg[p.U]++
			deg[p.V]++
		}
		for id := range wg.NodeW {
			wg.NodeW[id] = max(deg[id], 1)
		}
	case NodeWeightAvgDegree:
		avg := make(map[graph.NodeID]float64)
		for p, d := range durations {
			avg[p.U] += d / span
			avg[p.V] += d / span
		}
		for id := range wg.NodeW {
			wg.NodeW[id] = max(avg[id], 1)
		}
	default:
		for id := range wg.NodeW {
			wg.NodeW[id] = 1
		}
	}
	return wg
}
