//go:build darwin || dragonfly || freebsd || linux || netbsd || openbsd

package tiered

import (
	"fmt"
	"os"
	"path/filepath"
	"syscall"
)

// lockDir takes an exclusive, non-blocking flock on dir/LOCK. The OS
// releases it when the holding file closes or the process dies, so a
// crash never leaves the directory unopenable. The frozen syscall
// package is used deliberately: flock is stable on every platform this
// file builds for, and the module takes no external dependencies.
func lockDir(dir string) (*dirLock, error) {
	f, err := os.OpenFile(filepath.Join(dir, "LOCK"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("tiered: %w", err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("tiered: %s is already open (its background flusher owns the files); one handle per directory: %w", dir, err)
	}
	return &dirLock{f: f}, nil
}
