package fetch

import (
	"fmt"
	"sync"
	"testing"

	"hgs/internal/codec"
	"hgs/internal/delta"
	"hgs/internal/graph"
	"hgs/internal/kvstore"
)

func mkDelta(id graph.NodeID) *delta.Delta {
	d := delta.New()
	ns := graph.NewNodeState(id)
	ns.Attrs = graph.Attrs{"k": fmt.Sprintf("v%d", id)}
	d.Put(ns)
	return d
}

func encDelta(t *testing.T, d *delta.Delta) []byte {
	t.Helper()
	blob, err := codec.Codec{}.EncodeDelta(d)
	if err != nil {
		t.Fatalf("EncodeDelta: %v", err)
	}
	return blob
}

func TestPlanDedup(t *testing.T) {
	p := NewPlan()
	for i := 0; i < 3; i++ {
		p.DeltaGroup(0, 1, 2)
		p.DeltaGroup(0, 1, 3)
		p.DeltaPart(0, 1, 2, 7)
		p.Get(TableEvents, "pk", "ck")
		p.Get(TableEvents, "pk", "ck2")
		p.Scan(TableEvents, "pk", "e00001/")
	}
	groups, parts, gets, scans := p.Size()
	if groups != 2 || parts != 1 || gets != 2 || scans != 1 {
		t.Fatalf("dedup failed: groups=%d parts=%d gets=%d scans=%d", groups, parts, gets, scans)
	}
	if p.Empty() {
		t.Fatal("plan should not be empty")
	}
	if !NewPlan().Empty() {
		t.Fatal("fresh plan should be empty")
	}
}

func TestParsePID(t *testing.T) {
	for _, tc := range []struct {
		ckey string
		pid  int
		ok   bool
	}{
		{DeltaCKey(3, 17), 17, true},
		{EventCKey(0, 999), 999, true},
		{"garbage", 0, false},
	} {
		pid, err := ParsePID(tc.ckey)
		if tc.ok != (err == nil) {
			t.Fatalf("ParsePID(%q) err=%v, want ok=%v", tc.ckey, err, tc.ok)
		}
		if tc.ok && pid != tc.pid {
			t.Fatalf("ParsePID(%q) = %d, want %d", tc.ckey, pid, tc.pid)
		}
	}
}

func TestCacheGroupAndPartLookups(t *testing.T) {
	c := NewCache(1 << 20)
	k := GroupKey{TableDeltas, 0, 1, 2}

	if _, ok := c.Group(k); ok {
		t.Fatal("empty cache should miss")
	}
	// An incomplete entry (point-read population) must not answer group
	// lookups, and must not claim absence for other pids.
	c.AddPart(PartKey{TableDeltas, 0, 1, 2, 5}, mkDelta(5), 100)
	if _, ok := c.Group(k); ok {
		t.Fatal("incomplete entry must miss group lookups")
	}
	if d, known := c.Part(PartKey{TableDeltas, 0, 1, 2, 5}); !known || d == nil {
		t.Fatal("cached part should hit")
	}
	if _, known := c.Part(PartKey{TableDeltas, 0, 1, 2, 6}); known {
		t.Fatal("incomplete entry must not claim absence of pid 6")
	}

	// A complete entry serves the group and knows absence.
	c.AddGroup(k, []Part{{PID: 3, Delta: mkDelta(3)}, {PID: 1, Delta: mkDelta(1)}}, []int64{10, 10})
	parts, ok := c.Group(k)
	if !ok || len(parts) != 2 || parts[0].PID != 1 || parts[1].PID != 3 {
		t.Fatalf("group lookup = %v, %v; want pids [1 3]", parts, ok)
	}
	if d, known := c.Part(PartKey{TableDeltas, 0, 1, 2, 3}); !known || d == nil {
		t.Fatal("part of complete group should hit")
	}
	if d, known := c.Part(PartKey{TableDeltas, 0, 1, 2, 9}); !known || d != nil {
		t.Fatal("complete group should authoritatively report pid 9 absent")
	}

	st := c.Stats()
	if st.Hits == 0 || st.Misses == 0 || st.Entries != 1 {
		t.Fatalf("unexpected stats: %+v", st)
	}
}

func TestCacheBoundsAndEviction(t *testing.T) {
	const budget = 4 * 1024
	c := NewCache(budget)
	// Insert many groups, each charged ~1KB: the budget holds only a few.
	for i := 0; i < 50; i++ {
		c.AddGroup(GroupKey{TableDeltas, 0, 0, i},
			[]Part{{PID: 0, Delta: mkDelta(graph.NodeID(i))}}, []int64{1024})
	}
	st := c.Stats()
	if st.Bytes > budget {
		t.Fatalf("cache over budget: %d > %d", st.Bytes, budget)
	}
	if st.Evictions == 0 {
		t.Fatal("expected evictions under a tight budget")
	}
	if st.Entries == 0 {
		t.Fatal("recent entries should survive eviction")
	}
	// The most recently inserted group must still be resident; the
	// oldest must be gone.
	if _, ok := c.Group(GroupKey{TableDeltas, 0, 0, 49}); !ok {
		t.Fatal("most recent group evicted")
	}
	if _, ok := c.Group(GroupKey{TableDeltas, 0, 0, 0}); ok {
		t.Fatal("oldest group survived a 4KB budget holding ~3 entries")
	}

	c.Purge()
	if st := c.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("purge left %+v", st)
	}
}

func TestCacheLRUOrder(t *testing.T) {
	// Budget for two ~1KB entries (plus overheads).
	c := NewCache(3 * 1024)
	a := GroupKey{TableDeltas, 0, 0, 1}
	b := GroupKey{TableDeltas, 0, 0, 2}
	c.AddGroup(a, []Part{{PID: 0, Delta: mkDelta(1)}}, []int64{1024})
	c.AddGroup(b, []Part{{PID: 0, Delta: mkDelta(2)}}, []int64{1024})
	c.Group(a) // touch a so b is the LRU victim
	c.AddGroup(GroupKey{TableDeltas, 0, 0, 3}, []Part{{PID: 0, Delta: mkDelta(3)}}, []int64{1024})
	if _, ok := c.Group(a); !ok {
		t.Fatal("recently used entry evicted")
	}
	if _, ok := c.Group(b); ok {
		t.Fatal("least recently used entry survived")
	}
}

func TestNilCacheIsDisabled(t *testing.T) {
	var c *Cache
	if c := NewCache(0); c != nil {
		t.Fatal("NewCache(0) should disable caching")
	}
	c.AddGroup(GroupKey{}, nil, nil)
	c.AddPart(PartKey{}, nil, 0)
	c.Purge()
	if _, ok := c.Group(GroupKey{}); ok {
		t.Fatal("nil cache must always miss")
	}
	if st := c.Stats(); st != (CacheStats{}) {
		t.Fatalf("nil cache stats = %+v", st)
	}
}

// fakeStore is an executor-facing store recording batch calls.
type fakeStore struct {
	mu    sync.Mutex
	rows  map[kvstore.KeyRef][]byte
	gets  int // MultiGet invocations
	scans int // MultiScan invocations
}

func newFakeStore() *fakeStore { return &fakeStore{rows: make(map[kvstore.KeyRef][]byte)} }

func (f *fakeStore) put(table, pkey, ckey string, v []byte) {
	f.rows[kvstore.KeyRef{Table: table, PKey: pkey, CKey: ckey}] = v
}

func (f *fakeStore) MultiGet(refs []kvstore.KeyRef) []kvstore.GetResult {
	f.mu.Lock()
	f.gets++
	f.mu.Unlock()
	out := make([]kvstore.GetResult, len(refs))
	for i, r := range refs {
		if v, ok := f.rows[r]; ok {
			out[i] = kvstore.GetResult{Value: v, Found: true}
		}
	}
	return out
}

func (f *fakeStore) MultiScan(refs []kvstore.ScanRef) [][]kvstore.Row {
	f.mu.Lock()
	f.scans++
	f.mu.Unlock()
	out := make([][]kvstore.Row, len(refs))
	for i, ref := range refs {
		for k, v := range f.rows {
			if k.Table == ref.Table && k.PKey == ref.PKey && len(k.CKey) >= len(ref.Prefix) && k.CKey[:len(ref.Prefix)] == ref.Prefix {
				out[i] = append(out[i], kvstore.Row{CKey: k.CKey, Value: v})
			}
		}
	}
	return out
}

func TestExecutorServesPlanAndWarmsCache(t *testing.T) {
	st := newFakeStore()
	d1, d2 := mkDelta(1), mkDelta(2)
	st.put(TableDeltas, PlacementKey(0, 0), DeltaCKey(0, 0), encDelta(t, d1))
	st.put(TableDeltas, PlacementKey(0, 0), DeltaCKey(0, 1), encDelta(t, d2))
	st.put(TableDeltas, PlacementKey(0, 0), DeltaCKey(1, 0), encDelta(t, d1))
	st.put(TableEvents, PlacementKey(0, 0), EventCKey(0, 0), []byte{0})
	ex := NewExecutor(st, codec.Codec{}, NewCache(1<<20))

	plan := NewPlan()
	plan.DeltaGroup(0, 0, 0)
	plan.DeltaPart(0, 0, 1, 0)
	plan.Get(TableEvents, PlacementKey(0, 0), EventCKey(0, 0))
	plan.Scan(TableEvents, PlacementKey(0, 0), EventPrefix(0))

	res, err := ex.Exec(plan, 2)
	if err != nil {
		t.Fatalf("Exec: %v", err)
	}
	if parts := res.Group(0, 0, 0); len(parts) != 2 || parts[0].PID != 0 || parts[1].PID != 1 {
		t.Fatalf("group result = %+v", parts)
	}
	if d := res.Part(0, 0, 1, 0); d == nil || !d.Equal(d1) {
		t.Fatalf("part result = %v", d)
	}
	if d := res.Part(0, 0, 1, 9); d != nil {
		t.Fatal("unplanned part should be absent")
	}
	if _, ok := res.Get(TableEvents, PlacementKey(0, 0), EventCKey(0, 0)); !ok {
		t.Fatal("raw get missing")
	}
	if rows := res.Scan(TableEvents, PlacementKey(0, 0), EventPrefix(0)); len(rows) != 1 {
		t.Fatalf("raw scan rows = %d, want 1", len(rows))
	}
	if st.gets != 1 || st.scans != 1 {
		t.Fatalf("cold exec used %d MultiGet and %d MultiScan calls; want one batched round of each", st.gets, st.scans)
	}

	// Warm rerun of the delta-only plan: no store traffic at all.
	warm := NewPlan()
	warm.DeltaGroup(0, 0, 0)
	warm.DeltaPart(0, 0, 1, 0)
	res2, err := ex.Exec(warm, 2)
	if err != nil {
		t.Fatalf("warm Exec: %v", err)
	}
	if st.gets != 1 || st.scans != 1 {
		t.Fatalf("warm exec hit the store (gets=%d scans=%d)", st.gets, st.scans)
	}
	if parts := res2.Group(0, 0, 0); len(parts) != 2 {
		t.Fatalf("warm group result = %+v", parts)
	}
	if d := res2.Part(0, 0, 1, 0); d == nil || !d.Equal(d1) {
		t.Fatalf("warm part result = %v", d)
	}
	if hits := ex.Cache().Stats().Hits; hits < 2 {
		t.Fatalf("cache hits = %d, want >= 2", hits)
	}
}

func TestExecutorWithoutCache(t *testing.T) {
	st := newFakeStore()
	st.put(TableDeltas, PlacementKey(0, 0), DeltaCKey(0, 0), encDelta(t, mkDelta(1)))
	ex := NewExecutor(st, codec.Codec{}, nil)
	plan := NewPlan()
	plan.DeltaGroup(0, 0, 0)
	for i := 0; i < 2; i++ {
		res, err := ex.Exec(plan, 1)
		if err != nil {
			t.Fatalf("Exec: %v", err)
		}
		if parts := res.Group(0, 0, 0); len(parts) != 1 {
			t.Fatalf("group result = %+v", parts)
		}
	}
	if st.scans != 2 {
		t.Fatalf("cache-disabled executor should scan every time, got %d", st.scans)
	}
}

func TestExecutorKnownAbsentPart(t *testing.T) {
	st := newFakeStore()
	st.put(TableDeltas, PlacementKey(0, 0), DeltaCKey(0, 0), encDelta(t, mkDelta(1)))
	ex := NewExecutor(st, codec.Codec{}, NewCache(1<<20))
	// Scan the group first: the cache learns the complete pid set.
	p1 := NewPlan()
	p1.DeltaGroup(0, 0, 0)
	if _, err := ex.Exec(p1, 1); err != nil {
		t.Fatal(err)
	}
	// A part the group provably lacks must not trigger a store read.
	p2 := NewPlan()
	p2.DeltaPart(0, 0, 0, 42)
	res, err := ex.Exec(p2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d := res.Part(0, 0, 0, 42); d != nil {
		t.Fatal("absent part returned a delta")
	}
	if st.gets != 0 {
		t.Fatalf("known-absent part read the store (%d gets)", st.gets)
	}
}

func TestExecutorCachesAuxParts(t *testing.T) {
	st := newFakeStore()
	d := mkDelta(4)
	st.put(TableAux, PlacementKey(0, 1), DeltaCKey(2, 3), encDelta(t, d))
	ex := NewExecutor(st, codec.Codec{}, NewCache(1<<20))
	for i := 0; i < 2; i++ {
		plan := NewPlan()
		plan.AuxPart(0, 1, 2, 3)
		res, err := ex.Exec(plan, 1)
		if err != nil {
			t.Fatalf("Exec: %v", err)
		}
		if got := res.AuxPart(0, 1, 2, 3); got == nil || !got.Equal(d) {
			t.Fatalf("aux part result = %v", got)
		}
		if got := res.Part(0, 1, 2, 3); got != nil {
			t.Fatal("aux row leaked into the deltas key space")
		}
	}
	if st.gets != 1 {
		t.Fatalf("aux part fetched %d times; the cache should serve the rerun", st.gets)
	}
}

// TestCacheRejectsOversizedEntries pins size-aware admission: a group
// larger than the whole budget must be refused at the door — before
// the fix it evicted every resident entry and then lingered (or was
// itself evicted) without ever being servable, wiping the hot set for
// nothing.
func TestCacheRejectsOversizedEntries(t *testing.T) {
	const budget = 4 * 1024
	c := NewCache(budget)
	resident := GroupKey{TableDeltas, 0, 0, 1}
	c.AddGroup(resident, []Part{{PID: 0, Delta: mkDelta(1)}}, []int64{1024})

	giant := GroupKey{TableDeltas, 0, 0, 99}
	c.AddGroup(giant, []Part{{PID: 0, Delta: mkDelta(99)}}, []int64{64 * 1024})
	if _, ok := c.Group(giant); ok {
		t.Fatal("oversized group admitted")
	}
	if _, ok := c.Group(resident); !ok {
		t.Fatal("oversized group wiped the resident hot set")
	}
	st := c.Stats()
	if st.Oversized != 1 {
		t.Fatalf("Oversized = %d, want 1", st.Oversized)
	}
	if st.Evictions != 0 {
		t.Fatalf("oversized admission evicted %d entries", st.Evictions)
	}

	// AddPart: a part that alone exceeds the budget is refused too.
	c.AddPart(PartKey{TableDeltas, 0, 0, 98, 0}, mkDelta(98), 64*1024)
	if _, known := c.Part(PartKey{TableDeltas, 0, 0, 98, 0}); known {
		t.Fatal("oversized part admitted")
	}
	// And a part that would push an existing group past the budget is
	// refused while the group's resident parts keep serving.
	grow := PartKey{TableDeltas, 0, 0, 97, 0}
	c.AddPart(grow, mkDelta(97), 512)
	c.AddPart(PartKey{TableDeltas, 0, 0, 97, 1}, mkDelta(97), 64*1024)
	if d, known := c.Part(grow); !known || d == nil {
		t.Fatal("rejecting an oversized sibling dropped the resident part")
	}
	if st := c.Stats(); st.Oversized != 3 {
		t.Fatalf("Oversized = %d, want 3", st.Oversized)
	}
	if st := c.Stats(); st.Bytes > budget {
		t.Fatalf("cache over budget after rejections: %d", st.Bytes)
	}
}

func TestCacheNegativeMarkers(t *testing.T) {
	c := NewCache(1 << 20)
	k := PartKey{TableDeltas, 0, 1, 2, 5}
	if _, known := c.Part(k); known {
		t.Fatal("empty cache must not claim absence")
	}
	c.AddNegative(k)
	d, known := c.Part(k)
	if !known || d != nil {
		t.Fatal("negative marker should answer absence authoritatively")
	}
	st := c.Stats()
	if st.NegativeHits != 1 {
		t.Fatalf("NegativeHits = %d, want 1", st.NegativeHits)
	}
	// A marker must not block siblings or claim completeness.
	if _, known := c.Part(PartKey{TableDeltas, 0, 1, 2, 6}); known {
		t.Fatal("marker for pid 5 must not claim absence of pid 6")
	}
	if _, ok := c.Group(GroupKey{TableDeltas, 0, 1, 2}); ok {
		t.Fatal("an entry holding only markers must not answer group lookups")
	}
	// The row appearing later overrides the stale marker.
	c.AddPart(k, mkDelta(5), 100)
	if d, known := c.Part(k); !known || d == nil {
		t.Fatal("resident part must override the stale marker")
	}
	// Purge drops markers like positive entries.
	k9 := PartKey{TableDeltas, 0, 1, 2, 9}
	c.AddNegative(k9)
	c.Purge()
	if _, known := c.Part(k9); known {
		t.Fatal("purge must drop negative markers")
	}
	// The legacy mode records nothing.
	off := NewCacheWith(CacheOptions{MaxBytes: 1 << 20, NoNegative: true})
	off.AddNegative(k)
	if _, known := off.Part(k); known {
		t.Fatal("NoNegative cache must not remember absence")
	}
}

// TestCacheScanResistance pins the segmented admission policy: a
// one-shot scan far larger than the budget must not evict the
// proven-hot protected set. The same workload over the v1 plain-LRU
// policy loses every hot entry — which is exactly the regression this
// test guards against.
func TestCacheScanResistance(t *testing.T) {
	const budget = 64 * 1024
	workload := func(c *Cache) (kept int) {
		hot := make([]GroupKey, 8)
		for i := range hot {
			hot[i] = GroupKey{TableDeltas, 0, 0, i}
			c.AddGroup(hot[i], []Part{{PID: 0, Delta: mkDelta(graph.NodeID(i))}}, []int64{2048})
		}
		for _, k := range hot { // a second access proves reuse → protected
			if _, ok := c.Group(k); !ok {
				t.Fatal("hot group missing before the scan")
			}
		}
		for i := 0; i < 100; i++ { // one-shot scan, ~4x the whole budget
			c.AddGroup(GroupKey{TableDeltas, 9, 9, i},
				[]Part{{PID: 0, Delta: mkDelta(graph.NodeID(1000 + i))}}, []int64{2048})
		}
		for _, k := range hot {
			if _, ok := c.Group(k); ok {
				kept++
			}
		}
		return kept
	}
	if kept := workload(NewCache(budget)); kept != 8 {
		t.Fatalf("segmented admission kept %d of 8 hot groups across the scan, want all 8", kept)
	}
	if kept := workload(NewCacheWith(CacheOptions{MaxBytes: budget, PlainLRU: true})); kept != 0 {
		t.Fatalf("plain LRU kept %d hot groups; the scan should have evicted all of them (the v1 failure mode)", kept)
	}
}

// TestCacheSegmentBounds pins the SLRU accounting: the protected
// segment stays within its share (demoting, not evicting, on overflow)
// and the whole cache stays within budget.
func TestCacheSegmentBounds(t *testing.T) {
	const budget = 8 * 1024
	c := NewCache(budget)
	keys := make([]GroupKey, 3)
	for i := range keys {
		keys[i] = GroupKey{TableDeltas, 0, 0, i}
		c.AddGroup(keys[i], []Part{{PID: 0, Delta: mkDelta(graph.NodeID(i))}}, []int64{2048})
	}
	for _, k := range keys { // promote all three: overflows the 80% share
		c.Group(k)
	}
	st := c.Stats()
	if st.Bytes > budget {
		t.Fatalf("cache over budget: %d > %d", st.Bytes, budget)
	}
	if max := budget * 8 / 10; st.ProtectedBytes > int64(max) {
		t.Fatalf("protected segment over its share: %d > %d", st.ProtectedBytes, max)
	}
	if st.Evictions != 0 {
		t.Fatalf("segment overflow evicted %d entries; it must demote instead", st.Evictions)
	}
	if st.Admissions != 3 {
		t.Fatalf("Admissions = %d, want 3", st.Admissions)
	}
}

// TestExecutorNegativeCachesAbsentParts: a point read that found no row
// installs a negative marker, so re-probing the same absent row issues
// no store call — and the plan trace records the breakdown.
func TestExecutorNegativeCachesAbsentParts(t *testing.T) {
	st := newFakeStore()
	ex := NewExecutor(st, codec.Codec{}, NewCache(1<<20))
	plan := NewPlan()
	plan.DeltaPart(0, 0, 0, 7)

	tr := &Trace{}
	if _, err := ex.ExecTraced(plan, 1, tr); err != nil {
		t.Fatal(err)
	}
	if st.gets != 1 {
		t.Fatalf("cold probe issued %d MultiGets, want 1", st.gets)
	}
	rec := tr.Record()
	if rec.Parts != 1 || rec.KVReads != 1 || rec.NegativeHits != 0 {
		t.Fatalf("cold trace = %+v", rec)
	}
	if tt := rec.Tables[TableDeltas]; tt.KVReads != 1 {
		t.Fatalf("cold per-table trace = %+v", tt)
	}

	tr2 := &Trace{}
	res, err := ex.ExecTraced(plan, 1, tr2)
	if err != nil {
		t.Fatal(err)
	}
	if d := res.Part(0, 0, 0, 7); d != nil {
		t.Fatal("absent part returned a delta")
	}
	if st.gets != 1 {
		t.Fatalf("re-probe of a known-absent row hit the store (%d gets)", st.gets)
	}
	rec2 := tr2.Record()
	if rec2.NegativeHits != 1 || rec2.KVReads != 0 {
		t.Fatalf("warm trace = %+v", rec2)
	}
	if tt := rec2.Tables[TableDeltas]; tt.NegativeHits != 1 || tt.KVReads != 0 {
		t.Fatalf("warm per-table trace = %+v", tt)
	}
	if ex.Cache().Stats().NegativeHits == 0 {
		t.Fatal("cache counters recorded no negative hit")
	}
}

// TestCacheProtectedGrowthRebalances pins the demotion paths the
// promotion loop does not cover: growing a protected entry in place
// (AddPart) and completing a protected group (AddGroup inheritance)
// must rebalance the protected segment back to its share by demoting
// LRU entries — not silently let it swallow the whole budget and
// starve probation.
func TestCacheProtectedGrowthRebalances(t *testing.T) {
	const budget = 16 * 1024
	protMax := int64(budget * 8 / 10)

	// In-place growth: three promoted entries, one grows large.
	c := NewCache(budget)
	keys := make([]GroupKey, 3)
	for i := range keys {
		keys[i] = GroupKey{TableDeltas, 0, 0, i}
		c.AddGroup(keys[i], []Part{{PID: 0, Delta: mkDelta(graph.NodeID(i))}}, []int64{2048})
		c.Group(keys[i]) // promote
	}
	for pid := 1; pid <= 6; pid++ {
		c.AddPart(PartKey{TableDeltas, 0, 0, 1, pid}, mkDelta(1), 1024)
	}
	st := c.Stats()
	if st.ProtectedBytes > protMax {
		t.Fatalf("in-place growth left the protected segment over its share: %d > %d", st.ProtectedBytes, protMax)
	}
	if st.Evictions != 0 {
		t.Fatalf("rebalancing evicted %d entries; it must demote", st.Evictions)
	}

	// Completion inheritance: a promoted group completed by a large scan
	// charges the new size into the protected segment and must demote.
	c2 := NewCache(budget)
	g1 := GroupKey{TableDeltas, 0, 0, 1}
	g2 := GroupKey{TableDeltas, 0, 0, 2}
	c2.AddGroup(g1, []Part{{PID: 0, Delta: mkDelta(1)}}, []int64{512})
	c2.AddGroup(g2, []Part{{PID: 0, Delta: mkDelta(2)}}, []int64{512})
	c2.Group(g1)
	c2.Group(g2) // both protected
	c2.AddGroup(g1, []Part{{PID: 0, Delta: mkDelta(1)}}, []int64{10 * 1024})
	st2 := c2.Stats()
	if st2.ProtectedBytes > protMax {
		t.Fatalf("inherited protection left the segment over its share: %d > %d", st2.ProtectedBytes, protMax)
	}
	if _, ok := c2.Group(g2); !ok {
		t.Fatal("demoted entry was lost instead of moved to probation")
	}
}
