package core

import (
	"context"
	"sort"
	"sync"

	"hgs/internal/fetch"
	"hgs/internal/graph"
	"hgs/internal/temporal"
)

// GetKHopViaSnapshot retrieves the k-hop neighborhood of a node at time
// tt by fetching the whole snapshot and filtering (Algorithm 3) — the
// right plan for large k.
func (t *TGI) GetKHopViaSnapshot(id graph.NodeID, k int, tt temporal.Time, opts *FetchOptions) (*graph.Graph, error) {
	tr, done := t.startTrace("khop-snapshot", opts)
	defer done()
	g, err := t.getSnapshot(tt, opts, tr)
	if err != nil {
		return nil, err
	}
	return g.KHopSubgraph(id, k), nil
}

// GetKHopNeighborhood retrieves the k-hop neighborhood at time tt by
// expanding outward from the node: each hop plans the micro-partitions
// containing frontier nodes as one deduplicated read set and executes it
// as a single batched fetch round (Algorithm 4). With 1-hop replication
// the first hop is served from the auxiliary micro-deltas (paper §4.5,
// Figure 5d).
func (t *TGI) GetKHopNeighborhood(id graph.NodeID, k int, tt temporal.Time, opts *FetchOptions) (*graph.Graph, error) {
	tr, done := t.startTrace("khop", opts)
	defer done()
	return t.getKHopNeighborhood(id, k, tt, opts, tr)
}

// getKHopNeighborhood is GetKHopNeighborhood with an explicit trace
// (threaded by the multipoint and history variants).
func (t *TGI) getKHopNeighborhood(id graph.NodeID, k int, tt temporal.Time, opts *FetchOptions, tr *fetch.Trace) (*graph.Graph, error) {
	ctx := opts.ctx()
	tm, err := t.timespanFor(tt)
	if err != nil {
		return nil, err
	}
	leaf := tm.leafFor(tt)
	// states holds completely reconstructed node states.
	states := make(map[graph.NodeID]*graph.NodeState)
	fetched := make(map[[2]int]bool) // (sid,pid) micro-partitions already read
	var mu sync.Mutex

	// fetchGroup pulls a set of micro-partitions in one batched plan and
	// registers every state they contain.
	fetchGroup := func(groups map[[2]int][]graph.NodeID) error {
		plan := fetch.NewPlan()
		keys := make([][2]int, 0, len(groups))
		for key := range groups {
			if fetched[key] {
				continue
			}
			fetched[key] = true
			keys = append(keys, key)
			planMicroPartition(plan, tm, key[0], key[1], leaf)
		}
		if len(keys) == 0 {
			return nil
		}
		res, err := t.fx.ExecCtx(ctx, plan, t.cfg.clients(opts), tr)
		if err != nil {
			return err
		}
		tasks := make([]func() error, 0, len(keys))
		for _, key := range keys {
			key := key
			tasks = append(tasks, func() error {
				g, err := t.assembleMicroPartition(res, tm, key[0], key[1], leaf, tt)
				if err != nil {
					return err
				}
				mu.Lock()
				defer mu.Unlock()
				g.Range(func(ns *graph.NodeState) bool {
					// Only nodes that belong to this micro-partition are
					// complete; others are implicit edge endpoints.
					if t.sidOf(ns.ID) == key[0] {
						if pid, err := t.pidOf(tm, key[0], ns.ID); err == nil && pid == key[1] {
							states[ns.ID] = ns.Clone()
						}
					}
					return true
				})
				return nil
			})
		}
		return runParallel(ctx, t.cfg.materializeWorkers(), tasks)
	}

	groupOf := func(ids []graph.NodeID) (map[[2]int][]graph.NodeID, error) {
		groups := make(map[[2]int][]graph.NodeID)
		for _, nid := range ids {
			sid := t.sidOf(nid)
			pid, err := t.pidOf(tm, sid, nid)
			if err != nil {
				return nil, err
			}
			groups[[2]int{sid, pid}] = append(groups[[2]int{sid, pid}], nid)
		}
		return groups, nil
	}

	// Hop 0: the root's own micro-partition.
	rootGroups, err := groupOf([]graph.NodeID{id})
	if err != nil {
		return nil, err
	}
	if err := fetchGroup(rootGroups); err != nil {
		return nil, err
	}
	if states[id] == nil {
		return graph.New(), nil // node absent at tt
	}

	// With replication, the hop-1 frontier states come from the aux rows.
	// Aux states carry partition-restricted edge lists, which are exact
	// for 1-hop retrieval but incomplete for further expansion, so deeper
	// queries take the per-partition path.
	if t.cfg.Replicate1Hop && k == 1 {
		if err := t.applyAux(ctx, tm, states, id, tt, tr); err != nil {
			return nil, err
		}
	}

	members := map[graph.NodeID]struct{}{id: {}}
	frontier := []graph.NodeID{id}
	for hop := 0; hop < k && len(frontier) > 0; hop++ {
		// Collect neighbor ids of the frontier.
		nextSet := make(map[graph.NodeID]struct{})
		for _, nid := range frontier {
			ns := states[nid]
			if ns == nil {
				continue
			}
			for _, nb := range ns.Neighbors() {
				if _, in := members[nb]; !in {
					nextSet[nb] = struct{}{}
				}
			}
		}
		// Fetch states for unknown members of the next frontier.
		var missing []graph.NodeID
		next := make([]graph.NodeID, 0, len(nextSet))
		for nb := range nextSet {
			members[nb] = struct{}{}
			next = append(next, nb)
			if states[nb] == nil {
				missing = append(missing, nb)
			}
		}
		sort.Slice(next, func(i, j int) bool { return next[i] < next[j] })
		if len(missing) > 0 {
			groups, err := groupOf(missing)
			if err != nil {
				return nil, err
			}
			if err := fetchGroup(groups); err != nil {
				return nil, err
			}
		}
		frontier = next
	}

	// Induce the subgraph on the collected members. States assembled from
	// aux rows may know an edge from one side only (restricted frontier
	// adjacency); symmetrizing completes the mirrors before induction.
	full := graph.New()
	for nid := range members {
		if ns := states[nid]; ns != nil {
			full.PutNode(ns.Clone())
		}
	}
	full.Symmetrize()
	ids := make([]graph.NodeID, 0, len(members))
	for nid := range members {
		ids = append(ids, nid)
	}
	return full.Subgraph(ids), nil
}

// applyAux loads the auxiliary frontier micro-delta for the root's
// micro-partition and replays its aux eventlist prefix, registering the
// frontier states at tt. Both aux rows travel in one batched read, and
// the decoded aux delta shares the decoded-delta cache (hot roots skip
// the store entirely).
func (t *TGI) applyAux(ctx context.Context, tm *TimespanMeta, states map[graph.NodeID]*graph.NodeState, id graph.NodeID, tt temporal.Time, tr *fetch.Trace) error {
	sid := t.sidOf(id)
	pid, err := t.pidOf(tm, sid, id)
	if err != nil {
		return err
	}
	leaf := tm.leafFor(tt)
	plan := fetch.NewPlan()
	plan.AuxPart(tm.TSID, sid, leaf, pid)
	if leaf < tm.EventlistCount {
		plan.AuxEventPart(tm.TSID, sid, leaf, pid)
	}
	res, err := t.fx.ExecCtx(ctx, plan, 1, tr)
	if err != nil {
		return err
	}
	d := res.AuxPart(tm.TSID, sid, leaf, pid)
	if d == nil {
		return nil
	}
	g := d.Materialize()
	if leaf < tm.EventlistCount {
		if evs, ok := res.AuxEventPart(tm.TSID, sid, leaf, pid); ok {
			for _, e := range evs {
				if e.Time > tt {
					break
				}
				if err := g.Apply(e); err != nil {
					return err
				}
			}
		}
	}
	// Register only nodes present in the aux delta itself (frontier
	// members at the leaf) — their states are complete through tt.
	for nid := range d.Nodes {
		if ns := g.Node(nid); ns != nil {
			states[nid] = ns.Clone()
		}
	}
	return nil
}

// SubgraphHistory is the evolution of a neighborhood over an interval:
// its state at the start plus the events touching its members
// (the result of Algorithm 5 and its k-hop generalization).
type SubgraphHistory struct {
	Root     graph.NodeID
	K        int
	Interval temporal.Interval
	// Initial is the neighborhood subgraph at Interval.Start.
	Initial *graph.Graph
	// Members is the tracked node set (the neighborhood at the start).
	Members []graph.NodeID
	// Events are changes touching any member with Start < Time < End,
	// chronological and deduplicated.
	Events []graph.Event
}

// StateAt replays the history to the subgraph state at time tt, inducing
// on the tracked member set.
func (sh *SubgraphHistory) StateAt(tt temporal.Time) *graph.Graph {
	g := sh.Initial.Clone()
	for _, e := range sh.Events {
		if e.Time > tt {
			break
		}
		g.Apply(e)
	}
	return g.Subgraph(sh.Members)
}

// ChangePoints returns the distinct event times in the history.
func (sh *SubgraphHistory) ChangePoints() []temporal.Time {
	var out []temporal.Time
	for _, e := range sh.Events {
		if n := len(out); n == 0 || out[n-1] != e.Time {
			out = append(out, e.Time)
		}
	}
	return out
}

// GetKHopHistory retrieves the evolution of the k-hop neighborhood of a
// node over [ts, te): the neighborhood subgraph at ts, then every event
// touching its members (Algorithm 5 generalized; the member set is fixed
// at ts — the closed-world semantics used by the paper's
// NodeComputeDelta evaluation). The member version chains and the
// referenced micro-eventlists are each fetched as one batched read per
// phase.
func (t *TGI) GetKHopHistory(id graph.NodeID, k int, ts, te temporal.Time, opts *FetchOptions) (*SubgraphHistory, error) {
	tr, done := t.startTrace("khop-history", opts)
	defer done()
	initial, err := t.getKHopNeighborhood(id, k, ts, opts, tr)
	if err != nil {
		return nil, err
	}
	members := initial.NodeIDs()
	if len(members) == 0 {
		members = []graph.NodeID{id}
	}
	sh := &SubgraphHistory{
		Root:     id,
		K:        k,
		Interval: temporal.Interval{Start: ts, End: te},
		Initial:  initial,
		Members:  members,
	}
	memberSet := make(map[graph.NodeID]struct{}, len(members))
	for _, m := range members {
		memberSet[m] = struct{}{}
	}
	gm, err := t.loadGraphMeta()
	if err != nil {
		return nil, err
	}
	ctx := opts.ctx()
	clients := t.cfg.clients(opts)
	spans, err := t.overlappingSpans(gm, ts, te)
	if err != nil {
		return nil, err
	}

	// Phase 1: every member's version chain in every overlapping span,
	// one batched read, deduplicating the micro-eventlist references
	// per (tsid, sid, el, pid).
	plan := fetch.NewPlan()
	for _, tm := range spans {
		for _, m := range members {
			plan.Get(TableVersions, placementKey(tm.TSID, t.sidOf(m)), nodeCKey(m))
		}
	}
	res, err := t.fx.ExecCtx(ctx, plan, clients, tr)
	if err != nil {
		return nil, err
	}
	type rowKey struct {
		tsid, sid, el, pid int
	}
	rows := make(map[rowKey]struct{})
	for _, tm := range spans {
		for _, m := range members {
			sid := t.sidOf(m)
			blob, ok := res.Get(TableVersions, placementKey(tm.TSID, sid), nodeCKey(m))
			if !ok {
				continue
			}
			entries, err := decodeVC(blob)
			if err != nil {
				return nil, err
			}
			pid, err := t.pidOf(tm, sid, m)
			if err != nil {
				return nil, err
			}
			for _, e := range entries {
				for _, tt := range e.times {
					if tt > ts && tt < te {
						rows[rowKey{tm.TSID, sid, e.el, pid}] = struct{}{}
						break
					}
				}
			}
		}
	}

	// Phase 2: fetch the deduplicated rows as one batched read and
	// filter to member-touching events in parallel.
	keys := make([]rowKey, 0, len(rows))
	evPlan := fetch.NewPlan()
	for key := range rows {
		keys = append(keys, key)
		evPlan.EventPart(key.tsid, key.sid, key.el, key.pid)
	}
	evRes, err := t.fx.ExecCtx(ctx, evPlan, clients, tr)
	if err != nil {
		return nil, err
	}
	lists := make([][]graph.Event, len(keys))
	tasks := make([]func() error, 0, len(keys))
	for i, key := range keys {
		i, key := i, key
		tasks = append(tasks, func() error {
			evs, ok := evRes.EventPart(key.tsid, key.sid, key.el, key.pid)
			if !ok {
				return nil
			}
			var keep []graph.Event
			for _, e := range evs {
				if e.Time <= ts || e.Time >= te {
					continue
				}
				_, a := memberSet[e.Node]
				_, b := memberSet[e.Other]
				if a || (e.Kind.IsEdge() && b) {
					keep = append(keep, e)
				}
			}
			lists[i] = keep
			return nil
		})
	}
	if err := runParallel(ctx, t.cfg.materializeWorkers(), tasks); err != nil {
		return nil, err
	}
	sh.Events = mergeSortEvents(lists)
	return sh, nil
}

// Get1HopHistory is Algorithm 5: the 1-hop specialization of
// GetKHopHistory.
func (t *TGI) Get1HopHistory(id graph.NodeID, ts, te temporal.Time, opts *FetchOptions) (*SubgraphHistory, error) {
	return t.GetKHopHistory(id, 1, ts, te, opts)
}

// GetKHopAt retrieves the k-hop neighborhood of a node at each of the
// given timepoints — the paper's second form of neighborhood evolution
// query ("requesting the state of the neighborhood at multiple specific
// time points", §4.6), executed as concurrent single-neighborhood
// fetches.
func (t *TGI) GetKHopAt(id graph.NodeID, k int, times []temporal.Time, opts *FetchOptions) ([]*graph.Graph, error) {
	tr, done := t.startTrace("khop-at", opts)
	defer done()
	ctx := opts.ctx()
	out := make([]*graph.Graph, len(times))
	tasks := make([]func() error, 0, len(times))
	for i, tt := range times {
		i, tt := i, tt
		tasks = append(tasks, func() error {
			g, err := t.getKHopNeighborhood(id, k, tt, &FetchOptions{Clients: 1, Context: ctx}, tr)
			if err != nil {
				return err
			}
			out[i] = g
			return nil
		})
	}
	if err := runParallel(ctx, t.cfg.clients(opts), tasks); err != nil {
		return nil, err
	}
	return out, nil
}

// GetSnapshotsAt retrieves multiple snapshots (the multipoint snapshot
// primitive of Figure 1), fetching them concurrently.
func (t *TGI) GetSnapshotsAt(times []temporal.Time, opts *FetchOptions) ([]*graph.Graph, error) {
	tr, done := t.startTrace("snapshots", opts)
	defer done()
	ctx := opts.ctx()
	out := make([]*graph.Graph, len(times))
	tasks := make([]func() error, 0, len(times))
	for i, tt := range times {
		i, tt := i, tt
		tasks = append(tasks, func() error {
			g, err := t.getSnapshot(tt, &FetchOptions{Clients: 1, Context: ctx}, tr)
			if err != nil {
				return err
			}
			out[i] = g
			return nil
		})
	}
	if err := runParallel(ctx, t.cfg.clients(opts), tasks); err != nil {
		return nil, err
	}
	return out, nil
}
