package graph

import (
	"fmt"
	"sort"
)

// Graph is an in-memory snapshot: a set of node states (the paper's
// Example 4, "the state of a graph G at a time point"). It is mutable and
// not safe for concurrent writers; concurrent readers are fine.
type Graph struct {
	nodes map[NodeID]*NodeState
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{nodes: make(map[NodeID]*NodeState)}
}

// NewWithCapacity returns an empty graph with space for n nodes.
func NewWithCapacity(n int) *Graph {
	return &Graph{nodes: make(map[NodeID]*NodeState, n)}
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumEdges returns the number of directed edges (each u->v counted once,
// even though it is stored on both endpoints).
func (g *Graph) NumEdges() int {
	n := 0
	for _, ns := range g.nodes {
		for k := range ns.Edges {
			if k.Out {
				n++
			}
		}
	}
	return n
}

// Node returns the state of node id, or nil if absent. The returned state
// is the live internal object: callers that mutate it must own the graph.
func (g *Graph) Node(id NodeID) *NodeState { return g.nodes[id] }

// Has reports whether node id exists.
func (g *Graph) Has(id NodeID) bool {
	_, ok := g.nodes[id]
	return ok
}

// NodeIDs returns all node ids in ascending order.
func (g *Graph) NodeIDs() []NodeID {
	out := make([]NodeID, 0, len(g.nodes))
	for id := range g.nodes {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Range calls f for every node state until f returns false. Iteration
// order is unspecified.
func (g *Graph) Range(f func(*NodeState) bool) {
	for _, ns := range g.nodes {
		if !f(ns) {
			return
		}
	}
}

// AddNode creates node id if absent and returns its state.
func (g *Graph) AddNode(id NodeID) *NodeState {
	if ns, ok := g.nodes[id]; ok {
		return ns
	}
	ns := NewNodeState(id)
	g.nodes[id] = ns
	return ns
}

// PutNode installs a node state wholesale, replacing any existing state
// for the same id. The graph takes ownership of ns.
func (g *Graph) PutNode(ns *NodeState) {
	g.nodes[ns.ID] = ns
}

// RemoveNode deletes node id and all incident edges (including the mirror
// entries on neighbors). It reports whether the node existed.
func (g *Graph) RemoveNode(id NodeID) bool {
	ns, ok := g.nodes[id]
	if !ok {
		return false
	}
	for k := range ns.Edges {
		if other, ok := g.nodes[k.Other]; ok {
			delete(other.Edges, EdgeKey{Other: id, Out: !k.Out})
		}
	}
	delete(g.nodes, id)
	return true
}

// AddEdge creates the directed edge u->v, creating the endpoints if
// needed, and returns its state (the existing state if already present).
func (g *Graph) AddEdge(u, v NodeID) *EdgeState {
	un := g.AddNode(u)
	vn := g.AddNode(v)
	if es, ok := un.Edges[EdgeKey{Other: v, Out: true}]; ok {
		return es
	}
	es := &EdgeState{}
	if un.Edges == nil {
		un.Edges = make(map[EdgeKey]*EdgeState)
	}
	if vn.Edges == nil {
		vn.Edges = make(map[EdgeKey]*EdgeState)
	}
	un.Edges[EdgeKey{Other: v, Out: true}] = es
	// The mirror entry shares the EdgeState so attribute updates via either
	// endpoint stay consistent within one in-memory graph.
	vn.Edges[EdgeKey{Other: u, Out: false}] = es
	return es
}

// RemoveEdge deletes the directed edge u->v from both endpoints and
// reports whether either side existed. The two sides are removed
// independently so that replaying an event stream onto a partially
// materialized graph (a single node or one micro-partition) still clears
// the mirror entry of the endpoint that is present.
func (g *Graph) RemoveEdge(u, v NodeID) bool {
	existed := false
	if un, ok := g.nodes[u]; ok {
		if _, ok := un.Edges[EdgeKey{Other: v, Out: true}]; ok {
			delete(un.Edges, EdgeKey{Other: v, Out: true})
			existed = true
		}
	}
	if vn, ok := g.nodes[v]; ok {
		if _, ok := vn.Edges[EdgeKey{Other: u, Out: false}]; ok {
			delete(vn.Edges, EdgeKey{Other: u, Out: false})
			existed = true
		}
	}
	return existed
}

// HasEdge reports whether the directed edge u->v exists.
func (g *Graph) HasEdge(u, v NodeID) bool {
	un, ok := g.nodes[u]
	if !ok {
		return false
	}
	_, ok = un.Edges[EdgeKey{Other: v, Out: true}]
	return ok
}

// Apply mutates the graph by one event. Unknown kinds return an error;
// structurally redundant events (adding an existing node, removing a
// missing edge) are no-ops, which makes replay idempotent at boundaries.
func (g *Graph) Apply(e Event) error {
	switch e.Kind {
	case AddNode:
		g.AddNode(e.Node)
	case RemoveNode:
		g.RemoveNode(e.Node)
	case AddEdge:
		g.AddEdge(e.Node, e.Other)
	case RemoveEdge:
		g.RemoveEdge(e.Node, e.Other)
	case SetNodeAttr:
		ns := g.AddNode(e.Node)
		if ns.Attrs == nil {
			ns.Attrs = make(Attrs)
		}
		ns.Attrs[e.Key] = e.Value
	case DelNodeAttr:
		if ns, ok := g.nodes[e.Node]; ok && ns.Attrs != nil {
			delete(ns.Attrs, e.Key)
		}
	case SetEdgeAttr:
		// Update both endpoint copies explicitly: mirror EdgeStates are
		// shared within graphs built via AddEdge but may be distinct
		// objects in graphs reconstructed from per-partition deltas.
		g.AddEdge(e.Node, e.Other)
		for _, side := range [2]struct {
			node NodeID
			key  EdgeKey
		}{
			{e.Node, EdgeKey{Other: e.Other, Out: true}},
			{e.Other, EdgeKey{Other: e.Node, Out: false}},
		} {
			if ns, ok := g.nodes[side.node]; ok {
				if es, ok := ns.Edges[side.key]; ok {
					if es.Attrs == nil {
						es.Attrs = make(Attrs)
					}
					es.Attrs[e.Key] = e.Value
				}
			}
		}
	case DelEdgeAttr:
		for _, side := range [2]struct {
			node NodeID
			key  EdgeKey
		}{
			{e.Node, EdgeKey{Other: e.Other, Out: true}},
			{e.Other, EdgeKey{Other: e.Node, Out: false}},
		} {
			if ns, ok := g.nodes[side.node]; ok {
				if es, ok := ns.Edges[side.key]; ok && es.Attrs != nil {
					delete(es.Attrs, e.Key)
				}
			}
		}
	default:
		return fmt.Errorf("graph: unknown event kind %v", e.Kind)
	}
	return nil
}

// ApplyAll applies events in slice order, stopping at the first error.
func (g *Graph) ApplyAll(events []Event) error {
	for _, e := range events {
		if err := g.Apply(e); err != nil {
			return err
		}
	}
	return nil
}

// FromEvents replays a chronological event stream into a fresh graph.
func FromEvents(events []Event) (*Graph, error) {
	g := New()
	if err := g.ApplyAll(events); err != nil {
		return nil, err
	}
	return g, nil
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	out := NewWithCapacity(len(g.nodes))
	for id, ns := range g.nodes {
		out.nodes[id] = ns.Clone()
	}
	// Restore mirror sharing of EdgeStates within the clone.
	for _, ns := range out.nodes {
		for k, es := range ns.Edges {
			if !k.Out {
				continue
			}
			if other, ok := out.nodes[k.Other]; ok {
				other.Edges[EdgeKey{Other: ns.ID, Out: false}] = es
			}
		}
	}
	return out
}

// Equal reports whether two graphs hold exactly the same node states.
func (g *Graph) Equal(o *Graph) bool {
	if len(g.nodes) != len(o.nodes) {
		return false
	}
	for id, ns := range g.nodes {
		ons, ok := o.nodes[id]
		if !ok || !ns.Equal(ons) {
			return false
		}
	}
	return true
}

// Subgraph returns the subgraph induced by ids: those nodes and only the
// edges with both endpoints in ids.
func (g *Graph) Subgraph(ids []NodeID) *Graph {
	keep := make(map[NodeID]struct{}, len(ids))
	for _, id := range ids {
		keep[id] = struct{}{}
	}
	out := NewWithCapacity(len(ids))
	for id := range keep {
		ns, ok := g.nodes[id]
		if !ok {
			continue
		}
		c := &NodeState{ID: id, Attrs: ns.Attrs.Clone()}
		for k, es := range ns.Edges {
			if _, in := keep[k.Other]; in {
				if c.Edges == nil {
					c.Edges = make(map[EdgeKey]*EdgeState)
				}
				c.Edges[k] = es.Clone()
			}
		}
		out.nodes[id] = c
	}
	return out
}

// Neighbors returns the distinct neighbors of id (undirected view), or nil
// if the node is absent.
func (g *Graph) Neighbors(id NodeID) []NodeID {
	ns, ok := g.nodes[id]
	if !ok {
		return nil
	}
	return ns.Neighbors()
}

// KHopIDs returns the ids within k hops of root (undirected), including
// root itself, implementing the frontier expansion of the paper's
// Algorithm 3/4 inner loop.
func (g *Graph) KHopIDs(root NodeID, k int) []NodeID {
	if !g.Has(root) {
		return nil
	}
	visited := map[NodeID]struct{}{root: {}}
	frontier := []NodeID{root}
	for hop := 0; hop < k && len(frontier) > 0; hop++ {
		var next []NodeID
		for _, id := range frontier {
			for _, nb := range g.Neighbors(id) {
				if _, seen := visited[nb]; !seen {
					visited[nb] = struct{}{}
					next = append(next, nb)
				}
			}
		}
		frontier = next
	}
	out := make([]NodeID, 0, len(visited))
	for id := range visited {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// KHopSubgraph returns the induced subgraph on the k-hop neighborhood of
// root (Algorithm 3: fetch snapshot then filter).
func (g *Graph) KHopSubgraph(root NodeID, k int) *Graph {
	return g.Subgraph(g.KHopIDs(root, k))
}

// Symmetrize restores mirror consistency: for every edge entry on one
// endpoint whose other endpoint is present, the counterpart entry is
// created (sharing the EdgeState) if missing. Graphs assembled from
// independently reconstructed node states (partition fetches plus
// replicated frontier states with restricted edge lists) may know an
// edge from one side only; symmetrizing completes them.
func (g *Graph) Symmetrize() {
	for id, ns := range g.nodes {
		for k, es := range ns.Edges {
			other, ok := g.nodes[k.Other]
			if !ok {
				continue
			}
			mk := EdgeKey{Other: id, Out: !k.Out}
			if _, ok := other.Edges[mk]; !ok {
				if other.Edges == nil {
					other.Edges = make(map[EdgeKey]*EdgeState)
				}
				other.Edges[mk] = es
			}
		}
	}
}

// FilterNodes returns the induced subgraph on nodes satisfying pred.
func (g *Graph) FilterNodes(pred func(*NodeState) bool) *Graph {
	var ids []NodeID
	for id, ns := range g.nodes {
		if pred(ns) {
			ids = append(ids, id)
		}
	}
	return g.Subgraph(ids)
}

func (g *Graph) String() string {
	return fmt.Sprintf("graph(%d nodes, %d edges)", g.NumNodes(), g.NumEdges())
}
