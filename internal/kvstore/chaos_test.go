package kvstore

// Seeded chaos harness for the replicated store. Each seed drives a
// deterministic schedule of concurrent writers, readers, and a fault
// controller (node failures, revivals, injected errors, topology
// changes) against a quorum-configured cluster, then quiesces and
// asserts the two convergence invariants:
//
//  1. every replica set is byte-identical after hints replay, pending
//     read-repairs drain, and one anti-entropy sweep;
//  2. for single-writer keys, the converged value equals a single-node
//     oracle store that received the same writes in the same order.
//
// Contended keys (several writers racing on one key) are only checked
// for invariant 1: replicas must agree on *some* writer's value, which
// is exactly what the version stamps guarantee and what the pre-quorum
// code could not (interleaved per-replica applies left replicas
// permanently split).
//
// Replay a failure with: go test ./internal/kvstore/ -run TestChaos -chaos.seed=<N>

import (
	"flag"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"
)

var (
	chaosSeed  = flag.Int64("chaos.seed", 0, "replay a single chaos seed instead of the sweep")
	chaosSeeds = flag.Int("chaos.seeds", 0, "override the number of chaos seeds (0 = 50 short / 500 full)")
)

const (
	chaosWriters     = 3
	chaosOwnedKeys   = 4 // per writer
	chaosOpsPerGoro  = 40
	chaosCtrlActions = 12
	chaosPartitions  = 4
	chaosTable       = "t"
	chaosSharedPKey  = "ps"
)

func chaosSeedList() []int64 {
	if *chaosSeed != 0 {
		return []int64{*chaosSeed}
	}
	n := 500
	if testing.Short() {
		n = 50
	}
	if *chaosSeeds > 0 {
		n = *chaosSeeds
	}
	seeds := make([]int64, n)
	for i := range seeds {
		seeds[i] = int64(1000 + i)
	}
	return seeds
}

func ownedPKey(w, j int) string {
	return fmt.Sprintf("p%d", (w*chaosOwnedKeys+j)%chaosPartitions)
}

func ownedCKey(w, j int) string {
	return fmt.Sprintf("w%d-k%d", w, j)
}

func TestChaosQuorumConvergence(t *testing.T) {
	for _, seed := range chaosSeedList() {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			t.Parallel()
			runChaosSeed(t, seed)
		})
	}
}

func runChaosSeed(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	m := 3 + rng.Intn(3) // 3..5 machines
	r := 2 + rng.Intn(2) // replication 2..3
	if r > m {
		r = m
	}
	rq := 1 + rng.Intn(r)
	wq := 1 + rng.Intn(r)
	t.Logf("seed=%d m=%d r=%d R=%d W=%d (replay with -chaos.seed=%d)", seed, m, r, rq, wq, seed)

	c := NewCluster(Config{Machines: m, Replication: r, ReadQuorum: rq, WriteQuorum: wq})
	defer c.Close()
	oracle := NewCluster(Config{Machines: 1, Replication: 1})
	defer oracle.Close()

	var wg sync.WaitGroup

	// Writers: each owns a disjoint key set (dual-written to the oracle
	// in program order) and also races the others on two shared keys.
	for w := 0; w < chaosWriters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wrng := rand.New(rand.NewSource(seed*31 + int64(w)))
			for i := 0; i < chaosOpsPerGoro; i++ {
				if wrng.Intn(4) == 0 { // contended write, no oracle
					ckey := fmt.Sprintf("shared-%d", wrng.Intn(2))
					c.Put(chaosTable, chaosSharedPKey, ckey, []byte(fmt.Sprintf("w%d-i%d", w, i)))
					continue
				}
				j := wrng.Intn(chaosOwnedKeys)
				val := []byte(fmt.Sprintf("v-%d-%d-%d", w, j, i))
				c.Put(chaosTable, ownedPKey(w, j), ownedCKey(w, j), val)
				oracle.Put(chaosTable, ownedPKey(w, j), ownedCKey(w, j), val)
			}
		}(w)
	}

	// Reader: exercises every read path concurrently with the faults.
	// Results are unchecked mid-flight (a read racing a write may see
	// either version); the harness only demands no panic and no race.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rrng := rand.New(rand.NewSource(seed*31 + 100))
		for i := 0; i < chaosOpsPerGoro; i++ {
			w := rrng.Intn(chaosWriters)
			j := rrng.Intn(chaosOwnedKeys)
			switch rrng.Intn(3) {
			case 0:
				c.Get(chaosTable, ownedPKey(w, j), ownedCKey(w, j))
			case 1:
				c.ScanPartition(chaosTable, fmt.Sprintf("p%d", rrng.Intn(chaosPartitions)))
			default:
				refs := make([]KeyRef, 0, 4)
				for k := 0; k < 4; k++ {
					w, j := rrng.Intn(chaosWriters), rrng.Intn(chaosOwnedKeys)
					refs = append(refs, KeyRef{Table: chaosTable, PKey: ownedPKey(w, j), CKey: ownedCKey(w, j)})
				}
				c.MultiGet(refs)
			}
		}
	}()

	// Controller: one node down at a time (so every partition keeps a
	// live replica), plus injected faults and topology churn. Errors
	// from conflicting operations (mid-rebalance, unknown node) are
	// expected and ignored — the harness cares about convergence, not
	// whether a particular action landed.
	wg.Add(1)
	go func() {
		defer wg.Done()
		crng := rand.New(rand.NewSource(seed*31 + 200))
		downID, nextID, added := -1, m, 0
		liveIDs := func() []int {
			info := c.Topology()
			ids := make([]int, 0, len(info.Nodes))
			for _, n := range info.Nodes {
				ids = append(ids, n.ID)
			}
			return ids
		}
		for i := 0; i < chaosCtrlActions; i++ {
			time.Sleep(time.Duration(crng.Intn(2000)) * time.Microsecond)
			ids := liveIDs()
			id := ids[crng.Intn(len(ids))]
			switch crng.Intn(6) {
			case 0:
				if downID < 0 && c.FailNode(id) == nil {
					downID = id
				}
			case 1:
				if downID >= 0 {
					c.ReviveNode(downID) //nolint:errcheck // node may have been removed meanwhile
					downID = -1
				}
			case 2:
				c.InjectFault(id, &Fault{ErrRate: 0.3}) //nolint:errcheck
			case 3:
				c.InjectFault(id, nil) //nolint:errcheck
			case 4:
				if added < 2 && c.AddNode(nextID) == nil {
					added++
					nextID++
				}
			default:
				if id != downID {
					c.RemoveNode(id) //nolint:errcheck // refused below replication or mid-rebalance
				}
			}
		}
	}()

	wg.Wait()

	// Quiesce: wait out background quorum-write tails, heal everything,
	// let the rebalancer and read-repair queue drain, then run
	// anti-entropy until a sweep finds nothing.
	c.writeGate.Lock()
	c.writeGate.Unlock() //nolint:staticcheck // empty critical section is the tail barrier
	for _, n := range c.Topology().Nodes {
		c.InjectFault(n.ID, nil) //nolint:errcheck
		if n.Down {
			if err := c.ReviveNode(n.ID); err != nil {
				t.Fatalf("seed %d: revive node %d: %v", seed, n.ID, err)
			}
		}
	}
	if err := c.WaitRebalance(); err != nil {
		t.Fatalf("seed %d: wait rebalance: %v", seed, err)
	}
	drainRepairs(t, c)
	converged := false
	for i := 0; i < 5; i++ {
		stats, err := c.RepairPartitions()
		if err != nil {
			t.Fatalf("seed %d: anti-entropy: %v", seed, err)
		}
		if stats == (RepairStats{}) {
			converged = true
			break
		}
	}
	if !converged {
		t.Fatalf("seed %d: anti-entropy still streaming after 5 sweeps", seed)
	}

	// Invariant 1: replica sets byte-identical for every partition.
	pkeys := make([]string, 0, chaosPartitions+1)
	for p := 0; p < chaosPartitions; p++ {
		pkeys = append(pkeys, fmt.Sprintf("p%d", p))
	}
	pkeys = append(pkeys, chaosSharedPKey)
	for _, pkey := range pkeys {
		ids := c.ReplicasOf(chaosTable, pkey)
		var want []Row
		for i, id := range ids {
			n := c.nodeAt(id)
			if n == nil {
				t.Fatalf("seed %d: owner %d of %s missing from cluster", seed, id, pkey)
			}
			n.mu.Lock()
			rows := n.be.ScanPrefix(chaosTable, pkey, "")
			n.mu.Unlock()
			if i == 0 {
				want = rows
				continue
			}
			if len(rows) != len(want) {
				t.Fatalf("seed %d: partition %s: replica %d has %d rows, replica %d has %d",
					seed, pkey, id, len(rows), ids[0], len(want))
			}
			for j := range rows {
				if rows[j].CKey != want[j].CKey || string(rows[j].Value) != string(want[j].Value) {
					t.Fatalf("seed %d: partition %s row %d diverges between replicas %d and %d: %q vs %q",
						seed, pkey, j, ids[0], id, want[j], rows[j])
				}
			}
		}
	}

	// Invariant 2: single-writer keys equal the oracle.
	for w := 0; w < chaosWriters; w++ {
		for j := 0; j < chaosOwnedKeys; j++ {
			pkey, ckey := ownedPKey(w, j), ownedCKey(w, j)
			want, wantOK := oracle.Get(chaosTable, pkey, ckey)
			got, ok := c.Get(chaosTable, pkey, ckey)
			if ok != wantOK || string(got) != string(want) {
				t.Fatalf("seed %d: key %s/%s = %q,%v, oracle has %q,%v",
					seed, pkey, ckey, got, ok, want, wantOK)
			}
		}
	}
}
