// Package kvstore simulates the distributed key-value store that backs the
// Temporal Graph Index. The paper uses an Apache Cassandra cluster; this
// package reproduces the properties its evaluation depends on:
//
//   - data placement by partition key across m storage machines,
//   - replication factor r with reads served by any replica,
//   - rows sorted by clustering key within a partition, so that all
//     micro-partitions of one delta scan contiguously (paper §4.4 item 5),
//   - per-machine serialized service with a tunable cost model (base cost
//     per operation plus per-KB transfer cost), which yields the parallel
//     fetch speedups and saturation of Figures 11–12,
//   - read/write/byte counters for the cost accounting of Table 1.
//
// The store is in-process and safe for concurrent use.
package kvstore

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// LatencyModel charges simulated service time per storage operation.
// With Enabled=false operations only update counters, which keeps unit
// tests fast while benchmarks exercise the full model.
type LatencyModel struct {
	Enabled bool
	// BaseOp is charged once per request (seek + request overhead).
	BaseOp time.Duration
	// PerKB is charged per kilobyte moved.
	PerKB time.Duration
}

// DefaultLatency approximates a commodity networked disk-backed store at
// the scale of our benchmark datasets.
func DefaultLatency() LatencyModel {
	return LatencyModel{Enabled: true, BaseOp: 60 * time.Microsecond, PerKB: 250 * time.Microsecond}
}

// Cost returns the simulated service time for an operation moving n bytes.
func (lm LatencyModel) Cost(n int) time.Duration {
	if !lm.Enabled {
		return 0
	}
	return lm.BaseOp + time.Duration(n)*lm.PerKB/1024
}

// Config describes a simulated cluster.
type Config struct {
	// Machines is the number of storage nodes (paper parameter m).
	Machines int
	// Replication is the number of replicas per partition (paper r).
	Replication int
	// Latency is the per-node service cost model.
	Latency LatencyModel
}

// Validate normalizes the configuration.
func (c *Config) normalize() {
	if c.Machines < 1 {
		c.Machines = 1
	}
	if c.Replication < 1 {
		c.Replication = 1
	}
	if c.Replication > c.Machines {
		c.Replication = c.Machines
	}
}

// Metrics is a snapshot of cluster-wide counters.
type Metrics struct {
	Reads        int64
	Writes       int64
	BytesRead    int64
	BytesWritten int64
}

// Row is one clustered row inside a partition.
type Row struct {
	CKey  string
	Value []byte
}

// partition holds rows sorted by clustering key.
type partition struct {
	rows []Row
}

func (p *partition) find(ckey string) (int, bool) {
	i := sort.Search(len(p.rows), func(i int) bool { return p.rows[i].CKey >= ckey })
	return i, i < len(p.rows) && p.rows[i].CKey == ckey
}

// storageNode is one simulated machine. A mutex serializes service,
// modelling a single-disk server; the simulated service time is charged
// while the lock is held so concurrent clients queue exactly as they
// would on a busy node.
type storageNode struct {
	mu     sync.Mutex
	tables map[string]map[string]*partition
}

func newStorageNode() *storageNode {
	return &storageNode{tables: make(map[string]map[string]*partition)}
}

// Cluster is the simulated distributed store.
type Cluster struct {
	cfg     Config
	nodes   []*storageNode
	latency atomic.Pointer[LatencyModel]

	rr uint64 // round-robin replica selector

	reads        atomic.Int64
	writes       atomic.Int64
	bytesRead    atomic.Int64
	bytesWritten atomic.Int64
	storedBytes  atomic.Int64
}

// NewCluster builds a cluster per the configuration.
func NewCluster(cfg Config) *Cluster {
	cfg.normalize()
	c := &Cluster{cfg: cfg, nodes: make([]*storageNode, cfg.Machines)}
	for i := range c.nodes {
		c.nodes[i] = newStorageNode()
	}
	lm := cfg.Latency
	c.latency.Store(&lm)
	return c
}

// SetLatency swaps the latency model at runtime. Benchmarks build indexes
// with the model disabled, then enable it for the measured fetch phase.
func (c *Cluster) SetLatency(lm LatencyModel) {
	c.latency.Store(&lm)
}

// Latency returns the current latency model.
func (c *Cluster) Latency() LatencyModel { return *c.latency.Load() }

// Config returns the cluster configuration.
func (c *Cluster) Config() Config { return c.cfg }

// Machines returns the number of storage nodes.
func (c *Cluster) Machines() int { return c.cfg.Machines }

func hashKey(table, pkey string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(table))
	h.Write([]byte{0})
	h.Write([]byte(pkey))
	return h.Sum64()
}

// replicas returns the node indexes holding the partition, primary first.
func (c *Cluster) replicas(table, pkey string) []int {
	primary := int(hashKey(table, pkey) % uint64(c.cfg.Machines))
	out := make([]int, c.cfg.Replication)
	for i := range out {
		out[i] = (primary + i) % c.cfg.Machines
	}
	return out
}

// readReplica picks the replica to serve a read, rotating to spread load
// across replicas (this is where r>1 increases read capacity, Fig 12c).
func (c *Cluster) readReplica(table, pkey string) int {
	reps := c.replicas(table, pkey)
	if len(reps) == 1 {
		return reps[0]
	}
	n := atomic.AddUint64(&c.rr, 1)
	return reps[n%uint64(len(reps))]
}

// simulateWork charges d of service time. Sub-scheduler-granularity
// waits busy-spin for accuracy; anything longer sleeps so that many
// simulated clients can wait concurrently without burning cores.
func simulateWork(d time.Duration) {
	if d <= 0 {
		return
	}
	if d < 20*time.Microsecond {
		end := time.Now().Add(d)
		for time.Now().Before(end) {
		}
		return
	}
	time.Sleep(d)
}

// serve runs f on node idx while holding its service lock and charges
// the operation cost for the byte count f reports. Charging inside the
// lock models a disk-bound server: a node moving many bytes is busy for
// proportionally long, so cluster size m and replication r bound the
// achievable parallel-fetch speedup (paper Figures 11–12).
func (c *Cluster) serve(idx int, f func(node *storageNode) int) {
	node := c.nodes[idx]
	node.mu.Lock()
	defer node.mu.Unlock()
	n := f(node)
	simulateWork(c.Latency().Cost(n))
}

func (n *storageNode) partitionFor(table, pkey string, create bool) *partition {
	t, ok := n.tables[table]
	if !ok {
		if !create {
			return nil
		}
		t = make(map[string]*partition)
		n.tables[table] = t
	}
	p, ok := t[pkey]
	if !ok {
		if !create {
			return nil
		}
		p = &partition{}
		t[pkey] = p
	}
	return p
}

// Put writes value under (table, pkey, ckey) on every replica,
// overwriting an existing row.
func (c *Cluster) Put(table, pkey, ckey string, value []byte) {
	v := make([]byte, len(value))
	copy(v, value)
	for _, idx := range c.replicas(table, pkey) {
		c.serve(idx, func(node *storageNode) int {
			p := node.partitionFor(table, pkey, true)
			if i, ok := p.find(ckey); ok {
				c.storedBytes.Add(int64(len(v) - len(p.rows[i].Value)))
				p.rows[i].Value = v
			} else {
				p.rows = append(p.rows, Row{})
				copy(p.rows[i+1:], p.rows[i:])
				p.rows[i] = Row{CKey: ckey, Value: v}
				c.storedBytes.Add(int64(len(v) + len(ckey)))
			}
			return len(v)
		})
	}
	c.writes.Add(1)
	c.bytesWritten.Add(int64(len(v)))
}

// Get reads the row at (table, pkey, ckey) from one replica. The returned
// slice is a copy.
func (c *Cluster) Get(table, pkey, ckey string) ([]byte, bool) {
	var out []byte
	found := false
	idx := c.readReplica(table, pkey)
	c.serve(idx, func(node *storageNode) int {
		p := node.partitionFor(table, pkey, false)
		if p == nil {
			return 0
		}
		if i, ok := p.find(ckey); ok {
			out = append([]byte(nil), p.rows[i].Value...)
			found = true
		}
		return len(out)
	})
	c.reads.Add(1)
	if found {
		c.bytesRead.Add(int64(len(out)))
	}
	return out, found
}

// ScanPrefix returns all rows in the partition whose clustering key starts
// with prefix, in clustering order, as one contiguous scan (single
// operation cost plus bytes).
func (c *Cluster) ScanPrefix(table, pkey, prefix string) []Row {
	var out []Row
	total := 0
	idx := c.readReplica(table, pkey)
	c.serve(idx, func(node *storageNode) int {
		p := node.partitionFor(table, pkey, false)
		if p == nil {
			return 0
		}
		i := sort.Search(len(p.rows), func(i int) bool { return p.rows[i].CKey >= prefix })
		for ; i < len(p.rows) && strings.HasPrefix(p.rows[i].CKey, prefix); i++ {
			v := append([]byte(nil), p.rows[i].Value...)
			out = append(out, Row{CKey: p.rows[i].CKey, Value: v})
			total += len(v)
		}
		return total
	})
	c.reads.Add(1)
	c.bytesRead.Add(int64(total))
	return out
}

// ScanPartition returns every row of the partition in clustering order.
func (c *Cluster) ScanPartition(table, pkey string) []Row {
	return c.ScanPrefix(table, pkey, "")
}

// Delete removes a row from all replicas; it reports whether the row
// existed on the primary.
func (c *Cluster) Delete(table, pkey, ckey string) bool {
	existed := false
	for ri, idx := range c.replicas(table, pkey) {
		c.serve(idx, func(node *storageNode) int {
			p := node.partitionFor(table, pkey, false)
			if p == nil {
				return 0
			}
			if i, ok := p.find(ckey); ok {
				c.storedBytes.Add(int64(-(len(p.rows[i].Value) + len(ckey))))
				p.rows = append(p.rows[:i], p.rows[i+1:]...)
				if ri == 0 {
					existed = true
				}
			}
			return 0
		})
	}
	c.writes.Add(1)
	return existed
}

// DropPartition removes an entire partition from all replicas.
func (c *Cluster) DropPartition(table, pkey string) {
	for _, idx := range c.replicas(table, pkey) {
		c.serve(idx, func(node *storageNode) int {
			if t, ok := node.tables[table]; ok {
				if p, ok := t[pkey]; ok {
					for _, r := range p.rows {
						c.storedBytes.Add(int64(-(len(r.Value) + len(r.CKey))))
					}
					delete(t, pkey)
				}
			}
			return 0
		})
	}
	c.writes.Add(1)
}

// PartitionKeys returns all partition keys of a table (union over nodes),
// sorted. Intended for inspection and maintenance, not the data path.
func (c *Cluster) PartitionKeys(table string) []string {
	seen := make(map[string]struct{})
	for _, node := range c.nodes {
		node.mu.Lock()
		if t, ok := node.tables[table]; ok {
			for pk := range t {
				seen[pk] = struct{}{}
			}
		}
		node.mu.Unlock()
	}
	out := make([]string, 0, len(seen))
	for pk := range seen {
		out = append(out, pk)
	}
	sort.Strings(out)
	return out
}

// Metrics returns a snapshot of the counters.
func (c *Cluster) Metrics() Metrics {
	return Metrics{
		Reads:        c.reads.Load(),
		Writes:       c.writes.Load(),
		BytesRead:    c.bytesRead.Load(),
		BytesWritten: c.bytesWritten.Load(),
	}
}

// ResetMetrics zeroes the read/write counters (stored bytes are kept).
func (c *Cluster) ResetMetrics() {
	c.reads.Store(0)
	c.writes.Store(0)
	c.bytesRead.Store(0)
	c.bytesWritten.Store(0)
}

// StoredBytes returns the physical bytes currently stored across all
// replicas.
func (c *Cluster) StoredBytes() int64 { return c.storedBytes.Load() }

// LogicalBytes returns stored bytes divided by the replication factor —
// the index size figure used in Table 1 comparisons.
func (c *Cluster) LogicalBytes() int64 {
	return c.storedBytes.Load() / int64(c.cfg.Replication)
}

func (c *Cluster) String() string {
	return fmt.Sprintf("kvstore(m=%d, r=%d)", c.cfg.Machines, c.cfg.Replication)
}
