package kvstore

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hgs/internal/backend"
	"hgs/internal/backend/disklog"
	"hgs/internal/backend/memtable"
	"hgs/internal/backend/tiered"
)

func newTestCluster(m, r int) *Cluster {
	return NewCluster(Config{Machines: m, Replication: r})
}

func TestPutGet(t *testing.T) {
	c := newTestCluster(3, 1)
	c.Put("deltas", "p1", "a", []byte("hello"))
	got, ok := c.Get("deltas", "p1", "a")
	if !ok || string(got) != "hello" {
		t.Fatalf("Get = %q,%v", got, ok)
	}
	if _, ok := c.Get("deltas", "p1", "missing"); ok {
		t.Fatal("missing ckey should not be found")
	}
	if _, ok := c.Get("deltas", "nope", "a"); ok {
		t.Fatal("missing partition should not be found")
	}
	// Overwrite.
	c.Put("deltas", "p1", "a", []byte("world"))
	got, _ = c.Get("deltas", "p1", "a")
	if string(got) != "world" {
		t.Fatal("overwrite failed")
	}
}

func TestGetReturnsCopy(t *testing.T) {
	c := newTestCluster(1, 1)
	c.Put("t", "p", "k", []byte("abc"))
	got, _ := c.Get("t", "p", "k")
	got[0] = 'X'
	again, _ := c.Get("t", "p", "k")
	if string(again) != "abc" {
		t.Fatal("internal storage was mutated through returned slice")
	}
}

func TestScanPrefixSortedContiguous(t *testing.T) {
	c := newTestCluster(2, 1)
	// Clustering keys like "d0007/p003": all micro-partitions of a delta
	// must scan contiguously in sorted order.
	c.Put("deltas", "ts0/s1", "d0002/p001", []byte("b"))
	c.Put("deltas", "ts0/s1", "d0001/p002", []byte("a2"))
	c.Put("deltas", "ts0/s1", "d0001/p001", []byte("a1"))
	c.Put("deltas", "ts0/s1", "d0010/p001", []byte("c"))
	rows := c.ScanPrefix("deltas", "ts0/s1", "d0001/")
	if len(rows) != 2 || rows[0].CKey != "d0001/p001" || rows[1].CKey != "d0001/p002" {
		t.Fatalf("prefix scan wrong: %+v", rows)
	}
	all := c.ScanPartition("deltas", "ts0/s1")
	if len(all) != 4 {
		t.Fatalf("partition scan returned %d rows", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i-1].CKey >= all[i].CKey {
			t.Fatal("rows not in clustering order")
		}
	}
}

func TestReplicationServesAfterPrimaryOnly(t *testing.T) {
	// With r == m every node holds every partition: reads must succeed
	// regardless of which replica the round-robin picks.
	c := newTestCluster(3, 3)
	c.Put("t", "p", "k", []byte("v"))
	for i := 0; i < 10; i++ {
		if _, ok := c.Get("t", "p", "k"); !ok {
			t.Fatal("replica read failed")
		}
	}
}

func TestReplicasDistinctAndStable(t *testing.T) {
	c := newTestCluster(4, 3)
	reps := c.ReplicasOf("t", "somekey")
	if len(reps) != 3 {
		t.Fatalf("want 3 replicas, got %d", len(reps))
	}
	seen := map[int]bool{}
	for _, r := range reps {
		if seen[r] {
			t.Fatal("duplicate replica")
		}
		seen[r] = true
	}
	reps2 := c.ReplicasOf("t", "somekey")
	for i := range reps {
		if reps[i] != reps2[i] {
			t.Fatal("replica placement not deterministic")
		}
	}
}

func TestDelete(t *testing.T) {
	c := newTestCluster(2, 2)
	c.Put("t", "p", "k", []byte("v"))
	if !c.Delete("t", "p", "k") {
		t.Fatal("delete should report existing row")
	}
	if _, ok := c.Get("t", "p", "k"); ok {
		t.Fatal("row still present after delete")
	}
	if c.Delete("t", "p", "k") {
		t.Fatal("second delete should report false")
	}
}

func TestDropPartitionAndStoredBytes(t *testing.T) {
	c := newTestCluster(1, 1)
	c.Put("t", "p", "k1", []byte("aaaa"))
	c.Put("t", "p", "k2", []byte("bbbb"))
	if c.StoredBytes() == 0 {
		t.Fatal("stored bytes should be positive")
	}
	c.DropPartition("t", "p")
	if c.StoredBytes() != 0 {
		t.Fatalf("stored bytes after drop = %d, want 0", c.StoredBytes())
	}
	if rows := c.ScanPartition("t", "p"); len(rows) != 0 {
		t.Fatal("partition still has rows")
	}
}

func TestLogicalBytesDividesReplication(t *testing.T) {
	a := newTestCluster(3, 1)
	b := newTestCluster(3, 3)
	payload := make([]byte, 1000)
	a.Put("t", "p", "k", payload)
	b.Put("t", "p", "k", payload)
	if a.LogicalBytes() != b.LogicalBytes() {
		t.Fatalf("logical bytes differ: %d vs %d", a.LogicalBytes(), b.LogicalBytes())
	}
	if b.StoredBytes() != 3*a.StoredBytes() {
		t.Fatalf("physical bytes should triple with r=3: %d vs %d", b.StoredBytes(), a.StoredBytes())
	}
}

func TestMetricsCounting(t *testing.T) {
	c := newTestCluster(2, 1)
	c.Put("t", "p", "k", []byte("12345"))
	c.Get("t", "p", "k")
	c.ScanPartition("t", "p")
	m := c.Metrics()
	if m.Writes != 1 || m.Reads != 2 {
		t.Fatalf("metrics = %+v", m)
	}
	if m.BytesRead != 10 || m.BytesWritten != 5 {
		t.Fatalf("byte counters = %+v", m)
	}
	c.ResetMetrics()
	if m := c.Metrics(); m.Reads != 0 || m.Writes != 0 {
		t.Fatal("reset failed")
	}
}

func TestPartitionKeys(t *testing.T) {
	c := newTestCluster(3, 1)
	for i := 0; i < 10; i++ {
		c.Put("t", fmt.Sprintf("p%02d", i), "k", []byte("v"))
	}
	keys := c.PartitionKeys("t")
	if len(keys) != 10 || keys[0] != "p00" || keys[9] != "p09" {
		t.Fatalf("partition keys wrong: %v", keys)
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := newTestCluster(4, 2)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				pk := fmt.Sprintf("p%d", i%16)
				ck := fmt.Sprintf("w%d/i%03d", w, i)
				c.Put("t", pk, ck, []byte{byte(i)})
				c.Get("t", pk, ck)
				c.ScanPrefix("t", pk, fmt.Sprintf("w%d/", w))
			}
		}(w)
	}
	wg.Wait()
	if got := c.Metrics().Writes; got != 8*200 {
		t.Fatalf("writes = %d, want %d", got, 8*200)
	}
}

func TestLatencyCost(t *testing.T) {
	lm := LatencyModel{Enabled: true, BaseOp: 100 * time.Microsecond, PerKB: 10 * time.Microsecond}
	if lm.Cost(0) != 100*time.Microsecond {
		t.Fatal("base cost wrong")
	}
	if lm.Cost(2048) != 120*time.Microsecond {
		t.Fatalf("cost(2KB) = %v, want 120µs", lm.Cost(2048))
	}
	off := LatencyModel{}
	if off.Cost(1<<20) != 0 {
		t.Fatal("disabled model must cost 0")
	}
}

// TestDiskBackedClusterSurvivesReopen runs a cluster on disklog
// engines, closes it, and reopens a new cluster over the same
// directories: all rows (and the byte accounting) must survive.
func TestDiskBackedClusterSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	mk := func() (*Cluster, error) {
		return Open(Config{Machines: 3, Replication: 2, Backend: disklog.Factory(dir, disklog.Options{})})
	}
	c, err := mk()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		c.Put("deltas", fmt.Sprintf("p%02d", i%5), fmt.Sprintf("k%03d", i), []byte(fmt.Sprintf("v%d", i)))
	}
	c.Delete("deltas", "p00", "k000")
	stored := c.StoredBytes()
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := mk()
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := r.StoredBytes(); got != stored {
		t.Fatalf("stored bytes after reopen = %d, want %d", got, stored)
	}
	if _, ok := r.Get("deltas", "p00", "k000"); ok {
		t.Fatal("deleted row resurrected")
	}
	for i := 1; i < 40; i++ {
		pk, ck := fmt.Sprintf("p%02d", i%5), fmt.Sprintf("k%03d", i)
		// Probe every replica via repeated reads (round-robin picks
		// rotate through them).
		for probe := 0; probe < 2; probe++ {
			v, ok := r.Get("deltas", pk, ck)
			if !ok || string(v) != fmt.Sprintf("v%d", i) {
				t.Fatalf("row (%s,%s) lost across reopen: %q,%v", pk, ck, v, ok)
			}
		}
	}
	if keys := r.PartitionKeys("deltas"); len(keys) != 5 {
		t.Fatalf("partition keys after reopen: %v", keys)
	}
}

func TestOpenFactoryFailureClosesEarlierNodes(t *testing.T) {
	closed := 0
	boom := errors.New("boom")
	_, err := Open(Config{Machines: 3, Backend: func(node int) (backend.Backend, error) {
		if node == 2 {
			return nil, boom
		}
		return &closeCounter{closed: &closed}, nil
	}})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if closed != 2 {
		t.Fatalf("closed %d engines, want 2", closed)
	}
}

// closeCounter is a stub backend counting Close calls.
type closeCounter struct {
	backend.Backend
	closed *int
}

func (c *closeCounter) Close() error { *c.closed++; return nil }

func TestConfigNormalization(t *testing.T) {
	c := NewCluster(Config{Machines: 0, Replication: 9})
	if c.Machines() != 1 || c.Config().Replication != 1 {
		t.Fatalf("normalization wrong: %+v", c.Config())
	}
}

func TestMultiGetMatchesGet(t *testing.T) {
	c := NewCluster(Config{Machines: 3, Replication: 2})
	refs := make([]KeyRef, 0, 40)
	for i := 0; i < 40; i++ {
		pkey := fmt.Sprintf("p%d", i%5)
		ckey := fmt.Sprintf("c%02d", i)
		if i%4 != 3 { // leave every fourth key absent
			c.Put("t", pkey, ckey, []byte(fmt.Sprintf("v%d", i)))
		}
		refs = append(refs, KeyRef{Table: "t", PKey: pkey, CKey: ckey})
	}
	got := c.MultiGet(refs)
	for i, ref := range refs {
		v, ok := c.Get(ref.Table, ref.PKey, ref.CKey)
		if ok != got[i].Found {
			t.Fatalf("ref %d: found=%v, Get says %v", i, got[i].Found, ok)
		}
		if ok && string(v) != string(got[i].Value) {
			t.Fatalf("ref %d: value %q != %q", i, got[i].Value, v)
		}
	}
}

func TestMultiScanMatchesScanPrefix(t *testing.T) {
	c := NewCluster(Config{Machines: 2, Replication: 1})
	for p := 0; p < 4; p++ {
		for i := 0; i < 10; i++ {
			c.Put("t", fmt.Sprintf("p%d", p), fmt.Sprintf("a%02d", i), []byte{byte(p), byte(i)})
			c.Put("t", fmt.Sprintf("p%d", p), fmt.Sprintf("b%02d", i), []byte{byte(i)})
		}
	}
	refs := []ScanRef{
		{Table: "t", PKey: "p0", Prefix: "a"},
		{Table: "t", PKey: "p1", Prefix: "b"},
		{Table: "t", PKey: "p2", Prefix: ""},
		{Table: "t", PKey: "nope", Prefix: "a"},
	}
	got := c.MultiScan(refs)
	for i, ref := range refs {
		want := c.ScanPrefix(ref.Table, ref.PKey, ref.Prefix)
		if len(want) != len(got[i]) {
			t.Fatalf("scan %d: %d rows != %d", i, len(got[i]), len(want))
		}
		for j := range want {
			if want[j].CKey != got[i][j].CKey || string(want[j].Value) != string(got[i][j].Value) {
				t.Fatalf("scan %d row %d differs", i, j)
			}
		}
	}
}

func TestMultiGetRoundTripAccounting(t *testing.T) {
	const machines = 3
	c := NewCluster(Config{Machines: machines, Replication: 1})
	refs := make([]KeyRef, 0, 60)
	for i := 0; i < 60; i++ {
		pkey := fmt.Sprintf("p%d", i%6)
		ckey := fmt.Sprintf("c%02d", i)
		c.Put("t", pkey, ckey, []byte("v"))
		refs = append(refs, KeyRef{Table: "t", PKey: pkey, CKey: ckey})
	}
	c.ResetMetrics()
	c.MultiGet(refs)
	m := c.Metrics()
	if m.Reads != int64(len(refs)) {
		t.Fatalf("Reads = %d, want %d logical ops", m.Reads, len(refs))
	}
	if m.RoundTrips > machines {
		t.Fatalf("RoundTrips = %d, want <= %d (one batch per node)", m.RoundTrips, machines)
	}
	// The same keys as single Gets pay one round-trip each.
	c.ResetMetrics()
	for _, ref := range refs {
		c.Get(ref.Table, ref.PKey, ref.CKey)
	}
	if m := c.Metrics(); m.RoundTrips != int64(len(refs)) {
		t.Fatalf("single-key RoundTrips = %d, want %d", m.RoundTrips, len(refs))
	}
}

func TestSimWaitAccumulates(t *testing.T) {
	c := NewCluster(Config{Machines: 1, Replication: 1, Latency: LatencyModel{Enabled: true, BaseOp: time.Microsecond}})
	c.Put("t", "p", "c", []byte("v"))
	c.Get("t", "p", "c")
	if m := c.Metrics(); m.SimWait <= 0 {
		t.Fatalf("SimWait = %v, want > 0", m.SimWait)
	}
	c.ResetMetrics()
	if m := c.Metrics(); m.SimWait != 0 || m.RoundTrips != 0 {
		t.Fatalf("reset left %+v", m)
	}
}

func TestTierMetricsAggregation(t *testing.T) {
	c, err := Open(Config{
		Machines: 2,
		Backend: tiered.Factory(t.TempDir(), tiered.Options{
			HotBytes:      1 << 30, // everything stays hot
			FlushInterval: time.Millisecond,
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 32; i++ {
		c.Put("deltas", fmt.Sprintf("p%d", i%4), fmt.Sprintf("c%02d", i), []byte("v"))
	}
	for i := 0; i < 32; i++ {
		if _, ok := c.Get("deltas", fmt.Sprintf("p%d", i%4), fmt.Sprintf("c%02d", i)); !ok {
			t.Fatalf("row %d missing", i)
		}
	}
	m := c.Metrics()
	if m.TierHotReads != 32 {
		t.Fatalf("TierHotReads = %d, want 32", m.TierHotReads)
	}
	if m.TierColdReads != 0 {
		t.Fatalf("TierColdReads = %d, want 0 for an all-hot working set", m.TierColdReads)
	}
	if m.TierHotBytes == 0 {
		t.Fatal("TierHotBytes gauge empty with resident rows")
	}
	// Reset establishes a baseline for the cumulative engine counters;
	// the gauge survives.
	c.ResetMetrics()
	m = c.Metrics()
	if m.TierHotReads != 0 || m.TierColdReads != 0 {
		t.Fatalf("tier counters after reset: %+v", m)
	}
	if m.TierHotBytes == 0 {
		t.Fatal("TierHotBytes gauge must survive ResetMetrics")
	}
}

func TestColdReadLatencySurcharge(t *testing.T) {
	dir := t.TempDir()
	opts := tiered.Options{HotBytes: 1, CompactRate: -1, FlushInterval: time.Millisecond}
	c, err := Open(Config{Machines: 1, Backend: tiered.Factory(dir, opts)})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Put("deltas", "p0", "c0", []byte("cold row"))
	deadline := time.Now().Add(5 * time.Second)
	for c.Metrics().TierHotBytes > 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if c.Metrics().TierHotBytes > 0 {
		t.Fatal("hot tier never drained")
	}
	c.SetLatency(LatencyModel{Enabled: true, ColdRead: time.Millisecond})
	c.ResetMetrics()
	if _, ok := c.Get("deltas", "p0", "c0"); !ok {
		t.Fatal("cold row missing")
	}
	m := c.Metrics()
	if m.TierColdReads != 1 {
		t.Fatalf("TierColdReads = %d, want 1", m.TierColdReads)
	}
	if m.SimWait < time.Millisecond {
		t.Fatalf("SimWait = %v, want >= 1ms cold surcharge", m.SimWait)
	}
}

func TestClusterBackupAndRestore(t *testing.T) {
	for _, tc := range []struct {
		name    string
		factory func(root string) backend.Factory
	}{
		{"disklog", func(root string) backend.Factory { return disklog.Factory(root, disklog.Options{}) }},
		{"tiered", func(root string) backend.Factory {
			return tiered.Factory(root, tiered.Options{HotBytes: 1 << 10, CompactRate: -1, FlushInterval: time.Millisecond})
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			src, err := Open(Config{Machines: 3, Backend: tc.factory(t.TempDir())})
			if err != nil {
				t.Fatal(err)
			}
			defer src.Close()
			for i := 0; i < 64; i++ {
				src.Put("deltas", fmt.Sprintf("p%d", i%8), fmt.Sprintf("c%02d", i), []byte(fmt.Sprintf("v%02d", i)))
			}
			backupDir := t.TempDir()
			if err := src.Backup(backupDir); err != nil {
				t.Fatal(err)
			}
			// A write after the backup must not appear in the copy.
			src.Put("deltas", "p0", "c99", []byte("late"))

			restored, err := Open(Config{Machines: 3, Backend: tc.factory(backupDir)})
			if err != nil {
				t.Fatal(err)
			}
			defer restored.Close()
			for i := 0; i < 64; i++ {
				v, ok := restored.Get("deltas", fmt.Sprintf("p%d", i%8), fmt.Sprintf("c%02d", i))
				if !ok || string(v) != fmt.Sprintf("v%02d", i) {
					t.Fatalf("row %d wrong in restored cluster", i)
				}
			}
			if _, ok := restored.Get("deltas", "p0", "c99"); ok {
				t.Fatal("post-backup write leaked into the backup")
			}
		})
	}
}

func TestBackupRequiresDurableEngines(t *testing.T) {
	c := newTestCluster(2, 1)
	defer c.Close()
	if err := c.Backup(t.TempDir()); err == nil {
		t.Fatal("backup of in-memory cluster must fail")
	}
}

// tierStub is a storage stub whose cumulative ColdReads gauge moves
// from background maintenance concurrently with foreground reads —
// the scenario in which diffing the shared gauge around a serve bills
// one caller for rows somebody else touched. The TierReader side
// reports the true per-call count: exactly one cold row per found Get.
type tierStub struct {
	backend.Backend
	cold int64 // cumulative, moved by reads AND background noise
}

func (s *tierStub) TierCounters() backend.TierCounters {
	return backend.TierCounters{ColdReads: atomic.LoadInt64(&s.cold)}
}

func (s *tierStub) GetTier(table, pkey, ckey string) ([]byte, bool, int) {
	v, ok := s.Backend.Get(table, pkey, ckey)
	if !ok {
		return v, ok, 0
	}
	atomic.AddInt64(&s.cold, 1)
	return v, ok, 1
}

func (s *tierStub) MultiGetTier(reqs []backend.KeyRead) ([][]byte, int) {
	out := backend.MultiGet(s.Backend, reqs)
	cold := 0
	for _, v := range out {
		if v != nil {
			cold++
		}
	}
	atomic.AddInt64(&s.cold, int64(cold))
	return out, cold
}

func (s *tierStub) ScanPrefixTier(table, pkey, prefix string) ([]backend.Row, int) {
	rows := s.Backend.ScanPrefix(table, pkey, prefix)
	atomic.AddInt64(&s.cold, int64(len(rows)))
	return rows, len(rows)
}

// TestColdSurchargeExactAttribution pins the billing contract: each
// operation pays the ColdRead surcharge for exactly the rows IT pulled
// from the cold tier, even with concurrent readers on the same node and
// the engine's own background maintenance moving the cumulative gauge
// the whole time. The pre-fix implementation diffed the shared gauge
// around the serve and charged foreground callers for that noise.
func TestColdSurchargeExactAttribution(t *testing.T) {
	stub := &tierStub{Backend: memtable.New()}
	c, err := Open(Config{Machines: 1, Backend: func(int) (backend.Backend, error) { return stub, nil }})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const rows = 24
	for i := 0; i < rows; i++ {
		c.Put("t", "p", fmt.Sprintf("c%02d", i), nil)
	}
	c.SetLatency(LatencyModel{Enabled: true, ColdRead: time.Millisecond})
	c.ResetMetrics()

	// Background maintenance (warm-up, compaction, ...) bumps the
	// cumulative gauge continuously while the reads run.
	stopNoise := make(chan struct{})
	noiseDone := make(chan struct{})
	go func() {
		defer close(noiseDone)
		for {
			select {
			case <-stopNoise:
				return
			default:
				atomic.AddInt64(&stub.cold, 1)
				time.Sleep(50 * time.Microsecond)
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rows; i++ {
				if _, ok := c.Get("t", "p", fmt.Sprintf("c%02d", i)); !ok {
					t.Errorf("row %d missing", i)
				}
			}
		}(w)
	}
	wg.Wait()
	close(stopNoise)
	<-noiseDone

	// 4 workers x 24 found rows x exactly 1 cold row each; BaseOp and
	// PerKB are zero, so SimWait is purely the surcharge.
	want := time.Duration(4*rows) * time.Millisecond
	if got := c.Metrics().SimWait; got != want {
		t.Fatalf("SimWait = %v, want exactly %v (concurrent readers/background noise misbilled)", got, want)
	}
}

func TestWarmUpMetricsAggregation(t *testing.T) {
	root := t.TempDir()
	seedOpts := tiered.Options{
		HotBytes:        1,
		CompactRate:     -1,
		FlushInterval:   time.Millisecond,
		WALSegmentBytes: 1 << 10,
		DisableWarm:     true,
	}
	seed, err := Open(Config{Machines: 2, Backend: tiered.Factory(root, seedOpts)})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		seed.Put("deltas", fmt.Sprintf("p%d", i%8), fmt.Sprintf("c%03d", i), []byte(fmt.Sprintf("v%03d", i)))
	}
	deadline := time.Now().Add(5 * time.Second)
	for seed.Metrics().TierHotBytes > 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if err := seed.Close(); err != nil {
		t.Fatal(err)
	}

	c, err := Open(Config{Machines: 2, Backend: tiered.Factory(root, tiered.Options{
		HotBytes: 1 << 30, FlushInterval: time.Millisecond,
	})})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for c.Metrics().TierWarming > 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	m := c.Metrics()
	if m.TierWarming != 0 {
		t.Fatalf("TierWarming = %d after warm-up, want 0", m.TierWarming)
	}
	if m.WarmedRows == 0 || m.WarmedBytes == 0 {
		t.Fatalf("warm-up not aggregated: %+v", m)
	}
	// A warmed cluster serves the rows without cold reads.
	c.ResetMetrics()
	for i := 0; i < 200; i++ {
		if _, ok := c.Get("deltas", fmt.Sprintf("p%d", i%8), fmt.Sprintf("c%03d", i)); !ok {
			t.Fatalf("row %d missing after reopen", i)
		}
	}
	m = c.Metrics()
	if m.TierColdReads != 0 {
		t.Fatalf("warmed cluster paid %d cold reads", m.TierColdReads)
	}
	if m.WarmedRows != 0 {
		t.Fatal("ResetMetrics must baseline WarmedRows")
	}
}

// TestCallStatsMatchMetrics pins per-call attribution: the CallStats a
// batched read returns must equal exactly what the call added to the
// cluster counters — reads, round-trips, bytes and simulated wait.
func TestCallStatsMatchMetrics(t *testing.T) {
	c := NewCluster(Config{
		Machines: 3, Replication: 1,
		Latency: LatencyModel{Enabled: true, BaseOp: 2 * time.Microsecond, PerKB: 4 * time.Microsecond},
	})
	refs := make([]KeyRef, 0, 40)
	for i := 0; i < 40; i++ {
		pkey := fmt.Sprintf("p%d", i%5)
		ckey := fmt.Sprintf("c%02d", i)
		c.Put("t", pkey, ckey, []byte(fmt.Sprintf("value-%03d", i)))
		refs = append(refs, KeyRef{Table: "t", PKey: pkey, CKey: ckey})
	}
	refs = append(refs, KeyRef{Table: "t", PKey: "p0", CKey: "missing"})

	c.ResetMetrics()
	out, cs := c.MultiGetStats(refs)
	m := c.Metrics()
	if !out[0].Found || out[len(out)-1].Found {
		t.Fatalf("unexpected results: first found=%v last found=%v", out[0].Found, out[len(out)-1].Found)
	}
	if cs.Reads != m.Reads || cs.RoundTrips != m.RoundTrips || cs.BytesRead != m.BytesRead || cs.SimWait != m.SimWait {
		t.Fatalf("MultiGetStats %+v != metrics {Reads:%d RoundTrips:%d BytesRead:%d SimWait:%v}",
			cs, m.Reads, m.RoundTrips, m.BytesRead, m.SimWait)
	}
	if cs.Reads != int64(len(refs)) {
		t.Fatalf("Reads = %d, want %d", cs.Reads, len(refs))
	}

	c.ResetMetrics()
	scans := []ScanRef{{Table: "t", PKey: "p0", Prefix: "c"}, {Table: "t", PKey: "p1", Prefix: "c"}, {Table: "t", PKey: "nope", Prefix: ""}}
	rows, scs := c.MultiScanStats(scans)
	sm := c.Metrics()
	if len(rows[0]) == 0 || len(rows[2]) != 0 {
		t.Fatalf("unexpected scan rows: %d, %d", len(rows[0]), len(rows[2]))
	}
	if scs.Reads != sm.Reads || scs.RoundTrips != sm.RoundTrips || scs.BytesRead != sm.BytesRead || scs.SimWait != sm.SimWait {
		t.Fatalf("MultiScanStats %+v != metrics {Reads:%d RoundTrips:%d BytesRead:%d SimWait:%v}",
			scs, sm.Reads, sm.RoundTrips, sm.BytesRead, sm.SimWait)
	}
}
