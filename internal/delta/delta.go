// Package delta implements the paper's delta framework (§4.1): deltas as
// sets of static graph components, the algebra over them (sum, difference,
// intersection, union — Definitions 2–5), eventlists, and snapshot deltas.
//
// In the node-centric model a component is a full node state (id,
// attributes, edge list); edges travel inside the states of both their
// endpoints. Component equality — needed by intersection — is deep state
// equality.
package delta

import (
	"fmt"

	"hgs/internal/graph"
)

// Delta is a set of static graph components (paper Definition 2), keyed by
// node id, plus optional tombstones marking explicit deletions. Pure
// set-algebra operations (Diff, Intersect, Union) never produce
// tombstones; Transform does, so that any snapshot can be rewritten into
// any other by a single Sum.
type Delta struct {
	Nodes      map[graph.NodeID]*graph.NodeState
	Tombstones map[graph.NodeID]struct{}
}

// New returns an empty delta (the paper's φ).
func New() *Delta {
	return &Delta{Nodes: make(map[graph.NodeID]*graph.NodeState)}
}

// FromGraph builds a snapshot delta: the difference of the graph's state
// from the empty set (paper Example 4). States are deep-copied.
func FromGraph(g *graph.Graph) *Delta {
	d := &Delta{Nodes: make(map[graph.NodeID]*graph.NodeState, g.NumNodes())}
	g.Range(func(ns *graph.NodeState) bool {
		d.Nodes[ns.ID] = ns.Clone()
		return true
	})
	return d
}

// Put installs a component state (deep-copied by the caller if needed) and
// clears any tombstone for the id.
func (d *Delta) Put(ns *graph.NodeState) {
	d.Nodes[ns.ID] = ns
	delete(d.Tombstones, ns.ID)
}

// MarkDeleted records a tombstone for id and removes any state.
func (d *Delta) MarkDeleted(id graph.NodeID) {
	if d.Tombstones == nil {
		d.Tombstones = make(map[graph.NodeID]struct{})
	}
	d.Tombstones[id] = struct{}{}
	delete(d.Nodes, id)
}

// Cardinality is the number of distinct components in the delta
// (paper Definition 3: unique node/edge descriptions; nodes carry their
// edges here, so we report node components).
func (d *Delta) Cardinality() int { return len(d.Nodes) + len(d.Tombstones) }

// Size is the total number of node and edge descriptions in the delta
// (paper Definition 3).
func (d *Delta) Size() int {
	n := len(d.Tombstones)
	for _, ns := range d.Nodes {
		n += 1 + len(ns.Edges)
	}
	return n
}

// Empty reports whether the delta contains no components or tombstones.
func (d *Delta) Empty() bool { return len(d.Nodes) == 0 && len(d.Tombstones) == 0 }

// Clone returns a deep copy.
func (d *Delta) Clone() *Delta {
	out := &Delta{Nodes: make(map[graph.NodeID]*graph.NodeState, len(d.Nodes))}
	for id, ns := range d.Nodes {
		out.Nodes[id] = ns.Clone()
	}
	if len(d.Tombstones) > 0 {
		out.Tombstones = make(map[graph.NodeID]struct{}, len(d.Tombstones))
		for id := range d.Tombstones {
			out.Tombstones[id] = struct{}{}
		}
	}
	return out
}

// Equal reports whether two deltas hold exactly the same components and
// tombstones.
func (d *Delta) Equal(o *Delta) bool {
	if len(d.Nodes) != len(o.Nodes) || len(d.Tombstones) != len(o.Tombstones) {
		return false
	}
	for id, ns := range d.Nodes {
		ons, ok := o.Nodes[id]
		if !ok || !ns.Equal(ons) {
			return false
		}
	}
	for id := range d.Tombstones {
		if _, ok := o.Tombstones[id]; !ok {
			return false
		}
	}
	return true
}

// Sum implements the paper's ∆ sum (Definition 4): components present in
// both take the right operand's state; tombstones in the right operand
// delete. The receiver is mutated and returned (a+b is not commutative —
// "the order of changes" matters — and that is intentional).
func (d *Delta) Sum(o *Delta) *Delta {
	for _, ns := range o.Nodes {
		d.Put(ns.Clone())
	}
	for id := range o.Tombstones {
		d.MarkDeleted(id)
	}
	return d
}

// SumAll folds Sum left to right over the operands:
// ∆s = ∆1 + ∆2 + ... + ∆n (associative per the paper).
func SumAll(deltas []*Delta) *Delta {
	out := New()
	for _, d := range deltas {
		out.Sum(d)
	}
	return out
}

// Diff implements the paper's ∆ difference as set difference over
// components: the result holds every component of d whose (id, state) pair
// is absent from o. No tombstones are produced.
func Diff(d, o *Delta) *Delta {
	out := New()
	for id, ns := range d.Nodes {
		if ons, ok := o.Nodes[id]; !ok || !ns.Equal(ons) {
			out.Nodes[id] = ns.Clone()
		}
	}
	return out
}

// Intersect implements the paper's ∆ intersection (Definition 5):
// components with equal state in both operands.
func Intersect(a, b *Delta) *Delta {
	// Iterate the smaller side.
	if len(b.Nodes) < len(a.Nodes) {
		a, b = b, a
	}
	out := New()
	for id, ns := range a.Nodes {
		if ons, ok := b.Nodes[id]; ok && ns.Equal(ons) {
			out.Nodes[id] = ns.Clone()
		}
	}
	return out
}

// IntersectAll intersects one or more deltas; with a single operand it
// returns a clone. It panics on zero operands (the intersection of nothing
// is undefined).
func IntersectAll(deltas []*Delta) *Delta {
	switch len(deltas) {
	case 0:
		panic("delta: IntersectAll of zero deltas")
	case 1:
		return deltas[0].Clone()
	}
	out := Intersect(deltas[0], deltas[1])
	for _, d := range deltas[2:] {
		out = Intersect(out, d)
	}
	return out
}

// Union implements the paper's ∆ union: all components from both operands.
// On conflicting states the left operand wins (the paper leaves conflict
// resolution unspecified; left-bias keeps ∆ ∪ φ = ∆ exact).
func Union(a, b *Delta) *Delta {
	out := a.Clone()
	for id, ns := range b.Nodes {
		if _, ok := out.Nodes[id]; !ok {
			out.Nodes[id] = ns.Clone()
		}
	}
	return out
}

// Transform returns the delta t such that from.Sum(t) equals to: changed
// and new components as states, disappeared components as tombstones. This
// is the "difference of two snapshots" used when only forward
// reconstruction is available.
func Transform(from, to *Delta) *Delta {
	t := New()
	for id, ns := range to.Nodes {
		if fns, ok := from.Nodes[id]; !ok || !ns.Equal(fns) {
			t.Nodes[id] = ns.Clone()
		}
	}
	for id := range from.Nodes {
		if _, ok := to.Nodes[id]; !ok {
			t.MarkDeleted(id)
		}
	}
	return t
}

// Restrict returns the sub-delta containing only components (and
// tombstones) whose node id satisfies keep.
func (d *Delta) Restrict(keep func(graph.NodeID) bool) *Delta {
	out := New()
	for id, ns := range d.Nodes {
		if keep(id) {
			out.Nodes[id] = ns.Clone()
		}
	}
	for id := range d.Tombstones {
		if keep(id) {
			out.MarkDeleted(id)
		}
	}
	return out
}

// RestrictToIDs returns the sub-delta for an explicit id set.
func (d *Delta) RestrictToIDs(ids map[graph.NodeID]struct{}) *Delta {
	return d.Restrict(func(id graph.NodeID) bool {
		_, ok := ids[id]
		return ok
	})
}

// ApplyTo merges the delta's components into a mutable graph: states
// overwrite, tombstones delete. States are deep-copied; use MoveTo when
// the delta is a freshly decoded temporary.
func (d *Delta) ApplyTo(g *graph.Graph) {
	for _, ns := range d.Nodes {
		g.PutNode(ns.Clone())
	}
	for id := range d.Tombstones {
		g.RemoveNode(id)
	}
}

// MoveTo merges the delta's components into a mutable graph by
// transferring ownership of the states (no copying). The delta must not
// be used afterwards. This is the fetch-path fast merge: decoded deltas
// are temporaries, so cloning them again would double the reconstruction
// CPU cost.
func (d *Delta) MoveTo(g *graph.Graph) {
	for _, ns := range d.Nodes {
		g.PutNode(ns)
	}
	for id := range d.Tombstones {
		g.RemoveNode(id)
	}
	d.Nodes = nil
	d.Tombstones = nil
}

// Materialize converts the delta into an in-memory graph (valid for deltas
// that represent full snapshots, i.e. built up from a root by sums).
func (d *Delta) Materialize() *graph.Graph {
	g := graph.NewWithCapacity(len(d.Nodes))
	for _, ns := range d.Nodes {
		g.PutNode(ns.Clone())
	}
	return g
}

// NodeIDsTouched returns the set of ids with state or tombstone entries.
func (d *Delta) NodeIDsTouched() map[graph.NodeID]struct{} {
	out := make(map[graph.NodeID]struct{}, len(d.Nodes)+len(d.Tombstones))
	for id := range d.Nodes {
		out[id] = struct{}{}
	}
	for id := range d.Tombstones {
		out[id] = struct{}{}
	}
	return out
}

func (d *Delta) String() string {
	return fmt.Sprintf("delta(%d components, %d tombstones, size %d)",
		len(d.Nodes), len(d.Tombstones), d.Size())
}
