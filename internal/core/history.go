package core

import (
	"sort"
	"sync"

	"hgs/internal/graph"
	"hgs/internal/temporal"
)

// NodeHistory is the evolution of one node over an interval: its state at
// the interval start plus every event touching it afterwards (the result
// of Algorithm 2).
type NodeHistory struct {
	ID       graph.NodeID
	Interval temporal.Interval
	// Initial is the node state at Interval.Start, nil if the node did
	// not exist then.
	Initial *graph.NodeState
	// Events are the changes touching the node with Start < Time < End,
	// chronological.
	Events []graph.Event
}

// VersionCount returns the number of recorded changes.
func (h *NodeHistory) VersionCount() int { return len(h.Events) }

// StateAt replays the history to the node's state at time tt (which must
// lie in the history's interval); nil if the node does not exist at tt.
func (h *NodeHistory) StateAt(tt temporal.Time) *graph.NodeState {
	g := graph.New()
	if h.Initial != nil {
		g.PutNode(h.Initial.Clone())
	}
	for _, e := range h.Events {
		if e.Time > tt {
			break
		}
		g.Apply(e)
	}
	ns := g.Node(h.ID)
	if ns == nil {
		return nil
	}
	return ns.Clone()
}

// Versions materializes the distinct states of the node with their
// validity intervals (paper Definition 6's decomposition).
func (h *NodeHistory) Versions() []graph.Version {
	var out []graph.Version
	g := graph.New()
	if h.Initial != nil {
		g.PutNode(h.Initial.Clone())
	}
	cur := h.Interval.Start
	snapshot := func() *graph.NodeState {
		if ns := g.Node(h.ID); ns != nil {
			return ns.Clone()
		}
		return nil
	}
	prev := snapshot()
	for i := 0; i < len(h.Events); {
		tt := h.Events[i].Time
		for i < len(h.Events) && h.Events[i].Time == tt {
			g.Apply(h.Events[i])
			i++
		}
		next := snapshot()
		if !nodeStatesEqual(prev, next) {
			if prev != nil {
				out = append(out, graph.Version{State: prev, Valid: temporal.Interval{Start: cur, End: tt}})
			}
			prev = next
			cur = tt
		}
	}
	if prev != nil {
		out = append(out, graph.Version{State: prev, Valid: temporal.Interval{Start: cur, End: h.Interval.End}})
	}
	return out
}

func nodeStatesEqual(a, b *graph.NodeState) bool {
	if a == nil || b == nil {
		return a == b
	}
	return a.Equal(b)
}

// GetNodeHistory retrieves a node's history over [ts, te) following
// Algorithm 2: reconstruct the state at ts through the node's
// micro-partition, then use the version chain to fetch exactly the
// micro-eventlists containing its changes.
func (t *TGI) GetNodeHistory(id graph.NodeID, ts, te temporal.Time, opts *FetchOptions) (*NodeHistory, error) {
	gm, err := t.loadGraphMeta()
	if err != nil {
		return nil, err
	}
	initial, err := t.GetNodeAt(id, ts)
	if err != nil {
		return nil, err
	}
	h := &NodeHistory{ID: id, Interval: temporal.Interval{Start: ts, End: te}, Initial: initial}
	sid := t.sidOf(id)

	// Collect (timespan, eventlist) references from version chains.
	type elRef struct {
		tm *TimespanMeta
		el int
	}
	var refs []elRef
	for tsid := 0; tsid < gm.TimespanCount; tsid++ {
		tm, err := t.loadTimespanMeta(tsid)
		if err != nil {
			return nil, err
		}
		if tm.End <= ts || tm.Start >= te {
			continue
		}
		blob, ok := t.store.Get(TableVersions, placementKey(tsid, sid), nodeCKey(id))
		if !ok {
			continue
		}
		entries, err := decodeVC(blob)
		if err != nil {
			return nil, err
		}
		for _, e := range entries {
			// Skip eventlists with no change inside (ts, te).
			hasInRange := false
			for _, tt := range e.times {
				if tt > ts && tt < te {
					hasInRange = true
					break
				}
			}
			if hasInRange {
				refs = append(refs, elRef{tm: tm, el: e.el})
			}
		}
	}

	// Fetch the referenced micro-eventlists in parallel and filter.
	pidCache := make(map[int]int) // tsid -> pid
	var mu sync.Mutex
	lists := make([][]graph.Event, len(refs))
	tasks := make([]func() error, 0, len(refs))
	for i, ref := range refs {
		i, ref := i, ref
		tasks = append(tasks, func() error {
			mu.Lock()
			pid, ok := pidCache[ref.tm.TSID]
			mu.Unlock()
			if !ok {
				var err error
				pid, err = t.pidOf(ref.tm, sid, id)
				if err != nil {
					return err
				}
				mu.Lock()
				pidCache[ref.tm.TSID] = pid
				mu.Unlock()
			}
			blob, found := t.store.Get(TableEvents, placementKey(ref.tm.TSID, sid), eventCKey(ref.el, pid))
			if !found {
				return nil
			}
			evs, err := t.cdc.DecodeEvents(blob)
			if err != nil {
				return err
			}
			var mine []graph.Event
			for _, e := range evs {
				if e.Touches(id) && e.Time > ts && e.Time < te {
					mine = append(mine, e)
				}
			}
			lists[i] = mine
			return nil
		})
	}
	if err := runParallel(t.cfg.clients(opts), tasks); err != nil {
		return nil, err
	}
	h.Events = mergeSortEvents(lists)
	return h, nil
}

// GetNodeHistoryScan retrieves a node's history without consulting
// version chains: it scans every micro-eventlist of the node's partition
// across the overlapping timespans and filters. This is the ablation
// baseline quantifying what the Versions table buys (DESIGN.md §6).
func (t *TGI) GetNodeHistoryScan(id graph.NodeID, ts, te temporal.Time, opts *FetchOptions) (*NodeHistory, error) {
	gm, err := t.loadGraphMeta()
	if err != nil {
		return nil, err
	}
	initial, err := t.GetNodeAt(id, ts)
	if err != nil {
		return nil, err
	}
	h := &NodeHistory{ID: id, Interval: temporal.Interval{Start: ts, End: te}, Initial: initial}
	sid := t.sidOf(id)
	type ref struct {
		tm *TimespanMeta
		el int
	}
	var refs []ref
	for tsid := 0; tsid < gm.TimespanCount; tsid++ {
		tm, err := t.loadTimespanMeta(tsid)
		if err != nil {
			return nil, err
		}
		if tm.End <= ts || tm.Start >= te {
			continue
		}
		for el := 0; el < tm.EventlistCount; el++ {
			if tm.LeafTimes[el+1] <= ts || tm.LeafTimes[el] >= te {
				continue
			}
			refs = append(refs, ref{tm: tm, el: el})
		}
	}
	lists := make([][]graph.Event, len(refs))
	tasks := make([]func() error, 0, len(refs))
	for i, r := range refs {
		i, r := i, r
		tasks = append(tasks, func() error {
			pid, err := t.pidOf(r.tm, sid, id)
			if err != nil {
				return err
			}
			blob, ok := t.store.Get(TableEvents, placementKey(r.tm.TSID, sid), eventCKey(r.el, pid))
			if !ok {
				return nil
			}
			evs, err := t.cdc.DecodeEvents(blob)
			if err != nil {
				return err
			}
			var mine []graph.Event
			for _, e := range evs {
				if e.Touches(id) && e.Time > ts && e.Time < te {
					mine = append(mine, e)
				}
			}
			lists[i] = mine
			return nil
		})
	}
	if err := runParallel(t.cfg.clients(opts), tasks); err != nil {
		return nil, err
	}
	h.Events = mergeSortEvents(lists)
	return h, nil
}

// ChangeTimes returns the timepoints at which the node changed within
// [ts, te), read from version chains only (no eventlist fetches).
func (t *TGI) ChangeTimes(id graph.NodeID, ts, te temporal.Time) ([]temporal.Time, error) {
	gm, err := t.loadGraphMeta()
	if err != nil {
		return nil, err
	}
	sid := t.sidOf(id)
	var out []temporal.Time
	for tsid := 0; tsid < gm.TimespanCount; tsid++ {
		tm, err := t.loadTimespanMeta(tsid)
		if err != nil {
			return nil, err
		}
		if tm.End < ts || tm.Start >= te {
			continue
		}
		blob, ok := t.store.Get(TableVersions, placementKey(tsid, sid), nodeCKey(id))
		if !ok {
			continue
		}
		entries, err := decodeVC(blob)
		if err != nil {
			return nil, err
		}
		for _, e := range entries {
			for _, tt := range e.times {
				if tt >= ts && tt < te {
					out = append(out, tt)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}
