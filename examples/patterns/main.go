// Patterns: the paper (§5.2) motivates NodeComputeDelta's auxiliary
// state with subgraph pattern counting: maintaining a small inverted
// index makes each event an O(1) update instead of a per-version rescan.
// This example counts "open wedges" (paths a–b–c with a–c absent — the
// triangle-closure opportunities of link prediction) in every node's
// 1-hop neighborhood over time, both ways, and verifies they agree.
package main

import (
	"fmt"
	"log"
	"time"

	"hgs"
	"hgs/internal/workload"
)

// wedgeCount counts open wedges centered on the root in its 1-hop
// neighborhood subgraph: pairs of distinct neighbors not directly linked.
func wedgeCount(g *hgs.Graph, root hgs.NodeID) int {
	ns := g.Node(root)
	if ns == nil {
		return 0
	}
	nbs := ns.Neighbors()
	open := 0
	for i := 0; i < len(nbs); i++ {
		for j := i + 1; j < len(nbs); j++ {
			u, w := g.Node(nbs[i]), g.Node(nbs[j])
			if u == nil || w == nil {
				continue
			}
			if !u.HasEdgeTo(nbs[j]) && !w.HasEdgeTo(nbs[i]) {
				open++
			}
		}
	}
	return open
}

func main() {
	base := workload.Friendster(workload.FriendsterConfig{
		Communities: 4, CommunitySize: 150, IntraDegree: 6, InterFraction: 0.05, Seed: 21,
	})
	events := workload.Augment(base, workload.AugmentConfig{Extra: 3000, DeleteFraction: 0.35, Seed: 22})

	store, err := hgs.Open(hgs.Options{
		Machines:       2,
		TimespanEvents: len(events)/2 + 1,
		EventlistSize:  len(events) / 12,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := store.Load(events); err != nil {
		log.Fatal(err)
	}
	lo, hi, _ := store.TimeRange()

	a := store.Analytics(2)
	roots := []hgs.NodeID{0, 75, 151, 300, 433}
	sots, err := a.SOTS(1).Roots(roots...).Timeslice(hgs.NewInterval(lo+hgs.Time(len(base)), hi+1)).Fetch()
	if err != nil {
		log.Fatal(err)
	}

	// Fresh per-version evaluation: rescan the subgraph at every change.
	// The quantity depends on the root, so each root gets its own pass.
	t0 := time.Now()
	freshByRoot := make(map[hgs.NodeID][]hgs.Timed[int])
	for _, st := range sots.Collect() {
		root := st.Root()
		one, err := a.SOTS(1).Roots(root).Timeslice(st.Span()).Fetch()
		if err != nil {
			log.Fatal(err)
		}
		res := hgs.SubgraphComputeTemporal(one, func(g *hgs.Graph) int { return wedgeCount(g, root) }, nil)
		freshByRoot[root] = res[root]
	}
	freshDur := time.Since(t0)

	// Incremental evaluation: the aux structure caches the neighbor set
	// and the subgraph handle; each event adjusts the wedge count by the
	// affected pairs only.
	t1 := time.Now()
	incr := make(map[hgs.NodeID][]hgs.Timed[int])
	for _, st := range sots.Collect() {
		root := st.Root()
		one, err := a.SOTS(1).Roots(root).Timeslice(st.Span()).Fetch()
		if err != nil {
			log.Fatal(err)
		}
		res := hgs.SubgraphComputeDelta(one,
			func(g *hgs.Graph) (int, any) { return wedgeCount(g, root), nil },
			func(before *hgs.Graph, aux any, val int, e hgs.Event) (int, any) {
				switch e.Kind {
				case hgs.AddEdge, hgs.RemoveEdge:
					// Only edges with at least one endpoint in the root's
					// neighborhood (or at the root) can change the count;
					// recompute lazily from the pre-state plus this event.
					g := before.Clone()
					g.Apply(e)
					return wedgeCount(g, root), aux
				case hgs.RemoveNode:
					g := before.Clone()
					g.Apply(e)
					return wedgeCount(g, root), aux
				}
				return val, aux
			})
		incr[root] = res[root]
	}
	incrDur := time.Since(t1)

	// The two evaluations must agree everywhere.
	mismatches := 0
	for root, fs := range freshByRoot {
		is := incr[root]
		if len(fs) != len(is) {
			mismatches++
			continue
		}
		for i := range fs {
			if fs[i] != is[i] {
				mismatches++
				break
			}
		}
	}
	fmt.Printf("roots analyzed          : %d\n", len(roots))
	fmt.Printf("evaluation agreement    : %d mismatching roots\n", mismatches)
	fmt.Printf("fresh per-version time  : %s\n", freshDur.Round(time.Millisecond))
	fmt.Printf("incremental time        : %s\n", incrDur.Round(time.Millisecond))

	for _, root := range roots {
		series := freshByRoot[root]
		if len(series) == 0 {
			continue
		}
		first, last := series[0], series[len(series)-1]
		fmt.Printf("node %-4d open wedges: %4d (t=%d) -> %4d (t=%d) over %d versions\n",
			root, first.Value, first.Time, last.Value, last.Time, len(series))
	}
}
