// Package server is the HTTP/JSON front end over an hgs.Store: every
// query method of the store has an endpoint, large snapshot and history
// responses stream as NDJSON (rows flushed as materialization
// partitions complete), and the request path composes
//
//	limiter -> context deadline -> fetch plan -> streamed response
//
// An in-flight limiter sheds overload with 429 before any work starts;
// admitted requests run under a context carrying the per-request
// deadline (the ?timeout= query parameter, clamped to Config.MaxTimeout)
// and the client's cancellation signal, which the store threads through
// its fetch layer into the simulated cluster. Typed store errors map to
// HTTP statuses:
//
//	hgs.ErrNotLoaded         409 Conflict
//	hgs.ErrNodeNotFound      404 Not Found
//	hgs.ErrOutOfRange        416 Requested Range Not Satisfiable
//	hgs.ErrClosed            503 Service Unavailable
//	context.DeadlineExceeded 504 Gateway Timeout
//	context.Canceled         499 (client closed request)
//
// The store's observability endpoints (/metrics, /debug/pprof/*,
// /traces) mount into the same mux, so one port serves queries and
// telemetry alike. cmd/hgs-server is the binary; hgs-bench -run serve
// drives a spawned instance closed-loop.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"hgs"
	"hgs/internal/graph"
	"hgs/internal/obs"
)

// Config tunes a Server. The zero value serves with sensible limits.
type Config struct {
	// MaxInFlight bounds concurrently executing requests; excess
	// requests are shed immediately with 429 (default 64).
	MaxInFlight int
	// DefaultTimeout is the per-request deadline when the client sends
	// no ?timeout= parameter (default 5s).
	DefaultTimeout time.Duration
	// MaxTimeout caps client-requested timeouts (default 60s).
	MaxTimeout time.Duration
	// AnalyticsWorkers sizes the TAF compute pool behind the analytics
	// endpoints (default 4).
	AnalyticsWorkers int
}

func (c Config) withDefaults() Config {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 64
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 5 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 60 * time.Second
	}
	if c.AnalyticsWorkers <= 0 {
		c.AnalyticsWorkers = 4
	}
	return c
}

// StatusClientClosedRequest is the nonstandard status (nginx's 499)
// reported when the client cancelled mid-request.
const StatusClientClosedRequest = 499

// Server serves one Store over HTTP.
type Server struct {
	store *hgs.Store
	cfg   Config
	sem   chan struct{}
	mux   *http.ServeMux

	shed         *obs.Counter
	deadlineMiss *obs.Counter
	inflight     *obs.Gauge

	srvMu sync.Mutex
	ln    net.Listener
	srv   *http.Server
}

// New builds a server over store. Its request metrics register into the
// store's registry, so /metrics reports the serve layer next to the
// store's own counters.
func New(store *hgs.Store, cfg Config) *Server {
	cfg = cfg.withDefaults()
	reg := store.Registry()
	s := &Server{
		store: store,
		cfg:   cfg,
		sem:   make(chan struct{}, cfg.MaxInFlight),
		shed: reg.Counter("hgs_server_shed_total",
			"Requests rejected with 429 by the in-flight limiter."),
		deadlineMiss: reg.Counter("hgs_server_deadline_miss_total",
			"Requests that exceeded their deadline (504)."),
		inflight: reg.Gauge("hgs_server_inflight",
			"Requests currently executing."),
	}
	mux := http.NewServeMux()
	mux.Handle("/v1/stats", s.route("stats", s.handleStats))
	mux.Handle("/v1/timerange", s.route("timerange", s.handleTimeRange))
	mux.Handle("/v1/snapshot", s.route("snapshot", s.handleSnapshot))
	mux.Handle("/v1/node", s.route("node", s.handleNode))
	mux.Handle("/v1/node/history", s.route("node-history", s.handleNodeHistory))
	mux.Handle("/v1/node/changetimes", s.route("change-times", s.handleChangeTimes))
	mux.Handle("/v1/khop", s.route("khop", s.handleKHop))
	mux.Handle("/v1/khop/history", s.route("khop-history", s.handleKHopHistory))
	mux.Handle("/v1/append", s.route("append", s.handleAppend))
	mux.Handle("/v1/analytics/top-changers", s.route("top-changers", s.handleTopChangers))
	// Topology administration: inspect placement, change membership,
	// inject replica failures. Mutating endpoints are POST-only and map
	// topology sentinels like the query endpoints map store sentinels
	// (unknown node 404, duplicate/rebalancing/too-few-nodes 409).
	mux.Handle("/admin/topology", s.route("topology", s.handleTopology))
	mux.Handle("/admin/node/add", s.route("node-add", s.nodeOp(s.store.AddStorageNode)))
	mux.Handle("/admin/node/remove", s.route("node-remove", s.nodeOp(s.store.RemoveStorageNode)))
	mux.Handle("/admin/node/fail", s.route("node-fail", s.nodeOp(s.store.FailStorageNode)))
	mux.Handle("/admin/node/revive", s.route("node-revive", s.nodeOp(s.store.ReviveStorageNode)))
	mux.Handle("/admin/rebalance/wait", s.route("rebalance-wait", s.handleRebalanceWait))
	mux.Handle("/admin/repair", s.route("repair", s.handleRepair))
	// Telemetry rides the same port: the store's debug handler already
	// serves /metrics, /traces and /debug/pprof/*.
	dh := store.DebugHandler()
	mux.Handle("/metrics", dh)
	mux.Handle("/traces", dh)
	mux.Handle("/debug/pprof/", dh)
	s.mux = mux
	return s
}

// Handler returns the server's routed handler for embedding.
func (s *Server) Handler() http.Handler { return s.mux }

// Start listens on addr (":0" for an ephemeral port) and serves in the
// background until Shutdown. It returns the bound address.
func (s *Server) Start(addr string) (string, error) {
	s.srvMu.Lock()
	defer s.srvMu.Unlock()
	if s.ln != nil {
		return "", fmt.Errorf("server: already started on %s", s.ln.Addr())
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("server: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: s.mux, ReadHeaderTimeout: 10 * time.Second}
	s.ln, s.srv = ln, srv
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), nil
}

// Shutdown stops the listener and drains in-flight requests until ctx
// expires. The store is not closed; that remains the caller's.
func (s *Server) Shutdown(ctx context.Context) error {
	s.srvMu.Lock()
	srv := s.srv
	s.ln, s.srv = nil, nil
	s.srvMu.Unlock()
	if srv == nil {
		return nil
	}
	return srv.Shutdown(ctx)
}

// httpError carries an explicit status for request-shape problems
// (missing parameters, bad bodies) that no store sentinel covers.
type httpError struct {
	code int
	msg  string
}

func (e *httpError) Error() string { return e.msg }

func badRequest(format string, args ...any) error {
	return &httpError{code: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

// statusOf maps an error to its HTTP status: typed store sentinels and
// context outcomes first, explicit httpErrors next, 500 otherwise.
func statusOf(err error) int {
	var he *httpError
	switch {
	case err == nil:
		return http.StatusOK
	case errors.As(err, &he):
		return he.code
	case errors.Is(err, hgs.ErrNodeNotFound):
		return http.StatusNotFound
	case errors.Is(err, hgs.ErrUnknownStorageNode):
		return http.StatusNotFound
	case errors.Is(err, hgs.ErrDuplicateStorageNode),
		errors.Is(err, hgs.ErrRebalancing),
		errors.Is(err, hgs.ErrRepairRunning),
		errors.Is(err, hgs.ErrTooFewNodes):
		return http.StatusConflict
	case errors.Is(err, hgs.ErrOutOfRange):
		return http.StatusRequestedRangeNotSatisfiable
	case errors.Is(err, hgs.ErrNotLoaded):
		return http.StatusConflict
	case errors.Is(err, hgs.ErrClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return StatusClientClosedRequest
	}
	return http.StatusInternalServerError
}

// statusWriter tracks whether the handler already wrote (streaming
// responses commit their 200 before the body; a later error can only
// abort the stream, not change the status).
type statusWriter struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (w *statusWriter) WriteHeader(code int) {
	if !w.wrote {
		w.status, w.wrote = code, true
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if !w.wrote {
		w.status, w.wrote = http.StatusOK, true
	}
	return w.ResponseWriter.Write(b)
}

// Flush forwards to the underlying writer so streaming handlers can
// flush per partition.
func (w *statusWriter) Flush() {
	if fl, ok := w.ResponseWriter.(http.Flusher); ok {
		fl.Flush()
	}
}

// route wraps one endpoint with the serve pipeline: shed over
// MaxInFlight, derive the request context (client cancellation plus the
// clamped ?timeout= deadline), run the handler, map its error to a
// status, and record per-route metrics.
func (s *Server) route(name string, fn func(http.ResponseWriter, *http.Request) error) http.Handler {
	reg := s.store.Registry()
	hist := reg.Histogram("hgs_server_request_seconds",
		"Wall time of served requests by route.", nil, obs.L("route", name))
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case s.sem <- struct{}{}:
		default:
			s.shed.Inc()
			s.count(reg, name, http.StatusTooManyRequests)
			writeJSONError(w, http.StatusTooManyRequests, "server at capacity")
			return
		}
		defer func() { <-s.sem }()
		s.inflight.Add(1)
		defer s.inflight.Add(-1)

		timeout := s.cfg.DefaultTimeout
		if tv := r.URL.Query().Get("timeout"); tv != "" {
			d, err := time.ParseDuration(tv)
			if err != nil || d <= 0 {
				s.count(reg, name, http.StatusBadRequest)
				writeJSONError(w, http.StatusBadRequest, fmt.Sprintf("bad timeout %q", tv))
				return
			}
			timeout = d
		}
		if timeout > s.cfg.MaxTimeout {
			timeout = s.cfg.MaxTimeout
		}
		ctx, cancel := context.WithTimeout(r.Context(), timeout)
		defer cancel()

		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		err := fn(sw, r.WithContext(ctx))
		hist.Observe(time.Since(start).Seconds())

		code := statusOf(err)
		if err != nil && !sw.wrote {
			writeJSONError(sw, code, err.Error())
		}
		if err != nil && sw.wrote {
			code = sw.status // stream already committed its status
		}
		if statusOf(err) == http.StatusGatewayTimeout {
			s.deadlineMiss.Inc()
		}
		s.count(reg, name, code)
	})
}

func (s *Server) count(reg *obs.Registry, route string, code int) {
	reg.Counter("hgs_server_requests_total", "Served requests by route and status.",
		obs.L("route", route), obs.L("code", strconv.Itoa(code))).Inc()
}

func writeJSONError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]any{"error": msg, "code": code})
}

func writeJSON(w http.ResponseWriter, v any) error {
	w.Header().Set("Content-Type", "application/json")
	return json.NewEncoder(w).Encode(v)
}

// --- parameter parsing --------------------------------------------------

func intParam(r *http.Request, name string) (int64, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return 0, badRequest("missing parameter %q", name)
	}
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		return 0, badRequest("bad parameter %s=%q", name, v)
	}
	return n, nil
}

func intParamDefault(r *http.Request, name string, def int64) (int64, error) {
	if r.URL.Query().Get(name) == "" {
		return def, nil
	}
	return intParam(r, name)
}

// checkRange rejects timepoints outside the indexed history with
// ErrOutOfRange. The core index clamps instead (a query below the first
// event returns the empty graph); at the HTTP boundary an explicit 416
// beats silently serving the clamped answer.
func (s *Server) checkRange(times ...hgs.Time) error {
	first, last, err := s.store.TimeRange()
	if err != nil {
		return err
	}
	for _, tt := range times {
		if tt < first || tt > last {
			return fmt.Errorf("t=%d outside indexed range [%d, %d]: %w",
				tt, first, last, hgs.ErrOutOfRange)
		}
	}
	return nil
}

// --- response shapes ----------------------------------------------------

// EdgeJSON is one incident edge of a node row. Out reports direction
// (true: the row's node is the source).
type EdgeJSON struct {
	Other hgs.NodeID `json:"other"`
	Out   bool       `json:"out"`
	Attrs hgs.Attrs  `json:"attrs,omitempty"`
}

// NodeJSON is one node state: an NDJSON row of snapshot responses and
// the body of /v1/node.
type NodeJSON struct {
	ID    hgs.NodeID `json:"id"`
	Attrs hgs.Attrs  `json:"attrs,omitempty"`
	Edges []EdgeJSON `json:"edges,omitempty"`
}

// EventJSON is one change, as emitted by history endpoints and accepted
// by /v1/append.
type EventJSON struct {
	Time  hgs.Time   `json:"time"`
	Kind  string     `json:"kind"`
	Node  hgs.NodeID `json:"node"`
	Other hgs.NodeID `json:"other,omitempty"`
	Key   string     `json:"key,omitempty"`
	Value string     `json:"value,omitempty"`
}

var kindNames = map[hgs.EventKind]string{
	hgs.AddNode: "add-node", hgs.RemoveNode: "remove-node",
	hgs.AddEdge: "add-edge", hgs.RemoveEdge: "remove-edge",
	hgs.SetNodeAttr: "set-node-attr", hgs.DelNodeAttr: "del-node-attr",
	hgs.SetEdgeAttr: "set-edge-attr", hgs.DelEdgeAttr: "del-edge-attr",
}

var kindValues = func() map[string]hgs.EventKind {
	m := make(map[string]hgs.EventKind, len(kindNames))
	for k, n := range kindNames {
		m[n] = k
	}
	return m
}()

func nodeJSON(ns *hgs.NodeState) NodeJSON {
	row := NodeJSON{ID: ns.ID, Attrs: ns.Attrs}
	if len(ns.Edges) > 0 {
		row.Edges = make([]EdgeJSON, 0, len(ns.Edges))
		for k, es := range ns.Edges {
			var attrs hgs.Attrs
			if es != nil {
				attrs = es.Attrs
			}
			row.Edges = append(row.Edges, EdgeJSON{Other: k.Other, Out: k.Out, Attrs: attrs})
		}
		sort.Slice(row.Edges, func(i, j int) bool {
			if row.Edges[i].Other != row.Edges[j].Other {
				return row.Edges[i].Other < row.Edges[j].Other
			}
			return row.Edges[i].Out && !row.Edges[j].Out
		})
	}
	return row
}

func eventJSON(e hgs.Event) EventJSON {
	return EventJSON{Time: e.Time, Kind: kindNames[e.Kind], Node: e.Node,
		Other: e.Other, Key: e.Key, Value: e.Value}
}

func (e EventJSON) event() (hgs.Event, error) {
	k, ok := kindValues[e.Kind]
	if !ok {
		return hgs.Event{}, badRequest("unknown event kind %q", e.Kind)
	}
	return hgs.Event{Time: e.Time, Kind: k, Node: e.Node, Other: e.Other,
		Key: e.Key, Value: e.Value}, nil
}

func graphJSON(g *hgs.Graph) []NodeJSON {
	rows := make([]NodeJSON, 0, g.NumNodes())
	for _, id := range g.NodeIDs() {
		rows = append(rows, nodeJSON(g.Node(id)))
	}
	return rows
}

// --- endpoints ----------------------------------------------------------

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) error {
	st, err := s.store.Stats()
	if err != nil {
		return err
	}
	return writeJSON(w, st)
}

func (s *Server) handleTimeRange(w http.ResponseWriter, r *http.Request) error {
	first, last, err := s.store.TimeRange()
	if err != nil {
		return err
	}
	return writeJSON(w, map[string]hgs.Time{"first": first, "last": last})
}

// handleSnapshot streams the snapshot at ?t= as NDJSON, one node row
// per line, rows written (and flushed) as each horizontal partition
// finishes materializing — the response starts before the last
// partition is done and total memory stays bounded by partition size.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) error {
	tt, err := intParam(r, "t")
	if err != nil {
		return err
	}
	if err := s.checkRange(hgs.Time(tt)); err != nil {
		return err
	}
	var mu sync.Mutex
	var started bool
	enc := json.NewEncoder(w)
	fl, _ := w.(http.Flusher)
	err = s.store.StreamSnapshot(hgs.Time(tt), &hgs.FetchOptions{Context: r.Context()},
		func(sid int, states []*hgs.NodeState) error {
			mu.Lock()
			defer mu.Unlock()
			if !started {
				w.Header().Set("Content-Type", "application/x-ndjson")
				started = true
			}
			for _, ns := range states {
				if err := enc.Encode(nodeJSON(ns)); err != nil {
					return err
				}
			}
			if fl != nil {
				fl.Flush()
			}
			return nil
		})
	return err
}

func (s *Server) handleNode(w http.ResponseWriter, r *http.Request) error {
	id, err := intParam(r, "id")
	if err != nil {
		return err
	}
	tt, err := intParam(r, "t")
	if err != nil {
		return err
	}
	if err := s.checkRange(hgs.Time(tt)); err != nil {
		return err
	}
	ns, err := s.store.NodeCtx(r.Context(), hgs.NodeID(id), hgs.Time(tt))
	if err != nil {
		return err
	}
	if ns == nil {
		return fmt.Errorf("node %d at t=%d: %w", id, tt, hgs.ErrNodeNotFound)
	}
	return writeJSON(w, nodeJSON(ns))
}

// handleNodeHistory streams a node's history over [ts, te) as NDJSON:
// first a line holding the initial state (null when absent), then one
// line per event.
func (s *Server) handleNodeHistory(w http.ResponseWriter, r *http.Request) error {
	id, err := intParam(r, "id")
	if err != nil {
		return err
	}
	ts, err := intParam(r, "ts")
	if err != nil {
		return err
	}
	te, err := intParam(r, "te")
	if err != nil {
		return err
	}
	h, err := s.store.NodeHistoryCtx(r.Context(), hgs.NodeID(id), hgs.Time(ts), hgs.Time(te))
	if err != nil {
		return err
	}
	if h.Initial == nil && len(h.Events) == 0 {
		return fmt.Errorf("node %d in [%d, %d): %w", id, ts, te, hgs.ErrNodeNotFound)
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	var initial any
	if h.Initial != nil {
		initial = nodeJSON(h.Initial)
	}
	if err := enc.Encode(map[string]any{"initial": initial, "events": len(h.Events)}); err != nil {
		return err
	}
	fl, _ := w.(http.Flusher)
	for i, e := range h.Events {
		if err := enc.Encode(eventJSON(e)); err != nil {
			return err
		}
		if fl != nil && (i+1)%1024 == 0 {
			fl.Flush()
		}
	}
	return nil
}

func (s *Server) handleChangeTimes(w http.ResponseWriter, r *http.Request) error {
	id, err := intParam(r, "id")
	if err != nil {
		return err
	}
	ts, err := intParam(r, "ts")
	if err != nil {
		return err
	}
	te, err := intParam(r, "te")
	if err != nil {
		return err
	}
	times, err := s.store.ChangeTimesCtx(r.Context(), hgs.NodeID(id), hgs.Time(ts), hgs.Time(te))
	if err != nil {
		return err
	}
	if times == nil {
		times = []hgs.Time{}
	}
	return writeJSON(w, times)
}

func (s *Server) handleKHop(w http.ResponseWriter, r *http.Request) error {
	id, err := intParam(r, "id")
	if err != nil {
		return err
	}
	k, err := intParamDefault(r, "k", 1)
	if err != nil {
		return err
	}
	tt, err := intParam(r, "t")
	if err != nil {
		return err
	}
	if err := s.checkRange(hgs.Time(tt)); err != nil {
		return err
	}
	g, err := s.store.KHopCtx(r.Context(), hgs.NodeID(id), int(k), hgs.Time(tt))
	if err != nil {
		return err
	}
	if !g.Has(hgs.NodeID(id)) {
		return fmt.Errorf("node %d at t=%d: %w", id, tt, hgs.ErrNodeNotFound)
	}
	return writeJSON(w, graphJSON(g))
}

func (s *Server) handleKHopHistory(w http.ResponseWriter, r *http.Request) error {
	id, err := intParam(r, "id")
	if err != nil {
		return err
	}
	k, err := intParamDefault(r, "k", 1)
	if err != nil {
		return err
	}
	ts, err := intParam(r, "ts")
	if err != nil {
		return err
	}
	te, err := intParam(r, "te")
	if err != nil {
		return err
	}
	sh, err := s.store.KHopHistoryCtx(r.Context(), hgs.NodeID(id), int(k), hgs.Time(ts), hgs.Time(te))
	if err != nil {
		return err
	}
	evs := make([]EventJSON, 0, len(sh.Events))
	for _, e := range sh.Events {
		evs = append(evs, eventJSON(e))
	}
	return writeJSON(w, map[string]any{
		"root":     sh.Root,
		"k":        sh.K,
		"interval": sh.Interval,
		"members":  sh.Members,
		"initial":  graphJSON(sh.Initial),
		"events":   evs,
	})
}

// handleTopology reports cluster placement: per-node ring share,
// health, stored bytes and pending hints, plus under-replicated
// partition counts (hgs-inspect -topology prints the same data).
func (s *Server) handleTopology(w http.ResponseWriter, r *http.Request) error {
	info, err := s.store.Topology()
	if err != nil {
		return err
	}
	return writeJSON(w, info)
}

// nodeOp adapts one id-keyed topology operation (add/remove/fail/
// revive) into a POST endpoint.
func (s *Server) nodeOp(op func(id int) error) func(http.ResponseWriter, *http.Request) error {
	return func(w http.ResponseWriter, r *http.Request) error {
		if r.Method != http.MethodPost {
			return &httpError{code: http.StatusMethodNotAllowed, msg: "POST required"}
		}
		id, err := intParam(r, "id")
		if err != nil {
			return err
		}
		if err := op(int(id)); err != nil {
			return err
		}
		return writeJSON(w, map[string]any{"node": id, "rebalancing": s.store.Rebalancing()})
	}
}

// handleRepair runs one anti-entropy sweep (POST) and reports what it
// converged. A sweep already in progress or a streaming topology
// change maps to 409 like the other admin conflicts.
func (s *Server) handleRepair(w http.ResponseWriter, r *http.Request) error {
	if r.Method != http.MethodPost {
		return &httpError{code: http.StatusMethodNotAllowed, msg: "POST required"}
	}
	stats, err := s.store.RepairPartitions()
	if err != nil {
		return err
	}
	return writeJSON(w, stats)
}

// handleRebalanceWait blocks until the in-flight topology migration
// finishes (or the request deadline expires) and reports its outcome.
func (s *Server) handleRebalanceWait(w http.ResponseWriter, r *http.Request) error {
	done := make(chan error, 1)
	go func() { done <- s.store.WaitRebalance() }()
	select {
	case err := <-done:
		if err != nil {
			return err
		}
		return writeJSON(w, map[string]any{"rebalancing": false})
	case <-r.Context().Done():
		return r.Context().Err()
	}
}

// handleAppend ingests new events: POST {"events": [...]}. The request
// context bounds admission only — a started ingest runs to completion.
func (s *Server) handleAppend(w http.ResponseWriter, r *http.Request) error {
	if r.Method != http.MethodPost {
		return &httpError{code: http.StatusMethodNotAllowed, msg: "POST required"}
	}
	var body struct {
		Events []EventJSON `json:"events"`
	}
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		return badRequest("bad body: %v", err)
	}
	if len(body.Events) == 0 {
		return badRequest("no events")
	}
	events := make([]hgs.Event, 0, len(body.Events))
	for _, ej := range body.Events {
		e, err := ej.event()
		if err != nil {
			return err
		}
		events = append(events, e)
	}
	if err := s.store.AppendCtx(r.Context(), events); err != nil {
		return err
	}
	return writeJSON(w, map[string]int{"appended": len(events)})
}

// handleTopChangers is the analytics entry point: a TAF
// set-of-temporal-nodes pass over [ts, te) ranking nodes by recorded
// change count (?limit= bounds the list, default 10).
func (s *Server) handleTopChangers(w http.ResponseWriter, r *http.Request) error {
	ts, err := intParam(r, "ts")
	if err != nil {
		return err
	}
	te, err := intParam(r, "te")
	if err != nil {
		return err
	}
	limit, err := intParamDefault(r, "limit", 10)
	if err != nil {
		return err
	}
	son, err := s.store.Analytics(s.cfg.AnalyticsWorkers).SON().
		Timeslice(hgs.NewInterval(hgs.Time(ts), hgs.Time(te))).Fetch()
	if err != nil {
		return err
	}
	type changer struct {
		ID      graph.NodeID `json:"id"`
		Changes int          `json:"changes"`
	}
	var rows []changer
	for _, nt := range son.Collect() {
		if n := len(nt.Events()); n > 0 {
			rows = append(rows, changer{ID: nt.ID(), Changes: n})
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Changes != rows[j].Changes {
			return rows[i].Changes > rows[j].Changes
		}
		return rows[i].ID < rows[j].ID
	})
	if int64(len(rows)) > limit {
		rows = rows[:limit]
	}
	if rows == nil {
		rows = []changer{}
	}
	return writeJSON(w, rows)
}
