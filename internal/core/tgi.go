package core

import (
	"encoding/json"
	"fmt"
	"sync"

	"hgs/internal/codec"
	"hgs/internal/fetch"
	"hgs/internal/graph"
	"hgs/internal/kvstore"
	"hgs/internal/temporal"
)

// TGI is the Temporal Graph Index: construction (Index Manager), metadata
// caching and retrieval planning (Query Manager) over a distributed
// key-value store (paper Figure 3c). Every retrieval runs through the
// unified fetch layer (fx): planned key sets, batched per-node reads,
// and the decoded-delta cache.
type TGI struct {
	cfg    Config
	store  *kvstore.Cluster
	cdc    codec.Codec
	meta   *metaStore
	fx     *fetch.Executor
	traces *traceRing
}

// New creates an index handle over the given store. The store may be
// empty (build with Build/Append) or already contain an index written
// with the same configuration.
func New(store *kvstore.Cluster, cfg Config) *TGI {
	cfg.normalize()
	cdc := codec.Codec{Compress: cfg.Compress}
	return &TGI{
		cfg:    cfg,
		store:  store,
		cdc:    cdc,
		meta:   newMetaStore(),
		fx:     fetch.NewExecutor(store, cdc, cfg.queryCache()),
		traces: newTraceRing(),
	}
}

// queryCache resolves the handle's decoded-delta cache: an injected
// shared cache wins, otherwise a private one is built from CacheBytes.
func (c Config) queryCache() *fetch.Cache {
	if c.Cache != nil {
		return c.Cache
	}
	return fetch.NewCache(c.cacheBudget())
}

// Build constructs a fresh index over the complete event history.
// Events must be chronologically sorted with strictly increasing
// timestamps (a total order over changes; see DESIGN.md).
func Build(store *kvstore.Cluster, cfg Config, events []graph.Event) (*TGI, error) {
	t := New(store, cfg)
	if err := t.BuildAll(events); err != nil {
		return nil, err
	}
	return t, nil
}

// Attach opens an index handle over a store that may already contain a
// persisted index (a durable backend reopened by a new process). When
// graph metadata is found, the configuration it was built with replaces
// cfg — construction parameters are properties of the stored index, not
// of the process reading it — and attached reports true; queries can
// then run without a rebuild. An empty store attaches nothing and the
// handle behaves exactly like New's.
func Attach(store *kvstore.Cluster, cfg Config) (*TGI, bool, error) {
	t := New(store, cfg)
	blob, ok := store.Get(TableGraph, "graph", "info")
	if !ok {
		return t, false, nil
	}
	gm := &GraphMeta{}
	if err := json.Unmarshal(blob, gm); err != nil {
		return nil, false, fmt.Errorf("core: decode persisted graph metadata: %w", err)
	}
	// Construction parameters come from the store; CacheBytes, an
	// injected shared Cache and TracePlans are properties of the
	// reading process and survive the adoption.
	t.cfg = gm.Config
	t.cfg.CacheBytes = cfg.CacheBytes
	t.cfg.Cache = cfg.Cache
	t.cfg.TracePlans = cfg.TracePlans
	t.cfg.normalize()
	t.cdc = codec.Codec{Compress: t.cfg.Compress}
	t.fx = fetch.NewExecutor(store, t.cdc, t.cfg.queryCache())
	t.meta.mu.Lock()
	t.meta.graph = gm
	t.meta.mu.Unlock()
	return t, true, nil
}

// Config returns the index configuration.
func (t *TGI) Config() Config { return t.cfg }

// Store returns the backing cluster (used by benchmarks for metrics).
func (t *TGI) Store() *kvstore.Cluster { return t.store }

// CacheStats returns the decoded-delta cache counters (zero when the
// cache is disabled).
func (t *TGI) CacheStats() fetch.CacheStats { return t.fx.Cache().Stats() }

// traceKeep bounds the per-handle plan-trace ring: enough recent
// queries to debug a workload without growing with it.
const traceKeep = 32

// traceRing keeps the most recent plan-trace records of a handle.
type traceRing struct {
	mu     sync.Mutex
	recent []fetch.TraceRecord
}

func newTraceRing() *traceRing { return &traceRing{} }

func (r *traceRing) add(rec fetch.TraceRecord) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.recent = append(r.recent, rec)
	if len(r.recent) > traceKeep {
		r.recent = append(r.recent[:0], r.recent[len(r.recent)-traceKeep:]...)
	}
}

func (r *traceRing) snapshot() []fetch.TraceRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]fetch.TraceRecord(nil), r.recent...)
}

// startTrace resolves the trace one retrieval should fill: the
// caller-supplied FetchOptions.Trace when present, else a fresh one
// when Config.TracePlans is on, else nil (tracing disabled — every
// fetch.Trace method is nil-safe, so retrieval code threads the result
// unconditionally). own reports that the TGI created the trace and
// finishTrace should record it into the ring; caller-supplied traces
// belong to the caller and are never double-recorded, which also keeps
// a fan-out retrieval (multiple snapshots sharing one outer trace) one
// ring entry.
func (t *TGI) startTrace(op string, opts *FetchOptions) (tr *fetch.Trace, own bool) {
	if opts != nil && opts.Trace != nil {
		opts.Trace.SetOp(op)
		return opts.Trace, false
	}
	if !t.cfg.TracePlans {
		return nil, false
	}
	tr = &fetch.Trace{}
	tr.SetOp(op)
	return tr, true
}

// finishTrace records an owned trace into the handle's ring.
func (t *TGI) finishTrace(tr *fetch.Trace, own bool) {
	if tr == nil || !own {
		return
	}
	t.traces.add(tr.Record())
}

// PlanTraces returns the handle's most recent per-query plan traces,
// oldest first (empty unless Config.TracePlans is on).
func (t *TGI) PlanTraces() []fetch.TraceRecord { return t.traces.snapshot() }

// TimeRange returns the [first, last] event times covered by the index.
func (t *TGI) TimeRange() (temporal.Time, temporal.Time, error) {
	gm, err := t.loadGraphMeta()
	if err != nil {
		return 0, 0, err
	}
	return gm.Start, gm.End, nil
}

// validateEvents enforces the strictly-increasing-time contract.
func validateEvents(events []graph.Event) error {
	for i := 1; i < len(events); i++ {
		if events[i].Time <= events[i-1].Time {
			return fmt.Errorf("core: event %d time %d not after previous time %d (strictly increasing times required)",
				i, events[i].Time, events[i-1].Time)
		}
	}
	return nil
}
