package baseline

import (
	"fmt"
	"math/rand"
	"testing"

	"hgs/internal/core"
	"hgs/internal/graph"
	"hgs/internal/kvstore"
	"hgs/internal/temporal"
)

// genHistory mirrors the core test generator: strictly increasing times,
// structural and attribute churn including deletions.
func genHistory(seed int64, n, idSpace int) []graph.Event {
	rng := rand.New(rand.NewSource(seed))
	evs := make([]graph.Event, 0, n)
	for i := 0; i < n; i++ {
		e := graph.Event{Time: temporal.Time(10 * (i + 1))}
		u := graph.NodeID(rng.Intn(idSpace))
		v := graph.NodeID(rng.Intn(idSpace))
		switch r := rng.Intn(20); {
		case r < 6:
			e.Kind, e.Node = graph.AddNode, u
		case r < 12:
			e.Kind, e.Node, e.Other = graph.AddEdge, u, v
		case r < 14:
			e.Kind, e.Node, e.Other = graph.RemoveEdge, u, v
		case r < 15:
			e.Kind, e.Node = graph.RemoveNode, u
		case r < 18:
			e.Kind, e.Node, e.Key, e.Value = graph.SetNodeAttr, u, "label", fmt.Sprintf("L%d", rng.Intn(4))
		default:
			e.Kind, e.Node, e.Other, e.Key, e.Value = graph.SetEdgeAttr, u, v, "w", fmt.Sprintf("%d", rng.Intn(9))
		}
		evs = append(evs, e)
	}
	return evs
}

func oracle(events []graph.Event, tt temporal.Time) *graph.Graph {
	g := graph.New()
	for _, e := range events {
		if e.Time > tt {
			break
		}
		g.Apply(e)
	}
	return g
}

func newStore() *kvstore.Cluster {
	return kvstore.NewCluster(kvstore.Config{Machines: 2, Replication: 1})
}

func allIndexes(t *testing.T) map[string]Index {
	t.Helper()
	tgiCfg := core.DefaultConfig()
	tgiCfg.TimespanEvents = 150
	tgiCfg.EventlistSize = 30
	tgiCfg.PartitionSize = 10
	tgiCfg.HorizontalPartitions = 2
	return map[string]Index{
		"log":          NewLogIndex(newStore(), 30),
		"copy":         NewCopyIndex(newStore()),
		"copy+log":     NewCopyLogIndex(newStore(), 60, 30),
		"node-centric": NewNodeCentricIndex(newStore(), 30),
		"deltagraph":   NewDeltaGraph(newStore(), 30),
		"tgi":          NewTGIAdapter("tgi", newStore(), tgiCfg),
	}
}

func TestAllIndexesSnapshotAgainstOracle(t *testing.T) {
	events := genHistory(21, 300, 25)
	for name, ix := range allIndexes(t) {
		t.Run(name, func(t *testing.T) {
			if err := ix.Build(events); err != nil {
				t.Fatalf("Build: %v", err)
			}
			for _, tt := range []temporal.Time{0, 155, 1000, 1505, 2250, 3000, 5000} {
				got, err := ix.Snapshot(tt)
				if err != nil {
					t.Fatalf("Snapshot(%d): %v", tt, err)
				}
				want := oracle(events, tt)
				if !got.Equal(want) {
					t.Fatalf("snapshot at %d differs: got %v want %v", tt, got, want)
				}
			}
		})
	}
}

func TestAllIndexesStaticNodeAgainstOracle(t *testing.T) {
	events := genHistory(22, 300, 25)
	for name, ix := range allIndexes(t) {
		t.Run(name, func(t *testing.T) {
			if err := ix.Build(events); err != nil {
				t.Fatalf("Build: %v", err)
			}
			for _, tt := range []temporal.Time{800, 2100, 3000} {
				want := oracle(events, tt)
				for id := graph.NodeID(0); id < 25; id += 5 {
					got, err := ix.StaticNode(id, tt)
					if err != nil {
						t.Fatal(err)
					}
					wantNS := want.Node(id)
					if (got == nil) != (wantNS == nil) {
						t.Fatalf("node %d at %d: presence mismatch", id, tt)
					}
					if got != nil && !got.Equal(wantNS) {
						t.Fatalf("node %d at %d: state mismatch", id, tt)
					}
				}
			}
		})
	}
}

func TestAllIndexesNodeVersionsReplay(t *testing.T) {
	events := genHistory(23, 300, 25)
	ts, te := temporal.Time(400), temporal.Time(2600)
	for name, ix := range allIndexes(t) {
		t.Run(name, func(t *testing.T) {
			if err := ix.Build(events); err != nil {
				t.Fatalf("Build: %v", err)
			}
			for id := graph.NodeID(0); id < 25; id += 6 {
				h, err := ix.NodeVersions(id, ts, te)
				if err != nil {
					t.Fatal(err)
				}
				// Initial must match the oracle at ts.
				wantInit := oracle(events, ts).Node(id)
				if (h.Initial == nil) != (wantInit == nil) || (h.Initial != nil && !h.Initial.Equal(wantInit)) {
					t.Fatalf("node %d: initial mismatch", id)
				}
				// Replaying the history must land on the oracle state at
				// probe times (event sets differ across designs — Copy
				// synthesizes diffs — but the reconstructed states must
				// agree).
				for _, tt := range []temporal.Time{900, 1700, 2500} {
					g := graph.New()
					if h.Initial != nil {
						g.PutNode(h.Initial.Clone())
					}
					for _, e := range h.Events {
						if e.Time > tt {
							break
						}
						g.Apply(e)
					}
					got := g.Node(id)
					want := oracle(events, tt).Node(id)
					if (got == nil) != (want == nil) {
						t.Fatalf("node %d at %d: presence mismatch (%s)", id, tt, name)
					}
					if got != nil && !got.Equal(want) {
						t.Fatalf("node %d at %d: state mismatch (%s)\n got %+v\nwant %+v", id, tt, name, got, want)
					}
				}
			}
		})
	}
}

func TestStorageOrdering(t *testing.T) {
	// Table 1, Size column: Copy >> Copy+Log > Node-centric ≈ 2·Log > Log.
	events := genHistory(24, 400, 30)
	sizes := make(map[string]int64)
	for name, ix := range allIndexes(t) {
		if err := ix.Build(events); err != nil {
			t.Fatalf("%s build: %v", name, err)
		}
		sizes[name] = ix.StorageBytes()
		if sizes[name] <= 0 {
			t.Fatalf("%s reports no storage", name)
		}
	}
	if !(sizes["copy"] > sizes["copy+log"]) {
		t.Errorf("Copy (%d) should exceed Copy+Log (%d)", sizes["copy"], sizes["copy+log"])
	}
	if !(sizes["copy+log"] > sizes["log"]) {
		t.Errorf("Copy+Log (%d) should exceed Log (%d)", sizes["copy+log"], sizes["log"])
	}
	if !(sizes["node-centric"] > sizes["log"]) {
		t.Errorf("Node-centric (%d) should exceed Log (%d) via edge replication", sizes["node-centric"], sizes["log"])
	}
	if !(sizes["copy"] > sizes["tgi"]) {
		t.Errorf("Copy (%d) should exceed TGI (%d)", sizes["copy"], sizes["tgi"])
	}
}

func TestReadCountShape(t *testing.T) {
	// The qualitative access-cost shape of Table 1, measured in store
	// reads: for snapshots, Log reads much more than Copy+Log; for node
	// versions, node-centric reads far less than Copy+Log.
	events := genHistory(25, 600, 40)
	logIx := NewLogIndex(newStore(), 30)
	clIx := NewCopyLogIndex(newStore(), 120, 30)
	ncIx := NewNodeCentricIndex(newStore(), 30)
	for _, ix := range []Index{logIx, clIx, ncIx} {
		if err := ix.Build(events); err != nil {
			t.Fatal(err)
		}
	}
	readsOf := func(st *kvstore.Cluster, f func()) int64 {
		st.ResetMetrics()
		f()
		return st.Metrics().Reads
	}
	lateTime := temporal.Time(5800)
	logReads := readsOf(logIx.store, func() { logIx.Snapshot(lateTime) })
	clReads := readsOf(clIx.store, func() { clIx.Snapshot(lateTime) })
	if logReads <= clReads {
		t.Errorf("late snapshot: Log reads (%d) should exceed Copy+Log reads (%d)", logReads, clReads)
	}
	ncReads := readsOf(ncIx.store, func() { ncIx.NodeVersions(1, 0, 6000) })
	clvReads := readsOf(clIx.store, func() { clIx.NodeVersions(1, 0, 6000) })
	if ncReads >= clvReads {
		t.Errorf("node versions: node-centric reads (%d) should be below Copy+Log reads (%d)", ncReads, clvReads)
	}
}

func TestCostTableShapes(t *testing.T) {
	p := DeriveCostParams(1_000_000, 50_000, 1000, 2, 500)
	rows := CostTable(p)
	if len(rows) != 6 {
		t.Fatalf("want 6 rows, got %d", len(rows))
	}
	byName := map[string]CostRow{}
	for _, r := range rows {
		byName[r.Index] = r
	}
	// Size: Log < DeltaGraph < TGI << Copy; Copy+Log in between.
	if !(byName["Log"].Size < byName["DeltaGraph"].Size &&
		byName["DeltaGraph"].Size < byName["TGI"].Size &&
		byName["TGI"].Size < byName["Copy"].Size) {
		t.Errorf("size ordering wrong: %+v", byName)
	}
	// Snapshot fetches: TGI == DeltaGraph << Log.
	if byName["TGI"].Snapshot.Fetches != byName["DeltaGraph"].Snapshot.Fetches {
		t.Error("TGI and DeltaGraph snapshot fetch counts should match")
	}
	if byName["Log"].Snapshot.Work <= byName["TGI"].Snapshot.Work {
		t.Error("Log snapshot work should exceed TGI")
	}
	// Static vertex: TGI beats DeltaGraph by the partition factor.
	if byName["TGI"].StaticVertex.Work >= byName["DeltaGraph"].StaticVertex.Work {
		t.Error("TGI static vertex work should be below DeltaGraph (partitioned read)")
	}
	// Vertex versions: TGI ≈ |V| scale, far below Copy+Log's |G|.
	if byName["TGI"].VertexVersions.Work >= byName["Copy+Log"].VertexVersions.Work {
		t.Error("TGI vertex versions work should be below Copy+Log")
	}
}

func TestCostParamsDerivation(t *testing.T) {
	p := DeriveCostParams(1000, 100, 100, 2, 10)
	if p.TreeHeight < 2 {
		t.Errorf("tree height %v too small for 11 leaves", p.TreeHeight)
	}
	if p.Partitions != 10 {
		t.Errorf("partitions = %v, want 10", p.Partitions)
	}
	if p.Changes != 1000 || p.Nodes != 100 {
		t.Error("basic params not copied")
	}
}

func TestQueryCostString(t *testing.T) {
	s := QueryCost{Work: 1234, Fetches: 7}.String()
	if s == "" {
		t.Fatal("empty cost string")
	}
}
