package core

import (
	"fmt"
	"sort"
	"sync"

	"hgs/internal/delta"
	"hgs/internal/graph"
	"hgs/internal/temporal"
)

// runParallel executes tasks with c concurrent query-processor workers
// (the paper's QPs, Figure 3c): the query manager plans the key set and
// the QPs fetch and decode in parallel.
func runParallel(c int, tasks []func() error) error {
	if c < 1 {
		c = 1
	}
	if c > len(tasks) {
		c = len(tasks)
	}
	if c <= 1 {
		for _, task := range tasks {
			if err := task(); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	ch := make(chan func() error)
	for i := 0; i < c; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for task := range ch {
				if err := task(); err != nil {
					errOnce.Do(func() { firstErr = err })
				}
			}
		}()
	}
	for _, task := range tasks {
		ch <- task
	}
	close(ch)
	wg.Wait()
	return firstErr
}

// eventLess is a deterministic total order over events: by time, then by
// the remaining fields. Original events have unique times; only the
// build-time expansion of RemoveNode produces same-time groups, and those
// converge to the same state under any order.
func eventLess(a, b graph.Event) bool {
	if a.Time != b.Time {
		return a.Time < b.Time
	}
	if a.Kind != b.Kind {
		return a.Kind < b.Kind
	}
	if a.Node != b.Node {
		return a.Node < b.Node
	}
	if a.Other != b.Other {
		return a.Other < b.Other
	}
	if a.Key != b.Key {
		return a.Key < b.Key
	}
	return a.Value < b.Value
}

// mergeSortEvents merges per-partition event streams into one
// chronological stream, dropping the duplicates that arise because edge
// events are replicated into both endpoints' micro-eventlists.
func mergeSortEvents(lists [][]graph.Event) []graph.Event {
	var all []graph.Event
	for _, l := range lists {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return eventLess(all[i], all[j]) })
	out := all[:0]
	for i, e := range all {
		if i > 0 && e == all[i-1] {
			continue
		}
		out = append(out, e)
	}
	return out
}

// GetSnapshot retrieves the state of the graph at time tt (Algorithm 1):
// fetch the micro-deltas along the root-to-leaf path nearest below tt in
// every horizontal partition, sum them in path order, then replay the
// boundary eventlist up to tt.
func (t *TGI) GetSnapshot(tt temporal.Time, opts *FetchOptions) (*graph.Graph, error) {
	tm, err := t.timespanFor(tt)
	if err != nil {
		return nil, err
	}
	leaf := tm.leafFor(tt)
	path := tm.LeafPaths[leaf]
	ns := t.cfg.HorizontalPartitions

	type deltaRow struct {
		sid, did int
		parts    []*delta.Delta
	}
	deltaRows := make([]deltaRow, 0, ns*len(path))
	eventLists := make([][]graph.Event, 0, ns)
	var mu sync.Mutex

	var tasks []func() error
	for sid := 0; sid < ns; sid++ {
		pkey := placementKey(tm.TSID, sid)
		for _, did := range path {
			sid, did := sid, did
			tasks = append(tasks, func() error {
				rows := t.store.ScanPrefix(TableDeltas, pkey, deltaPrefix(did))
				parts := make([]*delta.Delta, 0, len(rows))
				for _, row := range rows {
					d, err := t.cdc.DecodeDelta(row.Value)
					if err != nil {
						return fmt.Errorf("core: decode delta %s/%s: %w", pkey, row.CKey, err)
					}
					parts = append(parts, d)
				}
				mu.Lock()
				deltaRows = append(deltaRows, deltaRow{sid: sid, did: did, parts: parts})
				mu.Unlock()
				return nil
			})
		}
		if leaf < tm.EventlistCount {
			el := leaf
			tasks = append(tasks, func() error {
				rows := t.store.ScanPrefix(TableEvents, pkey, eventPrefix(el))
				for _, row := range rows {
					evs, err := t.cdc.DecodeEvents(row.Value)
					if err != nil {
						return fmt.Errorf("core: decode events %s/%s: %w", pkey, row.CKey, err)
					}
					mu.Lock()
					eventLists = append(eventLists, evs)
					mu.Unlock()
				}
				return nil
			})
		}
	}
	if err := runParallel(t.cfg.clients(opts), tasks); err != nil {
		return nil, err
	}

	// Merge: per horizontal partition, apply path deltas in root→leaf
	// order (delta sum). Partitions own disjoint node sets, so each sid
	// merges into its own graph in parallel and the per-sid graphs then
	// combine by moving states.
	didOrder := make(map[int]int, len(path))
	for i, did := range path {
		didOrder[did] = i
	}
	sort.Slice(deltaRows, func(i, j int) bool {
		if deltaRows[i].sid != deltaRows[j].sid {
			return deltaRows[i].sid < deltaRows[j].sid
		}
		return didOrder[deltaRows[i].did] < didOrder[deltaRows[j].did]
	})
	sidGraphs := make([]*graph.Graph, ns)
	mergeTasks := make([]func() error, 0, ns)
	for sid := 0; sid < ns; sid++ {
		sid := sid
		mergeTasks = append(mergeTasks, func() error {
			sg := graph.New()
			for _, row := range deltaRows {
				if row.sid != sid {
					continue
				}
				for _, part := range row.parts {
					part.MoveTo(sg)
				}
			}
			sidGraphs[sid] = sg
			return nil
		})
	}
	if err := runParallel(t.cfg.clients(opts), mergeTasks); err != nil {
		return nil, err
	}
	g := graph.New()
	for _, sg := range sidGraphs {
		sg.Range(func(nsn *graph.NodeState) bool {
			g.PutNode(nsn)
			return true
		})
	}
	// Boundary eventlist replay up to and including tt.
	for _, e := range mergeSortEvents(eventLists) {
		if e.Time > tt {
			break
		}
		if err := g.Apply(e); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// fetchMicroPartition reconstructs the state at time tt of one
// micro-partition (tsid, sid, pid): the path micro-deltas plus the
// boundary micro-eventlist prefix. This is the unit of work for node and
// neighborhood queries.
func (t *TGI) fetchMicroPartition(tm *TimespanMeta, sid, pid int, tt temporal.Time) (*graph.Graph, error) {
	leaf := tm.leafFor(tt)
	pkey := placementKey(tm.TSID, sid)
	g := graph.New()
	for _, did := range tm.LeafPaths[leaf] {
		blob, ok := t.store.Get(TableDeltas, pkey, deltaCKey(did, pid))
		if !ok {
			continue
		}
		d, err := t.cdc.DecodeDelta(blob)
		if err != nil {
			return nil, fmt.Errorf("core: decode delta %s/%s: %w", pkey, deltaCKey(did, pid), err)
		}
		d.MoveTo(g)
	}
	if leaf < tm.EventlistCount {
		if blob, ok := t.store.Get(TableEvents, pkey, eventCKey(leaf, pid)); ok {
			evs, err := t.cdc.DecodeEvents(blob)
			if err != nil {
				return nil, err
			}
			for _, e := range evs {
				if e.Time > tt {
					break
				}
				if err := g.Apply(e); err != nil {
					return nil, err
				}
			}
		}
	}
	return g, nil
}

// GetNodeAt retrieves the state of a single node at time tt, or nil if
// the node does not exist then. Only the node's own micro-partition chain
// is read (the entity-centric access path of Table 1's TGI row).
func (t *TGI) GetNodeAt(id graph.NodeID, tt temporal.Time) (*graph.NodeState, error) {
	tm, err := t.timespanFor(tt)
	if err != nil {
		return nil, err
	}
	sid := t.sidOf(id)
	pid, err := t.pidOf(tm, sid, id)
	if err != nil {
		return nil, err
	}
	g, err := t.fetchMicroPartition(tm, sid, pid, tt)
	if err != nil {
		return nil, err
	}
	ns := g.Node(id)
	if ns == nil {
		return nil, nil
	}
	return ns.Clone(), nil
}
