package obs

import (
	"strings"
	"testing"
)

// TestPrometheusGolden pins the exact exposition text for a registry
// with all three metric kinds, labeled and unlabeled series, and a
// histogram with samples in interior and overflow buckets — the format
// /metrics serves.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("hgs_reqs_total", "Total requests.").Add(42)
	r.Counter("hgs_reqs_total", "Total requests.", L("op", "snapshot")).Add(7)
	r.Gauge("hgs_cache_bytes", "Resident cache bytes.").Set(1024)
	r.CounterFunc("hgs_ext_total", "Sampled external counter.", func() float64 { return 3 })
	h := r.Histogram("hgs_lat_seconds", "Latency.", []float64{0.001, 0.01, 0.1}, L("op", "snapshot"))
	h.Observe(0.0005)
	h.Observe(0.05)
	h.Observe(0.05)
	h.Observe(5) // overflow

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP hgs_reqs_total Total requests.
# TYPE hgs_reqs_total counter
hgs_reqs_total 42
hgs_reqs_total{op="snapshot"} 7
# HELP hgs_cache_bytes Resident cache bytes.
# TYPE hgs_cache_bytes gauge
hgs_cache_bytes 1024
# HELP hgs_ext_total Sampled external counter.
# TYPE hgs_ext_total counter
hgs_ext_total 3
# HELP hgs_lat_seconds Latency.
# TYPE hgs_lat_seconds histogram
hgs_lat_seconds_bucket{op="snapshot",le="0.001"} 1
hgs_lat_seconds_bucket{op="snapshot",le="0.01"} 1
hgs_lat_seconds_bucket{op="snapshot",le="0.1"} 3
hgs_lat_seconds_bucket{op="snapshot",le="+Inf"} 4
hgs_lat_seconds_sum{op="snapshot"} 5.1005
hgs_lat_seconds_count{op="snapshot"} 4
`
	if got := b.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestPrometheusLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("m_total", "", L("path", `a"b\c`)).Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `path="a\"b\\c"`) {
		t.Fatalf("label not escaped: %s", b.String())
	}
}

func TestFormatValue(t *testing.T) {
	for _, tc := range []struct {
		v    float64
		want string
	}{
		{0, "0"}, {1024, "1024"}, {0.25, "0.25"}, {inf, "+Inf"},
	} {
		if got := formatValue(tc.v); got != tc.want {
			t.Fatalf("formatValue(%v) = %q, want %q", tc.v, got, tc.want)
		}
	}
}
