package core

import "errors"

// Sentinel errors of the query API. Retrieval paths wrap these with
// fmt.Errorf("...: %w", ...) so call sites classify failures with
// errors.Is instead of matching message strings; the hgs package
// re-exports them and the serve layer maps them onto HTTP status codes.
var (
	// ErrNotLoaded reports a query against a store that holds no index
	// yet (no graph metadata / zero timespans): nothing was built or
	// appended, and a durable open found an empty directory.
	ErrNotLoaded = errors.New("index not loaded")
	// ErrClosed reports an operation on a store whose Close has begun.
	ErrClosed = errors.New("store closed")
	// ErrNodeNotFound reports a node absent at the queried time. Core
	// retrievals return (nil, nil) for absence; the boundary layers
	// construct errors from this value where absence must be an error
	// (e.g. an HTTP 404).
	ErrNodeNotFound = errors.New("node not found")
	// ErrOutOfRange reports a query time outside the indexed history
	// where the caller asked for strict range checking.
	ErrOutOfRange = errors.New("time out of indexed range")
)
