package obs

import (
	"math"
	"sync/atomic"
)

// DefLatencyBuckets are the default histogram bounds for latency
// observations in seconds: log-spaced from 1µs to ~67s with a growth
// factor of 2 (27 bounds plus the implicit +Inf bucket). Wide enough
// for both sub-millisecond cache-served retrievals and multi-second
// simulated cluster scans, cheap enough to expose per operation.
var DefLatencyBuckets = ExpBuckets(1e-6, 2, 27)

// ExpBuckets returns n log-spaced bucket upper bounds starting at
// start and growing by factor (> 1) per bucket.
func ExpBuckets(start, factor float64, n int) []float64 {
	if n < 1 || start <= 0 || factor <= 1 {
		return nil
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// Histogram is a fixed-bucket distribution: counts per bucket, total
// count and sum, all maintained with atomics so Observe is lock-free
// and safe under the race detector. Quantiles are estimated from the
// bucket counts (see HistSnapshot.Quantile). A nil *Histogram is
// valid and records nothing.
type Histogram struct {
	bounds []float64       // ascending upper bounds; +Inf implicit
	counts []atomic.Uint64 // len(bounds)+1, last is the +Inf bucket
	count  atomic.Uint64
	sum    atomicFloat
}

// atomicFloat is an atomically updated float64 (CAS on the bit
// pattern; Add loops are uncontended enough at observation rates).
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) Add(v float64) {
	for {
		old := f.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

func (f *atomicFloat) Load() float64 { return math.Float64frombits(f.bits.Load()) }

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefLatencyBuckets
	}
	bs := append([]float64(nil), bounds...)
	return &Histogram{bounds: bs, counts: make([]atomic.Uint64, len(bs)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// First bound >= v (binary search over ~27 bounds).
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.counts[lo].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// snapshot captures the histogram's current state. Buckets are read
// without a global lock, so a snapshot taken under concurrent Observe
// traffic is a consistent-enough view (each bucket individually
// exact); diffs of quiesced before/after pairs are exact.
func (h *Histogram) snapshot() HistSnapshot {
	if h == nil {
		return HistSnapshot{}
	}
	out := HistSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    h.sum.Load(),
	}
	for i := range h.counts {
		out.Counts[i] = h.counts[i].Load()
	}
	return out
}

// HistSnapshot is an immutable copy of a histogram's state, as held in
// a Snapshot and returned by diffs.
type HistSnapshot struct {
	// Bounds are the bucket upper bounds (ascending, +Inf implicit).
	Bounds []float64
	// Counts holds per-bucket sample counts, one longer than Bounds
	// (the last is the +Inf overflow bucket). Non-cumulative.
	Counts []uint64
	// Count and Sum are the total sample count and value sum.
	Count uint64
	Sum   float64
}

// Sub returns the per-bucket difference h - prev: the distribution of
// the samples observed between the two snapshots. Mismatched bounds
// (e.g. prev is the zero value) return h unchanged.
func (h HistSnapshot) Sub(prev HistSnapshot) HistSnapshot {
	if len(prev.Counts) != len(h.Counts) {
		return h
	}
	out := HistSnapshot{
		Bounds: h.Bounds,
		Counts: make([]uint64, len(h.Counts)),
		Count:  h.Count - prev.Count,
		Sum:    h.Sum - prev.Sum,
	}
	for i := range h.Counts {
		out.Counts[i] = h.Counts[i] - prev.Counts[i]
	}
	return out
}

// Merge returns the combined distribution of two snapshots with
// identical bounds — how per-op deltas aggregate into one pass-level
// distribution for quantile reporting. A zero-value argument returns h
// unchanged; otherwise mismatched bounds also return h unchanged.
func (h HistSnapshot) Merge(o HistSnapshot) HistSnapshot {
	if len(o.Counts) == 0 {
		return h
	}
	if len(h.Counts) == 0 {
		return o
	}
	if len(h.Counts) != len(o.Counts) {
		return h
	}
	out := HistSnapshot{
		Bounds: h.Bounds,
		Counts: make([]uint64, len(h.Counts)),
		Count:  h.Count + o.Count,
		Sum:    h.Sum + o.Sum,
	}
	for i := range h.Counts {
		out.Counts[i] = h.Counts[i] + o.Counts[i]
	}
	return out
}

// Quantile estimates the q-quantile (0 <= q <= 1) of the recorded
// distribution by linear interpolation inside the bucket holding the
// target rank — the classic fixed-bucket estimator, accurate to the
// bucket resolution (a factor-2 log bucket bounds the estimate within
// 2x of the true value). Returns 0 for an empty histogram; samples in
// the +Inf bucket report the largest finite bound.
func (h HistSnapshot) Quantile(q float64) float64 {
	if h.Count == 0 || len(h.Counts) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.Count)
	var seen float64
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		next := seen + float64(c)
		if next >= rank {
			lower := 0.0
			if i > 0 {
				lower = h.Bounds[i-1]
			}
			if i >= len(h.Bounds) {
				// +Inf bucket: no upper bound to interpolate toward.
				return h.Bounds[len(h.Bounds)-1]
			}
			upper := h.Bounds[i]
			frac := (rank - seen) / float64(c)
			if frac < 0 {
				frac = 0
			}
			return lower + (upper-lower)*frac
		}
		seen = next
	}
	return h.Bounds[len(h.Bounds)-1]
}

// Mean returns the exact mean of the recorded samples (Sum/Count), 0
// when empty.
func (h HistSnapshot) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}
