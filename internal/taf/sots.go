package taf

import (
	"sort"

	"hgs/internal/core"
	"hgs/internal/graph"
	"hgs/internal/sparklite"
	"hgs/internal/temporal"
)

// SubgraphT is a temporal subgraph (paper §5.1): the states of a k-hop
// neighborhood over a time range, stored as the initial subgraph plus
// chronological events over its members.
type SubgraphT struct {
	sh *core.SubgraphHistory
}

// newSubgraphT wraps a fetched subgraph history.
func newSubgraphT(sh *core.SubgraphHistory) *SubgraphT { return &SubgraphT{sh: sh} }

// Root returns the neighborhood's center node.
func (st *SubgraphT) Root() graph.NodeID { return st.sh.Root }

// Span returns the covered time range.
func (st *SubgraphT) Span() temporal.Interval { return st.sh.Interval }

// StateAt materializes the subgraph as of tt (paper: getVersionAt,
// returning an in-memory Graph object).
func (st *SubgraphT) StateAt(tt temporal.Time) *graph.Graph { return st.sh.StateAt(tt) }

// Members returns the tracked node set.
func (st *SubgraphT) Members() []graph.NodeID { return st.sh.Members }

// ChangePoints returns the distinct times at which the subgraph changed.
func (st *SubgraphT) ChangePoints() []temporal.Time { return st.sh.ChangePoints() }

// Events returns the raw change stream over the members.
func (st *SubgraphT) Events() []graph.Event { return st.sh.Events }

// SOTSQuery is the lazy SoTS builder: k-hop neighborhoods around a root
// set over a timeslice.
type SOTSQuery struct {
	h     *Handler
	k     int
	span  temporal.Interval
	roots []graph.NodeID
	pred  func(graph.NodeID) bool
}

// SOTS starts a set-of-temporal-subgraphs query with neighborhood radius
// k (the paper's SOTS(k=1, tgiH)).
func SOTS(h *Handler, k int) *SOTSQuery {
	return &SOTSQuery{h: h, k: max(k, 1), span: temporal.Always}
}

// Roots fixes the subgraph centers explicitly.
func (q *SOTSQuery) Roots(ids ...graph.NodeID) *SOTSQuery {
	out := *q
	out.roots = append([]graph.NodeID(nil), ids...)
	return &out
}

// Select restricts the subgraph centers by predicate (applied to the
// nodes alive at the timeslice start when no explicit roots are given).
func (q *SOTSQuery) Select(pred func(graph.NodeID) bool) *SOTSQuery {
	out := *q
	out.pred = pred
	return &out
}

// Timeslice restricts the SoTS to [start, end).
func (q *SOTSQuery) Timeslice(iv temporal.Interval) *SOTSQuery {
	out := *q
	out.span = iv
	return &out
}

// TimesliceAt restricts the SoTS to a single timepoint.
func (q *SOTSQuery) TimesliceAt(tt temporal.Time) *SOTSQuery {
	return q.Timeslice(temporal.Interval{Start: tt, End: tt + 1})
}

// Fetch materializes the SoTS. Point timeslices over all nodes are
// planned as one snapshot fetch partitioned locally; interval or
// selective queries fetch per-root neighborhood histories in parallel.
func (q *SOTSQuery) Fetch() (*SoTS, error) {
	span := q.span
	if span == temporal.Always {
		lo, hi, err := q.h.tgi.TimeRange()
		if err != nil {
			return nil, err
		}
		span = temporal.Interval{Start: lo - 1, End: hi + 1}
	}
	roots := q.roots
	if roots == nil {
		// Roots default to every node alive at the span start.
		g, err := q.h.tgi.GetSnapshot(span.Start, q.h.fetchOpts())
		if err != nil {
			return nil, err
		}
		if span.Duration() <= 1 {
			// Point timeslice: the snapshot already holds all states; cut
			// neighborhoods locally (the query-planner fast path).
			return sotsFromSnapshot(q.h, g, q.k, span, q.pred), nil
		}
		for _, id := range g.NodeIDs() {
			if q.pred == nil || q.pred(id) {
				roots = append(roots, id)
			}
		}
	} else if q.pred != nil {
		kept := roots[:0]
		for _, id := range roots {
			if q.pred(id) {
				kept = append(kept, id)
			}
		}
		roots = kept
	}
	// Interval fetch: per-root k-hop histories, parallelized on the
	// compute cluster; each worker talks to the index directly.
	rdd := sparklite.Parallelize(q.h.ctx, roots, q.h.ctx.Workers())
	sts := sparklite.Map(rdd, func(id graph.NodeID) *SubgraphT {
		sh, err := q.h.tgi.GetKHopHistory(id, q.k, span.Start, span.End, &core.FetchOptions{Clients: 1})
		if err != nil {
			return nil
		}
		return newSubgraphT(sh)
	}).Filter(func(st *SubgraphT) bool { return st != nil })
	return &SoTS{h: q.h, k: q.k, span: span, rdd: sts.Cache()}, nil
}

// sotsFromSnapshot cuts point-in-time k-hop subgraphs out of one fetched
// snapshot.
func sotsFromSnapshot(h *Handler, g *graph.Graph, k int, span temporal.Interval, pred func(graph.NodeID) bool) *SoTS {
	var roots []graph.NodeID
	for _, id := range g.NodeIDs() {
		if pred == nil || pred(id) {
			roots = append(roots, id)
		}
	}
	rdd := sparklite.Parallelize(h.ctx, roots, h.ctx.Workers())
	sts := sparklite.Map(rdd, func(id graph.NodeID) *SubgraphT {
		sub := g.KHopSubgraph(id, k)
		return newSubgraphT(&core.SubgraphHistory{
			Root:     id,
			K:        k,
			Interval: span,
			Initial:  sub,
			Members:  sub.NodeIDs(),
		})
	})
	return &SoTS{h: h, k: k, span: span, rdd: sts.Cache()}
}

// NewSoTSFromHistories wraps pre-fetched (or synthetically truncated)
// subgraph histories as a SoTS — used by benchmarks and tests that need
// precise control over the version streams.
func NewSoTSFromHistories(h *Handler, k int, span temporal.Interval, hs []*core.SubgraphHistory) *SoTS {
	sts := make([]*SubgraphT, len(hs))
	for i, sh := range hs {
		sts[i] = newSubgraphT(sh)
	}
	return &SoTS{h: h, k: k, span: span, rdd: sparklite.Parallelize(h.ctx, sts, h.ctx.Workers()).Cache()}
}

// SoTS is a set of temporal subgraphs, physically an RDD<SubgraphT>.
type SoTS struct {
	h    *Handler
	k    int
	span temporal.Interval
	rdd  *sparklite.RDD[*SubgraphT]
}

// Span returns the SoTS time range.
func (s *SoTS) Span() temporal.Interval { return s.span }

// K returns the neighborhood radius.
func (s *SoTS) K() int { return s.k }

// RDD exposes the underlying collection.
func (s *SoTS) RDD() *sparklite.RDD[*SubgraphT] { return s.rdd }

// Count returns the number of temporal subgraphs.
func (s *SoTS) Count() int { return s.rdd.Count() }

// Collect returns all temporal subgraphs.
func (s *SoTS) Collect() []*SubgraphT { return s.rdd.Collect() }

// Select filters by a predicate over temporal subgraphs.
func (s *SoTS) Select(pred func(*SubgraphT) bool) *SoTS {
	return &SoTS{h: s.h, k: s.k, span: s.span, rdd: s.rdd.Filter(pred)}
}

// Roots returns the sorted root ids.
func (s *SoTS) Roots() []graph.NodeID {
	sts := s.rdd.Collect()
	out := make([]graph.NodeID, len(sts))
	for i, st := range sts {
		out[i] = st.Root()
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
