package fetch

import "hgs/internal/obs"

// RegisterObs registers the decoded-delta cache counters into r as
// func-backed families sampled at exposition/snapshot time — the same
// numbers CacheStats reports, under stable Prometheus names. A nil
// cache (caching disabled) registers nothing; registering the same
// cache again (a re-attached handle, or several handles sharing one
// DataDir cache) replaces the samplers.
func (c *Cache) RegisterObs(r *obs.Registry) {
	if c == nil || r == nil {
		return
	}
	stat := func(get func(CacheStats) int64) func() float64 {
		return func() float64 { return float64(get(c.Stats())) }
	}
	r.CounterFunc("hgs_cache_hits_total",
		"Positive decoded-delta cache answers (a resident delta or non-empty group).",
		stat(func(s CacheStats) int64 { return s.Hits }))
	r.CounterFunc("hgs_cache_misses_total",
		"Delta requests the cache could not answer.",
		stat(func(s CacheStats) int64 { return s.Misses }))
	r.CounterFunc("hgs_cache_negative_hits_total",
		"Authoritative absence answers — each one an absent-row KV read not issued.",
		stat(func(s CacheStats) int64 { return s.NegativeHits }))
	r.CounterFunc("hgs_cache_eventlist_hits_total",
		"Positive answers served from cached boundary micro-eventlists (subset of hits).",
		stat(func(s CacheStats) int64 { return s.EventlistHits }))
	r.CounterFunc("hgs_cache_evictions_total",
		"Entries evicted to stay inside the byte budget.",
		stat(func(s CacheStats) int64 { return s.Evictions }))
	r.CounterFunc("hgs_cache_admissions_total",
		"Entries accepted into the cache.",
		stat(func(s CacheStats) int64 { return s.Admissions }))
	r.CounterFunc("hgs_cache_admission_rejects_total",
		"Entries or parts the admission policy refused.",
		stat(func(s CacheStats) int64 { return s.AdmissionRejects }))
	r.GaugeFunc("hgs_cache_bytes",
		"Bytes currently resident in the cache.",
		stat(func(s CacheStats) int64 { return s.Bytes }))
	r.GaugeFunc("hgs_cache_protected_bytes",
		"Bytes in the protected (scan-resistant) segment.",
		stat(func(s CacheStats) int64 { return s.ProtectedBytes }))
	r.GaugeFunc("hgs_cache_max_bytes",
		"Configured cache byte budget.",
		stat(func(s CacheStats) int64 { return s.MaxBytes }))
	r.GaugeFunc("hgs_cache_entries",
		"Entries currently resident in the cache.",
		stat(func(s CacheStats) int64 { return int64(s.Entries) }))
	r.GaugeFunc("hgs_cache_protected_share",
		"Adaptive protected-segment share of the byte budget (0 in plain-LRU mode).",
		func() float64 { return c.Stats().ProtectedShare })
}
