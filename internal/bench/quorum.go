package bench

import (
	"fmt"
	"hash/fnv"
	"sort"
	"time"

	"hgs/internal/core"
	"hgs/internal/kvstore"
	"hgs/internal/obs"
)

// QuorumPass is one measured phase of the consistency experiment: the
// same probe workload under different read/write quorum settings and
// replica health, plus the quorum-write latency passes.
type QuorumPass struct {
	Label    string
	Ops      uint64
	P50, P99 float64
	// Store-metrics delta of the phase.
	Reads, Writes, RoundTrips, BytesRead int64
	SimWait                              time.Duration
	DegradedReads, Failovers             int64
	// ReadRepairs must stay zero on a healthy cluster — divergence
	// repaired during normal serving would itself be a bug.
	ReadRepairs int64
	// Anti-entropy streaming volume (sweep phase only; zero when the
	// replicas agree, which is the steady-state claim).
	AERows, AEBytes int64
	// Digest summarizes the phase's query answers; read phases must
	// agree with the R=1 baseline bit-for-bit.
	Digest uint64
}

// quorumShape: r=3 over m=3 machines puts every partition on every
// node, so R/W choices change visit counts, not placement — the
// cleanest read on quorum cost.
const (
	quorumMachines    = 3
	quorumReplication = 3
	quorumWriteOps    = 128
	quorumWriteParts  = 8
)

// QuorumPasses builds an r=3 cluster, indexes Dataset 1, and measures:
// the probe workload at R=1 and R=2 (healthy), R=2 with one replica
// down, and R=2 concurrent with an anti-entropy sweep; then direct KV
// write passes comparing write-all against W=1 with a slow replica.
// The testable core behind QuorumBench and TestQuorumSmoke.
func QuorumPasses(sc Scale) []QuorumPass {
	events := Dataset1(sc)
	cluster, err := kvstore.Open(kvstore.Config{
		Machines:    quorumMachines,
		Replication: quorumReplication,
	})
	if err != nil {
		panic(fmt.Sprintf("bench: quorum cluster: %v", err))
	}
	defer cluster.Close()
	reg := obs.NewRegistry()
	cfg := benchTGIConfig(len(events))
	cfg.Obs = reg
	tgi, err := core.Build(cluster, cfg, events)
	if err != nil {
		panic(fmt.Sprintf("bench: quorum build: %v", err))
	}

	probes := probeTimes(events, 4)
	round := func() uint64 {
		h := fnv.New64a()
		for _, tt := range probes {
			g, err := tgi.GetSnapshot(tt, &core.FetchOptions{Clients: 4})
			if err != nil {
				panic(fmt.Sprintf("bench: quorum snapshot: %v", err))
			}
			fmt.Fprintf(h, "%016x", snapshotDigest(g))
		}
		return h.Sum64()
	}
	round() // warm the query-manager metadata, untimed

	measure := func(label string, phase func() uint64) QuorumPass {
		cluster.ResetMetrics()
		before := reg.Snapshot()
		cluster.SetLatency(kvstore.DefaultLatency())
		digest := phase()
		cluster.Quiesce() // read-repair traffic belongs to the phase that caused it
		cluster.SetLatency(kvstore.LatencyModel{})
		m := cluster.Metrics()
		p := QuorumPass{
			Label:         label,
			Reads:         m.Reads,
			Writes:        m.Writes,
			RoundTrips:    m.RoundTrips,
			BytesRead:     m.BytesRead,
			SimWait:       m.SimWait,
			DegradedReads: m.DegradedReads,
			Failovers:     m.Failovers,
			ReadRepairs:   m.ReadRepairs,
			AERows:        m.AntiEntropyRows,
			AEBytes:       m.AntiEntropyBytes,
			Digest:        digest,
		}
		if d, ok := reg.Snapshot().Diff(before).FamilyHist("hgs_op_duration_seconds"); ok {
			p.Ops = d.Count
			p.P50 = d.Quantile(0.50)
			p.P99 = d.Quantile(0.99)
		}
		return p
	}

	passes := make([]QuorumPass, 0, 6)
	passes = append(passes, measure("read-r1", round))

	cluster.SetQuorum(2, quorumReplication)
	passes = append(passes, measure("read-r2", round))

	passes = append(passes, measure("read-r2-degraded", func() uint64 {
		if err := cluster.FailNode(0); err != nil {
			panic(fmt.Sprintf("bench: quorum fail node: %v", err))
		}
		d := round()
		if err := cluster.ReviveNode(0); err != nil {
			panic(fmt.Sprintf("bench: quorum revive node: %v", err))
		}
		return d
	}))

	passes = append(passes, measure("read-r2-antientropy", func() uint64 {
		done := make(chan error, 1)
		go func() {
			_, err := cluster.RepairPartitions()
			done <- err
		}()
		d := round()
		if err := <-done; err != nil {
			panic(fmt.Sprintf("bench: quorum anti-entropy: %v", err))
		}
		return d
	}))

	// Quorum-write latency: one replica is slow (injected latency, no
	// errors). Write-all waits for it on every Put; W=1 acks from the
	// fastest replica and completes the slow apply in the background.
	writePass := func(label string, w int) QuorumPass {
		cluster.SetQuorum(1, w)
		cluster.ResetMetrics()
		samples := make([]time.Duration, 0, quorumWriteOps)
		for i := 0; i < quorumWriteOps; i++ {
			pkey := fmt.Sprintf("wq%d", i%quorumWriteParts)
			ckey := fmt.Sprintf("row-%04d", i)
			t0 := time.Now()
			cluster.Put("bench_quorum", pkey, ckey, []byte(label))
			samples = append(samples, time.Since(t0))
		}
		cluster.Quiesce() // charge the background tails to this pass
		m := cluster.Metrics()
		sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
		return QuorumPass{
			Label:      label,
			Ops:        uint64(len(samples)),
			P50:        samples[len(samples)/2].Seconds(),
			P99:        samples[len(samples)*99/100].Seconds(),
			Writes:     m.Writes,
			RoundTrips: m.RoundTrips,
			SimWait:    m.SimWait,
		}
	}
	if err := cluster.InjectFault(1, &kvstore.Fault{ExtraLatency: 300 * time.Microsecond}); err != nil {
		panic(fmt.Sprintf("bench: quorum inject fault: %v", err))
	}
	passes = append(passes, writePass("write-w3-slow-replica", quorumReplication))
	passes = append(passes, writePass("write-w1-slow-replica", 1))
	if err := cluster.InjectFault(1, nil); err != nil {
		panic(fmt.Sprintf("bench: quorum clear fault: %v", err))
	}
	return passes
}

// QuorumBench — the consistency experiment: read amplification and
// latency of quorum reads against the R=1 baseline, degraded quorum
// operation with a replica down, serving concurrent with an
// anti-entropy sweep, and the write-latency spread between write-all
// and W=1 when one replica is slow. Healthy phases must repair nothing
// and every read phase must answer bit-identically.
func QuorumBench(sc Scale) *Result {
	start := time.Now()
	res := &Result{
		ID:     "quorum",
		Title:  fmt.Sprintf("Quorum reads/writes + anti-entropy (m=%d, r=%d)", quorumMachines, quorumReplication),
		XLabel: "phase (0=r1 1=r2 2=r2-degraded 3=r2+sweep 4=w-all 5=w1)",
		YLabel: "seconds",
	}
	passes := QuorumPasses(sc)
	base := passes[0]
	p99 := Series{Name: "p99 (s)"}
	amp := Series{Name: "round-trips per op"}
	identical := true
	res.TableHeader = []string{"phase", "ops", "p50", "p99", "round-trips", "failovers", "read-repairs", "ae-bytes"}
	for i, p := range passes {
		if p.Digest != 0 && p.Digest != base.Digest {
			identical = false
		}
		perOp := 0.0
		if n := p.Reads + p.Writes; n > 0 {
			perOp = float64(p.RoundTrips) / float64(n)
		}
		p99.Points = append(p99.Points, Point{X: float64(i), Y: p.P99})
		amp.Points = append(amp.Points, Point{X: float64(i), Y: perOp})
		res.TableRows = append(res.TableRows, []string{
			p.Label,
			fmt.Sprintf("%d", p.Ops),
			fmt.Sprintf("%.4fs", p.P50),
			fmt.Sprintf("%.4fs", p.P99),
			fmt.Sprintf("%d", p.RoundTrips),
			fmt.Sprintf("%d", p.Failovers),
			fmt.Sprintf("%d", p.ReadRepairs),
			fmt.Sprintf("%d", p.AEBytes),
		})
		res.Passes = append(res.Passes, PassMetrics{
			Label:            p.Label,
			KVReads:          p.Reads,
			KVWrites:         p.Writes,
			RoundTrips:       p.RoundTrips,
			BytesRead:        p.BytesRead,
			SimWaitSeconds:   p.SimWait.Seconds(),
			Ops:              p.Ops,
			P50Seconds:       p.P50,
			P99Seconds:       p.P99,
			DegradedReads:    p.DegradedReads,
			ReadRepairs:      p.ReadRepairs,
			AntiEntropyBytes: p.AEBytes,
		})
	}
	res.Series = append(res.Series, p99, amp)
	r1, r2 := passes[0], passes[1]
	ampRatio := 0.0
	if r1.RoundTrips > 0 {
		ampRatio = float64(r2.RoundTrips) / float64(r1.RoundTrips)
	}
	res.Notes = append(res.Notes, fmt.Sprintf(
		"R=2 visits %.2fx the replicas of R=1 for the same workload (%d vs %d round-trips), answers bit-identical: %v",
		ampRatio, r2.RoundTrips, r1.RoundTrips, identical))
	res.Notes = append(res.Notes, fmt.Sprintf(
		"healthy quorum reads repaired nothing (read_repairs=%d) and the concurrent anti-entropy sweep streamed %dB — replicas agree in steady state",
		r2.ReadRepairs+passes[3].ReadRepairs, passes[3].AEBytes))
	res.Notes = append(res.Notes, fmt.Sprintf(
		"degraded R=2: %d failovers, %d degraded reads, digest unchanged with node 0 down",
		passes[2].Failovers, passes[2].DegradedReads))
	wAll, w1 := passes[4], passes[5]
	res.Notes = append(res.Notes, fmt.Sprintf(
		"slow replica (+300µs): write-all p99 %.1fµs vs W=1 p99 %.1fµs — quorum acks hide straggler latency from the caller",
		wAll.P99*1e6, w1.P99*1e6))
	res.Elapsed = time.Since(start)
	return res
}
