package taf

import (
	"sort"

	"hgs/internal/graph"
	"hgs/internal/sparklite"
	"hgs/internal/temporal"
)

// SONQuery is the lazy SoN builder (paper §5.2, Data Fetch): Select and
// Timeslice record the retrieval specification; Fetch ships the combined
// instructions to the TGI query planner and materializes the SoN through
// the parallel fetch protocol of Figure 10 — each query processor's
// stream becomes one RDD partition.
type SONQuery struct {
	h      *Handler
	span   temporal.Interval
	idPred func(graph.NodeID) bool
}

// SON starts a query against the handler's index.
func SON(h *Handler) *SONQuery {
	return &SONQuery{h: h, span: temporal.Always}
}

// Select restricts the SoN to node ids satisfying pred (entity-centric
// selection pushed below the fetch).
func (q *SONQuery) Select(pred func(graph.NodeID) bool) *SONQuery {
	out := *q
	out.idPred = pred
	return &out
}

// Timeslice restricts the SoN to the interval [start, end).
func (q *SONQuery) Timeslice(iv temporal.Interval) *SONQuery {
	out := *q
	out.span = iv
	return &out
}

// TimesliceAt restricts the SoN to the single timepoint tt.
func (q *SONQuery) TimesliceAt(tt temporal.Time) *SONQuery {
	return q.Timeslice(temporal.Interval{Start: tt, End: tt + 1})
}

// Fetch executes the query and returns the materialized SoN.
func (q *SONQuery) Fetch() (*SoN, error) {
	span := q.span
	if span == temporal.Always {
		lo, hi, err := q.h.tgi.TimeRange()
		if err != nil {
			return nil, err
		}
		span = temporal.Interval{Start: lo - 1, End: hi + 1}
	}
	perSid, err := q.h.tgi.FetchNodeHistories(span, q.idPred, q.h.fetchOpts())
	if err != nil {
		return nil, err
	}
	parts := make([][]*NodeT, len(perSid))
	for sid, hs := range perSid {
		parts[sid] = make([]*NodeT, len(hs))
		for i, h := range hs {
			parts[sid][i] = newNodeT(h)
		}
	}
	return &SoN{
		h:    q.h,
		span: span,
		rdd:  sparklite.FromPartitions(q.h.ctx, parts).Cache(),
	}, nil
}

// SoN is a set of temporal nodes over a common span (paper Definition 7),
// physically an RDD<NodeT>.
type SoN struct {
	h    *Handler
	span temporal.Interval
	rdd  *sparklite.RDD[*NodeT]
}

// Span returns the SoN's time range.
func (s *SoN) Span() temporal.Interval { return s.span }

// RDD exposes the underlying collection for custom pipelines.
func (s *SoN) RDD() *sparklite.RDD[*NodeT] { return s.rdd }

// Count returns the number of temporal nodes.
func (s *SoN) Count() int { return s.rdd.Count() }

// Collect returns all temporal nodes (ordered by partition, then id).
func (s *SoN) Collect() []*NodeT { return s.rdd.Collect() }

// IDs returns the sorted node ids.
func (s *SoN) IDs() []graph.NodeID {
	nts := s.rdd.Collect()
	out := make([]graph.NodeID, len(nts))
	for i, nt := range nts {
		out[i] = nt.ID()
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Select filters the SoN by a predicate over temporal nodes (the
// operator keeps temporal and attribute dimensions intact).
func (s *SoN) Select(pred func(*NodeT) bool) *SoN {
	return &SoN{h: s.h, span: s.span, rdd: s.rdd.Filter(pred)}
}

// SelectAttrAt keeps nodes whose attribute key equals value at time tt —
// the common entity filter of the paper's Figure 7(b).
func (s *SoN) SelectAttrAt(key, value string, tt temporal.Time) *SoN {
	return s.Select(func(nt *NodeT) bool {
		ns := nt.StateAt(tt)
		if ns == nil {
			return false
		}
		v, ok := ns.Attr(key)
		return ok && v == value
	})
}

// Timeslice narrows every temporal node to iv.
func (s *SoN) Timeslice(iv temporal.Interval) *SoN {
	sub, ok := s.span.Intersect(iv)
	if !ok {
		sub = temporal.Interval{Start: iv.Start, End: iv.Start}
	}
	return &SoN{
		h:    s.h,
		span: sub,
		rdd:  sparklite.Map(s.rdd, func(nt *NodeT) *NodeT { return nt.Timeslice(sub) }),
	}
}

// Project trims every node's attributes to the given keys (the paper's
// Filter on the attribute dimension).
func (s *SoN) Project(keys ...string) *SoN {
	return &SoN{
		h:    s.h,
		span: s.span,
		rdd:  sparklite.Map(s.rdd, func(nt *NodeT) *NodeT { return nt.Project(keys...) }),
	}
}

// Graph materializes the in-memory graph over the SoN's nodes as of tt,
// keeping only edges whose both endpoints are in the SoN (the paper's
// Graph operator with the optional timepoint parameter).
func (s *SoN) Graph(tt temporal.Time) *graph.Graph {
	states := s.rdd.Collect()
	g := graph.New()
	ids := make([]graph.NodeID, 0, len(states))
	for _, nt := range states {
		if ns := nt.StateAt(tt); ns != nil {
			g.PutNode(ns)
			ids = append(ids, ns.ID)
		}
	}
	return g.Subgraph(ids)
}

// ChangePoints returns the distinct change times across the whole SoN —
// the default timepoint selector for Compare and Evolution.
func (s *SoN) ChangePoints() []temporal.Time {
	lists := sparklite.Map(s.rdd, func(nt *NodeT) []temporal.Time { return nt.ChangePoints() }).Collect()
	seen := make(map[temporal.Time]struct{})
	for _, l := range lists {
		for _, tt := range l {
			seen[tt] = struct{}{}
		}
	}
	out := make([]temporal.Time, 0, len(seen))
	for tt := range seen {
		out = append(out, tt)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
