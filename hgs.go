// Package hgs is the Historical Graph Store: a system for storing large
// volumes of historical graph data and running temporal graph analytics
// against it, reproducing Khurana & Deshpande, "Storing and Analyzing
// Historical Graph Data at Scale" (EDBT 2016).
//
// A Store wraps the two components of the paper:
//
//   - the Temporal Graph Index (TGI), which compactly persists the entire
//     change history of a graph in a (simulated) distributed key-value
//     store and retrieves snapshots, node histories, and neighborhood
//     versions, and
//   - the Temporal Graph Analysis Framework (TAF), which runs
//     set-of-temporal-nodes analytics on a parallel compute engine.
//
// Quickstart:
//
//	store, _ := hgs.Open(hgs.Options{})
//	_ = store.Load(events)                  // chronological events
//	g, _ := store.Snapshot(t)               // graph as of t
//	h, _ := store.NodeHistory(42, t0, t1)   // one node's evolution
//	a := store.Analytics(4)                 // 4 workers
//	son, _ := a.SON().Timeslice(hgs.NewInterval(t0, t1)).Fetch()
//
// # Durable stores
//
// By default the store is in-memory and the index disappears with the
// process. Setting Options.DataDir switches every storage node to the
// disk-backed WAL/segment engine (internal/backend/disklog): the index
// is persisted under that directory, Close flushes it, and a later
// Open with the same DataDir reattaches to the existing index — no
// Load required, queries work immediately:
//
//	store, _ := hgs.Open(hgs.Options{DataDir: "/var/lib/hgs"})
//	if !store.Loaded() {                    // first run only
//		_ = store.Load(events)
//	}
//	g, _ := store.Snapshot(t)               // also after a restart
//	defer store.Close()
//
// The cluster shape (Machines, Replication), the storage engine, and
// the TGI construction parameters are persisted with the data.
// Reopening adopts them: explicitly set Machines/Replication/Engine
// conflicting with the stored values are rejected, while TGI
// construction options (TimespanEvents, Compress, ...) are properties
// of the stored index and are ignored on reattach in favor of the
// persisted configuration.
//
// # Tiered storage and backup
//
// With Engine set to EngineTiered (DataDir required), every storage
// node runs the hot/cold engine: recent writes stay in memory (hot
// tier, durable via a write-ahead log) and a background goroutine
// flushes them into disk segments (cold tier) under the CompactRate
// byte-rate limit, so queries over recent timespans are served without
// disk reads while history stays durable and cheap:
//
//	store, _ := hgs.Open(hgs.Options{
//		DataDir:     "/var/lib/hgs",
//		Engine:      hgs.EngineTiered,
//		HotBytes:    256 << 20, // keep the newest ~256 MiB hot
//		CompactRate: 16 << 20,  // flush at most 16 MiB/s
//	})
//	defer store.Close()
//	st, _ := store.Stats()
//	fmt.Println(st.StoreMetrics.TierHotReads,  // served from memory
//		st.StoreMetrics.TierColdReads)     // fell through to disk
//
// Restarts do not demote the hot working set: reopening a tiered
// DataDir warms memory with the newest cold rows (up to HotBytes, in
// the background) before the old cold-start behavior would have charged
// every post-restart read a disk seek. Options.WarmOnOpen controls it —
// on by default for tiered, WarmOff restores cold starts — and
// Stats().StoreMetrics reports WarmedRows/WarmedBytes plus a
// TierWarming gauge that reads zero once every node finished warming.
//
// Background maintenance is idle-aware: while queries are in flight,
// flushing and compaction throttle to CompactRate and the cold log only
// receives a cheap merge of its small newest segments; after the store
// has been quiet for Options.IdleCompactAfter (default 1s) maintenance
// runs at full speed, draining the hot tier into durable cold segments
// — the drained rows stay memory-resident as warmed copies — and
// running whole-log cold compaction while nobody is waiting on the
// disk (IdleCompactions in Stats counts those passes).
//
// Store.Backup copies a quiesced durable store (any disk engine) into a
// fresh directory that opens like the original:
//
//	_ = store.Backup("/backups/hgs-2026-07-28")
//	copy, _ := hgs.Open(hgs.Options{DataDir: "/backups/hgs-2026-07-28"})
//
// The hgs-inspect command exposes the same with -engine tiered and
// -backup DIR.
//
// Concurrency discipline per DataDir: any number of handles may read a
// disk-engine store concurrently (they share one decoded-delta cache),
// but at most one may write. A tiered store admits ONE live handle at
// a time — its background flusher owns the files — enforced with an
// exclusive directory lock, so a second Open fails fast instead of
// corrupting the store. The lock dies with the process.
//
// # Caching and statistics
//
// Every retrieval runs through a unified fetch layer that plans the key
// set, batches the reads per storage node (one network round-trip per
// machine instead of per key), and serves hot decoded deltas from a
// bytes-bounded cache, so repeated snapshot and node queries mostly
// skip the store. The cache is a segmented LRU (one large scan cannot
// evict the proven-hot protected set) and remembers absence: a point
// read that found no row installs a tiny negative marker, so repeated
// probes of sparse history stop issuing KV reads. Options.CacheBytes
// sizes the cache (default 64 MiB; negative disables it) and
// Store.Stats reports its effectiveness next to the raw store counters:
//
//	store, _ := hgs.Open(hgs.Options{CacheBytes: 256 << 20})
//	_ = store.Load(events)
//	g1, _ := store.Snapshot(t)              // cold: reads the store
//	g2, _ := store.Snapshot(t)              // warm: served from cache
//	st, _ := store.Stats()
//	fmt.Println(st.Cache.Hits, st.Cache.NegativeHits)  // delta cache
//	fmt.Println(st.StoreMetrics.Reads,                 // logical KV ops
//		st.StoreMetrics.RoundTrips)                // machine visits
//
// # Plan tracing
//
// Every retrieval can explain itself: a plan trace records the planned
// key set, the per-table cache-hit / negative-hit / KV-read breakdown,
// and the exact round-trips and simulated wait the call was charged.
// Trace one call by passing FetchOptions.Trace, or set
// Options.TracePlans to keep a ring of recent traces store-side
// (Store.PlanTraces, Stats().Traces, hgs-inspect -trace):
//
//	tr := &hgs.Trace{}
//	g, _ := store.SnapshotWith(t, &hgs.FetchOptions{Trace: tr})
//	rec := tr.Record()
//	fmt.Println(rec.KVReads, rec.CacheHits, rec.NegativeHits)
//
// # Serving
//
// cmd/hgs-server exposes a Store over HTTP/JSON: every query method has
// an endpoint, large snapshot and history responses stream as NDJSON,
// an in-flight limiter sheds overload with 429, and per-request
// deadlines ride the context plumbing below. The store's observability
// endpoints (/metrics, /debug/pprof/*, /traces) mount into any mux via
// Store.DebugHandler. The closed-loop load driver `hgs-bench -run
// serve` replays workload mixes against a spawned server and reports
// QPS and latency quantiles. See README "Serving".
//
// Every retrieval has a ...Ctx variant (SnapshotCtx, NodeCtx, ...)
// taking a context.Context whose deadline and cancellation propagate
// through the fetch layer into the simulated cluster: batched store
// rounds abandon their waits, decode and materialize workers stop at
// partition boundaries, and the call returns ctx.Err() promptly without
// leaking goroutines or polluting the cache. The context-free methods
// are equivalent to passing context.Background().
//
// Failures surface as typed sentinels — ErrNotLoaded, ErrClosed,
// ErrNodeNotFound, ErrOutOfRange — matched with errors.Is; the server
// maps them to HTTP statuses (409, 503, 404, 416, plus 504/499 for
// context.DeadlineExceeded/Canceled).
//
// # API stability
//
// The options surface splits by lifetime, and new knobs land in the
// tier they belong to rather than as new method variants:
//
//   - Index-construction options (Options.TimespanEvents, Arity,
//     Compress, ...) are properties of the stored index: persisted with
//     a DataDir, adopted on reattach, conflicting values rejected.
//   - Process-runtime options (Options.CacheBytes, MaterializeWorkers,
//     TracePlans, DebugAddr, ...) are properties of the reading
//     process: never persisted, kept across a reattach.
//   - Per-call options travel in FetchOptions — the one options struct
//     of the query API (Context, Clients, Trace). Nil always means
//     defaults.
package hgs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"hgs/internal/backend"
	"hgs/internal/backend/disklog"
	"hgs/internal/backend/tiered"
	"hgs/internal/core"
	"hgs/internal/fetch"
	"hgs/internal/graph"
	"hgs/internal/kvstore"
	"hgs/internal/obs"
	"hgs/internal/partition"
	"hgs/internal/ring"
	"hgs/internal/sparklite"
	"hgs/internal/taf"
	"hgs/internal/temporal"
)

// Re-exported model types. The full method sets are documented on the
// internal definitions.
type (
	// Time is a discrete timepoint (user-defined clock: Unix millis,
	// sequence numbers, ...).
	Time = temporal.Time
	// Interval is a half-open time range [Start, End).
	Interval = temporal.Interval
	// NodeID identifies a vertex across the whole history.
	NodeID = graph.NodeID
	// Event is one atomic change to the graph.
	Event = graph.Event
	// EventKind enumerates change types.
	EventKind = graph.EventKind
	// Graph is an in-memory snapshot with the network metrics library.
	Graph = graph.Graph
	// NodeState is a node's state at one point in time.
	NodeState = graph.NodeState
	// Attrs is a key-value attribute map.
	Attrs = graph.Attrs
	// NodeHistory is a node's evolution over an interval.
	NodeHistory = core.NodeHistory
	// SubgraphHistory is a neighborhood's evolution over an interval.
	SubgraphHistory = core.SubgraphHistory
	// FetchOptions tunes a single retrieval (parallel fetch factor c,
	// per-call plan trace).
	FetchOptions = core.FetchOptions
	// Trace collects one retrieval's plan/cache/read breakdown when
	// passed through FetchOptions.Trace (zero value ready; read it back
	// with Record).
	Trace = fetch.Trace
	// TraceRecord is the immutable snapshot of a plan trace, as returned
	// by Trace.Record, Store.PlanTraces and Stats().Traces.
	TraceRecord = fetch.TraceRecord
	// TableTrace is the per-store-table slice of a TraceRecord.
	TableTrace = fetch.TableTrace
	// CacheStats is the decoded-delta cache counter snapshot in
	// Stats().Cache (hits, negative hits, admissions, protected bytes).
	CacheStats = fetch.CacheStats
)

// Typed sentinel errors of the query API, matched with errors.Is. They
// originate in the core layer (so internal packages can return them)
// and surface here; the HTTP server maps each to a status code.
var (
	// ErrNotLoaded: the store holds no index yet — Load a history
	// first (HTTP 409).
	ErrNotLoaded = core.ErrNotLoaded
	// ErrClosed: the store has been Closed (HTTP 503).
	ErrClosed = core.ErrClosed
	// ErrNodeNotFound: the requested node does not exist at the
	// requested time (HTTP 404).
	ErrNodeNotFound = core.ErrNodeNotFound
	// ErrOutOfRange: a requested time lies outside the indexed history
	// (HTTP 416).
	ErrOutOfRange = core.ErrOutOfRange
)

// Event kind constants re-exported for event construction.
const (
	AddNode     = graph.AddNode
	RemoveNode  = graph.RemoveNode
	AddEdge     = graph.AddEdge
	RemoveEdge  = graph.RemoveEdge
	SetNodeAttr = graph.SetNodeAttr
	DelNodeAttr = graph.DelNodeAttr
	SetEdgeAttr = graph.SetEdgeAttr
	DelEdgeAttr = graph.DelEdgeAttr
)

// NewInterval returns the half-open interval [start, end).
func NewInterval(start, end Time) Interval { return temporal.NewInterval(start, end) }

// StorageEngine selects the per-node storage engine of the cluster.
type StorageEngine string

const (
	// EngineAuto picks EngineMemory, or EngineDisk when DataDir is set
	// (today's defaults). Reattaching to an existing DataDir adopts the
	// engine it was created with.
	EngineAuto StorageEngine = ""
	// EngineMemory is the in-process memtable: no durability, the
	// paper's simulated cluster.
	EngineMemory StorageEngine = "memory"
	// EngineDisk is the durable WAL/segment engine (disklog); requires
	// DataDir.
	EngineDisk StorageEngine = "disk"
	// EngineTiered composes a hot in-memory tier over a cold disklog
	// tier with rate-limited background flushing; requires DataDir. See
	// Options.HotBytes and Options.CompactRate.
	EngineTiered StorageEngine = "tiered"
)

func (e StorageEngine) valid() bool {
	switch e {
	case EngineAuto, EngineMemory, EngineDisk, EngineTiered:
		return true
	}
	return false
}

// WarmMode selects the tiered engine's hot-tier warm-up behavior on
// open (Options.WarmOnOpen).
type WarmMode string

const (
	// WarmAuto is the default: warm-up on for the tiered engine (other
	// engines have no tiers to warm).
	WarmAuto WarmMode = ""
	// WarmOn enables restart warm-up explicitly.
	WarmOn WarmMode = "on"
	// WarmOff opens the tiered engine with an empty hot tier, the
	// pre-warm-up behavior (every post-restart read starts cold).
	WarmOff WarmMode = "off"
)

func (m WarmMode) valid() bool {
	switch m {
	case WarmAuto, WarmOn, WarmOff:
		return true
	}
	return false
}

// Options configure a Store. The zero value is a sensible single-machine
// development setup; the fields mirror the paper's knobs.
type Options struct {
	// Machines is the storage cluster size m (default 2).
	Machines int
	// Replication is the storage replication factor r (default 1).
	Replication int
	// VirtualNodes is the number of points each storage node projects
	// onto the consistent-hash placement ring (default 64). Placement
	// depends on it, so the value is persisted with a DataDir store and
	// an explicitly conflicting value is rejected on reopen.
	VirtualNodes int
	// RebalanceRate caps the background data streaming of a topology
	// change (AddStorageNode/RemoveStorageNode) in bytes per second, the
	// CompactRate convention: zero picks the 8 MiB/s default, negative
	// disables the limit. A runtime knob, not persisted.
	RebalanceRate int64
	// ReadQuorum is the number of replicas a storage read consults (R).
	// The default 1 reads one replica (failing over past down nodes);
	// with R > 1 reads fan out, answer with the newest version by stamp
	// and repair stale replicas in the background. Clamped to
	// [1, Replication]. A runtime knob, not persisted.
	ReadQuorum int
	// WriteQuorum is the number of replica acknowledgements a storage
	// write waits for (W); default waits for all. With W < Replication
	// the write returns after W live replicas applied it, the rest
	// complete in the background. R+W > Replication keeps reads
	// covering the latest write. A runtime knob, not persisted.
	WriteQuorum int
	// AntiEntropyInterval, when positive, runs the storage cluster's
	// background replica comparator at this period: per-partition merkle
	// digests across replicas, streaming only divergent partitions
	// (rate-limited by RebalanceRate). Zero disables the loop;
	// Store.RepairPartitions triggers a sweep on demand. A runtime
	// knob, not persisted.
	AntiEntropyInterval time.Duration
	// SimulateLatency enables the storage latency model (off for unit
	// tests, on for benchmarks).
	SimulateLatency bool
	// DataDir, when non-empty, stores every node's data on disk under
	// this directory (one disk engine per node) instead of in
	// memory. The directory is created as needed; reopening a store
	// over an existing DataDir reattaches to the persisted index.
	DataDir string
	// Engine selects the storage engine. The default (EngineAuto)
	// preserves prior behavior: memory, or disk when DataDir is set.
	// EngineTiered keeps hot timespans in memory over a cold disk tier.
	// The engine is persisted with the DataDir; reattaching adopts it,
	// and an explicitly conflicting Engine is rejected.
	Engine StorageEngine
	// HotBytes is the tiered engine's per-node hot-tier budget: once
	// exceeded, background flushing drains the oldest rows to the cold
	// tier (default 32 MiB). A runtime knob, not persisted.
	HotBytes int64
	// CompactRate caps the tiered engine's background flushing in bytes
	// per second so compaction never starves foreground I/O (default
	// 8 MiB/s; negative disables the limit). A runtime knob, not
	// persisted.
	CompactRate int64
	// WarmOnOpen controls the tiered engine's restart warm-up: whether
	// reopening a DataDir repopulates the hot tier from the newest cold
	// rows (up to HotBytes) so post-restart queries over recent
	// timespans skip the cold-read penalty. Default on for tiered
	// (WarmAuto); WarmOff restores the cold-start behavior. A runtime
	// knob, not persisted.
	WarmOnOpen WarmMode
	// IdleCompactAfter is the foreground-quiet window after which the
	// tiered engine's background maintenance stops throttling to
	// CompactRate and runs at full speed — draining the hot tier to
	// durable cold segments (rows stay memory-resident as warmed
	// copies) and compacting the cold log while nobody is waiting on
	// the disk (default 1s; negative disables idle-mode maintenance).
	// A runtime knob, not persisted.
	IdleCompactAfter time.Duration

	// TimespanEvents, EventlistSize, Arity, HorizontalPartitions and
	// PartitionSize are the TGI construction parameters (§4.4); zero
	// values take the defaults (200k, 25k, 2, 4, 500).
	TimespanEvents       int
	EventlistSize        int
	Arity                int
	HorizontalPartitions int
	PartitionSize        int
	// LocalityPartitioning uses min-cut-style micro-partitioning instead
	// of random hashing (§4.5).
	LocalityPartitioning bool
	// Replicate1Hop stores auxiliary frontier micro-deltas to speed up
	// 1-hop neighborhood retrieval (§4.5, Figure 5d).
	Replicate1Hop bool
	// Compress gzip-compresses stored blobs (Figure 13a).
	Compress bool
	// FetchClients is the default parallel fetch factor c (default 4).
	FetchClients int
	// MaterializeWorkers bounds the worker pool that applies fetched
	// micro-deltas and replays boundary eventlists when materializing
	// snapshots and neighborhoods. Zero selects one worker per CPU
	// (runtime.GOMAXPROCS); 1 restores fully sequential
	// materialization. Unlike FetchClients this only changes local CPU
	// parallelism — results and plan traces are identical for any
	// value. A runtime knob of this process — not persisted with a
	// DataDir store.
	MaterializeWorkers int
	// CacheBytes bounds the query manager's decoded-delta cache: hot
	// root-path deltas are decoded once and shared across queries and
	// analytics workers. Zero selects the 64 MiB default; a negative
	// value disables caching. A runtime knob of this process — it is
	// not persisted with a DataDir store.
	CacheBytes int64
	// TracePlans keeps a plan trace for every retrieval — the planned
	// key set and its per-table cache-hit / negative-hit / KV-read
	// breakdown, with exact round-trip and simulated-wait attribution —
	// in a bounded ring surfaced by Store.PlanTraces and Stats().Traces
	// (hgs-inspect -trace prints it). Per-call tracing through
	// FetchOptions.Trace works regardless of this knob. A runtime knob
	// of this process — not persisted with a DataDir store.
	TracePlans bool
	// DebugAddr, when non-empty, serves the store's observability
	// endpoints on this address for the store's lifetime: Prometheus
	// text-format metrics on /metrics, the Go profiler on
	// /debug/pprof/*, and the recent plan traces as JSON on /traces.
	// Use ":0" for an ephemeral port — Store.DebugAddr reports what was
	// bound. Store.ServeDebug starts the same server on demand instead.
	DebugAddr string
}

func (o Options) coreConfig() core.Config {
	cfg := core.DefaultConfig()
	if o.TimespanEvents > 0 {
		cfg.TimespanEvents = o.TimespanEvents
	}
	if o.EventlistSize > 0 {
		cfg.EventlistSize = o.EventlistSize
	}
	if o.Arity > 0 {
		cfg.Arity = o.Arity
	}
	if o.HorizontalPartitions > 0 {
		cfg.HorizontalPartitions = o.HorizontalPartitions
	}
	if o.PartitionSize > 0 {
		cfg.PartitionSize = o.PartitionSize
	}
	if o.LocalityPartitioning {
		cfg.Partitioning = partition.Locality
	}
	cfg.Replicate1Hop = o.Replicate1Hop
	cfg.Compress = o.Compress
	if o.FetchClients > 0 {
		cfg.FetchClients = o.FetchClients
	}
	cfg.MaterializeWorkers = o.MaterializeWorkers
	cfg.CacheBytes = o.CacheBytes
	cfg.TracePlans = o.TracePlans
	return cfg
}

// Store is a Historical Graph Store instance.
type Store struct {
	cluster  *kvstore.Cluster
	tgi      *core.TGI
	obs      *obs.Registry
	loaded   bool
	durable  bool
	engine   StorageEngine
	cacheKey string // shared decoded-delta cache registration (DataDir stores)

	// closeMu guards closed; active refcounts in-flight operations so
	// Close can drain them before tearing the cluster down.
	closeMu sync.Mutex
	closed  bool
	active  sync.WaitGroup

	debugMu sync.Mutex
	debug   *debugServer
}

// beginOp registers an in-flight operation. It fails with ErrClosed
// once Close has begun, and otherwise holds off Close's teardown until
// the matching endOp.
func (s *Store) beginOp() error {
	s.closeMu.Lock()
	defer s.closeMu.Unlock()
	if s.closed {
		return fmt.Errorf("hgs: %w", ErrClosed)
	}
	s.active.Add(1)
	return nil
}

func (s *Store) endOp() { s.active.Done() }

// clusterMeta records the cluster topology and storage engine a data
// directory was created with, so a reopen cannot silently re-shard
// persisted partitions or misread them through the wrong engine.
// Placement names the partition-to-node mapping scheme ("ring" is the
// only current one); Nodes is the explicit member set — a topology
// change (AddStorageNode/RemoveStorageNode) rewrites it at the
// rebalancer's commit point — and VirtualNodes the ring's per-node
// point count, both of which the placement depends on.
type clusterMeta struct {
	Machines     int    `json:"machines"`
	Replication  int    `json:"replication"`
	Engine       string `json:"engine,omitempty"`
	Placement    string `json:"placement,omitempty"`
	Nodes        []int  `json:"nodes,omitempty"`
	VirtualNodes int    `json:"virtual_nodes,omitempty"`
}

// placementRing is the clusterMeta.Placement value of the
// consistent-hash ring scheme.
const placementRing = "ring"

// resolvedMeta is resolveClusterMeta's outcome: the topology to open
// with, and whether cluster.json still needs to be written.
type resolvedMeta struct {
	nodes       []int
	replication int
	vnodes      int
	engine      StorageEngine
	needsWrite  bool
}

// resolveClusterMeta reconciles the requested topology and engine with
// those stored in dataDir. Explicit options conflicting with persisted
// values are an error; unset options adopt them (directories from
// before the engine was recorded read as EngineDisk). needsWrite
// reports that no shape file exists yet — it is written by
// writeClusterMeta only after the store opens successfully, so a failed
// Open cannot stamp a shape into an otherwise empty directory.
//
// Directories from before consistent-hash placement (no "placement"
// field) are refused outright: their partitions were placed by node
// modulo, so opening them through the ring would silently misroute
// every read to nodes that do not hold the data. Rebuild such a store
// by re-loading its event history.
func resolveClusterMeta(dataDir string, opts Options, machines, replication, vnodes int) (resolvedMeta, error) {
	fail := func(err error) (resolvedMeta, error) { return resolvedMeta{}, err }
	requested := opts.Engine
	if requested == EngineAuto {
		requested = EngineDisk
	}
	path := filepath.Join(dataDir, "cluster.json")
	blob, err := os.ReadFile(path)
	switch {
	case err == nil:
		var cm clusterMeta
		if err := json.Unmarshal(blob, &cm); err != nil {
			return fail(fmt.Errorf("hgs: corrupt %s: %w", path, err))
		}
		if cm.Placement == "" {
			return fail(fmt.Errorf("hgs: data dir %s predates consistent-hash placement; its partitions were placed by node modulo and cannot be read through the ring — rebuild the store from its event history", dataDir))
		}
		if cm.Placement != placementRing {
			return fail(fmt.Errorf("hgs: corrupt %s: unknown placement %q", path, cm.Placement))
		}
		if cm.Machines < 1 || cm.Replication < 1 || len(cm.Nodes) != cm.Machines || cm.VirtualNodes < 1 {
			return fail(fmt.Errorf("hgs: corrupt %s: invalid topology m=%d r=%d nodes=%v vnodes=%d", path, cm.Machines, cm.Replication, cm.Nodes, cm.VirtualNodes))
		}
		if opts.Machines > 0 && opts.Machines != cm.Machines {
			return fail(fmt.Errorf("hgs: data dir %s was created with %d machines, not %d", dataDir, cm.Machines, opts.Machines))
		}
		if opts.Replication > 0 && opts.Replication != cm.Replication {
			return fail(fmt.Errorf("hgs: data dir %s was created with replication %d, not %d", dataDir, cm.Replication, opts.Replication))
		}
		if opts.VirtualNodes > 0 && opts.VirtualNodes != cm.VirtualNodes {
			return fail(fmt.Errorf("hgs: data dir %s was created with %d virtual nodes, not %d", dataDir, cm.VirtualNodes, opts.VirtualNodes))
		}
		stored := StorageEngine(cm.Engine)
		if stored == EngineAuto {
			stored = EngineDisk // legacy directory, engine not recorded
		}
		if !stored.valid() || stored == EngineMemory {
			return fail(fmt.Errorf("hgs: corrupt %s: invalid engine %q", path, cm.Engine))
		}
		if opts.Engine != EngineAuto && requested != stored {
			return fail(fmt.Errorf("hgs: data dir %s was created with the %s engine, not %s", dataDir, stored, requested))
		}
		return resolvedMeta{
			nodes:       cm.Nodes,
			replication: cm.Replication,
			vnodes:      cm.VirtualNodes,
			engine:      stored,
		}, nil
	case errors.Is(err, os.ErrNotExist):
		nodes := make([]int, machines)
		for i := range nodes {
			nodes[i] = i
		}
		return resolvedMeta{
			nodes:       nodes,
			replication: replication,
			vnodes:      vnodes,
			engine:      requested,
			needsWrite:  true,
		}, nil
	default:
		return fail(fmt.Errorf("hgs: %w", err))
	}
}

// writeClusterMeta persists the topology durably: tmp file + fsync +
// rename + directory fsync, so a crash leaves either no shape file or
// a complete one — a partial cluster.json would silently re-shard the
// store on the next open. The same path commits topology changes: the
// rebalancer rewrites the node set here before dropping any
// relinquished partition copy.
func writeClusterMeta(dataDir string, nodes []int, replication, vnodes int, engine StorageEngine) error {
	if err := os.MkdirAll(dataDir, 0o755); err != nil {
		return fmt.Errorf("hgs: %w", err)
	}
	blob, _ := json.Marshal(clusterMeta{
		Machines:     len(nodes),
		Replication:  replication,
		Engine:       string(engine),
		Placement:    placementRing,
		Nodes:        nodes,
		VirtualNodes: vnodes,
	})
	path := filepath.Join(dataDir, "cluster.json")
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("hgs: %w", err)
	}
	if _, err := f.Write(blob); err == nil {
		err = f.Sync()
	}
	if err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("hgs: write %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("hgs: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("hgs: %w", err)
	}
	d, err := os.Open(dataDir)
	if err != nil {
		return fmt.Errorf("hgs: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("hgs: sync %s: %w", dataDir, err)
	}
	return nil
}

// sharedCaches anchors one decoded-delta cache per open DataDir, so
// every handle attached to the same stored index shares hot decoded
// deltas instead of each paying its own cold misses. Entries are
// refcounted by Open/Close; the budget of the first opener wins.
var sharedCaches = struct {
	sync.Mutex
	m map[string]*sharedCacheEntry
}{m: make(map[string]*sharedCacheEntry)}

type sharedCacheEntry struct {
	cache *fetch.Cache
	refs  int
}

// acquireSharedCache joins (or creates) the cache shared by dataDir's
// handles. Handles with caching disabled do not join.
func acquireSharedCache(dataDir string, budget int64) (key string, c *fetch.Cache) {
	if budget <= 0 {
		return "", nil
	}
	abs, err := filepath.Abs(dataDir)
	if err != nil {
		abs = dataDir
	}
	key = filepath.Clean(abs)
	sharedCaches.Lock()
	defer sharedCaches.Unlock()
	e := sharedCaches.m[key]
	if e == nil {
		e = &sharedCacheEntry{cache: fetch.NewCache(budget)}
		sharedCaches.m[key] = e
	}
	e.refs++
	return key, e.cache
}

func releaseSharedCache(key string) {
	if key == "" {
		return
	}
	sharedCaches.Lock()
	defer sharedCaches.Unlock()
	if e := sharedCaches.m[key]; e != nil {
		e.refs--
		if e.refs <= 0 {
			delete(sharedCaches.m, key)
		}
	}
}

// Open creates a store per the options. With DataDir unset (or set but
// empty of data) the store starts empty — call Load to index a history.
// With DataDir pointing at an existing store's directory, Open
// reattaches to the persisted index: Loaded reports true and queries
// can run immediately.
func Open(opts Options) (*Store, error) {
	machines := opts.Machines
	if machines < 1 {
		machines = 2
	}
	replication := opts.Replication
	if replication < 1 {
		replication = 1
	}
	vnodes := opts.VirtualNodes
	if vnodes < 1 {
		vnodes = ring.DefaultVirtualNodes
	}
	lat := kvstore.LatencyModel{}
	if opts.SimulateLatency {
		lat = kvstore.DefaultLatency()
	}
	if !opts.Engine.valid() {
		return nil, fmt.Errorf("hgs: unknown storage engine %q", opts.Engine)
	}
	if !opts.WarmOnOpen.valid() {
		return nil, fmt.Errorf("hgs: unknown warm-up mode %q", opts.WarmOnOpen)
	}
	if opts.DataDir == "" && (opts.Engine == EngineDisk || opts.Engine == EngineTiered) {
		return nil, fmt.Errorf("hgs: the %s engine requires DataDir", opts.Engine)
	}
	if opts.DataDir != "" && opts.Engine == EngineMemory {
		return nil, fmt.Errorf("hgs: the memory engine cannot persist; unset DataDir or pick a disk engine")
	}
	cfg := opts.coreConfig()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	// Every store carries its own metrics registry: the cluster and
	// cache counters register into it below and the TGI records per-op
	// latency histograms through cfg.Obs, so /metrics and WriteMetrics
	// see one coherent view of this store without process-global state.
	reg := obs.NewRegistry()
	cfg.Obs = reg
	var (
		factory    backend.Factory
		writeShape bool
		engine     = EngineMemory
		cacheKey   string
		commit     func(nodes []int) error
	)
	nodes := make([]int, machines)
	for i := range nodes {
		nodes[i] = i
	}
	if opts.DataDir != "" {
		rm, err := resolveClusterMeta(opts.DataDir, opts, machines, replication, vnodes)
		if err != nil {
			return nil, err
		}
		nodes, replication, vnodes, engine, writeShape = rm.nodes, rm.replication, rm.vnodes, rm.engine, rm.needsWrite
		// Topology changes persist the new node set at the rebalancer's
		// commit point, before any relinquished copy is dropped.
		dataDir, eng, r, vn := opts.DataDir, engine, replication, vnodes
		commit = func(nodes []int) error {
			return writeClusterMeta(dataDir, nodes, r, vn, eng)
		}
		switch engine {
		case EngineDisk:
			factory = disklog.Factory(opts.DataDir, disklog.Options{})
		case EngineTiered:
			factory = tiered.Factory(opts.DataDir, tiered.Options{
				HotBytes:         opts.HotBytes,
				CompactRate:      opts.CompactRate,
				DisableWarm:      opts.WarmOnOpen == WarmOff,
				IdleCompactAfter: opts.IdleCompactAfter,
			})
		}
		// Handles over the same DataDir share one decoded-delta cache.
		cacheKey, cfg.Cache = acquireSharedCache(opts.DataDir, core.CacheBudget(opts.CacheBytes))
	}
	hintDir := ""
	if opts.DataDir != "" {
		hintDir = filepath.Join(opts.DataDir, "hints")
	}
	cluster, err := kvstore.Open(kvstore.Config{
		Nodes:               nodes,
		Replication:         replication,
		ReadQuorum:          opts.ReadQuorum,
		WriteQuorum:         opts.WriteQuorum,
		HintDir:             hintDir,
		AntiEntropyInterval: opts.AntiEntropyInterval,
		VirtualNodes:        vnodes,
		RebalanceRate:       opts.RebalanceRate,
		Latency:             lat,
		Backend:             factory,
		OnTopologyCommit:    commit,
	})
	if err != nil {
		releaseSharedCache(cacheKey)
		return nil, err
	}
	cluster.RegisterObs(reg)
	tgi, attached, err := core.Attach(cluster, cfg)
	if err != nil {
		cluster.Close()
		releaseSharedCache(cacheKey)
		return nil, err
	}
	if writeShape {
		if err := writeClusterMeta(opts.DataDir, nodes, replication, vnodes, engine); err != nil {
			cluster.Close()
			releaseSharedCache(cacheKey)
			return nil, err
		}
	}
	s := &Store{
		cluster:  cluster,
		tgi:      tgi,
		obs:      reg,
		loaded:   attached,
		durable:  opts.DataDir != "",
		engine:   engine,
		cacheKey: cacheKey,
	}
	if opts.DebugAddr != "" {
		if _, err := s.ServeDebug(opts.DebugAddr); err != nil {
			s.Close()
			return nil, err
		}
	}
	return s, nil
}

// Load builds the index over a complete history. Events must be
// chronological with strictly increasing timestamps.
func (s *Store) Load(events []Event) error {
	if err := s.beginOp(); err != nil {
		return err
	}
	defer s.endOp()
	if s.loaded {
		return fmt.Errorf("hgs: store already loaded; use Append for updates")
	}
	if err := s.tgi.BuildAll(events); err != nil {
		return err
	}
	s.loaded = true
	return s.cluster.Flush()
}

// Append ingests a batch of new events after the indexed history.
func (s *Store) Append(events []Event) error {
	return s.AppendCtx(context.Background(), events)
}

// AppendCtx is Append honoring a context: cancellation is checked
// before the ingest starts. A started ingest always runs to completion
// — aborting it midway would leave a torn index — so the context bounds
// admission, not the write itself.
func (s *Store) AppendCtx(ctx context.Context, events []Event) error {
	if err := s.beginOp(); err != nil {
		return err
	}
	defer s.endOp()
	if err := ctx.Err(); err != nil {
		return err
	}
	if !s.loaded {
		if err := s.tgi.BuildAll(events); err != nil {
			return err
		}
		s.loaded = true
		return s.cluster.Flush()
	}
	if err := s.tgi.Append(events); err != nil {
		return err
	}
	return s.cluster.Flush()
}

// Loaded reports whether the store holds an index — after a Load in
// this process or by reattaching to a durable DataDir.
func (s *Store) Loaded() bool { return s.loaded }

// Durable reports whether the store persists to disk (DataDir set).
func (s *Store) Durable() bool { return s.durable }

// Engine reports the storage engine the store runs on.
func (s *Store) Engine() StorageEngine { return s.engine }

// Close flushes and closes the backing storage engines (and shuts down
// the debug server when one is running). In-flight queries are drained
// first: Close marks the store closed — new operations fail with
// ErrClosed — then waits for active ones to finish before tearing down
// the cluster, so a query can never race a disappearing engine. Close
// is idempotent; the store must not be used afterwards.
func (s *Store) Close() error {
	s.closeMu.Lock()
	if s.closed {
		s.closeMu.Unlock()
		return nil
	}
	s.closed = true
	s.closeMu.Unlock()
	s.active.Wait()
	derr := s.stopDebug()
	releaseSharedCache(s.cacheKey)
	s.cacheKey = ""
	if err := s.cluster.Close(); err != nil {
		return err
	}
	return derr
}

// Backup writes a consistent copy of a quiesced durable store into dir:
// every node engine's on-disk state plus the cluster metadata, laid out
// exactly like a DataDir, so `hgs.Open(Options{DataDir: dir})` opens
// the copy. The store must not receive writes while the backup runs
// (each node is copied under its service lock after a full flush);
// concurrent reads are fine. dir must not already hold a store.
func (s *Store) Backup(dir string) error {
	if !s.durable {
		return fmt.Errorf("hgs: backup requires a durable store (DataDir)")
	}
	if _, err := os.Stat(filepath.Join(dir, "cluster.json")); err == nil {
		return fmt.Errorf("hgs: backup target %s already holds a store", dir)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("hgs: %w", err)
	}
	if err := s.cluster.Flush(); err != nil {
		return err
	}
	if err := s.cluster.Backup(dir); err != nil {
		return err
	}
	// The metadata is written last: a backup without cluster.json is
	// visibly incomplete rather than silently openable.
	cfg := s.cluster.Config()
	return writeClusterMeta(dir, cfg.Nodes, cfg.Replication, cfg.VirtualNodes, s.engine)
}

// Snapshot retrieves the graph as of time tt.
func (s *Store) Snapshot(tt Time) (*Graph, error) {
	return s.SnapshotWith(tt, nil)
}

// SnapshotCtx is Snapshot honoring a context's deadline/cancellation.
func (s *Store) SnapshotCtx(ctx context.Context, tt Time) (*Graph, error) {
	return s.SnapshotWith(tt, &FetchOptions{Context: ctx})
}

// SnapshotWith retrieves a snapshot with explicit fetch options.
func (s *Store) SnapshotWith(tt Time, opts *FetchOptions) (*Graph, error) {
	if err := s.beginOp(); err != nil {
		return nil, err
	}
	defer s.endOp()
	return s.tgi.GetSnapshot(tt, opts)
}

// StreamSnapshot retrieves the snapshot at tt without ever assembling
// it: each horizontal partition's node states are handed to emit as
// soon as that partition materializes, possibly concurrently (emit must
// be safe for concurrent use and must not retain the states past its
// return). The server's NDJSON snapshot endpoint rides this so
// arbitrarily large snapshots stream in bounded memory.
func (s *Store) StreamSnapshot(tt Time, opts *FetchOptions, emit func(sid int, states []*NodeState) error) error {
	if err := s.beginOp(); err != nil {
		return err
	}
	defer s.endOp()
	return s.tgi.StreamSnapshot(tt, opts, emit)
}

// Node retrieves one node's state as of tt (nil if absent).
func (s *Store) Node(id NodeID, tt Time) (*NodeState, error) {
	return s.NodeWith(id, tt, nil)
}

// NodeCtx is Node honoring a context's deadline/cancellation.
func (s *Store) NodeCtx(ctx context.Context, id NodeID, tt Time) (*NodeState, error) {
	return s.NodeWith(id, tt, &FetchOptions{Context: ctx})
}

// NodeWith retrieves one node's state with explicit fetch options.
func (s *Store) NodeWith(id NodeID, tt Time, opts *FetchOptions) (*NodeState, error) {
	if err := s.beginOp(); err != nil {
		return nil, err
	}
	defer s.endOp()
	return s.tgi.GetNodeAt(id, tt, opts)
}

// NodeHistory retrieves a node's evolution over [ts, te).
func (s *Store) NodeHistory(id NodeID, ts, te Time) (*NodeHistory, error) {
	return s.NodeHistoryWith(id, ts, te, nil)
}

// NodeHistoryCtx is NodeHistory honoring a context's
// deadline/cancellation.
func (s *Store) NodeHistoryCtx(ctx context.Context, id NodeID, ts, te Time) (*NodeHistory, error) {
	return s.NodeHistoryWith(id, ts, te, &FetchOptions{Context: ctx})
}

// NodeHistoryWith retrieves a node's evolution with explicit fetch
// options.
func (s *Store) NodeHistoryWith(id NodeID, ts, te Time, opts *FetchOptions) (*NodeHistory, error) {
	if err := s.beginOp(); err != nil {
		return nil, err
	}
	defer s.endOp()
	return s.tgi.GetNodeHistory(id, ts, te, opts)
}

// ChangeTimes returns the timepoints in [ts, te) at which the node
// changed, read from version chains only (no eventlist fetches).
func (s *Store) ChangeTimes(id NodeID, ts, te Time) ([]Time, error) {
	return s.ChangeTimesWith(id, ts, te, nil)
}

// ChangeTimesCtx is ChangeTimes honoring a context's
// deadline/cancellation.
func (s *Store) ChangeTimesCtx(ctx context.Context, id NodeID, ts, te Time) ([]Time, error) {
	return s.ChangeTimesWith(id, ts, te, &FetchOptions{Context: ctx})
}

// ChangeTimesWith returns a node's change times with explicit fetch
// options.
func (s *Store) ChangeTimesWith(id NodeID, ts, te Time, opts *FetchOptions) ([]Time, error) {
	if err := s.beginOp(); err != nil {
		return nil, err
	}
	defer s.endOp()
	return s.tgi.ChangeTimes(id, ts, te, opts)
}

// KHop retrieves the k-hop neighborhood subgraph of id as of tt.
func (s *Store) KHop(id NodeID, k int, tt Time) (*Graph, error) {
	return s.KHopWith(id, k, tt, nil)
}

// KHopCtx is KHop honoring a context's deadline/cancellation.
func (s *Store) KHopCtx(ctx context.Context, id NodeID, k int, tt Time) (*Graph, error) {
	return s.KHopWith(id, k, tt, &FetchOptions{Context: ctx})
}

// KHopWith retrieves a k-hop neighborhood with explicit fetch options.
func (s *Store) KHopWith(id NodeID, k int, tt Time, opts *FetchOptions) (*Graph, error) {
	if err := s.beginOp(); err != nil {
		return nil, err
	}
	defer s.endOp()
	return s.tgi.GetKHopNeighborhood(id, k, tt, opts)
}

// KHopHistory retrieves the evolution of id's k-hop neighborhood over
// [ts, te).
func (s *Store) KHopHistory(id NodeID, k int, ts, te Time) (*SubgraphHistory, error) {
	return s.KHopHistoryWith(id, k, ts, te, nil)
}

// KHopHistoryCtx is KHopHistory honoring a context's
// deadline/cancellation.
func (s *Store) KHopHistoryCtx(ctx context.Context, id NodeID, k int, ts, te Time) (*SubgraphHistory, error) {
	return s.KHopHistoryWith(id, k, ts, te, &FetchOptions{Context: ctx})
}

// KHopHistoryWith retrieves a neighborhood evolution with explicit
// fetch options.
func (s *Store) KHopHistoryWith(id NodeID, k int, ts, te Time, opts *FetchOptions) (*SubgraphHistory, error) {
	if err := s.beginOp(); err != nil {
		return nil, err
	}
	defer s.endOp()
	return s.tgi.GetKHopHistory(id, k, ts, te, opts)
}

// Snapshots retrieves multiple snapshots concurrently.
func (s *Store) Snapshots(times []Time) ([]*Graph, error) {
	return s.SnapshotsWith(times, nil)
}

// SnapshotsCtx is Snapshots honoring a context's deadline/cancellation.
func (s *Store) SnapshotsCtx(ctx context.Context, times []Time) ([]*Graph, error) {
	return s.SnapshotsWith(times, &FetchOptions{Context: ctx})
}

// SnapshotsWith retrieves multiple snapshots with explicit fetch
// options.
func (s *Store) SnapshotsWith(times []Time, opts *FetchOptions) ([]*Graph, error) {
	if err := s.beginOp(); err != nil {
		return nil, err
	}
	defer s.endOp()
	return s.tgi.GetSnapshotsAt(times, opts)
}

// TimeRange returns the [first, last] event times of the indexed history.
func (s *Store) TimeRange() (Time, Time, error) { return s.tgi.TimeRange() }

// Stats reports storage statistics.
func (s *Store) Stats() (core.Stats, error) {
	if err := s.beginOp(); err != nil {
		return core.Stats{}, err
	}
	defer s.endOp()
	return s.tgi.Stats()
}

// PlanTraces returns the most recent per-query plan traces, oldest
// first (empty unless Options.TracePlans is set). Each record reports
// one retrieval's planned key set, its cache-hit / negative-hit /
// KV-read breakdown per table, and the round-trips and simulated wait
// it was charged.
func (s *Store) PlanTraces() []TraceRecord { return s.tgi.PlanTraces() }

// TGI exposes the underlying index for advanced use.
func (s *Store) TGI() *core.TGI { return s.tgi }

// Cluster exposes the backing store (metrics, latency toggling).
func (s *Store) Cluster() *kvstore.Cluster { return s.cluster }

// Topology types and fault injection, re-exported from the storage
// layer so callers stay within the hgs surface.
type (
	// TopologyInfo describes the cluster placement: per-node ring
	// weight, health and hints, plus under-replicated partitions.
	TopologyInfo = kvstore.TopologyInfo
	// StorageNodeInfo is one storage node's entry in a TopologyInfo.
	StorageNodeInfo = kvstore.NodeInfo
	// Fault is a per-node fault-injection profile: visits error with
	// probability ErrRate and are slowed by ExtraLatency.
	Fault = kvstore.Fault
	// RepairStats summarizes one anti-entropy sweep: partitions found
	// divergent and converged, plus the rows and bytes streamed.
	RepairStats = kvstore.RepairStats
)

// Topology sentinels, matched with errors.Is.
var (
	// ErrUnknownStorageNode: a topology or fault operation named a
	// storage node that is not in the cluster (HTTP 404).
	ErrUnknownStorageNode = kvstore.ErrUnknownNode
	// ErrDuplicateStorageNode: AddStorageNode named an existing node
	// (HTTP 409).
	ErrDuplicateStorageNode = kvstore.ErrDuplicateNode
	// ErrRebalancing: a topology change is already streaming (HTTP 409).
	ErrRebalancing = kvstore.ErrRebalancing
	// ErrTooFewNodes: removal would leave fewer nodes than the
	// replication factor (HTTP 409).
	ErrTooFewNodes = kvstore.ErrTooFewNodes
	// ErrRepairRunning: an anti-entropy sweep is already in progress
	// (HTTP 409).
	ErrRepairRunning = kvstore.ErrRepairRunning
)

// Topology inspects the storage cluster: ring share, health, stored
// bytes and pending hints per node, plus how many partitions currently
// have a down replica. An inspection sweep over the node engines, not
// a hot path.
func (s *Store) Topology() (TopologyInfo, error) {
	if err := s.beginOp(); err != nil {
		return TopologyInfo{}, err
	}
	defer s.endOp()
	return s.cluster.Topology(), nil
}

// AddStorageNode grows the cluster by one node and starts the
// background rebalance that streams it the partitions the ring now
// assigns to it (rate-limited by Options.RebalanceRate). Queries keep
// running throughout: every partition is served by its old or new
// owner until its handoff commits. On a durable store the new topology
// is persisted before any old copy is dropped. Returns once the
// migration is underway; WaitRebalance blocks until it completes.
func (s *Store) AddStorageNode(id int) error {
	if err := s.beginOp(); err != nil {
		return err
	}
	defer s.endOp()
	return s.cluster.AddNode(id)
}

// RemoveStorageNode decommissions a storage node: the background
// rebalance streams every partition it owns to the post-removal
// owners, then closes and drops the node. Refuses to shrink below the
// replication factor.
func (s *Store) RemoveStorageNode(id int) error {
	if err := s.beginOp(); err != nil {
		return err
	}
	defer s.endOp()
	return s.cluster.RemoveNode(id)
}

// FailStorageNode marks a storage node down: reads fail over to the
// remaining replicas (Stats().StoreMetrics counts DegradedReads and
// Failovers), writes queue hinted handoffs. The node's data is kept.
func (s *Store) FailStorageNode(id int) error {
	if err := s.beginOp(); err != nil {
		return err
	}
	defer s.endOp()
	return s.cluster.FailNode(id)
}

// ReviveStorageNode brings a failed node back, replaying the writes it
// missed before it serves again.
func (s *Store) ReviveStorageNode(id int) error {
	if err := s.beginOp(); err != nil {
		return err
	}
	defer s.endOp()
	return s.cluster.ReviveNode(id)
}

// InjectFault installs (nil clears) a fault profile on a storage node:
// unlike FailStorageNode the node keeps serving, but visits error with
// the configured probability and carry the configured extra latency —
// the knob degraded-read tests and benchmarks drive.
func (s *Store) InjectFault(id int, f *Fault) error {
	if err := s.beginOp(); err != nil {
		return err
	}
	defer s.endOp()
	return s.cluster.InjectFault(id, f)
}

// RepairPartitions runs one anti-entropy sweep over the storage
// cluster: replicas exchange merkle-style per-partition digests and
// only divergent partitions are re-streamed (newest row version wins,
// rate-limited by Options.RebalanceRate). Returns what the sweep
// converged — all zero on a healthy cluster. Fails with
// ErrRepairRunning when a sweep is already in progress and
// ErrRebalancing while a topology change is streaming.
func (s *Store) RepairPartitions() (RepairStats, error) {
	if err := s.beginOp(); err != nil {
		return RepairStats{}, err
	}
	defer s.endOp()
	return s.cluster.RepairPartitions()
}

// Rebalancing reports whether a background topology migration is
// running.
func (s *Store) Rebalancing() bool { return s.cluster.Rebalancing() }

// WaitRebalance blocks until the in-flight topology migration (if any)
// completes and returns its outcome.
func (s *Store) WaitRebalance() error {
	if err := s.beginOp(); err != nil {
		return err
	}
	defer s.endOp()
	return s.cluster.WaitRebalance()
}

// Analytics opens a TAF session with the given number of compute
// workers (the paper's Spark cluster size).
func (s *Store) Analytics(workers int) *Analytics {
	return &Analytics{h: taf.NewHandler(s.tgi, sparklite.NewContext(workers))}
}
