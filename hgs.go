// Package hgs is the Historical Graph Store: a system for storing large
// volumes of historical graph data and running temporal graph analytics
// against it, reproducing Khurana & Deshpande, "Storing and Analyzing
// Historical Graph Data at Scale" (EDBT 2016).
//
// A Store wraps the two components of the paper:
//
//   - the Temporal Graph Index (TGI), which compactly persists the entire
//     change history of a graph in a (simulated) distributed key-value
//     store and retrieves snapshots, node histories, and neighborhood
//     versions, and
//   - the Temporal Graph Analysis Framework (TAF), which runs
//     set-of-temporal-nodes analytics on a parallel compute engine.
//
// Quickstart:
//
//	store, _ := hgs.Open(hgs.Options{})
//	_ = store.Load(events)                  // chronological events
//	g, _ := store.Snapshot(t)               // graph as of t
//	h, _ := store.NodeHistory(42, t0, t1)   // one node's evolution
//	a := store.Analytics(4)                 // 4 workers
//	son, _ := a.SON().Timeslice(hgs.NewInterval(t0, t1)).Fetch()
package hgs

import (
	"fmt"

	"hgs/internal/core"
	"hgs/internal/graph"
	"hgs/internal/kvstore"
	"hgs/internal/partition"
	"hgs/internal/sparklite"
	"hgs/internal/taf"
	"hgs/internal/temporal"
)

// Re-exported model types. The full method sets are documented on the
// internal definitions.
type (
	// Time is a discrete timepoint (user-defined clock: Unix millis,
	// sequence numbers, ...).
	Time = temporal.Time
	// Interval is a half-open time range [Start, End).
	Interval = temporal.Interval
	// NodeID identifies a vertex across the whole history.
	NodeID = graph.NodeID
	// Event is one atomic change to the graph.
	Event = graph.Event
	// EventKind enumerates change types.
	EventKind = graph.EventKind
	// Graph is an in-memory snapshot with the network metrics library.
	Graph = graph.Graph
	// NodeState is a node's state at one point in time.
	NodeState = graph.NodeState
	// Attrs is a key-value attribute map.
	Attrs = graph.Attrs
	// NodeHistory is a node's evolution over an interval.
	NodeHistory = core.NodeHistory
	// SubgraphHistory is a neighborhood's evolution over an interval.
	SubgraphHistory = core.SubgraphHistory
	// FetchOptions tunes a single retrieval (parallel fetch factor c).
	FetchOptions = core.FetchOptions
)

// Event kind constants re-exported for event construction.
const (
	AddNode     = graph.AddNode
	RemoveNode  = graph.RemoveNode
	AddEdge     = graph.AddEdge
	RemoveEdge  = graph.RemoveEdge
	SetNodeAttr = graph.SetNodeAttr
	DelNodeAttr = graph.DelNodeAttr
	SetEdgeAttr = graph.SetEdgeAttr
	DelEdgeAttr = graph.DelEdgeAttr
)

// NewInterval returns the half-open interval [start, end).
func NewInterval(start, end Time) Interval { return temporal.NewInterval(start, end) }

// Options configure a Store. The zero value is a sensible single-machine
// development setup; the fields mirror the paper's knobs.
type Options struct {
	// Machines is the storage cluster size m (default 2).
	Machines int
	// Replication is the storage replication factor r (default 1).
	Replication int
	// SimulateLatency enables the storage latency model (off for unit
	// tests, on for benchmarks).
	SimulateLatency bool

	// TimespanEvents, EventlistSize, Arity, HorizontalPartitions and
	// PartitionSize are the TGI construction parameters (§4.4); zero
	// values take the defaults (200k, 25k, 2, 4, 500).
	TimespanEvents       int
	EventlistSize        int
	Arity                int
	HorizontalPartitions int
	PartitionSize        int
	// LocalityPartitioning uses min-cut-style micro-partitioning instead
	// of random hashing (§4.5).
	LocalityPartitioning bool
	// Replicate1Hop stores auxiliary frontier micro-deltas to speed up
	// 1-hop neighborhood retrieval (§4.5, Figure 5d).
	Replicate1Hop bool
	// Compress gzip-compresses stored blobs (Figure 13a).
	Compress bool
	// FetchClients is the default parallel fetch factor c (default 4).
	FetchClients int
}

func (o Options) coreConfig() core.Config {
	cfg := core.DefaultConfig()
	if o.TimespanEvents > 0 {
		cfg.TimespanEvents = o.TimespanEvents
	}
	if o.EventlistSize > 0 {
		cfg.EventlistSize = o.EventlistSize
	}
	if o.Arity > 0 {
		cfg.Arity = o.Arity
	}
	if o.HorizontalPartitions > 0 {
		cfg.HorizontalPartitions = o.HorizontalPartitions
	}
	if o.PartitionSize > 0 {
		cfg.PartitionSize = o.PartitionSize
	}
	if o.LocalityPartitioning {
		cfg.Partitioning = partition.Locality
	}
	cfg.Replicate1Hop = o.Replicate1Hop
	cfg.Compress = o.Compress
	if o.FetchClients > 0 {
		cfg.FetchClients = o.FetchClients
	}
	return cfg
}

// Store is a Historical Graph Store instance.
type Store struct {
	cluster *kvstore.Cluster
	tgi     *core.TGI
	loaded  bool
}

// Open creates an empty store per the options. Call Load to index a
// history.
func Open(opts Options) (*Store, error) {
	machines := opts.Machines
	if machines < 1 {
		machines = 2
	}
	replication := opts.Replication
	if replication < 1 {
		replication = 1
	}
	lat := kvstore.LatencyModel{}
	if opts.SimulateLatency {
		lat = kvstore.DefaultLatency()
	}
	cluster := kvstore.NewCluster(kvstore.Config{Machines: machines, Replication: replication, Latency: lat})
	cfg := opts.coreConfig()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Store{cluster: cluster, tgi: core.New(cluster, cfg)}, nil
}

// Load builds the index over a complete history. Events must be
// chronological with strictly increasing timestamps.
func (s *Store) Load(events []Event) error {
	if s.loaded {
		return fmt.Errorf("hgs: store already loaded; use Append for updates")
	}
	if err := s.tgi.BuildAll(events); err != nil {
		return err
	}
	s.loaded = true
	return nil
}

// Append ingests a batch of new events after the indexed history.
func (s *Store) Append(events []Event) error {
	if !s.loaded {
		return s.Load(events)
	}
	return s.tgi.Append(events)
}

// Snapshot retrieves the graph as of time tt.
func (s *Store) Snapshot(tt Time) (*Graph, error) {
	return s.tgi.GetSnapshot(tt, nil)
}

// SnapshotWith retrieves a snapshot with explicit fetch options.
func (s *Store) SnapshotWith(tt Time, opts *FetchOptions) (*Graph, error) {
	return s.tgi.GetSnapshot(tt, opts)
}

// Node retrieves one node's state as of tt (nil if absent).
func (s *Store) Node(id NodeID, tt Time) (*NodeState, error) {
	return s.tgi.GetNodeAt(id, tt)
}

// NodeHistory retrieves a node's evolution over [ts, te).
func (s *Store) NodeHistory(id NodeID, ts, te Time) (*NodeHistory, error) {
	return s.tgi.GetNodeHistory(id, ts, te, nil)
}

// KHop retrieves the k-hop neighborhood subgraph of id as of tt.
func (s *Store) KHop(id NodeID, k int, tt Time) (*Graph, error) {
	return s.tgi.GetKHopNeighborhood(id, k, tt, nil)
}

// KHopHistory retrieves the evolution of id's k-hop neighborhood over
// [ts, te).
func (s *Store) KHopHistory(id NodeID, k int, ts, te Time) (*SubgraphHistory, error) {
	return s.tgi.GetKHopHistory(id, k, ts, te, nil)
}

// Snapshots retrieves multiple snapshots concurrently.
func (s *Store) Snapshots(times []Time) ([]*Graph, error) {
	return s.tgi.GetSnapshotsAt(times, nil)
}

// TimeRange returns the [first, last] event times of the indexed history.
func (s *Store) TimeRange() (Time, Time, error) { return s.tgi.TimeRange() }

// Stats reports storage statistics.
func (s *Store) Stats() (core.Stats, error) { return s.tgi.Stats() }

// TGI exposes the underlying index for advanced use.
func (s *Store) TGI() *core.TGI { return s.tgi }

// Cluster exposes the backing store (metrics, latency toggling).
func (s *Store) Cluster() *kvstore.Cluster { return s.cluster }

// Analytics opens a TAF session with the given number of compute
// workers (the paper's Spark cluster size).
func (s *Store) Analytics(workers int) *Analytics {
	return &Analytics{h: taf.NewHandler(s.tgi, sparklite.NewContext(workers))}
}
