// Package codec provides the binary wire format used to persist deltas,
// node states and eventlists in the key-value store (the paper serialized
// with Python Pickle; we use a compact varint-based format so that stored
// byte sizes — which drive the simulated I/O cost model — are realistic).
// Every blob starts with a one-byte header that records whether the
// payload is gzip-compressed, so compressed and uncompressed indexes can
// coexist (paper Figure 13a compares both).
package codec

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"

	"hgs/internal/delta"
	"hgs/internal/graph"
	"hgs/internal/temporal"
)

// Header flags.
const (
	flagPlain byte = 0x00
	flagGzip  byte = 0x01
)

var (
	// ErrCorrupt reports a malformed or truncated blob.
	ErrCorrupt = errors.New("codec: corrupt blob")
)

// Codec encodes and decodes store blobs. The zero value is an
// uncompressed codec; set Compress for gzip framing.
type Codec struct {
	// Compress enables gzip compression of encoded payloads.
	Compress bool
}

// buffer wraps the low-level primitives of the wire format.
type buffer struct {
	buf bytes.Buffer
}

func (b *buffer) uvarint(v uint64) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	b.buf.Write(tmp[:n])
}

func (b *buffer) varint(v int64) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutVarint(tmp[:], v)
	b.buf.Write(tmp[:n])
}

func (b *buffer) str(s string) {
	b.uvarint(uint64(len(s)))
	b.buf.WriteString(s)
}

func (b *buffer) bool(v bool) {
	if v {
		b.buf.WriteByte(1)
	} else {
		b.buf.WriteByte(0)
	}
}

type reader struct {
	data []byte
	pos  int
}

func (r *reader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.data[r.pos:])
	if n <= 0 {
		return 0, ErrCorrupt
	}
	r.pos += n
	return v, nil
}

func (r *reader) varint() (int64, error) {
	v, n := binary.Varint(r.data[r.pos:])
	if n <= 0 {
		return 0, ErrCorrupt
	}
	r.pos += n
	return v, nil
}

func (r *reader) str() (string, error) {
	n, err := r.uvarint()
	if err != nil {
		return "", err
	}
	if r.pos+int(n) > len(r.data) {
		return "", ErrCorrupt
	}
	s := string(r.data[r.pos : r.pos+int(n)])
	r.pos += int(n)
	return s, nil
}

func (r *reader) bool() (bool, error) {
	if r.pos >= len(r.data) {
		return false, ErrCorrupt
	}
	v := r.data[r.pos]
	r.pos++
	return v != 0, nil
}

// count validates a decoded element count against the bytes remaining
// (every element takes at least one byte), so a corrupt varint cannot
// drive a huge preallocation.
func (r *reader) count() (int, error) {
	n, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if n > uint64(len(r.data)-r.pos) {
		return 0, fmt.Errorf("%w: count %d exceeds remaining %d bytes", ErrCorrupt, n, len(r.data)-r.pos)
	}
	return int(n), nil
}

// encodeAttrs writes attribute maps with sorted keys for deterministic
// output (stable blob sizes and content-addressable tests).
func encodeAttrs(b *buffer, a graph.Attrs) {
	keys := make([]string, 0, len(a))
	for k := range a {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	b.uvarint(uint64(len(keys)))
	for _, k := range keys {
		b.str(k)
		b.str(a[k])
	}
}

func decodeAttrs(r *reader) (graph.Attrs, error) {
	n, err := r.count()
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	a := make(graph.Attrs, n)
	for i := 0; i < n; i++ {
		k, err := r.str()
		if err != nil {
			return nil, err
		}
		v, err := r.str()
		if err != nil {
			return nil, err
		}
		a[k] = v
	}
	return a, nil
}

func encodeNodeState(b *buffer, ns *graph.NodeState) {
	b.varint(int64(ns.ID))
	encodeAttrs(b, ns.Attrs)
	// Deterministic edge order: by (Other, Out).
	keys := make([]graph.EdgeKey, 0, len(ns.Edges))
	for k := range ns.Edges {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Other != keys[j].Other {
			return keys[i].Other < keys[j].Other
		}
		return !keys[i].Out && keys[j].Out
	})
	b.uvarint(uint64(len(keys)))
	for _, k := range keys {
		b.varint(int64(k.Other))
		b.bool(k.Out)
		encodeAttrs(b, ns.Edges[k].Attrs)
	}
}

func decodeNodeState(r *reader) (*graph.NodeState, error) {
	id, err := r.varint()
	if err != nil {
		return nil, err
	}
	attrs, err := decodeAttrs(r)
	if err != nil {
		return nil, err
	}
	ns := &graph.NodeState{ID: graph.NodeID(id), Attrs: attrs}
	n, err := r.count()
	if err != nil {
		return nil, err
	}
	if n > 0 {
		ns.Edges = make(map[graph.EdgeKey]*graph.EdgeState, n)
		for i := 0; i < n; i++ {
			other, err := r.varint()
			if err != nil {
				return nil, err
			}
			out, err := r.bool()
			if err != nil {
				return nil, err
			}
			ea, err := decodeAttrs(r)
			if err != nil {
				return nil, err
			}
			ns.Edges[graph.EdgeKey{Other: graph.NodeID(other), Out: out}] = &graph.EdgeState{Attrs: ea}
		}
	}
	return ns, nil
}

// EncodeDelta serializes a delta (component states + tombstones).
func (c Codec) EncodeDelta(d *delta.Delta) ([]byte, error) {
	b := getEncBuffer()
	defer putEncBuffer(b)
	ids := make([]graph.NodeID, 0, len(d.Nodes))
	for id := range d.Nodes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	b.uvarint(uint64(len(ids)))
	for _, id := range ids {
		encodeNodeState(b, d.Nodes[id])
	}
	tombs := make([]graph.NodeID, 0, len(d.Tombstones))
	for id := range d.Tombstones {
		tombs = append(tombs, id)
	}
	sort.Slice(tombs, func(i, j int) bool { return tombs[i] < tombs[j] })
	b.uvarint(uint64(len(tombs)))
	for _, id := range tombs {
		b.varint(int64(id))
	}
	return c.frame(b.buf.Bytes())
}

// DecodeDelta parses a blob produced by EncodeDelta.
func (c Codec) DecodeDelta(blob []byte) (*delta.Delta, error) {
	data, release, err := unframe(blob)
	if err != nil {
		return nil, err
	}
	defer release()
	r := &reader{data: data}
	n, err := r.count()
	if err != nil {
		return nil, err
	}
	d := delta.New()
	for i := 0; i < n; i++ {
		ns, err := decodeNodeState(r)
		if err != nil {
			return nil, err
		}
		d.Nodes[ns.ID] = ns
	}
	tn, err := r.count()
	if err != nil {
		return nil, err
	}
	for i := 0; i < tn; i++ {
		id, err := r.varint()
		if err != nil {
			return nil, err
		}
		d.MarkDeleted(graph.NodeID(id))
	}
	return d, nil
}

// EncodeEvents serializes an event slice; times are delta-encoded against
// the previous event, which makes dense eventlists very compact.
func (c Codec) EncodeEvents(events []graph.Event) ([]byte, error) {
	b := getEncBuffer()
	defer putEncBuffer(b)
	b.uvarint(uint64(len(events)))
	var prev temporal.Time
	for _, e := range events {
		b.varint(int64(e.Time - prev))
		prev = e.Time
		b.buf.WriteByte(byte(e.Kind))
		b.varint(int64(e.Node))
		b.varint(int64(e.Other))
		b.str(e.Key)
		b.str(e.Value)
	}
	return c.frame(b.buf.Bytes())
}

// DecodeEvents parses a blob produced by EncodeEvents.
func (c Codec) DecodeEvents(blob []byte) ([]graph.Event, error) {
	data, release, err := unframe(blob)
	if err != nil {
		return nil, err
	}
	defer release()
	r := &reader{data: data}
	n, err := r.count()
	if err != nil {
		return nil, err
	}
	events := make([]graph.Event, 0, n)
	var prev temporal.Time
	for i := 0; i < n; i++ {
		dt, err := r.varint()
		if err != nil {
			return nil, err
		}
		prev += temporal.Time(dt)
		if r.pos >= len(r.data) {
			return nil, ErrCorrupt
		}
		kind := graph.EventKind(r.data[r.pos])
		r.pos++
		node, err := r.varint()
		if err != nil {
			return nil, err
		}
		other, err := r.varint()
		if err != nil {
			return nil, err
		}
		key, err := r.str()
		if err != nil {
			return nil, err
		}
		val, err := r.str()
		if err != nil {
			return nil, err
		}
		events = append(events, graph.Event{
			Time: prev, Kind: kind,
			Node: graph.NodeID(node), Other: graph.NodeID(other),
			Key: key, Value: val,
		})
	}
	return events, nil
}

// EncodeNodeState serializes a single node state.
func (c Codec) EncodeNodeState(ns *graph.NodeState) ([]byte, error) {
	b := getEncBuffer()
	defer putEncBuffer(b)
	encodeNodeState(b, ns)
	return c.frame(b.buf.Bytes())
}

// DecodeNodeState parses a blob produced by EncodeNodeState.
func (c Codec) DecodeNodeState(blob []byte) (*graph.NodeState, error) {
	data, release, err := unframe(blob)
	if err != nil {
		return nil, err
	}
	defer release()
	return decodeNodeState(&reader{data: data})
}

// frame prepends the header byte and compresses when enabled. The
// returned slice is always freshly allocated (callers hand it to the
// store); only the compression machinery is pooled.
func (c Codec) frame(payload []byte) ([]byte, error) {
	if !c.Compress {
		out := make([]byte, 0, len(payload)+1)
		out = append(out, flagPlain)
		return append(out, payload...), nil
	}
	var zbuf bytes.Buffer
	zbuf.WriteByte(flagGzip)
	zw := getGzipWriter(&zbuf)
	defer putGzipWriter(zw)
	if _, err := zw.Write(payload); err != nil {
		return nil, fmt.Errorf("codec: gzip write: %w", err)
	}
	if err := zw.Close(); err != nil {
		return nil, fmt.Errorf("codec: gzip close: %w", err)
	}
	return zbuf.Bytes(), nil
}

// unframe strips the header and decompresses as needed; decode works
// regardless of the codec's own Compress flag. The returned data may
// live in a pooled decompression arena: the caller must invoke release
// once nothing references it — decode paths satisfy that by copying
// every byte they keep (strings, parsed numbers) out of the scratch
// before their deferred release runs.
func unframe(blob []byte) (data []byte, release func(), err error) {
	if len(blob) == 0 {
		return nil, nil, ErrCorrupt
	}
	switch blob[0] {
	case flagPlain:
		return blob[1:], releaseNone, nil
	case flagGzip:
		zr, err := getGzipReader(blob[1:])
		if err != nil {
			return nil, nil, fmt.Errorf("codec: gzip open: %w", err)
		}
		arena := getDecompBuffer()
		if _, err := io.Copy(arena, zr); err != nil {
			putGzipReader(zr)
			putDecompBuffer(arena)
			return nil, nil, fmt.Errorf("codec: gzip read: %w", err)
		}
		putGzipReader(zr)
		return arena.Bytes(), func() { putDecompBuffer(arena) }, nil
	default:
		return nil, nil, fmt.Errorf("%w: unknown header 0x%02x", ErrCorrupt, blob[0])
	}
}
