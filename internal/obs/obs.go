// Package obs is the unified observability layer: a dependency-free
// metrics registry that every counter of the system registers into —
// the kvstore cluster counters, the tier counters of the tiered
// engine, the decoded-delta cache statistics, and per-operation
// latency histograms recorded by the query layer. On top of the
// registry sit Prometheus text-format exposition (WritePrometheus)
// and snapshot/diff support, so the same numbers drive the debug
// HTTP server, hgs-inspect -metrics, the bench JSON output, and the
// perf-regression ratchet.
//
// The registry holds three metric kinds:
//
//   - Counter: a monotonically increasing int64 (or a func-backed
//     counter sampling an external cumulative value at read time),
//   - Gauge: a settable level (or a func-backed sample),
//   - Histogram: log-bucketed latency/size distributions with
//     estimated quantiles.
//
// Metric identity is the family name plus a sorted label set; the
// paper's cost-model terms map onto families (deltas fetched → KV
// reads, round-trips, eventlist scans → per-table trace counters) so
// profiles read back in the paper's vocabulary. All types are safe
// for concurrent use (including under the race detector); a nil
// *Registry is valid and records nothing, which keeps the query-layer
// hot path free of conditionals when observability is disabled.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind enumerates the metric kinds a family can hold.
type Kind int

const (
	// KindCounter is a monotonically increasing value.
	KindCounter Kind = iota
	// KindGauge is a level that can go up and down.
	KindGauge
	// KindHistogram is a bucketed distribution.
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "unknown"
}

// Label is one name="value" dimension of a metric series.
type Label struct {
	Name, Value string
}

// L builds a Label (shorthand for composite literals at call sites).
func L(name, value string) Label { return Label{Name: name, Value: value} }

// signature renders a sorted, deduplicated label set as the series key
// (and the exact text between braces in the exposition).
func signature(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Name, l.Value)
	}
	return b.String()
}

// series is one labeled instance of a family: exactly one of the value
// holders is active, per the family's kind.
type series struct {
	sig  string
	val  atomic.Int64 // counters and plain gauges
	fn   func() float64
	hist *Histogram
}

// value returns the series' current scalar (counters, gauges).
func (s *series) value() float64 {
	if s.fn != nil {
		return s.fn()
	}
	return float64(s.val.Load())
}

// family is all series of one metric name, sharing kind and help text.
type family struct {
	name, help string
	kind       Kind
	series     map[string]*series
	order      []*series // registration order; exposition sorts by sig
}

// Registry is the metric sink. The zero value is not usable; create
// with NewRegistry. A nil *Registry is valid everywhere and records
// nothing.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// lookup returns (creating as needed) the series of name+labels,
// verifying kind consistency across the family. Re-registering an
// existing series returns the existing one — except func-backed
// metrics, where the new sampler replaces the old (a re-attached
// handle re-registers its closures over fresh objects).
func (r *Registry) lookup(name, help string, kind Kind, labels []Label) *series {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, series: make(map[string]*series)}
		r.families[name] = f
		r.order = append(r.order, f)
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", name, kind, f.kind))
	}
	sig := signature(labels)
	s := f.series[sig]
	if s == nil {
		s = &series{sig: sig}
		f.series[sig] = s
		f.order = append(f.order, s)
	}
	return s
}

// Counter returns the counter series name+labels, creating it at zero.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	return &Counter{s: r.lookup(name, help, KindCounter, labels)}
}

// CounterFunc registers a func-backed counter: fn is sampled at
// exposition/snapshot time and must report a cumulative value (the
// hook existing atomic counters register through). Re-registering
// replaces the sampler.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	r.lookup(name, help, KindCounter, labels).fn = fn
}

// Gauge returns the gauge series name+labels, creating it at zero.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	return &Gauge{s: r.lookup(name, help, KindGauge, labels)}
}

// GaugeFunc registers a func-backed gauge sampled at read time.
// Re-registering replaces the sampler.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	r.lookup(name, help, KindGauge, labels).fn = fn
}

// Histogram returns the histogram series name+labels, creating it with
// the given bucket upper bounds (ascending; +Inf is implicit). All
// series of one family must share bounds; nil bounds select
// DefLatencyBuckets.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	s := r.lookup(name, help, KindHistogram, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.hist == nil {
		s.hist = newHistogram(bounds)
	}
	return s.hist
}

// Counter is a monotonically increasing metric. A nil *Counter is
// valid and records nothing.
type Counter struct{ s *series }

// Add increments the counter by n (negative n is ignored: counters
// only go up).
func (c *Counter) Add(n int64) {
	if c == nil || c.s == nil || n <= 0 {
		return
	}
	c.s.val.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (zero for func-backed counters read
// through Snapshot instead).
func (c *Counter) Value() int64 {
	if c == nil || c.s == nil {
		return 0
	}
	return c.s.val.Load()
}

// Gauge is a settable level. A nil *Gauge is valid and records
// nothing.
type Gauge struct{ s *series }

// Set stores the gauge's current level.
func (g *Gauge) Set(v int64) {
	if g == nil || g.s == nil {
		return
	}
	g.s.val.Store(v)
}

// Add moves the gauge by n (may be negative).
func (g *Gauge) Add(n int64) {
	if g == nil || g.s == nil {
		return
	}
	g.s.val.Add(n)
}

// Value returns the gauge's current level.
func (g *Gauge) Value() int64 {
	if g == nil || g.s == nil {
		return 0
	}
	return g.s.val.Load()
}

// visit walks every family and series in deterministic order (families
// by registration, series by sorted signature) under the registry
// lock. fn must not call back into the registry.
func (r *Registry) visit(fn func(f *family, s *series)) {
	if r == nil {
		return
	}
	r.mu.Lock()
	fams := append([]*family(nil), r.order...)
	r.mu.Unlock()
	for _, f := range fams {
		r.mu.Lock()
		ss := append([]*series(nil), f.order...)
		r.mu.Unlock()
		sort.Slice(ss, func(i, j int) bool { return ss[i].sig < ss[j].sig })
		for _, s := range ss {
			fn(f, s)
		}
	}
}

// inf is the implicit last bucket bound.
var inf = math.Inf(1)
