package bench

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"time"

	"hgs"
	"hgs/internal/server"
	"hgs/internal/workload"
)

// serveMix is one workload class of the closed-loop driver: a label, a
// weight in the request mix, and a URL builder over the indexed
// history.
type serveMix struct {
	name   string
	weight int
	url    func(rng *rand.Rand, maxNode int64, first, last hgs.Time) string
}

var serveMixes = []serveMix{
	{name: "node", weight: 55, url: func(rng *rand.Rand, maxNode int64, first, last hgs.Time) string {
		return fmt.Sprintf("/v1/node?id=%d&t=%d", rng.Int63n(maxNode), randTime(rng, first, last))
	}},
	{name: "change-times", weight: 20, url: func(rng *rand.Rand, maxNode int64, first, last hgs.Time) string {
		return fmt.Sprintf("/v1/node/changetimes?id=%d&ts=%d&te=%d", rng.Int63n(maxNode), first, last)
	}},
	{name: "node-history", weight: 15, url: func(rng *rand.Rand, maxNode int64, first, last hgs.Time) string {
		ts := randTime(rng, first, last)
		return fmt.Sprintf("/v1/node/history?id=%d&ts=%d&te=%d", rng.Int63n(maxNode), ts, last)
	}},
	{name: "khop", weight: 5, url: func(rng *rand.Rand, maxNode int64, first, last hgs.Time) string {
		return fmt.Sprintf("/v1/khop?id=%d&k=1&t=%d", rng.Int63n(maxNode), randTime(rng, first, last))
	}},
	{name: "snapshot", weight: 5, url: func(rng *rand.Rand, maxNode int64, first, last hgs.Time) string {
		return fmt.Sprintf("/v1/snapshot?t=%d", randTime(rng, first, last))
	}},
}

func randTime(rng *rand.Rand, first, last hgs.Time) hgs.Time {
	if last <= first {
		return first
	}
	return first + hgs.Time(rng.Int63n(int64(last-first)))
}

func pickMix(rng *rand.Rand) serveMix {
	total := 0
	for _, m := range serveMixes {
		total += m.weight
	}
	n := rng.Intn(total)
	for _, m := range serveMixes {
		if n < m.weight {
			return m
		}
		n -= m.weight
	}
	return serveMixes[0]
}

// serveStats aggregates one client's view of the run.
type serveStats struct {
	latencies []time.Duration // successful (2xx) requests only
	ok        int
	shed      int // 429
	missed    int // 504
	failed    int // transport errors and other statuses
	rows      int // NDJSON lines / body lines read back
}

// ServeBench measures the HTTP serve path closed-loop: an in-process
// hgs-server over the Dataset 1 index on an ephemeral port, driven by
// concurrent clients each issuing a weighted mix of node, change-time,
// history, k-hop and streamed-snapshot requests as fast as the previous
// response completes. The in-flight limit is set below the client count
// so the limiter's 429 shedding is exercised, and the table reports
// achieved QPS, latency quantiles, shed rate and deadline-miss rate —
// what the ISSUE's closed-loop acceptance run reads off.
func ServeBench(sc Scale) *Result {
	const (
		clients     = 12
		maxInFlight = 8
		perClient   = 120
	)
	start := time.Now()
	res := &Result{
		ID:    "serve",
		Title: fmt.Sprintf("HTTP serve path: %d closed-loop clients, %d in-flight slots", clients, maxInFlight),
	}

	nodes := max(sc.WikiNodes/4, 1_000)
	events := cachedEvents(fmt.Sprintf("serve-wiki-%d", nodes), func() []hgs.Event {
		return workload.Wikipedia(workload.WikiConfig{Nodes: nodes, EdgesPerNode: 4, Seed: 7})
	})
	// The latency model is on so requests occupy their in-flight slot
	// for a realistic storage wait: 12 closed-loop clients then hold
	// more than 8 concurrent requests and the limiter's shedding shows.
	store, err := hgs.Open(hgs.Options{SimulateLatency: true})
	if err != nil {
		panic(fmt.Sprintf("bench: open serve store: %v", err))
	}
	defer store.Close()
	if err := store.Load(events); err != nil {
		panic(fmt.Sprintf("bench: load serve store: %v", err))
	}
	first, last, err := store.TimeRange()
	if err != nil {
		panic(fmt.Sprintf("bench: serve time range: %v", err))
	}

	srv := server.New(store, server.Config{
		MaxInFlight:    maxInFlight,
		DefaultTimeout: 5 * time.Second,
	})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		panic(fmt.Sprintf("bench: start server: %v", err))
	}
	defer srv.Shutdown(context.Background())

	transport := &http.Transport{MaxIdleConns: clients * 2, MaxIdleConnsPerHost: clients * 2}
	client := &http.Client{Transport: transport}
	defer transport.CloseIdleConnections()

	stats := make([]serveStats, clients)
	wall := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + c)))
			st := &stats[c]
			for i := 0; i < perClient; i++ {
				mix := pickMix(rng)
				url := "http://" + addr + mix.url(rng, int64(nodes), first, last)
				t0 := time.Now()
				resp, err := client.Get(url)
				if err != nil {
					st.failed++
					continue
				}
				rows := 0
				scn := bufio.NewScanner(resp.Body)
				scn.Buffer(make([]byte, 64<<10), 8<<20)
				for scn.Scan() {
					rows++
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				d := time.Since(t0)
				switch {
				case resp.StatusCode == http.StatusTooManyRequests:
					st.shed++
				case resp.StatusCode == http.StatusGatewayTimeout:
					st.missed++
				case resp.StatusCode == http.StatusOK:
					st.ok++
					st.rows += rows
					st.latencies = append(st.latencies, d)
				case resp.StatusCode == http.StatusNotFound:
					// A random probe below the node's arrival time: the
					// request completed correctly, count it served.
					st.ok++
					st.latencies = append(st.latencies, d)
				default:
					st.failed++
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(wall)

	var all []time.Duration
	var ok, shed, missed, failed, rows int
	for _, st := range stats {
		all = append(all, st.latencies...)
		ok += st.ok
		shed += st.shed
		missed += st.missed
		failed += st.failed
		rows += st.rows
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	q := func(p float64) time.Duration {
		if len(all) == 0 {
			return 0
		}
		i := int(p * float64(len(all)-1))
		return all[i]
	}
	total := clients * perClient
	qps := float64(ok) / elapsed.Seconds()
	shedRate := float64(shed) / float64(total)
	missRate := float64(missed) / float64(total)

	res.TableHeader = []string{"clients", "requests", "ok", "shed", "deadline-miss", "failed",
		"qps", "p50", "p90", "p99"}
	res.TableRows = [][]string{{
		fmt.Sprint(clients), fmt.Sprint(total), fmt.Sprint(ok), fmt.Sprint(shed),
		fmt.Sprint(missed), fmt.Sprint(failed), fmt.Sprintf("%.0f", qps),
		q(0.50).Round(10 * time.Microsecond).String(),
		q(0.90).Round(10 * time.Microsecond).String(),
		q(0.99).Round(10 * time.Microsecond).String(),
	}}
	res.Passes = []PassMetrics{{
		Label:            "serve",
		Ops:              uint64(ok),
		P50Seconds:       q(0.50).Seconds(),
		P90Seconds:       q(0.90).Seconds(),
		P99Seconds:       q(0.99).Seconds(),
		QPS:              qps,
		ShedRate:         shedRate,
		DeadlineMissRate: missRate,
	}}
	res.Notes = append(res.Notes,
		fmt.Sprintf("streamed %d response rows; shed rate %.1f%%, deadline-miss rate %.1f%%",
			rows, 100*shedRate, 100*missRate))
	res.Elapsed = time.Since(start)
	return res
}
