package codec

import (
	"bytes"
	"compress/gzip"
	"sync"
	"sync/atomic"

	"hgs/internal/obs"
)

// Allocation pooling for the encode/decode hot paths. Encoding scratch
// buffers, gzip writers/readers and decompression arenas are recycled
// through sync.Pools and returned as soon as the blob (or the decoded
// value) has been built — decoded values themselves are never pooled:
// they may be installed in the shared decoded-delta cache and must not
// alias recyclable memory, which is why every decode primitive copies
// its bytes out of the scratch (reader.str builds fresh strings).
//
// Hits and misses are counted per pool Get so GC-pressure savings are
// observable (PoolStats, RegisterObs). Counters are process-wide, like
// the pools.

// maxPooledScratch bounds the capacity of recycled buffers: one
// pathological giant blob must not pin megabytes in every pool slot.
const maxPooledScratch = 1 << 20

var (
	poolHits   atomic.Int64
	poolMisses atomic.Int64

	encPool    sync.Pool // *buffer: encode scratch
	gzwPool    sync.Pool // *gzip.Writer, BestSpeed
	gzrPool    sync.Pool // *gzip.Reader
	decompPool sync.Pool // *bytes.Buffer: decompression arenas
)

// counted wraps a pool Get with hit/miss accounting (sync.Pool with no
// New func returns nil when empty).
func counted(p *sync.Pool) any {
	v := p.Get()
	if v == nil {
		poolMisses.Add(1)
	} else {
		poolHits.Add(1)
	}
	return v
}

func getEncBuffer() *buffer {
	if v := counted(&encPool); v != nil {
		b := v.(*buffer)
		b.buf.Reset()
		return b
	}
	return &buffer{}
}

func putEncBuffer(b *buffer) {
	if b.buf.Cap() > maxPooledScratch {
		return
	}
	encPool.Put(b)
}

func getGzipWriter(w *bytes.Buffer) *gzip.Writer {
	if v := counted(&gzwPool); v != nil {
		zw := v.(*gzip.Writer)
		zw.Reset(w)
		return zw
	}
	zw, _ := gzip.NewWriterLevel(w, gzip.BestSpeed) // BestSpeed is a valid level; no error possible
	return zw
}

func putGzipWriter(zw *gzip.Writer) { gzwPool.Put(zw) }

func getGzipReader(data []byte) (*gzip.Reader, error) {
	if v := counted(&gzrPool); v != nil {
		zr := v.(*gzip.Reader)
		if err := zr.Reset(bytes.NewReader(data)); err != nil {
			return nil, err
		}
		return zr, nil
	}
	return gzip.NewReader(bytes.NewReader(data))
}

func putGzipReader(zr *gzip.Reader) {
	zr.Close()
	gzrPool.Put(zr)
}

func getDecompBuffer() *bytes.Buffer {
	if v := counted(&decompPool); v != nil {
		b := v.(*bytes.Buffer)
		b.Reset()
		return b
	}
	return &bytes.Buffer{}
}

func putDecompBuffer(b *bytes.Buffer) {
	if b.Cap() > maxPooledScratch {
		return
	}
	decompPool.Put(b)
}

// releaseNone is the no-op release of decodes that needed no pooled
// scratch (plain blobs decode in place).
func releaseNone() {}

// PoolStats returns the cumulative pool hit and miss counts across
// every codec pool (process-wide).
func PoolStats() (hits, misses int64) {
	return poolHits.Load(), poolMisses.Load()
}

// RegisterObs registers the codec pool counters into r. The pools (and
// therefore the counters) are process-wide, so stores sharing the
// process expose the same series.
func RegisterObs(r *obs.Registry) {
	if r == nil {
		return
	}
	r.CounterFunc("hgs_codec_pool_hits_total",
		"Codec scratch-buffer pool gets served by a recycled object.",
		func() float64 { h, _ := PoolStats(); return float64(h) })
	r.CounterFunc("hgs_codec_pool_misses_total",
		"Codec scratch-buffer pool gets that had to allocate.",
		func() float64 { _, m := PoolStats(); return float64(m) })
}
