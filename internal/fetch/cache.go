package fetch

import (
	"container/list"
	"fmt"
	"sort"
	"sync"

	"hgs/internal/delta"
)

// Byte-accounting overheads charged per cached entry and per micro-delta
// on top of the encoded blob size, approximating the decoded in-memory
// footprint (maps, state headers) the blob length alone undercounts.
const (
	entryOverhead = 256
	partOverhead  = 64
)

// Cache is a bytes-bounded LRU of decoded micro-deltas, keyed by
// (tsid, sid, did) group. Hot root and interior deltas of the tree —
// shared by every snapshot and micro-partition retrieval of a timespan —
// are decoded once and then served to all queries and TAF workers.
//
// An entry holds the decoded micro-deltas of one tree delta by pid. A
// full prefix scan installs a complete entry (so group lookups and
// known-absent answers are served without touching the store); a point
// read installs or extends an incomplete one. Eviction is LRU at entry
// granularity against a budget of encoded-blob bytes plus fixed
// overheads.
//
// Cached deltas are shared read-only: readers merge them with
// Delta.ApplyTo (which clones states) and must never call MoveTo.
// A nil *Cache is valid and caches nothing.
type Cache struct {
	mu      sync.Mutex
	max     int64
	used    int64
	ll      *list.List // front = most recently used
	entries map[GroupKey]*list.Element

	hits, misses, evictions, oversized int64
}

// cacheEntry is one (tsid, sid, did) group.
type cacheEntry struct {
	key   GroupKey
	parts map[int]*delta.Delta
	// sorted is the pid-ascending part list, materialized once when the
	// entry completes so group hits — the hottest path — return it
	// without re-sorting.
	sorted   []Part
	complete bool
	total    int64
}

// NewCache returns a cache bounded to maxBytes; maxBytes <= 0 returns
// nil (caching disabled).
func NewCache(maxBytes int64) *Cache {
	if maxBytes <= 0 {
		return nil
	}
	return &Cache{max: maxBytes, ll: list.New(), entries: make(map[GroupKey]*list.Element)}
}

// Group returns the complete micro-delta set of a group, pid-ascending,
// or ok=false when the group is absent or only partially resident.
func (c *Cache) Group(k GroupKey) ([]Part, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[k]
	if !ok || !el.Value.(*cacheEntry).complete {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	// The slice is shared read-only, like the deltas it holds.
	return el.Value.(*cacheEntry).sorted, true
}

// Part returns one micro-delta. known reports whether the answer is
// authoritative: a complete entry knows absence (d == nil, known), an
// incomplete or missing entry does not (known == false → read the
// store).
func (c *Cache) Part(k PartKey) (d *delta.Delta, known bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[k.group()]
	if !ok {
		c.misses++
		return nil, false
	}
	e := el.Value.(*cacheEntry)
	if d, ok := e.parts[k.PID]; ok {
		c.hits++
		c.ll.MoveToFront(el)
		return d, true
	}
	if e.complete { // the row provably does not exist
		c.hits++
		c.ll.MoveToFront(el)
		return nil, true
	}
	c.misses++
	return nil, false
}

// AddGroup installs the complete decoded micro-delta set of a group.
// sizes[i] is the encoded size of parts[i] (the byte-budget charge).
// A group bigger than the whole budget is rejected at admission — one
// giant snapshot scan must not wipe every hot entry only to be evicted
// itself on the next add (size-aware admission; counted in
// CacheStats.Oversized).
func (c *Cache) AddGroup(k GroupKey, parts []Part, sizes []int64) {
	if c == nil {
		return
	}
	e := &cacheEntry{key: k, parts: make(map[int]*delta.Delta, len(parts)), complete: true, total: entryOverhead}
	for i, p := range parts {
		e.parts[p.PID] = p.Delta
		e.total += sizes[i] + partOverhead
	}
	e.sorted = append([]Part(nil), parts...)
	sort.Slice(e.sorted, func(i, j int) bool { return e.sorted[i].PID < e.sorted[j].PID })
	c.mu.Lock()
	defer c.mu.Unlock()
	if e.total > c.max {
		c.oversized++
		return
	}
	if el, ok := c.entries[k]; ok {
		c.used -= el.Value.(*cacheEntry).total
		c.ll.Remove(el)
	}
	c.entries[k] = c.ll.PushFront(e)
	c.used += e.total
	c.evictLocked()
}

// AddPart installs one decoded micro-delta into its group without
// marking the group complete. A part that would push its group past the
// whole budget is rejected like an oversized AddGroup (the group stays
// incomplete).
func (c *Cache) AddPart(k PartKey, d *delta.Delta, size int64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	b := size + partOverhead
	el, ok := c.entries[k.group()]
	if !ok {
		if entryOverhead+b > c.max {
			c.oversized++
			return
		}
		e := &cacheEntry{key: k.group(), parts: make(map[int]*delta.Delta, 1), total: entryOverhead}
		el = c.ll.PushFront(e)
		c.entries[k.group()] = el
		c.used += e.total
	}
	e := el.Value.(*cacheEntry)
	if _, exists := e.parts[k.PID]; exists {
		return
	}
	if e.total+b > c.max {
		c.oversized++
		return
	}
	e.parts[k.PID] = d
	e.total += b
	c.used += b
	c.ll.MoveToFront(el)
	c.evictLocked()
}

// evictLocked drops least-recently-used entries until within budget.
func (c *Cache) evictLocked() {
	for c.used > c.max && c.ll.Len() > 0 {
		el := c.ll.Back()
		e := el.Value.(*cacheEntry)
		c.ll.Remove(el)
		delete(c.entries, e.key)
		c.used -= e.total
		c.evictions++
	}
}

// Purge drops every entry (called when the index mutates: Append rebuilds
// the trailing timespan, so cached deltas for it would be stale).
func (c *Cache) Purge() {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	c.entries = make(map[GroupKey]*list.Element)
	c.used = 0
}

// CacheStats is a snapshot of cache counters. Oversized counts entries
// (or parts) rejected at admission because they alone would exceed the
// byte budget.
type CacheStats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	Oversized int64
	Entries   int
	Bytes     int64
	MaxBytes  int64
}

func (s CacheStats) String() string {
	return fmt.Sprintf("cache hits=%d misses=%d evictions=%d oversized=%d entries=%d bytes=%d/%d",
		s.Hits, s.Misses, s.Evictions, s.Oversized, s.Entries, s.Bytes, s.MaxBytes)
}

// Stats returns a snapshot of the cache counters (zero for a nil cache).
func (c *Cache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Oversized: c.oversized,
		Entries:   len(c.entries),
		Bytes:     c.used,
		MaxBytes:  c.max,
	}
}
