package graph

import (
	"fmt"
	"sort"

	"hgs/internal/temporal"
)

// EventKind enumerates the atomic change types of the paper's data model
// (§3.1): structural changes and attribute changes.
type EventKind uint8

const (
	// AddNode creates a node (no-op if it already exists).
	AddNode EventKind = iota + 1
	// RemoveNode deletes a node and all incident edges.
	RemoveNode
	// AddEdge creates a directed edge Node->Other (no-op if present).
	AddEdge
	// RemoveEdge deletes the directed edge Node->Other.
	RemoveEdge
	// SetNodeAttr sets attribute Key=Value on Node.
	SetNodeAttr
	// DelNodeAttr removes attribute Key from Node.
	DelNodeAttr
	// SetEdgeAttr sets attribute Key=Value on edge Node->Other.
	SetEdgeAttr
	// DelEdgeAttr removes attribute Key from edge Node->Other.
	DelEdgeAttr
)

var eventKindNames = [...]string{
	AddNode: "AddNode", RemoveNode: "RemoveNode",
	AddEdge: "AddEdge", RemoveEdge: "RemoveEdge",
	SetNodeAttr: "SetNodeAttr", DelNodeAttr: "DelNodeAttr",
	SetEdgeAttr: "SetEdgeAttr", DelEdgeAttr: "DelEdgeAttr",
}

func (k EventKind) String() string {
	if int(k) < len(eventKindNames) && eventKindNames[k] != "" {
		return eventKindNames[k]
	}
	return fmt.Sprintf("EventKind(%d)", uint8(k))
}

// IsEdge reports whether the event concerns an edge (and therefore touches
// two node states in the node-centric model).
func (k EventKind) IsEdge() bool {
	switch k {
	case AddEdge, RemoveEdge, SetEdgeAttr, DelEdgeAttr:
		return true
	}
	return false
}

// Event is the paper's atomic change (Example 1): one modification to the
// graph at one timepoint.
type Event struct {
	Time  temporal.Time
	Kind  EventKind
	Node  NodeID // subject node, or source of an edge event
	Other NodeID // target of an edge event
	Key   string // attribute key for attr events
	Value string // attribute value for Set* events
}

func (e Event) String() string {
	switch {
	case e.Kind.IsEdge() && (e.Kind == SetEdgeAttr || e.Kind == DelEdgeAttr):
		return fmt.Sprintf("%d:%v(%d->%d,%s=%s)", e.Time, e.Kind, e.Node, e.Other, e.Key, e.Value)
	case e.Kind.IsEdge():
		return fmt.Sprintf("%d:%v(%d->%d)", e.Time, e.Kind, e.Node, e.Other)
	case e.Kind == SetNodeAttr || e.Kind == DelNodeAttr:
		return fmt.Sprintf("%d:%v(%d,%s=%s)", e.Time, e.Kind, e.Node, e.Key, e.Value)
	default:
		return fmt.Sprintf("%d:%v(%d)", e.Time, e.Kind, e.Node)
	}
}

// Touches reports whether applying the event can modify the state of node
// id. Edge events touch both endpoints because edges are replicated with
// both endpoint states.
func (e Event) Touches(id NodeID) bool {
	if e.Node == id {
		return true
	}
	return e.Kind.IsEdge() && e.Other == id
}

// SortEvents orders events chronologically, stably preserving the input
// order of events at equal timepoints (the order of changes matters for
// delta sums; paper Definition 4).
func SortEvents(events []Event) {
	sort.SliceStable(events, func(i, j int) bool { return events[i].Time < events[j].Time })
}

// EventsSorted reports whether the slice is in chronological order.
func EventsSorted(events []Event) bool {
	return sort.SliceIsSorted(events, func(i, j int) bool { return events[i].Time < events[j].Time })
}

// FilterEventsByTime returns the events with Time in [start, end), in the
// original order. It assumes nothing about input ordering.
func FilterEventsByTime(events []Event, iv temporal.Interval) []Event {
	var out []Event
	for _, e := range events {
		if iv.Contains(e.Time) {
			out = append(out, e)
		}
	}
	return out
}

// FilterEventsByNode returns the events touching node id, in the original
// order.
func FilterEventsByNode(events []Event, id NodeID) []Event {
	var out []Event
	for _, e := range events {
		if e.Touches(id) {
			out = append(out, e)
		}
	}
	return out
}

// ExpandRemoveNode rewrites one event into the sequence indexes actually
// store: RemoveNode(v) becomes explicit RemoveEdge events for every edge
// incident on v in the current state w (deterministic order), followed by
// the RemoveNode itself, so that neighbors' change logs record the loss
// of their edges. All other events pass through unchanged. The
// synthesized events share the original timestamp; applying the group in
// any order converges to the same state.
func ExpandRemoveNode(w *Graph, e Event) []Event {
	if e.Kind != RemoveNode {
		return []Event{e}
	}
	ns := w.Node(e.Node)
	if ns == nil || len(ns.Edges) == 0 {
		return []Event{e}
	}
	keys := make([]EdgeKey, 0, len(ns.Edges))
	for k := range ns.Edges {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Other != keys[j].Other {
			return keys[i].Other < keys[j].Other
		}
		return !keys[i].Out && keys[j].Out
	})
	out := make([]Event, 0, len(keys)+1)
	for _, k := range keys {
		re := Event{Time: e.Time, Kind: RemoveEdge}
		if k.Out {
			re.Node, re.Other = e.Node, k.Other
		} else {
			re.Node, re.Other = k.Other, e.Node
		}
		out = append(out, re)
	}
	return append(out, e)
}
