package fetch

import (
	"container/list"
	"fmt"
	"sort"
	"sync"

	"hgs/internal/delta"
	"hgs/internal/graph"
)

// Byte-accounting overheads charged per cached entry, per micro-delta,
// and per negative (absence) marker on top of the encoded blob size,
// approximating the decoded in-memory footprint (maps, state headers)
// the blob length alone undercounts.
const (
	entryOverhead = 256
	partOverhead  = 64
	negOverhead   = 16
)

// The protected segment of the segmented LRU holds entries that proved
// reuse (a hit after admission); they cannot be evicted by a stream of
// one-shot insertions, which compete only for the remaining probation
// share. The share is adaptive: every adaptWindow observed hits the
// cache compares where the hits landed and steps the share toward the
// segment earning them — a stable hot set grows protection, heavy
// promotion traffic (new entries still proving reuse) grows probation —
// bounded to [minProtectedShare, maxProtectedShare].
const (
	initialProtectedShare = 0.8
	minProtectedShare     = 0.5
	maxProtectedShare     = 0.9
	adaptWindow           = 512
	adaptStep             = 0.05
)

// CacheOptions configure a Cache beyond its byte budget. The zero value
// of each field selects the v2 defaults; the legacy knobs exist so
// benchmarks and regression tests can reproduce the v1 (PR 2) behavior
// and quantify what the v2 policies buy.
type CacheOptions struct {
	// MaxBytes bounds the cache; <= 0 disables caching (nil cache).
	MaxBytes int64
	// PlainLRU disables the segmented (probation/protected) admission
	// policy and runs one flat LRU list — the v1 eviction behavior, in
	// which a single large scan can evict the entire hot set.
	PlainLRU bool
	// NoNegative disables negative caching of absent micro-delta rows —
	// the v1 absence behavior, in which only complete group entries know
	// absence and repeated point reads of absent rows hit the store
	// every time.
	NoNegative bool
}

// Cache is a bytes-bounded cache of decoded micro-deltas, keyed by
// (tsid, sid, did) group. Hot root and interior deltas of the tree —
// shared by every snapshot and micro-partition retrieval of a timespan —
// are decoded once and then served to all queries and TAF workers.
//
// An entry holds the decoded micro-deltas of one tree delta by pid. A
// full prefix scan installs a complete entry (so group lookups and
// known-absent answers are served without touching the store); a point
// read installs or extends an incomplete one, and a point read that
// found nothing installs a negative marker so the next probe of the
// same absent row skips the store (see AddNegative).
//
// Admission and eviction are a segmented LRU over entries: new entries
// enter a probation segment, a hit promotes to a protected segment
// bounded to protectedShare of the budget, and eviction always drains
// probation first. A one-shot burst of insertions (one huge snapshot
// scan) therefore competes only for the probation share and cannot
// evict the resident hot set; an entry bigger than the whole budget is
// rejected at the door (CacheStats.Oversized, one case of the general
// admission policy counted by CacheStats.AdmissionRejects).
//
// Cached deltas are shared read-only: readers merge them with
// Delta.ApplyTo (which clones states) and must never call MoveTo.
// A nil *Cache is valid and caches nothing.
type Cache struct {
	mu        sync.Mutex
	max       int64
	share     float64    // protected-segment share of the budget (adaptive)
	protMax   int64      // protected-segment byte bound (0 in plain-LRU mode)
	used      int64      // total bytes across both segments
	protUsed  int64      // bytes in the protected segment
	probation *list.List // front = most recently used; also the sole list in plain-LRU mode
	protected *list.List
	entries   map[GroupKey]*list.Element

	plainLRU   bool
	noNegative bool

	hits, misses, negativeHits              int64
	eventHits                               int64
	evictions, admissions, admissionRejects int64
	oversized                               int64
	winProb, winProt                        int64 // hits per segment in the current adaptation window
}

// cacheEntry is one (tsid, sid, did) group. Delta-table groups hold
// decoded micro-deltas in parts; eventlist-table groups hold decoded
// micro-eventlists in events (the key's Table decides the kind — the
// two never mix within one entry).
type cacheEntry struct {
	key   GroupKey
	parts map[int]*delta.Delta
	// events holds decoded micro-eventlists by pid (eventlist-table
	// entries only). Shared read-only like parts.
	events map[int][]graph.Event
	// absent marks pids known not to exist (negative markers); complete
	// entries know absence implicitly and carry no markers.
	absent map[int]struct{}
	// sorted is the pid-ascending part list, materialized once when the
	// entry completes so group hits — the hottest path — return it
	// without re-sorting.
	sorted []Part
	// sortedEvents is the eventlist-table counterpart of sorted.
	sortedEvents []EventPart
	complete     bool
	total        int64
	protected    bool // which segment the entry lives in
}

// has reports whether pid is resident, whatever the entry kind.
func (e *cacheEntry) has(pid int) bool {
	if _, ok := e.parts[pid]; ok {
		return true
	}
	_, ok := e.events[pid]
	return ok
}

// NewCache returns a segmented-LRU cache bounded to maxBytes with
// negative caching enabled (the v2 defaults); maxBytes <= 0 returns nil
// (caching disabled).
func NewCache(maxBytes int64) *Cache {
	return NewCacheWith(CacheOptions{MaxBytes: maxBytes})
}

// NewCacheWith returns a cache configured by opts; opts.MaxBytes <= 0
// returns nil (caching disabled).
func NewCacheWith(opts CacheOptions) *Cache {
	if opts.MaxBytes <= 0 {
		return nil
	}
	c := &Cache{
		max:        opts.MaxBytes,
		probation:  list.New(),
		protected:  list.New(),
		entries:    make(map[GroupKey]*list.Element),
		plainLRU:   opts.PlainLRU,
		noNegative: opts.NoNegative,
	}
	if !c.plainLRU {
		c.share = initialProtectedShare
		c.protMax = int64(float64(opts.MaxBytes) * c.share)
	}
	return c
}

// refreshLocked moves an entry to the MRU position of its current
// segment without promoting it (used by installs; reuse is proven by
// lookups, not by writes).
func (c *Cache) refreshLocked(el *list.Element) {
	if el.Value.(*cacheEntry).protected {
		c.protected.MoveToFront(el)
	} else {
		c.probation.MoveToFront(el)
	}
}

// touchLocked registers a hit on an entry's element: move to the front
// of its segment and, under the segmented policy, promote probation
// entries into the protected segment (demoting the protected LRU back
// to probation when the segment overflows its share).
func (c *Cache) touchLocked(el *list.Element) {
	e := el.Value.(*cacheEntry)
	if c.plainLRU {
		c.probation.MoveToFront(el)
		return
	}
	if e.protected {
		c.winProt++
		c.adaptLocked()
		c.protected.MoveToFront(el)
		return
	}
	c.winProb++
	c.adaptLocked()
	// Promote: the entry proved reuse.
	c.probation.Remove(el)
	e.protected = true
	c.entries[e.key] = c.protected.PushFront(e)
	c.protUsed += e.total
	c.demoteLocked()
}

// adaptLocked steps the protected share once per adaptWindow observed
// hits, toward whichever segment earned a clear majority of them: hits
// landing in probation mean new entries are still proving reuse and
// need room to do so (shrink protection); hits landing in protected
// mean the hot set is stable and deserves more of the budget (grow it).
// A near-even split leaves the share alone.
func (c *Cache) adaptLocked() {
	if c.winProb+c.winProt < adaptWindow {
		return
	}
	switch {
	case c.winProb > 2*c.winProt:
		c.share -= adaptStep
	case c.winProt > 2*c.winProb:
		c.share += adaptStep
	}
	if c.share < minProtectedShare {
		c.share = minProtectedShare
	}
	if c.share > maxProtectedShare {
		c.share = maxProtectedShare
	}
	c.protMax = int64(float64(c.max) * c.share)
	c.winProb, c.winProt = 0, 0
	c.demoteLocked()
}

// demoteLocked rebalances the protected segment back to its share by
// moving its LRU entries to probation (demotion, never eviction). It
// must run after every growth of protUsed — promotion, protected
// insertion, in-place growth of a protected entry — or the protected
// segment could swallow the whole budget and starve probation, leaving
// no room for new entries to prove reuse. A single protected entry is
// never demoted by its own growth.
func (c *Cache) demoteLocked() {
	for c.protUsed > c.protMax && c.protected.Len() > 1 {
		lru := c.protected.Back()
		le := lru.Value.(*cacheEntry)
		c.protected.Remove(lru)
		le.protected = false
		c.protUsed -= le.total
		c.entries[le.key] = c.probation.PushFront(le)
	}
}

// Group returns the complete micro-delta set of a group, pid-ascending,
// or ok=false when the group is absent or only partially resident. An
// empty complete group is an authoritative absence answer and counts as
// a negative hit.
func (c *Cache) Group(k GroupKey) ([]Part, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[k]
	if !ok || !el.Value.(*cacheEntry).complete {
		c.misses++
		return nil, false
	}
	e := el.Value.(*cacheEntry)
	if len(e.sorted) == 0 {
		c.negativeHits++
	} else {
		c.hits++
	}
	c.touchLocked(el)
	// The slice is shared read-only, like the deltas it holds.
	return e.sorted, true
}

// Part returns one micro-delta. known reports whether the answer is
// authoritative: a resident part hits positively; a complete entry or a
// negative marker knows absence (d == nil, known — a negative hit); an
// incomplete entry without a marker does not (known == false → read the
// store).
func (c *Cache) Part(k PartKey) (d *delta.Delta, known bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[k.group()]
	if !ok {
		c.misses++
		return nil, false
	}
	e := el.Value.(*cacheEntry)
	if d, ok := e.parts[k.PID]; ok {
		c.hits++
		c.touchLocked(el)
		return d, true
	}
	if _, neg := e.absent[k.PID]; neg || e.complete { // the row provably does not exist
		c.negativeHits++
		c.touchLocked(el)
		return nil, true
	}
	c.misses++
	return nil, false
}

// EventGroup returns the complete micro-eventlist set of a boundary
// eventlist, pid-ascending, or ok=false when absent or partial. Like
// Group, an empty complete group is an authoritative absence answer.
func (c *Cache) EventGroup(k GroupKey) ([]EventPart, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[k]
	if !ok || !el.Value.(*cacheEntry).complete {
		c.misses++
		return nil, false
	}
	e := el.Value.(*cacheEntry)
	if len(e.sortedEvents) == 0 {
		c.negativeHits++
	} else {
		c.hits++
		c.eventHits++
	}
	c.touchLocked(el)
	// The slice and its event slices are shared read-only.
	return e.sortedEvents, true
}

// EventPart returns one micro-eventlist. found reports whether the row
// exists, known whether the answer is authoritative (mirroring Part: a
// resident list hits, a complete entry or negative marker knows
// absence, an incomplete entry without a marker sends the caller to
// the store).
func (c *Cache) EventPart(k PartKey) (evs []graph.Event, found, known bool) {
	if c == nil {
		return nil, false, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[k.group()]
	if !ok {
		c.misses++
		return nil, false, false
	}
	e := el.Value.(*cacheEntry)
	if evs, ok := e.events[k.PID]; ok {
		c.hits++
		c.eventHits++
		c.touchLocked(el)
		return evs, true, true
	}
	if _, neg := e.absent[k.PID]; neg || e.complete { // the row provably does not exist
		c.negativeHits++
		c.touchLocked(el)
		return nil, false, true
	}
	c.misses++
	return nil, false, false
}

// AddGroup installs the complete decoded micro-delta set of a group.
// sizes[i] is the encoded size of parts[i] (the byte-budget charge).
// An empty parts slice installs a complete absence marker for the whole
// group at fixed cost. A group bigger than the whole budget is rejected
// at admission — one giant snapshot scan must not wipe every hot entry
// only to be evicted itself on the next add (size-aware admission;
// counted in CacheStats.Oversized and AdmissionRejects).
func (c *Cache) AddGroup(k GroupKey, parts []Part, sizes []int64) {
	if c == nil {
		return
	}
	e := &cacheEntry{key: k, parts: make(map[int]*delta.Delta, len(parts)), complete: true, total: entryOverhead}
	for i, p := range parts {
		e.parts[p.PID] = p.Delta
		e.total += sizes[i] + partOverhead
	}
	e.sorted = append([]Part(nil), parts...)
	sort.Slice(e.sorted, func(i, j int) bool { return e.sorted[i].PID < e.sorted[j].PID })
	c.mu.Lock()
	defer c.mu.Unlock()
	if e.total > c.max {
		c.oversized++
		c.admissionRejects++
		return
	}
	if el, ok := c.entries[k]; ok {
		old := el.Value.(*cacheEntry)
		c.removeLocked(el)
		// A completed entry inherits the protection its incomplete
		// predecessor earned, so completing a hot group does not expose
		// it to the next scan.
		e.protected = old.protected && !c.plainLRU
	}
	c.admissions++
	c.insertLocked(e)
	c.evictLocked()
}

// AddPart installs one decoded micro-delta into its group without
// marking the group complete. A part that would push its group past the
// whole budget is rejected like an oversized AddGroup (the group stays
// incomplete).
func (c *Cache) AddPart(k PartKey, d *delta.Delta, size int64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	b := size + partOverhead
	el, ok := c.entries[k.group()]
	if !ok {
		if entryOverhead+b > c.max {
			c.oversized++
			c.admissionRejects++
			return
		}
		e := &cacheEntry{key: k.group(), parts: make(map[int]*delta.Delta, 1), total: entryOverhead}
		c.admissions++
		el = c.insertLocked(e)
	}
	e := el.Value.(*cacheEntry)
	if _, exists := e.parts[k.PID]; exists {
		return
	}
	if _, neg := e.absent[k.PID]; neg {
		// The row exists after all; drop the stale absence marker.
		delete(e.absent, k.PID)
		c.addBytesLocked(e, -negOverhead)
	}
	if e.total+b > c.max {
		c.oversized++
		c.admissionRejects++
		return
	}
	e.parts[k.PID] = d
	c.addBytesLocked(e, b)
	c.refreshLocked(c.entries[k.group()])
	c.evictLocked()
}

// AddEventGroup installs the complete decoded micro-eventlist set of a
// boundary eventlist — the eventlist-table counterpart of AddGroup,
// under the same admission policy.
func (c *Cache) AddEventGroup(k GroupKey, parts []EventPart, sizes []int64) {
	if c == nil {
		return
	}
	e := &cacheEntry{key: k, events: make(map[int][]graph.Event, len(parts)), complete: true, total: entryOverhead}
	for i, p := range parts {
		e.events[p.PID] = p.Events
		e.total += sizes[i] + partOverhead
	}
	e.sortedEvents = append([]EventPart(nil), parts...)
	sort.Slice(e.sortedEvents, func(i, j int) bool { return e.sortedEvents[i].PID < e.sortedEvents[j].PID })
	c.mu.Lock()
	defer c.mu.Unlock()
	if e.total > c.max {
		c.oversized++
		c.admissionRejects++
		return
	}
	if el, ok := c.entries[k]; ok {
		old := el.Value.(*cacheEntry)
		c.removeLocked(el)
		e.protected = old.protected && !c.plainLRU
	}
	c.admissions++
	c.insertLocked(e)
	c.evictLocked()
}

// AddEventPart installs one decoded micro-eventlist into its group
// without marking the group complete — the eventlist-table counterpart
// of AddPart.
func (c *Cache) AddEventPart(k PartKey, evs []graph.Event, size int64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	b := size + partOverhead
	el, ok := c.entries[k.group()]
	if !ok {
		if entryOverhead+b > c.max {
			c.oversized++
			c.admissionRejects++
			return
		}
		e := &cacheEntry{key: k.group(), events: make(map[int][]graph.Event, 1), total: entryOverhead}
		c.admissions++
		el = c.insertLocked(e)
	}
	e := el.Value.(*cacheEntry)
	if _, exists := e.events[k.PID]; exists {
		return
	}
	if _, neg := e.absent[k.PID]; neg {
		// The row exists after all; drop the stale absence marker.
		delete(e.absent, k.PID)
		c.addBytesLocked(e, -negOverhead)
	}
	if e.total+b > c.max {
		c.oversized++
		c.admissionRejects++
		return
	}
	if e.events == nil {
		e.events = make(map[int][]graph.Event, 1)
	}
	e.events[k.PID] = evs
	c.addBytesLocked(e, b)
	c.refreshLocked(c.entries[k.group()])
	c.evictLocked()
}

// AddNegative records that one micro-delta row does not exist (a point
// read returned nothing), so the next probe of the same absent row is
// answered from the cache instead of paying a store round. Markers are
// tiny fixed-cost residents of their group entry; like positive entries
// they are dropped wholesale by Purge when Append rebuilds the trailing
// timespan.
func (c *Cache) AddNegative(k PartKey) {
	if c == nil || c.noNegative {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[k.group()]
	if !ok {
		if entryOverhead+negOverhead > c.max {
			c.oversized++
			c.admissionRejects++
			return
		}
		e := &cacheEntry{key: k.group(), parts: make(map[int]*delta.Delta), total: entryOverhead}
		c.admissions++
		el = c.insertLocked(e)
	}
	e := el.Value.(*cacheEntry)
	if e.complete {
		return // completeness already answers absence
	}
	if e.has(k.PID) {
		return
	}
	if _, exists := e.absent[k.PID]; exists {
		return
	}
	if e.total+negOverhead > c.max {
		c.admissionRejects++
		return
	}
	if e.absent == nil {
		e.absent = make(map[int]struct{})
	}
	e.absent[k.PID] = struct{}{}
	c.addBytesLocked(e, negOverhead)
	c.evictLocked()
}

// insertLocked places a (new) entry into its segment at MRU position
// and registers it, charging its bytes.
func (c *Cache) insertLocked(e *cacheEntry) *list.Element {
	var el *list.Element
	if e.protected {
		el = c.protected.PushFront(e)
		c.protUsed += e.total
	} else {
		el = c.probation.PushFront(e)
	}
	c.entries[e.key] = el
	c.used += e.total
	if e.protected {
		c.demoteLocked()
	}
	return el
}

// removeLocked unregisters an entry and refunds its bytes.
func (c *Cache) removeLocked(el *list.Element) {
	e := el.Value.(*cacheEntry)
	if e.protected {
		c.protected.Remove(el)
		c.protUsed -= e.total
	} else {
		c.probation.Remove(el)
	}
	delete(c.entries, e.key)
	c.used -= e.total
}

// addBytesLocked grows (or shrinks) an entry in place, keeping the
// segment accounting consistent.
func (c *Cache) addBytesLocked(e *cacheEntry, b int64) {
	e.total += b
	c.used += b
	if e.protected {
		c.protUsed += b
		if b > 0 {
			c.demoteLocked()
		}
	}
}

// evictLocked drops entries until within budget: probation (one-shot
// candidates) first, the protected segment only when probation is
// empty.
func (c *Cache) evictLocked() {
	for c.used > c.max {
		el := c.probation.Back()
		if el == nil {
			el = c.protected.Back()
		}
		if el == nil {
			return
		}
		c.removeLocked(el)
		c.evictions++
	}
}

// Purge drops every entry — positive and negative — and is called when
// the index mutates: Append rebuilds the trailing timespan, so cached
// deltas and absence markers for it would be stale.
func (c *Cache) Purge() {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.probation.Init()
	c.protected.Init()
	c.entries = make(map[GroupKey]*list.Element)
	c.used = 0
	c.protUsed = 0
}

// CacheStats is a snapshot of cache counters.
//
// Hits count positive answers (a resident delta or a non-empty group);
// NegativeHits count authoritative absence answers (an empty complete
// group, a complete group lacking the pid, or a negative marker) — each
// one a store read that was not issued. Admissions counts entries
// accepted into the cache; AdmissionRejects counts entries or parts the
// admission policy refused, of which Oversized (bigger than the whole
// budget) is the size-aware case. ProtectedBytes is the gauge of bytes
// currently in the protected segment — the scan-resistant hot set.
type CacheStats struct {
	Hits         int64
	Misses       int64
	NegativeHits int64
	// EventlistHits is the subset of Hits answered from cached
	// micro-eventlists (boundary replay rows served without a KV scan).
	EventlistHits    int64
	Evictions        int64
	Admissions       int64
	AdmissionRejects int64
	Oversized        int64
	Entries          int
	Bytes            int64
	ProtectedBytes   int64
	MaxBytes         int64
	// ProtectedShare is the current adaptive protected-segment share of
	// the byte budget (0 in plain-LRU mode).
	ProtectedShare float64
}

func (s CacheStats) String() string {
	return fmt.Sprintf("cache hits=%d (events=%d) neghits=%d misses=%d evictions=%d admits=%d rejects=%d oversized=%d entries=%d bytes=%d/%d protected=%d share=%.2f",
		s.Hits, s.EventlistHits, s.NegativeHits, s.Misses, s.Evictions, s.Admissions, s.AdmissionRejects, s.Oversized, s.Entries, s.Bytes, s.MaxBytes, s.ProtectedBytes, s.ProtectedShare)
}

// Stats returns a snapshot of the cache counters (zero for a nil cache).
func (c *Cache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:             c.hits,
		Misses:           c.misses,
		NegativeHits:     c.negativeHits,
		EventlistHits:    c.eventHits,
		Evictions:        c.evictions,
		Admissions:       c.admissions,
		AdmissionRejects: c.admissionRejects,
		Oversized:        c.oversized,
		Entries:          len(c.entries),
		Bytes:            c.used,
		ProtectedBytes:   c.protUsed,
		MaxBytes:         c.max,
		ProtectedShare:   c.share,
	}
}
