package bench

import (
	"fmt"
	"time"

	"hgs/internal/core"
	"hgs/internal/graph"
	"hgs/internal/kvstore"
)

// CacheBench — cold vs warm retrieval through the unified fetch layer:
// the same snapshot + node-fetch workload runs twice over a fresh query
// handle (cold cache, then warm) and once over a cache-disabled handle,
// reporting logical KV operations, machine round-trips, simulated
// service time and wall time for each pass. The warm pass exercising
// the decoded-delta cache must issue at least 2× fewer KV reads than
// the cold one — the acceptance bar of the fetch-layer refactor,
// checked by TestCacheBenchSpeedup.
func CacheBench(sc Scale) *Result {
	start := time.Now()
	events := Dataset1(sc)
	ix := buildIndex("fig11", events, 4, 1, nil)
	res := &Result{
		ID:    "cache",
		Title: "Decoded-delta cache: cold vs warm vs disabled (m=4, c=4)",
	}

	probes := probeTimes(events, 3)
	mid := probes[len(probes)/2]
	full, err := ix.TGI.GetSnapshot(mid, nil)
	if err != nil {
		panic(fmt.Sprintf("bench: cache probe snapshot: %v", err))
	}
	ids := full.NodeIDs()
	nodes := make([]graph.NodeID, 0, 32)
	for i := 0; i < 32 && i < len(ids); i++ {
		nodes = append(nodes, ids[len(ids)*i/32])
	}

	workload := func(t *core.TGI) {
		for _, tt := range probes {
			if _, err := t.GetSnapshot(tt, &core.FetchOptions{Clients: 4}); err != nil {
				panic(fmt.Sprintf("bench: cache snapshot: %v", err))
			}
		}
		for _, id := range nodes {
			if _, err := t.GetNodeAt(id, mid); err != nil {
				panic(fmt.Sprintf("bench: cache node fetch: %v", err))
			}
		}
	}
	run := func(t *core.TGI) (kvstore.Metrics, float64) {
		ix.Cluster.ResetMetrics()
		sec := timeIt(func() { workload(t) })
		return ix.Cluster.Metrics(), sec
	}

	// Fresh handles over the built cluster: one with the default cache
	// (bench indexes are built cache-off), one with caching disabled,
	// both with cold metadata.
	cfg := ix.TGI.Config()
	cfg.CacheBytes = 0 // default budget
	cachedTGI := core.New(ix.Cluster, cfg)
	cfgOff := cfg
	cfgOff.CacheBytes = -1
	uncachedTGI := core.New(ix.Cluster, cfgOff)

	ix.Cluster.SetLatency(kvstore.DefaultLatency())
	defer ix.Cluster.SetLatency(kvstore.LatencyModel{})
	coldM, coldSec := run(cachedTGI)
	warmM, warmSec := run(cachedTGI)
	offM, offSec := run(uncachedTGI)

	res.TableHeader = []string{"pass", "kv reads", "round-trips", "read KB", "sim wait", "elapsed"}
	row := func(name string, m kvstore.Metrics, sec float64) []string {
		return []string{
			name,
			fmt.Sprintf("%d", m.Reads),
			fmt.Sprintf("%d", m.RoundTrips),
			fmt.Sprintf("%d", m.BytesRead/1024),
			m.SimWait.Round(time.Millisecond).String(),
			fmt.Sprintf("%.3fs", sec),
		}
	}
	res.TableRows = append(res.TableRows,
		row("cold cache", coldM, coldSec),
		row("warm cache", warmM, warmSec),
		row("cache off", offM, offSec),
	)
	if warmM.Reads > 0 {
		res.Notes = append(res.Notes, fmt.Sprintf("warm pass issues %.1fx fewer kv reads than cold", float64(coldM.Reads)/float64(warmM.Reads)))
	}
	res.Notes = append(res.Notes, cachedTGI.CacheStats().String())
	res.Elapsed = time.Since(start)
	return res
}

// CachePasses runs the cache workload without the latency model and
// returns the cold and warm pass metrics — the testable core of the
// cache experiment (used by the bench smoke tests).
func CachePasses(sc Scale) (cold, warm kvstore.Metrics) {
	events := Dataset1(sc)
	ix := buildIndex("fig11", events, 4, 1, nil)
	probes := probeTimes(events, 3)
	cfg := ix.TGI.Config()
	cfg.CacheBytes = 0 // default budget (bench indexes are built cache-off)
	t := core.New(ix.Cluster, cfg)
	run := func() kvstore.Metrics {
		ix.Cluster.ResetMetrics()
		for _, tt := range probes {
			if _, err := t.GetSnapshot(tt, &core.FetchOptions{Clients: 4}); err != nil {
				panic(err)
			}
		}
		return ix.Cluster.Metrics()
	}
	cold = run()
	warm = run()
	return cold, warm
}
