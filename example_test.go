package hgs_test

import (
	"fmt"

	"hgs"
)

// ExampleStore demonstrates loading a history and retrieving past states.
func ExampleStore() {
	store, _ := hgs.Open(hgs.Options{})
	_ = store.Load([]hgs.Event{
		{Time: 1, Kind: hgs.AddNode, Node: 1},
		{Time: 2, Kind: hgs.AddNode, Node: 2},
		{Time: 3, Kind: hgs.AddEdge, Node: 1, Other: 2},
		{Time: 4, Kind: hgs.SetNodeAttr, Node: 1, Key: "name", Value: "ada"},
		{Time: 5, Kind: hgs.RemoveEdge, Node: 1, Other: 2},
	})

	g3, _ := store.Snapshot(3)
	g5, _ := store.Snapshot(5)
	fmt.Println("edges at t=3:", g3.NumEdges())
	fmt.Println("edges at t=5:", g5.NumEdges())

	ns, _ := store.Node(1, 4)
	fmt.Println("name at t=4:", ns.Attrs["name"])
	// Output:
	// edges at t=3: 1
	// edges at t=5: 0
	// name at t=4: ada
}

// ExampleStore_nodeHistory walks a node's versions.
func ExampleStore_nodeHistory() {
	store, _ := hgs.Open(hgs.Options{})
	_ = store.Load([]hgs.Event{
		{Time: 1, Kind: hgs.AddNode, Node: 7},
		{Time: 2, Kind: hgs.SetNodeAttr, Node: 7, Key: "job", Value: "analyst"},
		{Time: 3, Kind: hgs.SetNodeAttr, Node: 7, Key: "job", Value: "manager"},
	})
	h, _ := store.NodeHistory(7, 0, 10)
	for _, v := range h.Versions() {
		fmt.Printf("%v job=%q\n", v.Valid, v.State.Attrs["job"])
	}
	// Output:
	// [1, 2) job=""
	// [2, 3) job="analyst"
	// [3, 10) job="manager"
}

// ExampleStore_planTraces traces retrievals: each query records what it
// planned, what the decoded-delta cache absorbed (including known
// absences), and what actually hit the key-value store.
func ExampleStore_planTraces() {
	store, _ := hgs.Open(hgs.Options{TracePlans: true})
	_ = store.Load([]hgs.Event{
		{Time: 1, Kind: hgs.AddNode, Node: 1},
		{Time: 2, Kind: hgs.AddNode, Node: 2},
		{Time: 3, Kind: hgs.AddEdge, Node: 1, Other: 2},
	})
	_, _ = store.Snapshot(3) // cold: the plan's delta groups read the store
	_, _ = store.Snapshot(3) // warm: the cache answers the same plan
	for _, tr := range store.PlanTraces() {
		fmt.Printf("%s: read the store? %v cache answered? %v\n",
			tr.Op, tr.KVReads > 0, tr.CacheHits+tr.NegativeHits > 0)
	}
	// Output:
	// snapshot: read the store? true cache answered? false
	// snapshot: read the store? false cache answered? true
}

// ExampleEvolution samples a graph quantity over time with the TAF.
func ExampleEvolution() {
	store, _ := hgs.Open(hgs.Options{})
	_ = store.Load([]hgs.Event{
		{Time: 1, Kind: hgs.AddNode, Node: 1},
		{Time: 2, Kind: hgs.AddNode, Node: 2},
		{Time: 3, Kind: hgs.AddNode, Node: 3},
		{Time: 4, Kind: hgs.AddEdge, Node: 1, Other: 2},
		{Time: 5, Kind: hgs.AddEdge, Node: 2, Other: 3},
		{Time: 6, Kind: hgs.AddEdge, Node: 1, Other: 3},
	})
	a := store.Analytics(2)
	son, _ := a.SON().Timeslice(hgs.NewInterval(1, 7)).Fetch()
	series := hgs.Evolution(son, hgs.GraphDensity, 3, []hgs.Time{3, 4, 6})
	for _, p := range series {
		fmt.Printf("t=%d density=%.2f\n", p.Time, p.Value)
	}
	if m, ok := series.Max(); ok {
		fmt.Printf("peak at t=%d\n", m.Time)
	}
	// Output:
	// t=3 density=0.00
	// t=4 density=0.33
	// t=6 density=1.00
	// peak at t=6
}
