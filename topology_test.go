package hgs

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"hgs/internal/workload"
)

// TestDegradedReadsAllQueryPaths is the replication acceptance test:
// with r=2, every query path must answer byte-identically to the
// healthy cluster no matter which single storage node is down, with the
// failovers visible in the metrics — and the counters must stop growing
// once the node is revived.
func TestDegradedReadsAllQueryPaths(t *testing.T) {
	opts := smallOptions()
	opts.Machines = 3
	opts.Replication = 2
	opts.CacheBytes = -1 // force every query to the KV layer
	store, events := loadWiki(t, opts, 700)
	defer store.Close()
	lo, hi, err := store.TimeRange()
	if err != nil {
		t.Fatal(err)
	}
	mid := (lo + hi) / 2

	type answers struct {
		snap    *Graph
		node    *NodeState
		hist    *NodeHistory
		khop    *Graph
		changes []Time
	}
	query := func() answers {
		t.Helper()
		var a answers
		if a.snap, err = store.Snapshot(mid); err != nil {
			t.Fatal(err)
		}
		if a.node, err = store.Node(5, hi); err != nil {
			t.Fatal(err)
		}
		if a.hist, err = store.NodeHistory(5, lo, hi+1); err != nil {
			t.Fatal(err)
		}
		if a.khop, err = store.KHop(5, 2, mid); err != nil {
			t.Fatal(err)
		}
		if a.changes, err = store.ChangeTimes(5, lo, hi+1); err != nil {
			t.Fatal(err)
		}
		return a
	}
	healthy := query()
	if !healthy.snap.Equal(mustGraph(events, mid)) {
		t.Fatal("healthy snapshot mismatch")
	}

	for _, down := range store.Cluster().NodeIDs() {
		if err := store.FailStorageNode(down); err != nil {
			t.Fatal(err)
		}
		store.Cluster().ResetMetrics()
		got := query()
		if !got.snap.Equal(healthy.snap) {
			t.Fatalf("node %d down: snapshot diverged", down)
		}
		if (got.node == nil) != (healthy.node == nil) || (got.node != nil && !got.node.Equal(healthy.node)) {
			t.Fatalf("node %d down: node state diverged", down)
		}
		if got.hist.StateAt(mid) == nil != (healthy.hist.StateAt(mid) == nil) {
			t.Fatalf("node %d down: history diverged", down)
		}
		if !got.khop.Equal(healthy.khop) {
			t.Fatalf("node %d down: k-hop diverged", down)
		}
		if !reflect.DeepEqual(got.changes, healthy.changes) {
			t.Fatalf("node %d down: change times diverged", down)
		}
		// Batched reads route around the down replica at planning time
		// (DegradedReads counts that), so Failovers — failed visits —
		// need not move on these paths; DegradedReads is the signal.
		m := store.Cluster().Metrics()
		if m.DegradedReads == 0 {
			t.Fatalf("node %d down: expected degraded reads, got %+v", down, m)
		}
		info, err := store.Topology()
		if err != nil {
			t.Fatal(err)
		}
		if info.UnderReplicated == 0 {
			t.Fatalf("node %d down: topology reports no under-replicated partitions", down)
		}
		if err := store.ReviveStorageNode(down); err != nil {
			t.Fatal(err)
		}
	}

	store.Cluster().ResetMetrics()
	query()
	if m := store.Cluster().Metrics(); m.DegradedReads != 0 || m.Failovers != 0 {
		t.Fatalf("counters kept growing after revive: %+v", m)
	}
}

// TestInjectFaultQueriesSurvive drives the per-replica error injector:
// every visit to node 0 errors, yet queries answer correctly via
// failover.
func TestInjectFaultQueriesSurvive(t *testing.T) {
	opts := smallOptions()
	opts.Replication = 2
	store, events := loadWiki(t, opts, 500)
	defer store.Close()
	if err := store.InjectFault(0, &Fault{ErrRate: 1}); err != nil {
		t.Fatal(err)
	}
	_, hi, _ := store.TimeRange()
	g, err := store.Snapshot(hi)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(mustGraph(events, hi)) {
		t.Fatal("snapshot under injected fault diverged")
	}
	if m := store.Cluster().Metrics(); m.Failovers == 0 {
		t.Fatalf("expected failovers under injected fault: %+v", m)
	}
	if err := store.InjectFault(0, nil); err != nil {
		t.Fatal(err)
	}
}

// TestAddNodePersistsTopology grows a durable store and verifies the
// committed topology survives a reopen — and that the relocated
// partitions are found where the new ring says they are.
func TestAddNodePersistsTopology(t *testing.T) {
	dir := t.TempDir()
	opts := smallOptions()
	opts.DataDir = dir
	opts.RebalanceRate = -1
	events := workload.Wikipedia(workload.WikiConfig{Nodes: 500, EdgesPerNode: 3, Seed: 9})
	store, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Load(events); err != nil {
		t.Fatal(err)
	}
	_, hi, _ := store.TimeRange()
	want, err := store.Snapshot(hi)
	if err != nil {
		t.Fatal(err)
	}

	if err := store.AddStorageNode(2); err != nil {
		t.Fatal(err)
	}
	if err := store.WaitRebalance(); err != nil {
		t.Fatal(err)
	}
	g, err := store.Snapshot(hi)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(want) {
		t.Fatal("post-rebalance snapshot diverged")
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	blob, err := os.ReadFile(filepath.Join(dir, "cluster.json"))
	if err != nil {
		t.Fatal(err)
	}
	var cm clusterMeta
	if err := json.Unmarshal(blob, &cm); err != nil {
		t.Fatal(err)
	}
	if cm.Machines != 3 || !reflect.DeepEqual(cm.Nodes, []int{0, 1, 2}) || cm.Placement != placementRing {
		t.Fatalf("persisted topology: %+v", cm)
	}

	re, err := Open(Options{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := re.Cluster().Machines(); got != 3 {
		t.Fatalf("reopened machines = %d", got)
	}
	g, err = re.Snapshot(hi)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(want) {
		t.Fatal("reopened snapshot diverged")
	}
}

// TestRemoveNodePersistsTopology shrinks a durable store and reopens it.
func TestRemoveNodePersistsTopology(t *testing.T) {
	dir := t.TempDir()
	opts := smallOptions()
	opts.Machines = 3
	opts.DataDir = dir
	opts.RebalanceRate = -1
	events := workload.Wikipedia(workload.WikiConfig{Nodes: 400, EdgesPerNode: 3, Seed: 11})
	store, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Load(events); err != nil {
		t.Fatal(err)
	}
	_, hi, _ := store.TimeRange()
	want, err := store.Snapshot(hi)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.RemoveStorageNode(1); err != nil {
		t.Fatal(err)
	}
	if err := store.WaitRebalance(); err != nil {
		t.Fatal(err)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(Options{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := re.Cluster().NodeIDs(); !reflect.DeepEqual(got, []int{0, 2}) {
		t.Fatalf("reopened nodes = %v", got)
	}
	g, err := re.Snapshot(hi)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(want) {
		t.Fatal("post-removal snapshot diverged")
	}
}

// TestLegacyPlacementRefused: a cluster.json without the placement
// field marks a mod-m-placed directory; opening it through the ring
// would misroute every read, so Open must refuse.
func TestLegacyPlacementRefused(t *testing.T) {
	dir := t.TempDir()
	blob, _ := json.Marshal(map[string]any{"machines": 2, "replication": 1, "engine": "disk"})
	if err := os.WriteFile(filepath.Join(dir, "cluster.json"), blob, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := Open(Options{DataDir: dir})
	if err == nil {
		t.Fatal("legacy directory must be refused")
	}
}

// TestVirtualNodesConflictRejected: placement depends on the vnode
// count, so an explicit conflicting value must be rejected on reopen.
func TestVirtualNodesConflictRejected(t *testing.T) {
	dir := t.TempDir()
	store, err := Open(Options{DataDir: dir, VirtualNodes: 32})
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Options{DataDir: dir, VirtualNodes: 16}); err == nil {
		t.Fatal("conflicting VirtualNodes must be rejected")
	}
	re, err := Open(Options{DataDir: dir}) // unset adopts the stored value
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
}

// TestTopologyGuardErrors checks the hgs-level sentinels.
func TestTopologyGuardErrors(t *testing.T) {
	opts := smallOptions()
	opts.Replication = 2
	store, _ := loadWiki(t, opts, 200)
	defer store.Close()
	if err := store.FailStorageNode(9); !errors.Is(err, ErrUnknownStorageNode) {
		t.Fatalf("FailStorageNode(9): %v", err)
	}
	if err := store.AddStorageNode(0); !errors.Is(err, ErrDuplicateStorageNode) {
		t.Fatalf("AddStorageNode(0): %v", err)
	}
	if err := store.RemoveStorageNode(1); !errors.Is(err, ErrTooFewNodes) {
		t.Fatalf("RemoveStorageNode(1): %v", err)
	}
}
