# Tier-1 CI gate for the Historical Graph Store. `make ci` is the
# documented pre-merge check (ROADMAP.md): vet, build, fast tests (with
# and without the race detector), and formatting. `make test-full`
# additionally runs the ~30s bench smoke tests that -short skips.

GO ?= go

.PHONY: ci vet build test test-race test-full fmt-check fmt bench bench-cache

ci: vet build test test-race fmt-check

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test -short ./...

test-race:
	$(GO) test -race -short ./...

test-full:
	$(GO) test ./...

fmt-check:
	@files="$$(gofmt -l .)"; \
	if [ -n "$$files" ]; then \
		echo "gofmt needed on:"; echo "$$files"; exit 1; \
	fi

fmt:
	gofmt -w .

bench:
	$(GO) run ./cmd/hgs-bench

# Cold vs warm decoded-delta cache comparison (KV ops, round-trips,
# simulated wait per pass).
bench-cache:
	$(GO) run ./cmd/hgs-bench -run cache
