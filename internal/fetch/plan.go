package fetch

import (
	"hgs/internal/delta"
	"hgs/internal/graph"
	"hgs/internal/kvstore"
)

// GroupKey names one tree delta within a horizontal partition: every
// micro-delta sharing the DeltaPrefix(DID) under PlacementKey(TSID, SID)
// of one delta-bearing table (TableDeltas, or TableAux where DID is the
// leaf index). This is the caching granularity — a snapshot wants all of
// it, a micro-partition fetch wants one pid of it. For the eventlist
// tables (TableEvents, TableAuxEvents) DID is the eventlist index and
// the group is one boundary eventlist's micro-eventlists.
type GroupKey struct {
	Table          string
	TSID, SID, DID int
}

// PartKey names a single micro-delta (or micro-eventlist, for the
// eventlist tables).
type PartKey struct {
	Table               string
	TSID, SID, DID, PID int
}

func (p PartKey) group() GroupKey { return GroupKey{p.Table, p.TSID, p.SID, p.DID} }

// isEventTable reports whether a table stores micro-eventlists (decoded
// as event slices) rather than micro-deltas.
func isEventTable(table string) bool {
	return table == TableEvents || table == TableAuxEvents
}

// scanRef is the prefix scan that fetches every part of a group.
func (k GroupKey) scanRef() kvstore.ScanRef {
	prefix := DeltaPrefix(k.DID)
	if isEventTable(k.Table) {
		prefix = EventPrefix(k.DID)
	}
	return kvstore.ScanRef{Table: k.Table, PKey: PlacementKey(k.TSID, k.SID), Prefix: prefix}
}

// keyRef is the point read that fetches one part.
func (k PartKey) keyRef() kvstore.KeyRef {
	ckey := DeltaCKey(k.DID, k.PID)
	if isEventTable(k.Table) {
		ckey = EventCKey(k.DID, k.PID)
	}
	return kvstore.KeyRef{Table: k.Table, PKey: PlacementKey(k.TSID, k.SID), CKey: ckey}
}

// Plan is a deduplicated read set for one retrieval. Add requests in any
// order — duplicates collapse — then hand the plan to Executor.Exec and
// read results back by the same coordinates.
type Plan struct {
	groups   []GroupKey
	groupSet map[GroupKey]struct{}
	parts    []PartKey
	partSet  map[PartKey]struct{}
	gets     []kvstore.KeyRef
	getSet   map[kvstore.KeyRef]struct{}
	scans    []kvstore.ScanRef
	scanSet  map[kvstore.ScanRef]struct{}
}

// NewPlan returns an empty plan.
func NewPlan() *Plan {
	return &Plan{
		groupSet: make(map[GroupKey]struct{}),
		partSet:  make(map[PartKey]struct{}),
		getSet:   make(map[kvstore.KeyRef]struct{}),
		scanSet:  make(map[kvstore.ScanRef]struct{}),
	}
}

// DeltaGroup requests every micro-delta of tree delta did (one prefix
// scan, or a cache hit when the whole group is resident).
func (p *Plan) DeltaGroup(tsid, sid, did int) {
	k := GroupKey{TableDeltas, tsid, sid, did}
	if _, ok := p.groupSet[k]; ok {
		return
	}
	p.groupSet[k] = struct{}{}
	p.groups = append(p.groups, k)
}

// DeltaPart requests one micro-delta. A part already covered by a
// requested group is still planned independently — the group scan and
// the point read deduplicate at the cache, not the plan (plans mixing
// both for the same delta are not produced by the query sites).
func (p *Plan) DeltaPart(tsid, sid, did, pid int) {
	p.part(PartKey{TableDeltas, tsid, sid, did, pid})
}

// AuxPart requests one auxiliary frontier micro-delta (1-hop
// replication): the TableAux row at DeltaCKey(leaf, pid). Aux deltas
// share the decoded cache with tree deltas — hot frontier rows are
// decoded once across queries.
func (p *Plan) AuxPart(tsid, sid, leaf, pid int) {
	p.part(PartKey{TableAux, tsid, sid, leaf, pid})
}

// EventGroup requests every micro-eventlist of boundary eventlist el
// (one prefix scan, or a cache hit when the list is resident). Decoded
// eventlists ride the same segmented-LRU cache as deltas, so warm
// snapshot queries stop re-reading and re-decoding their boundary
// replay rows.
func (p *Plan) EventGroup(tsid, sid, el int) {
	k := GroupKey{TableEvents, tsid, sid, el}
	if _, ok := p.groupSet[k]; ok {
		return
	}
	p.groupSet[k] = struct{}{}
	p.groups = append(p.groups, k)
}

// EventPart requests one micro-eventlist: the TableEvents row at
// EventCKey(el, pid). Absent rows install negative markers like absent
// micro-deltas do.
func (p *Plan) EventPart(tsid, sid, el, pid int) {
	p.part(PartKey{TableEvents, tsid, sid, el, pid})
}

// AuxEventPart requests one auxiliary frontier micro-eventlist (1-hop
// replication): the TableAuxEvents row at EventCKey(el, pid).
func (p *Plan) AuxEventPart(tsid, sid, el, pid int) {
	p.part(PartKey{TableAuxEvents, tsid, sid, el, pid})
}

func (p *Plan) part(k PartKey) {
	if _, ok := p.partSet[k]; ok {
		return
	}
	p.partSet[k] = struct{}{}
	p.parts = append(p.parts, k)
}

// Get requests one raw row (version chains, eventlists, aux rows —
// anything that is not a cached delta).
func (p *Plan) Get(table, pkey, ckey string) {
	k := kvstore.KeyRef{Table: table, PKey: pkey, CKey: ckey}
	if _, ok := p.getSet[k]; ok {
		return
	}
	p.getSet[k] = struct{}{}
	p.gets = append(p.gets, k)
}

// Scan requests one raw prefix scan.
func (p *Plan) Scan(table, pkey, prefix string) {
	k := kvstore.ScanRef{Table: table, PKey: pkey, Prefix: prefix}
	if _, ok := p.scanSet[k]; ok {
		return
	}
	p.scanSet[k] = struct{}{}
	p.scans = append(p.scans, k)
}

// Size reports the deduplicated request counts (groups, parts, gets,
// scans) — the planner's unit-test surface.
func (p *Plan) Size() (groups, parts, gets, scans int) {
	return len(p.groups), len(p.parts), len(p.gets), len(p.scans)
}

// Empty reports whether the plan holds no requests.
func (p *Plan) Empty() bool {
	return len(p.groups) == 0 && len(p.parts) == 0 && len(p.gets) == 0 && len(p.scans) == 0
}

// Part is one decoded micro-delta of a group, identified by pid.
type Part struct {
	PID   int
	Delta *delta.Delta
}

// EventPart is one decoded micro-eventlist of a boundary eventlist,
// identified by pid. Events are shared read-only when the cache is
// enabled: filter them into new slices, never mutate or re-sort in
// place.
type EventPart struct {
	PID    int
	Events []graph.Event
}

// Result answers an executed plan. When the executor runs with a cache,
// deltas returned through Group and Part are owned by the cache and
// shared across queries: callers must treat them as immutable — merge
// them into graphs with Merge (or Delta.ApplyTo, which clones), never
// Delta.MoveTo. With caching disabled every delta is a private decode
// and Merge transfers ownership instead of cloning. Decoded event
// slices (EventGroup/EventPart/AuxEventPart) are always read-only.
type Result struct {
	groups      map[GroupKey][]Part
	parts       map[PartKey]*delta.Delta
	eventGroups map[GroupKey][]EventPart
	eventParts  map[PartKey][]graph.Event
	gets        map[kvstore.KeyRef][]byte
	scans       map[kvstore.ScanRef][]kvstore.Row
	// shared records that deltas are (or may be) cache-resident.
	shared bool
}

// Merge merges a delta returned by this result into g, preserving the
// fast path: cache-shared deltas clone their states in (ApplyTo),
// private decodes move them (MoveTo, no copying). Each delta may be
// merged at most once per result when the cache is disabled.
func (r *Result) Merge(d *delta.Delta, g *graph.Graph) {
	if r.shared {
		d.ApplyTo(g)
	} else {
		d.MoveTo(g)
	}
}

// Group returns the micro-deltas of a requested group, pid-ascending.
func (r *Result) Group(tsid, sid, did int) []Part {
	return r.groups[GroupKey{TableDeltas, tsid, sid, did}]
}

// Part returns a requested micro-delta, nil when the row does not exist.
func (r *Result) Part(tsid, sid, did, pid int) *delta.Delta {
	return r.parts[PartKey{TableDeltas, tsid, sid, did, pid}]
}

// AuxPart returns a requested auxiliary micro-delta, nil when absent.
func (r *Result) AuxPart(tsid, sid, leaf, pid int) *delta.Delta {
	return r.parts[PartKey{TableAux, tsid, sid, leaf, pid}]
}

// EventGroup returns the micro-eventlists of a requested boundary
// eventlist, pid-ascending. The event slices are read-only.
func (r *Result) EventGroup(tsid, sid, el int) []EventPart {
	return r.eventGroups[GroupKey{TableEvents, tsid, sid, el}]
}

// EventPart returns a requested micro-eventlist; ok is false when the
// row does not exist. The event slice is read-only.
func (r *Result) EventPart(tsid, sid, el, pid int) ([]graph.Event, bool) {
	evs, ok := r.eventParts[PartKey{TableEvents, tsid, sid, el, pid}]
	return evs, ok
}

// AuxEventPart returns a requested auxiliary micro-eventlist; ok is
// false when the row does not exist. The event slice is read-only.
func (r *Result) AuxEventPart(tsid, sid, el, pid int) ([]graph.Event, bool) {
	evs, ok := r.eventParts[PartKey{TableAuxEvents, tsid, sid, el, pid}]
	return evs, ok
}

// Get returns a requested raw row.
func (r *Result) Get(table, pkey, ckey string) ([]byte, bool) {
	v, ok := r.gets[kvstore.KeyRef{Table: table, PKey: pkey, CKey: ckey}]
	return v, ok
}

// Scan returns the rows of a requested prefix scan.
func (r *Result) Scan(table, pkey, prefix string) []kvstore.Row {
	return r.scans[kvstore.ScanRef{Table: table, PKey: pkey, Prefix: prefix}]
}
