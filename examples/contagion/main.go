// Contagion: the paper's introduction motivates historical graph
// analysis with the spread of epidemics and information diffusion. This
// example simulates an SI contagion over a temporal contact network —
// infection can only cross edges that exist at the moment of contact —
// then uses the store to answer the retrospective questions an
// epidemiologist would ask: when did each node get infected, which
// contact was responsible, and how did the infected set grow?
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	"hgs"
	"hgs/internal/workload"
)

func main() {
	// A contact network with churn: friendships form and dissolve.
	base := workload.Friendster(workload.FriendsterConfig{
		Communities:   5,
		CommunitySize: 200,
		IntraDegree:   6,
		InterFraction: 0.05,
		Seed:          11,
	})
	events := workload.Augment(base, workload.AugmentConfig{Extra: 4000, DeleteFraction: 0.45, Seed: 12})

	store, err := hgs.Open(hgs.Options{
		Machines:       2,
		TimespanEvents: len(events)/2 + 1,
		EventlistSize:  len(events) / 12,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := store.Load(events); err != nil {
		log.Fatal(err)
	}
	lo, hi, _ := store.TimeRange()

	// Simulate the contagion over the stored history: walk snapshots at
	// regular check times; each infected node infects each current
	// neighbor with probability beta.
	const beta = 0.35
	rng := rand.New(rand.NewSource(1))
	patientZero := hgs.NodeID(0)
	infectedAt := map[hgs.NodeID]hgs.Time{patientZero: lo}
	infectedBy := map[hgs.NodeID]hgs.NodeID{}
	checks := hgs.EvenTimepoints(hgs.NewInterval(lo, hi+1), 24)
	for _, t := range checks {
		g, err := store.Snapshot(t)
		if err != nil {
			log.Fatal(err)
		}
		// Contacts of currently infected nodes.
		for id, t0 := range infectedAt {
			if t0 > t {
				continue
			}
			for _, nb := range g.Neighbors(id) {
				if _, done := infectedAt[nb]; done {
					continue
				}
				if rng.Float64() < beta {
					infectedAt[nb] = t
					infectedBy[nb] = id
				}
			}
		}
	}
	fmt.Printf("contagion reached %d of %d nodes\n", len(infectedAt), mustNodes(store, hi))

	// Retrospective 1: growth curve of the infected set.
	type tick struct {
		t hgs.Time
		n int
	}
	var curve []tick
	for _, t := range checks {
		n := 0
		for _, t0 := range infectedAt {
			if t0 <= t {
				n++
			}
		}
		curve = append(curve, tick{t, n})
	}
	fmt.Println("\ninfected count over time:")
	for _, c := range curve {
		fmt.Printf("  t=%-8d %4d\n", c.t, c.n)
	}

	// Retrospective 2: verify transmission edges existed at infection
	// time — a temporal-pattern check only a historical store can do.
	verified, broken := 0, 0
	for victim, source := range infectedBy {
		g, err := store.KHop(source, 1, infectedAt[victim])
		if err != nil {
			log.Fatal(err)
		}
		if g.Has(victim) {
			verified++
		} else {
			broken++
		}
	}
	fmt.Printf("\ntransmission edges verified in history: %d/%d\n", verified, verified+broken)

	// Retrospective 3: super-spreaders — who infected the most?
	spread := map[hgs.NodeID]int{}
	for _, source := range infectedBy {
		spread[source]++
	}
	type ss struct {
		id hgs.NodeID
		n  int
	}
	var tops []ss
	for id, n := range spread {
		tops = append(tops, ss{id, n})
	}
	sort.Slice(tops, func(i, j int) bool {
		if tops[i].n != tops[j].n {
			return tops[i].n > tops[j].n
		}
		return tops[i].id < tops[j].id
	})
	fmt.Println("\ntop spreaders (direct infections):")
	for i := 0; i < 3 && i < len(tops); i++ {
		h, err := store.NodeHistory(tops[i].id, lo, hi+1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  node %-6d infected %2d others (contact-list changes: %d)\n",
			tops[i].id, tops[i].n, len(h.Events))
	}
}

func mustNodes(store *hgs.Store, t hgs.Time) int {
	g, err := store.Snapshot(t)
	if err != nil {
		log.Fatal(err)
	}
	return g.NumNodes()
}
