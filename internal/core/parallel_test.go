package core

import (
	"bytes"
	"testing"
	"time"

	"hgs/internal/backend/disklog"
	"hgs/internal/backend/tiered"
	"hgs/internal/codec"
	"hgs/internal/fetch"
	"hgs/internal/graph"
	"hgs/internal/kvstore"
	"hgs/internal/temporal"
)

// snapshotBytes serializes a snapshot canonically: every node state
// encoded with the deterministic codec (sorted attributes and edges) in
// node-id order. Two snapshots are byte-identical iff these agree.
func snapshotBytes(t *testing.T, g *graph.Graph) []byte {
	t.Helper()
	cdc := codec.Codec{}
	var buf bytes.Buffer
	for _, id := range g.NodeIDs() {
		blob, err := cdc.EncodeNodeState(g.Node(id))
		if err != nil {
			t.Fatalf("EncodeNodeState: %v", err)
		}
		buf.Write(blob)
	}
	return buf.Bytes()
}

// TestParallelWorkersDeterministic pins the materialization contract:
// MaterializeWorkers changes only local CPU parallelism, so a
// sequential handle (workers=1) and a maximally sharded one (workers=8)
// over the same stored index must produce byte-identical snapshots —
// on every storage engine, and both matching the sequential oracle
// replay of the raw history.
func TestParallelWorkersDeterministic(t *testing.T) {
	events := genHistory(7, 700, 60)
	cfg := smallConfig()
	cfg.HorizontalPartitions = 5 // enough sid shards to occupy 8 workers unevenly

	engines := map[string]func(t *testing.T) *kvstore.Cluster{
		"memory": func(t *testing.T) *kvstore.Cluster {
			return kvstore.NewCluster(kvstore.Config{Machines: 3, Replication: 1})
		},
		"disk": func(t *testing.T) *kvstore.Cluster {
			cl, err := kvstore.Open(kvstore.Config{
				Machines: 3,
				Backend:  disklog.Factory(t.TempDir(), disklog.Options{}),
			})
			if err != nil {
				t.Fatal(err)
			}
			return cl
		},
		"tiered": func(t *testing.T) *kvstore.Cluster {
			cl, err := kvstore.Open(kvstore.Config{
				Machines: 3,
				Backend:  tiered.Factory(t.TempDir(), tiered.Options{HotBytes: 32 << 10}),
			})
			if err != nil {
				t.Fatal(err)
			}
			return cl
		},
	}
	for name, open := range engines {
		t.Run(name, func(t *testing.T) {
			cluster := open(t)
			seqCfg := cfg
			seqCfg.MaterializeWorkers = 1
			seq, err := Build(cluster, seqCfg, events)
			if err != nil {
				t.Fatalf("Build: %v", err)
			}
			parCfg := cfg
			parCfg.MaterializeWorkers = 8
			par, attached, err := Attach(cluster, parCfg)
			if err != nil {
				t.Fatalf("Attach: %v", err)
			}
			if !attached {
				t.Fatal("Attach found no persisted index")
			}
			end := events[len(events)-1].Time
			for _, tt := range []temporal.Time{1, end / 4, end / 2, 3 * end / 4, end, end + 5} {
				g1, err := seq.GetSnapshot(tt, nil)
				if err != nil {
					t.Fatalf("sequential GetSnapshot(%d): %v", tt, err)
				}
				g8, err := par.GetSnapshot(tt, nil)
				if err != nil {
					t.Fatalf("parallel GetSnapshot(%d): %v", tt, err)
				}
				b1, b8 := snapshotBytes(t, g1), snapshotBytes(t, g8)
				if !bytes.Equal(b1, b8) {
					t.Fatalf("snapshot@%d differs between workers=1 (%d bytes) and workers=8 (%d bytes)", tt, len(b1), len(b8))
				}
				if !g8.Equal(oracle(events, tt)) {
					t.Fatalf("parallel snapshot@%d diverged from the oracle", tt)
				}
			}
		})
	}
}

// TestParallelTraceAccountingMatchesMetrics pins per-call attribution
// under parallel materialization: with MaterializeWorkers=8 the fetch
// work races across the worker pool, but a traced retrieval must still
// report exactly the KV reads, round-trips, bytes and simulated wait
// the cluster counters accumulated for it. Run under `go test -race`
// by make ci, this also exercises the trace counters for data races.
func TestParallelTraceAccountingMatchesMetrics(t *testing.T) {
	events := genHistory(21, 400, 40)
	cfg := smallConfig()
	cfg.MaterializeWorkers = 8
	tgi := buildSmall(t, cfg, events)
	store := tgi.Store()
	lo, hi := events[0].Time, events[len(events)-1].Time+1

	// Warm the metadata and pid-map caches so traced queries read only
	// through the fetch layer (meta loads bypass it by design).
	if _, err := tgi.GetSnapshot(hi, nil); err != nil {
		t.Fatal(err)
	}
	store.SetLatency(kvstore.LatencyModel{Enabled: true, BaseOp: 2 * time.Microsecond, PerKB: 5 * time.Microsecond})
	defer store.SetLatency(kvstore.LatencyModel{})

	var totalReads int64
	check := func(op string, tr *fetch.Trace) {
		t.Helper()
		m := store.Metrics()
		rec := tr.Record()
		totalReads += rec.KVReads
		if rec.Op != op {
			t.Fatalf("trace op = %q, want %q", rec.Op, op)
		}
		if rec.KVReads != m.Reads {
			t.Fatalf("%s: trace KVReads %d != metrics Reads %d", op, rec.KVReads, m.Reads)
		}
		if rec.RoundTrips != m.RoundTrips {
			t.Fatalf("%s: trace RoundTrips %d != metrics %d", op, rec.RoundTrips, m.RoundTrips)
		}
		if rec.BytesRead != m.BytesRead {
			t.Fatalf("%s: trace BytesRead %d != metrics %d", op, rec.BytesRead, m.BytesRead)
		}
		if rec.SimWait != m.SimWait {
			t.Fatalf("%s: trace SimWait %v != metrics %v", op, rec.SimWait, m.SimWait)
		}
	}
	for _, tt := range []temporal.Time{lo + (hi-lo)/3, hi - 1} {
		store.ResetMetrics()
		tr := &fetch.Trace{}
		if _, err := tgi.GetSnapshot(tt, &FetchOptions{Trace: tr}); err != nil {
			t.Fatal(err)
		}
		check("snapshot", tr)
	}
	for _, id := range []graph.NodeID{11, 23} {
		store.ResetMetrics()
		tr := &fetch.Trace{}
		if _, err := tgi.GetNodeHistory(id, lo, hi, &FetchOptions{Trace: tr}); err != nil {
			t.Fatal(err)
		}
		check("node-history", tr)
	}
	if totalReads == 0 {
		t.Fatal("no traced call read the store; the attribution check never exercised the parallel fetch path")
	}
}
