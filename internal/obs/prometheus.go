package obs

import (
	"bufio"
	"io"
	"math"
	"strconv"
)

// WritePrometheus renders every registered metric in the Prometheus
// text exposition format (version 0.0.4): one # HELP / # TYPE header
// per family, series sorted by label signature, histograms expanded
// into cumulative _bucket series with le labels plus _sum and _count.
// A nil registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	var lastFamily string
	r.visit(func(f *family, s *series) {
		if f.name != lastFamily {
			lastFamily = f.name
			if f.help != "" {
				bw.WriteString("# HELP " + f.name + " " + f.help + "\n")
			}
			bw.WriteString("# TYPE " + f.name + " " + f.kind.String() + "\n")
		}
		if f.kind == KindHistogram {
			writeHistogram(bw, f.name, s.sig, s.hist.snapshot())
			return
		}
		bw.WriteString(seriesKey(f.name, s.sig) + " " + formatValue(s.value()) + "\n")
	})
	return bw.Flush()
}

// writeHistogram renders one histogram series: cumulative buckets,
// sum, count.
func writeHistogram(w *bufio.Writer, name, sig string, h HistSnapshot) {
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		le := "+Inf"
		if i < len(h.Bounds) {
			le = formatValue(h.Bounds[i])
		}
		lsig := `le="` + le + `"`
		if sig != "" {
			lsig = sig + "," + lsig
		}
		w.WriteString(name + "_bucket{" + lsig + "} " + strconv.FormatUint(cum, 10) + "\n")
	}
	w.WriteString(seriesKey(name+"_sum", sig) + " " + formatValue(h.Sum) + "\n")
	w.WriteString(seriesKey(name+"_count", sig) + " " + strconv.FormatUint(h.Count, 10) + "\n")
}

// formatValue renders a sample value the way Prometheus clients do:
// shortest round-trip representation, +Inf/-Inf/NaN spelled out.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
