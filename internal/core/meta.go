package core

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"sort"
	"sync"

	"hgs/internal/fetch"
	"hgs/internal/graph"
	"hgs/internal/kvstore"
	"hgs/internal/partition"
	"hgs/internal/temporal"
)

// GraphMeta is the global index metadata (the paper's Graph table:
// start, end, events, tscount, gtype).
type GraphMeta struct {
	Name          string
	Start         temporal.Time // time of the first event
	End           temporal.Time // time of the last event
	Events        int           // total events indexed
	TimespanCount int
	Config        Config
}

// TimespanMeta is the per-timespan metadata (the paper's Timespans table:
// start, end, checkpoints, arity) plus the tree shape needed to plan
// retrieval without touching delta rows.
type TimespanMeta struct {
	TSID  int
	Start temporal.Time // time of the first event in the span
	End   temporal.Time // time of the last event in the span
	// LeafTimes[i] is the checkpoint time of leaf i: leaf 0 is the state
	// just before the span's first event; leaf i>0 is the state after
	// eventlist i-1.
	LeafTimes []temporal.Time
	// EventlistCount is the number of eventlists (LeafTimes has
	// EventlistCount+1 entries).
	EventlistCount int
	// EventCount is the number of events indexed into this span (used to
	// detect a trailing partial span during Append).
	EventCount int
	// LeafPaths[i] lists the delta ids (dids) from the tree root to leaf
	// i; summing the corresponding deltas in order reconstructs the leaf.
	LeafPaths [][]int
	// DeltaCount is the number of stored tree deltas per sid.
	DeltaCount int
	// NPids[sid] is the number of micro-partitions in horizontal
	// partition sid during this span.
	NPids []int
	// Partitioning records the strategy used ("random" or "locality").
	Partitioning string
	// Arity is the tree fan-in used for this span.
	Arity int
}

// pathForTime returns the leaf index whose checkpoint is the latest at or
// before t, clamped to the span's leaves.
func (tm *TimespanMeta) leafFor(t temporal.Time) int {
	// LeafTimes is ascending; find the last index with LeafTimes[i] <= t.
	i := sort.Search(len(tm.LeafTimes), func(i int) bool { return tm.LeafTimes[i] > t })
	if i == 0 {
		return 0
	}
	return i - 1
}

// Key helpers — the composite key schema lives in the fetch layer
// (internal/fetch); these aliases keep build and query code terse.

func placementKey(tsid, sid int) string { return fetch.PlacementKey(tsid, sid) }

func deltaCKey(did, pid int) string { return fetch.DeltaCKey(did, pid) }

func deltaPrefix(did int) string { return fetch.DeltaPrefix(did) }

func eventCKey(el, pid int) string { return fetch.EventCKey(el, pid) }

func eventPrefix(el int) string { return fetch.EventPrefix(el) }

func nodeCKey(id graph.NodeID) string { return fetch.NodeCKey(id) }

// sidOf is the paper's fh: a random (hash) function of node id that fixes
// the horizontal partition of a node for the whole history.
func (t *TGI) sidOf(id graph.NodeID) int {
	return partition.HashPID(id^0x5bd1e995, t.cfg.HorizontalPartitions)
}

// metaStore caches graph and timespan metadata in the query manager.
type metaStore struct {
	mu     sync.RWMutex
	graph  *GraphMeta
	spans  map[int]*TimespanMeta
	pidMap map[string]map[graph.NodeID]int // locality pid maps per (tsid,sid)
}

func newMetaStore() *metaStore {
	return &metaStore{spans: make(map[int]*TimespanMeta), pidMap: make(map[string]map[graph.NodeID]int)}
}

func (m *metaStore) invalidate() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.graph = nil
	m.spans = make(map[int]*TimespanMeta)
	m.pidMap = make(map[string]map[graph.NodeID]int)
}

// loadGraphMeta returns the cached global metadata, reading it from the
// store on first use.
func (t *TGI) loadGraphMeta() (*GraphMeta, error) {
	t.meta.mu.RLock()
	gm := t.meta.graph
	t.meta.mu.RUnlock()
	if gm != nil {
		return gm, nil
	}
	blob, ok := t.store.Get(TableGraph, "graph", "info")
	if !ok {
		return nil, fmt.Errorf("core: index has no graph metadata (empty index?): %w", ErrNotLoaded)
	}
	gm = &GraphMeta{}
	if err := json.Unmarshal(blob, gm); err != nil {
		return nil, fmt.Errorf("core: decode graph metadata: %w", err)
	}
	t.meta.mu.Lock()
	t.meta.graph = gm
	t.meta.mu.Unlock()
	return gm, nil
}

func (t *TGI) storeGraphMeta(gm *GraphMeta) error {
	blob, err := json.Marshal(gm)
	if err != nil {
		return fmt.Errorf("core: encode graph metadata: %w", err)
	}
	t.store.Put(TableGraph, "graph", "info", blob)
	t.meta.mu.Lock()
	t.meta.graph = gm
	t.meta.mu.Unlock()
	return nil
}

func (t *TGI) loadTimespanMeta(tsid int) (*TimespanMeta, error) {
	t.meta.mu.RLock()
	tm := t.meta.spans[tsid]
	t.meta.mu.RUnlock()
	if tm != nil {
		return tm, nil
	}
	blob, ok := t.store.Get(TableTimespans, fmt.Sprintf("t%05d", tsid), "meta")
	if !ok {
		return nil, fmt.Errorf("core: missing metadata for timespan %d", tsid)
	}
	tm = &TimespanMeta{}
	if err := json.Unmarshal(blob, tm); err != nil {
		return nil, fmt.Errorf("core: decode timespan %d metadata: %w", tsid, err)
	}
	t.meta.mu.Lock()
	t.meta.spans[tsid] = tm
	t.meta.mu.Unlock()
	return tm, nil
}

func (t *TGI) storeTimespanMeta(tm *TimespanMeta) error {
	blob, err := json.Marshal(tm)
	if err != nil {
		return fmt.Errorf("core: encode timespan metadata: %w", err)
	}
	t.store.Put(TableTimespans, fmt.Sprintf("t%05d", tm.TSID), "meta", blob)
	t.meta.mu.Lock()
	t.meta.spans[tm.TSID] = tm
	t.meta.mu.Unlock()
	return nil
}

// timespanFor locates the timespan covering t: the last span whose start
// is <= t. Times before the first span map to span 0 (whose leaf 0 is the
// empty graph); times after the last map to the last span.
func (t *TGI) timespanFor(tt temporal.Time) (*TimespanMeta, error) {
	gm, err := t.loadGraphMeta()
	if err != nil {
		return nil, err
	}
	if gm.TimespanCount == 0 {
		return nil, fmt.Errorf("core: index is empty: %w", ErrNotLoaded)
	}
	// Spans are contiguous in event order; binary search over starts via
	// cached metas (span count is small; linear from the end is fine and
	// avoids loading all metas for the common "recent time" case).
	for tsid := gm.TimespanCount - 1; tsid >= 0; tsid-- {
		tm, err := t.loadTimespanMeta(tsid)
		if err != nil {
			return nil, err
		}
		if tm.Start <= tt || tsid == 0 {
			return tm, nil
		}
	}
	return t.loadTimespanMeta(0)
}

// Version chain encoding: per (node, timespan) a blob of
// (eventlist index, change count, change times...) groups.

type vcEntry struct {
	el    int
	times []temporal.Time
}

func encodeVC(entries []vcEntry) []byte {
	var buf []byte
	var tmp [binary.MaxVarintLen64]byte
	put := func(v int64) {
		n := binary.PutVarint(tmp[:], v)
		buf = append(buf, tmp[:n]...)
	}
	put(int64(len(entries)))
	for _, e := range entries {
		put(int64(e.el))
		put(int64(len(e.times)))
		var prev temporal.Time
		for _, tt := range e.times {
			put(int64(tt - prev))
			prev = tt
		}
	}
	return buf
}

func decodeVC(blob []byte) ([]vcEntry, error) {
	pos := 0
	get := func() (int64, error) {
		v, n := binary.Varint(blob[pos:])
		if n <= 0 {
			return 0, fmt.Errorf("core: corrupt version chain")
		}
		pos += n
		return v, nil
	}
	n, err := get()
	if err != nil {
		return nil, err
	}
	out := make([]vcEntry, 0, n)
	for i := int64(0); i < n; i++ {
		el, err := get()
		if err != nil {
			return nil, err
		}
		cnt, err := get()
		if err != nil {
			return nil, err
		}
		e := vcEntry{el: int(el), times: make([]temporal.Time, 0, cnt)}
		var prev temporal.Time
		for j := int64(0); j < cnt; j++ {
			d, err := get()
			if err != nil {
				return nil, err
			}
			prev += temporal.Time(d)
			e.times = append(e.times, prev)
		}
		out = append(out, e)
	}
	return out, nil
}

// pidOf resolves the micro-partition of a node within a timespan and sid.
// Random partitioning is a stateless hash; locality partitioning consults
// the Micropartitions table. The whole (tsid, sid) map is bulk-loaded on
// first use with one contiguous scan and cached in the query manager —
// per-node point reads would multiply every neighborhood fetch by the
// member count (§4.5: "maintaining and looking up that map as frequently
// as the changes in the graph is highly inefficient").
func (t *TGI) pidOf(tm *TimespanMeta, sid int, id graph.NodeID) (int, error) {
	npids := 1
	if sid < len(tm.NPids) {
		npids = tm.NPids[sid]
	}
	if npids <= 1 {
		return 0, nil
	}
	if tm.Partitioning != partition.Locality.String() {
		return partition.HashPID(id, npids), nil
	}
	key := placementKey(tm.TSID, sid)
	t.meta.mu.RLock()
	cached, ok := t.meta.pidMap[key]
	t.meta.mu.RUnlock()
	if !ok {
		var err error
		cached, err = t.loadPidMap(key)
		if err != nil {
			return 0, err
		}
	}
	if pid, hit := cached[id]; hit {
		return pid, nil
	}
	// Node unknown to this span (created later); hash fallback keeps
	// lookups total.
	return partition.HashPID(id, npids), nil
}

// loadPidMap scans one (tsid, sid) partition of the Micropartitions
// table and caches the node→pid map.
func (t *TGI) loadPidMap(key string) (map[graph.NodeID]int, error) {
	t.meta.mu.Lock()
	defer t.meta.mu.Unlock()
	if cached, ok := t.meta.pidMap[key]; ok { // raced with another loader
		return cached, nil
	}
	rows := t.store.ScanPartition(TableMicroPart, key)
	m := make(map[graph.NodeID]int, len(rows))
	for _, row := range rows {
		if len(row.CKey) < 2 || row.CKey[0] != 'n' {
			return nil, fmt.Errorf("core: malformed micropartition key %q", row.CKey)
		}
		var id uint64
		if _, err := fmt.Sscanf(row.CKey[1:], "%d", &id); err != nil {
			return nil, fmt.Errorf("core: malformed micropartition key %q: %w", row.CKey, err)
		}
		v, n := binary.Varint(row.Value)
		if n <= 0 {
			return nil, fmt.Errorf("core: corrupt micropartition row %q", row.CKey)
		}
		m[graph.NodeID(id)] = int(v)
	}
	t.meta.pidMap[key] = m
	return m, nil
}

// Stats summarizes the stored index (sizes per table, spans, deltas)
// and the query layer's runtime counters: KV operations and round-trips
// (StoreMetrics) plus decoded-delta cache hits, misses, negative hits
// and occupancy (Cache). With Config.TracePlans on, Traces carries the
// most recent per-query plan traces (oldest first).
type Stats struct {
	Timespans    int
	Events       int
	StoredBytes  int64
	LogicalBytes int64
	StoreMetrics kvstore.Metrics
	Cache        fetch.CacheStats
	Traces       []fetch.TraceRecord
}

// Stats returns storage statistics for the index.
func (t *TGI) Stats() (Stats, error) {
	gm, err := t.loadGraphMeta()
	if err != nil {
		return Stats{}, err
	}
	st := Stats{
		Timespans:    gm.TimespanCount,
		Events:       gm.Events,
		StoredBytes:  t.store.StoredBytes(),
		LogicalBytes: t.store.LogicalBytes(),
		StoreMetrics: t.store.Metrics(),
		Cache:        t.fx.Cache().Stats(),
	}
	if t.cfg.TracePlans {
		st.Traces = t.PlanTraces()
	}
	return st, nil
}
