// Evolution: reproduce the paper's Figure 7(c) analysis — the evolution
// of network density over time — on a growing citation network, using
// the TAF operators Timeslice, Evolution, and the temporal aggregations.
package main

import (
	"fmt"
	"log"

	"hgs"
	"hgs/internal/workload"
)

func main() {
	// Dataset 1-style growth network.
	events := workload.Wikipedia(workload.WikiConfig{Nodes: 4000, EdgesPerNode: 4, Seed: 7})
	store, err := hgs.Open(hgs.Options{
		Machines:       2,
		TimespanEvents: len(events)/2 + 1,
		EventlistSize:  len(events) / 12,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := store.Load(events); err != nil {
		log.Fatal(err)
	}
	lo, hi, _ := store.TimeRange()

	// TAF session: fetch the SoN over the full history and sample graph
	// density at ten evenly spaced timepoints (paper Figure 7c).
	a := store.Analytics(2)
	son, err := a.SON().Timeslice(hgs.NewInterval(lo, hi+1)).Fetch()
	if err != nil {
		log.Fatal(err)
	}
	density := hgs.Evolution(son, hgs.GraphDensity, 10, nil)
	fmt.Println("graph density over 10 points:")
	for _, p := range density {
		fmt.Printf("  t=%-8d density=%.6f\n", p.Time, p.Value)
	}

	// Temporal aggregation over the sampled series.
	if m, ok := density.Max(); ok {
		fmt.Printf("\npeak density %.6f at t=%d\n", m.Value, m.Time)
	}
	fmt.Printf("mean density %.6f\n", density.Mean())

	// A second quantity: average degree keeps rising as the network
	// densifies — compare first and last sample.
	avg := hgs.Evolution(son, hgs.GraphAvgDegree, 10, nil)
	fmt.Printf("\navg degree %.2f -> %.2f over the history\n",
		avg[0].Value, avg[len(avg)-1].Value)

	// Per-node view: which node gained the most neighbors over the
	// second half of the history (Compare on one SoN, paper operator 7)?
	mid := lo + (hi-lo)/2
	rows := hgs.CompareAt(son, func(ns *hgs.NodeState) float64 { return float64(ns.Degree()) }, hi, mid)
	best := rows[0]
	for _, r := range rows {
		if r.Diff > best.Diff {
			best = r
		}
	}
	fmt.Printf("fastest-growing node: %d (+%.0f neighbors since t=%d)\n", best.ID, best.Diff, mid)
}
