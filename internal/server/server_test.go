package server

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"hgs"
	"hgs/internal/workload"
)

// testServer builds an in-memory store over a small synthetic history
// and serves it on an ephemeral port.
func testServer(t *testing.T, cfg Config) (*Server, *hgs.Store, string) {
	t.Helper()
	store, err := hgs.Open(hgs.Options{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	t.Cleanup(func() { store.Close() })
	events := workload.Wikipedia(workload.WikiConfig{Nodes: 300, EdgesPerNode: 3, Seed: 11})
	if err := store.Load(events); err != nil {
		t.Fatalf("load: %v", err)
	}
	srv := New(store, cfg)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("start: %v", err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return srv, store, addr
}

func get(t *testing.T, url string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	scn := bufio.NewScanner(resp.Body)
	scn.Buffer(make([]byte, 64<<10), 8<<20)
	for scn.Scan() {
		sb.WriteString(scn.Text())
		sb.WriteString("\n")
	}
	return resp, sb.String()
}

func TestStatusMapping(t *testing.T) {
	_, store, addr := testServer(t, Config{})
	first, last, err := store.TimeRange()
	if err != nil {
		t.Fatalf("time range: %v", err)
	}
	mid := (first + last) / 2

	cases := []struct {
		name string
		url  string
		want int
	}{
		{"ok", fmt.Sprintf("http://%s/v1/node?id=0&t=%d", addr, mid), http.StatusOK},
		{"missing-param", fmt.Sprintf("http://%s/v1/node?id=0", addr), http.StatusBadRequest},
		{"bad-param", fmt.Sprintf("http://%s/v1/node?id=zap&t=%d", addr, mid), http.StatusBadRequest},
		{"bad-timeout", fmt.Sprintf("http://%s/v1/node?id=0&t=%d&timeout=never", addr, mid), http.StatusBadRequest},
		{"node-not-found", fmt.Sprintf("http://%s/v1/node?id=999999&t=%d", addr, mid), http.StatusNotFound},
		{"out-of-range", fmt.Sprintf("http://%s/v1/node?id=0&t=%d", addr, last+10_000), http.StatusRequestedRangeNotSatisfiable},
		{"deadline", fmt.Sprintf("http://%s/v1/snapshot?t=%d&timeout=1ns", addr, mid), http.StatusGatewayTimeout},
		{"khop-not-found", fmt.Sprintf("http://%s/v1/khop?id=999999&t=%d", addr, mid), http.StatusNotFound},
		{"timerange", fmt.Sprintf("http://%s/v1/timerange", addr), http.StatusOK},
		{"stats", fmt.Sprintf("http://%s/v1/stats", addr), http.StatusOK},
		{"append-get", fmt.Sprintf("http://%s/v1/append", addr), http.StatusMethodNotAllowed},
		{"metrics", fmt.Sprintf("http://%s/metrics", addr), http.StatusOK},
	}
	for _, tc := range cases {
		resp, body := get(t, tc.url)
		if resp.StatusCode != tc.want {
			t.Errorf("%s: got %d want %d (body %.120s)", tc.name, resp.StatusCode, tc.want, body)
		}
	}
}

func TestClosedStoreMapsTo503(t *testing.T) {
	_, store, addr := testServer(t, Config{})
	if err := store.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	resp, _ := get(t, fmt.Sprintf("http://%s/v1/node?id=0&t=50", addr))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("query after Close: got %d want 503", resp.StatusCode)
	}
}

// TestSnapshotStreamsAllRows checks the NDJSON snapshot against the
// in-process retrieval: same node count, one valid JSON row per line.
func TestSnapshotStreamsAllRows(t *testing.T) {
	_, store, addr := testServer(t, Config{})
	_, last, _ := store.TimeRange()
	g, err := store.Snapshot(last)
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	resp, body := get(t, fmt.Sprintf("http://%s/v1/snapshot?t=%d", addr, last))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot endpoint: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	lines := strings.Split(strings.TrimSpace(body), "\n")
	if len(lines) == 0 || lines[0] == "" {
		t.Fatalf("no streamed rows")
	}
	if len(lines) != g.NumNodes() {
		t.Fatalf("streamed %d rows, snapshot has %d nodes", len(lines), g.NumNodes())
	}
	seen := make(map[hgs.NodeID]bool)
	for _, ln := range lines {
		var row NodeJSON
		if err := json.Unmarshal([]byte(ln), &row); err != nil {
			t.Fatalf("bad NDJSON row %q: %v", ln, err)
		}
		if seen[row.ID] {
			t.Fatalf("node %d emitted twice", row.ID)
		}
		seen[row.ID] = true
		if !g.Has(row.ID) {
			t.Fatalf("streamed node %d not in snapshot", row.ID)
		}
	}
}

// TestShedding fills every in-flight slot directly and checks the next
// request is rejected with 429 without touching the store.
func TestShedding(t *testing.T) {
	srv, _, addr := testServer(t, Config{MaxInFlight: 2})
	srv.sem <- struct{}{}
	srv.sem <- struct{}{}
	defer func() { <-srv.sem; <-srv.sem }()
	resp, body := get(t, fmt.Sprintf("http://%s/v1/timerange", addr))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("full limiter: got %d want 429 (body %s)", resp.StatusCode, body)
	}
	if srv.shed.Value() == 0 {
		t.Fatalf("shed counter not incremented")
	}
}

// TestConcurrentClients drives the server with more clients than
// in-flight slots: every request must finish with a sanctioned status
// and at least one must be shed.
func TestConcurrentClients(t *testing.T) {
	_, store, addr := testServer(t, Config{MaxInFlight: 2})
	_, last, _ := store.TimeRange()
	const clients, per = 8, 30
	var wg sync.WaitGroup
	codes := make(chan int, clients*per)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				resp, err := http.Get(fmt.Sprintf("http://%s/v1/snapshot?t=%d", addr, last))
				if err != nil {
					codes <- -1
					continue
				}
				scn := bufio.NewScanner(resp.Body)
				scn.Buffer(make([]byte, 64<<10), 8<<20)
				for scn.Scan() {
				}
				resp.Body.Close()
				codes <- resp.StatusCode
			}
		}()
	}
	wg.Wait()
	close(codes)
	var ok, shed int
	for code := range codes {
		switch code {
		case http.StatusOK:
			ok++
		case http.StatusTooManyRequests:
			shed++
		default:
			t.Fatalf("unexpected status %d", code)
		}
	}
	if ok == 0 {
		t.Fatalf("no request succeeded")
	}
	if shed == 0 {
		t.Fatalf("no request shed with %d clients over 2 slots", clients)
	}
}

func TestAppendAndHistory(t *testing.T) {
	_, store, addr := testServer(t, Config{})
	_, last, _ := store.TimeRange()
	body := fmt.Sprintf(`{"events":[
		{"time":%d,"kind":"add-node","node":77777},
		{"time":%d,"kind":"set-node-attr","node":77777,"key":"name","value":"late"},
		{"time":%d,"kind":"add-edge","node":77777,"other":0}]}`,
		last+1, last+2, last+3)
	resp, err := http.Post(fmt.Sprintf("http://%s/v1/append", addr), "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("append: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("append: status %d", resp.StatusCode)
	}
	// The appended node is queryable through the API.
	r2, out := get(t, fmt.Sprintf("http://%s/v1/node?id=77777&t=%d", addr, last+3))
	if r2.StatusCode != http.StatusOK {
		t.Fatalf("node after append: %d", r2.StatusCode)
	}
	if !strings.Contains(out, `"name":"late"`) {
		t.Fatalf("appended attr missing: %s", out)
	}
	r3, hist := get(t, fmt.Sprintf("http://%s/v1/node/history?id=77777&ts=%d&te=%d", addr, last, last+10))
	if r3.StatusCode != http.StatusOK {
		t.Fatalf("history after append: %d", r3.StatusCode)
	}
	if got := strings.Count(hist, "\n"); got != 4 { // header line + 3 events
		t.Fatalf("history lines: got %d want 4 (%s)", got, hist)
	}
	// The store handle agrees with what HTTP served.
	times, err := store.ChangeTimes(77777, last, last+10)
	if err != nil || len(times) != 3 {
		t.Fatalf("ChangeTimes after append: %v %v", times, err)
	}
	// Unknown kinds are rejected before touching the store.
	bad, err := http.Post(fmt.Sprintf("http://%s/v1/append", addr), "application/json",
		strings.NewReader(`{"events":[{"time":1,"kind":"explode","node":1}]}`))
	if err != nil {
		t.Fatalf("bad append: %v", err)
	}
	bad.Body.Close()
	if bad.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown kind: got %d want 400", bad.StatusCode)
	}
}

func TestChangeTimesAndAnalytics(t *testing.T) {
	_, store, addr := testServer(t, Config{})
	first, last, _ := store.TimeRange()
	resp, body := get(t, fmt.Sprintf("http://%s/v1/node/changetimes?id=0&ts=%d&te=%d", addr, first, last+1))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("changetimes: %d", resp.StatusCode)
	}
	var times []hgs.Time
	if err := json.Unmarshal([]byte(strings.TrimSpace(body)), &times); err != nil {
		t.Fatalf("changetimes body: %v", err)
	}
	resp2, body2 := get(t, fmt.Sprintf("http://%s/v1/analytics/top-changers?ts=%d&te=%d&limit=5", addr, first, last+1))
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("top-changers: %d", resp2.StatusCode)
	}
	var rows []struct {
		ID      hgs.NodeID `json:"id"`
		Changes int        `json:"changes"`
	}
	if err := json.Unmarshal([]byte(strings.TrimSpace(body2)), &rows); err != nil {
		t.Fatalf("top-changers body: %v", err)
	}
	if len(rows) == 0 || len(rows) > 5 {
		t.Fatalf("top-changers rows: %d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Changes > rows[i-1].Changes {
			t.Fatalf("top-changers not sorted: %v", rows)
		}
	}
}

// TestAdminTopologyEndpoints drives the topology admin surface over
// HTTP: inspect, fail/revive (degraded queries must still answer), a
// live node add with rebalance wait, and the sentinel status mapping.
func TestAdminTopologyEndpoints(t *testing.T) {
	store, err := hgs.Open(hgs.Options{Machines: 3, Replication: 2})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	t.Cleanup(func() { store.Close() })
	events := workload.Wikipedia(workload.WikiConfig{Nodes: 300, EdgesPerNode: 3, Seed: 11})
	if err := store.Load(events); err != nil {
		t.Fatalf("load: %v", err)
	}
	srv := New(store, Config{})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("start: %v", err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	post := func(path string) (*http.Response, string) {
		t.Helper()
		resp, err := http.Post(fmt.Sprintf("http://%s%s", addr, path), "", nil)
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		scn := bufio.NewScanner(resp.Body)
		for scn.Scan() {
			sb.WriteString(scn.Text())
		}
		return resp, sb.String()
	}

	resp, body := get(t, fmt.Sprintf("http://%s/admin/topology", addr))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("topology: %d %s", resp.StatusCode, body)
	}
	var info hgs.TopologyInfo
	if err := json.Unmarshal([]byte(strings.TrimSpace(body)), &info); err != nil {
		t.Fatalf("topology body: %v", err)
	}
	if len(info.Nodes) != 3 || info.Replication != 2 || info.UnderReplicated != 0 {
		t.Fatalf("topology: %+v", info)
	}

	if resp, body := post("/admin/node/fail?id=1"); resp.StatusCode != http.StatusOK {
		t.Fatalf("fail: %d %s", resp.StatusCode, body)
	}
	_, last, _ := store.TimeRange()
	if resp, _ := get(t, fmt.Sprintf("http://%s/v1/node?id=0&t=%d", addr, last)); resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded query: %d", resp.StatusCode)
	}
	resp, body = get(t, fmt.Sprintf("http://%s/admin/topology", addr))
	if err := json.Unmarshal([]byte(strings.TrimSpace(body)), &info); err != nil {
		t.Fatalf("topology body: %v", err)
	}
	if !info.Nodes[1].Down || info.UnderReplicated == 0 {
		t.Fatalf("topology after fail: %+v", info)
	}
	if resp, body := post("/admin/node/revive?id=1"); resp.StatusCode != http.StatusOK {
		t.Fatalf("revive: %d %s", resp.StatusCode, body)
	}

	if resp, body := post("/admin/node/add?id=3"); resp.StatusCode != http.StatusOK {
		t.Fatalf("add: %d %s", resp.StatusCode, body)
	}
	if resp, body := post("/admin/rebalance/wait?timeout=30s"); resp.StatusCode != http.StatusOK {
		t.Fatalf("rebalance wait: %d %s", resp.StatusCode, body)
	}
	resp, body = get(t, fmt.Sprintf("http://%s/admin/topology", addr))
	if err := json.Unmarshal([]byte(strings.TrimSpace(body)), &info); err != nil {
		t.Fatalf("topology body: %v", err)
	}
	if len(info.Nodes) != 4 {
		t.Fatalf("topology after add: %+v", info)
	}
	if resp, _ := get(t, fmt.Sprintf("http://%s/v1/node?id=0&t=%d", addr, last)); resp.StatusCode != http.StatusOK {
		t.Fatalf("post-rebalance query: %d", resp.StatusCode)
	}

	// Sentinel mapping.
	if resp, _ := post("/admin/node/fail?id=99"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("fail unknown: %d", resp.StatusCode)
	}
	if resp, _ := post("/admin/node/add?id=0"); resp.StatusCode != http.StatusConflict {
		t.Fatalf("add duplicate: %d", resp.StatusCode)
	}
	if resp, _ := get(t, fmt.Sprintf("http://%s/admin/node/add?id=9", addr)); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET add: %d", resp.StatusCode)
	}
}
