package fetch

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"hgs/internal/codec"
	"hgs/internal/delta"
	"hgs/internal/graph"
	"hgs/internal/kvstore"
)

// partsByPID sorts a decoded group and its parallel size slice together.
type partsByPID struct {
	parts []Part
	sizes []int64
}

func (p *partsByPID) Len() int           { return len(p.parts) }
func (p *partsByPID) Less(i, j int) bool { return p.parts[i].PID < p.parts[j].PID }
func (p *partsByPID) Swap(i, j int) {
	p.parts[i], p.parts[j] = p.parts[j], p.parts[i]
	p.sizes[i], p.sizes[j] = p.sizes[j], p.sizes[i]
}

// eventPartsByPID is partsByPID for decoded eventlist groups.
type eventPartsByPID struct {
	parts []EventPart
	sizes []int64
}

func (p *eventPartsByPID) Len() int           { return len(p.parts) }
func (p *eventPartsByPID) Less(i, j int) bool { return p.parts[i].PID < p.parts[j].PID }
func (p *eventPartsByPID) Swap(i, j int) {
	p.parts[i], p.parts[j] = p.parts[j], p.parts[i]
	p.sizes[i], p.sizes[j] = p.sizes[j], p.sizes[i]
}

// execScratch holds the per-execution request-building slices. They are
// sync.Pool-recycled on executor completion: the executor allocates
// them fresh for every retrieval otherwise, and at high QPS that churn
// is pure GC pressure (the slices never escape into results — refs are
// copied by value into result map keys).
type execScratch struct {
	missGroups []GroupKey
	missParts  []PartKey
	scanRefs   []kvstore.ScanRef
	getRefs    []kvstore.KeyRef
}

var scratchPool = sync.Pool{New: func() any { return &execScratch{} }}

func getScratch() *execScratch {
	s := scratchPool.Get().(*execScratch)
	s.missGroups = s.missGroups[:0]
	s.missParts = s.missParts[:0]
	s.scanRefs = s.scanRefs[:0]
	s.getRefs = s.getRefs[:0]
	return s
}

// Store is the batched read surface the executor runs plans against;
// *kvstore.Cluster implements it. Both calls answer positionally.
type Store interface {
	MultiGet(refs []kvstore.KeyRef) []kvstore.GetResult
	MultiScan(refs []kvstore.ScanRef) [][]kvstore.Row
}

// TracedStore is the optional attribution surface of a Store:
// *kvstore.Cluster implements it, returning with each batched call the
// exact logical reads, round-trips, bytes and simulated wait that call
// charged. The executor uses it to fill per-query plan traces; against
// a plain Store, traces count issued requests but report zero
// round-trips and wait.
type TracedStore interface {
	Store
	MultiGetStats(refs []kvstore.KeyRef) ([]kvstore.GetResult, kvstore.CallStats)
	MultiScanStats(refs []kvstore.ScanRef) ([][]kvstore.Row, kvstore.CallStats)
}

// ContextStore is the optional cancellable read surface of a Store:
// *kvstore.Cluster implements it. When the plan's context carries a
// deadline or cancellation signal, the executor routes the batched
// round through these so node visits stop early; a plain Store is
// always driven to completion.
type ContextStore interface {
	MultiGetStatsCtx(ctx context.Context, refs []kvstore.KeyRef) ([]kvstore.GetResult, kvstore.CallStats)
	MultiScanStatsCtx(ctx context.Context, refs []kvstore.ScanRef) ([][]kvstore.Row, kvstore.CallStats)
}

// Executor runs read plans: delta requests are served from the decoded
// cache when resident, everything else goes to the store as one batched
// round (a MultiScan and a MultiGet issued concurrently, each charging
// one simulated round-trip per storage node touched). Freshly decoded
// deltas are installed in the cache on the way out; point reads that
// found nothing install negative markers so the next probe of the same
// absent row skips the store.
type Executor struct {
	store    Store
	traced   TracedStore  // non-nil when store supports per-call attribution
	ctxStore ContextStore // non-nil when store supports cancellable reads
	cdc      codec.Codec
	cache    *Cache
}

// NewExecutor builds an executor over a store; cache may be nil
// (caching disabled).
func NewExecutor(store Store, cdc codec.Codec, cache *Cache) *Executor {
	ts, _ := store.(TracedStore)
	cs, _ := store.(ContextStore)
	return &Executor{store: store, traced: ts, ctxStore: cs, cdc: cdc, cache: cache}
}

// Cache returns the executor's delta cache (nil when disabled).
func (e *Executor) Cache() *Cache { return e.cache }

// Parallel runs f(0..n-1) with up to clients concurrent workers (the
// paper's query processors), returning the first error. It is the one
// bounded worker pool of the fetch path; core's retrieval sites drive
// their decode/merge tasks through it too.
func Parallel(clients, n int, f func(i int) error) error {
	return ParallelCtx(context.Background(), clients, n, f)
}

// ParallelCtx is Parallel with cancellation checked at task boundaries:
// no new task starts once ctx is done, workers drain without running
// the items already queued, and every worker goroutine has exited by
// return. A task in flight when cancellation arrives finishes (the unit
// of work is one partition's decode or merge — bounded, so returns stay
// prompt); the first error wins, with ctx.Err() reported when no task
// failed first.
func ParallelCtx(ctx context.Context, clients, n int, f func(i int) error) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if clients > n {
		clients = n
	}
	if clients <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := f(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
		next     = make(chan int)
	)
	done := ctx.Done()
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if ctx.Err() != nil {
					continue // drain without working
				}
				if err := f(i); err != nil {
					errOnce.Do(func() { firstErr = err })
				}
			}
		}()
	}
dispatch:
	for i := 0; i < n; i++ {
		select {
		case next <- i:
		case <-done:
			break dispatch
		}
	}
	close(next)
	wg.Wait()
	if firstErr == nil {
		firstErr = ctx.Err()
	}
	return firstErr
}

// Exec runs the plan. clients bounds the decode parallelism (the paper's
// query-processor count c); the store round is internally parallel per
// node regardless. The returned deltas are shared with the cache — see
// Result.
func (e *Executor) Exec(p *Plan, clients int) (*Result, error) {
	return e.ExecTraced(p, clients, nil)
}

// ExecTraced runs the plan like Exec and additionally folds the
// execution's plan/cache/read breakdown into tr (nil records nothing).
func (e *Executor) ExecTraced(p *Plan, clients int, tr *Trace) (*Result, error) {
	return e.ExecCtx(context.Background(), p, clients, tr)
}

// ExecCtx runs the plan like ExecTraced under a context: the batched
// store round is issued through the store's cancellable surface when it
// has one, decode work stops at partition boundaries, and — critically
// — a round cut short by cancellation installs NOTHING in the cache:
// a skipped node visit leaves zero-valued results indistinguishable
// from genuine absence, and admitting those as negative markers would
// poison every later query with phantom "row does not exist" answers.
func (e *Executor) ExecCtx(ctx context.Context, p *Plan, clients int, tr *Trace) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if clients < 1 {
		clients = 1
	}
	tr.addPlanned(len(p.groups), len(p.parts), len(p.gets), len(p.scans))
	res := &Result{
		groups:      make(map[GroupKey][]Part, len(p.groups)),
		parts:       make(map[PartKey]*delta.Delta, len(p.parts)),
		eventGroups: make(map[GroupKey][]EventPart),
		eventParts:  make(map[PartKey][]graph.Event),
		gets:        make(map[kvstore.KeyRef][]byte, len(p.gets)),
		scans:       make(map[kvstore.ScanRef][]kvstore.Row, len(p.scans)),
		shared:      e.cache != nil,
	}
	scratch := getScratch()
	defer scratchPool.Put(scratch)

	// 1. Serve delta and eventlist requests out of the cache.
	missGroups := scratch.missGroups
	for _, k := range p.groups {
		if isEventTable(k.Table) {
			if parts, ok := e.cache.EventGroup(k); ok {
				res.eventGroups[k] = parts
				tr.addHit(k.Table, len(parts) == 0)
			} else {
				missGroups = append(missGroups, k)
			}
			continue
		}
		if parts, ok := e.cache.Group(k); ok {
			res.groups[k] = parts
			tr.addHit(k.Table, len(parts) == 0)
		} else {
			missGroups = append(missGroups, k)
		}
	}
	missParts := scratch.missParts
	for _, k := range p.parts {
		if isEventTable(k.Table) {
			if evs, found, known := e.cache.EventPart(k); known {
				if found {
					res.eventParts[k] = evs
				}
				tr.addHit(k.Table, !found)
			} else {
				missParts = append(missParts, k)
			}
			continue
		}
		if d, known := e.cache.Part(k); known {
			if d != nil {
				res.parts[k] = d
			}
			tr.addHit(k.Table, d == nil)
		} else {
			missParts = append(missParts, k)
		}
	}

	// 2. One batched store round for everything that missed: the group
	// prefixes ride the raw scans' MultiScan, the single micro-deltas
	// and micro-eventlists ride the raw gets' MultiGet, issued
	// concurrently.
	scanRefs := scratch.scanRefs
	for _, k := range missGroups {
		scanRefs = append(scanRefs, k.scanRef())
	}
	scanRefs = append(scanRefs, p.scans...)
	getRefs := scratch.getRefs
	for _, k := range missParts {
		getRefs = append(getRefs, k.keyRef())
	}
	getRefs = append(getRefs, p.gets...)
	// Write the grown slices back so the pool keeps their capacity.
	scratch.missGroups = missGroups
	scratch.missParts = missParts
	scratch.scanRefs = scanRefs
	scratch.getRefs = getRefs
	if tr != nil {
		// Logical reads, attributed per table from the issued request
		// set (one read per key or prefix scan — the same accounting as
		// kvstore.Metrics.Reads).
		for _, ref := range scanRefs {
			tr.addReads(ref.Table, 1)
		}
		for _, ref := range getRefs {
			tr.addReads(ref.Table, 1)
		}
	}

	// A context that can actually fire routes the round through the
	// store's cancellable surface; Background-driven plans keep the
	// plain path so existing behavior (and fakes implementing only
	// Store/TracedStore) is untouched.
	useCtx := e.ctxStore != nil && ctx.Done() != nil
	var (
		scanRows [][]kvstore.Row
		getVals  []kvstore.GetResult
		wg       sync.WaitGroup
	)
	if len(scanRefs) > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			switch {
			case useCtx:
				var cs kvstore.CallStats
				scanRows, cs = e.ctxStore.MultiScanStatsCtx(ctx, scanRefs)
				tr.addCall(cs)
			case tr != nil && e.traced != nil:
				var cs kvstore.CallStats
				scanRows, cs = e.traced.MultiScanStats(scanRefs)
				tr.addCall(cs)
			default:
				scanRows = e.store.MultiScan(scanRefs)
			}
		}()
	}
	if len(getRefs) > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			switch {
			case useCtx:
				var cs kvstore.CallStats
				getVals, cs = e.ctxStore.MultiGetStatsCtx(ctx, getRefs)
				tr.addCall(cs)
			case tr != nil && e.traced != nil:
				var cs kvstore.CallStats
				getVals, cs = e.traced.MultiGetStats(getRefs)
				tr.addCall(cs)
			default:
				getVals = e.store.MultiGet(getRefs)
			}
		}()
	}
	wg.Wait()
	// Cancelled mid-round: the result arrays may hold skipped (zero)
	// entries. Bail before decoding or installing anything.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if tr != nil && e.traced == nil && !useCtx {
		// No per-call attribution: at least account the bytes moved.
		var cs kvstore.CallStats
		for _, rows := range scanRows {
			for _, r := range rows {
				cs.BytesRead += int64(len(r.Value))
			}
		}
		for _, gv := range getVals {
			cs.BytesRead += int64(len(gv.Value))
		}
		cs.RoundTrips = 0
		tr.addCall(cs)
	}

	// 3. Decode the missed deltas and eventlists in parallel, installing
	// them in the cache as they complete.
	var mu sync.Mutex
	if err := ParallelCtx(ctx, clients, len(missGroups), func(i int) error {
		k := missGroups[i]
		rows := scanRows[i]
		if isEventTable(k.Table) {
			parts := make([]EventPart, 0, len(rows))
			sizes := make([]int64, 0, len(rows))
			for _, row := range rows {
				pid, err := ParsePID(row.CKey)
				if err != nil {
					return err
				}
				evs, err := e.cdc.DecodeEvents(row.Value)
				if err != nil {
					return fmt.Errorf("fetch: decode events %s/%s: %w", PlacementKey(k.TSID, k.SID), row.CKey, err)
				}
				parts = append(parts, EventPart{PID: pid, Events: evs})
				sizes = append(sizes, int64(len(row.Value)))
			}
			sort.Sort(&eventPartsByPID{parts, sizes})
			e.cache.AddEventGroup(k, parts, sizes)
			mu.Lock()
			res.eventGroups[k] = parts
			mu.Unlock()
			return nil
		}
		parts := make([]Part, 0, len(rows))
		sizes := make([]int64, 0, len(rows))
		for _, row := range rows {
			pid, err := ParsePID(row.CKey)
			if err != nil {
				return err
			}
			d, err := e.cdc.DecodeDelta(row.Value)
			if err != nil {
				return fmt.Errorf("fetch: decode delta %s/%s: %w", PlacementKey(k.TSID, k.SID), row.CKey, err)
			}
			parts = append(parts, Part{PID: pid, Delta: d})
			sizes = append(sizes, int64(len(row.Value)))
		}
		// Result.Group promises pid-ascending parts; the store's
		// clustering order already is, but don't depend on it.
		sort.Sort(&partsByPID{parts, sizes})
		e.cache.AddGroup(k, parts, sizes)
		mu.Lock()
		res.groups[k] = parts
		mu.Unlock()
		return nil
	}); err != nil {
		return nil, err
	}
	if err := ParallelCtx(ctx, clients, len(missParts), func(i int) error {
		k := missParts[i]
		gv := getVals[i]
		if !gv.Found {
			// The row does not exist: remember that, so repeated probes
			// of sparse history stop issuing KV reads.
			e.cache.AddNegative(k)
			return nil
		}
		if isEventTable(k.Table) {
			evs, err := e.cdc.DecodeEvents(gv.Value)
			if err != nil {
				return fmt.Errorf("fetch: decode events %s/%s: %w",
					PlacementKey(k.TSID, k.SID), EventCKey(k.DID, k.PID), err)
			}
			e.cache.AddEventPart(k, evs, int64(len(gv.Value)))
			mu.Lock()
			res.eventParts[k] = evs
			mu.Unlock()
			return nil
		}
		d, err := e.cdc.DecodeDelta(gv.Value)
		if err != nil {
			return fmt.Errorf("fetch: decode delta %s/%s: %w",
				PlacementKey(k.TSID, k.SID), DeltaCKey(k.DID, k.PID), err)
		}
		e.cache.AddPart(k, d, int64(len(gv.Value)))
		mu.Lock()
		res.parts[k] = d
		mu.Unlock()
		return nil
	}); err != nil {
		return nil, err
	}

	// 4. Raw results, positionally after the delta requests.
	for i, ref := range p.scans {
		res.scans[ref] = scanRows[len(missGroups)+i]
	}
	for i, ref := range p.gets {
		if gv := getVals[len(missParts)+i]; gv.Found {
			res.gets[ref] = gv.Value
		}
	}
	return res, nil
}
